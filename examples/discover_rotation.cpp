// discover_rotation.cpp - end-to-end §4 discovery walkthrough.
//
// Runs the full funnel against a compact simulated Internet and narrates
// every stage: traceroute seeding, /48 expansion, density classification,
// and two-snapshot rotation detection — ending with the per-AS rotator
// table an attacker would use to pick targets.

#include <cstdio>
#include <iostream>

#include "core/bootstrap.h"
#include "core/io.h"
#include "core/report.h"
#include "corpus/snapshot.h"
#include "probe/prober.h"
#include "probe/traceroute.h"
#include "probe/target_generator.h"
#include "sim/scenario.h"
#include "telemetry/export.h"
#include "telemetry/journal.h"
#include "telemetry/metrics.h"

#include "example_util.h"

int main(int argc, char** argv) {
  using namespace scent;

  // --threads=N shards every funnel sweep (bit-identical at any value);
  // --out-dir=DIR is where the journal and corpus artifacts land.
  const examples::Cli cli = examples::Cli::parse(argc, argv);
  if (const int rc = cli.require_out_dir()) return rc;
  const unsigned threads = cli.threads;
  examples::TraceSink trace_sink{cli};

  // A small world: one rotating and one static provider (plus everything
  // the paper's pipeline needs: BGP view, ICMPv6 semantics, EUI-64 CPE).
  sim::PaperWorldOptions options;
  options.tail_as_count = 8;
  options.scale = 0.5;
  sim::PaperWorld world = sim::make_paper_world(options);
  sim::VirtualClock clock{sim::hours(9)};
  probe::ProberOptions popt;
  popt.wire_mode = false;       // flip to true for full packet serialization
  popt.packets_per_second = 500000;
  probe::Prober prober{world.internet, clock, popt};

  // Telemetry: the registry collects per-stage spans and counters, the
  // journal records the funnel + every detected rotation window as JSONL.
  telemetry::Registry registry;
  registry.set_clock(&clock);
  prober.attach_telemetry(registry);
  telemetry::Journal journal;
  journal.open(cli.path("discover_rotation_journal.jsonl"));
  journal.set_clock(&clock);

  // --- Step 0 (flavor): a single yarrp-style traceroute shows why the CPE
  // is the "last hop": core routers answer Time Exceeded, then the CPE
  // answers with an unreachable error from its EUI-64 WAN address.
  const auto& versatel = world.internet.provider(world.versatel);
  const net::Prefix victim_alloc = versatel.allocation({0, 3}, clock.now());
  const auto trace =
      probe::traceroute(prober, probe::target_in(victim_alloc, 7), 12);
  std::printf("traceroute to a customer prefix:\n");
  for (const auto& hop : trace.hops) {
    std::printf("  %2u  %-40s %s%s\n", hop.distance,
                hop.address.to_string().c_str(),
                std::string{wire::to_string(hop.type)}.c_str(),
                net::is_eui64(hop.address) ? "   <- EUI-64 CPE" : "");
  }

  // --- The funnel.
  core::BootstrapOptions boot;
  boot.probes_per_48 = 8;
  boot.threads = threads;
  boot.registry = &registry;
  boot.journal = &journal;
  boot.trace = trace_sink.collector();
  const core::BootstrapResult funnel =
      core::run_bootstrap(world.internet, clock, prober, boot);

  std::printf("\nfunnel stages:\n");
  std::printf("  seed /48s with unique EUI-64 last hop : %zu\n",
              funnel.seed_48s.size());
  std::printf("  covering /32s expanded                : %zu\n",
              funnel.seed_32s.size());
  std::printf("  /48s with unique EUI-64 responses     : %zu\n",
              funnel.expanded_48s.size());
  std::printf("  high density (>2 unique EUI-64)       : %zu\n",
              funnel.high_density_48s.size());
  std::printf("  low density / unresponsive            : %zu / %zu\n",
              funnel.low_density_48s.size(), funnel.unresponsive_48s.size());
  std::printf("  rotating (changed between snapshots)  : %zu\n",
              funnel.rotating_48s.size());
  std::printf("  probes sent                           : %llu\n",
              static_cast<unsigned long long>(funnel.probes_sent));
  std::printf("  addresses / EUI-64 / unique IIDs      : %llu / %llu / %llu\n",
              static_cast<unsigned long long>(funnel.total_addresses),
              static_cast<unsigned long long>(funnel.eui64_addresses),
              static_cast<unsigned long long>(funnel.unique_iids));

  std::printf("\nrotating /48s by origin AS:\n");
  core::TextTable table{{"ASN", "# /48"}};
  for (const auto& group :
       core::rotators_by_asn(funnel.rotating_48s, world.internet.bgp())) {
    table.add_row({"AS" + group.key, std::to_string(group.count)});
  }
  table.print(std::cout);

  // Persist the funnel's outputs: the rotating /48 target list as text
  // (greppable) and the bootstrap corpus as a binary snapshot (the default
  // persistence format — block-compressed v2 unless --snapshot-version=1
  // asks for the frozen 42 B/row layout; both checksummed).
  const std::string prefixes_path = cli.path("rotating_48s.txt");
  if (core::save_prefixes(prefixes_path, funnel.rotating_48s,
                          "rotating /48s discovered by the funnel")) {
    std::printf("\n  rotating /48s: %s\n", prefixes_path.c_str());
  }
  corpus::SnapshotWriter snapshot;
  snapshot.set_format_version(cli.snapshot_version);
  snapshot.set_threads(threads);
  snapshot.append(funnel.observations);
  const std::string snapshot_path = cli.path("bootstrap.snap");
  if (snapshot.write(snapshot_path)) {
    std::printf("  corpus snapshot: %s (v%u, %llu rows, %llu bytes on disk)\n",
                snapshot_path.c_str(), cli.snapshot_version,
                static_cast<unsigned long long>(snapshot.rows()),
                static_cast<unsigned long long>(snapshot.encoded_size()));
    // Windowed re-read of the middle third of the corpus: with a v2 file
    // the reader decodes only the blocks overlapping the row window and
    // skips the rest — the predicate ChainInput scans lean on. (v1 has no
    // blocks; both counters print 0.)
    corpus::SnapshotReader reread;
    std::vector<net::Ipv6Address> window;
    if (reread.open(snapshot_path) &&
        reread.read_responses(window, reread.rows() / 3, reread.rows() / 3)) {
      std::printf("  window re-read (middle third, %zu rows): "
                  "blocks read/skipped: %llu/%llu\n",
                  window.size(),
                  static_cast<unsigned long long>(reread.blocks_read()),
                  static_cast<unsigned long long>(reread.blocks_skipped()));
    }
  }

  std::printf("\n");
  telemetry::print_summary(stdout, registry);
  if (journal.close()) {
    std::printf("  journal: %s (%zu events)\n",
                cli.path("discover_rotation_journal.jsonl").c_str(),
                journal.events_written());
  }

  if (!trace_sink.finish()) return 1;
  return funnel.rotating_48s.empty() ? 1 : 0;
}
