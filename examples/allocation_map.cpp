// allocation_map.cpp - render a provider's allocation policy as a map.
//
// The §3.2.1 reconnaissance primitive: probe one address in every /64 of a
// /48 and plot which source address answered, Figure-3 style. The banding
// directly reveals how the provider carves customer delegations — /56
// bands, /60 sub-bands, or per-/64 pixels — without any provider
// cooperation.

#include <cstdio>

#include "analysis/derive.h"
#include "analysis/engine.h"
#include "core/observation.h"
#include "core/report.h"
#include "probe/prober.h"
#include "sim/scenario.h"

#include "example_util.h"

namespace {

using namespace scent;

void map_one(probe::Prober& prober, const sim::Internet& internet,
             std::size_t provider_index, trace::TraceCollector* trace) {
  const auto& provider = internet.provider(provider_index);
  const auto& pool = provider.pools()[0];
  const net::Prefix p48{pool.config().prefix.base(), 48};

  core::AllocationGrid grid;
  core::ObservationStore store;
  probe::SubnetTargets targets{p48, 64, 0xA110};
  net::Ipv6Address target;
  while (targets.next(target)) {
    const auto r = prober.probe_one(target);
    if (!r.responded) continue;
    store.add(r);
    grid.mark(r.target.byte(6), r.target.byte(7),
              grid.intern(r.response_source.iid() ^
                          r.response_source.network()));
  }

  // Algorithm 1 over the sweep: one fused pass accumulates every device's
  // probed-target /64 span; the median derives from the aggregate table.
  analysis::AnalysisOptions aopt;
  aopt.trace = trace;
  aopt.attribute = false;
  aopt.collect_sightings = false;
  const analysis::AggregateTable table = analysis::analyze(store, nullptr,
                                                           aopt);

  std::printf("\n%s (AS%u, %s) - %s\n", provider.config().name.c_str(),
              provider.config().asn, provider.config().country.c_str(),
              p48.to_string().c_str());
  std::printf("distinct responding CPE: %zu; inferred allocation: /%u\n",
              grid.distinct_sources(),
              analysis::allocation_median(table).value_or(0));
  std::printf("%s", grid.render(20, 72).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scent;
  // Shared flags accepted for CLI uniformity; the map renders to stdout.
  const examples::Cli cli = examples::Cli::parse(argc, argv);
  if (const int rc = cli.require_out_dir()) return rc;
  examples::TraceSink trace_sink{cli};
  sim::PaperWorldOptions options;
  options.tail_as_count = 0;
  options.inject_pathologies = false;
  sim::PaperWorld world = sim::make_paper_world(options);
  sim::VirtualClock clock{sim::hours(12)};
  probe::ProberOptions popt;
  popt.wire_mode = false;
  popt.packets_per_second = 1000000;
  probe::Prober prober{world.internet, clock, popt};

  std::printf("Each character = one sampled /64; letters are distinct\n"
              "responding CPE addresses, '.' is silence (Figure 3 style).\n");
  trace::TraceCollector* trace = trace_sink.collector();
  map_one(prober, world.internet, world.entel, trace);      // /56 bands
  map_one(prober, world.internet, world.bhtelecom, trace);  // /60 sub-bands
  map_one(prober, world.internet, world.starcat, trace);    // /64 pixels
  return trace_sink.finish() ? 0 : 1;
}
