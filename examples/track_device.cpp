// track_device.cpp - the §6 attack, end to end, against one victim.
//
// An off-path "attacker" (this program) knows only a victim CPE's EUI-64
// IID (e.g. harvested once from a web log or a previous scan). It infers
// the provider's allocation size and the device's rotation pool purely by
// probing, then re-locates the victim every day for a week as the provider
// rotates its prefix — finally learning the rotation stride well enough to
// predict tomorrow's prefix before probing it.

#include <cstdio>

#include "analysis/derive.h"
#include "analysis/engine.h"
#include "core/observation.h"
#include "core/tracker.h"
#include "probe/prober.h"
#include "sim/scenario.h"
#include "telemetry/export.h"
#include "telemetry/journal.h"
#include "telemetry/metrics.h"

#include "example_util.h"

int main(int argc, char** argv) {
  using namespace scent;

  // --out-dir=DIR routes the per-attempt tracker journal.
  const examples::Cli cli = examples::Cli::parse(argc, argv);
  if (const int rc = cli.require_out_dir()) return rc;
  examples::TraceSink trace_sink{cli};

  sim::PaperWorld world = sim::make_tiny_world(0xCA5E, 64);
  sim::VirtualClock clock{sim::hours(12)};
  probe::ProberOptions popt;
  popt.packets_per_second = 10000;  // the paper's probing rate
  popt.wire_mode = true;            // real packets end to end
  probe::Prober prober{world.internet, clock, popt};

  telemetry::Registry registry;
  registry.set_clock(&clock);
  prober.attach_telemetry(registry);
  telemetry::Journal journal;
  journal.open(cli.path("track_device_journal.jsonl"));
  journal.set_clock(&clock);

  const auto& provider = world.internet.provider(world.versatel);
  const auto& pool = provider.pools()[0];

  // The victim: device 17. The attacker knows only its MAC (== EUI-64 IID).
  const net::MacAddress victim_mac = pool.devices()[17].mac;
  std::printf("victim EUI-64 IID: %s (vendor MAC %s)\n\n",
              net::Ipv6Address{0, net::mac_to_eui64(victim_mac)}
                  .to_string()
                  .c_str(),
              victim_mac.to_string().c_str());

  // --- Inference. Algorithm 1 (allocation size) needs a *single day* of
  // per-/64 probing: across days, rotation moves devices between targets
  // and would inflate the apparent allocation — the noise the paper's §5.2
  // warns about. Algorithm 2 (rotation pool) wants the opposite: as many
  // days as possible, and only needs the response addresses, so the cheap
  // one-probe-per-/56 sweep suffices.
  core::ObservationStore store;
  {
    clock.advance_to(sim::hours(12));
    store.add_all(prober.sweep_subnets(pool.config().prefix, 64, 0xDA5E));
  }
  const std::size_t day0_rows = store.size();
  for (int day = 1; day < 5; ++day) {
    clock.advance_to(sim::days(day) + sim::hours(12));
    store.add_all(prober.sweep_subnets(pool.config().prefix, 56,
                                       0xDA5E + day));
  }
  // Both algorithms derive from one aggregate table built in a single fused
  // pass over the corpus; Algorithm 1 reads only the day-0 target spans (the
  // [0, day0_rows) window), Algorithm 2 the full-week response spans.
  analysis::AnalysisOptions aopt;
  aopt.trace = trace_sink.collector();
  aopt.attribute = false;
  aopt.collect_sightings = false;
  const analysis::AggregateTable day0 = analysis::analyze(
      analysis::StoreInput{store, 0, day0_rows}, nullptr, aopt);
  const analysis::AggregateTable week =
      analysis::analyze(store, nullptr, aopt);
  const unsigned alloc_len = analysis::allocation_median(day0).value_or(56);
  const unsigned pool_len = analysis::pool_median(week).value_or(48);
  const auto victim_pool = analysis::pool_for(week, victim_mac, pool_len);
  std::printf("inferred: allocation /%u, rotation pool /%u -> search %s\n\n",
              alloc_len, pool_len,
              victim_pool ? victim_pool->to_string().c_str() : "(unknown)");
  if (!victim_pool) return 1;

  // --- Tracking: a week of daily re-location.
  core::TrackerConfig config;
  config.target_mac = victim_mac;
  config.pool = *victim_pool;
  config.allocation_length = alloc_len;
  config.seed = 0x7AC;
  config.registry = &registry;
  config.journal = &journal;
  core::Tracker tracker{prober, config};

  std::printf("day  probes  method      victim address\n");
  for (std::int64_t day = 5; day < 12; ++day) {
    clock.advance_to(sim::days(day) + sim::hours(12));
    if (day >= 7) tracker.update_prediction();
    const auto attempt = tracker.locate(day);
    std::printf("%3lld  %6llu  %-10s  %s\n", static_cast<long long>(day),
                static_cast<unsigned long long>(attempt.probes_sent),
                attempt.found_by_prediction ? "predicted" : "sweep",
                attempt.found ? attempt.address.to_string().c_str()
                              : "(not found)");
    if (!attempt.found) return 1;

    // Verify against simulator ground truth: the attack really did follow
    // the right device.
    const auto truth = provider.wan_address({0, 17}, clock.now());
    if (attempt.address != truth) {
      std::printf("MISMATCH vs ground truth %s\n", truth.to_string().c_str());
      return 1;
    }
  }

  std::printf("\nthe victim's prefix rotated daily, yet every address above "
              "is the same household.\n");

  std::printf("\n");
  telemetry::print_summary(stdout, registry);
  if (journal.close()) {
    std::printf("  journal: %s (%zu events)\n",
                cli.path("track_device_journal.jsonl").c_str(),
                journal.events_written());
  }
  return trace_sink.finish() ? 0 : 1;
}
