// vendor_census.cpp - per-AS CPE manufacturer census (§5.1).
//
// Every EUI-64 response embeds the CPE's MAC; its OUI names the
// manufacturer. One sweep per provider yields the per-AS vendor breakdown
// and homogeneity index — the reconnaissance an attacker with a
// vendor-specific exploit would run first.

#include <cstdio>
#include <iostream>

#include "analysis/derive.h"
#include "analysis/engine.h"
#include "core/io.h"
#include "core/report.h"
#include "oui/oui_registry.h"
#include "probe/prober.h"
#include "sim/scenario.h"

#include "example_util.h"

int main(int argc, char** argv) {
  using namespace scent;

  // --out-dir=DIR routes the census corpus export.
  const examples::Cli cli = examples::Cli::parse(argc, argv);
  if (const int rc = cli.require_out_dir()) return rc;
  examples::TraceSink trace_sink{cli};

  sim::PaperWorldOptions options;
  options.tail_as_count = 6;
  options.scale = 0.5;
  sim::PaperWorld world = sim::make_paper_world(options);
  sim::VirtualClock clock{sim::hours(12)};
  probe::ProberOptions popt;
  popt.wire_mode = false;
  popt.packets_per_second = 1000000;
  probe::Prober prober{world.internet, clock, popt};

  // One probe per customer allocation in every pool: each responsive CPE
  // leaks its MAC exactly once.
  core::ObservationStore store;
  for (std::size_t p = 0; p < world.internet.provider_count(); ++p) {
    for (const auto& pool : world.internet.provider(p).pools()) {
      store.add_all(prober.sweep_subnets(pool.config().prefix,
                                         pool.config().allocation_length,
                                         0xCE45 + p));
    }
  }

  // One fused pass over the corpus; the census derives from the merged
  // per-device aggregate table (as would any other report — no rescans).
  analysis::AnalysisOptions aopt;
  aopt.trace = trace_sink.collector();
  aopt.collect_targets = false;
  aopt.collect_sightings = false;
  const analysis::AggregateTable agg =
      analysis::analyze(store, &world.internet.bgp(), aopt);
  const auto census =
      analysis::homogeneity(agg, oui::builtin_registry(), /*min_iids=*/50);

  core::TextTable table{
      {"ASN", "CC", "IIDs", "homogeneity", "dominant vendor", "runner-up"}};
  for (const auto& as : census) {
    char index_text[16];
    std::snprintf(index_text, sizeof index_text, "%.3f", as.index());
    table.add_row({std::to_string(as.asn), as.country,
                   std::to_string(as.unique_iids), index_text,
                   as.dominant_vendor(),
                   as.vendors.size() > 1 ? as.vendors[1].vendor : "-"});
  }
  table.print(std::cout);

  std::printf("\nfused pass: %llu rows -> %zu EUI-64 devices, %zu attributed ASes\n",
              static_cast<unsigned long long>(agg.rows_scanned),
              agg.devices.size(), agg.as_rollups.size());
  std::printf("\n%zu ASes; a homogeneity index near 1.0 means one vendor's\n"
              "firmware fleet-wide — a monoculture a vendor-specific exploit "
              "can sweep.\n",
              census.size());

  // Export the census corpus as CSV — the text debug/export path (binary
  // snapshots are the default persistence format; see corpus/snapshot.h).
  const std::string csv_path = cli.path("vendor_census_observations.csv");
  if (core::save_observations(csv_path, store)) {
    std::printf("corpus export: %s (%zu observations)\n", csv_path.c_str(),
                store.size());
  }
  if (!trace_sink.finish()) return 1;
  return census.empty() ? 1 : 0;
}
