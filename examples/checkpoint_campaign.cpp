// checkpoint_campaign.cpp - durable, resumable campaigns (§5f).
//
// Runs a daily campaign with checkpointing enabled: every completed day
// lands in <out-dir>/day_NNNN.snap plus a manifest. Kill the process at
// any point — rerunning with the same arguments resumes from the last
// committed day and finishes with a corpus *bit-identical* to an
// uninterrupted run, at any thread count.
//
// Flags:
//   --out-dir=DIR         checkpoint directory (required in practice)
//   --threads=N           sweep shards (0 = hardware concurrency)
//   --pipeline            streamed scheduler (bounded queues, §5i);
//                         bit-identical corpus, snapshots and digest
//   --queue-capacity=N    queue depth (batches) for --pipeline
//   --snapshot-version=V  on-disk snapshot format for the day snapshots:
//                         2 (default, block-compressed) or 1 (frozen v1).
//                         Resume auto-detects per file, so a chain may mix
//                         versions across kills
//   --days=N              campaign length (default 6)
//   --kill-after-day=K    simulate a crash: exit hard with status 42 (no
//                         cleanup, like a kill -9) right after day K
//                         commits
//   --kill-mid-day=K      simulate a crash: exit hard with status 43 the
//                         moment day K has drained its first rows —
//                         nothing about day K is committed yet, so a
//                         resume must replay it from scratch
//   --digest-only         print only the final corpus digest (for scripts)
//
// The digest folds every observation column, every day summary, and the
// inferred allocation map into one 64-bit value, so two runs printing the
// same digest ran byte-identical campaigns.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/campaign.h"
#include "probe/prober.h"
#include "sim/rng.h"
#include "sim/scenario.h"
#include "telemetry/journal.h"
#include "telemetry/metrics.h"

#include "example_util.h"

namespace {

using namespace scent;

std::uint64_t campaign_digest(const core::CampaignResult& result) {
  std::uint64_t digest = 0xD16E57;
  const core::ObservationStore& store = result.observations;
  for (std::size_t i = 0; i < store.size(); ++i) {
    digest = sim::mix64(digest, store.target(i).network(),
                        store.target(i).iid());
    digest = sim::mix64(digest, store.response(i).network(),
                        store.response(i).iid());
    digest = sim::mix64(digest, store.type_code(i),
                        static_cast<std::uint64_t>(store.time(i)));
  }
  for (const auto& day : result.daily) {
    digest = sim::mix64(digest, static_cast<std::uint64_t>(day.day),
                        day.probes);
    digest = sim::mix64(digest, day.responses, day.unique_eui64_iids);
  }
  for (const auto& [asn, length] : result.allocation_length_by_as) {
    digest = sim::mix64(digest, asn, length);
  }
  digest = sim::mix64(digest, result.probes_sent, result.responses);
  return digest;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scent;

  const examples::Cli cli = examples::Cli::parse(argc, argv);
  if (const int rc = cli.require_out_dir()) return rc;
  unsigned days = 6;
  long kill_after_day = -1;
  long kill_mid_day = -1;
  bool digest_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--days=", 7) == 0) {
      days = static_cast<unsigned>(std::strtoul(argv[i] + 7, nullptr, 10));
    } else if (std::strncmp(argv[i], "--kill-after-day=", 17) == 0) {
      kill_after_day = std::strtol(argv[i] + 17, nullptr, 10);
    } else if (std::strncmp(argv[i], "--kill-mid-day=", 15) == 0) {
      kill_mid_day = std::strtol(argv[i] + 15, nullptr, 10);
    } else if (std::strcmp(argv[i], "--digest-only") == 0) {
      digest_only = true;
    }
  }

  // The same world every run: resume only works because the campaign is a
  // deterministic function of (world seed, campaign seed, clock schedule).
  sim::PaperWorld world = sim::make_tiny_world(0xC4A1, 48);
  sim::VirtualClock clock{sim::hours(10)};
  probe::Prober prober{world.internet, clock,
                       {.packets_per_second = 1000000, .wire_mode = false}};

  std::vector<net::Prefix> targets;
  const auto& pool = world.internet.provider(world.versatel).pools()[0];
  for (std::uint64_t i = 0; i < 4; ++i) {
    targets.push_back(net::Prefix{
        pool.config().prefix.subnet(48, net::Uint128{i}).base(), 48});
  }

  telemetry::Registry registry;
  registry.set_clock(&clock);
  prober.attach_telemetry(registry);
  telemetry::Journal journal;
  journal.open(cli.path("checkpoint_campaign_journal.jsonl"));
  journal.set_clock(&clock);

  examples::TraceSink trace_sink{cli};

  core::CampaignOptions options;
  options.days = days;
  options.threads = cli.threads;
  options.pipeline = cli.pipeline;
  options.queue_capacity = cli.queue_capacity;
  options.snapshot_version = cli.snapshot_version;
  options.checkpoint_dir = cli.out_dir;
  options.registry = &registry;
  options.journal = &journal;
  options.trace = trace_sink.collector();
  unsigned committed = 0;
  options.on_day_complete = [&](const core::DaySummary& summary) {
    if (!digest_only) {
      std::printf("  day %lld committed: %llu probes, %llu responses\n",
                  static_cast<long long>(summary.day),
                  static_cast<unsigned long long>(summary.probes),
                  static_cast<unsigned long long>(summary.responses));
    }
    // Simulated crash: the snapshot + manifest for this day are already
    // durable, so exit as abruptly as a kill -9 (no flushes, no
    // destructors) and let the next run prove the chain resumes.
    if (kill_after_day >= 0 &&
        ++committed == static_cast<unsigned>(kill_after_day) + 1) {
      std::_Exit(42);
    }
  };
  // Mid-day kill hook: die the moment campaign day K (0-based, relative to
  // this run's first day) has drained its first rows. Day K's snapshot and
  // manifest entry are NOT durable yet — the resumed run must replay the
  // day in full and still land on the uninterrupted digest.
  if (kill_mid_day >= 0) {
    std::int64_t first_seen = -1;
    options.on_day_progress = [kill_mid_day, first_seen](
                                  std::int64_t day,
                                  std::size_t rows) mutable {
      if (first_seen < 0) first_seen = day;
      if (day - first_seen == kill_mid_day && rows > 0) std::_Exit(43);
    };
  }

  const core::CampaignResult result =
      run_campaign(world.internet, clock, prober, targets, options);
  journal.close();
  if (!trace_sink.finish()) return 1;

  const std::uint64_t digest = campaign_digest(result);
  if (digest_only) {
    std::printf("%016llx\n", static_cast<unsigned long long>(digest));
    return result.checkpoint_ok ? 0 : 1;
  }

  std::printf("\ncampaign: %u days (%u resumed from %s), %llu probes, "
              "%zu observations\n",
              days, result.resumed_days, cli.out_dir.c_str(),
              static_cast<unsigned long long>(result.probes_sent),
              result.observations.size());
  std::printf("corpus digest: %016llx\n",
              static_cast<unsigned long long>(digest));
  // The persistence funnel: what this run wrote (v-version snapshots, total
  // on-disk bytes) and what the resume replay read (v2 block skip counters;
  // both zero for an unresumed run or an all-v1 chain).
  const std::uint64_t snap_bytes = static_cast<std::uint64_t>(
      registry.gauge("corpus.snapshot_bytes").value());
  const unsigned written_days = days - result.resumed_days;
  std::printf("snapshot funnel: v%u x %u days, %llu bytes on disk (%llu "
              "B/day), replay blocks read/skipped: %lld/%lld\n",
              cli.snapshot_version, written_days,
              static_cast<unsigned long long>(snap_bytes),
              static_cast<unsigned long long>(
                  written_days > 0 ? snap_bytes / written_days : 0),
              static_cast<long long>(
                  registry.gauge("corpus.blocks_read").value()),
              static_cast<long long>(
                  registry.gauge("corpus.blocks_skipped").value()));
  std::printf("snapshots: %s/day_0000.snap .. day_%04u.snap + manifest.txt\n",
              cli.out_dir.c_str(), days - 1);
  return result.checkpoint_ok ? 0 : 1;
}
