// serve_tracker.cpp - live queries against a campaign in flight (§5k).
//
// Runs a checkpointing daily campaign with a serve sink: every completed
// day is applied to a ServeTable as one delta and published as an
// immutable TableVersion, while concurrent query threads — the
// "tracker's operators" — pin the current version lock-free and run
// derive.h reports (pool/allocation medians, per-device pools, sighting
// histories, AS rollups) against it the whole time. No reader ever
// blocks a delta apply, and no delta apply ever tears a read: a pinned
// version stays frozen until its shared_ptr drops.
//
// Flags (shared ones in example_util.h):
//   --threads=N          sweep + delta-scan shards
//   --pipeline           streamed scheduler; deltas accumulate inside the
//                        probe shards instead of a post-merge scan
//   --queue-capacity=N   queue depth (batches) for --pipeline
//   --out-dir=DIR        checkpoint directory (resume replays the chain
//                        into the ServeTable before live days continue)
//   --days=N             campaign length (default 6)
//   --query-threads=N    concurrent reader threads (default 2)
//   --kill-after-day=K   exit hard with status 42 right after day K
//                        commits — rerun with the same arguments and the
//                        resumed ServeTable answers identically
//   --digest-only        print only the final version digest (the
//                        kill+resume harness's equality check)
//
// The digest folds every field of the final TableVersion — device
// aggregates, per-AS spans, rollups, both rotation windows — so two runs
// printing the same digest serve byte-identical answers.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "analysis/derive.h"
#include "core/campaign.h"
#include "core/rotation_detector.h"
#include "probe/prober.h"
#include "serve/serve_table.h"
#include "sim/rng.h"
#include "sim/scenario.h"
#include "telemetry/metrics.h"

#include "example_util.h"

namespace {

using namespace scent;

/// Order-sensitive digest of everything a reader could observe in the
/// version. threads_used is deliberately excluded — it is execution
/// metadata, and the whole point is that the answers do not depend on it.
std::uint64_t version_digest(const serve::TableVersion& v) {
  std::uint64_t d = 0x5EE0D16E57ULL;
  d = sim::mix64(d, v.version, static_cast<std::uint64_t>(v.day));
  d = sim::mix64(d, v.delta_rows, v.table.rows_scanned);
  d = sim::mix64(d, v.table.eui_rows, v.table.devices.size());
  for (const auto& [mac, dev] : v.table.devices) {
    d = sim::mix64(d, mac.bits(), dev.oui);
    d = sim::mix64(d, dev.observations, dev.day_bits);
    d = sim::mix64(d, dev.target_lo, dev.target_hi);
    d = sim::mix64(d, dev.response_lo, dev.response_hi);
    d = sim::mix64(d, static_cast<std::uint64_t>(dev.first_day),
                   static_cast<std::uint64_t>(dev.last_day));
    for (const auto& span : dev.per_as) {
      d = sim::mix64(d, span.asn, span.observations);
      d = sim::mix64(d, span.target_lo, span.target_hi);
      d = sim::mix64(d, span.response_lo, span.response_hi);
      for (const std::int64_t day : span.days.values()) {
        d = sim::mix64(d, static_cast<std::uint64_t>(day), 0x0DA1);
      }
    }
    for (const auto& s : dev.sightings) {
      d = sim::mix64(d, static_cast<std::uint64_t>(s.day), s.network);
    }
  }
  for (const auto& rollup : v.table.as_rollups) {
    d = sim::mix64(d, rollup.asn, rollup.observations);
    d = sim::mix64(d, rollup.devices, rollup.country.size());
  }
  const auto fold_window = [&d](const core::Snapshot& snap) {
    for (const auto& [target, response] : snap.map()) {
      d = sim::mix64(d, target.network(), target.iid());
      d = sim::mix64(d, response.network(), response.iid());
    }
  };
  fold_window(v.day_window);
  fold_window(v.prev_window);
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scent;

  const examples::Cli cli = examples::Cli::parse(argc, argv);
  if (const int rc = cli.require_out_dir()) return rc;
  unsigned days = 6;
  unsigned query_threads = 2;
  long kill_after_day = -1;
  bool digest_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--days=", 7) == 0) {
      days = static_cast<unsigned>(std::strtoul(argv[i] + 7, nullptr, 10));
    } else if (std::strncmp(argv[i], "--query-threads=", 16) == 0) {
      query_threads =
          static_cast<unsigned>(std::strtoul(argv[i] + 16, nullptr, 10));
    } else if (std::strncmp(argv[i], "--kill-after-day=", 17) == 0) {
      kill_after_day = std::strtol(argv[i] + 17, nullptr, 10);
    } else if (std::strcmp(argv[i], "--digest-only") == 0) {
      digest_only = true;
    }
  }

  sim::PaperWorld world = sim::make_tiny_world(0xC4A1, 48);
  sim::VirtualClock clock{sim::hours(10)};
  probe::Prober prober{world.internet, clock,
                       {.packets_per_second = 1000000, .wire_mode = false}};

  std::vector<net::Prefix> targets;
  const auto& pool = world.internet.provider(world.versatel).pools()[0];
  for (std::uint64_t i = 0; i < 4; ++i) {
    targets.push_back(net::Prefix{
        pool.config().prefix.subnet(48, net::Uint128{i}).base(), 48});
  }

  telemetry::Registry registry;
  registry.set_clock(&clock);
  prober.attach_telemetry(registry);
  examples::TraceSink trace_sink{cli};

  serve::ServeOptions serve_options;
  serve_options.threads = cli.threads;
  serve_options.bgp = &world.internet.bgp();
  serve_options.registry = &registry;
  serve_options.trace = trace_sink.collector();
  serve::ServeTable table{serve_options};

  // Reader threads: pin the current version, run the day's reports
  // against it, repeat until the campaign finishes. They start before the
  // campaign (current() returns nullptr until the first publish) and see
  // every version go by.
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> queries{0};
  std::vector<std::thread> readers;
  readers.reserve(query_threads);
  for (unsigned t = 0; t < query_threads; ++t) {
    readers.emplace_back([&table, &done, &queries] {
      std::uint64_t local = 0;
      while (!done.load(std::memory_order_acquire)) {
        const auto version = table.current();
        if (version == nullptr) {
          std::this_thread::yield();
          continue;
        }
        // A pinned TableVersion converts to const AggregateTable&, so the
        // derive.h reports take it directly.
        const auto alloc_median = analysis::allocation_median(*version);
        const auto rotation_pool_median = analysis::pool_median(*version);
        (void)alloc_median;
        (void)rotation_pool_median;
        local += 2;
        if (!version->table.devices.empty()) {
          const net::MacAddress mac = version->table.devices.begin()->first;
          if (const auto len = analysis::pool_length_for(*version, mac)) {
            (void)analysis::pool_for(*version, mac, *len);
          }
          (void)analysis::sightings_of(*version, mac);
          local += 2;
        }
      }
      queries.fetch_add(local, std::memory_order_relaxed);
    });
  }

  core::CampaignOptions options;
  options.days = days;
  options.threads = cli.threads;
  options.pipeline = cli.pipeline;
  options.queue_capacity = cli.queue_capacity;
  options.snapshot_version = cli.snapshot_version;
  options.checkpoint_dir = cli.out_dir;
  options.registry = &registry;
  options.trace = trace_sink.collector();
  options.serve = &table;
  unsigned committed = 0;
  options.on_day_complete = [&](const core::DaySummary& summary) {
    if (!digest_only) {
      const auto version = table.current();
      std::printf("  day %lld served: version %llu, %zu devices, pool "
                  "median /%u\n",
                  static_cast<long long>(summary.day),
                  static_cast<unsigned long long>(
                      version != nullptr ? version->version : 0),
                  version != nullptr ? version->table.devices.size() : 0,
                  version != nullptr
                      ? analysis::pool_median(*version).value_or(0)
                      : 0);
    }
    if (kill_after_day >= 0 &&
        ++committed == static_cast<unsigned>(kill_after_day) + 1) {
      std::_Exit(42);
    }
  };

  const std::uint64_t wall_start = trace::TraceRecorder::now_wall_ns();
  const core::CampaignResult result =
      run_campaign(world.internet, clock, prober, targets, options);
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  const std::uint64_t wall_ns =
      trace::TraceRecorder::now_wall_ns() - wall_start;
  if (!trace_sink.finish()) return 1;

  const auto version = table.current();
  if (version == nullptr) {
    std::fprintf(stderr, "no version published\n");
    return 1;
  }
  const std::uint64_t digest = version_digest(*version);
  if (digest_only) {
    std::printf("%016llx\n", static_cast<unsigned long long>(digest));
    return result.checkpoint_ok ? 0 : 1;
  }

  const std::uint64_t total_queries =
      queries.load(std::memory_order_relaxed) + table.reads();
  std::printf("\ncampaign: %u days (%u resumed), %zu observations, "
              "%llu versions published\n",
              days, result.resumed_days, result.observations.size(),
              static_cast<unsigned long long>(table.versions_published()));
  std::printf("readers: %u threads, %llu version pins, %llu queries "
              "(%.0f queries/s against live ingest)\n",
              query_threads,
              static_cast<unsigned long long>(table.reads()),
              static_cast<unsigned long long>(total_queries),
              wall_ns > 0 ? 1e9 * static_cast<double>(total_queries) /
                                static_cast<double>(wall_ns)
                          : 0.0);

  // The final version carries the last two day windows — the §4.3
  // detector's inputs — so "did anything rotate overnight" is one call
  // against served state, no corpus rescan.
  const auto verdicts =
      core::detect_rotation(version->prev_window, version->day_window);
  std::size_t rotating = 0;
  for (const auto& verdict : verdicts) {
    if (verdict.rotating) ++rotating;
  }
  std::printf("rotation (day %lld vs previous): %zu of %zu /48s rotating\n",
              static_cast<long long>(version->day),
              rotating, verdicts.size());
  std::printf("serve digest: %016llx\n",
              static_cast<unsigned long long>(digest));
  return result.checkpoint_ok ? 0 : 1;
}
