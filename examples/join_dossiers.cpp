// join_dossiers.cpp - cross-dataset device dossiers (DESIGN.md §5l).
//
// The IPvSeeYou coupling, end to end: a rotation corpus built from EUI-64
// snapshot days is joined against a MAC-keyed geolocation feed, producing
// one dossier per device — its rotation history across two providers, its
// vendor (resolved from the leaked MAC's OUI), and the feed's street-level
// anchor. The derived reports fall out of the dossier table: which MACs
// surfaced behind more than one AS, and when each device switched
// providers.
//
// The join runs the partitioned out-of-core engine with a spill directory,
// so the same binary demonstrates the full pipeline: radix partition ->
// spilled runs -> partition-wise merge-join with block pruning -> P-way
// canonical merge. Output files are byte-identical at any --threads and
// --partitions (check.sh cmp's 1-thread vs 8-thread runs).
//
// Flags (shared ones in example_util.h):
//   --threads=N       join worker shards (oversubscription allowed: the
//                     merge contract makes results identical anyway)
//   --partitions=P    radix fan-out (default 8, rounded to a power of two)
//   --days=N          corpus campaign length (default 6)
//   --devices=N       CPE fleet size (default 4096)
//   --out-dir=DIR     corpus, feed, spill and report files land here

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/dossier.h"
#include "core/observation.h"
#include "corpus/geo_feed.h"
#include "corpus/snapshot.h"
#include "join/join.h"
#include "netbase/eui64.h"
#include "oui/oui_registry.h"
#include "routing/bgp_table.h"
#include "sim/geo_feed.h"
#include "sim/rng.h"
#include "telemetry/metrics.h"

#include "example_util.h"

namespace {

using namespace scent;

constexpr std::uint64_t kFleetOui = 0x3810d5;       // AVM GmbH (builtin)
constexpr std::uint64_t kAlienOui = 0xf4f26d;       // feed-only devices
constexpr std::uint64_t kProviderA = 0x20010db8ULL << 32;  // 2001:db8::/32
constexpr std::uint64_t kProviderB = 0x20014860ULL << 32;  // 2001:4860::/32
constexpr std::uint32_t kAsnA = 64496;
constexpr std::uint32_t kAsnB = 64497;

/// Device i's /64 on `day`: rotates daily inside its provider's /32; a
/// quarter of the fleet moves from provider A to B halfway through.
std::uint64_t network_of(std::uint64_t device, std::int64_t day,
                         std::int64_t days) {
  const bool switched = (device % 4 == 3) && day >= days / 2;
  const std::uint64_t base = switched ? kProviderB : kProviderA;
  const std::uint64_t slot =
      sim::mix64(device, static_cast<std::uint64_t>(day)) & 0xffffff;
  return base | (slot << 8);
}

}  // namespace

int main(int argc, char** argv) {
  const examples::Cli cli = examples::Cli::parse(argc, argv);
  if (const int rc = cli.require_out_dir()) return rc;

  std::int64_t days = 6;
  std::uint64_t devices = 4096;
  unsigned partitions = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--days=", 7) == 0) {
      days = std::strtol(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--devices=", 10) == 0) {
      devices = std::strtoull(argv[i] + 10, nullptr, 10);
    } else if (std::strncmp(argv[i], "--partitions=", 13) == 0) {
      partitions = static_cast<unsigned>(
          std::strtoul(argv[i] + 13, nullptr, 10));
    }
  }
  if (days < 1) days = 1;
  if (devices < 1) devices = 1;

  // --- The rotation corpus: one snapshot per day, every device answering
  // EUI-64 probes from that day's rotated /64.
  std::vector<std::string> day_paths;
  for (std::int64_t day = 0; day < days; ++day) {
    core::ObservationStore store;
    for (std::uint64_t i = 0; i < devices; ++i) {
      core::Observation obs;
      const std::uint64_t network = network_of(i, day, days);
      obs.target = net::Ipv6Address{network, 1};
      obs.response = net::Ipv6Address{
          network, net::mac_to_eui64(net::MacAddress{(kFleetOui << 24) | i})};
      obs.type = wire::Icmpv6Type::kEchoReply;
      obs.code = 0;
      obs.time = static_cast<sim::TimePoint>(
          static_cast<std::uint64_t>(day) * 86400000000ULL + i);
      store.add(obs);
    }
    corpus::SnapshotWriter writer;
    writer.append(store);
    day_paths.push_back(cli.path("join_day_" + std::to_string(day) +
                                 ".snap"));
    if (!writer.write(day_paths.back())) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   day_paths.back().c_str());
      return 1;
    }
  }

  // --- The geolocation feed: the fleet's OUI (joins) plus an alien OUI the
  // corpus never saw — its MAC-disjoint blocks are what the engine prunes.
  sim::GeoFeedSpec spec;
  spec.seed = 7;
  spec.ouis = {static_cast<std::uint32_t>(kFleetOui),
               static_cast<std::uint32_t>(kAlienOui)};
  spec.devices_per_oui = devices;
  spec.base_asn = 64500;
  spec.asn_count = 4;
  spec.first_day = 0;
  spec.last_day = days - 1;
  const sim::GeoFeedGenerator generator{spec};
  const std::string feed_path = cli.path("join_geo_feed.gfd");
  {
    corpus::GeoFeedWriter writer;
    if (!writer.open(feed_path)) {
      std::fprintf(stderr, "error: cannot write %s\n", feed_path.c_str());
      return 1;
    }
    for (std::uint64_t i = 0; i < generator.records(); ++i) {
      writer.append(generator.record(i));
    }
    if (!writer.finish()) {
      std::fprintf(stderr, "error: feed write failed\n");
      return 1;
    }
  }

  // --- The attribution view both join sides agree on.
  routing::BgpTable bgp;
  bgp.announce(routing::Advertisement{
      net::Prefix(net::Ipv6Address{kProviderA, 0}, 32), kAsnA, "DE",
      "Provider-A"});
  bgp.announce(routing::Advertisement{
      net::Prefix(net::Ipv6Address{kProviderB, 0}, 32), kAsnB, "DE",
      "Provider-B"});

  // --- The join.
  telemetry::Registry registry;
  join::JoinOptions options;
  options.threads = cli.threads;
  options.oversubscribe = true;
  options.partitions = partitions;
  options.spill_dir = cli.path("join_spill");
  options.bgp = &bgp;
  options.telemetry = &registry;
  join::DossierJoin engine{options};
  for (std::int64_t day = 0; day < days; ++day) {
    engine.add_corpus_day(day_paths[static_cast<std::size_t>(day)], day);
  }
  engine.add_geo_feed(feed_path);

  const auto table = engine.run_table();
  if (!table) {
    std::fprintf(stderr, "error: join failed\n");
    return 1;
  }
  const join::JoinStats& stats = engine.stats();

  // --- Reports. dossiers.tsv: one line per device; timelines.tsv: the
  // cross-AS story. Both byte-identical at any thread count / fan-out.
  const oui::Registry& vendors = oui::builtin_registry();
  const std::string dossiers_path = cli.path("dossiers.tsv");
  std::FILE* out = std::fopen(dossiers_path.c_str(), "w");
  if (out == nullptr) return 1;
  std::fprintf(out,
               "mac\tvendor\tsightings\tdistinct_asns\tfirst_day\tlast_day\t"
               "anchor_lat_udeg\tanchor_lon_udeg\tanchor_asn\n");
  for (const analysis::DeviceDossier& d : table->rows()) {
    const auto vendor = vendors.vendor(d.mac);
    std::vector<std::uint32_t> asns;
    for (const analysis::DossierSighting& s : d.sightings) {
      if (s.asn != 0) asns.push_back(s.asn);
    }
    std::sort(asns.begin(), asns.end());
    asns.erase(std::unique(asns.begin(), asns.end()), asns.end());
    if (d.anchors.empty()) {
      std::fprintf(out, "%s\t%s\t%zu\t%zu\t%lld\t%lld\t-\t-\t-\n",
                   d.mac.to_string().c_str(),
                   vendor ? std::string(*vendor).c_str() : "(unknown)",
                   d.sightings.size(), asns.size(),
                   static_cast<long long>(d.sightings.front().day),
                   static_cast<long long>(d.sightings.back().day));
    } else {
      const analysis::GeoAnchor& a = d.anchors.front();
      std::fprintf(out, "%s\t%s\t%zu\t%zu\t%lld\t%lld\t%d\t%d\t%u\n",
                   d.mac.to_string().c_str(),
                   vendor ? std::string(*vendor).c_str() : "(unknown)",
                   d.sightings.size(), asns.size(),
                   static_cast<long long>(d.sightings.front().day),
                   static_cast<long long>(d.sightings.back().day),
                   a.lat_udeg, a.lon_udeg, a.asn);
    }
  }
  std::fclose(out);

  const auto reuse = analysis::cross_as_mac_reuse(*table);
  const auto switches = analysis::provider_switch_timeline(*table);
  const std::string timelines_path = cli.path("timelines.tsv");
  out = std::fopen(timelines_path.c_str(), "w");
  if (out == nullptr) return 1;
  std::fprintf(out, "kind\tmac\tdetail\tday\n");
  for (const analysis::MacReuse& r : reuse) {
    std::string asns;
    for (const std::uint32_t asn : r.asns) {
      if (!asns.empty()) asns += ",";
      asns += std::to_string(asn);
    }
    std::fprintf(out, "reuse\t%s\t%s\t%lld-%lld\n", r.mac.to_string().c_str(),
                 asns.c_str(), static_cast<long long>(r.first_day),
                 static_cast<long long>(r.last_day));
  }
  for (const analysis::ProviderSwitch& s : switches) {
    std::fprintf(out, "switch\t%s\t%u->%u\t%lld\n", s.mac.to_string().c_str(),
                 s.from_asn, s.to_asn, static_cast<long long>(s.day));
  }
  std::fclose(out);

  const auto census = analysis::dossier_vendor_census(*table, vendors);
  std::printf("join: %llu corpus rows x %llu feed rows -> %llu dossiers "
              "(%.0f%% anchored)\n",
              static_cast<unsigned long long>(stats.corpus_rows),
              static_cast<unsigned long long>(stats.geo_rows),
              static_cast<unsigned long long>(stats.dossiers),
              100.0 * analysis::anchored_fraction(*table));
  std::printf("      %u threads, %u partitions, %llu spill runs "
              "(%.1f MB), blocks read %llu, pruned %llu\n",
              stats.threads, stats.partitions,
              static_cast<unsigned long long>(stats.spill_runs),
              static_cast<double>(stats.spill_bytes) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(stats.blocks_read),
              static_cast<unsigned long long>(stats.blocks_pruned));
  std::printf("      %zu cross-AS reuse MACs, %zu provider switches\n",
              reuse.size(), switches.size());
  for (const auto& [vendor, count] : census) {
    std::printf("      vendor %-24s %llu devices\n", vendor.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("reports: %s, %s\n", dossiers_path.c_str(),
              timelines_path.c_str());
  return 0;
}
