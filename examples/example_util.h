// example_util.h - CLI plumbing shared by every example.
//
// The shared flags, parsed identically everywhere:
//   --threads=N      worker shards for engine-backed sweeps (0 = hardware
//                    concurrency); bit-identical results at any value.
//   --pipeline       streamed scheduler (DESIGN.md §5i): probe shards
//                    drain through bounded queues into ingest/snapshot
//                    concurrently with probing; bit-identical results.
//   --queue-capacity=N  bounded-queue depth, in observation batches, for
//                    --pipeline (default 16).
//   --snapshot-version=V  on-disk snapshot format for examples that write
//                    snapshots: 2 (default, block-compressed) or 1 (the
//                    frozen uncompressed layout). Readers auto-detect.
//   --out-dir=DIR    where journals, snapshots and other artifacts land
//                    (created if needed; default "." — never a hardcoded
//                    file name in the repo root).
//   --trace-out=FILE write a Chrome trace-event JSON timeline of the run
//                    (open in https://ui.perfetto.dev or chrome://tracing).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "trace/chrome_export.h"
#include "trace/recorder.h"

namespace scent::examples {

struct Cli {
  unsigned threads = 1;
  bool pipeline = false;
  unsigned queue_capacity = 16;
  unsigned snapshot_version = 2;
  std::string out_dir = ".";
  bool out_dir_ok = true;  ///< False when --out-dir could not be created.
  std::string trace_out;   ///< Empty = tracing off.

  /// Parses the shared flags; unrecognized arguments are left for the
  /// example's own parsing.
  static Cli parse(int argc, char** argv) {
    Cli cli;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--threads=", 10) == 0) {
        cli.threads =
            static_cast<unsigned>(std::strtoul(argv[i] + 10, nullptr, 10));
      } else if (std::strcmp(argv[i], "--pipeline") == 0) {
        cli.pipeline = true;
      } else if (std::strncmp(argv[i], "--queue-capacity=", 17) == 0) {
        cli.queue_capacity =
            static_cast<unsigned>(std::strtoul(argv[i] + 17, nullptr, 10));
      } else if (std::strncmp(argv[i], "--snapshot-version=", 19) == 0) {
        cli.snapshot_version =
            static_cast<unsigned>(std::strtoul(argv[i] + 19, nullptr, 10));
      } else if (std::strncmp(argv[i], "--out-dir=", 10) == 0) {
        cli.out_dir = argv[i] + 10;
      } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
        cli.trace_out = argv[i] + 12;
      }
    }
    if (cli.out_dir.empty()) cli.out_dir = ".";
    if (cli.out_dir != ".") {
      std::error_code ec;
      std::filesystem::create_directories(cli.out_dir, ec);
      // create_directories reports false-without-error when the directory
      // already exists, so test existence, not the return value. An example
      // that cannot land artifacts must fail loudly, not write nothing and
      // exit 0 — main() checks require_out_dir() before doing any work.
      cli.out_dir_ok = std::filesystem::is_directory(cli.out_dir, ec);
      if (!cli.out_dir_ok) {
        std::fprintf(stderr, "error: cannot create --out-dir=%s\n",
                     cli.out_dir.c_str());
      }
    }
    return cli;
  }

  /// Exit status for unusable --out-dir, or 0. Call first in main():
  ///   if (int rc = cli.require_out_dir()) return rc;
  [[nodiscard]] int require_out_dir() const noexcept {
    return out_dir_ok ? 0 : 2;
  }

  /// Routes an artifact file name through the output directory.
  [[nodiscard]] std::string path(const std::string& file) const {
    return out_dir + "/" + file;
  }
};

/// Owns the optional trace collector behind --trace-out. collector() is
/// null when tracing is off — the same pointer the instrumented layers
/// null-check — and finish() writes the Chrome trace-event JSON file and
/// reports it on stdout. Safe to call finish() exactly once, at the end.
class TraceSink {
 public:
  explicit TraceSink(const Cli& cli) : path_(cli.trace_out) {
    if (!path_.empty()) {
      collector_ = std::make_unique<trace::TraceCollector>();
    }
  }

  [[nodiscard]] trace::TraceCollector* collector() noexcept {
    return collector_.get();
  }

  /// Writes the trace when enabled. Returns false only on write failure.
  bool finish() {
    if (collector_ == nullptr) return true;
    if (!trace::write_chrome_trace(path_, *collector_)) {
      std::fprintf(stderr, "trace write failed: %s\n", path_.c_str());
      return false;
    }
    std::printf("trace: %s (%llu events across %zu lanes, %llu dropped)\n",
                path_.c_str(),
                static_cast<unsigned long long>(collector_->total_events()),
                collector_->lanes().size(),
                static_cast<unsigned long long>(collector_->total_dropped()));
    return true;
  }

 private:
  std::string path_;
  std::unique_ptr<trace::TraceCollector> collector_;
};

}  // namespace scent::examples
