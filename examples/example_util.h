// example_util.h - CLI plumbing shared by every example.
//
// Two flags, parsed identically everywhere:
//   --threads=N    worker shards for engine-backed sweeps (0 = hardware
//                  concurrency); bit-identical results at any value.
//   --out-dir=DIR  where journals, snapshots and other artifacts land
//                  (created if needed; default "." — never a hardcoded
//                  file name in the repo root).
#pragma once

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

namespace scent::examples {

struct Cli {
  unsigned threads = 1;
  std::string out_dir = ".";

  /// Parses the shared flags; unrecognized arguments are left for the
  /// example's own parsing.
  static Cli parse(int argc, char** argv) {
    Cli cli;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--threads=", 10) == 0) {
        cli.threads =
            static_cast<unsigned>(std::strtoul(argv[i] + 10, nullptr, 10));
      } else if (std::strncmp(argv[i], "--out-dir=", 10) == 0) {
        cli.out_dir = argv[i] + 10;
      }
    }
    if (cli.out_dir.empty()) cli.out_dir = ".";
    if (cli.out_dir != ".") {
      std::error_code ec;
      std::filesystem::create_directories(cli.out_dir, ec);
    }
    return cli;
  }

  /// Routes an artifact file name through the output directory.
  [[nodiscard]] std::string path(const std::string& file) const {
    return out_dir + "/" + file;
  }
};

}  // namespace scent::examples
