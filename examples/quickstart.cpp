// quickstart.cpp - the library in five minutes.
//
// 1. Decode an EUI-64 IPv6 address back to the CPE's MAC and manufacturer.
// 2. Build a small simulated Internet with a prefix-rotating provider.
// 3. Probe a customer prefix and watch the CPE leak its WAN address.
// 4. Let the provider rotate prefixes overnight, and re-find the same
//    device by its immutable EUI-64 IID — the paper's core result.

#include <cstdio>

#include "core/tracker.h"
#include "netbase/eui64.h"
#include "oui/oui_registry.h"
#include "probe/prober.h"
#include "probe/target_generator.h"
#include "sim/scenario.h"

#include "example_util.h"

int main(int argc, char** argv) {
  using namespace scent;

  // Accepts the shared flags like every example; the quickstart probes
  // serially, so --trace-out yields an empty (but valid) timeline.
  const examples::Cli cli = examples::Cli::parse(argc, argv);
  if (const int rc = cli.require_out_dir()) return rc;
  examples::TraceSink trace_sink{cli};

  // --- 1. EUI-64 is reversible: address -> MAC -> manufacturer.
  const auto addr = *net::Ipv6Address::parse("2001:16b8:2:300:3a10:d5ff:feaa:bbcc");
  const auto mac = net::embedded_mac(addr);
  std::printf("address        %s\n", addr.to_string().c_str());
  std::printf("embedded MAC   %s\n", mac->to_string().c_str());
  const auto vendor = oui::builtin_registry().vendor(*mac);
  std::printf("manufacturer   %s\n\n",
              vendor ? std::string{*vendor}.c_str() : "(unknown)");

  // --- 2. A tiny Internet: one daily-rotating provider, one static one.
  sim::PaperWorld world = sim::make_tiny_world();
  sim::VirtualClock clock{sim::hours(12)};  // day 0, noon
  probe::Prober prober{world.internet, clock};

  // Ground truth (for the demo only; the attack below never uses it).
  const sim::Provider& rotator = world.internet.provider(world.versatel);
  const auto target_device = sim::Provider::DeviceRef{0, 0};
  const net::Ipv6Address wan_today =
      rotator.wan_address(target_device, clock.now());
  const net::MacAddress target_mac =
      rotator.pools()[0].devices()[0].mac;
  std::printf("victim CPE MAC      %s\n", target_mac.to_string().c_str());
  std::printf("victim WAN (day 0)  %s\n", wan_today.to_string().c_str());

  // --- 3. Probe a nonexistent host inside the victim's delegated prefix:
  // the CPE answers with an ICMPv6 error that leaks its WAN address.
  const net::Prefix allocation = rotator.allocation(target_device, clock.now());
  const net::Ipv6Address probe_target = probe::target_in(allocation, 42);
  const probe::ProbeResult r = prober.probe_one(probe_target);
  std::printf("probe %s -> %s (%s)\n", probe_target.to_string().c_str(),
              r.responded ? r.response_source.to_string().c_str() : "(silence)",
              r.responded ? std::string{wire::to_string(r.type)}.c_str()
                          : "-");

  // --- 4. Overnight, the provider rotates every customer prefix...
  clock.advance_to(sim::days(1) + sim::hours(12));
  const net::Ipv6Address wan_tomorrow =
      rotator.wan_address(target_device, clock.now());
  std::printf("\nafter rotation, victim WAN (day 1) = %s\n",
              wan_tomorrow.to_string().c_str());

  // ...but the EUI-64 IID is immutable, so a pool sweep re-finds it.
  core::TrackerConfig config;
  config.target_mac = target_mac;
  config.pool = rotator.pools()[0].config().prefix;
  config.allocation_length = rotator.pools()[0].config().allocation_length;
  config.seed = 7;
  core::Tracker tracker{prober, config};
  const core::TrackAttempt attempt = tracker.locate(1);
  std::printf("tracker: %s after %llu probes -> %s\n",
              attempt.found ? "FOUND" : "lost",
              static_cast<unsigned long long>(attempt.probes_sent),
              attempt.found ? attempt.address.to_string().c_str() : "-");

  if (!trace_sink.finish()) return 1;
  return attempt.found &&
                 net::embedded_mac(attempt.address) == target_mac &&
                 attempt.address == wan_tomorrow
             ? 0
             : 1;
}
