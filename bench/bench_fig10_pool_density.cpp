// bench_fig10_pool_density - reproduces Figure 10: rotation pool dynamics.
//
// Paper: probing an AS8881 /46 rotation pool hourly for a week shows that
// prefix reassignment happens almost entirely between 00:00 and 06:00, and
// that on any given day one /48 of the pool holds the majority of EUI-64
// addresses, one holds almost none, and the other two exchange density in
// opposite directions.
//
// Shape to reproduce: address movement concentrated in the early-morning
// window; skewed per-/48 densities whose ranks shift across days.
#include <array>
#include <set>
#include <cstdio>
#include <unordered_set>

#include "bench_util.h"

int main(int argc, char** argv) {
  scent::bench::parse_threads(argc, argv);
  using namespace scent;
  bench::banner("Figure 10 - /46 rotation pool density over a week, hourly",
                "reassignment at 00:00-06:00; one /48 dense, one empty, two "
                "in transition");

  sim::PaperWorldOptions options;
  bench::Pipeline pipeline{options, /*run_funnel=*/false};

  const auto& pool = pipeline.world.internet.provider(pipeline.world.versatel)
                         .pools()[0];
  const net::Prefix pool_prefix = pool.config().prefix;
  constexpr int kHours = 7 * 24;

  // Hourly sweep: one probe per /56; count EUI-64 responders per /48.
  // Movement compares each MAC's slot *set* between consecutive sweeps so
  // that a vendor-reused MAC occupying several slots at once (the §5.5
  // pathology, planted in this pool) does not register as perpetual motion.
  std::vector<std::array<std::size_t, 4>> density(kHours);
  std::vector<std::size_t> moved(kHours, 0);
  std::unordered_map<net::MacAddress, std::set<std::uint64_t>,
                     net::MacAddressHash>
      last_slots;

  for (int hour = 0; hour < kHours; ++hour) {
    pipeline.clock.advance_to(sim::hours(hour));
    const auto results =
        pipeline.prober->sweep_subnets(pool_prefix, 56, 0xF10);
    std::array<std::size_t, 4> counts{};
    std::unordered_map<net::MacAddress, std::set<std::uint64_t>,
                       net::MacAddressHash>
        slots;
    for (const auto& r : results) {
      if (!net::is_eui64(r.response_source)) continue;
      const std::uint64_t idx =
          r.response_source.network() - pool_prefix.base().network();
      ++counts[(idx >> 16) & 3];
      slots[*net::embedded_mac(r.response_source)].insert(idx);
    }
    for (const auto& [mac, current] : slots) {
      const auto it = last_slots.find(mac);
      if (it == last_slots.end()) continue;
      bool overlap = false;
      for (const std::uint64_t s : current) {
        if (it->second.contains(s)) {
          overlap = true;
          break;
        }
      }
      if (!overlap) ++moved[hour];
    }
    last_slots = std::move(slots);
    density[hour] = counts;
  }

  // Print one row every 3 hours for days 1-3 (day 0 has no prior state).
  std::printf("\nhour-of-week  /48#0  /48#1  /48#2  /48#3  moved\n");
  for (int hour = 24; hour < 4 * 24; hour += 3) {
    std::printf("d%u %02u:00     %5zu  %5zu  %5zu  %5zu  %5zu\n",
                static_cast<unsigned>(hour / 24),
                static_cast<unsigned>(hour % 24), density[hour][0],
                density[hour][1], density[hour][2], density[hour][3],
                moved[hour]);
  }

  // Shape checks. (1) Movement is confined to the 00:00-06:00 window.
  std::size_t window_moves = 0;
  std::size_t outside_moves = 0;
  for (int hour = 24; hour < kHours; ++hour) {
    if (hour % 24 <= 6) {
      window_moves += moved[hour];
    } else {
      outside_moves += moved[hour];
    }
  }
  std::printf("\nmovement inside 00:00-06:00 window: %zu; outside: %zu\n",
              window_moves, outside_moves);

  // (2) Daily density skew at noon: max /48 well above min /48, and the
  // dense /48 changes identity across the week.
  std::unordered_set<int> dense_48s;
  bool skew_every_day = true;
  for (int day = 0; day < 7; ++day) {
    const auto& counts = density[day * 24 + 12];
    std::size_t max_c = 0;
    std::size_t min_c = SIZE_MAX;
    int argmax = 0;
    for (int k = 0; k < 4; ++k) {
      if (counts[static_cast<std::size_t>(k)] > max_c) {
        max_c = counts[static_cast<std::size_t>(k)];
        argmax = k;
      }
      min_c = std::min(min_c, counts[static_cast<std::size_t>(k)]);
    }
    dense_48s.insert(argmax);
    if (max_c < 2 * (min_c + 1)) skew_every_day = false;
    std::printf("day %d noon: dense=/48#%d (%zu) sparse=%zu\n", day, argmax,
                max_c, min_c);
  }

  const bool ok = window_moves > 20 * (outside_moves + 1) &&
                  skew_every_day && dense_48s.size() >= 2;
  std::printf("\nshape check: window_confined=%s daily_skew=%s "
              "dense_48_rotates=%s\n",
              window_moves > 20 * (outside_moves + 1) ? "yes" : "NO",
              skew_every_day ? "yes" : "NO",
              dense_48s.size() >= 2 ? "yes" : "NO");

  pipeline.print_telemetry();
  return ok ? 0 : 1;
}
