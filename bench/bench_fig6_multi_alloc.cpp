// bench_fig6_multi_alloc - reproduces Figure 6: one provider, two policies.
//
// Paper: two /48s of the same ISP (Versatel) show different internal
// structure — 2001:16b8:501::/48 is carved into /64 customer allocations
// while 2001:16b8:11f9::/48 is carved into /56s. An adversary who assumes a
// single allocation size for the AS mis-probes one of them; the paper's §6
// handles this by scanning at the larger size first and falling back.
//
// Shape to reproduce: per-/48 Algorithm 1 medians of /64 and /56 within one
// AS, visibly different banding, and the probe-cost gap between the two
// policies (1x vs 256x per /48).
#include <cstdio>

#include "bench_util.h"
#include "core/inference.h"

namespace {

using namespace scent;

struct MapResult {
  unsigned median = 0;
  std::uint64_t responsive_64s = 0;
  std::size_t distinct_cpe = 0;
  std::string rendering;
};

MapResult map_prefix(bench::Pipeline& pipeline, net::Prefix p48) {
  probe::SubnetTargets targets{p48, 64, 0x616};
  core::AllocationSizeInference inference;
  core::AllocationGrid grid;
  net::Ipv6Address target;
  MapResult result;
  while (targets.next(target)) {
    const auto r = pipeline.prober->probe_one(target);
    if (!r.responded) continue;
    ++result.responsive_64s;
    inference.observe(r.target, r.response_source);
    grid.mark(r.target.byte(6), r.target.byte(7),
              grid.intern(r.response_source.iid() ^
                          r.response_source.network()));
  }
  result.median = inference.median_length().value_or(0);
  result.distinct_cpe = grid.distinct_sources();
  result.rendering = grid.render(16, 64);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  scent::bench::parse_threads(argc, argv);
  bench::banner("Figure 6 - a provider with multiple allocation sizes",
                "Versatel: one /48 carved into /64s, another into /56s");

  sim::PaperWorldOptions options;
  bench::Pipeline pipeline{options, /*run_funnel=*/false};

  const auto& versatel = pipeline.world.internet.provider(
      pipeline.world.versatel);
  // The last pool is the /64-allocating /48 (Fig 6a); the first /46 pool's
  // leading /48 shows /56 banding (Fig 6b).
  const auto& pool64 = versatel.pools().back();
  const auto& pool56 = versatel.pools().front();
  const net::Prefix p48_64{pool64.config().prefix.base(), 48};
  const net::Prefix p48_56{pool56.config().prefix.base(), 48};

  const MapResult r64 = map_prefix(pipeline, p48_64);
  std::printf("\n--- Fig 6a: %s (inferred /%u, %zu CPE)\n%s",
              p48_64.to_string().c_str(), r64.median, r64.distinct_cpe,
              r64.rendering.c_str());
  const MapResult r56 = map_prefix(pipeline, p48_56);
  std::printf("\n--- Fig 6b: %s (inferred /%u, %zu CPE)\n%s",
              p48_56.to_string().c_str(), r56.median, r56.distinct_cpe,
              r56.rendering.c_str());

  std::printf("\nprobe-cost note: enumerating every CPE needs %llu probes in "
              "the /64-allocating /48 but only 256 in the /56 one (256x "
              "saving, §3.2.1).\n",
              static_cast<unsigned long long>(65536));

  const bool ok = r64.median == 64 && r56.median == 56 &&
                  r64.distinct_cpe > r56.distinct_cpe;
  std::printf("shape check: fig6a=/64:%s fig6b=/56:%s\n",
              r64.median == 64 ? "yes" : "NO", r56.median == 56 ? "yes" : "NO");

  pipeline.print_telemetry();
  return ok ? 0 : 1;
}
