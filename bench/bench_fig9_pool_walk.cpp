// bench_fig9_pool_walk - reproduces Figure 9: per-IID prefix walks.
//
// Paper: three AS8881 EUI-64 IIDs tracked daily each have their /64 prefix
// advance by a constant stride every day, wrapping modulo the /46 rotation
// pool; an IID visits several /48s before wrapping. This regularity lets an
// attacker *predict* tomorrow's prefix.
//
// Shape to reproduce: linear-mod-pool /64 walks for three devices, the
// wrap, multiple /48s visited, and a fitted stride model that predicts the
// next day's prefix exactly.
#include <cstdio>

#include <set>

#include "bench_util.h"
#include "core/predictor.h"
#include "core/tracker.h"

int main(int argc, char** argv) {
  scent::bench::parse_threads(argc, argv);
  using namespace scent;
  bench::banner("Figure 9 - daily /64 prefix increments modulo the pool",
                "AS8881 IIDs advance by a fixed stride each day, wrap mod "
                "the /46, and visit 3+ /48s before wrapping");

  sim::PaperWorldOptions options;
  bench::Pipeline pipeline{options, /*run_funnel=*/false};

  const auto& versatel =
      pipeline.world.internet.provider(pipeline.world.versatel);
  const auto& pool = versatel.pools()[0];
  const net::Prefix pool_prefix = pool.config().prefix;
  const unsigned alloc_len = pool.config().allocation_length;

  constexpr int kDays = 18;
  constexpr std::size_t kDevices = 3;
  const std::size_t device_picks[kDevices] = {3, 57, 211};

  // Track three devices daily by probing (attacker view), recording the
  // observed /64 index within the pool.
  std::vector<std::vector<core::Sighting>> walks{kDevices};
  for (int day = 0; day < kDays; ++day) {
    pipeline.clock.advance_to(sim::days(day) + sim::hours(12));
    for (std::size_t i = 0; i < kDevices; ++i) {
      core::TrackerConfig config;
      config.target_mac = pool.devices()[device_picks[i]].mac;
      config.pool = pool_prefix;
      config.allocation_length = alloc_len;
      config.seed = 0x919 + i;
      core::Tracker tracker{*pipeline.prober, config};
      const auto attempt = tracker.locate(day);
      if (attempt.found) {
        walks[i].push_back(
            core::Sighting{day, attempt.address.network()});
      }
    }
  }

  // Print the walks as /64-index-within-pool series plus the /48 visited.
  const std::uint64_t pool_base = pool_prefix.base().network();
  std::printf("\nday   IID#1 (/64 idx, /48#)   IID#2   IID#3\n");
  for (int day = 0; day < kDays; ++day) {
    std::printf("d%-3d", day);
    for (std::size_t i = 0; i < kDevices; ++i) {
      bool printed = false;
      for (const auto& s : walks[i]) {
        if (s.day == day) {
          const std::uint64_t idx = s.network - pool_base;
          std::printf("  %8llu (#%llu)",
                      static_cast<unsigned long long>(idx),
                      static_cast<unsigned long long>(idx >> 16));
          printed = true;
        }
      }
      if (!printed) std::printf("        (missed)");
    }
    std::printf("\n");
  }

  // Fit stride models and verify predictions against ground truth.
  bool all_fit = true;
  bool wrap_seen = false;
  std::size_t multi_48 = 0;
  for (std::size_t i = 0; i < kDevices; ++i) {
    const auto model = core::fit_stride(walks[i], pool_prefix, alloc_len);
    if (!model) {
      all_fit = false;
      continue;
    }
    std::set<std::uint64_t> visited_48s;
    for (std::size_t k = 1; k < walks[i].size(); ++k) {
      if (walks[i][k].network < walks[i][k - 1].network) wrap_seen = true;
    }
    for (const auto& s : walks[i]) visited_48s.insert(s.network >> 16);
    if (visited_48s.size() >= 3) ++multi_48;

    // Predict the next day and compare with ground truth.
    pipeline.clock.advance_to(sim::days(kDays) + sim::hours(12));
    const net::Prefix predicted = model->predict_allocation(kDays);
    const net::Prefix actual = versatel.allocation(
        {0, device_picks[i]}, pipeline.clock.now());
    std::printf("IID#%zu stride=%llu support=%.2f predicted=%s actual=%s %s\n",
                i + 1, static_cast<unsigned long long>(model->stride),
                model->support, predicted.to_string().c_str(),
                actual.to_string().c_str(),
                predicted == actual ? "HIT" : "miss");
    if (predicted != actual) all_fit = false;
  }

  std::printf("\nshape check: strides_fit_and_predict=%s wrap_observed=%s "
              "iids_in_3plus_/48s=%zu/3\n",
              all_fit ? "yes" : "NO", wrap_seen ? "yes" : "NO", multi_48);

  pipeline.print_telemetry();
  return (all_fit && wrap_seen && multi_48 >= 2) ? 0 : 1;
}
