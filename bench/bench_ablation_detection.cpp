// bench_ablation_detection - ablations of the §4 rotation-detection design.
//
// Two design choices the paper discusses but does not sweep:
//   1. Snapshot spacing/count: two snapshots 24h apart miss providers whose
//      rotation period exceeds a day; more snapshots widen the window at
//      linear probe cost.
//   2. Churn threshold: the paper deliberately flags a /48 on *any* changed
//      <target, response> pair to catch gradual rotation; a stricter
//      threshold trades false positives (service churn) for false negatives
//      (slow rotators).
//
// Ground truth from the simulator (which pools actually rotate) scores
// precision/recall for each setting — the measurement-validation step the
// real study could not perform.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/rotation_detector.h"
#include "probe/target_generator.h"

namespace {

using namespace scent;

/// A focused world: one daily rotator, one 3-day rotator, one static
/// provider with service churn (the §4.3 false-positive source).
sim::PaperWorld detection_world(std::uint64_t seed) {
  sim::WorldBuilder builder{seed};
  sim::PaperWorld world;

  const auto add = [&](routing::Asn asn, const char* name, const char* cc,
                       const char* advert, sim::RotationPolicy::Kind kind,
                       sim::Duration period, double churn) {
    sim::ProviderSpec spec;
    spec.asn = asn;
    spec.name = name;
    spec.country = cc;
    spec.advertisement = *net::Prefix::parse(advert);
    spec.vendors = {{net::Oui{0x3810d5}, 1.0}};
    spec.eui64_fraction = 1.0;
    spec.low_byte_fraction = 0.0;
    spec.silent_fraction = 0.0;
    spec.churn_fraction = churn;
    sim::PoolSpec pool;
    pool.pool_length = 48;
    pool.allocation_length = 56;
    pool.rotation.kind = kind;
    pool.rotation.period = period;
    pool.rotation.stride = 61;
    pool.device_count = 200;
    spec.pools.push_back(pool);
    return builder.add_provider(spec);
  };

  world.versatel = add(65101, "DailyRotator", "DE", "2001:db8::/40",
                       sim::RotationPolicy::Kind::kStride, sim::kDay, 0.0);
  world.ote = add(65102, "SlowRotator", "GR", "2a02:580::/40",
                  sim::RotationPolicy::Kind::kShuffle, sim::days(3), 0.0);
  world.viettel = add(65103, "StaticChurny", "VN", "2406:da00::/40",
                      sim::RotationPolicy::Kind::kStatic, sim::kDay, 0.10);
  world.internet = builder.take();
  return world;
}

struct Score {
  bool daily = false;
  bool slow = false;
  bool churny = false;
  std::uint64_t probes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  scent::bench::parse_threads(argc, argv);
  bench::banner("Ablation - snapshot count and churn threshold (§4.3)",
                "2 snapshots @24h catch daily rotators, miss slow ones; "
                "any-change threshold admits churn false positives");

  core::TextTable table{{"snapshots", "threshold", "daily(TP)", "slow(TP)",
                         "static-churny(FP)", "probes"}};

  telemetry::Registry registry;

  for (const unsigned snapshots : {2u, 3u, 5u}) {
    for (const std::uint64_t threshold : {0ULL, 2ULL, 8ULL}) {
      sim::PaperWorld world = detection_world(0xDE7EC7);
      sim::VirtualClock clock{sim::hours(10)};
      probe::ProberOptions opts;
      opts.wire_mode = false;
      opts.packets_per_second = 2000000;
      probe::Prober prober{world.internet, clock, opts};
      registry.set_clock(&clock);
      prober.attach_telemetry(registry);
      char setting_name[48];
      std::snprintf(setting_name, sizeof setting_name,
                    "detect_s%u_t%llu", snapshots,
                    static_cast<unsigned long long>(threshold));
      telemetry::Span setting_span{&registry, setting_name};

      const net::Prefix pools[3] = {
          net::Prefix{world.internet.provider(world.versatel)
                          .pools()[0].config().prefix.base(), 48},
          net::Prefix{world.internet.provider(world.ote)
                          .pools()[0].config().prefix.base(), 48},
          net::Prefix{world.internet.provider(world.viettel)
                          .pools()[0].config().prefix.base(), 48},
      };

      // Take N snapshots 24h apart; flag a /48 if ANY consecutive pair
      // reports churn above the threshold.
      std::vector<core::Snapshot> snaps(snapshots);
      std::uint64_t probes = 0;
      for (unsigned s = 0; s < snapshots; ++s) {
        clock.advance_to(sim::days(s) + sim::hours(10));
        for (const auto& p48 : pools) {
          probe::SubnetTargets targets{p48, 64, 0x57A9};
          net::Ipv6Address target;
          while (targets.next(target)) {
            ++probes;
            const auto r = prober.probe_one(target);
            if (r.responded) snaps[s].record(r.target, r.response_source);
          }
        }
      }

      Score score;
      score.probes = probes;
      for (unsigned s = 0; s + 1 < snapshots; ++s) {
        for (const auto& v : core::detect_rotation(snaps[s], snaps[s + 1],
                                                   threshold, &registry)) {
          if (!v.rotating) continue;
          if (pools[0].contains(v.prefix)) score.daily = true;
          if (pools[1].contains(v.prefix)) score.slow = true;
          if (pools[2].contains(v.prefix)) score.churny = true;
        }
      }

      table.add_row({std::to_string(snapshots), std::to_string(threshold),
                     score.daily ? "detected" : "missed",
                     score.slow ? "detected" : "missed",
                     score.churny ? "flagged" : "clean",
                     std::to_string(score.probes)});
    }
  }

  std::printf("\n(ground truth: DailyRotator and SlowRotator rotate; "
              "StaticChurny does not but has 10%% service churn)\n\n");
  table.print(std::cout);

  // Paper-setting sanity: 2 snapshots, threshold 0 must catch the daily
  // rotator; 5 snapshots must catch the slow rotator too.
  bool paper_setting_daily = false;
  bool five_snapshot_slow = false;
  {
    sim::PaperWorld world = detection_world(0xDE7EC7);
    sim::VirtualClock clock{sim::hours(10)};
    probe::ProberOptions opts;
    opts.wire_mode = false;
    opts.packets_per_second = 2000000;
    probe::Prober prober{world.internet, clock, opts};
    const net::Prefix daily48{world.internet.provider(world.versatel)
                                  .pools()[0].config().prefix.base(), 48};
    const net::Prefix slow48{world.internet.provider(world.ote)
                                 .pools()[0].config().prefix.base(), 48};
    std::vector<core::Snapshot> snaps(5);
    for (unsigned s = 0; s < 5; ++s) {
      clock.advance_to(sim::days(s) + sim::hours(10));
      for (const auto& p48 : {daily48, slow48}) {
        probe::SubnetTargets targets{p48, 64, 0x57A9};
        net::Ipv6Address target;
        while (targets.next(target)) {
          const auto r = prober.probe_one(target);
          if (r.responded) snaps[s].record(r.target, r.response_source);
        }
      }
    }
    for (const auto& v : core::detect_rotation(snaps[0], snaps[1], 0)) {
      if (v.rotating && daily48.contains(v.prefix)) paper_setting_daily = true;
    }
    for (unsigned s = 0; s + 1 < 5; ++s) {
      for (const auto& v : core::detect_rotation(snaps[s], snaps[s + 1], 0)) {
        if (v.rotating && slow48.contains(v.prefix)) five_snapshot_slow = true;
      }
    }
  }

  registry.set_clock(nullptr);
  std::printf("\n");
  telemetry::print_summary(stdout, registry);
  if (!telemetry::write_json(bench::kTelemetryJsonPath, registry)) {
    std::printf("  warning: failed to write telemetry json %s\n",
                bench::kTelemetryJsonPath);
  }

  const bool ok = paper_setting_daily && five_snapshot_slow;
  std::printf("\nshape check: paper_setting_catches_daily=%s "
              "five_snapshots_catch_slow=%s\n",
              paper_setting_daily ? "yes" : "NO",
              five_snapshot_slow ? "yes" : "NO");
  return ok ? 0 : 1;
}
