// bench_extension_blocking - beyond-paper: IP blocking under rotation.
//
// The paper's conclusion: "The IPv4 paradigm of denying or rate-limiting a
// single address or range of addresses is ineffective when client prefixes
// may rotate daily" and calls for future work on defenses. This harness
// quantifies the trade-off for a defender facing an abuser inside a
// Versatel-like daily-rotating /46: block scope vs (block rate, collateral
// damage, blocklist growth) over a two-week episode — including the
// paper-inspired defensive use of the attack itself (following the
// abuser's EUI-64 scent and moving a single /64 block).
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/blocklist.h"

int main(int argc, char** argv) {
  scent::bench::parse_threads(argc, argv);
  using namespace scent;
  bench::banner("Extension - abuse blocking under daily prefix rotation",
                "/128 and /56 blocks are evaded daily; pool-wide blocks "
                "work at total collateral; following the EUI-64 scent "
                "blocks precisely");

  sim::PaperWorld world = sim::make_tiny_world(0xB10C, 512);
  const auto& pool = world.internet.provider(world.versatel).pools()[0];
  constexpr unsigned kDays = 14;

  core::TextTable table{{"block scope", "days blocked", "days evaded",
                         "innocent blocked device-days", "entries"}};

  const core::BlockScope scopes[] = {
      core::BlockScope::kAddress, core::BlockScope::kSlash64,
      core::BlockScope::kAllocation, core::BlockScope::kPool,
      core::BlockScope::kEuiFollow};

  telemetry::Registry registry;

  core::BlockingOutcome pool_outcome;
  core::BlockingOutcome follow_outcome;
  core::BlockingOutcome address_outcome;
  for (const auto scope : scopes) {
    sim::VirtualClock clock{sim::hours(12)};
    registry.set_clock(&clock);
    const std::string span_name =
        std::string{"block."} + std::string{core::to_string(scope)};
    telemetry::Span scope_span{&registry, span_name};
    core::BlockingPolicyEvaluator evaluator{
        scope, pool.config().allocation_length, pool.config().prefix};
    for (unsigned day = 0; day < kDays; ++day) {
      clock.advance_to(sim::days(day) + sim::hours(12));
      const net::Ipv6Address abuser = pool.wan_address_of(0, clock.now());
      std::vector<net::Ipv6Address> innocents;
      innocents.reserve(pool.devices().size() - 1);
      for (std::size_t d = 1; d < pool.devices().size(); ++d) {
        innocents.push_back(pool.wan_address_of(d, clock.now()));
      }
      evaluator.day(abuser, innocents, clock.now());
    }
    const auto outcome = evaluator.outcome();
    registry.counter("block.scopes_evaluated").inc();
    registry.counter("block.days_evaluated").add(kDays);
    registry.gauge(span_name + ".days_blocked")
        .set_u64(outcome.days_abuser_blocked);
    registry.gauge(span_name + ".innocent_device_days")
        .set_u64(outcome.innocent_blocked_device_days);
    if (scope == core::BlockScope::kPool) pool_outcome = outcome;
    if (scope == core::BlockScope::kEuiFollow) follow_outcome = outcome;
    if (scope == core::BlockScope::kAddress) address_outcome = outcome;
    table.add_row({std::string{core::to_string(scope)},
                   std::to_string(outcome.days_abuser_blocked),
                   std::to_string(outcome.days_abuser_evaded),
                   std::to_string(outcome.innocent_blocked_device_days),
                   std::to_string(outcome.blocklist_entries)});
  }

  std::printf("\n(abuser: 1 device; innocents: %zu devices; %u days; "
              "daily stride rotation in a /46 pool of /56 allocations)\n\n",
              pool.devices().size() - 1, kDays);
  table.print(std::cout);

  std::printf("\nreading: the IPv4-style /128 block never fires under "
              "rotation; blocking the whole inferred pool stops the abuse "
              "but takes every customer down with it; a defender that "
              "follows the EUI-64 scent gets both precision and coverage — "
              "the same legacy identifier that broke client privacy.\n");

  registry.set_clock(nullptr);
  std::printf("\n");
  telemetry::print_summary(stdout, registry);
  if (!telemetry::write_json(bench::kTelemetryJsonPath, registry)) {
    std::printf("  warning: failed to write telemetry json %s\n",
                bench::kTelemetryJsonPath);
  }

  const bool ok = address_outcome.days_abuser_blocked == 0 &&
                  pool_outcome.days_abuser_blocked >= kDays - 1 &&
                  pool_outcome.innocent_blocked_device_days >
                      100 * follow_outcome.innocent_blocked_device_days &&
                  follow_outcome.days_abuser_blocked >= kDays - 1 &&
                  follow_outcome.innocent_blocked_device_days <
                      pool_outcome.innocent_blocked_device_days / 100;
  std::printf("\nshape check: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
