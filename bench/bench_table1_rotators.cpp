// bench_table1_rotators - reproduces Table 1 and the §4 discovery funnel.
//
// Paper: the three-stage funnel (seed -> expansion -> density -> two-snapshot
// rotation detection) finds 12,885 rotating /48s; AS8881 (Versatel, DE)
// dominates with ~40% of them, Germany leads countries with ~46%, and >100
// ASes across 25 countries rotate. Of 19.4M discovered addresses, 14.8M are
// EUI-64 with only 6.2M unique IIDs.
//
// Shape to reproduce (absolute counts are vantage-scale artifacts):
//   * one AS dominates the rotating-/48 count by a wide margin,
//   * its country dominates the country ranking,
//   * dozens of ASes / ~20+ countries have at least one rotating /48,
//   * EUI-64 addresses >> unique IIDs (rotation observed mid-funnel).
#include <iostream>

#include "bench_util.h"

namespace {

void print_groups(const char* title,
                  const std::vector<scent::core::RotatorGroup>& groups,
                  std::size_t top_n) {
  scent::core::TextTable table{{std::string{title}, "# /48"}};
  std::uint64_t total = 0;
  std::uint64_t shown = 0;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    total += groups[i].count;
    if (i < top_n) {
      table.add_row({groups[i].key, std::to_string(groups[i].count)});
      shown += groups[i].count;
    }
  }
  if (groups.size() > top_n) {
    table.add_row({std::to_string(groups.size() - top_n) + " others",
                   std::to_string(total - shown)});
  }
  table.add_row({"Total", std::to_string(total)});
  std::printf("\n");
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  scent::bench::parse_threads(argc, argv);
  using namespace scent;
  bench::banner("Table 1 - top ASNs and countries by rotating /48 prefixes",
                "AS8881 ~40% of 12,885 rotating /48s; DE ~46%; >100 ASes, "
                "25 countries; 14.8M EUI-64 addrs vs 6.2M unique IIDs");

  // Table 1 is the funnel itself: always run it fresh, then refresh the
  // cache the other figure benches reuse.
  sim::PaperWorldOptions options;
  bench::Pipeline pipeline{options, /*run_funnel=*/true, /*use_cache=*/false};
  pipeline.save_rotating_cache(bench::Pipeline::cache_file(options));

  const auto by_asn =
      core::rotators_by_asn(pipeline.funnel.rotating_48s,
                            pipeline.world.internet.bgp());
  const auto by_country =
      core::rotators_by_country(pipeline.funnel.rotating_48s,
                                pipeline.world.internet.bgp());

  print_groups("ASN", by_asn, 5);
  print_groups("Country", by_country, 5);

  std::printf("\nFunnel accounting (paper: 19.4M addrs, 14.8M EUI-64, "
              "6.2M unique IIDs):\n");
  std::printf("  discovered addresses : %llu\n",
              static_cast<unsigned long long>(pipeline.funnel.total_addresses));
  std::printf("  EUI-64 addresses     : %llu (%.0f%%)\n",
              static_cast<unsigned long long>(pipeline.funnel.eui64_addresses),
              100.0 * static_cast<double>(pipeline.funnel.eui64_addresses) /
                  static_cast<double>(pipeline.funnel.total_addresses));
  std::printf("  unique EUI-64 IIDs   : %llu\n",
              static_cast<unsigned long long>(pipeline.funnel.unique_iids));
  std::printf("  rotating ASes        : %zu across %zu countries\n",
              by_asn.size(), by_country.size());

  const bool versatel_dominates =
      !by_asn.empty() && by_asn[0].key == "8881";
  const bool de_dominates =
      !by_country.empty() && by_country[0].key == "DE";
  const bool rotation_observed =
      pipeline.funnel.eui64_addresses > pipeline.funnel.unique_iids;
  std::printf("\nshape check: versatel_top=%s country_DE_top=%s "
              "eui64>uniqueIIDs=%s asns>=20=%s\n",
              versatel_dominates ? "yes" : "NO",
              de_dominates ? "yes" : "NO", rotation_observed ? "yes" : "NO",
              by_asn.size() >= 20 ? "yes" : "NO");

  pipeline.print_telemetry();
  return versatel_dominates && de_dominates && rotation_observed ? 0 : 1;
}
