// bench_fig5_alloc_cdf - reproduces Figure 5: inferred allocation sizes.
//
// Paper, Fig 5a (per-IID CDF, single day of probing): a plurality (~40%) of
// EUI-64 IIDs receive /56 delegations, ~30% receive /64s, with an
// inflection at /60. Fig 5b (per-AS median CDF): /56 is the most common
// (~50% of ASes), ~25% allocate /64s, the rest fall between.
//
// Shape to reproduce: /56 plurality and /64 second in the per-IID
// distribution with a visible /60 step; /56 majority among AS medians.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "core/inference.h"

int main(int argc, char** argv) {
  scent::bench::parse_threads(argc, argv);
  using namespace scent;
  bench::banner("Figure 5 - inferred customer allocation sizes",
                "5a: ~40% of IIDs at /56, ~30% at /64, inflection at /60; "
                "5b: ~50% of ASes median /56, ~25% median /64");

  sim::PaperWorldOptions options;
  bench::Pipeline pipeline{options};

  // A single day of per-/64 probing over the rotating /48s — exactly the
  // paper's Fig 5a data collection.
  const auto campaign = pipeline.campaign(/*days=*/1);

  core::AllocationSizeInference global;
  std::map<routing::Asn, core::AllocationSizeInference> per_as;
  for (const auto& obs : campaign.observations.all()) {
    global.observe(obs.target, obs.response);
    if (const auto attribution =
            pipeline.world.internet.bgp().lookup(obs.response)) {
      per_as[attribution->origin_asn].observe(obs.target, obs.response);
    }
  }

  // --- Figure 5a: per-IID CDF.
  const auto iid_lengths = global.per_device_lengths();
  const core::Cdf iid_cdf = core::Cdf::of(iid_lengths);
  bench::print_cdf("Fig 5a - inferred allocation size per EUI-64 IID",
                   iid_cdf, "prefix len");

  std::map<unsigned, std::size_t> histogram;
  for (const unsigned len : iid_lengths) ++histogram[len];
  const auto share = [&](unsigned len) {
    return histogram.contains(len)
               ? static_cast<double>(histogram.at(len)) /
                     static_cast<double>(iid_lengths.size())
               : 0.0;
  };
  std::printf("\nper-IID shares: /56=%.2f (paper ~0.40)  /64=%.2f (paper "
              "~0.30)  /60=%.2f (inflection)\n",
              share(56), share(64), share(60));

  // --- Figure 5b: per-AS median CDF.
  std::vector<unsigned> as_medians;
  for (const auto& [asn, inference] : per_as) {
    if (inference.device_count() < 3) continue;  // too few IIDs to call
    if (const auto median = inference.median_length()) {
      as_medians.push_back(*median);
    }
  }
  const core::Cdf as_cdf = core::Cdf::of(as_medians);
  bench::print_cdf("Fig 5b - median inferred allocation size per AS", as_cdf,
                   "prefix len");

  std::map<unsigned, std::size_t> as_histogram;
  for (const unsigned len : as_medians) ++as_histogram[len];
  const double as_56 =
      as_histogram.contains(56)
          ? static_cast<double>(as_histogram.at(56)) /
                static_cast<double>(as_medians.size())
          : 0.0;
  std::printf("\nper-AS /56 share: %.2f (paper ~0.50 of ASes)\n", as_56);

  // Shape: /56 is the per-IID plurality, /64 is substantial, and /56 is the
  // most common AS median.
  bool slash56_plurality = true;
  for (const auto& [len, count] : histogram) {
    if (len != 56 && count > histogram[56]) slash56_plurality = false;
  }
  const bool ok = slash56_plurality && share(64) > 0.10 && share(56) > 0.25 &&
                  as_56 >= 0.4;
  std::printf("shape check: %s\n", ok ? "yes" : "NO");

  pipeline.print_telemetry();
  return ok ? 0 : 1;
}
