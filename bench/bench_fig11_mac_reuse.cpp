// bench_fig11_mac_reuse - reproduces Figure 11 and the §5.5 pathologies.
//
// Paper: of 9M distinct EUI-64 IIDs, ~10k appeared in multiple ASes. One
// IID (the all-zero default MAC) appeared in 12 distinct ASes; another
// class — vendor MAC reuse — shows the same IID daily in ASes on several
// continents for the whole campaign, which disqualifies it as a tracking
// identifier.
//
// Shape to reproduce: the multi-AS population split into default-MAC,
// concurrent-reuse, and provider-switch classes; the planted reused MAC
// observed in several countries concurrently, day after day.
#include <cstdio>
#include <iostream>
#include <set>

#include "bench_util.h"
#include "core/pathology.h"

int main(int argc, char** argv) {
  scent::bench::parse_threads(argc, argv);
  using namespace scent;
  bench::banner("Figure 11 / s5.5 - multi-AS EUI-64 IIDs and MAC reuse",
                "all-zero MAC in 12 ASes; reused vendor MACs concurrently "
                "on several continents daily");

  sim::PaperWorldOptions options;
  bench::Pipeline pipeline{options};
  const auto campaign = pipeline.campaign(/*days=*/21);
  const auto& bgp = pipeline.world.internet.bgp();

  const auto multi = core::find_multi_as_iids(campaign.observations, bgp);
  std::size_t default_mac = 0;
  std::size_t reuse = 0;
  std::size_t switches = 0;
  std::size_t other = 0;
  for (const auto& m : multi) {
    switch (m.kind) {
      case core::PathologyKind::kDefaultMac: ++default_mac; break;
      case core::PathologyKind::kConcurrentReuse: ++reuse; break;
      case core::PathologyKind::kProviderSwitch: ++switches; break;
      case core::PathologyKind::kMultiAsOther: ++other; break;
    }
  }
  std::printf("\nmulti-AS IIDs: %zu total (default-mac=%zu, "
              "concurrent-reuse=%zu, provider-switch=%zu, other=%zu)\n",
              multi.size(), default_mac, reuse, switches, other);

  // The planted reused MAC: daily per-AS presence (the Figure 11 series).
  const auto presence = core::presence_of(pipeline.world.reused_mac,
                                          campaign.observations, bgp);
  std::printf("\nFigure 11 - daily AS observations of %s:\n",
              pipeline.world.reused_mac.to_string().c_str());
  std::size_t concurrent_days = 0;
  std::set<routing::Asn> all_asns;
  std::set<std::string> countries;
  for (const auto& [day, asns] : presence.days) {
    std::printf("  day %2lld:",
                static_cast<long long>(day));
    for (const auto asn : asns) {
      all_asns.insert(asn);
      std::printf(" AS%u", asn);
    }
    if (asns.size() >= 2) ++concurrent_days;
    std::printf("\n");
  }
  for (const auto asn : all_asns) {
    for (const auto& ad : bgp.dump()) {
      if (ad.origin_asn == asn) {
        countries.insert(ad.country);
        break;
      }
    }
  }
  std::printf("seen in %zu ASes across %zu countries; concurrent on "
              "%zu/%zu observed days\n",
              all_asns.size(), countries.size(), concurrent_days,
              presence.days.size());

  // The zero MAC's AS spread.
  const auto zero_presence = core::presence_of(pipeline.world.default_mac,
                                               campaign.observations, bgp);
  std::set<routing::Asn> zero_asns;
  for (const auto& [day, asns] : zero_presence.days) {
    zero_asns.insert(asns.begin(), asns.end());
  }
  std::printf("all-zero MAC seen in %zu distinct ASes (paper: 12)\n",
              zero_asns.size());

  const bool ok = reuse >= 1 && default_mac >= 1 && all_asns.size() >= 3 &&
                  countries.size() >= 2 &&
                  concurrent_days * 2 >= presence.days.size() &&
                  zero_asns.size() >= 4;
  std::printf("\nshape check: %s\n", ok ? "yes" : "NO");

  pipeline.print_telemetry();
  return ok ? 0 : 1;
}
