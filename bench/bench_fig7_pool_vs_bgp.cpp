// bench_fig7_pool_vs_bgp - reproduces Figure 7: inferred rotation pool
// sizes vs BGP-advertised prefix sizes.
//
// Paper: Algorithm 2 on the 44-day corpus gives a per-AS rotation pool
// size; comparing against the covering BGP prefix (Routeviews) shows (i)
// more than half the probed ASes have a /64 "pool" — i.e. no measurable
// rotation, the §4.3 detector's appearance/disappearance false positives —
// and (ii) for rotators, pools sit roughly /16 *inside* the BGP prefix: an
// EUI-64 IID wanders through only ~2^-16 of the space an attacker would
// naively search.
//
// Shape to reproduce: a large /64 mode in the pool CDF, BGP prefixes
// clustered near /32, and a wide (>= 8 bit) median gap between the curves.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "core/inference.h"

int main(int argc, char** argv) {
  scent::bench::parse_threads(argc, argv);
  using namespace scent;
  bench::banner("Figure 7 - rotation pool sizes vs BGP prefix sizes",
                ">1/2 of ASes show /64 pools (no rotation observed); "
                "rotators' pools sit ~/16 inside the BGP prefix");

  sim::PaperWorldOptions options;
  bench::Pipeline pipeline{options};
  const auto campaign = pipeline.campaign(/*days=*/28);

  // Algorithm 2 per AS; BGP prefix length per AS from attribution.
  std::map<routing::Asn, core::RotationPoolInference> per_as;
  std::map<routing::Asn, unsigned> bgp_length;
  for (const auto& obs : campaign.observations.all()) {
    const auto attribution =
        pipeline.world.internet.bgp().lookup(obs.response);
    if (!attribution) continue;
    per_as[attribution->origin_asn].observe(obs.response);
    bgp_length[attribution->origin_asn] = attribution->bgp_prefix.length();
  }

  std::vector<unsigned> pool_lengths;
  std::vector<unsigned> bgp_lengths;
  std::size_t non_rotating = 0;
  for (const auto& [asn, inference] : per_as) {
    const auto median = inference.median_length();
    if (!median) continue;
    pool_lengths.push_back(*median);
    bgp_lengths.push_back(bgp_length.at(asn));
    if (*median == 64) ++non_rotating;
  }

  const core::Cdf pool_cdf = core::Cdf::of(pool_lengths);
  const core::Cdf bgp_cdf = core::Cdf::of(bgp_lengths);
  bench::print_cdf("Inferred rotation pool size per AS (Algorithm 2)",
                   pool_cdf, "prefix len");
  bench::print_cdf("BGP-advertised prefix size per AS", bgp_cdf,
                   "prefix len");

  const double pool_median = pool_cdf.quantile(0.5);
  const double bgp_median = bgp_cdf.quantile(0.5);
  const double fraction_64 =
      static_cast<double>(non_rotating) / static_cast<double>(
                                              pool_lengths.size());
  std::printf("\nASes: %zu; /64-pool fraction: %.2f (paper: >0.5)\n",
              pool_lengths.size(), fraction_64);
  std::printf("median pool /%g vs median BGP /%g -> gap %.0f bits "
              "(paper: ~16)\n",
              pool_median, bgp_median, pool_median - bgp_median);

  // For rotating ASes only, the gap quantifies the attacker's saving.
  std::vector<unsigned> rotating_gaps;
  for (std::size_t i = 0; i < pool_lengths.size(); ++i) {
    if (pool_lengths[i] < 64) {
      rotating_gaps.push_back(pool_lengths[i] - bgp_lengths[i]);
    }
  }
  if (!rotating_gaps.empty()) {
    bench::print_quantiles("pool-inside-BGP gap (bits), rotators only",
                           core::Cdf::of(rotating_gaps));
  }

  const bool ok = fraction_64 > 0.35 && fraction_64 < 0.85 &&
                  pool_median - bgp_median >= 8 && bgp_cdf.quantile(0.5) <= 34;
  std::printf("shape check: %s\n", ok ? "yes" : "NO");

  pipeline.print_telemetry();
  return ok ? 0 : 1;
}
