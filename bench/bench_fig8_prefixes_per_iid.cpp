// bench_fig8_prefixes_per_iid - reproduces Figure 8: distinct /64s per IID.
//
// Paper: over the 44-day campaign, ~25% of EUI-64 IIDs were seen in exactly
// one /64 (non-rotators plus devices that rotated out of the probed space),
// ~70% in more than one, and a tiny pathological tail reached thousands of
// /64s (MAC reuse across many devices).
//
// Shape to reproduce: a ~quarter mass at 1, a majority above 1, and a heavy
// multi-order-of-magnitude tail from the planted shared-MAC clones.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  scent::bench::parse_threads(argc, argv);
  using namespace scent;
  bench::banner("Figure 8 - distinct /64 prefixes per EUI-64 IID",
                "~25% of IIDs in one /64; ~70% in more; extreme tail from "
                "MAC reuse (paper max ~30k /64s)");

  sim::PaperWorldOptions options;
  bench::Pipeline pipeline{options};
  const auto campaign = pipeline.campaign(/*days=*/28);

  std::vector<std::uint64_t> prefixes_per_iid;
  std::uint64_t max_count = 0;
  net::MacAddress max_mac;
  for (const auto& [mac, indices] : campaign.observations.by_mac()) {
    const auto networks = campaign.observations.networks_of(mac);
    prefixes_per_iid.push_back(networks.size());
    if (networks.size() > max_count) {
      max_count = networks.size();
      max_mac = mac;
    }
  }

  const core::Cdf cdf = core::Cdf::of(prefixes_per_iid);
  bench::print_quantiles("distinct /64s per IID", cdf);

  const double at_one = cdf.at(1.0);
  const double above_one = 1.0 - at_one;
  std::printf("\nIIDs observed: %zu\n", prefixes_per_iid.size());
  std::printf("fraction in exactly one /64 : %.2f (paper ~0.25)\n", at_one);
  std::printf("fraction in multiple /64s   : %.2f (paper ~0.70)\n",
              above_one);
  std::printf("heaviest IID                : %s in %llu /64s "
              "(planted clone tail; paper ~30k)\n",
              max_mac.to_string().c_str(),
              static_cast<unsigned long long>(max_count));

  // Log-scale histogram of the tail.
  std::printf("\ncount-of-/64s histogram (log buckets):\n");
  const std::uint64_t buckets[] = {1, 2, 4, 8, 16, 32, 64, 128, 1u << 20};
  std::uint64_t prev = 0;
  for (const std::uint64_t b : buckets) {
    const std::size_t count = static_cast<std::size_t>(
        (cdf.at(static_cast<double>(b)) - cdf.at(static_cast<double>(prev))) *
        static_cast<double>(prefixes_per_iid.size()) + 0.5);
    if (b >= (1u << 20)) {
      std::printf("  >%3llu : %zu\n", static_cast<unsigned long long>(prev),
                  count);
    } else {
      std::printf("  (%llu,%llu] : %zu\n",
                  static_cast<unsigned long long>(prev),
                  static_cast<unsigned long long>(b), count);
    }
    prev = b;
  }

  const double median = cdf.quantile(0.5);
  const bool ok = at_one > 0.05 && at_one < 0.6 && above_one > 0.4 &&
                  max_count >= 20 * static_cast<std::uint64_t>(
                                       std::max(1.0, median));
  std::printf("\nshape check: %s\n", ok ? "yes" : "NO");

  pipeline.print_telemetry();
  return ok ? 0 : 1;
}
