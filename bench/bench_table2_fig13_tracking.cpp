// bench_table2_fig13_tracking - reproduces the §6 device-tracking case
// study: Table 2 and Figures 13a/13b.
//
// Paper: after a discovery scan, ten EUI-64 IIDs are chosen at random (no
// two from the same AS or country, multi-AS IIDs excluded) and tracked for
// a week using the inferred per-AS allocation size and per-device rotation
// pool; 9-10 of 10 are re-found every day (Fig 13a). A second set of ten
// IIDs that demonstrably rotate is tracked the same way: 6-8 of 10 found
// daily, and all ten have rotated by day 4 (Fig 13b). Table 2 reports probe
// costs: some devices found within hundreds of probes vs the ~2^32 a naive
// /64 sweep of their BGP prefix would need.
//
// Shape to reproduce: high daily recovery for random IIDs, slightly lower
// for forced rotators, rotation accumulating over the week, and mean probe
// counts orders of magnitude below the naive sweep.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>
#include <set>

#include "bench_util.h"
#include "core/inference.h"
#include "core/pathology.h"
#include "core/tracker.h"

namespace {

using namespace scent;

struct Candidate {
  net::MacAddress mac;
  routing::Asn asn = 0;
  std::string country;
  unsigned bgp_length = 32;
  bool rotated_in_discovery = false;
};

struct TrackRecord {
  Candidate candidate;
  std::vector<core::TrackAttempt> attempts;

  [[nodiscard]] std::size_t days_found() const {
    std::size_t n = 0;
    for (const auto& a : attempts) n += a.found ? 1 : 0;
    return n;
  }
  [[nodiscard]] std::size_t distinct_prefixes() const {
    std::set<std::uint64_t> nets;
    for (const auto& a : attempts) {
      if (a.found) nets.insert(a.address.network());
    }
    return nets.size();
  }
  [[nodiscard]] double mean_probes() const {
    if (attempts.empty()) return 0;
    double sum = 0;
    for (const auto& a : attempts) sum += static_cast<double>(a.probes_sent);
    return sum / static_cast<double>(attempts.size());
  }
  [[nodiscard]] double stddev_probes() const {
    if (attempts.size() < 2) return 0;
    const double mean = mean_probes();
    double ss = 0;
    for (const auto& a : attempts) {
      const double d = static_cast<double>(a.probes_sent) - mean;
      ss += d * d;
    }
    return std::sqrt(ss / static_cast<double>(attempts.size()));
  }
};

}  // namespace

int main(int argc, char** argv) {
  scent::bench::parse_threads(argc, argv);
  bench::banner("Table 2 / Figure 13 - the device-tracking case study",
                "random set: 9-10/10 found daily; rotating set: 6-8/10, all "
                "rotated by day 4; probe cost orders below naive 2^32");

  sim::PaperWorldOptions options;
  bench::Pipeline pipeline{options};

  // Discovery phase: a week of daily probing (stands in for the paper's
  // use of the long §5 campaign's inferences).
  const auto discovery = pipeline.campaign(/*days=*/7);
  const auto& bgp = pipeline.world.internet.bgp();

  // Exclusions: IIDs seen in multiple ASes (§5.5 pathologies).
  std::set<net::MacAddress> excluded;
  for (const auto& m : core::find_multi_as_iids(discovery.observations, bgp)) {
    excluded.insert(m.mac);
  }

  // Per-AS rotation pool medians; per-device pools.
  std::map<routing::Asn, core::RotationPoolInference> pool_inference;
  std::map<net::MacAddress, Candidate> candidates;
  for (const auto& obs : discovery.observations.all()) {
    const auto mac = net::embedded_mac(obs.response);
    if (!mac || excluded.contains(*mac)) continue;
    const auto attribution = bgp.lookup(obs.response);
    if (!attribution) continue;
    pool_inference[attribution->origin_asn].observe(obs.response);
    Candidate& c = candidates[*mac];
    c.mac = *mac;
    c.asn = attribution->origin_asn;
    c.country = attribution->country;
    c.bgp_length = attribution->bgp_prefix.length();
  }
  for (auto& [mac, c] : candidates) {
    c.rotated_in_discovery =
        discovery.observations.networks_of(mac).size() > 1;
  }

  std::map<routing::Asn, unsigned> as_pool_length;
  for (const auto& [asn, inference] : pool_inference) {
    as_pool_length[asn] = inference.median_length().value_or(64);
  }

  // Selection. Set A: random IIDs, no two sharing an AS or country.
  // Set B: IIDs that rotated during discovery (paper: "did exhibit prefix
  // rotation"), distinct ASes where possible.
  sim::Rng rng{0x13A};
  std::vector<Candidate> shuffled;
  shuffled.reserve(candidates.size());
  for (const auto& [mac, c] : candidates) shuffled.push_back(c);
  std::sort(shuffled.begin(), shuffled.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.mac < b.mac;
            });
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
  }

  std::vector<Candidate> set_a;
  {
    std::set<routing::Asn> used_as;
    std::set<std::string> used_cc;
    for (const auto& c : shuffled) {
      if (set_a.size() >= 10) break;
      if (used_as.contains(c.asn) || used_cc.contains(c.country)) continue;
      used_as.insert(c.asn);
      used_cc.insert(c.country);
      set_a.push_back(c);
    }
  }
  std::vector<Candidate> set_b;
  {
    std::set<routing::Asn> used_as;
    for (const auto& c : shuffled) {
      if (set_b.size() >= 10) break;
      if (!c.rotated_in_discovery) continue;
      if (used_as.contains(c.asn)) continue;
      used_as.insert(c.asn);
      set_b.push_back(c);
    }
    // Relax the distinct-AS constraint if the world has too few rotators.
    for (const auto& c : shuffled) {
      if (set_b.size() >= 10) break;
      if (!c.rotated_in_discovery) continue;
      if (std::none_of(set_b.begin(), set_b.end(), [&](const Candidate& x) {
            return x.mac == c.mac;
          })) {
        set_b.push_back(c);
      }
    }
  }
  std::printf("\ncandidates: %zu (excluded multi-AS: %zu); set A: %zu, "
              "set B (rotators): %zu\n",
              candidates.size(), excluded.size(), set_a.size(), set_b.size());

  // Tracking phase: one week, day-outer so every tracker lives through the
  // same advancing week on the shared clock.
  const auto track_set = [&](const std::vector<Candidate>& set,
                             std::uint64_t seed) {
    std::vector<TrackRecord> records;
    std::vector<core::Tracker> trackers;
    for (const auto& c : set) {
      core::TrackerConfig config;
      config.target_mac = c.mac;
      config.allocation_length =
          discovery.allocation_length_by_as.contains(c.asn)
              ? discovery.allocation_length_by_as.at(c.asn)
              : 56;
      const unsigned pool_len = as_pool_length.at(c.asn);
      const auto pool = pool_inference.at(c.asn).pool_for(c.mac, pool_len);
      if (!pool) continue;
      config.pool = *pool;
      config.seed = sim::mix64(seed, c.mac.bits());
      config.registry = &pipeline.registry;
      config.journal = &pipeline.journal;

      TrackRecord record;
      record.candidate = c;
      record.attempts.reserve(7);
      records.push_back(std::move(record));
      trackers.emplace_back(*pipeline.prober, config);
    }

    const std::int64_t start_day = sim::day_of(pipeline.clock.now()) + 1;
    for (std::int64_t day = start_day; day < start_day + 7; ++day) {
      pipeline.clock.advance_to(day * sim::kDay + sim::hours(12));
      for (std::size_t i = 0; i < trackers.size(); ++i) {
        records[i].attempts.push_back(trackers[i].locate(day));
      }
    }
    return records;
  };

  const auto records_a = track_set(set_a, 0xA);
  const auto records_b = track_set(set_b, 0xB);

  // ---- Table 2 (for the rotating set, like the paper).
  core::TextTable table{{"IID#", "Mean probes", "StdDev", "BGP", "ASN", "CC",
                         "#Days", "#/64s"}};
  for (std::size_t i = 0; i < records_b.size(); ++i) {
    const auto& r = records_b[i];
    char mean[32];
    char sd[32];
    std::snprintf(mean, sizeof mean, "%.1f", r.mean_probes());
    std::snprintf(sd, sizeof sd, "%.1f", r.stddev_probes());
    table.add_row({"#" + std::to_string(i + 1), mean, sd,
                   "/" + std::to_string(r.candidate.bgp_length),
                   std::to_string(r.candidate.asn), r.candidate.country,
                   std::to_string(r.days_found()),
                   std::to_string(r.distinct_prefixes())});
  }
  std::printf("\nTable 2 - tracked rotating EUI-64 IIDs over one week:\n");
  table.print(std::cout);

  // ---- Figure 13a/13b: per-day discovery counts.
  const auto daily_found = [](const std::vector<TrackRecord>& records,
                              std::size_t day) {
    std::size_t n = 0;
    for (const auto& r : records) {
      if (day < r.attempts.size() && r.attempts[day].found) ++n;
    }
    return n;
  };
  const auto daily_rotated = [](const std::vector<TrackRecord>& records,
                                std::size_t day) {
    // IIDs whose prefix has changed from their first-seen prefix by `day`.
    std::size_t n = 0;
    for (const auto& r : records) {
      std::set<std::uint64_t> nets;
      for (std::size_t d = 0; d <= day && d < r.attempts.size(); ++d) {
        if (r.attempts[d].found) nets.insert(r.attempts[d].address.network());
      }
      if (nets.size() > 1) ++n;
    }
    return n;
  };

  std::printf("\nFig 13a (random set)        Fig 13b (rotating set)\n");
  std::printf("day  found  rotated         day  found  rotated\n");
  std::size_t min_found_a = 10;
  std::size_t min_found_b = 10;
  for (std::size_t day = 0; day < 7; ++day) {
    const std::size_t fa = daily_found(records_a, day);
    const std::size_t fb = daily_found(records_b, day);
    min_found_a = std::min(min_found_a, fa);
    min_found_b = std::min(min_found_b, fb);
    std::printf("%3zu  %5zu  %7zu         %3zu  %5zu  %7zu\n", day, fa,
                daily_rotated(records_a, day), day, fb,
                daily_rotated(records_b, day));
  }

  // Probe-cost contrast vs the naive sweep (2^(64-32) /64s for a /32).
  double best_mean = 1e18;
  for (const auto& r : records_b) {
    if (r.days_found() > 0) best_mean = std::min(best_mean, r.mean_probes());
  }
  std::printf("\ncheapest rotating IID: %.0f probes/day on average vs ~4.3B "
              "for a naive per-/64 sweep of a /32 (paper IID#3: 379)\n",
              best_mean);

  const std::size_t rotated_b_final = daily_rotated(records_b, 6);
  const bool ok = records_a.size() >= 8 && records_b.size() >= 5 &&
                  min_found_a + 2 >= records_a.size() &&
                  2 * min_found_b >= records_b.size() &&
                  2 * rotated_b_final >= records_b.size() &&
                  best_mean < 100000;
  std::printf("\nshape check: setA_daily>=%zu/%zu:%s setB_found>=half:%s "
              "setB_rotates:%s cheap_tracking:%s\n",
              min_found_a, records_a.size(),
              min_found_a + 2 >= records_a.size() ? "yes" : "NO",
              2 * min_found_b >= records_b.size() ? "yes" : "NO",
              2 * rotated_b_final >= records_b.size() ? "yes" : "NO",
              best_mean < 100000 ? "yes" : "NO");

  pipeline.print_telemetry();
  return ok ? 0 : 1;
}
