// bench_util.h - shared scaffolding for the experiment harnesses.
//
// Every bench binary regenerates one of the paper's tables or figures
// against the simulated Internet. Most need the same pipeline front end:
// build the paper-shaped world, run the §4 discovery funnel, then (for the
// longitudinal figures) the §5 campaign. This header provides that pipeline
// with bench-friendly defaults, the shared output helpers, and the
// telemetry plumbing: one metrics registry + event journal per pipeline,
// attached to every stage, summarized by print_telemetry() and dumped as
// JSON for the bench trajectory.
#pragma once

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/bootstrap.h"
#include "core/io.h"
#include "core/campaign.h"
#include "core/report.h"
#include "core/tracker.h"
#include "probe/prober.h"
#include "sim/scenario.h"
#include "telemetry/export.h"
#include "telemetry/journal.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"

namespace scent::bench {

/// Wall-clock stopwatch for stage banners.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  void lap(const char* label) {
    std::printf("  [%6.2fs] %s\n", seconds(), label);
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Worker-thread count for every engine-backed sweep a bench runs (the
/// bootstrap funnel and campaign days). 1 = serial, 0 = hardware
/// concurrency. The engine's determinism contract makes any value produce
/// a bit-identical corpus, so figures and tables are unchanged by it.
inline unsigned g_threads = 1;

/// Parses `--threads=N` (or the SCENT_THREADS environment variable; the
/// flag wins) into g_threads. Call first thing in main(); every bench
/// accepts the flag so any figure or table can be regenerated sharded.
inline unsigned parse_threads(int argc, char** argv) {
  if (const char* env = std::getenv("SCENT_THREADS")) {
    g_threads = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      g_threads = static_cast<unsigned>(std::strtoul(argv[i] + 10, nullptr, 10));
    }
  }
  if (g_threads != 1) {
    std::printf("sweep threads: %u%s\n", g_threads,
                g_threads == 0 ? " (hardware concurrency)" : "");
  }
  return g_threads;
}

/// Prints the standard bench banner.
inline void banner(const char* experiment, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

/// Default artifact paths every bench shares (cwd-relative, gitignored).
inline constexpr const char* kJournalPath = ".scent_journal.jsonl";
inline constexpr const char* kTelemetryJsonPath = ".scent_telemetry.json";

/// The common world + funnel front end.
struct Pipeline {
  sim::PaperWorld world;
  sim::VirtualClock clock{sim::hours(10)};
  std::unique_ptr<probe::Prober> prober;
  core::BootstrapResult funnel;

  /// Per-pipeline telemetry: spans and counters from every stage land
  /// here; notable events (funnel records, rotation windows, tracker
  /// hits) land in the journal at kJournalPath.
  telemetry::Registry registry;
  telemetry::Journal journal;

  /// Builds the world and runs the §4 funnel. Probing uses the logical
  /// fast path at an elevated virtual rate so multi-million-probe stages
  /// finish inside one virtual day, exactly as the paper's zmap runs did
  /// in wall-clock hours. The funnel's rotating-/48 list is cached on disk
  /// (keyed by world seed) so the figure benches that share the default
  /// world do not each re-pay the ~50M-probe discovery cost; pass
  /// use_cache=false to force a fresh funnel.
  explicit Pipeline(const sim::PaperWorldOptions& world_options,
                    bool run_funnel = true, bool use_cache = true) {
    registry.set_clock(&clock);
    if (!journal.open(kJournalPath)) {
      std::printf("  warning: cannot open journal %s\n", kJournalPath);
    }
    journal.set_clock(&clock);

    Stopwatch timer;
    {
      telemetry::Span span{&registry, "world_build"};
      world = sim::make_paper_world(world_options);
    }
    timer.lap("world built");

    probe::ProberOptions probe_options;
    probe_options.wire_mode = false;
    probe_options.packets_per_second = 2000000;
    prober = std::make_unique<probe::Prober>(world.internet, clock,
                                             probe_options);
    prober->attach_telemetry(registry);

    if (!run_funnel) return;

    const std::string cache_path = cache_file(world_options);
    if (use_cache && load_rotating_cache(cache_path)) {
      std::printf("  funnel: %zu rotating /48s (cached: %s)\n",
                  funnel.rotating_48s.size(), cache_path.c_str());
      timer.lap("funnel loaded from cache");
      return;
    }

    core::BootstrapOptions boot;
    boot.probes_per_48 = 8;
    boot.threads = g_threads;
    boot.registry = &registry;
    boot.journal = &journal;
    funnel = core::run_bootstrap(world.internet, clock, *prober, boot);
    std::printf("  funnel: %" PRIu64 " probes, %zu seed /48s, %zu expanded, "
                "%zu high-density, %zu rotating /48s\n",
                funnel.probes_sent, funnel.seed_48s.size(),
                funnel.expanded_48s.size(), funnel.high_density_48s.size(),
                funnel.rotating_48s.size());
    timer.lap("funnel complete");
    if (use_cache) save_rotating_cache(cache_path);
  }

  /// Cache path keyed by the world-shaping options (a changed world must
  /// not reuse a stale rotating-/48 list).
  [[nodiscard]] static std::string cache_file(
      const sim::PaperWorldOptions& o) {
    const std::uint64_t key = sim::mix64(
        o.seed, sim::mix64(o.tail_as_count,
                           static_cast<std::uint64_t>(o.scale * 1000)),
        sim::mix64(o.devices_per_tail_pool, o.versatel_pool_count,
                   o.inject_pathologies ? 1 : 0));
    char name[64];
    std::snprintf(name, sizeof name, ".scent_funnel_cache_%016" PRIx64 ".txt",
                  key);
    return name;
  }

  bool load_rotating_cache(const std::string& path) {
    const auto prefixes = core::load_prefixes(path);
    if (!prefixes || prefixes->empty()) return false;
    funnel.rotating_48s = *prefixes;
    return true;
  }

  void save_rotating_cache(const std::string& path) const {
    if (!core::save_prefixes(path, funnel.rotating_48s,
                             "scent funnel cache: rotating /48s")) {
      std::printf("  warning: failed to write funnel cache %s\n",
                  path.c_str());
    }
  }

  /// Runs the §5 campaign over the funnel's rotating /48s.
  core::CampaignResult campaign(unsigned days) {
    Stopwatch timer;
    core::CampaignOptions options;
    options.days = days;
    options.threads = g_threads;
    options.registry = &registry;
    options.journal = &journal;
    auto result = core::run_campaign(world.internet, clock, *prober,
                                     funnel.rotating_48s, options);
    std::printf("  campaign: %u days, %" PRIu64 " probes, %" PRIu64
                " responses, %zu unique IIDs\n",
                days, result.probes_sent, result.responses,
                result.observations.unique_eui64_iids());
    timer.lap("campaign complete");
    return result;
  }

  /// A tracker pre-wired to this pipeline's telemetry sinks.
  [[nodiscard]] core::Tracker make_tracker(core::TrackerConfig config) {
    config.registry = &registry;
    config.journal = &journal;
    return core::Tracker{*prober, std::move(config)};
  }

  /// Prints the per-stage telemetry summary plus the funnel line(s), dumps
  /// the registry as JSON for the bench trajectory, and closes the
  /// journal. Call once, after the experiment's own output.
  void print_telemetry(const char* json_path = kTelemetryJsonPath) {
    std::printf("\n");
    telemetry::print_summary(stdout, registry);
    const auto gauge = [&](const char* name) -> const telemetry::Gauge* {
      return registry.find_gauge(name);
    };
    // Funnel lines read back the gauges the stages published — the same
    // values the stage results report, so bench output and telemetry
    // output must agree exactly.
    if (gauge("funnel.probes") != nullptr) {
      std::printf("  funnel: %" PRId64 " probes -> %" PRId64
                  " responses -> %" PRId64 " EUI-64 addrs -> %" PRId64
                  " unique IIDs\n",
                  gauge("funnel.probes")->value(),
                  gauge("funnel.responses")->value(),
                  gauge("funnel.eui64_addresses")->value(),
                  gauge("funnel.unique_iids")->value());
    }
    if (gauge("campaign.probes") != nullptr) {
      std::printf("  campaign funnel: %" PRId64 " probes -> %" PRId64
                  " responses -> %" PRId64 " EUI-64 addrs -> %" PRId64
                  " unique IIDs\n",
                  gauge("campaign.probes")->value(),
                  gauge("campaign.responses")->value(),
                  gauge("campaign.eui64_addresses")->value(),
                  gauge("campaign.unique_iids")->value());
    }
    if (telemetry::write_json(json_path, registry)) {
      std::printf("  telemetry json: %s, journal: %s (%zu events)\n",
                  json_path, journal.path().c_str(),
                  journal.events_written());
    } else {
      std::printf("  warning: failed to write telemetry json %s\n", json_path);
    }
    if (!journal.close()) {
      std::printf("  warning: journal write failed (%s)\n",
                  journal.path().c_str());
    }
  }
};

/// Prints a CDF as a fixed set of (value, fraction) steps.
inline void print_cdf(const char* title, const core::Cdf& cdf,
                      const char* value_label) {
  std::printf("\n%s  (n=%zu)\n", title, cdf.size());
  std::printf("  %-14s cum.fraction\n", value_label);
  for (const auto& [value, fraction] : cdf.steps()) {
    std::printf("  %-14.6g %.4f\n", value, fraction);
  }
}

/// Compact quantile summary for wide CDFs.
inline void print_quantiles(const char* title, const core::Cdf& cdf) {
  std::printf("%s: min=%g p10=%g p25=%g p50=%g p75=%g p90=%g max=%g (n=%zu)\n",
              title, cdf.min(), cdf.quantile(0.10), cdf.quantile(0.25),
              cdf.quantile(0.50), cdf.quantile(0.75), cdf.quantile(0.90),
              cdf.max(), cdf.size());
}

}  // namespace scent::bench
