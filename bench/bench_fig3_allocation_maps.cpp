// bench_fig3_allocation_maps - reproduces Figure 3: per-provider customer
// allocation maps obtained purely by probing.
//
// Paper: probing one address per /64 of a /48 and plotting the responding
// source address per (7th byte, 8th byte) of the target reveals the
// provider's allocation policy: Entel (BO) shows /56 bands, BH Telecom (BA)
// shows /60 sub-bands, Starcat (JP) is per-/64 pixelated with an
// unallocated upper region. Black (here '.') marks silence.
//
// Shape to reproduce: the three banding patterns, and Algorithm 1 medians
// of /56, /60, /64 respectively.
#include <cstdio>

#include "bench_util.h"
#include "core/inference.h"

namespace {

using namespace scent;

/// Probes every /64 of `p48` and renders the response-address banding.
/// Returns the Algorithm 1 median allocation length for the /48.
unsigned map_prefix(bench::Pipeline& pipeline, net::Prefix p48,
                    const char* provider, unsigned expected) {
  probe::SubnetTargets targets{p48, 64, 0x316};
  core::AllocationSizeInference inference;
  core::AllocationGrid grid;
  net::Ipv6Address target;
  std::uint64_t responses = 0;
  while (targets.next(target)) {
    const auto r = pipeline.prober->probe_one(target);
    if (!r.responded) continue;
    ++responses;
    inference.observe(r.target, r.response_source);
    const int id = grid.intern(r.response_source.iid() ^
                               r.response_source.network());
    grid.mark(r.target.byte(6), r.target.byte(7), id);
  }

  const unsigned median = inference.median_length().value_or(0);
  std::printf("\n--- %s  %s  (%llu/65536 /64s responsive, %zu distinct "
              "CPE, inferred allocation /%u, expected /%u)\n",
              provider, p48.to_string().c_str(),
              static_cast<unsigned long long>(responses),
              grid.distinct_sources(), median, expected);
  std::printf("%s", grid.render(24, 72).c_str());
  return median;
}

}  // namespace

int main(int argc, char** argv) {
  scent::bench::parse_threads(argc, argv);
  bench::banner(
      "Figure 3 - inferring customer allocation policies by probing",
      "Entel /56 banding; BH Telecom /60 banding; Starcat /64 pixels with "
      "unallocated upper quarter");

  sim::PaperWorldOptions options;
  bench::Pipeline pipeline{options, /*run_funnel=*/false};

  const auto pool_48 = [&](std::size_t provider_index) {
    const auto& pool =
        pipeline.world.internet.provider(provider_index).pools()[0];
    return net::Prefix{pool.config().prefix.base(), 48};
  };

  const unsigned entel =
      map_prefix(pipeline, pool_48(pipeline.world.entel), "Entel (BO)", 56);
  const unsigned bh = map_prefix(pipeline, pool_48(pipeline.world.bhtelecom),
                                 "BH Telecom (BA)", 60);
  const unsigned starcat = map_prefix(
      pipeline, pool_48(pipeline.world.starcat), "Starcat (JP)", 64);

  std::printf("\nshape check: entel=/56:%s bhtelecom=/60:%s starcat=/64:%s\n",
              entel == 56 ? "yes" : "NO", bh == 60 ? "yes" : "NO",
              starcat == 64 ? "yes" : "NO");

  pipeline.print_telemetry();
  return (entel == 56 && bh == 60 && starcat == 64) ? 0 : 1;
}
