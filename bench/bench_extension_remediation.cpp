// bench_extension_remediation - beyond-paper: the §8 fix rolling out.
//
// The paper's disclosure led a major CPE vendor to replace EUI-64 SLAAC
// with privacy extensions "in the next release of their OS". This harness
// models that rollout: a Versatel-like fleet receives the firmware upgrade
// in waves, and an attacker keeps running the §6 tracking attack against a
// panel of victims. Tracking success decays exactly with upgrade coverage —
// and, crucially, upgraded devices still answer probes (availability is
// unaffected); they are simply unlinkable.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/tracker.h"

int main(int argc, char** argv) {
  scent::bench::parse_threads(argc, argv);
  using namespace scent;
  bench::banner("Extension - EUI-64 deprecation rollout vs tracking (§8)",
                "vendor ships privacy extensions; tracking success decays "
                "with upgrade coverage, reaching zero at full deployment");

  core::TextTable table{{"upgraded fraction", "victims still trackable",
                         "track rate (days 10-13)"}};

  telemetry::Registry registry;

  bool monotone = true;
  double last_rate = 1.1;
  double rate_at_zero = 0;
  double rate_at_full = 1;
  for (const double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    sim::PaperWorld world = sim::make_tiny_world(0x06F5, 256);
    // Upgrade wave lands during days 2-8.
    sim::schedule_privacy_upgrades(world.internet, world.versatel, fraction,
                                   sim::days(2), sim::days(8), 0xF1);

    sim::VirtualClock clock{sim::hours(12)};
    probe::ProberOptions popt;
    popt.wire_mode = false;
    popt.packets_per_second = 2000000;
    probe::Prober prober{world.internet, clock, popt};
    registry.set_clock(&clock);
    prober.attach_telemetry(registry);
    char wave_name[32];
    std::snprintf(wave_name, sizeof wave_name, "rollout_%.0f%%",
                  fraction * 100);
    telemetry::Span wave_span{&registry, wave_name};
    const auto& pool = world.internet.provider(world.versatel).pools()[0];

    // A panel of 24 victims tracked daily for two weeks.
    constexpr std::size_t kVictims = 24;
    std::vector<core::Tracker> trackers;
    for (std::size_t v = 0; v < kVictims; ++v) {
      core::TrackerConfig config;
      config.target_mac = pool.devices()[v * 9].mac;
      config.pool = pool.config().prefix;
      config.allocation_length = pool.config().allocation_length;
      config.seed = sim::mix64(0x06F5, v);
      config.registry = &registry;
      trackers.emplace_back(prober, config);
    }

    std::size_t late_found = 0;
    std::size_t late_attempts = 0;
    std::size_t still_trackable = 0;
    std::vector<bool> found_late(kVictims, false);
    for (std::int64_t day = 0; day < 14; ++day) {
      clock.advance_to(sim::days(day) + sim::hours(12));
      for (std::size_t v = 0; v < kVictims; ++v) {
        const auto attempt = trackers[v].locate(day);
        if (day >= 10) {
          ++late_attempts;
          if (attempt.found) {
            ++late_found;
            found_late[v] = true;
          }
        }
      }
    }
    for (const bool f : found_late) still_trackable += f ? 1 : 0;

    const double rate = static_cast<double>(late_found) /
                        static_cast<double>(late_attempts);
    if (fraction == 0.0) rate_at_zero = rate;
    if (fraction == 1.0) rate_at_full = rate;
    if (rate > last_rate + 0.05) monotone = false;
    last_rate = rate;

    char fraction_text[16];
    char rate_text[16];
    std::snprintf(fraction_text, sizeof fraction_text, "%.0f%%",
                  fraction * 100);
    std::snprintf(rate_text, sizeof rate_text, "%.2f", rate);
    table.add_row({fraction_text,
                   std::to_string(still_trackable) + "/" +
                       std::to_string(kVictims),
                   rate_text});
  }

  table.print(std::cout);
  std::printf("\n(track rate = post-rollout daily re-identification success "
              "across the victim panel)\n");

  registry.set_clock(nullptr);
  std::printf("\n");
  telemetry::print_summary(stdout, registry);
  if (!telemetry::write_json(bench::kTelemetryJsonPath, registry)) {
    std::printf("  warning: failed to write telemetry json %s\n",
                bench::kTelemetryJsonPath);
  }

  const bool ok = monotone && rate_at_zero > 0.95 && rate_at_full < 0.05;
  std::printf("\nshape check: monotone_decay=%s full_fix_untrackable=%s\n",
              monotone ? "yes" : "NO", rate_at_full < 0.05 ? "yes" : "NO");
  return ok ? 0 : 1;
}
