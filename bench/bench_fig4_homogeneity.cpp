// bench_fig4_homogeneity - reproduces Figure 4 and the §5.1 vendor analysis.
//
// Paper: grouping the unique EUI-64 IIDs of each AS by the manufacturer OUI
// embedded in their MACs shows strong homogeneity — of 87 ASes with >= 100
// IIDs, more than half have a single vendor covering > 90% of the fleet,
// three quarters are above ~0.67, and even the least homogeneous AS is above
// ~1/3. NetCologne (AS8422) is 99.98% AVM; Viettel (AS7552) is 99.6% ZTE.
//
// Shape to reproduce: the homogeneity CDF quantiles and the two named ASes'
// dominant vendors.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/homogeneity.h"
#include "oui/oui_registry.h"

int main(int argc, char** argv) {
  scent::bench::parse_threads(argc, argv);
  using namespace scent;
  bench::banner("Figure 4 - per-AS CPE manufacturer homogeneity",
                ">1/2 of ASes above 0.9; 3/4 above 0.67; min above ~0.35; "
                "NetCologne=AVM 99.98%, Viettel=ZTE 99.6%");

  sim::PaperWorldOptions options;
  bench::Pipeline pipeline{options, /*run_funnel=*/false};

  // Homogeneity needs one sighting per device, not a longitudinal
  // campaign: sweep every pool of every provider once at allocation
  // granularity.
  bench::Stopwatch timer;
  core::ObservationStore store;
  for (std::size_t p = 0; p < pipeline.world.internet.provider_count(); ++p) {
    const auto& provider = pipeline.world.internet.provider(p);
    for (const auto& pool : provider.pools()) {
      const auto results = pipeline.prober->sweep_subnets(
          pool.config().prefix, pool.config().allocation_length, 0xF16 + p);
      store.add_all(results);
    }
  }
  timer.lap("census sweep complete");
  std::printf("  %zu observations, %zu unique IIDs\n", store.size(),
              store.unique_eui64_iids());

  const auto analysis = core::analyze_homogeneity(
      store, pipeline.world.internet.bgp(), oui::builtin_registry(),
      /*min_iids=*/100);

  // Named-provider spot checks.
  double netcologne_index = 0;
  double viettel_index = 0;
  std::string netcologne_vendor;
  std::string viettel_vendor;
  std::vector<double> indices;
  for (const auto& as : analysis) {
    indices.push_back(as.index());
    if (as.asn == 8422) {
      netcologne_index = as.index();
      netcologne_vendor = as.dominant_vendor();
    }
    if (as.asn == 7552) {
      viettel_index = as.index();
      viettel_vendor = as.dominant_vendor();
    }
  }

  const core::Cdf cdf = core::Cdf::of(indices);
  bench::print_cdf("Homogeneity index CDF over ASes (Figure 4)", cdf,
                   "index");

  std::printf("\nNamed providers (paper: 99.98%% / 99.6%%):\n");
  std::printf("  AS8422 NetCologne : %-22s %.4f\n", netcologne_vendor.c_str(),
              netcologne_index);
  std::printf("  AS7552 Viettel    : %-22s %.4f\n", viettel_vendor.c_str(),
              viettel_index);

  const double above_09 = 1.0 - cdf.at(0.9);
  const double above_067 = 1.0 - cdf.at(0.67);
  std::printf("\nASes analyzed: %zu (>=100 IIDs)\n", analysis.size());
  std::printf("fraction with index>0.9 : %.2f (paper: >0.50)\n", above_09);
  std::printf("fraction with index>0.67: %.2f (paper: ~0.75)\n", above_067);
  std::printf("minimum index           : %.2f (paper: >1/3)\n", cdf.min());

  const bool ok = above_09 > 0.4 && above_067 > 0.6 && cdf.min() > 0.3 &&
                  netcologne_vendor == "AVM GmbH" &&
                  viettel_vendor == "ZTE Corporation" &&
                  netcologne_index > 0.99 && viettel_index > 0.98;
  std::printf("shape check: %s\n", ok ? "yes" : "NO");

  pipeline.print_telemetry();
  return ok ? 0 : 1;
}
