// bench_fig12_provider_switch - reproduces Figure 12: customers switching
// ISPs, detected purely from probing.
//
// Paper: two EUI-64 IIDs each moved between the two German residential
// providers (AS8881 Versatel <-> AS3320 DTAG) mid-campaign; neither was
// seen in its former network again — the signature of a service-provider
// change rather than a dual-homed backup link.
//
// Shape to reproduce: both planted switchers classified as
// provider-switch with the right directions and a clean hand-off day.
#include <cstdio>

#include "bench_util.h"
#include "core/pathology.h"

int main(int argc, char** argv) {
  scent::bench::parse_threads(argc, argv);
  using namespace scent;
  bench::banner("Figure 12 - EUI-64 IIDs changing between German ISPs",
                "one IID AS8881->AS3320 mid-campaign, one the reverse; "
                "neither returns to its former AS");

  sim::PaperWorldOptions options;
  bench::Pipeline pipeline{options};
  const auto campaign = pipeline.campaign(/*days=*/44);
  const auto& bgp = pipeline.world.internet.bgp();

  const auto report = [&](net::MacAddress mac, const char* label) {
    const auto presence = core::presence_of(mac, campaign.observations, bgp);
    std::printf("\n%s (%s): day->AS timeline\n", label,
                mac.to_string().c_str());
    for (const auto& [day, asns] : presence.days) {
      std::printf("  day %2lld:", static_cast<long long>(day));
      for (const auto asn : asns) std::printf(" AS%u", asn);
      std::printf("\n");
    }
    return presence;
  };

  report(pipeline.world.switcher_ab, "switcher A (Versatel -> DTAG)");
  report(pipeline.world.switcher_ba, "switcher B (DTAG -> Versatel)");

  const auto multi = core::find_multi_as_iids(campaign.observations, bgp);
  bool ab_ok = false;
  bool ba_ok = false;
  for (const auto& m : multi) {
    if (m.kind != core::PathologyKind::kProviderSwitch) continue;
    if (m.mac == pipeline.world.switcher_ab && m.switch_from == 8881 &&
        m.switch_to == 3320) {
      ab_ok = true;
      std::printf("\nswitcher A classified: AS%u -> AS%u on day %lld\n",
                  m.switch_from, m.switch_to,
                  static_cast<long long>(m.switch_day));
    }
    if (m.mac == pipeline.world.switcher_ba && m.switch_from == 3320 &&
        m.switch_to == 8881) {
      ba_ok = true;
      std::printf("switcher B classified: AS%u -> AS%u on day %lld\n",
                  m.switch_from, m.switch_to,
                  static_cast<long long>(m.switch_day));
    }
  }

  std::printf("\nshape check: A(8881->3320)=%s B(3320->8881)=%s\n",
              ab_ok ? "yes" : "NO", ba_ok ? "yes" : "NO");

  pipeline.print_telemetry();
  return (ab_ok && ba_ok) ? 0 : 1;
}
