// bench_ablation_search - ablations of the paper's search-space reductions.
//
// The paper's Figure 2 argument: the customer allocation size bounds the
// search from above and the rotation pool from below. This harness
// quantifies each reduction separately on a Versatel-like /32 target,
// plus the §5.4 stride predictor as a third (beyond-paper) level:
//
//   strategy                          expected probes to re-find a device
//   naive: every /64 of the /32       ~2^31 (never completes here)
//   pool-bounded: every /64 of /46    ~2^17
//   + allocation-aware: every /56     ~2^9   (the paper's 256x saving)
//   + stride prediction               ~1     (beyond-paper extension)
//
// Shape to reproduce: each level cuts expected probes by orders of
// magnitude; the measured ratios match the arithmetic.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "core/tracker.h"

int main(int argc, char** argv) {
  scent::bench::parse_threads(argc, argv);
  using namespace scent;
  bench::banner("Ablation - search-space reduction levels (Figure 2, §3.2)",
                "pool bound ~2^17 probes, allocation-aware ~2^9, stride "
                "prediction ~1");

  sim::PaperWorldOptions options;
  bench::Pipeline pipeline{options, /*run_funnel=*/false};
  const auto& versatel =
      pipeline.world.internet.provider(pipeline.world.versatel);
  const auto& pool = versatel.pools()[0];

  constexpr std::size_t kDevices = 12;
  constexpr int kDays = 5;

  struct Level {
    const char* name;
    net::Prefix search;
    unsigned granularity;
    bool predict;
  };
  const Level levels[] = {
      {"pool /46, per-/64 sweep", pool.config().prefix, 64, false},
      {"pool /46, per-/56 sweep (allocation-aware)", pool.config().prefix,
       56, false},
      {"pool /46, per-/56 + stride prediction", pool.config().prefix, 56,
       true},
  };

  // Victims: EUI-64 devices that answer probes (an attacker tracking a
  // privacy-mode or silent CPE has no scent to follow in any strategy).
  std::vector<net::MacAddress> victims;
  for (const auto& device : pool.devices()) {
    if (victims.size() >= kDevices) break;
    if (device.mode == sim::AddressingMode::kEui64 &&
        device.error_behavior != sim::ErrorBehavior::kSilent) {
      victims.push_back(device.mac);
    }
  }

  core::TextTable table{
      {"strategy", "mean probes/day", "steady-state (day 2+)", "found rate"}};
  double means[3] = {0, 0, 0};
  double steady_means[3] = {0, 0, 0};
  int level_index = 0;
  for (const auto& level : levels) {
    // Each level replays the same virtual week with its own clock (and its
    // own prober bound to it), so strategies are compared like for like.
    sim::VirtualClock clock{sim::hours(12)};
    probe::ProberOptions popt;
    popt.wire_mode = false;
    popt.packets_per_second = 2000000;
    probe::Prober prober{pipeline.world.internet, clock, popt};

    double total_probes = 0;
    double steady_probes = 0;  // days 2+ only: past the warm-up sweeps
    int steady_attempts = 0;
    int total_attempts = 0;
    int total_found = 0;
    // Day-outer iteration: all trackers live through the same advancing
    // week (a per-device inner day loop would freeze the shared clock for
    // every device after the first).
    std::vector<core::Tracker> trackers;
    for (std::size_t d = 0; d < victims.size(); ++d) {
      core::TrackerConfig config;
      config.target_mac = victims[d];
      config.pool = level.search;
      config.allocation_length = level.granularity;
      config.seed = sim::mix64(0xAB1A, d);
      trackers.emplace_back(prober, config);
    }
    for (int day = 0; day < kDays; ++day) {
      clock.advance_to(sim::days(day) + sim::hours(12));
      for (auto& tracker : trackers) {
        if (level.predict && day >= 2) tracker.update_prediction();
        const auto attempt = tracker.locate(day);
        total_probes += static_cast<double>(attempt.probes_sent);
        ++total_attempts;
        total_found += attempt.found ? 1 : 0;
        if (day >= 2) {
          steady_probes += static_cast<double>(attempt.probes_sent);
          ++steady_attempts;
        }
      }
    }
    const double mean = total_probes / total_attempts;
    const double steady = steady_probes / steady_attempts;
    means[level_index] = mean;
    steady_means[level_index] = steady;
    ++level_index;
    char mean_text[32];
    char steady_text[32];
    char rate_text[32];
    std::snprintf(mean_text, sizeof mean_text, "%.1f", mean);
    std::snprintf(steady_text, sizeof steady_text, "%.1f", steady);
    std::snprintf(rate_text, sizeof rate_text, "%.2f",
                  static_cast<double>(total_found) / total_attempts);
    table.add_row({level.name, mean_text, steady_text, rate_text});
  }

  // The naive level is arithmetic, not measurement: a /32 swept per /64.
  std::printf("\n(naive reference: a /32 swept per-/64 needs ~%.2e probes "
              "per attempt — 5 days at 10kpps, §6)\n", std::pow(2.0, 31));
  table.print(std::cout);

  std::printf("\nreduction factors (steady state): per-/64 -> per-/56: "
              "%.1fx; per-/56 -> predicted: %.0fx\n",
              steady_means[0] / steady_means[1],
              steady_means[1] / steady_means[2]);
  std::printf("(note: per-/56 halves *expected* time-to-hit vs per-/64 — any "
              "probe into the victim's /56 answers — but cuts the sweep "
              "budget and full-enumeration cost 256x, §3.2.1)\n");

  const bool ok = means[0] > 1.5 * means[1] &&
                  steady_means[1] > 20 * steady_means[2] &&
                  steady_means[2] < 10;
  std::printf("shape check: %s\n", ok ? "yes" : "NO");

  pipeline.print_telemetry();
  return ok ? 0 : 1;
}
