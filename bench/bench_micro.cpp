// bench_micro - google-benchmark microbenchmarks of the hot paths.
//
// The paper's vantage probes at 10k packets per second; these benchmarks
// confirm every per-packet component of this implementation (address
// parse/format, EUI-64 codec, checksum, packet build+parse, LPM lookup,
// permutation step, flat-container ops, and the full probe/response loop)
// runs far above that rate, so the simulated campaigns are limited by scale
// choices, not implementation overheads.
//
// main() additionally runs enforced guards before the registered
// benchmarks:
//   * telemetry: attaching a registry costs <5% of fast-path throughput;
//   * sweep scaling: 8 shards beat serial by >= 3x (on >= 8-core hosts);
//   * pipeline scaling: a full campaign day (sweep + snapshot + MAC
//     accounting + fused analysis) through the streamed scheduler beats
//     serial by >= 3x and barrier-mode parallel by >= 1.3x at 8 threads
//     (on >= 8-core hosts), with identical outputs everywhere;
//   * ingest: the columnar ObservationStore ingests >= 2x faster and holds
//     >= 30% fewer live heap bytes per observation than the node-based
//     layout it replaced (replicated here as the measured baseline);
//   * corpus: binary snapshot save and load sustain >= 1M rows/s, and
//     incremental rotation differencing beats the full-column path >= 1.2x
//     over a 20-day snapshot chain with identical verdicts;
//   * analysis: the fused single-pass engine beats the sum of the five
//     independent full scans it replaced by >= 3x at one thread on a
//     1M-row corpus, with every derived report bit-identical.
// All guard numbers are written to $SCENT_BENCH_JSON (default
// BENCH_micro.json) so the perf trajectory is tracked across PRs. Each
// guard records whether it was enforced, the thread count it needs, and an
// explicit skipped_reason when the host cannot measure it — scripts/check.sh
// fails the run if a guard is skipped on hardware that could measure it.
//
// This TU replaces global operator new/delete with a live-byte-counting
// wrapper (malloc_usable_size accounting), which is what makes the
// bytes-per-observation guard a real heap measurement rather than a
// sizeof() estimate.
#include <benchmark/benchmark.h>
#include <malloc.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <new>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/derive.h"
#include "analysis/dossier.h"
#include "analysis/engine.h"
#include "analysis/input.h"
#include "container/flat_hash.h"
#include "core/homogeneity.h"
#include "core/inference.h"
#include "core/observation.h"
#include "core/pathology.h"
#include "core/rotation_detector.h"
#include "core/sweep_ingest.h"
#include "corpus/geo_feed.h"
#include "corpus/snapshot.h"
#include "engine/sweep.h"
#include "join/join.h"
#include "join/naive.h"
#include "netbase/eui64.h"
#include "netbase/ipv6_address.h"
#include "oui/oui_registry.h"
#include "probe/permutation.h"
#include "probe/prober.h"
#include "probe/target_generator.h"
#include "routing/bgp_table.h"
#include "routing/prefix_trie.h"
#include "serve/serve_table.h"
#include "sim/geo_feed.h"
#include "sim/scenario.h"
#include "sim/sim_time.h"
#include "telemetry/metrics.h"
#include "trace/quantile.h"
#include "trace/recorder.h"
#include "wire/icmpv6.h"

namespace {

std::atomic<std::size_t> g_live_heap_bytes{0};

void* tracked_alloc(std::size_t size) noexcept {
  void* p = std::malloc(size != 0 ? size : 1);
  if (p != nullptr) {
    g_live_heap_bytes.fetch_add(malloc_usable_size(p),
                                std::memory_order_relaxed);
  }
  return p;
}

void* tracked_aligned_alloc(std::size_t alignment, std::size_t size) noexcept {
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, rounded != 0 ? rounded : alignment);
  if (p != nullptr) {
    g_live_heap_bytes.fetch_add(malloc_usable_size(p),
                                std::memory_order_relaxed);
  }
  return p;
}

void tracked_free(void* p) noexcept {
  if (p == nullptr) return;
  g_live_heap_bytes.fetch_sub(malloc_usable_size(p),
                              std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = tracked_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  void* p = tracked_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return tracked_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return tracked_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  void* p = tracked_aligned_alloc(static_cast<std::size_t>(align), size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = tracked_aligned_alloc(static_cast<std::size_t>(align), size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { tracked_free(p); }
void operator delete[](void* p) noexcept { tracked_free(p); }
void operator delete(void* p, std::size_t) noexcept { tracked_free(p); }
void operator delete[](void* p, std::size_t) noexcept { tracked_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { tracked_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { tracked_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  tracked_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  tracked_free(p);
}

namespace {

using namespace scent;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Everything the guard legs measure, serialized to BENCH_micro.json at the
/// end of the run so scripts/check.sh can track the numbers across PRs.
struct BenchReport {
  unsigned hardware_threads = 0;

  double telemetry_plain_mops = 0;
  double telemetry_attached_mops = 0;
  double telemetry_overhead_pct = 0;
  bool telemetry_ok = false;

  std::size_t sweep_probes = 0;
  double sweep_serial_mops = 0;
  std::vector<std::pair<unsigned, double>> sweep_speedups;
  double sweep_speedup_at_8 = 0;
  bool sweep_floor_enforced = false;
  bool sweep_ok = false;

  std::size_t pipeline_probes = 0;
  double pipeline_serial_s = 0;
  double pipeline_barrier8_s = 0;
  double pipeline_pipelined8_s = 0;
  double pipeline_speedup_vs_serial = 0;
  double pipeline_speedup_vs_barrier = 0;
  bool pipeline_outputs_equal = false;
  bool pipeline_floor_enforced = false;
  bool pipeline_ok = false;

  std::size_t ingest_observations = 0;
  double ingest_legacy_mops = 0;
  double ingest_columnar_mops = 0;
  double ingest_speedup = 0;
  double legacy_bytes_per_obs = 0;
  double columnar_bytes_per_obs = 0;
  double bytes_reduction_pct = 0;
  bool ingest_ok = false;

  std::size_t container_keys = 0;
  double flat_insert_mops = 0, std_insert_mops = 0;
  double flat_find_mops = 0, std_find_mops = 0;
  double flat_iterate_mops = 0, std_iterate_mops = 0;
  std::size_t container_50m_keys = 0;  // large-scale flat-only pass
  double flat_50m_insert_mops = 0;
  double flat_50m_find_mops = 0;

  std::size_t join_corpus_rows = 0;
  std::size_t join_geo_rows = 0;
  unsigned join_partitions = 0;
  double join_serial_s = 0;
  double join_parallel8_s = 0;
  double join_speedup_at_8 = 0;
  double join_serial_mrows_per_s = 0;   // (corpus + geo rows) / serial time
  std::size_t join_spill_runs = 0;
  std::size_t join_spill_bytes = 0;
  std::size_t join_blocks_read = 0;
  std::size_t join_blocks_pruned = 0;
  std::size_t join_dossiers = 0;
  bool join_outputs_equal = false;      // 1-thread == 8-thread table
  bool join_oracle_equal = false;       // partitioned == naive hash join
  bool join_floor_enforced = false;
  std::size_t join_huge_rows_per_side = 0;  // 0 = gated config not run
  std::size_t join_huge_peak_heap_bytes = 0;
  std::size_t join_huge_bound_bytes = 0;
  bool join_huge_ok = true;             // vacuously true when gated off
  bool join_ok = false;

  std::size_t snapshot_rows = 0;
  std::size_t snapshot_file_bytes = 0;
  double snapshot_save_mrps = 0;  // million rows/sec, append+write
  double snapshot_load_mrps = 0;  // million rows/sec, open+read_store
  std::size_t snapshot_v2_rows = 0;
  std::size_t snapshot_v1_file_bytes = 0;   // frozen-layout baseline
  std::size_t snapshot_v2_file_bytes = 0;
  double snapshot_v2_bytes_per_row = 0;
  double snapshot_v2_ratio = 0;             // v1 bytes / v2 bytes
  double snapshot_v2_save_mrps = 0;         // encode+write, all threads
  double snapshot_v2_load_mrps = 0;         // lazy 4-column read, all threads
  std::size_t snapshot_v2_blocks = 0;       // per column section
  std::size_t snapshot_v2_blocks_skipped = 0;  // by the window probe
  bool snapshot_v2_floor_enforced = false;  // save/load floors need threads
  bool snapshot_v2_ok = false;
  unsigned diff_days = 0;
  double diff_full_ms = 0;
  double diff_incremental_ms = 0;
  double diff_speedup = 0;
  bool corpus_ok = false;

  std::size_t trace_rows = 0;
  double trace_batch_ns = 0;          // one 256-row columnar ingest batch
  double trace_idle_sample_ns = 0;    // ScopedSample, both sinks null
  double trace_enabled_sample_ns = 0; // ScopedSample, live recorder+sketch
  double trace_idle_overhead_pct = 0;
  double trace_enabled_overhead_pct = 0;
  bool trace_ok = false;

  std::size_t analysis_rows = 0;
  std::size_t analysis_devices = 0;
  std::size_t analysis_ases = 0;
  double analysis_alloc_ms = 0;        // legacy scan 1: global Algorithm 1
  double analysis_pool_ms = 0;         // legacy scan 2: global Algorithm 2
  double analysis_per_as_ms = 0;       // legacy scan 3: day-0 per-AS medians
  double analysis_homogeneity_ms = 0;  // legacy scan 4: vendor census
  double analysis_pathology_ms = 0;    // legacy scan 5: multi-AS IIDs
  double analysis_legacy_total_ms = 0;
  double analysis_fused_ms = 0;
  double analysis_speedup = 0;
  bool analysis_reports_equal = false;
  bool analysis_ok = false;

  unsigned serve_days = 0;
  std::size_t serve_rows = 0;
  std::size_t serve_devices = 0;
  double serve_rebuild_ms = 0;      // full fused rebuild, whole corpus
  double serve_delta_apply_ms = 0;  // scan+merge+materialize+publish, 1 day
  double serve_delta_speedup = 0;
  double serve_queries_per_s = 0;   // 4 readers vs live delta ingest
  std::size_t serve_versions_published = 0;
  bool serve_equal = false;  // maintained table == fresh rebuild
  bool serve_ok = false;

  /// One row of the "guards" JSON section: whether this guard's floor held,
  /// whether it could be enforced at all on this host, the thread count the
  /// measurement needs, and an explicit reason when it was skipped (so a
  /// skip can never masquerade as a pass).
  struct GuardStatus {
    const char* name = "";
    bool ok = false;
    bool enforced = true;
    unsigned required_threads = 1;
    std::string skipped_reason;  // empty = nothing skipped
  };
  std::vector<GuardStatus> guard_status;
};

// ---------------------------------------------------------------------------
// Per-packet component benchmarks (registered; run via the benchmark CLI).

void BM_AddressParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net::Ipv6Address::parse("2001:16b8:2:300:3a10:d5ff:feaa:bbcc"));
  }
}
BENCHMARK(BM_AddressParse);

void BM_AddressFormat(benchmark::State& state) {
  const net::Ipv6Address a{0x200116b800020300ULL, 0x3a10d5fffeaabbccULL};
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.to_string());
  }
}
BENCHMARK(BM_AddressFormat);

void BM_Eui64Codec(benchmark::State& state) {
  std::uint64_t mac_bits = 0x3810d5000000ULL;
  for (auto _ : state) {
    const std::uint64_t iid = net::mac_to_eui64(net::MacAddress{mac_bits++});
    benchmark::DoNotOptimize(net::eui64_to_mac(iid));
  }
}
BENCHMARK(BM_Eui64Codec);

void BM_ChecksumIcmpv6(benchmark::State& state) {
  const net::Ipv6Address src{0x20010db800000000ULL, 1};
  const net::Ipv6Address dst{0x200116b800020300ULL, 2};
  std::vector<std::uint8_t> message(64, 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::icmpv6_checksum(src, dst, message));
  }
}
BENCHMARK(BM_ChecksumIcmpv6);

void BM_PacketBuildParse(benchmark::State& state) {
  const net::Ipv6Address src{0x20010db800000000ULL, 1};
  const net::Ipv6Address dst{0x200116b800020300ULL, 2};
  std::uint16_t seq = 0;
  for (auto _ : state) {
    const auto packet = wire::build_echo_request(src, dst, 0x5C37, ++seq, 64);
    benchmark::DoNotOptimize(wire::parse_packet(packet));
  }
}
BENCHMARK(BM_PacketBuildParse);

void BM_TrieLongestMatch(benchmark::State& state) {
  routing::PrefixTrie<int> trie;
  sim::Rng rng{42};
  for (int i = 0; i < 1000; ++i) {
    const net::Ipv6Address base{rng.next() & 0xffffffff00000000ULL, 0};
    trie.insert(net::Prefix{base, 32 + static_cast<unsigned>(rng.below(17))},
                i);
  }
  sim::Rng query_rng{7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trie.longest_match(net::Ipv6Address{query_rng.next(), 0}));
  }
}
BENCHMARK(BM_TrieLongestMatch);

void BM_PermutationNext(benchmark::State& state) {
  probe::CyclicPermutation perm{1ULL << 20, 99};
  std::uint64_t out = 0;
  for (auto _ : state) {
    if (!perm.next(out)) perm.reset();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_PermutationNext);

void BM_FeistelForward(benchmark::State& state) {
  const sim::FeistelPermutation perm{1ULL << 18, 31337};
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm.forward(x++ & ((1ULL << 18) - 1)));
  }
}
BENCHMARK(BM_FeistelForward);

void BM_TargetGeneration(benchmark::State& state) {
  const net::Prefix pool = *net::Prefix::parse("2001:16b8:100::/46");
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        probe::target_in(pool.subnet(56, net::Uint128{i++ & 1023}), 7));
  }
}
BENCHMARK(BM_TargetGeneration);

/// The full probe loop, fast path: route, invert pool occupancy, synthesize
/// the reply. Items/sec here is the simulated "packets per second" ceiling.
void BM_ProbeLoopFast(benchmark::State& state) {
  static sim::PaperWorld world = sim::make_tiny_world(5, 512);
  sim::VirtualClock clock{sim::hours(12)};
  probe::ProberOptions options;
  options.wire_mode = false;
  options.packets_per_second = 0;  // no pacing: measure raw throughput
  probe::Prober prober{world.internet, clock, options};
  const auto& pool = world.internet.provider(world.versatel).pools()[0];
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto target = probe::target_in(
        pool.config().prefix.subnet(56, net::Uint128{i++ & 1023}), 3);
    benchmark::DoNotOptimize(prober.probe_one(target));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ProbeLoopFast);

/// Fast-path loop with a telemetry registry attached: per probe this adds
/// two cached-pointer null checks and two counter increments. Compare
/// items/sec against BM_ProbeLoopFast.
void BM_ProbeLoopFastTelemetry(benchmark::State& state) {
  static sim::PaperWorld world = sim::make_tiny_world(5, 512);
  sim::VirtualClock clock{sim::hours(12)};
  probe::ProberOptions options;
  options.wire_mode = false;
  options.packets_per_second = 0;
  probe::Prober prober{world.internet, clock, options};
  telemetry::Registry registry;
  registry.set_clock(&clock);
  prober.attach_telemetry(registry);
  const auto& pool = world.internet.provider(world.versatel).pools()[0];
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto target = probe::target_in(
        pool.config().prefix.subnet(56, net::Uint128{i++ & 1023}), 3);
    benchmark::DoNotOptimize(prober.probe_one(target));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ProbeLoopFastTelemetry);

/// Same loop through full wire serialization, checksum, parse.
void BM_ProbeLoopWire(benchmark::State& state) {
  static sim::PaperWorld world = sim::make_tiny_world(6, 512);
  sim::VirtualClock clock{sim::hours(12)};
  probe::ProberOptions options;
  options.wire_mode = true;
  options.packets_per_second = 0;
  probe::Prober prober{world.internet, clock, options};
  const auto& pool = world.internet.provider(world.versatel).pools()[0];
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto target = probe::target_in(
        pool.config().prefix.subnet(56, net::Uint128{i++ & 1023}), 3);
    benchmark::DoNotOptimize(prober.probe_one(target));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ProbeLoopWire);

// ---------------------------------------------------------------------------
// Flat-container microbenchmarks vs std::unordered_map, 1M and 10M keys.

std::vector<std::uint64_t> make_keys(std::size_t n, std::uint64_t seed) {
  sim::Rng rng{seed};
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back(rng.next());
  return keys;
}

template <typename Map>
void map_insert_bench(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto keys = make_keys(n, 0x5EED);
  for (auto _ : state) {
    Map map;
    for (const std::uint64_t k : keys) map[k] = k;
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}

template <typename Map>
void map_find_bench(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto keys = make_keys(n, 0x5EED);
  Map map;
  for (const std::uint64_t k : keys) map[k] = k;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(keys[i]));
    if (++i == n) i = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

template <typename Map>
void map_iterate_bench(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto keys = make_keys(n, 0x5EED);
  Map map;
  for (const std::uint64_t k : keys) map[k] = k;
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (const auto& [key, value] : map) sum += value;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(map.size()));
}

using FlatU64Map = container::FlatMap<std::uint64_t, std::uint64_t>;
using StdU64Map = std::unordered_map<std::uint64_t, std::uint64_t>;

void BM_FlatMapInsert(benchmark::State& state) {
  map_insert_bench<FlatU64Map>(state);
}
void BM_StdUnorderedMapInsert(benchmark::State& state) {
  map_insert_bench<StdU64Map>(state);
}
void BM_FlatMapFind(benchmark::State& state) {
  map_find_bench<FlatU64Map>(state);
}
void BM_StdUnorderedMapFind(benchmark::State& state) {
  map_find_bench<StdU64Map>(state);
}
void BM_FlatMapIterate(benchmark::State& state) {
  map_iterate_bench<FlatU64Map>(state);
}
void BM_StdUnorderedMapIterate(benchmark::State& state) {
  map_iterate_bench<StdU64Map>(state);
}
// The flat containers also register a 50M-key size (ROADMAP: stress far
// past 10M — the join engine hashes whole corpus sides); std::unordered_map
// stays capped at 10M, where it is already an order of magnitude behind.
BENCHMARK(BM_FlatMapInsert)->Arg(1 << 20)->Arg(10000000)->Arg(50000000);
BENCHMARK(BM_StdUnorderedMapInsert)->Arg(1 << 20)->Arg(10000000);
BENCHMARK(BM_FlatMapFind)->Arg(1 << 20)->Arg(10000000)->Arg(50000000);
BENCHMARK(BM_StdUnorderedMapFind)->Arg(1 << 20)->Arg(10000000);
BENCHMARK(BM_FlatMapIterate)->Arg(1 << 20)->Arg(10000000);
BENCHMARK(BM_StdUnorderedMapIterate)->Arg(1 << 20)->Arg(10000000);

/// One guarded pass over 1M keys: insert, find (all hits), iterate x4.
/// Returns {insert Mops, find Mops, iterate Mops}.
template <typename Map>
std::array<double, 3> measure_map_ops(const std::vector<std::uint64_t>& keys) {
  const auto n = static_cast<double>(keys.size());
  Map map;
  auto start = std::chrono::steady_clock::now();
  for (const std::uint64_t k : keys) map[k] = k;
  const double insert_s = seconds_since(start);

  start = std::chrono::steady_clock::now();
  std::uint64_t hits = 0;
  for (const std::uint64_t k : keys) {
    const auto it = map.find(k);
    if (it != map.end()) hits += it->second & 1;
  }
  benchmark::DoNotOptimize(hits);
  const double find_s = seconds_since(start);

  start = std::chrono::steady_clock::now();
  std::uint64_t sum = 0;
  for (int rep = 0; rep < 4; ++rep) {
    for (const auto& [key, value] : map) sum += value;
  }
  benchmark::DoNotOptimize(sum);
  const double iterate_s = seconds_since(start);

  return {n / insert_s / 1e6, n / find_s / 1e6, 4 * n / iterate_s / 1e6};
}

void measure_container_stats(BenchReport& report) {
  constexpr std::size_t kKeys = 1 << 20;
  const auto keys = make_keys(kKeys, 0x5EED);
  measure_map_ops<FlatU64Map>(keys);  // warm-up, discarded
  std::array<double, 3> flat{};
  std::array<double, 3> std_map{};
  for (int trial = 0; trial < 3; ++trial) {  // interleaved best-of-3
    const auto f = measure_map_ops<FlatU64Map>(keys);
    const auto s = measure_map_ops<StdU64Map>(keys);
    for (std::size_t i = 0; i < 3; ++i) {
      flat[i] = std::max(flat[i], f[i]);
      std_map[i] = std::max(std_map[i], s[i]);
    }
  }
  report.container_keys = kKeys;
  report.flat_insert_mops = flat[0];
  report.flat_find_mops = flat[1];
  report.flat_iterate_mops = flat[2];
  report.std_insert_mops = std_map[0];
  report.std_find_mops = std_map[1];
  report.std_iterate_mops = std_map[2];
  std::printf(
      "containers (%zu u64 keys, Mops, best of 3): flat insert/find/iterate "
      "%.1f/%.1f/%.1f vs std::unordered_map %.1f/%.1f/%.1f\n",
      kKeys, flat[0], flat[1], flat[2], std_map[0], std_map[1], std_map[2]);
}

/// The large-scale flat-only pass: 50M keys, the size the join engine's
/// naive-oracle side actually reaches (ROADMAP asks to stress far past the
/// 10M registered bench). Single trial — the ~2.5 GB working set makes the
/// numbers stable — recording insert and find Mops. This size is what
/// exposed the rehash pathology fixed in flat_hash.h (each grow copied the
/// stale bucket-index array and zero-filled the growth; the 50M chain
/// moved ~1.5 GB of dead bytes).
void measure_container_stats_50m(BenchReport& report) {
  constexpr std::size_t kKeys = 50'000'000;
  const auto keys = make_keys(kKeys, 0xB16);
  FlatU64Map map;
  auto start = std::chrono::steady_clock::now();
  for (const std::uint64_t k : keys) map[k] = k;
  const double insert_s = seconds_since(start);

  start = std::chrono::steady_clock::now();
  std::uint64_t hits = 0;
  for (const std::uint64_t k : keys) {
    const auto it = map.find(k);
    if (it != map.end()) hits += it->second & 1;
  }
  benchmark::DoNotOptimize(hits);
  const double find_s = seconds_since(start);

  report.container_50m_keys = kKeys;
  report.flat_50m_insert_mops = static_cast<double>(kKeys) / insert_s / 1e6;
  report.flat_50m_find_mops = static_cast<double>(kKeys) / find_s / 1e6;
  std::printf(
      "containers (%zu u64 keys, flat only): insert %.1f Mops, find %.1f "
      "Mops\n",
      kKeys, report.flat_50m_insert_mops, report.flat_50m_find_mops);
}

// ---------------------------------------------------------------------------
// Ingest guard: columnar ObservationStore vs the node-based layout it
// replaced, on a paper-shaped stream (mostly-unique responses, MACs
// recurring across a handful of /64s).

/// The pre-columnar ObservationStore: an AoS observation vector plus
/// node-based unordered indexes, re-deriving the embedded MAC per
/// observation. Kept verbatim as the measured ingest baseline.
class LegacyObservationStore {
 public:
  void add(const core::Observation& obs) {
    const std::size_t index = observations_.size();
    observations_.push_back(obs);
    responses_.insert(obs.response);
    if (const auto mac = net::embedded_mac(obs.response)) {
      eui_responses_.insert(obs.response);
      by_mac_[*mac].push_back(index);
    }
  }

  [[nodiscard]] std::size_t unique_responses() const noexcept {
    return responses_.size();
  }
  [[nodiscard]] std::size_t unique_eui64_iids() const noexcept {
    return by_mac_.size();
  }

 private:
  std::vector<core::Observation> observations_;
  std::unordered_map<net::MacAddress, std::vector<std::size_t>,
                     net::MacAddressHash>
      by_mac_;
  std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash> responses_;
  std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash> eui_responses_;
};

/// A campaign-shaped stream: 85% EUI-64 responses from a 128k-MAC
/// population spread over 16k /64s (so responses are almost all distinct,
/// like the paper's 110M-unique-address days, while each MAC recurs ~7x
/// and grows a real by-MAC index list).
std::vector<core::Observation> make_ingest_stream(std::uint64_t seed,
                                                  std::size_t count) {
  sim::Rng rng{seed};
  std::vector<core::Observation> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t network =
        0x200116b800000000ULL | (rng.below(1 << 14) << 8);
    net::Ipv6Address response;
    if (rng.chance(0.85)) {
      const net::MacAddress mac{0x3810d5000000ULL | rng.below(1 << 17)};
      response = net::Ipv6Address{network, net::mac_to_eui64(mac)};
    } else {
      response =
          net::Ipv6Address{network, rng.next() | 0x0400000000000000ULL};
    }
    out.push_back(core::Observation{net::Ipv6Address{network, i}, response,
                                    wire::Icmpv6Type::kEchoReply, 0,
                                    static_cast<sim::TimePoint>(i)});
  }
  return out;
}

struct IngestMeasurement {
  double rate = 0;           // observations/sec
  double bytes_per_obs = 0;  // live heap bytes per observation, store alive
};

template <typename Store>
IngestMeasurement measure_ingest(const std::vector<core::Observation>& stream) {
  const std::size_t heap_before =
      g_live_heap_bytes.load(std::memory_order_relaxed);
  Store store;
  const auto start = std::chrono::steady_clock::now();
  for (const auto& obs : stream) store.add(obs);
  const double seconds = seconds_since(start);
  benchmark::DoNotOptimize(store.unique_responses());
  benchmark::DoNotOptimize(store.unique_eui64_iids());
  const std::size_t heap_after =
      g_live_heap_bytes.load(std::memory_order_relaxed);
  IngestMeasurement m;
  m.rate = static_cast<double>(stream.size()) / seconds;
  m.bytes_per_obs = static_cast<double>(heap_after - heap_before) /
                    static_cast<double>(stream.size());
  return m;
}

void BM_ObservationIngestColumnar(benchmark::State& state) {
  const auto stream =
      make_ingest_stream(0xD1, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::ObservationStore store;
    for (const auto& obs : stream) store.add(obs);
    benchmark::DoNotOptimize(store.unique_responses());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
}
void BM_ObservationIngestLegacy(benchmark::State& state) {
  const auto stream =
      make_ingest_stream(0xD1, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    LegacyObservationStore store;
    for (const auto& obs : stream) store.add(obs);
    benchmark::DoNotOptimize(store.unique_responses());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_ObservationIngestColumnar)->Arg(1 << 20);
BENCHMARK(BM_ObservationIngestLegacy)->Arg(1 << 20);

/// Enforces the container PR's acceptance criteria: >= 2x ingest
/// throughput and >= 30% fewer live heap bytes per observation than the
/// node-based baseline, same stream, same host.
bool check_ingest_guard(BenchReport& report) {
  constexpr std::size_t kObservations = 1 << 20;
  const auto stream = make_ingest_stream(0xD1, kObservations);

  measure_ingest<core::ObservationStore>(stream);  // warm-up, discarded
  IngestMeasurement columnar;
  IngestMeasurement legacy;
  for (int trial = 0; trial < 3; ++trial) {  // interleaved best-of-3
    const auto c = measure_ingest<core::ObservationStore>(stream);
    const auto l = measure_ingest<LegacyObservationStore>(stream);
    columnar.rate = std::max(columnar.rate, c.rate);
    legacy.rate = std::max(legacy.rate, l.rate);
    // Bytes are deterministic per layout; keep the last measurement.
    columnar.bytes_per_obs = c.bytes_per_obs;
    legacy.bytes_per_obs = l.bytes_per_obs;
  }

  const double speedup = columnar.rate / legacy.rate;
  const double reduction =
      1.0 - columnar.bytes_per_obs / legacy.bytes_per_obs;
  report.ingest_observations = kObservations;
  report.ingest_legacy_mops = legacy.rate / 1e6;
  report.ingest_columnar_mops = columnar.rate / 1e6;
  report.ingest_speedup = speedup;
  report.legacy_bytes_per_obs = legacy.bytes_per_obs;
  report.columnar_bytes_per_obs = columnar.bytes_per_obs;
  report.bytes_reduction_pct = reduction * 100;

  const bool rate_ok = speedup >= 2.0;
  const bool bytes_ok = reduction >= 0.30;
  std::printf(
      "ingest guard (%zu obs): columnar %.2fM obs/s vs legacy %.2fM obs/s = "
      "%.2fx (floor 2x) %s\n",
      kObservations, columnar.rate / 1e6, legacy.rate / 1e6, speedup,
      rate_ok ? "OK" : "FAILED");
  std::printf(
      "bytes guard: columnar %.1f B/obs vs legacy %.1f B/obs = %.1f%% "
      "reduction (floor 30%%) %s\n",
      columnar.bytes_per_obs, legacy.bytes_per_obs, reduction * 100,
      bytes_ok ? "OK" : "FAILED");
  report.ingest_ok = rate_ok && bytes_ok;
  return report.ingest_ok;
}

// ---------------------------------------------------------------------------
// Corpus guards: binary snapshot save/load throughput, and incremental
// rotation differencing vs. the full-column path over a multi-day on-disk
// corpus (the §5f checkpoint chain shape).

std::string bench_tmp_path(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string{dir != nullptr && *dir != '\0' ? dir : "/tmp"} + "/" +
         name;
}

/// One campaign day: `targets` distinct targets probed `repeat` times each,
/// all EUI-64 responsive, with the fleet's /64s shifted per day (prefix
/// rotation). Repeats make the deduplicated EUI-pair section much smaller
/// than the row columns — the asymmetry incremental differencing exploits.
core::ObservationStore make_day_store(std::uint64_t day, std::size_t targets,
                                      std::size_t repeat) {
  core::ObservationStore store;
  for (std::size_t r = 0; r < repeat; ++r) {
    for (std::size_t i = 0; i < targets; ++i) {
      core::Observation obs;
      obs.target = net::Ipv6Address{0x20010db800000000ULL | (i << 16), 1};
      const std::uint64_t slot = (i * 131 + day * 977) & 0x3fff;
      obs.response =
          net::Ipv6Address{0x200116b800000000ULL | (slot << 8),
                           net::mac_to_eui64(net::MacAddress{
                               0x3810d5000000ULL + i})};
      obs.type = wire::Icmpv6Type::kEchoReply;
      obs.code = 0;
      obs.time = static_cast<sim::TimePoint>(day * 86400000000ULL +
                                             r * targets + i);
      store.add(obs);
    }
  }
  return store;
}

/// The pre-corpus way to diff yesterday against today: read the full row
/// columns back, rebuild the in-memory Snapshot, then detect_rotation.
std::vector<core::RotationVerdict> full_diff_from_disk(
    const std::string& path, const core::Snapshot& second, bool& ok) {
  corpus::SnapshotReader reader;
  std::vector<net::Ipv6Address> targets;
  std::vector<net::Ipv6Address> responses;
  ok = reader.open(path) && reader.read_targets(targets) &&
       reader.read_responses(responses) && ok;
  core::Snapshot prior;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    prior.record(targets[i], responses[i]);
  }
  return core::detect_rotation(prior, second);
}

/// Enforces this PR's corpus floors: snapshot save and load both sustain
/// >= 1M rows/s on a 1M-row day, and incremental differencing beats the
/// full-column path by >= 1.2x across a 20-day chain while producing
/// identical verdicts.
bool check_corpus_guards(BenchReport& report) {
  bool io_ok = true;

  // --- save/load throughput, 1M-row day ---
  constexpr std::size_t kRows = 1 << 20;
  const auto stream = make_ingest_stream(0xC0, kRows);
  core::ObservationStore store;
  for (const auto& obs : stream) store.add(obs);
  const std::string snap_path = bench_tmp_path("scent_bench_snapshot.snap");

  double save_rate = 0;
  double load_rate = 0;
  std::size_t file_bytes = 0;
  for (int trial = 0; trial < 3; ++trial) {  // interleaved best-of-3
    auto start = std::chrono::steady_clock::now();
    corpus::SnapshotWriter writer;
    writer.append(store);
    io_ok = writer.write(snap_path) && io_ok;
    save_rate = std::max(save_rate, kRows / seconds_since(start));
    file_bytes = writer.encoded_size();

    start = std::chrono::steady_clock::now();
    corpus::SnapshotReader reader;
    io_ok = reader.open(snap_path) && io_ok;
    auto loaded = reader.read_store();
    io_ok = loaded.has_value() && loaded->size() == kRows && io_ok;
    benchmark::DoNotOptimize(loaded);
    load_rate = std::max(load_rate, kRows / seconds_since(start));
  }
  std::remove(snap_path.c_str());
  report.snapshot_rows = kRows;
  report.snapshot_file_bytes = file_bytes;
  report.snapshot_save_mrps = save_rate / 1e6;
  report.snapshot_load_mrps = load_rate / 1e6;

  // --- incremental vs full differencing over a 20-day chain ---
  constexpr unsigned kPriorDays = 20;
  constexpr std::size_t kTargets = 1 << 14;
  constexpr std::size_t kRepeat = 4;
  std::vector<std::string> day_paths;
  for (unsigned day = 0; day < kPriorDays; ++day) {
    const auto day_store = make_day_store(day, kTargets, kRepeat);
    corpus::SnapshotWriter writer;
    writer.append(day_store);
    day_paths.push_back(
        bench_tmp_path("scent_bench_day_" + std::to_string(day) + ".snap"));
    io_ok = writer.write(day_paths.back()) && io_ok;
  }
  const auto today = make_day_store(kPriorDays, kTargets, kRepeat);
  core::Snapshot second;
  for (std::size_t i = 0; i < today.size(); ++i) {
    second.record(today.target(i), today.response(i));
  }

  bool verdicts_match = true;
  double full_s = 1e30;
  double incremental_s = 1e30;
  for (int trial = 0; trial < 3; ++trial) {  // interleaved best-of-3 sums
    auto start = std::chrono::steady_clock::now();
    std::size_t full_verdicts = 0;
    for (const auto& path : day_paths) {
      const auto verdicts = full_diff_from_disk(path, second, io_ok);
      full_verdicts += verdicts.size();
      benchmark::DoNotOptimize(verdicts);
    }
    full_s = std::min(full_s, seconds_since(start));

    start = std::chrono::steady_clock::now();
    std::size_t incremental_verdicts = 0;
    for (const auto& path : day_paths) {
      corpus::SnapshotReader reader;
      io_ok = reader.open(path) && io_ok;
      const auto verdicts = core::detect_rotation_incremental(reader, second);
      io_ok = verdicts.has_value() && io_ok;
      if (verdicts) incremental_verdicts += verdicts->size();
      benchmark::DoNotOptimize(verdicts);
    }
    incremental_s = std::min(incremental_s, seconds_since(start));
    verdicts_match = verdicts_match && full_verdicts == incremental_verdicts;
  }
  // Field-by-field equality spot check on one day (counts checked above).
  {
    bool ok = true;
    const auto full = full_diff_from_disk(day_paths[0], second, ok);
    corpus::SnapshotReader reader;
    ok = reader.open(day_paths[0]) && ok;
    const auto incremental =
        core::detect_rotation_incremental(reader, second);
    verdicts_match = verdicts_match && ok && incremental.has_value() &&
                     incremental->size() == full.size();
    for (std::size_t i = 0; verdicts_match && i < full.size(); ++i) {
      verdicts_match = (*incremental)[i].prefix == full[i].prefix &&
                       (*incremental)[i].changed == full[i].changed &&
                       (*incremental)[i].rotating == full[i].rotating;
    }
  }
  for (const auto& path : day_paths) std::remove(path.c_str());

  const double speedup = full_s / incremental_s;
  report.diff_days = kPriorDays;
  report.diff_full_ms = full_s * 1e3;
  report.diff_incremental_ms = incremental_s * 1e3;
  report.diff_speedup = speedup;

  const bool save_ok = save_rate >= 1e6;
  const bool load_ok = load_rate >= 1e6;
  const bool diff_ok = speedup >= 1.2 && verdicts_match;
  std::printf(
      "corpus guard (%zu rows, %zu-byte file): save %.1fM rows/s, load "
      "%.1fM rows/s (floors 1M) %s\n",
      kRows, file_bytes, save_rate / 1e6, load_rate / 1e6,
      save_ok && load_ok ? "OK" : "FAILED");
  std::printf(
      "incremental diff guard (%u days x %zu rows): full %.1fms vs "
      "incremental %.1fms = %.2fx (floor 1.2x, verdicts %s) %s\n",
      kPriorDays, kTargets * kRepeat, full_s * 1e3, incremental_s * 1e3,
      speedup, verdicts_match ? "equal" : "DIVERGED",
      diff_ok ? "OK" : "FAILED");
  if (!io_ok) std::printf("corpus guard: snapshot I/O FAILED\n");
  report.corpus_ok = io_ok && save_ok && load_ok && diff_ok;
  return report.corpus_ok;
}

std::vector<unsigned char> slurp_file(const std::string& path) {
  std::vector<unsigned char> bytes;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return bytes;
  unsigned char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return bytes;
}

/// Enforces the snapshot-v2 floors on the same 1M-row campaign-shaped
/// corpus the corpus guard uses: >= 3x smaller files than the frozen v1
/// layout, >= 5M rows/s save (encode + write) and >= 10M rows/s lazy
/// four-column load, byte-identical output at 1 vs 8 writer threads, and
/// block-skipping row-window reads that return exactly the full-read slice
/// while leaving non-overlapping blocks untouched.
bool check_snapshot_v2_guards(BenchReport& report) {
  constexpr std::size_t kRows = 1 << 20;
  const auto stream = make_ingest_stream(0xC0, kRows);
  core::ObservationStore store;
  for (const auto& obs : stream) store.add(obs);

  // The v1 baseline needs no file: the frozen layout's size is a closed
  // form of the row/pair counts.
  corpus::SnapshotWriter v1_writer;
  v1_writer.set_format_version(corpus::kSnapshotFormatV1);
  v1_writer.append(store);
  const std::uint64_t v1_bytes = v1_writer.encoded_size();

  const std::string path = bench_tmp_path("scent_bench_snapshot_v2.snap");
  bool io_ok = true;
  corpus::SnapshotWriter writer;
  writer.set_threads(0);  // hardware concurrency
  writer.append(store);
  double save_rate = 0;
  for (int trial = 0; trial < 3; ++trial) {  // best-of-3
    const auto start = std::chrono::steady_clock::now();
    io_ok = writer.write(path) && io_ok;
    save_rate = std::max(save_rate, kRows / seconds_since(start));
  }
  const std::uint64_t v2_bytes = writer.encoded_size();

  // Lazy load: the four row columns, no store replay (read_store is the
  // corpus guard's metric; this one isolates decode + I/O).
  double load_rate = 0;
  for (int trial = 0; trial < 3; ++trial) {
    const auto start = std::chrono::steady_clock::now();
    corpus::SnapshotReader reader;
    reader.set_threads(0);
    io_ok = reader.open(path) && io_ok;
    std::vector<net::Ipv6Address> targets;
    std::vector<net::Ipv6Address> responses;
    std::vector<std::uint16_t> type_codes;
    std::vector<sim::TimePoint> times;
    io_ok = reader.read_targets(targets) && reader.read_responses(responses) &&
            reader.read_type_codes(type_codes) && reader.read_times(times) &&
            targets.size() == kRows && times.size() == kRows && io_ok;
    benchmark::DoNotOptimize(targets);
    benchmark::DoNotOptimize(responses);
    benchmark::DoNotOptimize(type_codes);
    benchmark::DoNotOptimize(times);
    load_rate = std::max(load_rate, kRows / seconds_since(start));
  }

  // Determinism: 1 writer thread and 8 writer threads must emit the same
  // bytes (blocks are fixed row partitions encoded independently).
  const std::string serial_path =
      bench_tmp_path("scent_bench_snapshot_v2_t1.snap");
  corpus::SnapshotWriter serial_writer;
  serial_writer.set_threads(1);
  serial_writer.append(store);
  io_ok = serial_writer.write(serial_path) && io_ok;
  corpus::SnapshotWriter eight_writer;
  eight_writer.set_threads(8);
  eight_writer.append(store);
  io_ok = eight_writer.write(path) && io_ok;
  const bool stable = slurp_file(serial_path) == slurp_file(path);
  std::remove(serial_path.c_str());

  // Block-skip probe: a mid-corpus window must equal the full-read slice
  // and must have skipped the blocks it does not overlap.
  bool window_ok = true;
  std::uint64_t blocks_skipped = 0;
  {
    corpus::SnapshotReader full;
    std::vector<net::Ipv6Address> all;
    window_ok = full.open(path) && full.read_responses(all) && window_ok;
    constexpr std::uint64_t kFirst = 400000;
    constexpr std::uint64_t kCount = 200000;
    corpus::SnapshotReader windowed;
    std::vector<net::Ipv6Address> slice;
    window_ok = windowed.open(path) &&
                windowed.read_responses(slice, kFirst, kCount) && window_ok;
    window_ok = window_ok && slice.size() == kCount &&
                std::equal(slice.begin(), slice.end(), all.begin() + kFirst);
    blocks_skipped = windowed.blocks_skipped();
    window_ok = window_ok && blocks_skipped > 0;
  }
  std::remove(path.c_str());

  const double ratio =
      v2_bytes > 0 ? static_cast<double>(v1_bytes) / v2_bytes : 0;
  report.snapshot_v2_rows = kRows;
  report.snapshot_v1_file_bytes = v1_bytes;
  report.snapshot_v2_file_bytes = v2_bytes;
  report.snapshot_v2_bytes_per_row = static_cast<double>(v2_bytes) / kRows;
  report.snapshot_v2_ratio = ratio;
  report.snapshot_v2_save_mrps = save_rate / 1e6;
  report.snapshot_v2_load_mrps = load_rate / 1e6;
  report.snapshot_v2_blocks =
      (kRows + corpus::kSnapshotBlockElements - 1) /
      corpus::kSnapshotBlockElements;
  report.snapshot_v2_blocks_skipped = blocks_skipped;

  const bool ratio_ok = ratio >= 3.0;
  const bool save_ok = save_rate >= 5e6;
  const bool load_ok = load_rate >= 1e7;
  // The compression, determinism and window-equality floors hold on any
  // host; the save/load throughput floors assume the parallel block codec
  // actually has cores to fan out over, so — like the sweep and pipeline
  // scaling guards — they turn advisory below 8 hardware threads.
  report.snapshot_v2_floor_enforced = report.hardware_threads >= 8;
  std::printf(
      "snapshot v2 guard (%zu rows): %zu -> %zu bytes = %.2fx smaller "
      "(floor 3x), %.1f B/row %s\n",
      kRows, static_cast<std::size_t>(v1_bytes),
      static_cast<std::size_t>(v2_bytes), ratio,
      report.snapshot_v2_bytes_per_row, ratio_ok ? "OK" : "FAILED");
  if (report.snapshot_v2_floor_enforced) {
    std::printf(
        "snapshot v2 guard: save %.1fM rows/s (floor 5M), lazy load %.1fM "
        "rows/s (floor 10M) %s\n",
        save_rate / 1e6, load_rate / 1e6,
        save_ok && load_ok ? "OK" : "FAILED");
  } else {
    std::printf(
        "snapshot v2 guard: save %.1fM rows/s, lazy load %.1fM rows/s "
        "(%u hardware threads < 8: 5M/10M floors not enforced)\n",
        save_rate / 1e6, load_rate / 1e6, report.hardware_threads);
  }
  std::printf(
      "snapshot v2 guard: bytes %s at 1 vs 8 threads, window read %s "
      "(%zu blocks skipped)\n",
      stable ? "identical" : "DIVERGED",
      window_ok ? "matches full slice" : "MISMATCH",
      static_cast<std::size_t>(blocks_skipped));
  if (!io_ok) std::printf("snapshot v2 guard: snapshot I/O FAILED\n");
  report.snapshot_v2_ok =
      io_ok && ratio_ok && stable && window_ok &&
      (!report.snapshot_v2_floor_enforced || (save_ok && load_ok));
  return report.snapshot_v2_ok;
}

// ---------------------------------------------------------------------------
// Fused-analysis guard: scent::analysis builds one aggregate table in a
// single pass and derives every report from it; the baseline is the sum of
// the five independent full scans that pass replaced. The pre-fusion scan
// bodies are kept verbatim below (like LegacyObservationStore above) because
// core::analyze_homogeneity and core::find_multi_as_iids are now thin
// wrappers over the fused engine and can no longer serve as their own
// baseline.

/// Eight announced /36es under 2001:16b8::/32, one AS each, so attribution,
/// per-AS medians, and the vendor census all see real multi-AS work.
routing::BgpTable make_analysis_bgp() {
  routing::BgpTable bgp;
  for (std::uint64_t k = 0; k < 8; ++k) {
    const net::Ipv6Address base{0x200116b800000000ULL | (k << 28), 0};
    bgp.announce({net::Prefix{base, 36},
                  static_cast<routing::Asn>(65001 + k),
                  k % 2 == 0 ? "DE" : "VN", "BenchNet"});
  }
  return bgp;
}

/// A campaign-shaped analysis corpus: 85% EUI-64 responses from a 64k-MAC
/// population (three OUIs), each device homed in one of the eight announced
/// ASes with a 3% roaming chance (multi-AS pathology fodder), rows spread
/// over 10 scan days, 15% privacy-addressed noise.
core::ObservationStore make_analysis_corpus(std::uint64_t seed,
                                            std::size_t rows) {
  constexpr std::uint64_t kOuis[] = {0x3810d5000000ULL, 0x50c7bf000000ULL,
                                     0xf4f26d000000ULL};
  sim::Rng rng{seed};
  core::ObservationStore store;
  for (std::size_t i = 0; i < rows; ++i) {
    const std::uint64_t slot = rng.below(1 << 14);
    core::Observation obs;
    obs.type = wire::Icmpv6Type::kEchoReply;
    obs.code = 0;
    obs.time = static_cast<sim::TimePoint>(rng.below(10)) * sim::kDay +
               static_cast<sim::TimePoint>(i);
    std::uint64_t as_pick;
    if (rng.chance(0.85)) {
      const std::uint64_t mac_index = rng.below(1 << 16);
      const net::MacAddress mac{kOuis[mac_index % 3] | mac_index};
      as_pick = rng.chance(0.03) ? rng.below(8) : (mac_index & 7);
      const std::uint64_t network =
          0x200116b800000000ULL | (as_pick << 28) | (slot << 8);
      obs.target = net::Ipv6Address{network, i};
      obs.response = net::Ipv6Address{network, net::mac_to_eui64(mac)};
    } else {
      as_pick = rng.below(8);
      const std::uint64_t network =
          0x200116b800000000ULL | (as_pick << 28) | (slot << 8);
      obs.target = net::Ipv6Address{network, i};
      obs.response =
          net::Ipv6Address{network, rng.next() | 0x0400000000000000ULL};
    }
    store.add(obs);
  }
  return store;
}

/// The pre-fusion analyze_homogeneity body, verbatim: its own full pass
/// over by_mac() with per-observation attribution.
std::vector<core::AsHomogeneity> legacy_homogeneity(
    const core::ObservationStore& store, const routing::BgpTable& bgp,
    const oui::Registry& registry, std::size_t min_iids) {
  struct AsAccumulator {
    std::string country;
    container::FlatMap<std::string,
                       container::FlatSet<net::MacAddress, net::MacAddressHash>>
        vendor_macs;
    container::FlatSet<net::MacAddress, net::MacAddressHash> all_macs;
  };
  container::FlatMap<routing::Asn, AsAccumulator> per_as;
  routing::AttributionCache attributions;

  for (const auto& [mac, index_list] : store.by_mac()) {
    container::FlatSet<routing::Asn> seen_as;
    for (const std::uint32_t i : store.indices(index_list)) {
      const auto* ad = bgp.attribute(store.response(i), attributions);
      if (ad == nullptr) continue;
      if (!seen_as.insert(ad->origin_asn).second) continue;
      AsAccumulator& acc = per_as[ad->origin_asn];
      acc.country = ad->country;
      const auto vendor = registry.vendor(mac);
      acc.vendor_macs[vendor ? std::string{*vendor} : "(unknown)"].insert(mac);
      acc.all_macs.insert(mac);
    }
  }

  std::vector<core::AsHomogeneity> out;
  out.reserve(per_as.size());
  for (auto& [asn, acc] : per_as) {
    if (acc.all_macs.size() < min_iids) continue;
    core::AsHomogeneity h;
    h.asn = asn;
    h.country = acc.country;
    h.unique_iids = acc.all_macs.size();
    h.vendors.reserve(acc.vendor_macs.size());
    for (const auto& [vendor, macs] : acc.vendor_macs) {
      h.vendors.push_back(core::VendorCount{vendor, macs.size()});
    }
    std::sort(h.vendors.begin(), h.vendors.end(),
              [](const core::VendorCount& a, const core::VendorCount& b) {
                if (a.unique_iids != b.unique_iids) {
                  return a.unique_iids > b.unique_iids;
                }
                return a.vendor < b.vendor;
              });
    out.push_back(std::move(h));
  }
  std::sort(out.begin(), out.end(),
            [](const core::AsHomogeneity& a, const core::AsHomogeneity& b) {
              return a.asn < b.asn;
            });
  return out;
}

/// The pre-fusion find_multi_as_iids body, verbatim: per-MAC std::set
/// prefilter plus a second presence pass with std::map-of-std::set days.
std::vector<core::MultiAsIid> legacy_multi_as_iids(
    const core::ObservationStore& store, const routing::BgpTable& bgp,
    const core::PathologyOptions& options) {
  const auto is_default_mac = [](net::MacAddress mac) noexcept {
    return mac.bits() == 0 || mac.bits() == 0xffffffffffffULL;
  };
  std::vector<core::MultiAsIid> out;
  routing::AttributionCache attributions;
  for (const auto& [mac, index_list] : store.by_mac()) {
    std::set<routing::Asn> asns;
    for (const std::uint32_t i : store.indices(index_list)) {
      const auto* ad = bgp.attribute(store.response(i), attributions);
      if (ad != nullptr) asns.insert(ad->origin_asn);
    }
    if (asns.size() < 2) continue;

    core::MultiAsIid entry;
    entry.mac = mac;
    entry.asns.assign(asns.begin(), asns.end());

    core::DailyAsPresence presence;
    for (const std::uint32_t i : store.indices(index_list)) {
      const auto* ad = bgp.attribute(store.response(i), attributions);
      if (ad == nullptr) continue;
      presence.days[sim::day_of(store.time(i))].insert(ad->origin_asn);
    }
    for (const auto& [day, day_asns] : presence.days) {
      if (day_asns.size() >= 2) ++entry.concurrent_days;
    }

    if (is_default_mac(mac)) {
      entry.kind = core::PathologyKind::kDefaultMac;
    } else if (entry.concurrent_days >= options.min_concurrent_days) {
      entry.kind = core::PathologyKind::kConcurrentReuse;
    } else if (asns.size() == 2 && entry.concurrent_days == 0) {
      const routing::Asn a = entry.asns[0];
      const routing::Asn b = entry.asns[1];
      std::int64_t last_a = INT64_MIN, first_a = INT64_MAX;
      std::int64_t last_b = INT64_MIN, first_b = INT64_MAX;
      for (const auto& [day, day_asns] : presence.days) {
        if (day_asns.contains(a)) {
          last_a = std::max(last_a, day);
          first_a = std::min(first_a, day);
        }
        if (day_asns.contains(b)) {
          last_b = std::max(last_b, day);
          first_b = std::min(first_b, day);
        }
      }
      if (last_a < first_b) {
        entry.kind = core::PathologyKind::kProviderSwitch;
        entry.switch_from = a;
        entry.switch_to = b;
        entry.switch_day = first_b;
      } else if (last_b < first_a) {
        entry.kind = core::PathologyKind::kProviderSwitch;
        entry.switch_from = b;
        entry.switch_to = a;
        entry.switch_day = first_a;
      } else {
        entry.kind = core::PathologyKind::kMultiAsOther;
      }
    } else {
      entry.kind = core::PathologyKind::kMultiAsOther;
    }
    out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end(),
            [](const core::MultiAsIid& a, const core::MultiAsIid& b) {
              return a.mac < b.mac;
            });
  return out;
}

/// Everything the five legacy scans (or the one fused pass) produce; the
/// guard asserts the two sides are identical field by field.
struct AnalysisReports {
  std::optional<unsigned> alloc_median;
  std::optional<unsigned> pool_median;
  container::FlatMap<routing::Asn, unsigned> alloc_by_as;
  std::vector<core::AsHomogeneity> census;
  std::vector<core::MultiAsIid> pathologies;
};

bool same_analysis_reports(const AnalysisReports& a,
                           const AnalysisReports& b) {
  if (a.alloc_median != b.alloc_median) return false;
  if (a.pool_median != b.pool_median) return false;
  if (!(a.alloc_by_as == b.alloc_by_as)) return false;
  if (a.census.size() != b.census.size()) return false;
  for (std::size_t i = 0; i < a.census.size(); ++i) {
    const auto& x = a.census[i];
    const auto& y = b.census[i];
    if (x.asn != y.asn || x.country != y.country ||
        x.unique_iids != y.unique_iids ||
        x.vendors.size() != y.vendors.size()) {
      return false;
    }
    for (std::size_t v = 0; v < x.vendors.size(); ++v) {
      if (x.vendors[v].vendor != y.vendors[v].vendor ||
          x.vendors[v].unique_iids != y.vendors[v].unique_iids) {
        return false;
      }
    }
  }
  if (a.pathologies.size() != b.pathologies.size()) return false;
  for (std::size_t i = 0; i < a.pathologies.size(); ++i) {
    const auto& x = a.pathologies[i];
    const auto& y = b.pathologies[i];
    if (x.mac != y.mac || x.kind != y.kind || x.asns != y.asns ||
        x.concurrent_days != y.concurrent_days ||
        x.switch_from != y.switch_from || x.switch_to != y.switch_to ||
        x.switch_day != y.switch_day) {
      return false;
    }
  }
  return true;
}

/// The five pre-fusion scans, timed individually; their sum is the guard's
/// baseline.
AnalysisReports run_legacy_analysis(const core::ObservationStore& store,
                                    const routing::BgpTable& bgp,
                                    const oui::Registry& registry,
                                    std::array<double, 5>& seconds) {
  AnalysisReports reports;

  auto start = std::chrono::steady_clock::now();
  core::AllocationSizeInference alloc;
  alloc.observe_all(store);
  reports.alloc_median = alloc.median_length();
  seconds[0] = seconds_since(start);

  start = std::chrono::steady_clock::now();
  core::RotationPoolInference pools;
  pools.observe_all(store);
  reports.pool_median = pools.median_length();
  seconds[1] = seconds_since(start);

  start = std::chrono::steady_clock::now();
  std::map<routing::Asn, core::AllocationSizeInference> per_as_alloc;
  routing::AttributionCache attributions;
  for (std::size_t i = 0; i < store.size(); ++i) {
    const auto* ad = bgp.attribute(store.response(i), attributions);
    if (ad == nullptr) continue;
    per_as_alloc[ad->origin_asn].observe(store.target(i), store.response(i));
  }
  for (const auto& [asn, inference] : per_as_alloc) {
    if (const auto median = inference.median_length()) {
      reports.alloc_by_as[asn] = *median;
    }
  }
  seconds[2] = seconds_since(start);

  start = std::chrono::steady_clock::now();
  reports.census = legacy_homogeneity(store, bgp, registry, /*min_iids=*/100);
  seconds[3] = seconds_since(start);

  start = std::chrono::steady_clock::now();
  reports.pathologies = legacy_multi_as_iids(store, bgp, {});
  seconds[4] = seconds_since(start);

  return reports;
}

/// One fused pass at one thread, then every report derived from the table.
AnalysisReports run_fused_analysis(const core::ObservationStore& store,
                                   const routing::BgpTable& bgp,
                                   const oui::Registry& registry,
                                   double& seconds, BenchReport& report) {
  const auto start = std::chrono::steady_clock::now();
  analysis::AnalysisOptions options;
  options.threads = 1;
  options.collect_sightings = false;
  const analysis::AggregateTable table = analysis::analyze(store, &bgp,
                                                           options);
  AnalysisReports reports;
  reports.alloc_median = analysis::allocation_median(table);
  reports.pool_median = analysis::pool_median(table);
  reports.alloc_by_as = analysis::allocation_medians_by_as(table);
  reports.census = analysis::homogeneity(table, registry, /*min_iids=*/100);
  reports.pathologies = analysis::multi_as_iids(table, {});
  seconds = seconds_since(start);
  report.analysis_devices = table.devices.size();
  report.analysis_ases = table.as_rollups.size();
  return reports;
}

/// Enforces this PR's tentpole floor: the fused single-pass engine beats
/// the summed legacy scans >= 3x at one thread, reports bit-identical.
/// Single-threaded on both sides, so the floor is enforced on any host.
bool check_analysis_guard(BenchReport& report) {
  constexpr std::size_t kRows = 1 << 20;
  const core::ObservationStore store = make_analysis_corpus(0xA11, kRows);
  const routing::BgpTable bgp = make_analysis_bgp();
  const oui::Registry& registry = oui::builtin_registry();

  std::array<double, 5> legacy_s{};
  std::array<double, 5> best_legacy_s;
  best_legacy_s.fill(1e30);
  double fused_s = 0;
  double best_fused_s = 1e30;
  {
    // Warm-up, discarded.
    run_fused_analysis(store, bgp, registry, fused_s, report);
  }
  bool equal = true;
  for (int trial = 0; trial < 3; ++trial) {  // interleaved best-of-3
    const auto legacy = run_legacy_analysis(store, bgp, registry, legacy_s);
    const auto fused = run_fused_analysis(store, bgp, registry, fused_s,
                                          report);
    for (std::size_t i = 0; i < legacy_s.size(); ++i) {
      best_legacy_s[i] = std::min(best_legacy_s[i], legacy_s[i]);
    }
    best_fused_s = std::min(best_fused_s, fused_s);
    equal = equal && same_analysis_reports(legacy, fused);
  }

  double legacy_total_s = 0;
  for (const double s : best_legacy_s) legacy_total_s += s;
  const double speedup = legacy_total_s / best_fused_s;

  report.analysis_rows = kRows;
  report.analysis_alloc_ms = best_legacy_s[0] * 1e3;
  report.analysis_pool_ms = best_legacy_s[1] * 1e3;
  report.analysis_per_as_ms = best_legacy_s[2] * 1e3;
  report.analysis_homogeneity_ms = best_legacy_s[3] * 1e3;
  report.analysis_pathology_ms = best_legacy_s[4] * 1e3;
  report.analysis_legacy_total_ms = legacy_total_s * 1e3;
  report.analysis_fused_ms = best_fused_s * 1e3;
  report.analysis_speedup = speedup;
  report.analysis_reports_equal = equal;

  const bool fast_enough = speedup >= 3.0;
  std::printf(
      "analysis guard (%zu rows -> %zu devices, %zu ASes): legacy scans "
      "%.1f+%.1f+%.1f+%.1f+%.1f = %.1fms vs fused %.1fms = %.2fx (floor 3x, "
      "reports %s) %s\n",
      kRows, report.analysis_devices, report.analysis_ases,
      report.analysis_alloc_ms, report.analysis_pool_ms,
      report.analysis_per_as_ms, report.analysis_homogeneity_ms,
      report.analysis_pathology_ms, report.analysis_legacy_total_ms,
      report.analysis_fused_ms, speedup, equal ? "equal" : "DIVERGED",
      fast_enough && equal ? "OK" : "FAILED");
  report.analysis_ok = fast_enough && equal;
  return report.analysis_ok;
}

// ---------------------------------------------------------------------------
// Serve guard (DESIGN.md §5k): applying one day's increment into a
// maintained ServeTable must beat a full fused rebuild of the whole corpus
// by >= 10x and leave a field-for-field identical table, and reader threads
// must sustain derive queries while deltas keep landing.

/// One campaign day for the serve corpus: 85% EUI-64 responses from an
/// 8k-MAC population homed across the eight announced ASes (2% roaming),
/// /64 slots shifted per day, 15% privacy-addressed noise.
void append_serve_day(core::ObservationStore& store, std::uint64_t day,
                      std::size_t rows) {
  sim::Rng rng{0x5E12 * 0x9E3779B97F4A7C15ULL + day};
  for (std::size_t i = 0; i < rows; ++i) {
    const std::uint64_t slot = (rng.below(1 << 12) + day * 389) & 0x3fff;
    core::Observation obs;
    obs.type = wire::Icmpv6Type::kEchoReply;
    obs.code = 0;
    obs.time = static_cast<sim::TimePoint>(day) * sim::kDay +
               static_cast<sim::TimePoint>(i);
    if (rng.chance(0.85)) {
      const std::uint64_t mac_index = rng.below(1 << 12);
      const net::MacAddress mac{0x3810d5000000ULL | mac_index};
      const std::uint64_t as_pick =
          rng.chance(0.02) ? rng.below(8) : (mac_index & 7);
      const std::uint64_t network =
          0x200116b800000000ULL | (as_pick << 28) | (slot << 8);
      obs.target = net::Ipv6Address{network, i};
      obs.response = net::Ipv6Address{network, net::mac_to_eui64(mac)};
    } else {
      const std::uint64_t network =
          0x200116b800000000ULL | (rng.below(8) << 28) | (slot << 8);
      obs.target = net::Ipv6Address{network, i};
      obs.response =
          net::Ipv6Address{network, rng.next() | 0x0400000000000000ULL};
    }
    store.add(obs);
  }
}

/// Field-for-field equality of the fields a delta-apply maintains (the
/// full matrix lives in tests/serve; this is the guard's cheap re-check).
bool same_serve_tables(const analysis::AggregateTable& a,
                       const analysis::AggregateTable& b) {
  if (a.rows_scanned != b.rows_scanned || a.eui_rows != b.eui_rows ||
      a.devices.size() != b.devices.size() ||
      a.as_rollups.size() != b.as_rollups.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.devices.size(); ++i) {
    const auto& [mac_a, dev_a] = a.devices.begin()[i];
    const auto& [mac_b, dev_b] = b.devices.begin()[i];
    if (mac_a != mac_b || dev_a.observations != dev_b.observations ||
        dev_a.day_bits != dev_b.day_bits ||
        dev_a.first_day != dev_b.first_day ||
        dev_a.last_day != dev_b.last_day ||
        dev_a.target_lo != dev_b.target_lo ||
        dev_a.target_hi != dev_b.target_hi ||
        dev_a.response_lo != dev_b.response_lo ||
        dev_a.response_hi != dev_b.response_hi ||
        dev_a.per_as.size() != dev_b.per_as.size() ||
        dev_a.sightings.size() != dev_b.sightings.size()) {
      return false;
    }
    for (std::size_t k = 0; k < dev_a.per_as.size(); ++k) {
      if (dev_a.per_as[k].asn != dev_b.per_as[k].asn ||
          dev_a.per_as[k].observations != dev_b.per_as[k].observations ||
          !(dev_a.per_as[k].days == dev_b.per_as[k].days)) {
        return false;
      }
    }
  }
  for (std::size_t i = 0; i < a.as_rollups.size(); ++i) {
    if (a.as_rollups[i].asn != b.as_rollups[i].asn ||
        a.as_rollups[i].observations != b.as_rollups[i].observations ||
        a.as_rollups[i].devices != b.as_rollups[i].devices) {
      return false;
    }
  }
  return true;
}

bool check_serve_guard(BenchReport& report) {
  constexpr unsigned kDays = 30;
  constexpr std::size_t kRowsPerDay = std::size_t{1} << 16;  // ~2M rows total
  const routing::BgpTable bgp = make_analysis_bgp();

  core::ObservationStore store;
  std::vector<std::size_t> day_begin;
  for (unsigned day = 0; day < kDays; ++day) {
    day_begin.push_back(store.size());
    append_serve_day(store, day, kRowsPerDay);
  }
  const std::size_t split = day_begin.back();  // last day's first row
  const std::size_t total = store.size();

  serve::ServeOptions options;
  options.bgp = &bgp;
  options.threads = 1;  // serial both sides: enforceable on any host
  // Publishing a version copies the maintained table; with per-observation
  // sighting logs on, that copy is O(total sightings) and swamps the
  // one-day scan this guard times. Serve deployments that want sighting
  // history keep it (tests/serve proves its delta equality); the guard
  // measures the medians-serving configuration, like the analysis guard.
  options.collect_sightings = false;

  // Full rebuild baseline: a fresh table's bootstrap apply over the whole
  // corpus — version 1 IS a full fused scan through the delta code path.
  double rebuild_s = 1e30;
  std::shared_ptr<const serve::TableVersion> rebuilt;
  for (int trial = 0; trial < 3; ++trial) {  // best-of-3
    serve::ServeTable fresh{options};
    const auto start = std::chrono::steady_clock::now();
    fresh.apply(analysis::StoreInput{store, 0, total}, kDays - 1);
    rebuild_s = std::min(rebuild_s, seconds_since(start));
    rebuilt = fresh.current();
  }

  // Delta apply: bootstrap the first 29 days as day-sized deltas (untimed;
  // the campaign shape — publishing chains prev_window from the previous
  // day's window, so the base must carry one-day windows, not one spanning
  // the whole bootstrap), then time the one-day increment — scan, merge,
  // materialize, publish.
  double delta_s = 1e30;
  std::shared_ptr<const serve::TableVersion> maintained;
  for (int trial = 0; trial < 3; ++trial) {  // best-of-3, fresh base each
    serve::ServeTable table{options};
    for (unsigned day = 0; day + 1 < kDays; ++day) {
      table.apply(analysis::StoreInput{store, day_begin[day],
                                       day_begin[day] + kRowsPerDay},
                  day);
    }
    const auto start = std::chrono::steady_clock::now();
    table.apply(analysis::StoreInput{store, split, total}, kDays - 1);
    delta_s = std::min(delta_s, seconds_since(start));
    maintained = table.current();
  }

  const bool equal = rebuilt != nullptr && maintained != nullptr &&
                     same_serve_tables(rebuilt->table, maintained->table);
  const double speedup = rebuild_s / delta_s;

  // Sustained queries under concurrent ingest: 4 reader threads pin the
  // current version and run a derive report per pin while the writer keeps
  // landing one-day deltas.
  serve::ServeTable live{options};
  for (unsigned day = 0; day + 1 < kDays; ++day) {
    live.apply(analysis::StoreInput{store, day_begin[day],
                                    day_begin[day] + kRowsPerDay},
               day);
  }
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> queries{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&live, &done, &queries] {
      std::uint64_t count = 0;
      while (!done.load(std::memory_order_acquire)) {
        const auto version = live.current();
        if (version == nullptr) continue;
        benchmark::DoNotOptimize(analysis::pool_median(*version));
        ++count;
      }
      queries.fetch_add(count, std::memory_order_relaxed);
    });
  }
  constexpr unsigned kLiveDays = 8;
  const auto live_start = std::chrono::steady_clock::now();
  core::ObservationStore live_extra;
  for (unsigned extra = 0; extra < kLiveDays; ++extra) {
    const std::size_t begin = live_extra.size();
    append_serve_day(live_extra, kDays + extra, kRowsPerDay);
    live.apply(analysis::StoreInput{live_extra, begin, live_extra.size()},
               kDays - 1 + extra);
  }
  const double live_s = seconds_since(live_start);
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  const double queries_per_s = static_cast<double>(queries.load()) / live_s;

  report.serve_days = kDays;
  report.serve_rows = total;
  report.serve_devices =
      maintained != nullptr ? maintained->table.devices.size() : 0;
  report.serve_rebuild_ms = rebuild_s * 1e3;
  report.serve_delta_apply_ms = delta_s * 1e3;
  report.serve_delta_speedup = speedup;
  report.serve_queries_per_s = queries_per_s;
  report.serve_versions_published = live.versions_published();
  report.serve_equal = equal;

  const bool fast_enough = speedup >= 10.0;
  std::printf(
      "serve guard (%u days x %zu rows -> %zu devices): rebuild %.1fms vs "
      "delta apply %.1fms = %.1fx (floor 10x, tables %s) %s\n",
      kDays, kRowsPerDay, report.serve_devices, rebuild_s * 1e3, delta_s * 1e3,
      speedup, equal ? "equal" : "DIVERGED",
      fast_enough && equal ? "OK" : "FAILED");
  std::printf(
      "serve guard: %.3gk queries/s across 4 readers while %u one-day "
      "deltas landed (%.2fs, %zu versions served)\n",
      queries_per_s / 1e3, kLiveDays, live_s,
      report.serve_versions_published);
  report.serve_ok = fast_enough && equal;
  return report.serve_ok;
}

// ---------------------------------------------------------------------------
// Telemetry and sweep-scaling guards (pre-existing budgets).

/// Measures one prober's fast-path throughput (probes/sec) over a fixed
/// batch. The caller owns the world and the prober: both guard arms must
/// probe the SAME simulated state, because two independently constructed
/// worlds differ in heap layout by enough to swing per-probe time several
/// percent — more than the effect the guard exists to measure.
double probe_loop_rate(probe::Prober& prober, const sim::RotationPool& pool,
                       std::uint64_t batch) {
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < batch; ++i) {
    const auto target = probe::target_in(
        pool.config().prefix.subnet(56, net::Uint128{i & 1023}), 3);
    benchmark::DoNotOptimize(prober.probe_one(target));
  }
  return static_cast<double>(batch) / seconds_since(start);
}

/// Guards the telemetry hot-path budget: attaching a registry must cost
/// <5% of fast-path sweep throughput. Two probers — one plain, one with a
/// registry attached — walk the same world, and the overhead is the
/// median of per-trial paired ratios with the arm order alternating
/// between trials. Each layer strips one source of fake overhead that a
/// ratio of independent single-shot runs (or of each arm's best) suffers
/// on a shared host: the shared world removes allocation-layout skew
/// between the arms, pairing cancels frequency/thermal drift across the
/// guard run, alternation cancels within-pair drift, and the median
/// discards the pairs a scheduler hiccup still splits.
bool check_telemetry_overhead(BenchReport& report) {
  constexpr std::uint64_t kBatch = 1600000;
  constexpr int kTrials = 9;
  sim::PaperWorld world = sim::make_tiny_world(5, 512);
  sim::VirtualClock clock{sim::hours(12)};
  probe::ProberOptions options;
  options.wire_mode = false;
  options.packets_per_second = 0;
  probe::Prober plain_prober{world.internet, clock, options};
  probe::Prober telemetry_prober{world.internet, clock, options};
  telemetry::Registry registry;
  registry.set_clock(&clock);
  telemetry_prober.attach_telemetry(registry);
  const auto& pool = world.internet.provider(world.versatel).pools()[0];

  probe_loop_rate(plain_prober, pool, kBatch / 4);  // warm-up, discarded
  probe_loop_rate(telemetry_prober, pool, kBatch / 4);
  double best_plain = 0;
  double best_telemetry = 0;
  std::vector<double> overheads;
  overheads.reserve(kTrials);
  for (int t = 0; t < kTrials; ++t) {
    double plain = 0;
    double telemetry = 0;
    if (t % 2 == 0) {
      plain = probe_loop_rate(plain_prober, pool, kBatch);
      telemetry = probe_loop_rate(telemetry_prober, pool, kBatch);
    } else {
      telemetry = probe_loop_rate(telemetry_prober, pool, kBatch);
      plain = probe_loop_rate(plain_prober, pool, kBatch);
    }
    best_plain = std::max(best_plain, plain);
    best_telemetry = std::max(best_telemetry, telemetry);
    overheads.push_back(plain / telemetry - 1.0);
  }
  std::nth_element(overheads.begin(), overheads.begin() + kTrials / 2,
                   overheads.end());
  const double overhead = overheads[kTrials / 2];
  const bool ok = overhead < 0.05;
  std::printf("telemetry overhead guard: plain=%.3gM/s telemetry=%.3gM/s "
              "overhead=%.2f%% (budget 5%%) %s\n",
              best_plain / 1e6, best_telemetry / 1e6, overhead * 100,
              ok ? "OK" : "FAILED");
  report.telemetry_plain_mops = best_plain / 1e6;
  report.telemetry_attached_mops = best_telemetry / 1e6;
  report.telemetry_overhead_pct = overhead * 100;
  report.telemetry_ok = ok;
  return ok;
}

// Trace-overhead guard: the flight-recorder/sketch sample wrapped around
// every columnar ingest batch (core/sweep_ingest.cpp's on_results) must be
// invisible when tracing is off and near-free when it is on.

/// Best-of-N cost of one ScopedSample against the given (possibly null)
/// sinks, in nanoseconds. DoNotOptimize keeps the pointers opaque so the
/// null case measures the real runtime branches, not a folded-away loop.
double scoped_sample_cost_ns(trace::TraceRecorder* recorder,
                             trace::QuantileSketch* sketch) {
  constexpr int kIters = 1 << 20;
  constexpr int kTrials = 5;
  double best = 1e18;
  for (int t = 0; t < kTrials; ++t) {
    benchmark::DoNotOptimize(recorder);
    benchmark::DoNotOptimize(sketch);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
      const trace::ScopedSample sample{recorder, sketch, "ingest.batch"};
      benchmark::DoNotOptimize(i);
    }
    best = std::min(best, seconds_since(start) * 1e9 / kIters);
  }
  return best;
}

/// Guards the tracing budgets on the columnar ingest hot path. The cost of
/// one instrumentation sample is measured directly (a tight 1M-iteration
/// loop is stable to fractions of a nanosecond even on a noisy host) and
/// expressed as a fraction of one measured 256-row ingest batch — the
/// engine's callback grain on the 1M-row path. Differential wall-clock A/B
/// at full ingest scale cannot resolve a <1% effect under multi-percent
/// scheduler jitter; this ratio can. Floors: idle (null recorder and
/// sketch — two predicted branches) < 1% of a batch, live tracing (four
/// clock reads, two ring writes, one sketch observe) < 5%.
bool check_trace_overhead(BenchReport& report) {
  constexpr std::size_t kRows = std::size_t{1} << 20;
  constexpr std::size_t kBatchRows = 256;
  const auto stream = make_ingest_stream(0x7A3, kRows);

  // Median-of-3 batched ingest passes -> ns per 256-row batch.
  std::array<double, 3> times{};
  for (double& t : times) {
    core::ObservationStore store;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < stream.size(); i += kBatchRows) {
      store.add_all(std::span<const core::Observation>{
          stream.data() + i, std::min(kBatchRows, stream.size() - i)});
    }
    t = seconds_since(start);
    benchmark::DoNotOptimize(store.unique_responses());
  }
  std::sort(times.begin(), times.end());
  const double batch_ns =
      times[1] * 1e9 / static_cast<double>(stream.size() / kBatchRows);

  trace::TraceRecorder recorder{1 << 14};
  trace::QuantileSketch sketch;
  const double idle_ns = scoped_sample_cost_ns(nullptr, nullptr);
  const double enabled_ns = scoped_sample_cost_ns(&recorder, &sketch);
  benchmark::DoNotOptimize(recorder.size());
  benchmark::DoNotOptimize(sketch.count());

  const double idle_overhead = idle_ns / batch_ns;
  const double enabled_overhead = enabled_ns / batch_ns;
  const bool ok = idle_overhead < 0.01 && enabled_overhead < 0.05;
  std::printf(
      "trace overhead guard (%zu rows, %zu-row batches): batch=%.0fns "
      "idle sample=%.2fns (%.3f%%, budget 1%%) enabled sample=%.1fns "
      "(%.3f%%, budget 5%%) %s\n",
      kRows, kBatchRows, batch_ns, idle_ns, idle_overhead * 100, enabled_ns,
      enabled_overhead * 100, ok ? "OK" : "FAILED");
  report.trace_rows = kRows;
  report.trace_batch_ns = batch_ns;
  report.trace_idle_sample_ns = idle_ns;
  report.trace_enabled_sample_ns = enabled_ns;
  report.trace_idle_overhead_pct = idle_overhead * 100;
  report.trace_enabled_overhead_pct = enabled_overhead * 100;
  report.trace_ok = ok;
  return ok;
}

/// One sharded sweep of ~1M probes; returns wall seconds and the corpus
/// size (which must not vary with the thread count).
std::pair<double, std::size_t> sharded_sweep_run(sim::Internet& internet,
                                                 unsigned threads) {
  const auto& pool = internet.provider(0).pools()[0];
  std::vector<engine::SweepUnit> units;
  constexpr std::size_t kUnits = 256;  // x 4096 probes each (/48 at /60)
  units.reserve(kUnits);
  for (std::uint64_t i = 0; i < kUnits; ++i) {
    const net::Prefix p48{
        pool.config().prefix.subnet(48, net::Uint128{i % 4}).base(), 48};
    units.push_back({p48, 60, 0xBE7C + i});
  }

  probe::ProberOptions options;
  options.wire_mode = false;
  options.packets_per_second = 2000000;
  engine::SweepOptions sweep_options;
  sweep_options.threads = threads;

  sim::VirtualClock clock{sim::hours(12)};
  core::ObservationStore store;
  const auto start = std::chrono::steady_clock::now();
  core::sweep_into_store(internet, clock, units, options, sweep_options,
                         store);
  return {seconds_since(start), store.size()};
}

/// Sweep scaling across worker shards: wall-clock throughput must rise
/// with the thread count while the corpus stays bit-identical (spot-checked
/// here by size; the engine test suite proves it field-by-field). On hosts
/// with >= 8 cores the 8-thread sweep must beat serial by >= 3x; on smaller
/// hosts the table is reported but not enforced (there is nothing to
/// parallelize onto).
bool check_sweep_scaling(BenchReport& report) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  sim::PaperWorld world = sim::make_tiny_world(9, 512);

  sharded_sweep_run(world.internet, 1);  // warm-up, discarded
  const auto [serial_s, serial_size] = sharded_sweep_run(world.internet, 1);
  report.sweep_probes = std::size_t{256} * 4096;
  report.sweep_serial_mops = 256 * 4096 / serial_s / 1e6;
  std::printf("sweep scaling (%zu probes, %u hardware threads):\n",
              report.sweep_probes, hw);
  std::printf("  threads 1: %6.3fs  %.3gM probes/s  (serial baseline)\n",
              serial_s, report.sweep_serial_mops);

  bool ok = true;
  double speedup_at_8 = 0;
  for (unsigned threads = 2; threads <= std::max(8u, hw); threads *= 2) {
    const auto [s, size] = sharded_sweep_run(world.internet, threads);
    const double speedup = serial_s / s;
    if (threads == 8) speedup_at_8 = speedup;
    report.sweep_speedups.emplace_back(threads, speedup);
    std::printf("  threads %u: %6.3fs  %.3gM probes/s  speedup %.2fx%s\n",
                threads, s, 256 * 4096 / s / 1e6, speedup,
                size == serial_size ? "" : "  CORPUS MISMATCH");
    ok = ok && size == serial_size;
  }
  report.sweep_speedup_at_8 = speedup_at_8;
  report.sweep_floor_enforced = hw >= 8;
  if (hw >= 8) {
    const bool fast_enough = speedup_at_8 >= 3.0;
    std::printf("  8-thread speedup %.2fx (floor 3x) %s\n", speedup_at_8,
                fast_enough ? "OK" : "FAILED");
    ok = ok && fast_enough;
  } else {
    std::printf("  (%u hardware threads < 8: 3x floor not enforced)\n", hw);
  }
  report.sweep_ok = ok;
  return ok;
}

/// One full campaign-day's worth of work — sweep, snapshot append, per-day
/// MAC accounting and fused analysis — through the chosen scheduler.
/// Returns wall seconds plus the output fingerprints the equality check
/// compares across schedulers.
struct PipelineDayRun {
  double seconds = 0;
  std::size_t rows = 0;
  std::uint64_t snapshot_bytes = 0;
  std::size_t macs = 0;
  std::size_t devices = 0;
};

PipelineDayRun pipeline_day_run(sim::Internet& internet, unsigned threads,
                                bool pipelined) {
  const auto& pool = internet.provider(0).pools()[0];
  std::vector<engine::SweepUnit> units;
  constexpr std::size_t kUnits = 256;  // x 4096 probes each (/48 at /60)
  units.reserve(kUnits);
  for (std::uint64_t i = 0; i < kUnits; ++i) {
    const net::Prefix p48{
        pool.config().prefix.subnet(48, net::Uint128{i % 4}).base(), 48};
    units.push_back({p48, 60, 0xBE7C + i});
  }

  probe::ProberOptions options;
  options.wire_mode = false;
  options.packets_per_second = 2000000;
  engine::SweepOptions sweep_options;
  sweep_options.threads = threads;
  sweep_options.pipeline = pipelined;

  sim::VirtualClock clock{sim::hours(12)};
  core::ObservationStore store;
  corpus::SnapshotWriter writer;
  container::FlatSet<net::MacAddress, net::MacAddressHash> macs;
  core::SweepAnalysis analysis;
  analysis.bgp = &internet.bgp();
  core::SweepFanout fanout;
  fanout.snapshot = &writer;
  fanout.analysis = &analysis;
  fanout.macs = &macs;

  const auto start = std::chrono::steady_clock::now();
  core::sweep_into_store(internet, clock, units, options, sweep_options,
                         store, fanout);
  return {seconds_since(start), store.size(), writer.encoded_size(),
          macs.size(), analysis.table.devices.size()};
}

/// Pipeline scaling: the streamed scheduler (DESIGN.md §5i) must beat the
/// serial day by >= 3x at 8 threads AND the barrier-mode parallel day by
/// >= 1.3x at the same thread count, because snapshot/MAC drains overlap
/// the probing and the fused analysis rides inside the probe shards
/// instead of running as a post-merge pass. On < 8-core hosts the numbers
/// are reported but the floors are not enforced. The output fingerprints
/// (row count, snapshot bytes, MAC set, device table) must be identical
/// across all three runs on every host — that part is always enforced.
bool check_pipeline_scaling(BenchReport& report) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  sim::PaperWorld world = sim::make_tiny_world(9, 512);

  pipeline_day_run(world.internet, 1, false);  // warm-up, discarded
  const PipelineDayRun serial = pipeline_day_run(world.internet, 1, false);
  const PipelineDayRun barrier8 = pipeline_day_run(world.internet, 8, false);
  const PipelineDayRun piped8 = pipeline_day_run(world.internet, 8, true);

  const auto same = [&](const PipelineDayRun& a) {
    return a.rows == serial.rows && a.snapshot_bytes == serial.snapshot_bytes &&
           a.macs == serial.macs && a.devices == serial.devices;
  };
  const bool outputs_equal = same(barrier8) && same(piped8);
  const double vs_serial = serial.seconds / piped8.seconds;
  const double vs_barrier = barrier8.seconds / piped8.seconds;

  report.pipeline_probes = std::size_t{256} * 4096;
  report.pipeline_serial_s = serial.seconds;
  report.pipeline_barrier8_s = barrier8.seconds;
  report.pipeline_pipelined8_s = piped8.seconds;
  report.pipeline_speedup_vs_serial = vs_serial;
  report.pipeline_speedup_vs_barrier = vs_barrier;
  report.pipeline_outputs_equal = outputs_equal;
  report.pipeline_floor_enforced = hw >= 8;

  std::printf(
      "pipeline scaling (full day: sweep+snapshot+macs+analysis, %zu probes, "
      "%u hardware threads):\n"
      "  serial barrier   : %6.3fs\n"
      "  barrier, 8 thr   : %6.3fs\n"
      "  pipelined, 8 thr : %6.3fs  (%.2fx vs serial, %.2fx vs barrier)\n"
      "  outputs: %zu rows, %llu snapshot bytes, %zu macs, %zu devices %s\n",
      report.pipeline_probes, hw, serial.seconds, barrier8.seconds,
      piped8.seconds, vs_serial, vs_barrier, serial.rows,
      static_cast<unsigned long long>(serial.snapshot_bytes), serial.macs,
      serial.devices, outputs_equal ? "(identical)" : "MISMATCH");

  bool ok = outputs_equal;
  if (hw >= 8) {
    const bool fast_enough = vs_serial >= 3.0 && vs_barrier >= 1.3;
    std::printf("  floors: >= 3x vs serial and >= 1.3x vs barrier-8 %s\n",
                fast_enough ? "OK" : "FAILED");
    ok = ok && fast_enough;
  } else {
    std::printf("  (%u hardware threads < 8: pipeline floors not enforced)\n",
                hw);
  }
  report.pipeline_ok = ok;
  return ok;
}

// ---------------------------------------------------------------------------
// Join scaling guard (DESIGN.md §5l): the partitioned out-of-core merge-join
// must (a) emit exactly the naive hash-join oracle's table, byte for byte,
// at every thread count, (b) show the block-stat pruning counters actually
// skipping the feed's MAC-disjoint blocks, (c) clear an absolute serial
// Mrows/s floor, and (d) on >= 8-core hosts, speed up >= 3x at 8 threads.
// SCENT_JOIN_HUGE=1 additionally runs the 100M-row-per-side configuration
// and asserts peak heap is bounded by partition size, not input size.

struct JoinFixture {
  std::vector<std::string> day_paths;
  std::string feed_path;
  std::size_t corpus_rows = 0;
  std::size_t geo_rows = 0;
};

constexpr std::uint64_t kJoinFleetOui = 0x3810d5;  // matches the corpus MACs
constexpr std::uint64_t kJoinAlienOui = 0xf4f200;  // + k: feed-only bands

/// Writes a `days`-day rotation corpus (devices 0..devices-1 on the fleet
/// OUI, daily-rotating /64s) plus a geo feed covering `geo_per_oui` serials
/// on the fleet OUI and on `alien_ouis` higher OUIs the corpus never saw —
/// the MAC-disjoint bands whose blocks the pruning counters must show
/// skipped. Returns an empty day_paths vector on I/O failure.
JoinFixture make_join_fixture(const std::string& tag, std::int64_t days,
                              std::uint64_t devices,
                              std::uint64_t geo_per_oui,
                              unsigned alien_ouis) {
  JoinFixture fx;
  for (std::int64_t day = 0; day < days; ++day) {
    core::ObservationStore store;
    for (std::uint64_t i = 0; i < devices; ++i) {
      core::Observation obs;
      const std::uint64_t slot =
          sim::mix64(i, static_cast<std::uint64_t>(day)) & 0xffffff;
      const std::uint64_t network = 0x20010db800000000ULL | (slot << 8);
      obs.target = net::Ipv6Address{network, 1};
      obs.response = net::Ipv6Address{
          network,
          net::mac_to_eui64(net::MacAddress{(kJoinFleetOui << 24) | i})};
      obs.type = wire::Icmpv6Type::kEchoReply;
      obs.code = 0;
      obs.time = static_cast<sim::TimePoint>(
          static_cast<std::uint64_t>(day) * 86400000000ULL + i);
      store.add(obs);
    }
    corpus::SnapshotWriter writer;
    writer.append(store);
    fx.day_paths.push_back(bench_tmp_path("scent_bench_" + tag + "_day" +
                                          std::to_string(day) + ".snap"));
    if (!writer.write(fx.day_paths.back())) {
      fx.day_paths.clear();
      return fx;
    }
    fx.corpus_rows += devices;
  }

  sim::GeoFeedSpec spec;
  spec.seed = 0x9e0;
  spec.ouis = {static_cast<std::uint32_t>(kJoinFleetOui)};
  for (unsigned k = 0; k < alien_ouis; ++k) {
    spec.ouis.push_back(static_cast<std::uint32_t>(kJoinAlienOui + k));
  }
  spec.devices_per_oui = geo_per_oui;
  spec.base_asn = 64500;
  spec.asn_count = 8;
  spec.first_day = 0;
  spec.last_day = days - 1;
  const sim::GeoFeedGenerator generator{spec};
  fx.feed_path = bench_tmp_path("scent_bench_" + tag + "_feed.gfd");
  corpus::GeoFeedWriter writer;
  if (!writer.open(fx.feed_path)) {
    fx.day_paths.clear();
    return fx;
  }
  for (std::uint64_t i = 0; i < generator.records(); ++i) {
    writer.append(generator.record(i));
  }
  if (!writer.finish()) {
    fx.day_paths.clear();
    return fx;
  }
  fx.geo_rows = generator.records();
  return fx;
}

void remove_join_fixture(const JoinFixture& fx) {
  for (const std::string& p : fx.day_paths) std::remove(p.c_str());
  if (!fx.feed_path.empty()) std::remove(fx.feed_path.c_str());
}

struct JoinRunResult {
  double seconds = 0;
  std::optional<analysis::DossierTable> table;
  join::JoinStats stats;
};

JoinRunResult timed_join(const JoinFixture& fx, unsigned threads,
                         unsigned partitions,
                         std::size_t spill_block_elements,
                         telemetry::Registry* registry) {
  join::JoinOptions options;
  options.threads = threads;
  options.oversubscribe = true;
  options.partitions = partitions;
  options.spill_dir =
      bench_tmp_path("scent_bench_join_spill_t" + std::to_string(threads));
  options.spill_block_elements = spill_block_elements;
  options.telemetry = registry;
  join::DossierJoin engine{options};
  for (std::size_t d = 0; d < fx.day_paths.size(); ++d) {
    engine.add_corpus_day(fx.day_paths[d], static_cast<std::int64_t>(d));
  }
  engine.add_geo_feed(fx.feed_path);
  JoinRunResult r;
  const auto start = std::chrono::steady_clock::now();
  r.table = engine.run_table();
  r.seconds = seconds_since(start);
  r.stats = engine.stats();
  std::error_code ec;
  std::filesystem::remove_all(options.spill_dir, ec);
  return r;
}

/// Streams dossiers without retaining them — the huge configuration's sink,
/// so the RSS assertion measures the join, not the result table.
class CountingDossierSink final : public analysis::DossierSink {
 public:
  void on_dossier(analysis::DeviceDossier dossier) override {
    ++dossiers_;
    sightings_ += dossier.sightings.size();
    anchored_ += dossier.anchors.empty() ? 0 : 1;
  }
  [[nodiscard]] std::uint64_t dossiers() const noexcept { return dossiers_; }
  [[nodiscard]] std::uint64_t sightings() const noexcept {
    return sightings_;
  }
  [[nodiscard]] std::uint64_t anchored() const noexcept { return anchored_; }

 private:
  std::uint64_t dossiers_ = 0;
  std::uint64_t sightings_ = 0;
  std::uint64_t anchored_ = 0;
};

/// Samples g_live_heap_bytes from a side thread while a measured region
/// runs; peak_delta() is the high-water mark above the construction-time
/// baseline.
class HeapWatcher {
 public:
  HeapWatcher()
      : baseline_(g_live_heap_bytes.load(std::memory_order_relaxed)),
        peak_(baseline_),
        thread_([this] {
          while (!stop_.load(std::memory_order_relaxed)) {
            const std::size_t live =
                g_live_heap_bytes.load(std::memory_order_relaxed);
            if (live > peak_) peak_ = live;
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          }
        }) {}
  ~HeapWatcher() {
    if (thread_.joinable()) stop_and_join();
  }
  std::size_t stop_and_join() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
    const std::size_t live =
        g_live_heap_bytes.load(std::memory_order_relaxed);
    if (live > peak_) peak_ = live;
    return peak_ > baseline_ ? peak_ - baseline_ : 0;
  }

 private:
  std::size_t baseline_;
  std::size_t peak_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// The gated 100M-row-per-side configuration (SCENT_JOIN_HUGE=1; row count
/// overridable via SCENT_JOIN_HUGE_ROWS for smoke runs). Streams both sides
/// through the spill path at fan-out 64 and asserts, via the join.* gauges,
/// that peak heap is bounded by a small multiple of the largest partition —
/// never by input size.
bool check_join_huge(BenchReport& report) {
  std::size_t rows_per_side = 100'000'000;
  if (const char* env = std::getenv("SCENT_JOIN_HUGE_ROWS")) {
    const std::size_t v = std::strtoull(env, nullptr, 10);
    if (v >= 1'000'000) rows_per_side = v;
  }
  constexpr std::int64_t kDays = 20;
  constexpr unsigned kPartitions = 64;
  const std::uint64_t devices = rows_per_side / kDays;
  const std::uint64_t geo_per_oui = rows_per_side / 8;

  std::printf("join huge (%zu rows/side): building fixture...\n",
              rows_per_side);
  const JoinFixture fx =
      make_join_fixture("join_huge", kDays, devices, geo_per_oui, 7);
  if (fx.day_paths.empty()) {
    std::printf("  FIXTURE WRITE FAILED\n");
    return false;
  }

  telemetry::Registry registry;
  join::JoinOptions options;
  options.threads = 0;  // hardware concurrency
  options.partitions = kPartitions;
  options.spill_dir = bench_tmp_path("scent_bench_join_huge_spill");
  options.telemetry = &registry;
  join::DossierJoin engine{options};
  for (std::size_t d = 0; d < fx.day_paths.size(); ++d) {
    engine.add_corpus_day(fx.day_paths[d], static_cast<std::int64_t>(d));
  }
  engine.add_geo_feed(fx.feed_path);

  CountingDossierSink sink;
  HeapWatcher watcher;
  const auto start = std::chrono::steady_clock::now();
  const bool ran = engine.run(sink);
  const double join_s = seconds_since(start);
  const std::size_t peak_delta = watcher.stop_and_join();
  std::error_code ec;
  std::filesystem::remove_all(options.spill_dir, ec);
  remove_join_fixture(fx);
  if (!ran) {
    std::printf("  JOIN FAILED\n");
    return false;
  }

  // The assertion reads the published gauges, not JoinStats, so the
  // telemetry surface itself is what the guard holds to account.
  const auto gauge = [&](const char* name) {
    return static_cast<std::uint64_t>(registry.gauge(name).value());
  };
  const std::uint64_t peak_partition_rows = gauge("join.peak_partition_rows");
  const std::uint64_t spill_bytes = gauge("join.spill_bytes");
  const std::uint64_t partition_bytes =
      peak_partition_rows * sizeof(corpus::KeyedRecord);
  const std::uint64_t input_bytes =
      (engine.stats().corpus_rows + engine.stats().geo_rows) *
      sizeof(corpus::KeyedRecord);
  // 8x the largest partition covers sort scratch and the dossier spool;
  // the flat 512 MB covers O(P) run/spool block buffers and one decoded
  // snapshot day. Both terms are independent of input size.
  const std::uint64_t bound =
      8 * partition_bytes + (std::uint64_t{512} << 20);
  const bool spilled = spill_bytes > 0;
  const bool bounded = peak_delta <= bound;
  // The headline claim: at full scale the bound itself (and therefore the
  // observed peak) sits well below the materialized input.
  const bool below_input = input_bytes <= bound || peak_delta * 4 <= input_bytes;

  report.join_huge_rows_per_side = rows_per_side;
  report.join_huge_peak_heap_bytes = peak_delta;
  report.join_huge_bound_bytes = bound;
  report.join_huge_ok = spilled && bounded && below_input;
  std::printf(
      "  %llu corpus + %llu geo rows in %.1fs, %llu dossiers "
      "(%llu sightings, %llu anchored)\n"
      "  peak heap delta %.1f MB vs bound %.1f MB "
      "(8 x %.1f MB partition + 512 MB); input-equivalent %.1f MB; "
      "spill %.1f MB %s\n",
      static_cast<unsigned long long>(engine.stats().corpus_rows),
      static_cast<unsigned long long>(engine.stats().geo_rows), join_s,
      static_cast<unsigned long long>(sink.dossiers()),
      static_cast<unsigned long long>(sink.sightings()),
      static_cast<unsigned long long>(sink.anchored()),
      static_cast<double>(peak_delta) / 1048576.0,
      static_cast<double>(bound) / 1048576.0,
      static_cast<double>(partition_bytes) / 1048576.0,
      static_cast<double>(input_bytes) / 1048576.0,
      static_cast<double>(spill_bytes) / 1048576.0,
      report.join_huge_ok ? "OK" : "FAILED");
  return report.join_huge_ok;
}

bool check_join_scaling(BenchReport& report) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  constexpr std::int64_t kDays = 6;
  constexpr std::uint64_t kDevices = 131072;
  constexpr unsigned kPartitions = 16;
  // Small spill blocks make pruning observable: each partition's feed run
  // splits into many blocks, and the alien-OUI band's blocks sit wholly
  // above the corpus key span.
  constexpr std::size_t kSpillBlock = 4096;
  const JoinFixture fx =
      make_join_fixture("join", kDays, kDevices, 4 * kDevices, 1);
  if (fx.day_paths.empty()) {
    std::printf("join scaling: FIXTURE WRITE FAILED\n");
    report.join_ok = false;
    return false;
  }

  join::NaiveJoinInputs naive_inputs;
  for (std::size_t d = 0; d < fx.day_paths.size(); ++d) {
    naive_inputs.corpus_files.push_back(
        {fx.day_paths[d], static_cast<std::int64_t>(d)});
  }
  naive_inputs.geo_feeds = {fx.feed_path};
  const auto oracle = join::naive_join(naive_inputs);

  timed_join(fx, 1, kPartitions, kSpillBlock, nullptr);  // warm-up
  telemetry::Registry registry;
  const JoinRunResult serial =
      timed_join(fx, 1, kPartitions, kSpillBlock, &registry);
  const JoinRunResult par8 = timed_join(fx, 8, kPartitions, kSpillBlock,
                                        nullptr);
  remove_join_fixture(fx);

  const auto rows =
      static_cast<double>(serial.stats.corpus_rows + serial.stats.geo_rows);
  const bool outputs_equal = serial.table.has_value() &&
                             par8.table.has_value() &&
                             serial.table->rows() == par8.table->rows();
  const bool oracle_equal = serial.table.has_value() && oracle.has_value() &&
                            serial.table->rows() == oracle->rows();
  // The published gauges must agree with JoinStats — the huge config's RSS
  // assertion depends on them.
  const bool gauges_ok =
      static_cast<std::uint64_t>(registry.gauge("join.spill_bytes").value()) ==
          serial.stats.spill_bytes &&
      static_cast<std::uint64_t>(
          registry.gauge("join.blocks_pruned").value()) ==
          serial.stats.blocks_pruned;

  report.join_corpus_rows = serial.stats.corpus_rows;
  report.join_geo_rows = serial.stats.geo_rows;
  report.join_partitions = serial.stats.partitions;
  report.join_serial_s = serial.seconds;
  report.join_parallel8_s = par8.seconds;
  report.join_speedup_at_8 = serial.seconds / par8.seconds;
  report.join_serial_mrows_per_s = rows / serial.seconds / 1e6;
  report.join_spill_runs = serial.stats.spill_runs;
  report.join_spill_bytes = serial.stats.spill_bytes;
  report.join_blocks_read = serial.stats.blocks_read;
  report.join_blocks_pruned = serial.stats.blocks_pruned;
  report.join_dossiers = serial.stats.dossiers;
  report.join_outputs_equal = outputs_equal;
  report.join_oracle_equal = oracle_equal;
  report.join_floor_enforced = hw >= 8;

  std::printf(
      "join scaling (%zu corpus rows x %zu geo rows, %u partitions, spill "
      "blocks %zu, %u hardware threads):\n"
      "  serial  : %6.3fs  %.3gM rows/s\n"
      "  8 thr   : %6.3fs  speedup %.2fx\n"
      "  %llu dossiers; spill %llu runs / %.1f MB; blocks read %llu, "
      "pruned %llu\n"
      "  1-thr == 8-thr: %s; == naive oracle: %s; gauges == stats: %s\n",
      report.join_corpus_rows, report.join_geo_rows, report.join_partitions,
      kSpillBlock, hw, serial.seconds, report.join_serial_mrows_per_s,
      par8.seconds, report.join_speedup_at_8,
      static_cast<unsigned long long>(report.join_dossiers),
      static_cast<unsigned long long>(report.join_spill_runs),
      static_cast<double>(report.join_spill_bytes) / 1048576.0,
      static_cast<unsigned long long>(report.join_blocks_read),
      static_cast<unsigned long long>(report.join_blocks_pruned),
      outputs_equal ? "yes" : "MISMATCH", oracle_equal ? "yes" : "MISMATCH",
      gauges_ok ? "yes" : "MISMATCH");

  // Always enforced: exact equality, real spilling, real pruning, and an
  // absolute serial throughput floor (conservative — one slow shared core
  // must still clear it).
  bool ok = outputs_equal && oracle_equal && gauges_ok &&
            report.join_spill_bytes > 0 && report.join_spill_runs > 0 &&
            report.join_blocks_pruned > 0;
  const bool floor_ok = report.join_serial_mrows_per_s >= 0.15;
  if (!floor_ok) {
    std::printf("  serial floor 0.15M rows/s FAILED\n");
  }
  ok = ok && floor_ok;
  if (hw >= 8) {
    const bool fast_enough = report.join_speedup_at_8 >= 3.0;
    std::printf("  8-thread speedup %.2fx (floor 3x) %s\n",
                report.join_speedup_at_8, fast_enough ? "OK" : "FAILED");
    ok = ok && fast_enough;
  } else {
    std::printf("  (%u hardware threads < 8: 3x floor not enforced)\n", hw);
  }

  const char* huge = std::getenv("SCENT_JOIN_HUGE");
  if (huge != nullptr && *huge == '1') {
    ok = check_join_huge(report) && ok;
  }
  report.join_ok = ok;
  return ok;
}

// ---------------------------------------------------------------------------

void write_report_json(const BenchReport& r, bool guards_ok) {
  const char* path = std::getenv("SCENT_BENCH_JSON");
  if (path == nullptr || *path == '\0') path = "BENCH_micro.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::perror("bench_micro: cannot write bench JSON");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"bench_micro\",\n");
  std::fprintf(f, "  \"hardware_threads\": %u,\n", r.hardware_threads);
  std::fprintf(f,
               "  \"containers\": {\n"
               "    \"keys\": %zu,\n"
               "    \"flat_insert_mops\": %.2f,\n"
               "    \"flat_find_mops\": %.2f,\n"
               "    \"flat_iterate_mops\": %.2f,\n"
               "    \"std_insert_mops\": %.2f,\n"
               "    \"std_find_mops\": %.2f,\n"
               "    \"std_iterate_mops\": %.2f\n"
               "  },\n",
               r.container_keys, r.flat_insert_mops, r.flat_find_mops,
               r.flat_iterate_mops, r.std_insert_mops, r.std_find_mops,
               r.std_iterate_mops);
  std::fprintf(f,
               "  \"containers_50m\": {\n"
               "    \"keys\": %zu,\n"
               "    \"flat_insert_mops\": %.2f,\n"
               "    \"flat_find_mops\": %.2f\n"
               "  },\n",
               r.container_50m_keys, r.flat_50m_insert_mops,
               r.flat_50m_find_mops);
  std::fprintf(f,
               "  \"ingest\": {\n"
               "    \"observations\": %zu,\n"
               "    \"columnar_mops\": %.3f,\n"
               "    \"legacy_mops\": %.3f,\n"
               "    \"speedup\": %.2f,\n"
               "    \"columnar_bytes_per_obs\": %.1f,\n"
               "    \"legacy_bytes_per_obs\": %.1f,\n"
               "    \"bytes_reduction_pct\": %.1f\n"
               "  },\n",
               r.ingest_observations, r.ingest_columnar_mops,
               r.ingest_legacy_mops, r.ingest_speedup,
               r.columnar_bytes_per_obs, r.legacy_bytes_per_obs,
               r.bytes_reduction_pct);
  std::fprintf(f,
               "  \"corpus\": {\n"
               "    \"snapshot_rows\": %zu,\n"
               "    \"snapshot_file_bytes\": %zu,\n"
               "    \"save_mrows_per_s\": %.2f,\n"
               "    \"load_mrows_per_s\": %.2f,\n"
               "    \"diff_days\": %u,\n"
               "    \"diff_full_ms\": %.2f,\n"
               "    \"diff_incremental_ms\": %.2f,\n"
               "    \"diff_speedup\": %.2f\n"
               "  },\n",
               r.snapshot_rows, r.snapshot_file_bytes, r.snapshot_save_mrps,
               r.snapshot_load_mrps, r.diff_days, r.diff_full_ms,
               r.diff_incremental_ms, r.diff_speedup);
  std::fprintf(f,
               "  \"snapshot_v2\": {\n"
               "    \"rows\": %zu,\n"
               "    \"v1_file_bytes\": %zu,\n"
               "    \"file_bytes\": %zu,\n"
               "    \"bytes_per_row\": %.2f,\n"
               "    \"compression_ratio\": %.2f,\n"
               "    \"save_mrows_per_s\": %.2f,\n"
               "    \"load_mrows_per_s\": %.2f,\n"
               "    \"blocks\": %zu,\n"
               "    \"blocks_skipped\": %zu,\n"
               "    \"floor_enforced\": %s\n"
               "  },\n",
               r.snapshot_v2_rows, r.snapshot_v1_file_bytes,
               r.snapshot_v2_file_bytes, r.snapshot_v2_bytes_per_row,
               r.snapshot_v2_ratio, r.snapshot_v2_save_mrps,
               r.snapshot_v2_load_mrps, r.snapshot_v2_blocks,
               r.snapshot_v2_blocks_skipped,
               r.snapshot_v2_floor_enforced ? "true" : "false");
  std::fprintf(f,
               "  \"sweep_scaling\": {\n"
               "    \"probes\": %zu,\n"
               "    \"serial_mops\": %.3f,\n"
               "    \"speedups\": {",
               r.sweep_probes, r.sweep_serial_mops);
  for (std::size_t i = 0; i < r.sweep_speedups.size(); ++i) {
    std::fprintf(f, "%s\"%u\": %.2f", i == 0 ? "" : ", ",
                 r.sweep_speedups[i].first, r.sweep_speedups[i].second);
  }
  std::fprintf(f,
               "},\n"
               "    \"speedup_at_8\": %.2f,\n"
               "    \"floor_enforced\": %s\n"
               "  },\n",
               r.sweep_speedup_at_8, r.sweep_floor_enforced ? "true" : "false");
  std::fprintf(f,
               "  \"pipeline\": {\n"
               "    \"probes\": %zu,\n"
               "    \"serial_s\": %.3f,\n"
               "    \"barrier8_s\": %.3f,\n"
               "    \"pipelined8_s\": %.3f,\n"
               "    \"speedup_vs_serial\": %.2f,\n"
               "    \"speedup_vs_barrier\": %.2f,\n"
               "    \"outputs_equal\": %s,\n"
               "    \"floor_enforced\": %s\n"
               "  },\n",
               r.pipeline_probes, r.pipeline_serial_s, r.pipeline_barrier8_s,
               r.pipeline_pipelined8_s, r.pipeline_speedup_vs_serial,
               r.pipeline_speedup_vs_barrier,
               r.pipeline_outputs_equal ? "true" : "false",
               r.pipeline_floor_enforced ? "true" : "false");
  std::fprintf(f,
               "  \"telemetry\": {\n"
               "    \"plain_mops\": %.3f,\n"
               "    \"attached_mops\": %.3f,\n"
               "    \"overhead_pct\": %.2f\n"
               "  },\n",
               r.telemetry_plain_mops, r.telemetry_attached_mops,
               r.telemetry_overhead_pct);
  std::fprintf(f,
               "  \"trace\": {\n"
               "    \"rows\": %zu,\n"
               "    \"batch_ns\": %.1f,\n"
               "    \"idle_sample_ns\": %.3f,\n"
               "    \"enabled_sample_ns\": %.2f,\n"
               "    \"idle_overhead_pct\": %.3f,\n"
               "    \"enabled_overhead_pct\": %.3f\n"
               "  },\n",
               r.trace_rows, r.trace_batch_ns, r.trace_idle_sample_ns,
               r.trace_enabled_sample_ns, r.trace_idle_overhead_pct,
               r.trace_enabled_overhead_pct);
  std::fprintf(f,
               "  \"analysis\": {\n"
               "    \"rows\": %zu,\n"
               "    \"devices\": %zu,\n"
               "    \"ases\": %zu,\n"
               "    \"legacy_alloc_ms\": %.2f,\n"
               "    \"legacy_pool_ms\": %.2f,\n"
               "    \"legacy_per_as_ms\": %.2f,\n"
               "    \"legacy_homogeneity_ms\": %.2f,\n"
               "    \"legacy_pathology_ms\": %.2f,\n"
               "    \"legacy_total_ms\": %.2f,\n"
               "    \"fused_ms\": %.2f,\n"
               "    \"speedup\": %.2f,\n"
               "    \"reports_equal\": %s\n"
               "  },\n",
               r.analysis_rows, r.analysis_devices, r.analysis_ases,
               r.analysis_alloc_ms, r.analysis_pool_ms, r.analysis_per_as_ms,
               r.analysis_homogeneity_ms, r.analysis_pathology_ms,
               r.analysis_legacy_total_ms, r.analysis_fused_ms,
               r.analysis_speedup,
               r.analysis_reports_equal ? "true" : "false");
  std::fprintf(f,
               "  \"serve\": {\n"
               "    \"days\": %u,\n"
               "    \"rows\": %zu,\n"
               "    \"devices\": %zu,\n"
               "    \"rebuild_ms\": %.2f,\n"
               "    \"delta_apply_ms\": %.2f,\n"
               "    \"delta_speedup\": %.2f,\n"
               "    \"queries_per_s\": %.0f,\n"
               "    \"versions_published\": %zu,\n"
               "    \"tables_equal\": %s\n"
               "  },\n",
               r.serve_days, r.serve_rows, r.serve_devices,
               r.serve_rebuild_ms, r.serve_delta_apply_ms,
               r.serve_delta_speedup, r.serve_queries_per_s,
               r.serve_versions_published,
               r.serve_equal ? "true" : "false");
  std::fprintf(f,
               "  \"join_scaling\": {\n"
               "    \"corpus_rows\": %zu,\n"
               "    \"geo_rows\": %zu,\n"
               "    \"partitions\": %u,\n"
               "    \"serial_s\": %.3f,\n"
               "    \"parallel8_s\": %.3f,\n"
               "    \"speedup_at_8\": %.2f,\n"
               "    \"serial_mrows_per_s\": %.3f,\n"
               "    \"spill_runs\": %zu,\n"
               "    \"spill_bytes\": %zu,\n"
               "    \"blocks_read\": %zu,\n"
               "    \"blocks_pruned\": %zu,\n"
               "    \"dossiers\": %zu,\n"
               "    \"outputs_equal\": %s,\n"
               "    \"oracle_equal\": %s,\n"
               "    \"floor_enforced\": %s,\n"
               "    \"huge_rows_per_side\": %zu,\n"
               "    \"huge_peak_heap_bytes\": %zu,\n"
               "    \"huge_bound_bytes\": %zu,\n"
               "    \"huge_ok\": %s\n"
               "  },\n",
               r.join_corpus_rows, r.join_geo_rows, r.join_partitions,
               r.join_serial_s, r.join_parallel8_s, r.join_speedup_at_8,
               r.join_serial_mrows_per_s, r.join_spill_runs,
               r.join_spill_bytes, r.join_blocks_read, r.join_blocks_pruned,
               r.join_dossiers, r.join_outputs_equal ? "true" : "false",
               r.join_oracle_equal ? "true" : "false",
               r.join_floor_enforced ? "true" : "false",
               r.join_huge_rows_per_side, r.join_huge_peak_heap_bytes,
               r.join_huge_bound_bytes, r.join_huge_ok ? "true" : "false");
  std::fprintf(f, "  \"guards\": {\n    \"entries\": [\n");
  for (std::size_t i = 0; i < r.guard_status.size(); ++i) {
    const auto& g = r.guard_status[i];
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"ok\": %s, \"enforced\": %s, "
                 "\"required_threads\": %u, \"hardware_threads\": %u, "
                 "\"skipped_reason\": ",
                 g.name, g.ok ? "true" : "false",
                 g.enforced ? "true" : "false", g.required_threads,
                 r.hardware_threads);
    if (g.skipped_reason.empty()) {
      std::fprintf(f, "null}");
    } else {
      std::fprintf(f, "\"%s\"}", g.skipped_reason.c_str());
    }
    std::fprintf(f, "%s\n", i + 1 < r.guard_status.size() ? "," : "");
  }
  std::fprintf(f,
               "    ],\n"
               "    \"all_ok\": %s\n"
               "  }\n}\n",
               guards_ok ? "true" : "false");
  std::fclose(f);
  std::printf("bench report written to %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report;
  report.hardware_threads = std::max(1u, std::thread::hardware_concurrency());
  const bool telemetry_ok = check_telemetry_overhead(report);
  const bool trace_ok = check_trace_overhead(report);
  const bool scaling_ok = check_sweep_scaling(report);
  const bool pipeline_ok = check_pipeline_scaling(report);
  const bool ingest_ok = check_ingest_guard(report);
  const bool corpus_ok = check_corpus_guards(report);
  const bool snapshot_v2_ok = check_snapshot_v2_guards(report);
  const bool analysis_ok = check_analysis_guard(report);
  const bool serve_ok = check_serve_guard(report);
  const bool join_ok = check_join_scaling(report);
  measure_container_stats(report);
  measure_container_stats_50m(report);

  char sweep_skip[96] = "";
  if (!report.sweep_floor_enforced) {
    std::snprintf(sweep_skip, sizeof(sweep_skip),
                  "host has %u hardware threads; the 3x-at-8-threads floor "
                  "needs 8",
                  report.hardware_threads);
  }
  char pipeline_skip[112] = "";
  if (!report.pipeline_floor_enforced) {
    std::snprintf(pipeline_skip, sizeof(pipeline_skip),
                  "host has %u hardware threads; the 3x-vs-serial and "
                  "1.3x-vs-barrier floors need 8",
                  report.hardware_threads);
  }
  char snapshot_v2_skip[112] = "";
  if (!report.snapshot_v2_floor_enforced) {
    std::snprintf(snapshot_v2_skip, sizeof(snapshot_v2_skip),
                  "host has %u hardware threads; the 5M/10M rows/s "
                  "save/load floors need 8 (3x ratio still enforced)",
                  report.hardware_threads);
  }
  char join_skip[144] = "";
  if (!report.join_floor_enforced) {
    std::snprintf(join_skip, sizeof(join_skip),
                  "host has %u hardware threads; the 3x-at-8-threads join "
                  "floor needs 8 (equality/pruning/Mrows floors still "
                  "enforced)",
                  report.hardware_threads);
  }
  report.guard_status = {
      {"telemetry", telemetry_ok, true, 1, ""},
      {"trace", trace_ok, true, 1, ""},
      {"sweep_scaling", scaling_ok, report.sweep_floor_enforced, 8,
       sweep_skip},
      {"pipeline_scaling", pipeline_ok, report.pipeline_floor_enforced, 8,
       pipeline_skip},
      {"ingest", ingest_ok, true, 1, ""},
      {"corpus", corpus_ok, true, 1, ""},
      {"snapshot_v2", snapshot_v2_ok, report.snapshot_v2_floor_enforced, 8,
       snapshot_v2_skip},
      {"analysis", analysis_ok, true, 1, ""},
      {"serve_incremental", serve_ok, true, 1, ""},
      {"join_scaling", join_ok, report.join_floor_enforced, 8, join_skip},
  };
  const bool guards_ok = telemetry_ok && trace_ok && scaling_ok &&
                         pipeline_ok && ingest_ok && corpus_ok &&
                         snapshot_v2_ok && analysis_ok && serve_ok &&
                         join_ok;
  write_report_json(report, guards_ok);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return guards_ok ? 0 : 1;
}
