// bench_micro - google-benchmark microbenchmarks of the hot paths.
//
// The paper's vantage probes at 10k packets per second; these benchmarks
// confirm every per-packet component of this implementation (address
// parse/format, EUI-64 codec, checksum, packet build+parse, LPM lookup,
// permutation step, and the full probe/response loop) runs far above that
// rate, so the simulated campaigns are limited by scale choices, not
// implementation overheads. main() additionally asserts that attaching a
// telemetry registry to the prober costs <5% of fast-path throughput.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/sweep_ingest.h"
#include "engine/sweep.h"
#include "netbase/eui64.h"
#include "netbase/ipv6_address.h"
#include "probe/permutation.h"
#include "probe/prober.h"
#include "probe/target_generator.h"
#include "routing/prefix_trie.h"
#include "sim/scenario.h"
#include "telemetry/metrics.h"
#include "wire/icmpv6.h"

namespace {

using namespace scent;

void BM_AddressParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net::Ipv6Address::parse("2001:16b8:2:300:3a10:d5ff:feaa:bbcc"));
  }
}
BENCHMARK(BM_AddressParse);

void BM_AddressFormat(benchmark::State& state) {
  const net::Ipv6Address a{0x200116b800020300ULL, 0x3a10d5fffeaabbccULL};
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.to_string());
  }
}
BENCHMARK(BM_AddressFormat);

void BM_Eui64Codec(benchmark::State& state) {
  std::uint64_t mac_bits = 0x3810d5000000ULL;
  for (auto _ : state) {
    const std::uint64_t iid = net::mac_to_eui64(net::MacAddress{mac_bits++});
    benchmark::DoNotOptimize(net::eui64_to_mac(iid));
  }
}
BENCHMARK(BM_Eui64Codec);

void BM_ChecksumIcmpv6(benchmark::State& state) {
  const net::Ipv6Address src{0x20010db800000000ULL, 1};
  const net::Ipv6Address dst{0x200116b800020300ULL, 2};
  std::vector<std::uint8_t> message(64, 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::icmpv6_checksum(src, dst, message));
  }
}
BENCHMARK(BM_ChecksumIcmpv6);

void BM_PacketBuildParse(benchmark::State& state) {
  const net::Ipv6Address src{0x20010db800000000ULL, 1};
  const net::Ipv6Address dst{0x200116b800020300ULL, 2};
  std::uint16_t seq = 0;
  for (auto _ : state) {
    const auto packet = wire::build_echo_request(src, dst, 0x5C37, ++seq, 64);
    benchmark::DoNotOptimize(wire::parse_packet(packet));
  }
}
BENCHMARK(BM_PacketBuildParse);

void BM_TrieLongestMatch(benchmark::State& state) {
  routing::PrefixTrie<int> trie;
  sim::Rng rng{42};
  for (int i = 0; i < 1000; ++i) {
    const net::Ipv6Address base{rng.next() & 0xffffffff00000000ULL, 0};
    trie.insert(net::Prefix{base, 32 + static_cast<unsigned>(rng.below(17))},
                i);
  }
  sim::Rng query_rng{7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trie.longest_match(net::Ipv6Address{query_rng.next(), 0}));
  }
}
BENCHMARK(BM_TrieLongestMatch);

void BM_PermutationNext(benchmark::State& state) {
  probe::CyclicPermutation perm{1ULL << 20, 99};
  std::uint64_t out = 0;
  for (auto _ : state) {
    if (!perm.next(out)) perm.reset();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_PermutationNext);

void BM_FeistelForward(benchmark::State& state) {
  const sim::FeistelPermutation perm{1ULL << 18, 31337};
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm.forward(x++ & ((1ULL << 18) - 1)));
  }
}
BENCHMARK(BM_FeistelForward);

void BM_TargetGeneration(benchmark::State& state) {
  const net::Prefix pool = *net::Prefix::parse("2001:16b8:100::/46");
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        probe::target_in(pool.subnet(56, net::Uint128{i++ & 1023}), 7));
  }
}
BENCHMARK(BM_TargetGeneration);

/// The full probe loop, fast path: route, invert pool occupancy, synthesize
/// the reply. Items/sec here is the simulated "packets per second" ceiling.
void BM_ProbeLoopFast(benchmark::State& state) {
  static sim::PaperWorld world = sim::make_tiny_world(5, 512);
  sim::VirtualClock clock{sim::hours(12)};
  probe::ProberOptions options;
  options.wire_mode = false;
  options.packets_per_second = 0;  // no pacing: measure raw throughput
  probe::Prober prober{world.internet, clock, options};
  const auto& pool = world.internet.provider(world.versatel).pools()[0];
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto target = probe::target_in(
        pool.config().prefix.subnet(56, net::Uint128{i++ & 1023}), 3);
    benchmark::DoNotOptimize(prober.probe_one(target));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ProbeLoopFast);

/// Fast-path loop with a telemetry registry attached: per probe this adds
/// two cached-pointer null checks and two counter increments. Compare
/// items/sec against BM_ProbeLoopFast.
void BM_ProbeLoopFastTelemetry(benchmark::State& state) {
  static sim::PaperWorld world = sim::make_tiny_world(5, 512);
  sim::VirtualClock clock{sim::hours(12)};
  probe::ProberOptions options;
  options.wire_mode = false;
  options.packets_per_second = 0;
  probe::Prober prober{world.internet, clock, options};
  telemetry::Registry registry;
  registry.set_clock(&clock);
  prober.attach_telemetry(registry);
  const auto& pool = world.internet.provider(world.versatel).pools()[0];
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto target = probe::target_in(
        pool.config().prefix.subnet(56, net::Uint128{i++ & 1023}), 3);
    benchmark::DoNotOptimize(prober.probe_one(target));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ProbeLoopFastTelemetry);

/// Same loop through full wire serialization, checksum, parse.
void BM_ProbeLoopWire(benchmark::State& state) {
  static sim::PaperWorld world = sim::make_tiny_world(6, 512);
  sim::VirtualClock clock{sim::hours(12)};
  probe::ProberOptions options;
  options.wire_mode = true;
  options.packets_per_second = 0;
  probe::Prober prober{world.internet, clock, options};
  const auto& pool = world.internet.provider(world.versatel).pools()[0];
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto target = probe::target_in(
        pool.config().prefix.subnet(56, net::Uint128{i++ & 1023}), 3);
    benchmark::DoNotOptimize(prober.probe_one(target));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ProbeLoopWire);

/// Measures fast-path probe throughput (probes/sec) over a fixed batch,
/// with or without a telemetry registry attached.
double probe_loop_rate(bool with_telemetry, std::uint64_t batch) {
  sim::PaperWorld world = sim::make_tiny_world(5, 512);
  sim::VirtualClock clock{sim::hours(12)};
  probe::ProberOptions options;
  options.wire_mode = false;
  options.packets_per_second = 0;
  probe::Prober prober{world.internet, clock, options};
  telemetry::Registry registry;
  registry.set_clock(&clock);
  if (with_telemetry) prober.attach_telemetry(registry);
  const auto& pool = world.internet.provider(world.versatel).pools()[0];

  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < batch; ++i) {
    const auto target = probe::target_in(
        pool.config().prefix.subnet(56, net::Uint128{i & 1023}), 3);
    benchmark::DoNotOptimize(prober.probe_one(target));
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(batch) / seconds;
}

/// Guards the telemetry hot-path budget: attaching a registry must cost
/// <5% of fast-path sweep throughput. Interleaved best-of-N trials cancel
/// out frequency-scaling and cache-warmth drift.
bool check_telemetry_overhead() {
  constexpr std::uint64_t kBatch = 400000;
  constexpr int kTrials = 5;
  probe_loop_rate(false, kBatch / 4);  // warm-up, discarded
  double best_plain = 0;
  double best_telemetry = 0;
  for (int t = 0; t < kTrials; ++t) {
    best_plain = std::max(best_plain, probe_loop_rate(false, kBatch));
    best_telemetry = std::max(best_telemetry, probe_loop_rate(true, kBatch));
  }
  const double overhead = best_plain / best_telemetry - 1.0;
  const bool ok = overhead < 0.05;
  std::printf("telemetry overhead guard: plain=%.3gM/s telemetry=%.3gM/s "
              "overhead=%.2f%% (budget 5%%) %s\n",
              best_plain / 1e6, best_telemetry / 1e6, overhead * 100,
              ok ? "OK" : "FAILED");
  return ok;
}

/// One sharded sweep of ~1M probes; returns wall seconds and the corpus
/// size (which must not vary with the thread count).
std::pair<double, std::size_t> sharded_sweep_run(sim::Internet& internet,
                                                 unsigned threads) {
  const auto& pool = internet.provider(0).pools()[0];
  std::vector<engine::SweepUnit> units;
  constexpr std::size_t kUnits = 256;  // x 4096 probes each (/48 at /60)
  units.reserve(kUnits);
  for (std::uint64_t i = 0; i < kUnits; ++i) {
    const net::Prefix p48{
        pool.config().prefix.subnet(48, net::Uint128{i % 4}).base(), 48};
    units.push_back({p48, 60, 0xBE7C + i});
  }

  probe::ProberOptions options;
  options.wire_mode = false;
  options.packets_per_second = 2000000;
  engine::SweepOptions sweep_options;
  sweep_options.threads = threads;

  sim::VirtualClock clock{sim::hours(12)};
  core::ObservationStore store;
  const auto start = std::chrono::steady_clock::now();
  core::sweep_into_store(internet, clock, units, options, sweep_options,
                         store);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return {seconds, store.size()};
}

/// Sweep scaling across worker shards: wall-clock throughput must rise
/// with the thread count while the corpus stays bit-identical (spot-checked
/// here by size; the engine test suite proves it field-by-field). On hosts
/// with >= 8 cores the 8-thread sweep must beat serial by >= 3x; on smaller
/// hosts the table is reported but not enforced (there is nothing to
/// parallelize onto).
bool check_sweep_scaling() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  sim::PaperWorld world = sim::make_tiny_world(9, 512);

  sharded_sweep_run(world.internet, 1);  // warm-up, discarded
  const auto [serial_s, serial_size] = sharded_sweep_run(world.internet, 1);
  std::printf("sweep scaling (%zu probes, %u hardware threads):\n",
              std::size_t{256} * 4096, hw);
  std::printf("  threads 1: %6.3fs  %.3gM probes/s  (serial baseline)\n",
              serial_s, 256 * 4096 / serial_s / 1e6);

  bool ok = true;
  double speedup_at_8 = 0;
  for (unsigned threads = 2; threads <= std::max(8u, hw); threads *= 2) {
    const auto [s, size] = sharded_sweep_run(world.internet, threads);
    const double speedup = serial_s / s;
    if (threads == 8) speedup_at_8 = speedup;
    std::printf("  threads %u: %6.3fs  %.3gM probes/s  speedup %.2fx%s\n",
                threads, s, 256 * 4096 / s / 1e6, speedup,
                size == serial_size ? "" : "  CORPUS MISMATCH");
    ok = ok && size == serial_size;
  }
  if (hw >= 8) {
    const bool fast_enough = speedup_at_8 >= 3.0;
    std::printf("  8-thread speedup %.2fx (floor 3x) %s\n", speedup_at_8,
                fast_enough ? "OK" : "FAILED");
    ok = ok && fast_enough;
  } else {
    std::printf("  (%u hardware threads < 8: 3x floor not enforced)\n", hw);
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const bool telemetry_ok = check_telemetry_overhead();
  const bool scaling_ok = check_sweep_scaling();
  const bool overhead_ok = telemetry_ok && scaling_ok;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return overhead_ok ? 0 : 1;
}
