#!/usr/bin/env bash
# check.sh - tier-1 verification plus sanitizer passes.
#
#   scripts/check.sh            # plain build + ctest, bench guards, then ASan/UBSan and TSan passes
#   scripts/check.sh --fast     # plain build + ctest only
#
# The plain pass is the repo's tier-1 gate (ROADMAP.md). The bench-guard leg
# runs bench_micro's enforced perf floors (telemetry overhead, trace
# instrumentation overhead, sweep scaling, pipeline scaling, ingest
# throughput, bytes per observation, snapshot save/load, incremental
# differencing, fused analysis speedup) into a fresh JSON report; a follow-up audit of guards.entries
# fails the run if any guard reported itself skipped on hardware that could
# have run it — a guard may only be waved through when the host genuinely
# lacks the threads its floor needs. bench_trend.py then diffs the fresh
# report against the committed BENCH_micro.json baseline metric by metric
# (advisory deltas; the hard floors already ran) and appends one line to
# the local BENCH_history.jsonl trajectory.
# The trace leg runs a traced checkpoint campaign and validates the Chrome
# trace-event JSON it writes: parseable, the required keys present, and
# the expected per-shard lanes rendered.
# The checkpoint/resume leg kills a checkpointed campaign mid-flight and
# asserts the resumed run's digest and on-disk snapshot chain are
# byte-identical to an uninterrupted run, at 1 and 4 threads (§5f).
# The snapshot v1<->v2 leg kills a campaign writing the frozen v1 format
# and resumes it writing v2, asserting the mixed-version chain converges
# on the uninterrupted digest (readers auto-detect per file, §5j).
# The pipeline-equivalence leg reruns the campaign through the streamed
# scheduler (--pipeline, §5i) and compares digests and snapshot chains
# byte-for-byte against barrier mode at 1 and 8 threads, then kills a
# pipelined run mid-day (--kill-mid-day, exit 43, nothing durable for that
# day) and asserts the resume still converges on the barrier digest.
# The serve leg (§5k) kills a campaign that is maintaining a live ServeTable
# mid-chain, resumes it through the streamed scheduler at a different thread
# count, and asserts the resumed table's version digest — every maintained
# field plus both published windows — equals an uninterrupted run's.
# The join leg (§5l) runs the partitioned out-of-core merge-join example at
# different thread counts AND partition fan-outs and cmp's the emitted
# dossier/timeline reports byte for byte.
# The ASan/UBSan pass rebuilds everything with
# -fsanitize=address,undefined into build-sanitize/ and reruns the test suite
# under it. The TSan pass rebuilds into build-tsan/ with -fsanitize=thread and
# runs every Engine-, Pipeline-, Serve- and Join-prefixed suite — the sharded
# executor, the bounded-queue/stage primitives, the streamed-scheduler
# determinism matrix, the fused analysis engine's serial/parallel
# equivalence matrix, the ServeTable's epoch-slot publication rail under
# concurrent readers, and the partitioned join's thread-count/fan-out
# differential matrix — under ThreadSanitizer.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc)

echo "== tier-1: configure + build + ctest (build/) =="
cmake -B build -S . >/dev/null
cmake --build build -j"$jobs"
(cd build && ctest --output-on-failure -j"$jobs")

if [[ "${1:-}" == "--fast" ]]; then
  echo "== skipping bench guards and sanitizer pass (--fast) =="
  exit 0
fi

bench_tmp=$(mktemp -d)
trap 'rm -rf "$bench_tmp"' EXIT

echo "== bench guards: perf floors (bench_micro) =="
# Exits nonzero if any guard floor is missed; the filter skips the
# registered microbenchmarks (the guards measure everything the JSON
# needs). The report lands in a temp file so a noisy run never clobbers
# the committed baseline — refresh BENCH_micro.json deliberately, with
# SCENT_BENCH_JSON=BENCH_micro.json, when a PR moves the floors.
SCENT_BENCH_JSON="$bench_tmp/bench_fresh.json" \
  ./build/bench/bench_micro --benchmark_filter='^$'

echo "== bench guards: no guard skipped on capable hardware =="
# bench_micro downgrades thread-scaling floors to advisory on hosts with
# too few cores, recording why in guards.entries[].skipped_reason. That
# escape hatch must never fire on a machine that has the threads: a skip
# with required_threads <= nproc means the guard was dodged, not gated.
SCENT_BENCH_FRESH="$bench_tmp/bench_fresh.json" python3 - "$(nproc)" <<'PYEOF'
import json, os, sys
nproc = int(sys.argv[1])
entries = json.load(open(os.environ["SCENT_BENCH_FRESH"]))["guards"]["entries"]
bad = [e for e in entries
       if e["skipped_reason"] is not None and e["required_threads"] <= nproc]
for e in bad:
    print(f"guard '{e['name']}' skipped ({e['skipped_reason']}) but host has "
          f"{nproc} >= {e['required_threads']} threads", file=sys.stderr)
ok = [e["name"] for e in entries if e["skipped_reason"] is None]
skipped = [e["name"] for e in entries if e["skipped_reason"] is not None]
print(f"  enforced: {', '.join(ok)}"
      + (f"; legitimately skipped: {', '.join(skipped)}" if skipped else ""))
sys.exit(1 if bad else 0)
PYEOF

echo "== bench trend: fresh run vs committed BENCH_micro.json baseline =="
python3 scripts/bench_trend.py --baseline BENCH_micro.json \
  --fresh "$bench_tmp/bench_fresh.json" --history BENCH_history.jsonl

echo "== trace: Perfetto-loadable timeline from a traced campaign =="
./build/examples/checkpoint_campaign --days=3 --threads=4 \
  --out-dir="$bench_tmp/traced" --trace-out="$bench_tmp/trace.json" \
  > /dev/null
python3 -m json.tool "$bench_tmp/trace.json" > /dev/null
SCENT_TRACE_JSON="$bench_tmp/trace.json" python3 - <<'PYEOF'
import json, os, sys
doc = json.load(open(os.environ["SCENT_TRACE_JSON"]))
events = doc["traceEvents"]
assert events, "empty traceEvents"
for required in ("name", "ph", "ts", "pid", "tid"):
    missing = [e for e in events if required not in e]
    assert not missing, f"events missing '{required}': {missing[:3]}"
lanes = {e["args"]["name"] for e in events
         if e.get("ph") == "M" and e["name"] == "thread_name"}
for expect in ("campaign", "sweep shard 0", "ingest shard 0",
               "analysis shard 0"):
    assert expect in lanes, f"missing lane '{expect}' in {sorted(lanes)}"
print(f"  {len(events)} events across {len(lanes)} lanes, "
      f"{doc['otherData']['dropped_events']} dropped: OK")
PYEOF

echo "== checkpoint/resume: kill-and-resume byte-identical corpus =="
resume_tmp=$(mktemp -d)
trap 'rm -rf "$bench_tmp" "$resume_tmp"' EXIT
for t in 1 4; do
  rm -rf "$resume_tmp/killed" "$resume_tmp/whole"
  mkdir -p "$resume_tmp/killed" "$resume_tmp/whole"
  # The killed run _Exit(42)s right after day 2's checkpoint is durable;
  # anything else (including a clean exit) is a harness failure.
  set +e
  ./build/examples/checkpoint_campaign --days=6 --threads="$t" \
    --kill-after-day=2 --out-dir="$resume_tmp/killed" >/dev/null
  status=$?
  set -e
  if [[ "$status" -ne 42 ]]; then
    echo "checkpoint_campaign: expected kill-hook exit 42, got $status" >&2
    exit 1
  fi
  resumed=$(./build/examples/checkpoint_campaign --days=6 --threads="$t" \
    --digest-only --out-dir="$resume_tmp/killed")
  whole=$(./build/examples/checkpoint_campaign --days=6 --threads="$t" \
    --digest-only --out-dir="$resume_tmp/whole")
  if [[ "$resumed" != "$whole" ]]; then
    echo "resume digest mismatch at $t threads: $resumed != $whole" >&2
    exit 1
  fi
  for f in "$resume_tmp"/whole/day_*.snap "$resume_tmp/whole/manifest.txt"; do
    if ! cmp -s "$f" "$resume_tmp/killed/$(basename "$f")"; then
      echo "chain file differs at $t threads: $(basename "$f")" >&2
      exit 1
    fi
  done
  echo "  threads $t: digest $resumed, 6-day chain byte-identical OK"
done

echo "== snapshot v1<->v2: mixed-version chain resumes to the same digest =="
# A campaign written in the frozen v1 format, killed after day 2, then
# resumed by a build writing v2 (the default): the chain on disk mixes
# versions — days 0-2 stay v1, days 3-5 land as v2 — and the resumed
# digest must equal an uninterrupted all-v2 run's. The reader auto-detects
# per file, so this is exactly the upgrade-mid-campaign path.
rm -rf "$resume_tmp/mixed" "$resume_tmp/mixed_whole"
mkdir -p "$resume_tmp/mixed" "$resume_tmp/mixed_whole"
set +e
./build/examples/checkpoint_campaign --days=6 --threads=4 \
  --snapshot-version=1 --kill-after-day=2 --out-dir="$resume_tmp/mixed" \
  >/dev/null
status=$?
set -e
if [[ "$status" -ne 42 ]]; then
  echo "checkpoint_campaign: expected kill-hook exit 42, got $status" >&2
  exit 1
fi
mixed=$(./build/examples/checkpoint_campaign --days=6 --threads=4 \
  --snapshot-version=2 --digest-only --out-dir="$resume_tmp/mixed")
whole=$(./build/examples/checkpoint_campaign --days=6 --threads=4 \
  --digest-only --out-dir="$resume_tmp/mixed_whole")
if [[ "$mixed" != "$whole" ]]; then
  echo "mixed-version resume digest mismatch: $mixed != $whole" >&2
  exit 1
fi
SCENT_MIXED_DIR="$resume_tmp/mixed" python3 - <<'PYEOF'
import os, struct
chain_dir = os.environ["SCENT_MIXED_DIR"]
for day, want in [(0, 1), (1, 1), (2, 1), (3, 2), (4, 2), (5, 2)]:
    with open(f"{chain_dir}/day_{day:04d}.snap", "rb") as f:
        magic = f.read(8)
        assert magic == b"SCNTSNAP", f"day {day}: bad magic {magic!r}"
        version = struct.unpack("<I", f.read(4))[0]
    assert version == want, f"day {day}: format v{version}, want v{want}"
print("  chain genuinely mixed: days 0-2 v1, days 3-5 v2")
PYEOF
echo "  mixed v1/v2 chain: digest $mixed matches uninterrupted OK"

echo "== pipeline-equivalence: streamed vs barrier byte-identical =="
pipe_tmp=$(mktemp -d)
trap 'rm -rf "$bench_tmp" "$resume_tmp" "$pipe_tmp"' EXIT
rm -rf "$pipe_tmp/barrier"
mkdir -p "$pipe_tmp/barrier"
barrier=$(./build/examples/checkpoint_campaign --days=5 --threads=1 \
  --digest-only --out-dir="$pipe_tmp/barrier")
for t in 1 8; do
  rm -rf "$pipe_tmp/piped"
  mkdir -p "$pipe_tmp/piped"
  piped=$(./build/examples/checkpoint_campaign --days=5 --threads="$t" \
    --pipeline --digest-only --out-dir="$pipe_tmp/piped")
  if [[ "$piped" != "$barrier" ]]; then
    echo "pipeline digest mismatch at $t threads: $piped != $barrier" >&2
    exit 1
  fi
  for f in "$pipe_tmp"/barrier/day_*.snap "$pipe_tmp/barrier/manifest.txt"; do
    if ! cmp -s "$f" "$pipe_tmp/piped/$(basename "$f")"; then
      echo "pipeline chain file differs at $t threads: $(basename "$f")" >&2
      exit 1
    fi
  done
  echo "  threads $t: digest $piped, 5-day chain matches barrier OK"
done
# Mid-day kill: die after day 2 has streamed its first rows but before its
# snapshot commits — exit 43, no day_0002.snap on disk — then resume and
# land on the barrier digest with an identical chain.
rm -rf "$pipe_tmp/piped"
mkdir -p "$pipe_tmp/piped"
set +e
./build/examples/checkpoint_campaign --days=5 --threads=8 --pipeline \
  --kill-mid-day=2 --out-dir="$pipe_tmp/piped" >/dev/null
status=$?
set -e
if [[ "$status" -ne 43 ]]; then
  echo "checkpoint_campaign: expected mid-day-kill exit 43, got $status" >&2
  exit 1
fi
if [[ -e "$pipe_tmp/piped/day_0002.snap" ]]; then
  echo "mid-day kill left a durable day_0002.snap; day 2 should be lost" >&2
  exit 1
fi
resumed=$(./build/examples/checkpoint_campaign --days=5 --threads=8 \
  --pipeline --digest-only --out-dir="$pipe_tmp/piped")
if [[ "$resumed" != "$barrier" ]]; then
  echo "mid-day-kill resume digest mismatch: $resumed != $barrier" >&2
  exit 1
fi
for f in "$pipe_tmp"/barrier/day_*.snap "$pipe_tmp/barrier/manifest.txt"; do
  if ! cmp -s "$f" "$pipe_tmp/piped/$(basename "$f")"; then
    echo "mid-day-kill chain file differs: $(basename "$f")" >&2
    exit 1
  fi
done
echo "  mid-day kill (exit 43) + resume: digest $resumed, chain matches OK"

echo "== serve: killed campaign resumes to an identical ServeTable =="
serve_tmp=$(mktemp -d)
trap 'rm -rf "$bench_tmp" "$resume_tmp" "$pipe_tmp" "$serve_tmp"' EXIT
mkdir -p "$serve_tmp/killed" "$serve_tmp/whole"
# Kill the serving campaign right after day 2's checkpoint (the in-memory
# ServeTable dies with the process), then resume: the fresh table replays
# the restored days as deltas and must serve exactly what a never-killed
# run serves — even though the resume switches to the streamed scheduler
# at a different thread count.
set +e
./build/examples/serve_tracker --days=5 --threads=2 --kill-after-day=2 \
  --out-dir="$serve_tmp/killed" >/dev/null
status=$?
set -e
if [[ "$status" -ne 42 ]]; then
  echo "serve_tracker: expected kill-hook exit 42, got $status" >&2
  exit 1
fi
resumed=$(./build/examples/serve_tracker --days=5 --threads=4 --pipeline \
  --digest-only --out-dir="$serve_tmp/killed")
whole=$(./build/examples/serve_tracker --days=5 --threads=2 \
  --digest-only --out-dir="$serve_tmp/whole")
if [[ "$resumed" != "$whole" ]]; then
  echo "serve digest mismatch after kill+resume: $resumed != $whole" >&2
  exit 1
fi
echo "  kill (exit 42) + pipelined resume: serve digest $resumed OK"

echo "== join: dossier outputs byte-identical across threads and fan-out =="
join_tmp=$(mktemp -d)
trap 'rm -rf "$bench_tmp" "$resume_tmp" "$pipe_tmp" "$serve_tmp" "$join_tmp"' EXIT
# The §5l merge contract: the partitioned out-of-core join must emit the
# same bytes at any thread count AND any partition fan-out, so the two runs
# deliberately differ in both.
mkdir -p "$join_tmp/t1" "$join_tmp/t8"
./build/examples/join_dossiers --threads=1 --partitions=8 \
  --out-dir="$join_tmp/t1" >/dev/null
./build/examples/join_dossiers --threads=8 --partitions=16 \
  --out-dir="$join_tmp/t8" >/dev/null
for f in dossiers.tsv timelines.tsv; do
  if ! cmp -s "$join_tmp/t1/$f" "$join_tmp/t8/$f"; then
    echo "join output differs (1 thr/8 parts vs 8 thr/16 parts): $f" >&2
    exit 1
  fi
done
echo "  dossiers.tsv + timelines.tsv: 1 thr/8 parts == 8 thr/16 parts OK"

echo "== sanitizer: ASan+UBSan build + ctest (build-sanitize/) =="
cmake -B build-sanitize -S . -DSCENT_SANITIZE=address,undefined >/dev/null
cmake --build build-sanitize -j"$jobs"
(cd build-sanitize && ctest --output-on-failure -j"$jobs")

echo "== sanitizer: TSan build + engine/pipeline/serve/join tests (build-tsan/) =="
cmake -B build-tsan -S . -DSCENT_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$jobs" --target engine_tests \
  --target pipeline_tests --target serve_tests --target join_tests
(cd build-tsan && ctest --output-on-failure -R '^(Engine|Pipeline|Serve|Join)' -j"$jobs")

echo "== all checks passed =="
