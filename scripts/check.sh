#!/usr/bin/env bash
# check.sh - tier-1 verification plus sanitizer passes.
#
#   scripts/check.sh            # plain build + ctest, bench guards, then ASan/UBSan and TSan passes
#   scripts/check.sh --fast     # plain build + ctest only
#
# The plain pass is the repo's tier-1 gate (ROADMAP.md). The bench-guard leg
# runs bench_micro's enforced perf floors (telemetry overhead, sweep scaling,
# ingest throughput, bytes per observation) and refreshes the machine-readable
# BENCH_micro.json snapshot. The ASan/UBSan pass rebuilds everything with
# -fsanitize=address,undefined into build-sanitize/ and reruns the test suite
# under it. The TSan pass rebuilds into build-tsan/ with -fsanitize=thread and
# runs the engine's sharded-executor tests (the only multi-threaded code in
# the tree) under ThreadSanitizer.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc)

echo "== tier-1: configure + build + ctest (build/) =="
cmake -B build -S . >/dev/null
cmake --build build -j"$jobs"
(cd build && ctest --output-on-failure -j"$jobs")

if [[ "${1:-}" == "--fast" ]]; then
  echo "== skipping bench guards and sanitizer pass (--fast) =="
  exit 0
fi

echo "== bench guards: perf floors + BENCH_micro.json (bench_micro) =="
# Exits nonzero if any guard floor is missed; the filter skips the
# registered microbenchmarks (the guards measure everything the JSON needs).
SCENT_BENCH_JSON=BENCH_micro.json \
  ./build/bench/bench_micro --benchmark_filter='^$'

echo "== sanitizer: ASan+UBSan build + ctest (build-sanitize/) =="
cmake -B build-sanitize -S . -DSCENT_SANITIZE=address,undefined >/dev/null
cmake --build build-sanitize -j"$jobs"
(cd build-sanitize && ctest --output-on-failure -j"$jobs")

echo "== sanitizer: TSan build + engine tests (build-tsan/) =="
cmake -B build-tsan -S . -DSCENT_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$jobs" --target engine_tests
(cd build-tsan && ctest --output-on-failure -R '^Engine' -j"$jobs")

echo "== all checks passed =="
