#!/usr/bin/env bash
# check.sh - tier-1 verification plus sanitizer passes.
#
#   scripts/check.sh            # plain build + ctest, then ASan/UBSan and TSan passes
#   scripts/check.sh --fast     # plain build + ctest only
#
# The plain pass is the repo's tier-1 gate (ROADMAP.md). The ASan/UBSan pass
# rebuilds everything with -fsanitize=address,undefined into build-sanitize/
# and reruns the test suite under it. The TSan pass rebuilds into build-tsan/
# with -fsanitize=thread and runs the engine's sharded-executor tests (the
# only multi-threaded code in the tree) under ThreadSanitizer.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc)

echo "== tier-1: configure + build + ctest (build/) =="
cmake -B build -S . >/dev/null
cmake --build build -j"$jobs"
(cd build && ctest --output-on-failure -j"$jobs")

if [[ "${1:-}" == "--fast" ]]; then
  echo "== skipping sanitizer pass (--fast) =="
  exit 0
fi

echo "== sanitizer: ASan+UBSan build + ctest (build-sanitize/) =="
cmake -B build-sanitize -S . -DSCENT_SANITIZE=address,undefined >/dev/null
cmake --build build-sanitize -j"$jobs"
(cd build-sanitize && ctest --output-on-failure -j"$jobs")

echo "== sanitizer: TSan build + engine tests (build-tsan/) =="
cmake -B build-tsan -S . -DSCENT_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$jobs" --target engine_tests
(cd build-tsan && ctest --output-on-failure -R '^Engine' -j"$jobs")

echo "== all checks passed =="
