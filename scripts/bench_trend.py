#!/usr/bin/env python3
"""bench_trend.py - perf-trend harness over bench_micro's guard JSON.

Compares a fresh bench run (written via SCENT_BENCH_JSON) against the
committed BENCH_micro.json baseline, metric by metric:

  python3 scripts/bench_trend.py --baseline BENCH_micro.json \
      --fresh /tmp/bench_fresh.json --history BENCH_history.jsonl

* Every numeric metric present in both files is printed with its delta and
  a direction-aware verdict: throughput-like metrics (M ops/s, speedups,
  rows/s) should not fall, cost-like metrics (milliseconds, overhead %,
  bytes per observation) should not rise.
* A move past --regress-pct (default 10%) in the bad direction is flagged
  as a REGRESSION, past the same threshold in the good direction as an
  improvement; anything within the band is noise and stays quiet unless
  --verbose.
* Each run appends one JSON line (timestamp, headline metrics, flags) to
  --history so the trajectory across PRs survives baseline refreshes. The
  history file is an append-only local artifact and is gitignored.

Exit status: 1 if the fresh run's own guards failed (guards.all_ok false),
if the fresh report is missing any guard named in the baseline's
guards.entries (a guard that silently vanishes is a regression in coverage,
never noise — this check is unconditional, not gated on --strict), or, with
--strict, if any regression was flagged; 0 otherwise. The metric band is
advisory because shared CI hosts jitter far more than 10% — the hard floors
live in bench_micro itself.
"""

import argparse
import datetime
import json
import sys

# Substring -> direction. "up" = bigger is better, "down" = smaller is
# better. First match wins; metrics matching nothing are reported but never
# flagged (counts, sizes and thread tallies have no good direction).
DIRECTION_RULES = [
    ("overhead_pct", "down"),
    ("_ms", "down"),
    ("bytes_per_obs", "down"),
    ("bytes_per_row", "down"),
    ("sample_ns", "down"),
    ("batch_ns", "down"),
    ("file_bytes", "down"),
    ("spill_bytes", "down"),
    ("peak_heap_bytes", "down"),
    ("serial_s", "down"),
    ("parallel8_s", "down"),
    ("mops", "up"),
    ("mrows_per_s", "up"),
    ("speedup", "up"),
    ("reduction_pct", "up"),
    ("compression_ratio", "up"),
    ("queries_per_s", "up"),
]

# Metrics summarized into each history line: one headline number per
# guarded subsystem.
HEADLINE = [
    "ingest.columnar_mops",
    "analysis.fused_ms",
    "corpus.save_mrows_per_s",
    "corpus.load_mrows_per_s",
    "snapshot_v2.bytes_per_row",
    "snapshot_v2.compression_ratio",
    "snapshot_v2.save_mrows_per_s",
    "snapshot_v2.load_mrows_per_s",
    "telemetry.overhead_pct",
    "trace.idle_overhead_pct",
    "trace.enabled_overhead_pct",
    "sweep_scaling.serial_mops",
    "containers.flat_insert_mops",
    "containers_50m.flat_insert_mops",
    "containers_50m.flat_find_mops",
    "serve.delta_speedup",
    "serve.queries_per_s",
    "join_scaling.serial_mrows_per_s",
    "join_scaling.speedup_at_8",
    "join_scaling.partitions",
    "join_scaling.spill_bytes",
]


def flatten(node, prefix=""):
    """Dotted-path -> value map over nested dicts (lists are opaque)."""
    out = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            out.update(flatten(value, path))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix] = float(node)
    return out


def direction_for(path):
    for needle, direction in DIRECTION_RULES:
        if needle in path:
            return direction
    return None


def main():
    parser = argparse.ArgumentParser(
        description="diff a fresh bench_micro JSON against the baseline")
    parser.add_argument("--baseline", default="BENCH_micro.json")
    parser.add_argument("--fresh", required=True)
    parser.add_argument("--history", default=None,
                        help="JSONL file to append this run's summary to")
    parser.add_argument("--regress-pct", type=float, default=10.0,
                        help="flag moves past this %% in the bad direction")
    parser.add_argument("--strict", action="store_true",
                        help="exit nonzero when a regression is flagged")
    parser.add_argument("--verbose", action="store_true",
                        help="also print metrics inside the noise band")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    base_metrics = flatten(baseline)
    fresh_metrics = flatten(fresh)
    shared = sorted(set(base_metrics) & set(fresh_metrics))
    if not shared:
        print("bench_trend: no shared numeric metrics; wrong files?",
              file=sys.stderr)
        return 1

    regressions = []
    improvements = []
    print(f"bench trend: {args.fresh} vs {args.baseline} "
          f"({len(shared)} shared metrics, +/-{args.regress_pct:g}% band)")
    for path in shared:
        base, new = base_metrics[path], fresh_metrics[path]
        if base == 0:
            continue  # nothing to express a ratio against
        delta_pct = (new / base - 1.0) * 100.0
        direction = direction_for(path)
        verdict = ""
        if direction is not None and abs(delta_pct) >= args.regress_pct:
            bad = delta_pct < 0 if direction == "up" else delta_pct > 0
            verdict = "REGRESSION" if bad else "improved"
            (regressions if bad else improvements).append(
                (path, base, new, delta_pct))
        if verdict or args.verbose:
            arrow = {"up": "^", "down": "v", None: "-"}[direction]
            print(f"  {path:42s} {base:12.3f} -> {new:12.3f} "
                  f"{delta_pct:+7.2f}% [{arrow}] {verdict}")

    # Coverage check: every guard the committed baseline knows about must
    # still be reported by the fresh run. flatten() never sees the entries
    # list, so without this a deleted guard would sail through the metric
    # diff — and a missing floor is worse than a failed one.
    def guard_names(report):
        entries = report.get("guards", {}).get("entries", [])
        return {e["name"] for e in entries
                if isinstance(e, dict) and "name" in e}

    # Absolute throughput, always printed: the delta loop above only speaks
    # in ratios (and only for moves outside the band), which buried the
    # corpus guard's measured rates entirely on quiet runs.
    def fmt(path, unit=""):
        value = fresh_metrics.get(path)
        return "n/a" if value is None else f"{value:.1f}{unit}"

    print(f"  corpus: save {fmt('corpus.save_mrows_per_s')} / "
          f"load {fmt('corpus.load_mrows_per_s')} M rows/s; "
          f"snapshot_v2: save {fmt('snapshot_v2.save_mrows_per_s')} / "
          f"load {fmt('snapshot_v2.load_mrows_per_s')} M rows/s, "
          f"{fmt('snapshot_v2.bytes_per_row')} B/row "
          f"({fmt('snapshot_v2.compression_ratio', 'x')} vs v1)")
    print(f"  join: {fmt('join_scaling.serial_mrows_per_s')} M rows/s "
          f"serial over {fmt('join_scaling.partitions')} partitions, "
          f"{fmt('join_scaling.spill_bytes')} spill bytes, "
          f"{fmt('join_scaling.blocks_pruned')} blocks pruned")

    missing_guards = sorted(guard_names(baseline) - guard_names(fresh))
    for name in missing_guards:
        print(f"  MISSING GUARD {name}: in baseline guards.entries but "
              f"absent from {args.fresh}", file=sys.stderr)

    guards_ok = bool(fresh.get("guards", {}).get("all_ok", False))
    print(f"  guards.all_ok: {guards_ok}; "
          f"{len(regressions)} regression(s), "
          f"{len(improvements)} improvement(s) flagged, "
          f"{len(missing_guards)} guard(s) missing")
    for path, base, new, delta_pct in regressions:
        print(f"  REGRESSION {path}: {base:.3f} -> {new:.3f} "
              f"({delta_pct:+.1f}%)", file=sys.stderr)

    if args.history:
        entry = {
            "timestamp": datetime.datetime.now(datetime.timezone.utc)
                         .isoformat(timespec="seconds"),
            "baseline": args.baseline,
            "guards_ok": guards_ok,
            "metrics": {p: fresh_metrics[p] for p in HEADLINE
                        if p in fresh_metrics},
            "regressions": [p for p, *_ in regressions],
        }
        with open(args.history, "a") as f:
            f.write(json.dumps(entry, sort_keys=True) + "\n")
        print(f"  history: appended to {args.history}")

    if missing_guards:
        return 1
    if not guards_ok:
        return 1
    if args.strict and regressions:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
