#include "netbase/mac_address.h"

#include <cstdio>

namespace scent::net {
namespace {

std::optional<std::uint8_t> hex_nibble(char c) {
  if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
  if (c >= 'a' && c <= 'f') return static_cast<std::uint8_t>(c - 'a' + 10);
  if (c >= 'A' && c <= 'F') return static_cast<std::uint8_t>(c - 'A' + 10);
  return std::nullopt;
}

}  // namespace

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  // Exactly six two-digit hex groups separated by ':' or '-': length 17.
  if (text.size() != 17) return std::nullopt;
  std::uint64_t bits = 0;
  for (unsigned group = 0; group < 6; ++group) {
    const std::size_t at = group * 3;
    const auto hi = hex_nibble(text[at]);
    const auto lo = hex_nibble(text[at + 1]);
    if (!hi || !lo) return std::nullopt;
    if (group < 5) {
      const char sep = text[at + 2];
      if (sep != ':' && sep != '-') return std::nullopt;
    }
    bits = (bits << 8) | static_cast<std::uint64_t>((*hi << 4) | *lo);
  }
  return MacAddress{bits};
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", byte(0),
                byte(1), byte(2), byte(3), byte(4), byte(5));
  return buf;
}

std::string Oui::to_string() const {
  char buf[9];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x",
                static_cast<unsigned>((value_ >> 16) & 0xff),
                static_cast<unsigned>((value_ >> 8) & 0xff),
                static_cast<unsigned>(value_ & 0xff));
  return buf;
}

}  // namespace scent::net
