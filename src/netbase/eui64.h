// eui64.h - Modified EUI-64 interface-identifier codec (RFC 4291 App. A).
//
// This is the heart of the vulnerability the paper studies. Legacy SLAAC
// forms a 64-bit IID from a 48-bit MAC by
//   1. splitting the MAC between the 3rd and 4th bytes,
//   2. inserting 0xff 0xfe in the middle, and
//   3. flipping the Universal/Local bit (bit 1 of the first byte).
// The mapping is trivially reversible, so any EUI-64 IPv6 address reveals the
// interface's burned-in MAC — a static, globally unique identifier that
// survives both privacy-extension IID churn and provider prefix rotation.
#pragma once

#include <cstdint>
#include <optional>

#include "netbase/ipv6_address.h"
#include "netbase/mac_address.h"

namespace scent::net {

/// The two middle bytes 0xfffe that mark a MAC-derived EUI-64 IID,
/// positioned at bytes 3-4 of the 8-byte IID.
inline constexpr std::uint64_t kEui64Marker = 0x000000fffe000000ULL;
inline constexpr std::uint64_t kEui64MarkerMask = 0x000000ffff000000ULL;

/// Bit 1 of the IID's first byte: the inverted Universal/Local flag.
inline constexpr std::uint64_t kIidUniversalBit = 0x0200000000000000ULL;

/// Converts a MAC address to its modified EUI-64 interface identifier.
[[nodiscard]] constexpr std::uint64_t mac_to_eui64(MacAddress mac) noexcept {
  const std::uint64_t m = mac.bits();
  const std::uint64_t top = (m >> 24) & 0xffffffULL;  // first three bytes
  const std::uint64_t bottom = m & 0xffffffULL;       // last three bytes
  const std::uint64_t iid = (top << 40) | kEui64Marker | bottom;
  return iid ^ kIidUniversalBit;  // flip U/L
}

/// True if the 64-bit IID has the ff:fe marker of a MAC-derived EUI-64.
///
/// A purely random privacy-extension IID collides with the marker with
/// probability 2^-16; the paper (and [27]) accept that false-positive rate,
/// and so do we. Callers needing more confidence cross-check the recovered
/// OUI against the vendor registry.
[[nodiscard]] constexpr bool is_eui64_iid(std::uint64_t iid) noexcept {
  return (iid & kEui64MarkerMask) == kEui64Marker;
}

/// True if the address's lower 64 bits form an EUI-64 IID.
[[nodiscard]] constexpr bool is_eui64(Ipv6Address a) noexcept {
  return is_eui64_iid(a.iid());
}

/// Recovers the embedded MAC from an EUI-64 IID, or nullopt if the IID does
/// not carry the ff:fe marker.
[[nodiscard]] constexpr std::optional<MacAddress> eui64_to_mac(
    std::uint64_t iid) noexcept {
  if (!is_eui64_iid(iid)) return std::nullopt;
  const std::uint64_t flipped = iid ^ kIidUniversalBit;
  const std::uint64_t top = (flipped >> 40) & 0xffffffULL;
  const std::uint64_t bottom = flipped & 0xffffffULL;
  return MacAddress{(top << 24) | bottom};
}

/// Recovers the embedded MAC from an address, or nullopt.
[[nodiscard]] constexpr std::optional<MacAddress> embedded_mac(
    Ipv6Address a) noexcept {
  return eui64_to_mac(a.iid());
}

}  // namespace scent::net
