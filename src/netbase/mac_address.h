// mac_address.h - IEEE 802 MAC address value type.
//
// EUI-64 SLAAC embeds the CPE's 48-bit hardware MAC into its IPv6 address;
// recovering the MAC (and through it the manufacturer OUI) is what makes the
// paper's per-vendor homogeneity analysis (§5.1) and the tracking identifier
// itself possible.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace scent::net {

/// 24-bit Organizationally Unique Identifier: the top three bytes of a MAC,
/// assigned by the IEEE to a manufacturer.
class Oui {
 public:
  constexpr Oui() noexcept = default;
  explicit constexpr Oui(std::uint32_t value) noexcept
      : value_(value & 0xffffffU) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept {
    return value_;
  }

  /// "aa:bb:cc" text form.
  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const Oui&, const Oui&) = default;
  friend constexpr std::strong_ordering operator<=>(const Oui&,
                                                    const Oui&) = default;

 private:
  std::uint32_t value_ = 0;
};

/// 48-bit MAC address stored as a uint64 (top 16 bits zero).
class MacAddress {
 public:
  constexpr MacAddress() noexcept = default;
  explicit constexpr MacAddress(std::uint64_t bits) noexcept
      : bits_(bits & 0xffffffffffffULL) {}

  constexpr MacAddress(std::uint8_t b0, std::uint8_t b1, std::uint8_t b2,
                       std::uint8_t b3, std::uint8_t b4,
                       std::uint8_t b5) noexcept
      : bits_((static_cast<std::uint64_t>(b0) << 40) |
              (static_cast<std::uint64_t>(b1) << 32) |
              (static_cast<std::uint64_t>(b2) << 24) |
              (static_cast<std::uint64_t>(b3) << 16) |
              (static_cast<std::uint64_t>(b4) << 8) |
              static_cast<std::uint64_t>(b5)) {}

  /// Parses "aa:bb:cc:dd:ee:ff" (also accepts '-' separators).
  [[nodiscard]] static std::optional<MacAddress> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint64_t bits() const noexcept { return bits_; }

  [[nodiscard]] constexpr std::uint8_t byte(unsigned n) const noexcept {
    return static_cast<std::uint8_t>((bits_ >> ((5 - (n % 6)) * 8)) & 0xff);
  }

  [[nodiscard]] constexpr Oui oui() const noexcept {
    return Oui{static_cast<std::uint32_t>(bits_ >> 24)};
  }

  /// Universal/Local bit (bit 1 of the first byte). 0 = universally
  /// administered (burned-in), 1 = locally administered.
  [[nodiscard]] constexpr bool locally_administered() const noexcept {
    return (bits_ & 0x020000000000ULL) != 0;
  }

  /// Individual/Group bit (bit 0 of the first byte). 1 = multicast.
  [[nodiscard]] constexpr bool multicast() const noexcept {
    return (bits_ & 0x010000000000ULL) != 0;
  }

  /// "aa:bb:cc:dd:ee:ff" lowercase text form.
  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const MacAddress&,
                                   const MacAddress&) = default;
  friend constexpr std::strong_ordering operator<=>(const MacAddress&,
                                                    const MacAddress&) =
      default;

 private:
  std::uint64_t bits_ = 0;
};

struct MacAddressHash {
  [[nodiscard]] std::size_t operator()(const MacAddress& m) const noexcept {
    std::uint64_t x = m.bits() * 0x9e3779b97f4a7c15ULL;
    x ^= x >> 32;
    return static_cast<std::size_t>(x);
  }
};

struct OuiHash {
  [[nodiscard]] std::size_t operator()(const Oui& o) const noexcept {
    return static_cast<std::size_t>(o.value()) * 0x9e3779b97f4a7c15ULL >> 16;
  }
};

}  // namespace scent::net
