// uint128.h - portable unsigned 128-bit integer for IPv6 address arithmetic.
//
// Part of scent, a reproduction of "Follow the Scent: Defeating IPv6 Prefix
// Rotation Privacy" (IMC 2021). IPv6 addresses are 128-bit quantities and the
// paper's inference algorithms (Algorithms 1 and 2) compute numeric distances
// between addresses; this type provides the exact-width arithmetic they need
// without relying on compiler-specific __int128.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>

namespace scent::net {

/// Unsigned 128-bit integer with wrapping arithmetic semantics, stored as a
/// (hi, lo) pair of 64-bit limbs. All operations are constexpr so prefix
/// masks and well-known constants can be computed at compile time.
class Uint128 {
 public:
  constexpr Uint128() noexcept = default;
  constexpr Uint128(std::uint64_t hi, std::uint64_t lo) noexcept
      : hi_(hi), lo_(lo) {}
  // NOLINTNEXTLINE(google-explicit-constructor): intentional promotion from u64.
  constexpr Uint128(std::uint64_t lo) noexcept : hi_(0), lo_(lo) {}

  [[nodiscard]] constexpr std::uint64_t hi() const noexcept { return hi_; }
  [[nodiscard]] constexpr std::uint64_t lo() const noexcept { return lo_; }

  friend constexpr bool operator==(const Uint128&, const Uint128&) = default;
  friend constexpr std::strong_ordering operator<=>(const Uint128& a,
                                                    const Uint128& b) noexcept {
    if (a.hi_ != b.hi_) return a.hi_ <=> b.hi_;
    return a.lo_ <=> b.lo_;
  }

  constexpr Uint128& operator+=(const Uint128& o) noexcept {
    const std::uint64_t lo = lo_ + o.lo_;
    hi_ += o.hi_ + static_cast<std::uint64_t>(lo < lo_);
    lo_ = lo;
    return *this;
  }
  constexpr Uint128& operator-=(const Uint128& o) noexcept {
    const std::uint64_t lo = lo_ - o.lo_;
    hi_ -= o.hi_ + static_cast<std::uint64_t>(lo > lo_);
    lo_ = lo;
    return *this;
  }
  constexpr Uint128& operator&=(const Uint128& o) noexcept {
    hi_ &= o.hi_;
    lo_ &= o.lo_;
    return *this;
  }
  constexpr Uint128& operator|=(const Uint128& o) noexcept {
    hi_ |= o.hi_;
    lo_ |= o.lo_;
    return *this;
  }
  constexpr Uint128& operator^=(const Uint128& o) noexcept {
    hi_ ^= o.hi_;
    lo_ ^= o.lo_;
    return *this;
  }

  friend constexpr Uint128 operator+(Uint128 a, const Uint128& b) noexcept {
    return a += b;
  }
  friend constexpr Uint128 operator-(Uint128 a, const Uint128& b) noexcept {
    return a -= b;
  }
  friend constexpr Uint128 operator&(Uint128 a, const Uint128& b) noexcept {
    return a &= b;
  }
  friend constexpr Uint128 operator|(Uint128 a, const Uint128& b) noexcept {
    return a |= b;
  }
  friend constexpr Uint128 operator^(Uint128 a, const Uint128& b) noexcept {
    return a ^= b;
  }
  friend constexpr Uint128 operator~(const Uint128& a) noexcept {
    return {~a.hi_, ~a.lo_};
  }

  friend constexpr Uint128 operator<<(const Uint128& a, unsigned n) noexcept {
    if (n == 0) return a;
    if (n >= 128) return {};
    if (n >= 64) return {a.lo_ << (n - 64), 0};
    return {(a.hi_ << n) | (a.lo_ >> (64 - n)), a.lo_ << n};
  }
  friend constexpr Uint128 operator>>(const Uint128& a, unsigned n) noexcept {
    if (n == 0) return a;
    if (n >= 128) return {};
    if (n >= 64) return {0, a.hi_ >> (n - 64)};
    return {a.hi_ >> n, (a.lo_ >> n) | (a.hi_ << (64 - n))};
  }
  constexpr Uint128& operator<<=(unsigned n) noexcept {
    return *this = *this << n;
  }
  constexpr Uint128& operator>>=(unsigned n) noexcept {
    return *this = *this >> n;
  }

  constexpr Uint128& operator++() noexcept { return *this += Uint128{1}; }
  constexpr Uint128& operator--() noexcept { return *this -= Uint128{1}; }

  /// Schoolbook 64x64 -> 128 style multiply, wrapping at 2^128.
  friend constexpr Uint128 operator*(const Uint128& a,
                                     const Uint128& b) noexcept {
    const std::uint64_t a_lo_lo = a.lo_ & 0xffffffffULL;
    const std::uint64_t a_lo_hi = a.lo_ >> 32;
    const std::uint64_t b_lo_lo = b.lo_ & 0xffffffffULL;
    const std::uint64_t b_lo_hi = b.lo_ >> 32;

    const std::uint64_t p0 = a_lo_lo * b_lo_lo;
    const std::uint64_t p1 = a_lo_lo * b_lo_hi;
    const std::uint64_t p2 = a_lo_hi * b_lo_lo;
    const std::uint64_t p3 = a_lo_hi * b_lo_hi;

    const std::uint64_t mid = (p0 >> 32) + (p1 & 0xffffffffULL) +
                              (p2 & 0xffffffffULL);
    const std::uint64_t lo = (mid << 32) | (p0 & 0xffffffffULL);
    const std::uint64_t carry_hi = p3 + (p1 >> 32) + (p2 >> 32) + (mid >> 32);

    const std::uint64_t hi = carry_hi + a.hi_ * b.lo_ + a.lo_ * b.hi_;
    return {hi, lo};
  }

  /// Value of bit `n` where bit 0 is the least significant bit.
  [[nodiscard]] constexpr bool bit(unsigned n) const noexcept {
    if (n >= 128) return false;
    if (n >= 64) return ((hi_ >> (n - 64)) & 1U) != 0;
    return ((lo_ >> n) & 1U) != 0;
  }

  /// Index (0 = MSB) of the highest set bit, or 128 if the value is zero.
  /// Mirrors std::countl_zero semantics extended to 128 bits.
  [[nodiscard]] constexpr unsigned countl_zero() const noexcept {
    if (hi_ != 0) return count_leading(hi_);
    if (lo_ != 0) return 64 + count_leading(lo_);
    return 128;
  }

  /// floor(log2(v)), with log2(0) defined as 0 for convenience in prefix-size
  /// math (the paper's Algorithm 1/2 treat a zero address range as "/64",
  /// i.e. a distance of zero bits).
  [[nodiscard]] constexpr unsigned floor_log2() const noexcept {
    const unsigned clz = countl_zero();
    return clz >= 128 ? 0 : 127 - clz;
  }

  /// ceil(log2(v)); ceil_log2(0) == 0 and ceil_log2(1) == 0.
  [[nodiscard]] constexpr unsigned ceil_log2() const noexcept {
    if (*this <= Uint128{1}) return 0;
    const Uint128 down = *this - Uint128{1};
    return down.floor_log2() + 1;
  }

  [[nodiscard]] static constexpr Uint128 max() noexcept {
    return {std::numeric_limits<std::uint64_t>::max(),
            std::numeric_limits<std::uint64_t>::max()};
  }

 private:
  static constexpr unsigned count_leading(std::uint64_t v) noexcept {
    unsigned n = 0;
    for (std::uint64_t mask = 0x8000000000000000ULL; mask != 0; mask >>= 1) {
      if ((v & mask) != 0) return n;
      ++n;
    }
    return 64;
  }

  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

struct Uint128DivResult {
  Uint128 quotient;
  Uint128 remainder;
};

/// Restoring binary long division. O(128) shifts; this type is used for
/// address bookkeeping, not inner loops, so simplicity wins over speed.
/// Division by zero yields {0, 0}; callers assert nonzero divisors.
[[nodiscard]] constexpr Uint128DivResult div_mod(const Uint128& num,
                                                 const Uint128& den) noexcept {
  Uint128DivResult r{};
  if (den == Uint128{}) return r;
  for (int bit = 127; bit >= 0; --bit) {
    r.remainder <<= 1;
    if (num.bit(static_cast<unsigned>(bit))) {
      r.remainder |= Uint128{1};
    }
    if (r.remainder >= den) {
      r.remainder -= den;
      r.quotient |= Uint128{1} << static_cast<unsigned>(bit);
    }
  }
  return r;
}

[[nodiscard]] constexpr Uint128 operator/(const Uint128& a,
                                          const Uint128& b) noexcept {
  return div_mod(a, b).quotient;
}

[[nodiscard]] constexpr Uint128 operator%(const Uint128& a,
                                          const Uint128& b) noexcept {
  return div_mod(a, b).remainder;
}

}  // namespace scent::net
