#include "netbase/prefix.h"

#include <charconv>

namespace scent::net {

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const auto slash = text.rfind('/');
  if (slash == std::string_view::npos || slash + 1 >= text.size()) {
    return std::nullopt;
  }
  const auto addr = Ipv6Address::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;

  const std::string_view len_text = text.substr(slash + 1);
  unsigned length = 0;
  const auto [ptr, ec] = std::from_chars(
      len_text.data(), len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size() ||
      length > 128) {
    return std::nullopt;
  }
  return Prefix{*addr, length};
}

std::string Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace scent::net
