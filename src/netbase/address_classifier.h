// address_classifier.h - heuristic classification of IPv6 IIDs.
//
// The campaign observes response addresses of several flavors: MAC-derived
// EUI-64 (the trackable kind), low-byte statically configured infrastructure
// addresses (::1, ::2:1, ...), and high-entropy privacy-extension IIDs.
// Classification drives both the pipeline (only EUI-64 responses feed the
// inference algorithms) and the §4 funnel accounting (14.8M of 19.4M
// discovered addresses were EUI-64).
#pragma once

#include <cstdint>
#include <string_view>

#include "netbase/eui64.h"
#include "netbase/ipv6_address.h"

namespace scent::net {

enum class IidClass : std::uint8_t {
  kEui64,     ///< ff:fe marker; MAC-derived, static, trackable.
  kLowByte,   ///< Small integer IID; typical of managed infrastructure.
  kEmbedded,  ///< IPv4-ish or word-pattern IID (e.g. ::dead:beef).
  kRandom,    ///< High-entropy; consistent with RFC 4941 privacy extensions.
};

[[nodiscard]] constexpr std::string_view to_string(IidClass c) noexcept {
  switch (c) {
    case IidClass::kEui64: return "eui64";
    case IidClass::kLowByte: return "low-byte";
    case IidClass::kEmbedded: return "embedded";
    case IidClass::kRandom: return "random";
  }
  return "unknown";
}

/// Number of one-bits in the IID; random IIDs cluster near 32.
[[nodiscard]] constexpr unsigned popcount64(std::uint64_t v) noexcept {
  unsigned n = 0;
  while (v != 0) {
    v &= v - 1;
    ++n;
  }
  return n;
}

/// Classifies a 64-bit interface identifier.
[[nodiscard]] constexpr IidClass classify_iid(std::uint64_t iid) noexcept {
  if (is_eui64_iid(iid)) return IidClass::kEui64;
  // Low-byte: all but the bottom 16 bits are zero (covers ::1 ... ::ffff).
  if ((iid & 0xffffffffffff0000ULL) == 0) return IidClass::kLowByte;
  // Embedded patterns: bytes drawn from a tiny alphabet of nibble words.
  // Heuristic: at most 4 distinct nonzero nibbles suggests a hand-crafted
  // value such as ::cafe:cafe or ::2:2:2:2; a uniformly random IID has ~10
  // distinct nonzero nibbles in expectation and falls below 5 with
  // negligible probability.
  unsigned distinct = 0;
  std::uint16_t seen = 0;
  for (unsigned shift = 0; shift < 64; shift += 4) {
    const auto nib = static_cast<unsigned>((iid >> shift) & 0xf);
    if (nib == 0) continue;
    if ((seen & (1U << nib)) == 0) {
      seen = static_cast<std::uint16_t>(seen | (1U << nib));
      ++distinct;
    }
  }
  if (distinct <= 4) return IidClass::kEmbedded;
  return IidClass::kRandom;
}

[[nodiscard]] constexpr IidClass classify(Ipv6Address a) noexcept {
  return classify_iid(a.iid());
}

}  // namespace scent::net
