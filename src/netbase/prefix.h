// prefix.h - IPv6 prefix (CIDR) value type.
//
// Everything in the paper is phrased in prefixes: BGP-advertised /32s,
// candidate /48s, customer allocations between /48 and /64, rotation pools
// such as AS8881's /46, and probed /64 subnets. This type provides exact
// containment, enumeration of sub-prefixes, and canonical formatting.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "netbase/ipv6_address.h"
#include "netbase/uint128.h"

namespace scent::net {

/// An IPv6 prefix: a base address plus a length in [0, 128]. The base is
/// always stored masked to the prefix length, so equal prefixes compare
/// equal regardless of how they were constructed.
class Prefix {
 public:
  constexpr Prefix() noexcept = default;

  /// Construct from any address within the prefix; host bits are cleared.
  constexpr Prefix(Ipv6Address addr, unsigned length) noexcept
      : length_(length > 128 ? 128 : length),
        base_(Ipv6Address{addr.bits() & mask(length_)}) {}

  /// Parses "2001:db8::/32" text form.
  [[nodiscard]] static std::optional<Prefix> parse(std::string_view text);

  [[nodiscard]] constexpr Ipv6Address base() const noexcept { return base_; }
  [[nodiscard]] constexpr unsigned length() const noexcept { return length_; }

  /// Network mask for a given prefix length: `length` one-bits from the top.
  [[nodiscard]] static constexpr Uint128 mask(unsigned length) noexcept {
    if (length == 0) return Uint128{};
    if (length >= 128) return Uint128::max();
    return Uint128::max() << (128 - length);
  }

  [[nodiscard]] constexpr bool contains(Ipv6Address a) const noexcept {
    return (a.bits() & mask(length_)) == base_.bits();
  }

  [[nodiscard]] constexpr bool contains(const Prefix& p) const noexcept {
    return p.length_ >= length_ && contains(p.base_);
  }

  /// Number of sub-prefixes of `sub_length` inside this prefix, as a 128-bit
  /// count (a /0 contains 2^64 /64s, which overflows uint64_t).
  [[nodiscard]] constexpr Uint128 count_subnets(
      unsigned sub_length) const noexcept {
    if (sub_length <= length_) return Uint128{1};
    const unsigned bits = sub_length - length_;
    if (bits >= 128) return Uint128{};  // not representable; callers clamp.
    return Uint128{1} << bits;
  }

  /// The `index`-th sub-prefix of `sub_length` within this prefix (index 0
  /// is the prefix base). The caller guarantees index < count_subnets().
  [[nodiscard]] constexpr Prefix subnet(unsigned sub_length,
                                        Uint128 index) const noexcept {
    const unsigned shift = 128 - (sub_length > 128 ? 128 : sub_length);
    return Prefix{Ipv6Address{base_.bits() | (index << shift)}, sub_length};
  }

  /// Index of the /`sub_length` containing `a` within this prefix.
  [[nodiscard]] constexpr Uint128 subnet_index(Ipv6Address a,
                                               unsigned sub_length)
      const noexcept {
    const Uint128 offset = (a.bits() & mask(sub_length)) - base_.bits();
    return offset >> (128 - sub_length);
  }

  /// The first address of the prefix (== base()).
  [[nodiscard]] constexpr Ipv6Address first() const noexcept { return base_; }

  /// The last address of the prefix.
  [[nodiscard]] constexpr Ipv6Address last() const noexcept {
    return Ipv6Address{base_.bits() | ~mask(length_)};
  }

  /// The enclosing prefix of the given shorter length.
  [[nodiscard]] constexpr Prefix parent(unsigned new_length) const noexcept {
    return Prefix{base_, new_length < length_ ? new_length : length_};
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const Prefix&, const Prefix&) = default;
  friend constexpr std::strong_ordering operator<=>(
      const Prefix& a, const Prefix& b) noexcept {
    if (auto c = a.base_ <=> b.base_; c != std::strong_ordering::equal) {
      return c;
    }
    return a.length_ <=> b.length_;
  }

 private:
  unsigned length_ = 0;
  Ipv6Address base_{};
};

struct PrefixHash {
  [[nodiscard]] std::size_t operator()(const Prefix& p) const noexcept {
    return Ipv6AddressHash{}(p.base()) ^
           (static_cast<std::size_t>(p.length()) * 0x9e3779b97f4a7c15ULL);
  }
};

}  // namespace scent::net
