// ipv6_address.h - value type for 128-bit IPv6 addresses.
//
// The measurement pipeline manipulates addresses constantly: splitting them
// into the 64-bit routing prefix and the 64-bit interface identifier (IID),
// computing numeric distances between periphery prefixes (Algorithms 1 and 2
// of the paper), and rendering them in RFC 5952 canonical text form for
// reports. This header provides that vocabulary type.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "netbase/uint128.h"

namespace scent::net {

/// An IPv6 address as an immutable 128-bit value.
///
/// The upper 64 bits are the (sub)network prefix assigned by the provider;
/// the lower 64 bits are the interface identifier (IID). Prefix rotation
/// changes the upper bits while legacy EUI-64 CPE keep the lower bits fixed —
/// the asymmetry this library exploits.
class Ipv6Address {
 public:
  constexpr Ipv6Address() noexcept = default;
  explicit constexpr Ipv6Address(Uint128 bits) noexcept : bits_(bits) {}
  constexpr Ipv6Address(std::uint64_t prefix_bits,
                        std::uint64_t iid_bits) noexcept
      : bits_(prefix_bits, iid_bits) {}

  /// Parses RFC 4291 text form, including "::" compression and full form.
  /// Returns std::nullopt on malformed input (never throws: parse failures
  /// are expected data, e.g. when ingesting response logs).
  [[nodiscard]] static std::optional<Ipv6Address> parse(std::string_view text);

  /// Builds an address from 16 network-order bytes.
  [[nodiscard]] static constexpr Ipv6Address from_bytes(
      const std::array<std::uint8_t, 16>& bytes) noexcept {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    for (int i = 0; i < 8; ++i) {
      hi = (hi << 8) | bytes[static_cast<std::size_t>(i)];
      lo = (lo << 8) | bytes[static_cast<std::size_t>(i + 8)];
    }
    return Ipv6Address{Uint128{hi, lo}};
  }

  /// Serializes to 16 network-order bytes.
  [[nodiscard]] constexpr std::array<std::uint8_t, 16> to_bytes()
      const noexcept {
    std::array<std::uint8_t, 16> out{};
    std::uint64_t hi = bits_.hi();
    std::uint64_t lo = bits_.lo();
    for (int i = 7; i >= 0; --i) {
      out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(hi & 0xff);
      out[static_cast<std::size_t>(i + 8)] =
          static_cast<std::uint8_t>(lo & 0xff);
      hi >>= 8;
      lo >>= 8;
    }
    return out;
  }

  [[nodiscard]] constexpr Uint128 bits() const noexcept { return bits_; }

  /// Upper 64 bits: the routed /64 network the address lives in.
  [[nodiscard]] constexpr std::uint64_t network() const noexcept {
    return bits_.hi();
  }

  /// Lower 64 bits: the interface identifier.
  [[nodiscard]] constexpr std::uint64_t iid() const noexcept {
    return bits_.lo();
  }

  /// Replaces the IID, keeping the /64 network. Used when generating probe
  /// targets: "a random IID inside this customer subnet".
  [[nodiscard]] constexpr Ipv6Address with_iid(
      std::uint64_t iid_bits) const noexcept {
    return Ipv6Address{bits_.hi(), iid_bits};
  }

  /// Replaces the /64 network, keeping the IID. Models what a prefix
  /// rotation does to a legacy EUI-64 CPE address.
  [[nodiscard]] constexpr Ipv6Address with_network(
      std::uint64_t network_bits) const noexcept {
    return Ipv6Address{network_bits, bits_.lo()};
  }

  /// The nth byte of the address, n in [0, 16), network order. Figure 3 of
  /// the paper plots the 7th and 8th bytes of probed addresses.
  [[nodiscard]] constexpr std::uint8_t byte(unsigned n) const noexcept {
    const std::uint64_t limb = n < 8 ? bits_.hi() : bits_.lo();
    const unsigned pos = n % 8;
    return static_cast<std::uint8_t>((limb >> ((7 - pos) * 8)) & 0xff);
  }

  /// RFC 5952 canonical text form (lowercase hex, longest zero run
  /// compressed, ties broken towards the first run).
  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const Ipv6Address&,
                                   const Ipv6Address&) = default;
  friend constexpr std::strong_ordering operator<=>(
      const Ipv6Address& a, const Ipv6Address& b) noexcept {
    return a.bits_ <=> b.bits_;
  }

 private:
  Uint128 bits_{};
};

/// Hash functor so addresses can key unordered containers (observation
/// stores index by response address and by IID).
struct Ipv6AddressHash {
  [[nodiscard]] std::size_t operator()(const Ipv6Address& a) const noexcept {
    // splitmix64-style mix of both limbs.
    std::uint64_t x = a.bits().hi() ^ (a.bits().lo() * 0x9e3779b97f4a7c15ULL);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

}  // namespace scent::net
