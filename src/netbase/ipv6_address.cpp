#include "netbase/ipv6_address.h"

#include <array>
#include <charconv>
#include <cstdio>

namespace scent::net {
namespace {

// Parses one hex group (1-4 digits) from `text` starting at `pos`.
// Returns the value and advances pos, or returns nullopt.
std::optional<std::uint16_t> parse_group(std::string_view text,
                                         std::size_t& pos) {
  std::uint32_t value = 0;
  std::size_t digits = 0;
  while (pos < text.size() && digits < 4) {
    const char c = text[pos];
    std::uint32_t d = 0;
    if (c >= '0' && c <= '9') {
      d = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      d = static_cast<std::uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      d = static_cast<std::uint32_t>(c - 'A' + 10);
    } else {
      break;
    }
    value = (value << 4) | d;
    ++pos;
    ++digits;
  }
  if (digits == 0) return std::nullopt;
  return static_cast<std::uint16_t>(value);
}

}  // namespace

std::optional<Ipv6Address> Ipv6Address::parse(std::string_view text) {
  // Reject embedded-IPv4 and zone-id forms: they never occur in this
  // pipeline's data and keeping the grammar small keeps it verifiable.
  if (text.empty() || text.find('.') != std::string_view::npos ||
      text.find('%') != std::string_view::npos) {
    return std::nullopt;
  }

  std::array<std::uint16_t, 8> head{};
  std::array<std::uint16_t, 8> tail{};
  std::size_t n_head = 0;
  std::size_t n_tail = 0;
  bool saw_gap = false;

  std::size_t pos = 0;
  if (text.size() >= 2 && text[0] == ':' && text[1] == ':') {
    saw_gap = true;
    pos = 2;
  } else if (text[0] == ':') {
    return std::nullopt;  // single leading colon
  }

  while (pos < text.size()) {
    auto group = parse_group(text, pos);
    if (!group) return std::nullopt;
    if (!saw_gap) {
      if (n_head >= 8) return std::nullopt;
      head[n_head++] = *group;
    } else {
      if (n_head + n_tail >= 7) return std::nullopt;  // gap covers >= 1 group
      tail[n_tail++] = *group;
    }

    if (pos == text.size()) break;
    if (text[pos] != ':') return std::nullopt;
    ++pos;
    if (pos < text.size() && text[pos] == ':') {
      if (saw_gap) return std::nullopt;  // at most one "::"
      saw_gap = true;
      ++pos;
      if (pos == text.size()) break;  // trailing "::"
    } else if (pos == text.size()) {
      return std::nullopt;  // single trailing colon
    }
  }

  std::array<std::uint16_t, 8> groups{};
  if (saw_gap) {
    if (n_head + n_tail >= 8) return std::nullopt;  // "::" must elide >= 1
    for (std::size_t i = 0; i < n_head; ++i) groups[i] = head[i];
    for (std::size_t i = 0; i < n_tail; ++i) {
      groups[8 - n_tail + i] = tail[i];
    }
  } else {
    if (n_head != 8) return std::nullopt;
    groups = head;
  }

  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  for (std::size_t i = 0; i < 4; ++i) hi = (hi << 16) | groups[i];
  for (std::size_t i = 4; i < 8; ++i) lo = (lo << 16) | groups[i];
  return Ipv6Address{Uint128{hi, lo}};
}

std::string Ipv6Address::to_string() const {
  std::array<std::uint16_t, 8> groups{};
  for (std::size_t i = 0; i < 4; ++i) {
    groups[i] = static_cast<std::uint16_t>(bits_.hi() >> ((3 - i) * 16));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    groups[4 + i] = static_cast<std::uint16_t>(bits_.lo() >> ((3 - i) * 16));
  }

  // RFC 5952 s4.2: compress the longest run of zero groups (length >= 2);
  // on ties, the first run wins.
  int best_start = -1;
  int best_len = 0;
  int run_start = -1;
  int run_len = 0;
  for (int i = 0; i < 8; ++i) {
    if (groups[static_cast<std::size_t>(i)] == 0) {
      if (run_start < 0) run_start = i;
      ++run_len;
      if (run_len > best_len) {
        best_len = run_len;
        best_start = run_start;
      }
    } else {
      run_start = -1;
      run_len = 0;
    }
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  out.reserve(40);
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      // The group before the gap deliberately did not emit its separator,
      // so "::" here yields exactly two colons in every position.
      out += "::";
      i += best_len;
      if (i >= 8) break;
      continue;
    }
    const int written = std::snprintf(buf, sizeof buf, "%x",
                                      groups[static_cast<std::size_t>(i)]);
    out.append(buf, static_cast<std::size_t>(written));
    ++i;
    if (i < 8 && i != best_start) out += ':';
  }
  if (out.empty()) out = "::";
  return out;
}

}  // namespace scent::net
