// scenario.h - declarative construction of simulated Internets.
//
// Tests, examples, and benches all need worlds with controlled properties:
// a provider that allocates /56s and rotates daily with a stride (AS8881
// Versatel-style), one that allocates /60s and never rotates (BH
// Telecom-style), an AS whose CPE fleet is 99.9% one vendor (NetCologne /
// AVM), pathological devices sharing a MAC across continents, and so on.
// WorldBuilder turns compact specs into a fully wired sim::Internet;
// paper_world() assembles the full ecosystem the paper measured, scaled to
// laptop size while preserving every distributional shape.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netbase/mac_address.h"
#include "netbase/prefix.h"
#include "sim/internet.h"

namespace scent::sim {

/// A manufacturer's share of a provider's CPE fleet. OUI blocks are drawn
/// from scent::oui::builtin_registry().
struct VendorShare {
  net::Oui oui;
  double weight = 1.0;
};

/// How a pool's devices are spread over its slots initially.
enum class Placement : std::uint8_t {
  kAuto,        ///< Contiguous for stride rotation, scattered otherwise.
  kContiguous,  ///< Slots 0..n-1: a sequential DHCPv6 pool pointer.
  kScattered,   ///< Pseudorandom distinct slots (keyed permutation).
};

/// One rotation pool to carve out of the provider's advertisement.
struct PoolSpec {
  unsigned pool_length = 48;        ///< Pool prefix length (e.g. /46, /48).
  unsigned allocation_length = 56;  ///< Customer allocation size, 48..64.
  RotationPolicy rotation;
  std::size_t device_count = 128;
  Placement placement = Placement::kAuto;
  /// Fraction of the slot range devices may occupy; the paper's Figure 3c
  /// shows a /48 whose upper quarter is unallocated (slot_span 0.75).
  double slot_span = 1.0;
};

/// One provider (autonomous system).
struct ProviderSpec {
  routing::Asn asn = 0;
  std::string name;
  std::string country;
  net::Prefix advertisement;  ///< BGP-announced covering prefix (e.g. /32).
  std::vector<PoolSpec> pools;
  std::vector<VendorShare> vendors;

  /// Fraction of devices using legacy EUI-64 SLAAC; the rest use privacy
  /// addressing (plus a sliver of static low-byte, below).
  double eui64_fraction = 0.9;
  double low_byte_fraction = 0.02;

  /// Fraction of CPE that silently drop probes to nonexistent hosts.
  double silent_fraction = 0.05;

  /// Fraction of devices with bounded service intervals (customers joining
  /// or leaving, overnight power-offs). Their appearance/disappearance
  /// between snapshots is what makes non-rotating networks occasionally
  /// register as "rotating" in §4.3 — the false positives whose /64
  /// inferred pools dominate the lower half of the paper's Figure 7.
  double churn_fraction = 0.0;

  unsigned path_length = 3;
  double loss_rate = 0.0;
  RateLimit rate_limit{10000.0, 10000.0};
};

/// Ground-truth handle to a specific simulated device, used by tests and the
/// tracking case study to verify what the measurement side inferred.
struct DeviceHandle {
  std::size_t provider_index = 0;
  std::size_t pool_index = 0;
  std::size_t device_index = 0;
  net::MacAddress mac;
};

class WorldBuilder {
 public:
  explicit WorldBuilder(std::uint64_t seed) : rng_(seed), seed_(seed) {}

  /// Instantiates a provider spec: carves pools from the advertisement,
  /// mints devices with vendor-appropriate unique MACs, spreads them over
  /// pseudorandom distinct slots. Returns the provider's index.
  std::size_t add_provider(const ProviderSpec& spec);

  /// Pathology §5.5: plants `copies` devices that all share `mac`, one per
  /// listed provider (round-robin), each in that provider's first pool.
  /// Models vendor MAC reuse and the all-zero default MAC.
  void plant_shared_mac(net::MacAddress mac,
                        const std::vector<std::size_t>& provider_indices,
                        std::size_t copies);

  /// Pathology §5.5 / Figure 12: a customer switching providers. Creates an
  /// EUI-64 device active in `from` until `switch_time` and a device with
  /// the same MAC active in `to` afterwards. Returns the MAC used.
  net::MacAddress plant_provider_switch(std::size_t from, std::size_t to,
                                        TimePoint switch_time);

  /// Devices created so far for a provider (insertion order).
  [[nodiscard]] const std::vector<DeviceHandle>& devices_of(
      std::size_t provider_index) const {
    return handles_.at(provider_index);
  }

  [[nodiscard]] Internet& internet() noexcept { return internet_; }

  /// Finalizes and releases the world.
  [[nodiscard]] Internet take() { return std::move(internet_); }

 private:
  net::MacAddress mint_mac(net::Oui oui);
  net::Oui pick_vendor(const std::vector<VendorShare>& vendors, Rng& rng);

  /// Slot-allocation state per pool, retained so pathology helpers can keep
  /// minting collision-free slots after the bulk population is placed.
  struct MintState {
    FeistelPermutation perm;
    std::uint64_t next_ordinal = 0;
    bool contiguous = false;

    std::uint64_t next_slot();
  };

  Internet internet_;
  Rng rng_;
  std::uint64_t seed_;
  DeviceId next_device_id_ = 1;
  std::unordered_map<std::uint32_t, std::uint32_t> oui_counters_;
  std::unordered_map<std::size_t, std::vector<DeviceHandle>> handles_;
  std::unordered_map<std::uint64_t, MintState> mint_state_;
};

/// Knobs for paper_world(); defaults reproduce the paper's distributional
/// shapes at a scale that runs in seconds.
struct PaperWorldOptions {
  std::uint64_t seed = 0x5EED0001;
  std::size_t tail_as_count = 96;  ///< Generated small ASes (paper: "96 other ASNs").
  double scale = 1.0;              ///< Multiplier on all device populations.
  std::size_t devices_per_tail_pool = 240;
  std::size_t versatel_pool_count = 10;  ///< Drives its Table-1 /48 dominance.
  double tail_churn = 0.22;  ///< Service churn in tail ASes (Fig 7's noise).
  bool inject_pathologies = true;
};

/// The named providers the paper discusses, in construction order.
struct PaperWorld {
  Internet internet;
  std::size_t versatel = 0;    ///< AS8881, DE: /46 stride-rotating pools.
  std::size_t dtag = 0;        ///< AS3320, DE (2003:e2::/32 in Fig 12).
  std::size_t netcologne = 0;  ///< AS8422, DE: 99.98% AVM fleet.
  std::size_t viettel = 0;     ///< AS7552, VN: 99.6% ZTE fleet.
  std::size_t entel = 0;       ///< Bolivia: /56 allocations (Fig 3a).
  std::size_t bhtelecom = 0;   ///< AS9146, BA: /60 allocations (Fig 3b).
  std::size_t starcat = 0;     ///< JP: /64 allocations (Fig 3c).
  std::size_t dense64 = 0;     ///< CN: dense /64 allocations *with* rotation
                               ///< (the Fig 5a ~30% /64 share).
  std::size_t ote = 0;         ///< AS6799, GR.
  std::vector<std::size_t> tail;  ///< Generated small ASes.

  /// MACs involved in injected pathologies, for validation.
  net::MacAddress reused_mac;          ///< Seen in several ASes daily (Fig 11).
  net::MacAddress default_mac;         ///< 00:00:00:00:00:00 clones.
  net::MacAddress switcher_ab;         ///< Versatel -> DTAG (Fig 12).
  net::MacAddress switcher_ba;         ///< DTAG -> Versatel (Fig 12).
};

/// Builds the full paper-shaped ecosystem: 8 named providers + a generated
/// tail, with allocation-size, rotation-pool, homogeneity, and pathology
/// distributions matching §4-§5 of the paper.
[[nodiscard]] PaperWorld make_paper_world(const PaperWorldOptions& options = {});

/// A minimal two-provider world for unit tests: one daily stride-rotator
/// with /56 allocations out of a /46 pool (AVM fleet), one static /60
/// allocator (ZTE fleet).
[[nodiscard]] PaperWorld make_tiny_world(std::uint64_t seed = 0x7E577E57,
                                         std::size_t devices_per_pool = 24);

/// Remediation modeling (§8): schedules a firmware upgrade that switches a
/// fraction of a provider's EUI-64 devices to privacy extensions, at
/// per-device times uniform in [window_start, window_end). Returns the
/// number of devices scheduled. Deterministic in `seed`.
std::size_t schedule_privacy_upgrades(Internet& internet,
                                      std::size_t provider_index,
                                      double fraction,
                                      TimePoint window_start,
                                      TimePoint window_end,
                                      std::uint64_t seed);

}  // namespace scent::sim
