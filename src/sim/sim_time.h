// sim_time.h - virtual time for the simulated Internet.
//
// The measurement campaign spans 44 virtual days with hourly and daily
// probing rounds; the prober paces itself at a configured packets-per-second
// rate against this clock. Plain integer seconds keep arithmetic exact and
// the rotation-epoch math trivial.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>

namespace scent::sim {

/// Microseconds since the simulation epoch (day 0, 00:00). Microsecond
/// resolution lets the prober pace itself at 10k packets per second and the
/// ICMPv6 rate-limit buckets refill smoothly, while an int64 still spans
/// ~292k years.
using TimePoint = std::int64_t;
using Duration = std::int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000;
inline constexpr Duration kSecond = 1000 * kMillisecond;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;
inline constexpr Duration kDay = 24 * kHour;

[[nodiscard]] constexpr Duration days(std::int64_t n) noexcept {
  return n * kDay;
}
[[nodiscard]] constexpr Duration hours(std::int64_t n) noexcept {
  return n * kHour;
}
[[nodiscard]] constexpr Duration minutes(std::int64_t n) noexcept {
  return n * kMinute;
}

/// Day number of a time point (floor; negative times round down).
[[nodiscard]] constexpr std::int64_t day_of(TimePoint t) noexcept {
  return t >= 0 ? t / kDay : -((-t + kDay - 1) / kDay);
}

/// Seconds since that day's midnight, always in [0, kDay).
[[nodiscard]] constexpr Duration time_of_day(TimePoint t) noexcept {
  const Duration r = t % kDay;
  return r < 0 ? r + kDay : r;
}

/// "d3 07:15:42" style rendering for logs and reports.
[[nodiscard]] inline std::string format_time(TimePoint t) {
  const std::int64_t day = day_of(t);
  const Duration tod = time_of_day(t);
  char buf[40];
  // PRId64 keeps -Wformat clean for std::int64_t on LP64 (long) and LLP64
  // (long long) alike.
  std::snprintf(buf, sizeof buf,
                "d%" PRId64 " %02" PRId64 ":%02" PRId64 ":%02" PRId64, day,
                tod / kHour, (tod / kMinute) % 60, (tod / kSecond) % 60);
  return buf;
}

/// A monotonically advancing virtual clock shared by prober and network.
class VirtualClock {
 public:
  constexpr VirtualClock() noexcept = default;
  explicit constexpr VirtualClock(TimePoint start) noexcept : now_(start) {}

  [[nodiscard]] constexpr TimePoint now() const noexcept { return now_; }

  constexpr void advance(Duration d) noexcept { now_ += d; }

  /// Jump to an absolute time; never moves backwards (a measurement
  /// campaign's schedule is monotone).
  constexpr void advance_to(TimePoint t) noexcept {
    if (t > now_) now_ = t;
  }

 private:
  TimePoint now_ = 0;
};

}  // namespace scent::sim
