// provider.h - a simulated service provider (autonomous system).
//
// A provider owns BGP-advertised address space, carves rotation pools out of
// it, and hosts a CPE population. Given a probe (target address, hop limit,
// time) it produces the ICMPv6 response the real network would: Time
// Exceeded from core routers for traceroute-style low hop limits, an echo
// reply if the target is an existing WAN address, a CPE-sourced Destination
// Unreachable / Time Exceeded error for nonexistent hosts inside a delegated
// prefix, and silence for unallocated space — with configurable packet loss
// and the mandatory ICMPv6 error rate limiting (RFC 4443 s2.4(f)).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "container/flat_hash.h"
#include "netbase/ipv6_address.h"
#include "netbase/prefix.h"
#include "routing/bgp_table.h"
#include "sim/pool.h"
#include "sim/rng.h"
#include "wire/icmpv6.h"

namespace scent::sim {

/// Token-bucket parameters for per-CPE ICMPv6 error rate limiting.
struct RateLimit {
  double tokens_per_second = 100.0;
  double burst = 100.0;
};

/// Caller-owned mutable response-policy state: the per-CPE ICMPv6 error
/// rate-limit buckets. Everything else a probe consults (topology, pools,
/// rotation schedules, loss draws keyed on (target, t)) is const, so a
/// probe's answer is a pure function of the world plus one of these. The
/// engine gives every shard its own context — no cross-thread contention —
/// and resets it at each sweep-unit boundary, making unit results
/// independent of execution interleaving (the determinism contract).
struct ResponseContext {
  struct Bucket {
    double tokens = 0;
    TimePoint last = 0;
    bool initialized = false;
  };
  container::FlatMap<std::uint64_t, Bucket> buckets;

  /// Drops all buckets but keeps their storage, so the per-sweep-unit reset
  /// the engine performs does not re-pay allocation on every unit.
  void reset() noexcept { buckets.clear(); }
};

struct ProviderConfig {
  routing::Asn asn = 0;
  std::string name;
  std::string country;  // ISO 3166-1 alpha-2
  std::vector<net::Prefix> advertisements;
  unsigned path_length = 3;  ///< Core hops between vantage and the CPE.
  double loss_rate = 0.0;    ///< Per-probe silent-loss probability.
  RateLimit rate_limit;
  std::uint64_t seed = 0;
};

/// What a probe elicited, before packet serialization.
struct ProbeReply {
  net::Ipv6Address source;
  wire::Icmpv6Type type = wire::Icmpv6Type::kEchoReply;
  std::uint8_t code = 0;
};

class Provider {
 public:
  explicit Provider(ProviderConfig config) : config_(std::move(config)) {}

  Provider(const Provider&) = delete;
  Provider& operator=(const Provider&) = delete;
  Provider(Provider&&) = default;
  Provider& operator=(Provider&&) = default;

  [[nodiscard]] const ProviderConfig& config() const noexcept {
    return config_;
  }

  /// Adds a rotation pool; returns its index.
  std::size_t add_pool(const PoolConfig& pool_config) {
    pools_.emplace_back(pool_config);
    return pools_.size() - 1;
  }

  [[nodiscard]] std::vector<RotationPool>& pools() noexcept { return pools_; }
  [[nodiscard]] const std::vector<RotationPool>& pools() const noexcept {
    return pools_;
  }

  /// Processes one probe. `hop_limit` is the probe's hop limit on entry to
  /// this provider's path (the vantage-to-provider segment is modeled as
  /// zero hops; path_length core hops then lead to the CPE). Uses the
  /// provider's built-in response context (single-threaded callers).
  [[nodiscard]] std::optional<ProbeReply> handle_probe(net::Ipv6Address target,
                                                       std::uint8_t hop_limit,
                                                       TimePoint t) {
    return handle_probe(target, hop_limit, t, default_context_);
  }

  /// Same, with caller-owned rate-limit state. Const and thread safe:
  /// concurrent callers with disjoint contexts never contend.
  [[nodiscard]] std::optional<ProbeReply> handle_probe(
      net::Ipv6Address target, std::uint8_t hop_limit, TimePoint t,
      ResponseContext& ctx) const;

  /// The synthetic address of core router `hop` (1-based), a statically
  /// numbered low-byte infrastructure address.
  [[nodiscard]] net::Ipv6Address core_hop_address(unsigned hop) const {
    // Infrastructure lives in the first /64 of the first advertisement.
    const std::uint64_t network =
        config_.advertisements.empty()
            ? 0
            : config_.advertisements.front().base().network();
    return net::Ipv6Address{network, hop};
  }

  /// Distance (in hops) from the vantage to a CPE in this provider.
  [[nodiscard]] unsigned cpe_distance() const noexcept {
    return config_.path_length + 1;
  }

  // -- Ground-truth accessors (for tests and experiment validation) --------

  struct DeviceRef {
    std::size_t pool_index = 0;
    std::size_t device_index = 0;
  };

  /// Finds a device by MAC address (first match across pools).
  [[nodiscard]] std::optional<DeviceRef> find_device(net::MacAddress mac) const;

  /// The current WAN address of a device.
  [[nodiscard]] net::Ipv6Address wan_address(DeviceRef ref, TimePoint t) const {
    return pools_[ref.pool_index].wan_address_of(ref.device_index, t);
  }

  /// The current delegated allocation of a device.
  [[nodiscard]] net::Prefix allocation(DeviceRef ref, TimePoint t) const {
    return pools_[ref.pool_index].allocation_of(ref.device_index, t);
  }

  [[nodiscard]] std::size_t device_count() const noexcept {
    std::size_t n = 0;
    for (const auto& p : pools_) n += p.devices().size();
    return n;
  }

 private:
  /// Deterministic per-probe loss decision.
  [[nodiscard]] bool probe_lost(net::Ipv6Address target, TimePoint t) const {
    if (config_.loss_rate <= 0.0) return false;
    const std::uint64_t h = mix64(config_.seed ^ 0x4c4f5353ULL,
                                  target.bits().hi() ^ target.bits().lo(),
                                  static_cast<std::uint64_t>(t));
    return static_cast<double>(h >> 11) * 0x1.0p-53 < config_.loss_rate;
  }

  /// Spends one token from the device's error-message bucket in `ctx`;
  /// returns false if the device is currently rate limited.
  [[nodiscard]] bool take_error_token(ResponseContext& ctx,
                                      std::uint64_t bucket_key,
                                      TimePoint t) const;

  /// Bucket key for a device, salted with the provider identity so one
  /// shared ResponseContext can serve several providers without (pool,
  /// device) index collisions merging unrelated buckets.
  [[nodiscard]] std::uint64_t bucket_key_for(std::size_t pool_index,
                                             std::uint32_t device_id) const {
    return mix64(
        (static_cast<std::uint64_t>(config_.asn) << 32) ^ config_.seed,
        (static_cast<std::uint64_t>(pool_index) << 32) | device_id);
  }

  ProviderConfig config_;
  std::vector<RotationPool> pools_;
  ResponseContext default_context_;
};

}  // namespace scent::sim
