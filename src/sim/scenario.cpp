#include "sim/scenario.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "oui/oui_registry.h"

namespace scent::sim {
namespace {

/// Weighted pick of an error behavior for a responsive device. Shares mirror
/// the paper's observation that Destination Unreachable codes dominate with
/// occasional Hop Limit Exceeded responders (§3.1).
ErrorBehavior pick_error_behavior(Rng& rng) {
  const double u = rng.uniform();
  if (u < 0.45) return ErrorBehavior::kAdminProhibited;
  if (u < 0.70) return ErrorBehavior::kNoRoute;
  if (u < 0.92) return ErrorBehavior::kAddressUnreachable;
  return ErrorBehavior::kHopLimitExceeded;
}

std::uint64_t pool_key(std::size_t provider_index, std::size_t pool_index) {
  return (static_cast<std::uint64_t>(provider_index) << 32) |
         static_cast<std::uint64_t>(pool_index);
}

}  // namespace

net::Oui WorldBuilder::pick_vendor(const std::vector<VendorShare>& vendors,
                                   Rng& rng) {
  if (vendors.empty()) return net::Oui{0x3810d5};  // AVM fallback
  double total = 0;
  for (const auto& v : vendors) total += v.weight;
  double pick = rng.uniform() * total;
  for (const auto& v : vendors) {
    pick -= v.weight;
    if (pick <= 0) return v.oui;
  }
  return vendors.back().oui;
}

net::MacAddress WorldBuilder::mint_mac(net::Oui oui) {
  // A keyed 24-bit permutation of a per-OUI counter yields MACs that are
  // unique by construction yet look scattered like real production runs.
  std::uint32_t& counter = oui_counters_[oui.value()];
  const FeistelPermutation perm{1ULL << 24, mix64(seed_, oui.value())};
  const std::uint64_t low24 = perm.forward(counter++);
  return net::MacAddress{(static_cast<std::uint64_t>(oui.value()) << 24) |
                         low24};
}

std::size_t WorldBuilder::add_provider(const ProviderSpec& spec) {
  ProviderConfig config;
  config.asn = spec.asn;
  config.name = spec.name;
  config.country = spec.country;
  config.advertisements = {spec.advertisement};
  config.path_length = spec.path_length;
  config.loss_rate = spec.loss_rate;
  config.rate_limit = spec.rate_limit;
  config.seed = mix64(seed_, spec.asn);

  const std::size_t provider_index = internet_.add_provider(std::move(config));
  Provider& provider = internet_.provider(provider_index);
  Rng provider_rng{mix64(seed_, spec.asn, 0xA11)};

  // Carve pools out of the advertisement with a moving, size-aligned cursor
  // so pools of different lengths never overlap. A one-pool-size gap is left
  // between pools so they are separated in address space, as distinct
  // delegation ranges are in production deployments.
  net::Uint128 cursor = spec.advertisement.base().bits();
  for (const auto& pool_spec : spec.pools) {
    const unsigned len = pool_spec.pool_length;
    const net::Uint128 size = net::Uint128{1} << (128 - len);
    // Align the cursor up to the pool size.
    const net::Uint128 rem = cursor % size;
    if (rem != net::Uint128{}) cursor += size - rem;

    const net::Prefix pool_prefix{net::Ipv6Address{cursor}, len};
    cursor += size + size;  // pool plus a guard gap

    PoolConfig pool_config;
    pool_config.prefix = pool_prefix;
    pool_config.allocation_length = pool_spec.allocation_length;
    pool_config.rotation = pool_spec.rotation;
    pool_config.seed = mix64(seed_, spec.asn, pool_prefix.base().network());
    const std::size_t pool_index = provider.add_pool(pool_config);
    RotationPool& pool = provider.pools()[pool_index];

    const std::uint64_t num_slots = pool.num_slots();
    const double span = std::clamp(pool_spec.slot_span, 0.01, 1.0);
    const auto usable_slots = static_cast<std::uint64_t>(
        std::max(1.0, static_cast<double>(num_slots) * span));
    const std::size_t device_count = static_cast<std::size_t>(
        std::min<std::uint64_t>(pool_spec.device_count, usable_slots));

    const bool contiguous =
        pool_spec.placement == Placement::kContiguous ||
        (pool_spec.placement == Placement::kAuto &&
         pool_spec.rotation.kind == RotationPolicy::Kind::kStride);

    MintState& mint = mint_state_.emplace(
        pool_key(provider_index, pool_index),
        MintState{FeistelPermutation{usable_slots,
                                     mix64(pool_config.seed, 0x51077)},
                  0, contiguous}).first->second;

    for (std::size_t i = 0; i < device_count; ++i) {
      CpeDevice device;
      device.id = next_device_id_++;
      device.mac = mint_mac(pick_vendor(spec.vendors, provider_rng));
      device.initial_slot = mint.next_slot();

      const double mode_pick = provider_rng.uniform();
      if (mode_pick < spec.eui64_fraction) {
        device.mode = AddressingMode::kEui64;
      } else if (mode_pick < spec.eui64_fraction + spec.low_byte_fraction) {
        device.mode = AddressingMode::kLowByte;
      } else {
        device.mode = AddressingMode::kPrivacy;
      }

      device.error_behavior = provider_rng.chance(spec.silent_fraction)
                                  ? ErrorBehavior::kSilent
                                  : pick_error_behavior(provider_rng);

      if (provider_rng.chance(spec.churn_fraction)) {
        // A bounded service interval: joins up to 30 days before (or 20
        // days after) the campaign epoch and stays for 10-60 days.
        const auto join_day =
            static_cast<std::int64_t>(provider_rng.below(50)) - 30;
        const auto stay_days =
            static_cast<std::int64_t>(10 + provider_rng.below(50));
        device.active_from = days(join_day);
        device.active_until = days(join_day + stay_days);
      }

      pool.add_device(device);
      handles_[provider_index].push_back(
          DeviceHandle{provider_index, pool_index,
                       pool.devices().size() - 1, device.mac});
    }
  }
  return provider_index;
}

std::uint64_t WorldBuilder::MintState::next_slot() {
  const std::uint64_t ordinal = next_ordinal++;
  return contiguous ? ordinal % perm.size() : perm.forward(ordinal % perm.size());
}

void WorldBuilder::plant_shared_mac(
    net::MacAddress mac, const std::vector<std::size_t>& provider_indices,
    std::size_t copies) {
  for (std::size_t c = 0; c < copies && !provider_indices.empty(); ++c) {
    const std::size_t provider_index =
        provider_indices[c % provider_indices.size()];
    Provider& provider = internet_.provider(provider_index);
    if (provider.pools().empty()) continue;
    const std::size_t pool_index = 0;
    RotationPool& pool = provider.pools()[pool_index];
    auto it = mint_state_.find(pool_key(provider_index, pool_index));
    if (it == mint_state_.end()) continue;
    if (it->second.next_ordinal >= it->second.perm.size()) continue;

    CpeDevice device;
    device.id = next_device_id_++;
    device.mac = mac;
    device.mode = AddressingMode::kEui64;
    device.error_behavior = ErrorBehavior::kAdminProhibited;
    device.initial_slot = it->second.next_slot();
    pool.add_device(device);
    handles_[provider_index].push_back(DeviceHandle{
        provider_index, pool_index, pool.devices().size() - 1, device.mac});
  }
}

net::MacAddress WorldBuilder::plant_provider_switch(std::size_t from,
                                                    std::size_t to,
                                                    TimePoint switch_time) {
  const net::MacAddress mac = mint_mac(net::Oui{0x3810d5});  // AVM, as Fig 12
  const auto plant = [&](std::size_t provider_index, TimePoint active_from,
                         TimePoint active_until) {
    Provider& provider = internet_.provider(provider_index);
    if (provider.pools().empty()) return;
    const std::size_t pool_index = 0;
    auto it = mint_state_.find(pool_key(provider_index, pool_index));
    if (it == mint_state_.end() ||
        it->second.next_ordinal >= it->second.perm.size()) {
      return;
    }
    CpeDevice device;
    device.id = next_device_id_++;
    device.mac = mac;
    device.mode = AddressingMode::kEui64;
    device.error_behavior = ErrorBehavior::kAdminProhibited;
    device.initial_slot = it->second.next_slot();
    device.active_from = active_from;
    device.active_until = active_until;
    RotationPool& pool = provider.pools()[pool_index];
    pool.add_device(device);
    handles_[provider_index].push_back(DeviceHandle{
        provider_index, pool_index, pool.devices().size() - 1, mac});
  };
  plant(from, 0, switch_time);
  plant(to, switch_time, kDay * 36500);
  return mac;
}

namespace {

/// Countries for the generated tail; 25 per the paper's finding of rotating
/// /48s across 25 countries.
constexpr std::array<const char*, 25> kTailCountries = {
    "DE", "GR", "CN", "BR", "BO", "VN", "BA", "JP", "AR", "UY", "RU", "FR",
    "IT", "ES", "PL", "NL", "GB", "US", "MX", "IN", "TH", "MY", "TR", "ZA",
    "KR"};

/// Vendor OUI palette for generated tails (values from the builtin
/// registry).
constexpr std::array<std::uint32_t, 10> kTailVendors = {
    0x3810d5,  // AVM
    0x344b50,  // ZTE
    0x00e0fc,  // Huawei
    0x001349,  // Zyxel
    0x14cc20,  // TP-Link
    0x342792,  // Sagemcom
    0x001dd0,  // ARRIS
    0x788102,  // Technicolor
    0x48f97c,  // FiberHome
    0x1c7ee5,  // D-Link
};

RotationPolicy daily_stride(std::uint64_t stride) {
  RotationPolicy p;
  p.kind = RotationPolicy::Kind::kStride;
  p.period = kDay;
  p.window_start = 0;
  p.window_length = hours(6);
  p.stride = stride;
  return p;
}

RotationPolicy shuffle_every(Duration period) {
  RotationPolicy p;
  p.kind = RotationPolicy::Kind::kShuffle;
  p.period = period;
  p.window_start = 0;
  p.window_length = hours(6);
  return p;
}

std::size_t scaled(std::size_t n, double scale) {
  return std::max<std::size_t>(4, static_cast<std::size_t>(
                                      static_cast<double>(n) * scale));
}

}  // namespace

PaperWorld make_paper_world(const PaperWorldOptions& options) {
  WorldBuilder builder{options.seed};
  PaperWorld world;
  const double s = options.scale;

  // ---- AS8881 Versatel (DE): the paper's dominant rotator. Daily stride
  // rotation inside /46 pools; Figure 6 additionally shows a /48 carved
  // into /64 allocations, so one pool uses /64.
  {
    ProviderSpec spec;
    spec.asn = 8881;
    spec.name = "Versatel";
    spec.country = "DE";
    spec.advertisement = *net::Prefix::parse("2001:16b8::/32");
    spec.vendors = {{net::Oui{0x3810d5}, 0.86},  // AVM dominates German DSL
                    {net::Oui{0x342792}, 0.09},
                    {net::Oui{0x00a057}, 0.05}};
    spec.eui64_fraction = 0.85;
    for (std::size_t k = 0; k < options.versatel_pool_count; ++k) {
      PoolSpec pool;
      pool.pool_length = 46;
      pool.allocation_length = 56;
      // 1024 slots; stride ~ slots/4.4 so an IID visits 3-4 /48s before
      // wrapping mod the /46 (Figure 9).
      pool.rotation = daily_stride(236);
      // Pool 0 keeps a visibly empty /48 for Figure 10's density plot; the
      // rest run near-full, carrying the /56 population of Figure 5a.
      pool.device_count = scaled(k == 0 ? 700 : 960, s);
      spec.pools.push_back(pool);
    }
    {
      // Figure 6's /64-allocating /48. Its population stays below the /56
      // pools' total so Versatel's per-AS median allocation remains /56.
      PoolSpec pool64;
      pool64.pool_length = 48;
      pool64.allocation_length = 64;
      pool64.rotation = daily_stride(14923);
      pool64.device_count = scaled(6500, s);
      pool64.slot_span = 0.9;
      spec.pools.push_back(pool64);
    }
    world.versatel = builder.add_provider(spec);
  }

  // ---- AS6799 OTE (GR): second-largest rotator in Table 1.
  {
    ProviderSpec spec;
    spec.asn = 6799;
    spec.name = "OTE";
    spec.country = "GR";
    spec.advertisement = *net::Prefix::parse("2a02:580::/32");
    spec.vendors = {{net::Oui{0x344b50}, 0.55},
                    {net::Oui{0x00e0fc}, 0.30},
                    {net::Oui{0x342792}, 0.15}};
    for (int k = 0; k < 4; ++k) {
      PoolSpec pool;
      pool.pool_length = 46;
      pool.allocation_length = 56;
      pool.rotation = daily_stride(311);
      pool.device_count = scaled(900, s);
      spec.pools.push_back(pool);
    }
    world.ote = builder.add_provider(spec);
  }

  // ---- AS3320 Deutsche Telekom (DE): daily randomized reassignment.
  {
    ProviderSpec spec;
    spec.asn = 3320;
    spec.name = "Deutsche Telekom";
    spec.country = "DE";
    spec.advertisement = *net::Prefix::parse("2003:e2::/32");
    spec.vendors = {{net::Oui{0x3810d5}, 0.62},
                    {net::Oui{0x788102}, 0.22},
                    {net::Oui{0x342792}, 0.16}};
    PoolSpec pool;
    pool.pool_length = 46;
    pool.allocation_length = 56;
    pool.rotation = shuffle_every(kDay);
    pool.device_count = scaled(900, s);
    spec.pools.push_back(pool);
    world.dtag = builder.add_provider(spec);
  }

  // ---- AS8422 NetCologne (DE): 99.98% AVM fleet (§5.1), non-rotating.
  {
    ProviderSpec spec;
    spec.asn = 8422;
    spec.name = "NetCologne";
    spec.country = "DE";
    spec.advertisement = *net::Prefix::parse("2001:4dd0::/32");
    spec.vendors = {{net::Oui{0x3810d5}, 0.9992},
                    {net::Oui{0x00a057}, 0.0005},
                    {net::Oui{0x001349}, 0.0003}};
    spec.eui64_fraction = 0.95;
    PoolSpec pool;
    pool.pool_length = 46;
    pool.allocation_length = 56;
    pool.device_count = scaled(820, s);
    spec.pools.push_back(pool);
    world.netcologne = builder.add_provider(spec);
  }

  // ---- AS7552 Viettel (VN): 99.6% ZTE fleet (§5.1).
  {
    ProviderSpec spec;
    spec.asn = 7552;
    spec.name = "Viettel";
    spec.country = "VN";
    spec.advertisement = *net::Prefix::parse("2405:4800::/32");
    spec.vendors = {{net::Oui{0x344b50}, 0.598},
                    {net::Oui{0x98f428}, 0.398},  // both ZTE blocks
                    {net::Oui{0x00e0fc}, 0.004}};
    PoolSpec pool;
    pool.pool_length = 46;
    pool.allocation_length = 56;
    pool.rotation = shuffle_every(days(3));
    pool.device_count = scaled(760, s);
    spec.pools.push_back(pool);
    world.viettel = builder.add_provider(spec);
  }

  // ---- Entel (BO): Figure 3a's /56-banded /48, non-rotating, with gaps.
  {
    ProviderSpec spec;
    spec.asn = 26210;
    spec.name = "Entel";
    spec.country = "BO";
    spec.advertisement = *net::Prefix::parse("2800:cc0::/32");
    spec.vendors = {{net::Oui{0x00e0fc}, 0.6}, {net::Oui{0x48f97c}, 0.4}};
    PoolSpec pool;
    pool.pool_length = 48;
    pool.allocation_length = 56;
    pool.device_count = scaled(170, s);  // of 256 slots: black gaps remain
    pool.placement = Placement::kScattered;
    spec.pools.push_back(pool);
    world.entel = builder.add_provider(spec);
  }

  // ---- BH Telecom (BA): Figure 3b's /60 allocations; slow shuffle (the
  // paper's tracked IID #7 moved across 6 /64s in a week).
  {
    ProviderSpec spec;
    spec.asn = 9146;
    spec.name = "BH Telecom";
    spec.country = "BA";
    spec.advertisement = *net::Prefix::parse("2a05:f480::/32");
    spec.vendors = {{net::Oui{0x001349}, 0.5},
                    {net::Oui{0x00e0fc}, 0.3},
                    {net::Oui{0x788102}, 0.2}};
    PoolSpec pool;
    pool.pool_length = 48;
    pool.allocation_length = 60;
    pool.rotation = shuffle_every(days(1));
    pool.device_count = scaled(2600, s);  // of 4096 slots
    pool.placement = Placement::kScattered;
    spec.pools.push_back(pool);
    world.bhtelecom = builder.add_provider(spec);
  }

  // ---- Starcat (JP): Figure 3c's /64 allocations, dense but with an
  // unallocated upper region, non-rotating.
  {
    ProviderSpec spec;
    spec.asn = 18126;
    spec.name = "Starcat";
    spec.country = "JP";
    spec.advertisement = *net::Prefix::parse("2001:df0::/32");
    spec.vendors = {{net::Oui{0x2c9569}, 0.5},
                    {net::Oui{0x94e9ee}, 0.3},
                    {net::Oui{0x14cc20}, 0.2}};
    PoolSpec pool;
    pool.pool_length = 48;
    pool.allocation_length = 64;
    pool.device_count = scaled(26000, s);  // of 65536 slots
    pool.placement = Placement::kScattered;
    pool.slot_span = 0.75;  // upper quarter unresponsive
    spec.pools.push_back(pool);
    world.starcat = builder.add_provider(spec);
  }

  // ---- A dense /64-allocating rotator (CN, mirroring Table 1's strong CN
  // presence): /64 customer delegations are the second-most-common size in
  // Figure 5a (~30% of IIDs), and /64-allocating /48s are dense by nature
  // (Figure 3c), so this provider carries a large population in few /48s.
  {
    ProviderSpec spec;
    spec.asn = 9808;
    spec.name = "Guangdong Mobile";
    spec.country = "CN";
    spec.advertisement = *net::Prefix::parse("2409:8000::/32");
    spec.vendors = {{net::Oui{0x00e0fc}, 0.55},
                    {net::Oui{0x8c68c8}, 0.30},
                    {net::Oui{0x48f97c}, 0.15}};
    for (int k = 0; k < 2; ++k) {
      PoolSpec pool;
      pool.pool_length = 50;
      pool.allocation_length = 64;
      pool.rotation = daily_stride(6121);
      pool.device_count = scaled(9000, s);  // of 16384 slots
      spec.pools.push_back(pool);
    }
    world.dense64 = builder.add_provider(spec);
  }

  // ---- Generated tail: the "96 other ASNs" with at least one rotating
  // /48, across 25 countries, with paper-shaped allocation sizes (Fig 5),
  // rotation-vs-static split (Fig 7), and homogeneity spectrum (Fig 4).
  Rng tail_rng{mix64(options.seed, 0x7A11)};
  for (std::size_t i = 0; i < options.tail_as_count; ++i) {
    ProviderSpec spec;
    spec.asn = static_cast<routing::Asn>(60000 + i);
    spec.name = "TailNet-" + std::to_string(i);
    spec.country = kTailCountries[i % kTailCountries.size()];
    // Distinct /32 per tail AS under a documentation-style supernet.
    const std::uint64_t high =
        (0x2a10ULL << 48) | ((0x1000ULL + i) << 32);
    spec.advertisement = net::Prefix{net::Ipv6Address{high, 0}, 32};

    // Allocation sizes: ~50% /56, ~25% /64, ~12.5% /60, rest mixed — the
    // per-AS medians behind Figure 5b.
    unsigned alloc = 56;
    bool mixed = false;
    const double alloc_pick = tail_rng.uniform();
    if (alloc_pick < 0.50) {
      alloc = 56;
    } else if (alloc_pick < 0.75) {
      alloc = 64;
    } else if (alloc_pick < 0.875) {
      alloc = 60;
    } else {
      mixed = true;
    }

    // Homogeneity: dominant vendor share skewed high — half above 0.9,
    // three quarters above ~0.67, minimum around 0.35 (Figure 4).
    const double u = tail_rng.uniform();
    const double dominant = std::clamp(1.0 - 0.65 * u * u * u, 0.35, 1.0);
    const std::size_t dominant_vendor = tail_rng.below(kTailVendors.size());
    spec.vendors.push_back(
        {net::Oui{kTailVendors[dominant_vendor]}, dominant});
    double rest = 1.0 - dominant;
    for (std::size_t v = 0; rest > 0.005 && v < 3; ++v) {
      const double share = v == 2 ? rest : rest * 0.6;
      spec.vendors.push_back(
          {net::Oui{kTailVendors[(dominant_vendor + 1 + v) %
                                 kTailVendors.size()]},
           share});
      rest -= share;
    }

    // Rotation: roughly half the probed ASes show a /64 "pool" (no
    // measurable rotation), half rotate (Figure 7).
    const bool rotates = tail_rng.uniform() < 0.45;
    const auto make_pool = [&](unsigned alloc_len) {
      PoolSpec pool;
      pool.allocation_length = alloc_len;
      // Pool shapes chosen so every tail pool registers as (at most) one
      // /48 in Table 1 and passes the §4.2 density cut:
      //   /56 allocs -> /48 pool (256 slots, high occupancy)
      //   /60 allocs -> /50 pool (1024 slots)
      //   /64 allocs -> /50 pool (16384 slots, larger population: the
      //                 paper's /64-allocators are densely pixelated)
      std::size_t devices = options.devices_per_tail_pool;
      switch (alloc_len) {
        case 56:
          pool.pool_length = 48;
          break;
        case 60:
          // A /60 device answers for 16 /64s; x4 population keeps the
          // random-probe cross-section findable by the seed scan.
          pool.pool_length = 50;
          devices = options.devices_per_tail_pool * 4;
          break;
        default:
          pool.pool_length = 50;
          devices = options.devices_per_tail_pool * 9;
          break;
      }
      if (rotates) {
        pool.rotation = tail_rng.chance(0.5)
                            ? daily_stride(97 + tail_rng.below(300))
                            : shuffle_every(tail_rng.chance(0.7) ? kDay
                                                                 : days(2));
      }
      pool.device_count = scaled(devices, s);
      return pool;
    };
    if (mixed) {
      spec.pools.push_back(make_pool(56));
      spec.pools.push_back(make_pool(64));
    } else {
      spec.pools.push_back(make_pool(alloc));
    }

    spec.eui64_fraction = 0.6 + 0.4 * tail_rng.uniform();
    spec.silent_fraction = 0.12 * tail_rng.uniform();
    spec.churn_fraction = options.tail_churn;
    world.tail.push_back(builder.add_provider(spec));
  }

  // ---- Pathologies (§5.5).
  if (options.inject_pathologies) {
    // A vendor-reused MAC observed daily in ASes on several continents
    // (Figure 11): Uruguay/Vietnam/Bosnia/Brazil-like spread via tail ASes
    // plus Viettel and BH Telecom.
    world.reused_mac = net::MacAddress{0x98f428123456ULL};
    std::vector<std::size_t> reuse_targets = {world.viettel, world.bhtelecom};
    for (std::size_t k = 0; k < 5 && k < world.tail.size(); ++k) {
      reuse_targets.push_back(world.tail[k * 7 % world.tail.size()]);
    }
    builder.plant_shared_mac(world.reused_mac, reuse_targets, 7);

    // The all-zero default MAC, seen in 12 distinct ASes.
    world.default_mac = net::MacAddress{0};
    std::vector<std::size_t> zero_targets;
    for (std::size_t k = 0; k < 12 && k < world.tail.size(); ++k) {
      zero_targets.push_back(world.tail[(3 + k * 5) % world.tail.size()]);
    }
    builder.plant_shared_mac(world.default_mac, zero_targets, 12);

    // An extreme-tail IID (Figure 8's ~30k-prefix outlier, scaled): many
    // clones of one MAC planted in rotating pools accumulate /64s fast.
    std::vector<std::size_t> clone_targets = {world.versatel, world.ote,
                                              world.dtag};
    builder.plant_shared_mac(net::MacAddress{0x344b50aaaaaaULL},
                             clone_targets, 36);

    // Customers switching between the two German ISPs (Figure 12), one in
    // each direction, mid-campaign.
    world.switcher_ab =
        builder.plant_provider_switch(world.versatel, world.dtag, days(14));
    world.switcher_ba =
        builder.plant_provider_switch(world.dtag, world.versatel, days(38));
  }

  world.internet = builder.take();
  return world;
}

PaperWorld make_tiny_world(std::uint64_t seed, std::size_t devices_per_pool) {
  WorldBuilder builder{seed};
  PaperWorld world;

  {
    ProviderSpec spec;
    spec.asn = 65001;
    spec.name = "TinyRotator";
    spec.country = "DE";
    spec.advertisement = *net::Prefix::parse("2001:db8::/32");
    spec.vendors = {{net::Oui{0x3810d5}, 1.0}};
    spec.eui64_fraction = 1.0;
    spec.low_byte_fraction = 0.0;
    spec.silent_fraction = 0.0;
    PoolSpec pool;
    pool.pool_length = 46;
    pool.allocation_length = 56;
    pool.rotation = daily_stride(236);
    pool.device_count = devices_per_pool;
    spec.pools.push_back(pool);
    world.versatel = builder.add_provider(spec);
  }
  {
    ProviderSpec spec;
    spec.asn = 65002;
    spec.name = "TinyStatic";
    spec.country = "VN";
    spec.advertisement = *net::Prefix::parse("2406:da00::/32");
    spec.vendors = {{net::Oui{0x344b50}, 1.0}};
    spec.eui64_fraction = 1.0;
    spec.low_byte_fraction = 0.0;
    spec.silent_fraction = 0.0;
    PoolSpec pool;
    pool.pool_length = 52;
    pool.allocation_length = 60;
    pool.device_count = devices_per_pool;
    pool.placement = Placement::kScattered;
    spec.pools.push_back(pool);
    world.viettel = builder.add_provider(spec);
  }

  world.internet = builder.take();
  return world;
}

std::size_t schedule_privacy_upgrades(Internet& internet,
                                      std::size_t provider_index,
                                      double fraction,
                                      TimePoint window_start,
                                      TimePoint window_end,
                                      std::uint64_t seed) {
  if (window_end < window_start) window_end = window_start;
  const auto span =
      static_cast<std::uint64_t>(window_end - window_start) + 1;
  Rng rng{mix64(seed, provider_index, 0x06F5)};
  std::size_t scheduled = 0;
  Provider& provider = internet.provider(provider_index);
  for (auto& pool : provider.pools()) {
    for (auto& device : pool.mutable_devices()) {
      if (device.mode != AddressingMode::kEui64) continue;
      if (!rng.chance(fraction)) continue;
      device.privacy_upgrade_at =
          window_start + static_cast<TimePoint>(rng.below(span));
      ++scheduled;
    }
  }
  return scheduled;
}

}  // namespace scent::sim
