#include "sim/provider.h"

#include <algorithm>

namespace scent::sim {

std::optional<ProbeReply> Provider::handle_probe(net::Ipv6Address target,
                                                 std::uint8_t hop_limit,
                                                 TimePoint t,
                                                 ResponseContext& ctx) const {
  if (probe_lost(target, t)) return std::nullopt;

  // Traceroute-style probes expire at a core router before reaching the
  // periphery. Core hops are statically addressed managed infrastructure.
  if (hop_limit <= config_.path_length) {
    return ProbeReply{core_hop_address(hop_limit),
                      wire::Icmpv6Type::kTimeExceeded,
                      static_cast<std::uint8_t>(
                          wire::TimeExceededCode::kHopLimitExceeded)};
  }

  // Find the rotation pool whose space contains the target. Probes into
  // advertised-but-unpooled space fall off the provider's internal routing
  // and are dropped silently (the black regions of the paper's Figure 3).
  const RotationPool* pool = nullptr;
  std::size_t pool_index = 0;
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    if (pools_[i].covers(target)) {
      pool = &pools_[i];
      pool_index = i;
      break;
    }
  }
  if (pool == nullptr) return std::nullopt;

  const auto device_index = pool->device_owning(target, t);
  if (!device_index) return std::nullopt;  // unallocated slot
  const CpeDevice& device = pool->devices()[*device_index];
  const net::Ipv6Address wan = pool->wan_address_of(*device_index, t);

  // Probe addressed to the CPE itself: an echo reply (informational
  // messages are not subject to the error rate limit).
  if (target == wan) {
    return ProbeReply{wan, wire::Icmpv6Type::kEchoReply, 0};
  }

  // The probe is for a (nonexistent) host behind the CPE. The CPE originates
  // an ICMPv6 error whose flavor depends on its OS; every flavor leaks the
  // WAN source address. Errors are rate limited per RFC 4443 s2.4(f).
  if (device.error_behavior == ErrorBehavior::kSilent) return std::nullopt;

  // Hop limit exhausted exactly at the CPE: Time Exceeded regardless of the
  // device's unreachable flavor.
  if (hop_limit == cpe_distance()) {
    if (!take_error_token(ctx, bucket_key_for(pool_index, device.id), t)) {
      return std::nullopt;
    }
    return ProbeReply{wan, wire::Icmpv6Type::kTimeExceeded,
                      static_cast<std::uint8_t>(
                          wire::TimeExceededCode::kHopLimitExceeded)};
  }

  if (!take_error_token(ctx, bucket_key_for(pool_index, device.id), t)) {
    return std::nullopt;
  }

  switch (device.error_behavior) {
    case ErrorBehavior::kAdminProhibited:
      return ProbeReply{wan, wire::Icmpv6Type::kDestinationUnreachable,
                        static_cast<std::uint8_t>(
                            wire::UnreachableCode::kAdminProhibited)};
    case ErrorBehavior::kNoRoute:
      return ProbeReply{
          wan, wire::Icmpv6Type::kDestinationUnreachable,
          static_cast<std::uint8_t>(wire::UnreachableCode::kNoRoute)};
    case ErrorBehavior::kAddressUnreachable:
      return ProbeReply{wan, wire::Icmpv6Type::kDestinationUnreachable,
                        static_cast<std::uint8_t>(
                            wire::UnreachableCode::kAddressUnreachable)};
    case ErrorBehavior::kHopLimitExceeded:
      return ProbeReply{wan, wire::Icmpv6Type::kTimeExceeded,
                        static_cast<std::uint8_t>(
                            wire::TimeExceededCode::kHopLimitExceeded)};
    case ErrorBehavior::kSilent:
      return std::nullopt;  // unreachable: handled above
  }
  return std::nullopt;
}

bool Provider::take_error_token(ResponseContext& ctx,
                                std::uint64_t bucket_key, TimePoint t) const {
  ResponseContext::Bucket& bucket = ctx.buckets[bucket_key];
  if (!bucket.initialized) {
    bucket.tokens = config_.rate_limit.burst;
    bucket.last = t;
    bucket.initialized = true;
  }
  if (t > bucket.last) {
    bucket.tokens = std::min(
        config_.rate_limit.burst,
        bucket.tokens + static_cast<double>(t - bucket.last) /
                            static_cast<double>(kSecond) *
                            config_.rate_limit.tokens_per_second);
    bucket.last = t;
  }
  if (bucket.tokens < 1.0) return false;
  bucket.tokens -= 1.0;
  return true;
}

std::optional<Provider::DeviceRef> Provider::find_device(
    net::MacAddress mac) const {
  for (std::size_t p = 0; p < pools_.size(); ++p) {
    const auto& devices = pools_[p].devices();
    for (std::size_t d = 0; d < devices.size(); ++d) {
      if (devices[d].mac == mac) return DeviceRef{p, d};
    }
  }
  return std::nullopt;
}

}  // namespace scent::sim
