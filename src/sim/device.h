// device.h - the simulated Customer Premises Equipment (CPE) model.
//
// A CPE is a routed hop between the provider and the customer LAN (paper
// Figure 1). Its WAN interface carries a public IPv6 address whose /64
// network is (re)assigned by the provider and whose IID is determined by the
// device's addressing mode — the legacy EUI-64 mode being the trackable one.
// The device also defines how it answers probes addressed to nonexistent
// hosts inside its delegated prefix.
#pragma once

#include <cstdint>
#include <string_view>

#include "netbase/eui64.h"
#include "netbase/mac_address.h"
#include "sim/rng.h"
#include "sim/sim_time.h"

namespace scent::sim {

/// How the CPE derives the IID of its WAN address.
enum class AddressingMode : std::uint8_t {
  kEui64,    ///< Legacy SLAAC: IID = modified EUI-64 of the MAC. Static.
  kPrivacy,  ///< RFC 4941: fresh random IID whenever the prefix changes.
  kStablePrivacy,  ///< RFC 7217-style: random but stable per (device,prefix).
  kLowByte,  ///< Statically configured small IID (e.g. ::1).
};

/// Which ICMPv6 message the CPE originates for an undeliverable probe.
/// The paper observes all of these flavors in the wild (§3.1); the analysis
/// treats them identically because every one of them leaks the CPE's WAN
/// source address.
enum class ErrorBehavior : std::uint8_t {
  kAdminProhibited,     ///< Dest Unreachable, code 1.
  kNoRoute,             ///< Dest Unreachable, code 0.
  kAddressUnreachable,  ///< Dest Unreachable, code 3.
  kHopLimitExceeded,    ///< Time Exceeded, code 0.
  kSilent,              ///< Drops the probe: the CPE never appears.
};

[[nodiscard]] constexpr std::string_view to_string(AddressingMode m) noexcept {
  switch (m) {
    case AddressingMode::kEui64: return "eui64";
    case AddressingMode::kPrivacy: return "privacy";
    case AddressingMode::kStablePrivacy: return "stable-privacy";
    case AddressingMode::kLowByte: return "low-byte";
  }
  return "unknown";
}

using DeviceId = std::uint32_t;

/// One simulated CPE. Value type; all dynamic state (current prefix slot,
/// rate-limit bucket) lives in the owning pool/provider so devices stay
/// trivially copyable.
struct CpeDevice {
  DeviceId id = 0;
  net::MacAddress mac;
  AddressingMode mode = AddressingMode::kEui64;
  ErrorBehavior error_behavior = ErrorBehavior::kAdminProhibited;

  /// Initial slot (allocation index) in the owning rotation pool.
  std::uint64_t initial_slot = 0;

  /// Service interval: the device answers probes only in [active_from,
  /// active_until). Models customers joining/leaving a provider (§5.5's
  /// provider-switch pathology) and extended outages.
  TimePoint active_from = 0;
  TimePoint active_until = kDay * 365 * 100;

  /// Firmware-remediation instant (§8): from this time on, a legacy EUI-64
  /// device behaves as a privacy-extensions device (the fix the paper's
  /// disclosure prompted a major vendor to ship). Defaults to "never".
  TimePoint privacy_upgrade_at = kDay * 365 * 100;

  [[nodiscard]] constexpr bool active_at(TimePoint t) const noexcept {
    return t >= active_from && t < active_until;
  }

  /// The addressing mode in effect at time t (kEui64 until the firmware
  /// upgrade lands, then kPrivacy).
  [[nodiscard]] constexpr AddressingMode mode_at(TimePoint t) const noexcept {
    if (mode == AddressingMode::kEui64 && t >= privacy_upgrade_at) {
      return AddressingMode::kPrivacy;
    }
    return mode;
  }

  /// The device's WAN IID for a given prefix epoch. For EUI-64 devices this
  /// never changes; privacy-mode devices draw a fresh pseudorandom IID per
  /// epoch (keyed so re-probing the same epoch is stable); stable-privacy
  /// devices key on the network instead of the epoch.
  [[nodiscard]] std::uint64_t wan_iid(std::uint64_t epoch,
                                      std::uint64_t network_bits,
                                      AddressingMode effective_mode)
      const noexcept {
    switch (effective_mode) {
      case AddressingMode::kEui64:
        return net::mac_to_eui64(mac);
      case AddressingMode::kPrivacy: {
        // Avoid accidentally minting an ff:fe pattern so classification in
        // tests is exact; real privacy IIDs can collide with the marker at
        // rate 2^-16, which the pipeline tolerates, but determinism is more
        // valuable here.
        std::uint64_t iid = mix64(0x5072697643790000ULL, mac.bits(), epoch);
        if (net::is_eui64_iid(iid)) iid ^= 0x0000000000010000ULL;
        return iid;
      }
      case AddressingMode::kStablePrivacy: {
        std::uint64_t iid =
            mix64(0x52464337323137ULL, mac.bits(), network_bits);
        if (net::is_eui64_iid(iid)) iid ^= 0x0000000000010000ULL;
        return iid;
      }
      case AddressingMode::kLowByte:
        return 1;
    }
    return 1;
  }
};

}  // namespace scent::sim
