// rng.h - deterministic, seedable random primitives for the simulator.
//
// Every stochastic choice in the simulated Internet (device placement, IID
// jitter, loss) must be reproducible from a single 64-bit seed so that test
// assertions and benchmark outputs are stable. Two primitives cover all
// needs:
//   * SplitMix64 - a tiny, high-quality PRNG, also usable as a stateless
//     hash (`mix`), so "random but a pure function of (entity, epoch)"
//     values need no stored state.
//   * FeistelPermutation - a keyed bijection on [0, n), used to model DHCPv6
//     pools that hand every customer a distinct prefix slot per epoch.
#pragma once

#include <cstdint>

namespace scent::sim {

/// SplitMix64's finalizer: a bijective 64-bit mixing function. Used both as
/// the PRNG step and as a stateless hash of composite keys.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines two 64-bit values into one hash, for keys like (seed, epoch).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a,
                                            std::uint64_t b) noexcept {
  return mix64(a ^ mix64(b));
}

[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b,
                                            std::uint64_t c) noexcept {
  return mix64(a ^ mix64(b ^ mix64(c)));
}

/// SplitMix64 sequential generator.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound) via rejection-free Lemire-style reduction;
  /// bias is < 2^-32 for the bounds used here (pool slots, percentages),
  /// irrelevant next to the modeled phenomena. bound must be nonzero.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // 128-bit multiply-high without __int128: split into 32-bit halves.
    const std::uint64_t x = next();
    const std::uint64_t x_hi = x >> 32;
    const std::uint64_t x_lo = x & 0xffffffffULL;
    const std::uint64_t b_hi = bound >> 32;
    const std::uint64_t b_lo = bound & 0xffffffffULL;
    const std::uint64_t mid =
        ((x_lo * b_lo) >> 32) + x_hi * b_lo + ((x_lo * b_hi) & 0xffffffffULL);
    return x_hi * b_hi + (mid >> 32) + ((x_lo * b_hi) >> 32);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

  /// Derives an independent child generator (hierarchical seeding).
  [[nodiscard]] constexpr Rng fork(std::uint64_t salt) noexcept {
    return Rng{mix64(next(), salt)};
  }

 private:
  std::uint64_t state_;
};

/// A keyed pseudorandom bijection on [0, n) built from a 4-round Feistel
/// network over 2*k bits (the smallest even-bit width covering n) with
/// cycle-walking to stay inside [0, n). Forward and inverse are exact, so
/// the simulator can both place a device into a slot and answer "which
/// device occupies this slot" in O(1) expected time.
class FeistelPermutation {
 public:
  /// n must be >= 1; key selects the permutation.
  constexpr FeistelPermutation(std::uint64_t n, std::uint64_t key) noexcept
      : n_(n < 1 ? 1 : n), key_(key), half_bits_(half_bits_for(n_)) {}

  [[nodiscard]] constexpr std::uint64_t forward(std::uint64_t x) const noexcept {
    // Cycle-walk: apply the block cipher until the output lands in [0, n).
    // Expected iterations < 4 since the domain is at most 4x larger than n.
    do {
      x = encrypt(x);
    } while (x >= n_);
    return x;
  }

  [[nodiscard]] constexpr std::uint64_t inverse(std::uint64_t y) const noexcept {
    do {
      y = decrypt(y);
    } while (y >= n_);
    return y;
  }

  [[nodiscard]] constexpr std::uint64_t size() const noexcept { return n_; }

 private:
  static constexpr unsigned kRounds = 4;

  static constexpr unsigned half_bits_for(std::uint64_t n) noexcept {
    // Smallest k with 2^(2k) >= n, k >= 1.
    unsigned k = 1;
    while (k < 32 && (std::uint64_t{1} << (2 * k)) < n) ++k;
    return k;
  }

  [[nodiscard]] constexpr std::uint64_t round_fn(std::uint64_t half,
                                                 unsigned round)
      const noexcept {
    const std::uint64_t mask = (std::uint64_t{1} << half_bits_) - 1;
    return mix64(key_, half, round) & mask;
  }

  [[nodiscard]] constexpr std::uint64_t encrypt(std::uint64_t x) const noexcept {
    const std::uint64_t mask = (std::uint64_t{1} << half_bits_) - 1;
    std::uint64_t left = (x >> half_bits_) & mask;
    std::uint64_t right = x & mask;
    for (unsigned r = 0; r < kRounds; ++r) {
      const std::uint64_t tmp = right;
      right = left ^ round_fn(right, r);
      left = tmp;
    }
    return (left << half_bits_) | right;
  }

  [[nodiscard]] constexpr std::uint64_t decrypt(std::uint64_t y) const noexcept {
    const std::uint64_t mask = (std::uint64_t{1} << half_bits_) - 1;
    std::uint64_t left = (y >> half_bits_) & mask;
    std::uint64_t right = y & mask;
    for (unsigned r = kRounds; r-- > 0;) {
      const std::uint64_t tmp = left;
      left = right ^ round_fn(left, r);
      right = tmp;
    }
    return (left << half_bits_) | right;
  }

  std::uint64_t n_;
  std::uint64_t key_;
  unsigned half_bits_;
};

}  // namespace scent::sim
