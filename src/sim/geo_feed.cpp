#include "sim/geo_feed.h"

#include <algorithm>

namespace scent::sim {

GeoFeedGenerator::GeoFeedGenerator(GeoFeedSpec spec) : spec_(std::move(spec)) {
  std::sort(spec_.ouis.begin(), spec_.ouis.end());
  if (spec_.devices_per_oui == 0) spec_.devices_per_oui = 1;
  if (spec_.serial_stride == 0) spec_.serial_stride = 1;
  if (spec_.asn_count == 0) spec_.asn_count = 1;
  if (spec_.last_day < spec_.first_day) spec_.last_day = spec_.first_day;
}

GeoRecord GeoFeedGenerator::record(std::uint64_t i) const noexcept {
  const std::uint64_t oui_index = i / spec_.devices_per_oui;
  const std::uint64_t serial_index = i % spec_.devices_per_oui;
  const std::uint64_t serial =
      (spec_.serial_offset + serial_index * spec_.serial_stride) & 0xffffffULL;
  const std::uint64_t oui = spec_.ouis[oui_index];
  GeoRecord r;
  r.mac = net::MacAddress{(oui << 24) | serial};

  // All stochastic fields are stateless functions of (seed, mac): the same
  // device geolocates identically no matter how the feed is windowed.
  const std::uint64_t h = mix64(spec_.seed, r.mac.bits());
  r.asn = spec_.base_asn + static_cast<std::uint32_t>(h % spec_.asn_count);

  // A city-sized anchor per (oui, asn) "deployment region", plus per-device
  // street-level jitter of up to ~±0.05°.
  const std::uint64_t region = mix64(spec_.seed, oui, r.asn);
  const auto lat_center =
      static_cast<std::int32_t>(region % 120000000ULL) - 60000000;
  const auto lon_center =
      static_cast<std::int32_t>((region >> 32) % 360000000ULL) - 180000000;
  const std::uint64_t jitter = mix64(h, 0x6a177e5ULL);
  r.lat_udeg = lat_center + static_cast<std::int32_t>(jitter % 100000) - 50000;
  r.lon_udeg =
      lon_center + static_cast<std::int32_t>((jitter >> 32) % 100000) - 50000;

  const auto span =
      static_cast<std::uint64_t>(spec_.last_day - spec_.first_day) + 1;
  r.last_day = spec_.first_day +
               static_cast<std::int64_t>(mix64(h, 0xdau) % span);
  return r;
}

std::vector<GeoRecord> GeoFeedGenerator::generate() const {
  std::vector<GeoRecord> out;
  out.reserve(records());
  for (std::uint64_t i = 0; i < records(); ++i) out.push_back(record(i));
  return out;
}

}  // namespace scent::sim
