// rotation.h - prefix-rotation policy: when and where customer prefixes move.
//
// The paper's §5.4 reveals the in-the-wild mechanics this module models:
// AS8881 re-delegates every customer's prefix daily, during an early-morning
// maintenance window (Figure 10: reassignment between 00:00 and 06:00), and
// each device's /64 advances by a fixed stride, wrapping modulo the /46
// rotation pool (Figure 9). Other providers re-assign randomly within the
// pool, or not at all. All three behaviors are expressed here as a pure
// function from (device, time) to pool slot, with an exact inverse so the
// simulator can answer "which device owns this prefix right now?" in O(1).
#pragma once

#include <cstdint>
#include <optional>

#include "sim/rng.h"
#include "sim/sim_time.h"

namespace scent::sim {

/// Policy describing how allocations move within a rotation pool.
struct RotationPolicy {
  enum class Kind : std::uint8_t {
    kStatic,   ///< Prefixes never change (non-rotating provider).
    kStride,   ///< slot' = (slot + stride) mod n each epoch (AS8881-style).
    kShuffle,  ///< Fresh keyed permutation of all slots each epoch
               ///< (randomized temporary-mode DHCPv6).
  };

  Kind kind = Kind::kStatic;

  /// Rotation period; one epoch elapses per period. Must exceed
  /// window_start + window_length.
  Duration period = kDay;

  /// Rotations happen at period_start + window_start + per-device jitter
  /// within [0, window_length). Models the paper's observed 00:00-06:00
  /// CEST reassignment window.
  Duration window_start = 0;
  Duration window_length = hours(6);

  /// Slots advanced per epoch under kStride.
  std::uint64_t stride = 1;

  [[nodiscard]] constexpr bool rotates() const noexcept {
    return kind != Kind::kStatic;
  }
};

/// Computes rotation epochs and slot movements for one pool. Stateless: all
/// answers are pure functions of the policy, pool seed, and time, which is
/// what makes 44-day campaigns over millions of addresses affordable.
class RotationSchedule {
 public:
  RotationSchedule(RotationPolicy policy, std::uint64_t num_slots,
                   std::uint64_t seed) noexcept
      : policy_(policy), num_slots_(num_slots < 1 ? 1 : num_slots),
        seed_(seed) {}

  [[nodiscard]] const RotationPolicy& policy() const noexcept {
    return policy_;
  }
  [[nodiscard]] std::uint64_t num_slots() const noexcept { return num_slots_; }

  /// The rotation instant for period index p (p >= 1) and a device key:
  /// p*period + window_start + jitter(device, p).
  [[nodiscard]] TimePoint rotation_instant(std::uint64_t device_key,
                                           std::int64_t p) const noexcept {
    const Duration jitter =
        policy_.window_length <= 0
            ? 0
            : static_cast<Duration>(
                  mix64(seed_, device_key, static_cast<std::uint64_t>(p)) %
                  static_cast<std::uint64_t>(policy_.window_length));
    return p * policy_.period + policy_.window_start + jitter;
  }

  /// Number of rotations device `device_key` has undergone by time t.
  /// Epoch 0 runs from simulation start until the device's first rotation
  /// instant (inside period 1's window).
  [[nodiscard]] std::uint64_t epochs_elapsed(std::uint64_t device_key,
                                             TimePoint t) const noexcept {
    if (!policy_.rotates() || t < policy_.period) return 0;
    // Latest period index whose window could have opened by t.
    const std::int64_t p_full = (t - policy_.window_start) / policy_.period;
    if (p_full < 1) return 0;
    std::uint64_t epochs = static_cast<std::uint64_t>(p_full - 1);
    if (rotation_instant(device_key, p_full) <= t) ++epochs;
    return epochs;
  }

  /// Upper bound on any device's epoch count at time t (used to bound the
  /// inverse lookup's candidate set).
  [[nodiscard]] std::uint64_t max_epochs(TimePoint t) const noexcept {
    if (!policy_.rotates() || t < policy_.period) return 0;
    const std::int64_t p_full = (t - policy_.window_start) / policy_.period;
    return p_full < 0 ? 0 : static_cast<std::uint64_t>(p_full);
  }

  /// The slot a device occupies after `epoch` rotations, given its initial
  /// slot.
  [[nodiscard]] std::uint64_t slot_at(std::uint64_t initial_slot,
                                      std::uint64_t epoch) const noexcept {
    switch (policy_.kind) {
      case RotationPolicy::Kind::kStatic:
        return initial_slot % num_slots_;
      case RotationPolicy::Kind::kStride: {
        // (initial + epoch*stride) mod n without 128-bit overflow: reduce
        // the product incrementally.
        const std::uint64_t step =
            mul_mod(epoch % num_slots_, policy_.stride % num_slots_);
        return (initial_slot % num_slots_ + step) % num_slots_;
      }
      case RotationPolicy::Kind::kShuffle: {
        if (epoch == 0) return initial_slot % num_slots_;
        return FeistelPermutation{num_slots_, mix64(seed_, epoch)}.forward(
            initial_slot % num_slots_);
      }
    }
    return initial_slot % num_slots_;
  }

  /// Inverse of slot_at: the initial slot of whichever device occupies
  /// `slot` after `epoch` rotations.
  [[nodiscard]] std::uint64_t initial_of(std::uint64_t slot,
                                         std::uint64_t epoch) const noexcept {
    switch (policy_.kind) {
      case RotationPolicy::Kind::kStatic:
        return slot % num_slots_;
      case RotationPolicy::Kind::kStride: {
        const std::uint64_t step =
            mul_mod(epoch % num_slots_, policy_.stride % num_slots_);
        return (slot % num_slots_ + num_slots_ - step) % num_slots_;
      }
      case RotationPolicy::Kind::kShuffle: {
        if (epoch == 0) return slot % num_slots_;
        return FeistelPermutation{num_slots_, mix64(seed_, epoch)}.inverse(
            slot % num_slots_);
      }
    }
    return slot % num_slots_;
  }

 private:
  /// (a * b) mod num_slots_ via double-and-add, safe for any 64-bit inputs.
  [[nodiscard]] std::uint64_t mul_mod(std::uint64_t a,
                                      std::uint64_t b) const noexcept {
    std::uint64_t result = 0;
    a %= num_slots_;
    while (b != 0) {
      if ((b & 1) != 0) result = add_mod(result, a);
      a = add_mod(a, a);
      b >>= 1;
    }
    return result;
  }

  [[nodiscard]] std::uint64_t add_mod(std::uint64_t a,
                                      std::uint64_t b) const noexcept {
    // a, b < num_slots_ <= 2^63 keeps a+b from wrapping only if num_slots_
    // <= 2^63; pool sizes here are at most 2^32 slots, far below that.
    const std::uint64_t s = a + b;
    return s >= num_slots_ ? s - num_slots_ : s;
  }

  RotationPolicy policy_;
  std::uint64_t num_slots_;
  std::uint64_t seed_;
};

}  // namespace scent::sim
