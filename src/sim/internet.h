// internet.h - the simulated IPv6 Internet: routing glue over providers.
//
// Substitute for the real network behind the paper's vantage point. Accepts
// wire-format ICMPv6 Echo Request packets, routes them by longest-prefix
// match to the owning provider, and returns the wire-format response the
// real Internet would deliver (or nothing). Also exposes the BGP view
// (Routeviews substitute) that the analysis side uses for attribution —
// deliberately the same object, because in reality both derive from the same
// advertisements.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "netbase/ipv6_address.h"
#include "routing/bgp_table.h"
#include "routing/prefix_trie.h"
#include "sim/provider.h"
#include "wire/icmpv6.h"

namespace scent::sim {

struct NetContext;

class Internet {
 public:
  Internet() = default;

  /// Registers a provider; announces all its advertisements into the BGP
  /// table and the forwarding trie. Returns the provider index.
  std::size_t add_provider(ProviderConfig config);

  [[nodiscard]] Provider& provider(std::size_t index) {
    return *providers_[index];
  }
  [[nodiscard]] const Provider& provider(std::size_t index) const {
    return *providers_[index];
  }
  [[nodiscard]] std::size_t provider_count() const noexcept {
    return providers_.size();
  }

  /// Finds the provider owning an address, if advertised.
  [[nodiscard]] std::optional<std::size_t> route(net::Ipv6Address a) const {
    const auto match = forwarding_.longest_match(a);
    if (!match) return std::nullopt;
    return *match->value;
  }

  /// The global BGP view (used by analysis for response attribution).
  [[nodiscard]] const routing::BgpTable& bgp() const noexcept { return bgp_; }

  /// Logical fast path: probe a target with a hop limit at virtual time t.
  /// Uses the Internet's built-in stats and per-provider response contexts
  /// (single-threaded callers).
  [[nodiscard]] std::optional<ProbeReply> probe(net::Ipv6Address target,
                                                std::uint8_t hop_limit,
                                                TimePoint t);

  /// Same, against caller-owned mutable state. Const and thread safe:
  /// concurrent callers with disjoint contexts touch only the (read-only)
  /// topology. Stats accumulate in `ctx`; fold them back with
  /// absorb_stats() when the parallel region ends.
  [[nodiscard]] std::optional<ProbeReply> probe(net::Ipv6Address target,
                                                std::uint8_t hop_limit,
                                                TimePoint t,
                                                NetContext& ctx) const;

  /// Full wire path: parse, checksum-verify, route, respond. Malformed
  /// packets are dropped (and counted).
  [[nodiscard]] std::optional<wire::Packet> deliver(
      std::span<const std::uint8_t> packet_bytes, TimePoint t);

  /// Wire path against caller-owned state (see the probe overload).
  [[nodiscard]] std::optional<wire::Packet> deliver(
      std::span<const std::uint8_t> packet_bytes, TimePoint t,
      NetContext& ctx) const;

  struct Stats {
    std::uint64_t probes_received = 0;
    std::uint64_t malformed_dropped = 0;
    std::uint64_t unrouted = 0;
    std::uint64_t responses_sent = 0;

    void merge(const Stats& other) noexcept {
      probes_received += other.probes_received;
      malformed_dropped += other.malformed_dropped;
      unrouted += other.unrouted;
      responses_sent += other.responses_sent;
    }
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Folds context-accumulated stats into the global ledger, keeping
  /// stats() a whole-Internet total across serial and sharded callers.
  void absorb_stats(const Stats& delta) noexcept { stats_.merge(delta); }

 private:
  // unique_ptr: Provider carries mutable rate-limit state and is
  // move-only; pointer stability lets DeviceRef-style indices stay valid.
  std::vector<std::unique_ptr<Provider>> providers_;
  routing::BgpTable bgp_;
  routing::PrefixTrie<std::size_t> forwarding_;
  Stats stats_;
};

/// One execution scope's worth of mutable network state: response-policy
/// buckets plus delivery stats. The engine owns one per shard; everything
/// the probe path reads through `const Internet&` is then shared-safe.
struct NetContext {
  ResponseContext response;
  Internet::Stats stats;
};

}  // namespace scent::sim
