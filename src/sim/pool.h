// pool.h - a rotation pool: a block of provider address space within which
// customer allocations live and move.
//
// A pool is a prefix (e.g. a /46) subdivided into equal-size customer
// allocations (e.g. /56s -> 1024 slots). Devices occupy slots; the
// RotationSchedule decides which slot each device occupies at each instant.
// The pool can answer both directions: "where is device d at time t?" (used
// to build ground truth) and "which device owns the allocation containing
// address a at time t?" (used to synthesize probe responses).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "container/flat_hash.h"
#include "netbase/ipv6_address.h"
#include "netbase/prefix.h"
#include "sim/device.h"
#include "sim/rotation.h"

namespace scent::sim {

struct PoolConfig {
  net::Prefix prefix;            ///< The pool, e.g. 2001:db8:100::/46.
  unsigned allocation_length = 56;  ///< Customer prefix size, 48..64.
  RotationPolicy rotation;
  std::uint64_t seed = 0;
};

class RotationPool {
 public:
  explicit RotationPool(const PoolConfig& config)
      : config_(config),
        schedule_(config.rotation, slot_count_for(config), config.seed) {}

  [[nodiscard]] const PoolConfig& config() const noexcept { return config_; }
  [[nodiscard]] const RotationSchedule& schedule() const noexcept {
    return schedule_;
  }

  [[nodiscard]] std::uint64_t num_slots() const noexcept {
    return schedule_.num_slots();
  }

  /// Adds a device. Its initial_slot must be unique within the pool.
  /// Returns the device's index within this pool.
  std::size_t add_device(const CpeDevice& device) {
    const std::size_t index = devices_.size();
    devices_.push_back(device);
    initial_slot_index_.try_emplace(device.initial_slot % num_slots(), index);
    return index;
  }

  [[nodiscard]] const std::vector<CpeDevice>& devices() const noexcept {
    return devices_;
  }

  /// Mutable device access for scenario evolution (firmware-upgrade waves,
  /// service changes). Identity fields (initial_slot, id) must not change —
  /// the slot index is keyed on them.
  [[nodiscard]] std::vector<CpeDevice>& mutable_devices() noexcept {
    return devices_;
  }

  /// Rotation epoch of a device at time t.
  [[nodiscard]] std::uint64_t epoch_of(std::size_t device_index,
                                       TimePoint t) const {
    return schedule_.epochs_elapsed(device_key(device_index), t);
  }

  /// The slot (allocation index) a device occupies at time t.
  [[nodiscard]] std::uint64_t slot_of(std::size_t device_index,
                                      TimePoint t) const {
    return schedule_.slot_at(devices_[device_index].initial_slot,
                             epoch_of(device_index, t));
  }

  /// The customer allocation (prefix) delegated to a device at time t.
  [[nodiscard]] net::Prefix allocation_of(std::size_t device_index,
                                          TimePoint t) const {
    return config_.prefix.subnet(config_.allocation_length,
                                 net::Uint128{slot_of(device_index, t)});
  }

  /// The device's public WAN address at time t: the first /64 of its
  /// delegated allocation plus its mode-dependent IID.
  [[nodiscard]] net::Ipv6Address wan_address_of(std::size_t device_index,
                                                TimePoint t) const {
    const net::Prefix alloc = allocation_of(device_index, t);
    const std::uint64_t network = alloc.base().network();
    const std::uint64_t epoch = epoch_of(device_index, t);
    const CpeDevice& device = devices_[device_index];
    return net::Ipv6Address{
        network, device.wan_iid(epoch, network, device.mode_at(t))};
  }

  /// True if this pool's prefix covers the address.
  [[nodiscard]] bool covers(net::Ipv6Address a) const noexcept {
    return config_.prefix.contains(a);
  }

  /// The device whose delegated allocation contains `a` at time t, if any.
  /// Resolves by inverting the rotation schedule for the (at most two)
  /// plausible epoch values, so lookup cost is independent of pool size.
  [[nodiscard]] std::optional<std::size_t> device_owning(net::Ipv6Address a,
                                                         TimePoint t) const {
    const std::uint64_t slot_bits = static_cast<std::uint64_t>(
        (config_.prefix.subnet_index(a, config_.allocation_length)).lo());
    return device_at_slot(slot_bits, t);
  }

  /// The device occupying slot `slot` at time t, if any. During a rotation
  /// window two devices can transiently claim the same slot (one rotating
  /// out, one rotating in); the later-epoch device wins, matching a DHCPv6
  /// server's hand-off order. Probes during the window therefore see the
  /// incoming tenant — realistic measurement noise the paper's §5.4
  /// observes around the 00:00-06:00 reassignment period.
  [[nodiscard]] std::optional<std::size_t> device_at_slot(std::uint64_t slot,
                                                          TimePoint t) const {
    const std::uint64_t max_e = schedule_.max_epochs(t);
    // Mid-window, devices are split between epoch max_e (already rotated)
    // and max_e - 1 (not yet). Check the later epoch first so a freshly
    // rotated-in device shadows the one rotating out, as a DHCPv6 server
    // reassigning the prefix would.
    for (std::uint64_t delta = 0; delta < 2; ++delta) {
      if (max_e < delta) break;
      const std::uint64_t epoch = max_e - delta;
      const std::uint64_t initial = schedule_.initial_of(slot, epoch);
      const auto it = initial_slot_index_.find(initial);
      if (it == initial_slot_index_.end()) continue;
      const std::size_t index = it->second;
      if (!devices_[index].active_at(t)) continue;
      if (epoch_of(index, t) == epoch) return index;
    }
    return std::nullopt;
  }

 private:
  [[nodiscard]] std::uint64_t device_key(std::size_t device_index) const {
    return devices_[device_index].id;
  }

  [[nodiscard]] static std::uint64_t slot_count_for(const PoolConfig& c) {
    const unsigned bits = c.allocation_length > c.prefix.length()
                              ? c.allocation_length - c.prefix.length()
                              : 0;
    // Pools larger than 2^40 allocations are not constructible in tests or
    // benches; clamp to keep the arithmetic in uint64 territory.
    return std::uint64_t{1} << (bits > 40 ? 40 : bits);
  }

  PoolConfig config_;
  RotationSchedule schedule_;
  std::vector<CpeDevice> devices_;
  // Probed once per response synthesis; flat so the lookup is one
  // probe-table line plus one dense slot, no node chase.
  container::FlatMap<std::uint64_t, std::size_t> initial_slot_index_;
};

}  // namespace scent::sim
