// geo_feed.h - synthetic IPvSeeYou-style WiFi-geolocation feed generator.
//
// The IPvSeeYou attack (PAPERS.md) couples EUI-64-leaked MACs with a public
// WiFi-geolocation database: home routers broadcast a BSSID one or two off
// their WAN MAC, wardriving databases record that BSSID with a street-level
// fix, so any EUI-64 corpus joins against the feed to geolocate CPE. This
// generator models that second dataset: a MAC-keyed table of geolocated
// sightings — position, the AS the collector last saw the device behind, and
// a last-heard day — deterministic from a single seed.
//
// Every record is a pure function of (seed, index): the generator never
// materializes the feed, so the 100M-row join benchmark streams records
// straight into the on-disk writer (corpus/geo_feed.h). Records enumerate
// in ascending MAC order — OUIs sorted, serials ascending within each OUI —
// matching how a BSSID-keyed database dumps its keyspace, and giving the
// on-disk blocks the tight per-block MAC ranges the join's pruning feeds on.
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/mac_address.h"
#include "sim/rng.h"

namespace scent::sim {

/// One feed row: the device's MAC (BSSID) with its geolocation fix.
/// Positions are micro-degrees, the natural integer unit for a feed that
/// claims street-level accuracy (1 µ° ≈ 0.1 m of latitude).
struct GeoRecord {
  net::MacAddress mac;
  std::int32_t lat_udeg = 0;
  std::int32_t lon_udeg = 0;
  std::uint32_t asn = 0;      ///< AS the collector last observed it behind.
  std::int64_t last_day = 0;  ///< Last-heard day index.

  friend constexpr bool operator==(const GeoRecord&,
                                   const GeoRecord&) = default;
};

/// Shape of the generated feed. MACs are ouis[i / devices_per_oui] with
/// serial (i % devices_per_oui) * serial_stride + serial_offset, so a
/// corpus whose devices draw from the same OUI blocks overlaps the feed
/// exactly where the serial ranges intersect — and an OUI absent from the
/// corpus yields MAC-disjoint feed blocks, the pruning fixture.
struct GeoFeedSpec {
  std::uint64_t seed = 1;
  std::vector<std::uint32_t> ouis;  ///< 24-bit OUIs; sorted by the generator.
  std::uint64_t devices_per_oui = 1 << 16;
  std::uint64_t serial_stride = 1;
  std::uint64_t serial_offset = 0;
  std::uint32_t base_asn = 64500;  ///< Feed-side collector AS tags.
  unsigned asn_count = 8;
  std::int64_t first_day = 0;
  std::int64_t last_day = 30;
};

class GeoFeedGenerator {
 public:
  explicit GeoFeedGenerator(GeoFeedSpec spec);

  [[nodiscard]] std::uint64_t records() const noexcept {
    return spec_.ouis.size() * spec_.devices_per_oui;
  }

  /// The i-th record in ascending-MAC order. Deterministic in (spec, i).
  [[nodiscard]] GeoRecord record(std::uint64_t i) const noexcept;

  /// The whole feed in MAC order (small worlds / tests). Large feeds should
  /// stream record(i) into a GeoFeedWriter instead.
  [[nodiscard]] std::vector<GeoRecord> generate() const;

 private:
  GeoFeedSpec spec_;
};

}  // namespace scent::sim
