#include "sim/internet.h"

namespace scent::sim {

std::size_t Internet::add_provider(ProviderConfig config) {
  const std::size_t index = providers_.size();
  for (const auto& prefix : config.advertisements) {
    bgp_.announce(routing::Advertisement{prefix, config.asn, config.country,
                                         config.name});
    forwarding_.insert(prefix, index);
  }
  providers_.push_back(std::make_unique<Provider>(std::move(config)));
  return index;
}

std::optional<ProbeReply> Internet::probe(net::Ipv6Address target,
                                          std::uint8_t hop_limit,
                                          TimePoint t) {
  ++stats_.probes_received;
  const auto provider_index = route(target);
  if (!provider_index) {
    ++stats_.unrouted;
    return std::nullopt;
  }
  auto reply = providers_[*provider_index]->handle_probe(target, hop_limit, t);
  if (reply) ++stats_.responses_sent;
  return reply;
}

std::optional<ProbeReply> Internet::probe(net::Ipv6Address target,
                                          std::uint8_t hop_limit, TimePoint t,
                                          NetContext& ctx) const {
  ++ctx.stats.probes_received;
  const auto provider_index = route(target);
  if (!provider_index) {
    ++ctx.stats.unrouted;
    return std::nullopt;
  }
  auto reply = providers_[*provider_index]->handle_probe(target, hop_limit, t,
                                                         ctx.response);
  if (reply) ++ctx.stats.responses_sent;
  return reply;
}

std::optional<wire::Packet> Internet::deliver(
    std::span<const std::uint8_t> packet_bytes, TimePoint t) {
  const auto parsed = wire::parse_packet(packet_bytes);
  if (!parsed || parsed->icmp.type != wire::Icmpv6Type::kEchoRequest) {
    ++stats_.malformed_dropped;
    return std::nullopt;
  }

  const auto reply =
      probe(parsed->ip.destination, parsed->ip.hop_limit, t);
  if (!reply) return std::nullopt;

  if (reply->type == wire::Icmpv6Type::kEchoReply) {
    return wire::build_echo_reply(reply->source, parsed->ip.source,
                                  parsed->icmp.identifier,
                                  parsed->icmp.sequence);
  }
  return wire::build_error(reply->source, parsed->ip.source, reply->type,
                           reply->code, packet_bytes);
}

std::optional<wire::Packet> Internet::deliver(
    std::span<const std::uint8_t> packet_bytes, TimePoint t,
    NetContext& ctx) const {
  const auto parsed = wire::parse_packet(packet_bytes);
  if (!parsed || parsed->icmp.type != wire::Icmpv6Type::kEchoRequest) {
    ++ctx.stats.malformed_dropped;
    return std::nullopt;
  }

  const auto reply =
      probe(parsed->ip.destination, parsed->ip.hop_limit, t, ctx);
  if (!reply) return std::nullopt;

  if (reply->type == wire::Icmpv6Type::kEchoReply) {
    return wire::build_echo_reply(reply->source, parsed->ip.source,
                                  parsed->icmp.identifier,
                                  parsed->icmp.sequence);
  }
  return wire::build_error(reply->source, parsed->ip.source, reply->type,
                           reply->code, packet_bytes);
}

}  // namespace scent::sim
