#include "pipeline/pipeline.h"

#include <thread>
#include <utility>

#include "trace/recorder.h"

namespace scent::pipeline {

void Pipeline::add_stage(std::string name, std::function<void()> body) {
  stages_.push_back(Stage{std::move(name), std::move(body)});
}

void Pipeline::on_cancel(std::function<void()> hook) {
  cancel_hooks_.push_back(std::move(hook));
}

void Pipeline::fire_cancel() {
  std::call_once(cancel_once_, [this] {
    for (const auto& hook : cancel_hooks_) hook();
  });
}

void Pipeline::run() {
  metrics_.clear();
  metrics_.resize(stages_.size());
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    metrics_[i].name = stages_[i].name;
  }
  if (stages_.empty()) return;

  std::vector<std::exception_ptr> errors(stages_.size());
  const auto run_stage = [this, &errors](std::size_t i) {
    const std::uint64_t start = trace::TraceRecorder::now_wall_ns();
    try {
      stages_[i].body();
    } catch (const PipelineCancelled&) {
      errors[i] = std::current_exception();
      metrics_[i].failed = true;
      metrics_[i].cancelled = true;
      fire_cancel();
    } catch (...) {
      errors[i] = std::current_exception();
      metrics_[i].failed = true;
      fire_cancel();
    }
    metrics_[i].wall_ns = trace::TraceRecorder::now_wall_ns() - start;
  };

  if (stages_.size() == 1) {
    run_stage(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(stages_.size());
    for (std::size_t i = 0; i < stages_.size(); ++i) {
      workers.emplace_back([&run_stage, i] { run_stage(i); });
    }
    for (auto& worker : workers) worker.join();
  }

  // First real failure in stage order wins; cancellations only surface
  // when nothing else went wrong (see the header).
  std::exception_ptr first_cancelled;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (!errors[i]) continue;
    if (metrics_[i].cancelled) {
      if (!first_cancelled) first_cancelled = errors[i];
      continue;
    }
    std::rethrow_exception(errors[i]);
  }
  if (first_cancelled) std::rethrow_exception(first_cancelled);
}

}  // namespace scent::pipeline
