// pipeline.h - the stage executor: named concurrent stages, one failure
// policy, deterministic error propagation.
//
// A Pipeline is a set of named stages (plain callables) that run
// concurrently, one thread per stage, connected by whatever BoundedQueues
// the caller threads through their closures — the executor does not know
// or care about the dataflow topology, only about lifecycle:
//
//   * run() starts every stage, joins every stage, and only then returns
//     or throws. A single-stage pipeline runs inline on the calling
//     thread (the serial reference path — no spawn/join overhead), which
//     keeps run_shards' one-shard fast path intact now that it is built
//     on this executor.
//
//   * The first stage to throw trips the cancel hooks (registered via
//     on_cancel, typically "close every queue in the topology"), so
//     stages blocked in push()/pop() observe end-of-stream and unwind
//     instead of deadlocking against a dead peer.
//
//   * After the join, the first *failed* stage in stage order decides the
//     exception run() rethrows — deterministic no matter which thread
//     lost the race. Stages that unwound with PipelineCancelled (the
//     "my queue was closed under me" signal) are only reported if no
//     stage failed for a real reason: cancellation is a consequence of
//     the first failure, not a cause.
//
// Stage wall times and failure flags are kept per stage (metrics()) so
// callers can fold stage latencies into telemetry after the join.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace scent::pipeline {

/// Thrown by stage bodies when their queue closes under them mid-stream —
/// the cooperative "another stage failed, stop working" unwind. run()
/// never reports it while any stage holds a real exception.
struct PipelineCancelled : std::exception {
  [[nodiscard]] const char* what() const noexcept override {
    return "pipeline stage cancelled";
  }
};

struct StageMetrics {
  std::string name;
  std::uint64_t wall_ns = 0;
  bool failed = false;     ///< Threw anything, including PipelineCancelled.
  bool cancelled = false;  ///< The exception was PipelineCancelled.
};

class Pipeline {
 public:
  /// Adds a stage; stages start in add order and errors rethrow in add
  /// order, so add producers before their consumers when the distinction
  /// matters (a producer's failure then wins over the drain it starved).
  void add_stage(std::string name, std::function<void()> body);

  /// Registers a hook fired exactly once, from the first failing stage's
  /// thread, before run() returns. Hooks must be safe to call while other
  /// stages are still running — closing BoundedQueues is the intended use.
  void on_cancel(std::function<void()> hook);

  /// Runs every stage to completion (see the file comment). Safe to call
  /// once per Pipeline instance.
  void run();

  /// Per-stage wall times and failure flags, valid after run().
  [[nodiscard]] const std::vector<StageMetrics>& metrics() const noexcept {
    return metrics_;
  }

 private:
  struct Stage {
    std::string name;
    std::function<void()> body;
  };

  void fire_cancel();

  std::vector<Stage> stages_;
  std::vector<std::function<void()>> cancel_hooks_;
  std::vector<StageMetrics> metrics_;
  std::once_flag cancel_once_;
};

}  // namespace scent::pipeline
