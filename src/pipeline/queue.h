// queue.h - bounded blocking queues: the pipeline's only shared state.
//
// A BoundedQueue<T> connects exactly one producing stage to one consuming
// stage (SPSC in every topology the tree builds today, though nothing here
// assumes it — the lock covers arbitrary producers/consumers). Capacity is
// the backpressure contract: push() blocks while the queue is full, so a
// fast producer can run at most `capacity` items ahead of its consumer and
// the memory in flight stays bounded no matter how lopsided the stages
// are. Wall-clock then tracks the slowest stage instead of the sum of
// stages, which is the whole point of the pipeline (DESIGN.md §5i).
//
// Shutdown is cooperative: close() wakes every blocked thread; after it,
// push() refuses new items (returns false) and pop() drains whatever is
// still buffered before returning false. A producer closes its output
// queue when it finishes (or unwinds), which is how "end of stream"
// propagates down a stage chain without sentinel items.
//
// The queue keeps its own ledger — items through, time spent blocked on
// either side, high-water depth — so the executor can fold stall time and
// queue depth into telemetry without instrumenting the hot path twice.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

#include "trace/recorder.h"

namespace scent::pipeline {

/// Counters a queue accumulates over its lifetime; see BoundedQueue::stats.
struct QueueStats {
  std::uint64_t pushed = 0;         ///< Items accepted by push().
  std::uint64_t popped = 0;         ///< Items handed out by pop().
  std::uint64_t push_stall_ns = 0;  ///< Wall time producers spent blocked.
  std::uint64_t pop_stall_ns = 0;   ///< Wall time consumers spent blocked.
  std::uint64_t high_water = 0;     ///< Maximum buffered depth ever seen.
};

template <typename T>
class BoundedQueue {
 public:
  /// A zero capacity is promoted to one — a rendezvous of size 0 would
  /// deadlock a blocking push against a blocking pop.
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. True once the item is enqueued; false if the queue
  /// was closed (the item is dropped — the stream is over).
  bool push(T item) {
    std::unique_lock<std::mutex> lock{mutex_};
    if (items_.size() >= capacity_ && !closed_) {
      const std::uint64_t start = trace::TraceRecorder::now_wall_ns();
      not_full_.wait(lock,
                     [this] { return items_.size() < capacity_ || closed_; });
      stats_.push_stall_ns += trace::TraceRecorder::now_wall_ns() - start;
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    ++stats_.pushed;
    if (items_.size() > stats_.high_water) stats_.high_water = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed (item is left intact in
  /// the caller's hands only conceptually — it is moved-from on success).
  bool try_push(T& item) {
    std::unique_lock<std::mutex> lock{mutex_};
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    ++stats_.pushed;
    if (items_.size() > stats_.high_water) stats_.high_water = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty and open. True with `out` filled; false once the
  /// queue is closed *and* drained — the consumer's end-of-stream signal.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock{mutex_};
    if (items_.empty() && !closed_) {
      const std::uint64_t start = trace::TraceRecorder::now_wall_ns();
      not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
      stats_.pop_stall_ns += trace::TraceRecorder::now_wall_ns() - start;
    }
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    ++stats_.popped;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Non-blocking pop; false when nothing is buffered.
  bool try_pop(T& out) {
    std::unique_lock<std::mutex> lock{mutex_};
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    ++stats_.popped;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Ends the stream: wakes every blocked thread, makes push() refuse and
  /// lets pop() drain the remainder. Idempotent and safe from any thread —
  /// including the executor's cancel path while stages are still blocked.
  void close() {
    {
      const std::lock_guard<std::mutex> lock{mutex_};
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock{mutex_};
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock{mutex_};
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] QueueStats stats() const {
    const std::lock_guard<std::mutex> lock{mutex_};
    return stats_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  QueueStats stats_;
  bool closed_ = false;
};

}  // namespace scent::pipeline
