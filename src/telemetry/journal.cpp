#include "telemetry/journal.h"

#include <atomic>
#include <cctype>
#include <charconv>
#include <cinttypes>
#include <cstdlib>

namespace scent::telemetry {

namespace {

/// One per-process sequence counter shared by every Journal instance:
/// "seq" totally orders events across concurrently written journals of
/// the same run. Relaxed is enough — monotonic uniqueness is the contract,
/// not cross-field synchronization.
std::atomic<std::uint64_t> g_journal_seq{0};

/// Skips spaces and tabs (the writer never emits them, but hand-edited
/// journals are legitimate input).
void skip_ws(std::string_view& s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
}

bool consume(std::string_view& s, char c) {
  skip_ws(s);
  if (s.empty() || s.front() != c) return false;
  s.remove_prefix(1);
  return true;
}

/// Parses a quoted JSON string (after the opening quote has NOT yet been
/// consumed). Handles the escapes the writer emits plus \uXXXX for
/// codepoints below 256.
std::optional<std::string> parse_string(std::string_view& s) {
  if (!consume(s, '"')) return std::nullopt;
  std::string out;
  while (!s.empty()) {
    const char c = s.front();
    s.remove_prefix(1);
    if (c == '"') return out;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (s.empty()) return std::nullopt;
    const char esc = s.front();
    s.remove_prefix(1);
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (s.size() < 4) return std::nullopt;
        unsigned code = 0;
        const auto [ptr, ec] =
            std::from_chars(s.data(), s.data() + 4, code, 16);
        if (ec != std::errc{} || ptr != s.data() + 4) return std::nullopt;
        s.remove_prefix(4);
        out += code < 256 ? static_cast<char>(code) : '?';
        break;
      }
      default:
        return std::nullopt;
    }
  }
  return std::nullopt;  // unterminated
}

std::optional<JournalValue> parse_value(std::string_view& s) {
  skip_ws(s);
  if (s.empty()) return std::nullopt;
  if (s.front() == '"') {
    auto str = parse_string(s);
    if (!str) return std::nullopt;
    return JournalValue{std::move(*str)};
  }
  if (s.starts_with("true")) {
    s.remove_prefix(4);
    return JournalValue{true};
  }
  if (s.starts_with("false")) {
    s.remove_prefix(5);
    return JournalValue{false};
  }
  // Number: integer unless it contains '.', 'e', or 'E'.
  std::size_t end = 0;
  bool floating = false;
  while (end < s.size()) {
    const char c = s[end];
    if (c == '.' || c == 'e' || c == 'E') floating = true;
    if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '-' &&
        c != '+' && c != '.' && c != 'e' && c != 'E') {
      break;
    }
    ++end;
  }
  if (end == 0) return std::nullopt;
  const std::string_view num = s.substr(0, end);
  if (floating) {
    // std::from_chars<double> is not universally available; the number is
    // short and already validated, so strtod on a bounded copy is fine.
    const std::string copy{num};
    char* parse_end = nullptr;
    const double value = std::strtod(copy.c_str(), &parse_end);
    if (parse_end != copy.c_str() + copy.size()) return std::nullopt;
    s.remove_prefix(end);
    return JournalValue{value};
  }
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(num.data(), num.data() + num.size(),
                                         value);
  if (ec != std::errc{} || ptr != num.data() + num.size()) return std::nullopt;
  s.remove_prefix(end);
  return JournalValue{value};
}

}  // namespace

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_value(std::string& out, const JournalValue& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRId64, *i);
    out += buf;
  } else if (const auto* d = std::get_if<double>(&value)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", *d);
    out += buf;
  } else if (const auto* b = std::get_if<bool>(&value)) {
    out += *b ? "true" : "false";
  } else {
    append_json_string(out, std::get<std::string>(value));
  }
}

bool Journal::open(const std::string& path) {
  (void)close();
  handle_ = std::fopen(path.c_str(), "w");
  if (handle_ == nullptr) return false;
  path_ = path;
  events_ = 0;
  dropped_ = 0;
  write_failed_ = false;
  return true;
}

bool Journal::event(std::string_view type,
                    std::initializer_list<JournalField> fields) {
  if (handle_ == nullptr) return false;
  std::string line;
  line.reserve(64 + fields.size() * 24);
  line += "{\"type\":";
  append_json_string(line, type);
  {
    char buf[32];
    std::snprintf(buf, sizeof buf, ",\"seq\":%" PRIu64,
                  g_journal_seq.fetch_add(1, std::memory_order_relaxed));
    line += buf;
  }
  if (clock_ != nullptr) {
    char buf[32];
    std::snprintf(buf, sizeof buf, ",\"time_us\":%" PRId64, clock_->now());
    line += buf;
  }
  for (const auto& field : fields) {
    line += ',';
    append_json_string(line, field.key);
    line += ':';
    append_json_value(line, field.value);
  }
  line += "}\n";
  if (std::fwrite(line.data(), 1, line.size(), handle_) != line.size()) {
    write_failed_ = true;
    ++dropped_;
    if (drop_counter_ != nullptr) drop_counter_->inc();
    return false;
  }
  ++events_;
  return true;
}

bool Journal::close() {
  if (handle_ == nullptr) return !write_failed_;
  const bool stream_clean = std::ferror(handle_) == 0;
  const bool close_clean = std::fclose(handle_) == 0;
  handle_ = nullptr;
  write_failed_ = write_failed_ || !stream_clean || !close_clean;
  return !write_failed_;
}

std::optional<JournalEvent> parse_journal_line(std::string_view line) {
  // Trim trailing newline/CR.
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  std::string_view s = line;
  if (!consume(s, '{')) return std::nullopt;
  JournalEvent event;
  bool have_type = false;
  skip_ws(s);
  if (!s.empty() && s.front() == '}') {
    return std::nullopt;  // empty object: no type
  }
  while (true) {
    auto key = parse_string(s);
    if (!key || !consume(s, ':')) return std::nullopt;
    auto value = parse_value(s);
    if (!value) return std::nullopt;
    if (*key == "type") {
      const auto* str = std::get_if<std::string>(&*value);
      if (str == nullptr) return std::nullopt;
      event.type = *str;
      have_type = true;
    } else {
      event.fields.emplace_back(std::move(*key), std::move(*value));
    }
    if (consume(s, ',')) continue;
    if (consume(s, '}')) break;
    return std::nullopt;
  }
  skip_ws(s);
  if (!s.empty() || !have_type) return std::nullopt;
  return event;
}

std::optional<std::vector<JournalEvent>> load_journal(const std::string& path,
                                                      std::size_t* skipped) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return std::nullopt;
  std::vector<JournalEvent> events;
  std::size_t bad = 0;
  char line[4096];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    const std::string_view text{line};
    if (text.find_first_not_of(" \t\r\n") == std::string_view::npos) continue;
    if (auto event = parse_journal_line(text)) {
      events.push_back(std::move(*event));
    } else {
      ++bad;
    }
  }
  std::fclose(f);
  if (skipped != nullptr) *skipped = bad;
  return events;
}

}  // namespace scent::telemetry
