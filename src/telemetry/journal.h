// journal.h - the structured event journal: one JSON object per line.
//
// Campaigns emit a small number of *notable* events — per-day funnel
// records, rotation windows detected, pathologies classified, tracker
// hits/misses — that deserve durable, machine-readable storage next to the
// CSV corpora core/io.cpp writes. JSONL fits: appendable, greppable, one
// self-describing record per line, parseable by anything.
//
// Writer style follows core/io.cpp: stdio (no iostreams on data paths),
// tolerant reader, and explicit error reporting — a full disk surfaces as
// a false return from event()/close(), never silently.
#pragma once

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "sim/sim_time.h"
#include "telemetry/metrics.h"

namespace scent::telemetry {

/// A journal field value. Unsigned sources are stored as int64 (funnel
/// counts fit comfortably; JSON has no unsigned type anyway).
using JournalValue = std::variant<std::int64_t, double, bool, std::string>;

/// One key/value pair of an event. The constructor overload set exists so
/// braced initializers like {"probes", sent_counter} pick the intended
/// arithmetic alternative instead of fighting variant conversion rules.
struct JournalField {
  std::string_view key;
  JournalValue value;

  JournalField(std::string_view k, std::int64_t v) : key(k), value(v) {}
  JournalField(std::string_view k, std::uint64_t v)
      : key(k), value(static_cast<std::int64_t>(v)) {}
  JournalField(std::string_view k, int v)
      : key(k), value(static_cast<std::int64_t>(v)) {}
  JournalField(std::string_view k, unsigned v)
      : key(k), value(static_cast<std::int64_t>(v)) {}
  JournalField(std::string_view k, double v) : key(k), value(v) {}
  JournalField(std::string_view k, bool v) : key(k), value(v) {}
  JournalField(std::string_view k, const char* v)
      : key(k), value(std::string{v}) {}
  JournalField(std::string_view k, std::string_view v)
      : key(k), value(std::string{v}) {}
  JournalField(std::string_view k, std::string v)
      : key(k), value(std::move(v)) {}
};

/// A parsed journal line.
struct JournalEvent {
  std::string type;
  std::vector<std::pair<std::string, JournalValue>> fields;  ///< Minus "type".

  [[nodiscard]] const JournalValue* find(std::string_view key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// JSONL event writer. Events carry a "type" key, a "seq" number drawn
/// from one per-process monotonic counter (so interleaved journals from
/// the same run can be totally ordered after the fact), an automatic
/// "time_us" virtual timestamp when a clock is bound, and the caller's
/// fields.
class Journal {
 public:
  Journal() = default;
  ~Journal() { (void)close(); }
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens (truncates) `path`. Returns false and stays closed on failure.
  bool open(const std::string& path);

  /// Virtual clock used to stamp events with "time_us" (optional).
  void set_clock(const sim::VirtualClock* clock) noexcept { clock_ = clock; }

  /// Optional counter bumped once per dropped event — the conventional
  /// wiring is &registry.counter("journal.dropped"), so a full disk shows
  /// up in the telemetry summary instead of only in event()'s return.
  void set_drop_counter(Counter* counter) noexcept {
    drop_counter_ = counter;
  }

  /// Appends one event line. Returns false if the journal is closed or the
  /// write failed (the journal stays usable; failures are also remembered
  /// and re-reported by close()).
  bool event(std::string_view type, std::initializer_list<JournalField> fields);

  /// Flush-closes the file. Returns false if any write (including buffered
  /// data flushed here — the disk-full case) failed. Idempotent.
  bool close();

  [[nodiscard]] bool is_open() const noexcept { return handle_ != nullptr; }
  [[nodiscard]] std::size_t events_written() const noexcept { return events_; }
  /// Events lost to failed writes on this journal (never silent: also
  /// mirrored into the drop counter when one is bound).
  [[nodiscard]] std::size_t events_dropped() const noexcept {
    return dropped_;
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::FILE* handle_ = nullptr;
  std::string path_;
  const sim::VirtualClock* clock_ = nullptr;
  Counter* drop_counter_ = nullptr;
  std::size_t events_ = 0;
  std::size_t dropped_ = 0;
  bool write_failed_ = false;
};

/// Appends `value` to `out` as JSON (strings escaped and quoted).
void append_json_value(std::string& out, const JournalValue& value);

/// Appends `text` to `out` as a quoted, escaped JSON string.
void append_json_string(std::string& out, std::string_view text);

/// Parses one journal line (a flat JSON object of string/number/bool
/// values). Returns nullopt on malformed input or a missing "type" key.
[[nodiscard]] std::optional<JournalEvent> parse_journal_line(
    std::string_view line);

/// Reads a whole journal file; nullopt if the file cannot be opened.
/// Malformed lines are skipped, counted in *skipped when provided.
[[nodiscard]] std::optional<std::vector<JournalEvent>> load_journal(
    const std::string& path, std::size_t* skipped = nullptr);

}  // namespace scent::telemetry
