// export.h - registry exporters: the human-readable per-stage summary the
// bench harnesses print, and the machine-readable JSON dump the bench
// trajectory (and any external tooling) consumes.
#pragma once

#include <cstdio>
#include <string>

#include "telemetry/metrics.h"

namespace scent::telemetry {

/// Renders a virtual-clock duration as "[Nd ]HH:MM:SS".
[[nodiscard]] std::string format_virtual_duration(sim::Duration us);

/// Derives the value at quantile q in [0, 1] from a fixed-bucket
/// histogram: walks cumulative bucket counts to rank ceil(q * count) and
/// returns that bucket's upper bound (the exact max for the overflow
/// bucket), clamped to the observed [min, max]. Coarse by construction —
/// fixed buckets cap resolution — but it makes every histogram report
/// p50/p90/p99 alongside count/mean/min/max.
[[nodiscard]] std::uint64_t histogram_quantile(const Histogram& histogram,
                                               double q);

/// Prints the span tree (wall + virtual durations, call counts), counters,
/// gauges, and histograms as an aligned text block. Spans print in first-
/// opened order with nesting indentation, so the output reads as the
/// pipeline's stage breakdown.
void print_summary(std::FILE* out, const Registry& registry);

/// Serializes the whole registry as one JSON object:
/// {"counters":{...},"gauges":{...},"histograms":{...},"spans":[...]}.
[[nodiscard]] std::string to_json(const Registry& registry);

/// Writes to_json() to `path`. Returns false on any I/O failure.
bool write_json(const std::string& path, const Registry& registry);

}  // namespace scent::telemetry
