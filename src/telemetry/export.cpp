#include "telemetry/export.h"

#include <algorithm>
#include <cinttypes>
#include <vector>

#include "telemetry/journal.h"

namespace scent::telemetry {

namespace {

std::string format_wall(std::uint64_t ns) {
  char buf[32];
  const double seconds = static_cast<double>(ns) / 1e9;
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.2fs", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fus", seconds * 1e6);
  }
  return buf;
}

/// Span rows in first-opened order — pre-order of the stage tree, since a
/// parent span always opens before its children.
std::vector<const std::pair<const std::string, SpanStats>*> ordered_spans(
    const Registry& registry) {
  std::vector<const std::pair<const std::string, SpanStats>*> rows;
  rows.reserve(registry.spans().size());
  for (const auto& entry : registry.spans()) rows.push_back(&entry);
  std::sort(rows.begin(), rows.end(), [](const auto* a, const auto* b) {
    return a->second.first_seq < b->second.first_seq;
  });
  return rows;
}

std::string_view leaf_name(const std::string& path) {
  const auto pos = path.rfind('/');
  return pos == std::string::npos ? std::string_view{path}
                                  : std::string_view{path}.substr(pos + 1);
}

}  // namespace

std::uint64_t histogram_quantile(const Histogram& histogram, double q) {
  const std::uint64_t n = histogram.count();
  if (n == 0) return 0;
  if (q <= 0.0) return histogram.min();
  if (q >= 1.0) return histogram.max();
  std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(n)) + 1;
  if (rank > n) rank = n;
  const auto& bounds = histogram.bounds();
  const auto& buckets = histogram.buckets();
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      std::uint64_t v = i < bounds.size() ? bounds[i] : histogram.max();
      if (v < histogram.min()) v = histogram.min();
      if (v > histogram.max()) v = histogram.max();
      return v;
    }
  }
  return histogram.max();
}

std::string format_virtual_duration(sim::Duration us) {
  const char* sign = us < 0 ? "-" : "";
  if (us < 0) us = -us;
  const std::int64_t total_seconds = us / sim::kSecond;
  const std::int64_t days = total_seconds / (24 * 3600);
  const std::int64_t hh = (total_seconds / 3600) % 24;
  const std::int64_t mm = (total_seconds / 60) % 60;
  const std::int64_t ss = total_seconds % 60;
  char buf[48];
  if (days > 0) {
    std::snprintf(buf, sizeof buf,
                  "%s%" PRId64 "d %02" PRId64 ":%02" PRId64 ":%02" PRId64,
                  sign, days, hh, mm, ss);
  } else {
    std::snprintf(buf, sizeof buf, "%s%02" PRId64 ":%02" PRId64 ":%02" PRId64,
                  sign, hh, mm, ss);
  }
  return buf;
}

void print_summary(std::FILE* out, const Registry& registry) {
  std::fprintf(out, "  -- telemetry %s\n",
               std::string(49, '-').c_str());

  const auto spans = ordered_spans(registry);
  if (!spans.empty()) {
    std::fprintf(out, "  %-34s %10s %14s %8s\n", "span", "wall", "virtual",
                 "calls");
    for (const auto* entry : spans) {
      const auto& [path, stats] = *entry;
      const std::string name =
          std::string(2 * stats.depth, ' ') + std::string{leaf_name(path)};
      std::fprintf(out, "  %-34s %10s %14s %8" PRIu64 "\n", name.c_str(),
                   format_wall(stats.wall_ns).c_str(),
                   format_virtual_duration(stats.virtual_us).c_str(),
                   stats.count);
    }
  }

  if (!registry.counters().empty()) {
    std::fprintf(out, "  counters:\n");
    for (const auto& [name, counter] : registry.counters()) {
      std::fprintf(out, "    %-32s %14" PRIu64 "\n", name.c_str(),
                   counter.value());
    }
  }

  if (!registry.gauges().empty()) {
    std::fprintf(out, "  gauges:\n");
    for (const auto& [name, gauge] : registry.gauges()) {
      std::fprintf(out, "    %-32s %14" PRId64 "\n", name.c_str(),
                   gauge.value());
    }
  }

  if (!registry.histograms().empty()) {
    std::fprintf(out, "  histograms:\n");
    for (const auto& [name, histogram] : registry.histograms()) {
      std::fprintf(out,
                   "    %-32s n=%" PRIu64 " mean=%.1f min=%" PRIu64
                   " max=%" PRIu64 "\n",
                   name.c_str(), histogram.count(), histogram.mean(),
                   histogram.min(), histogram.max());
      if (histogram.count() == 0) continue;
      std::fprintf(out,
                   "      p50=%" PRIu64 " p90=%" PRIu64 " p99=%" PRIu64 "\n",
                   histogram_quantile(histogram, 0.50),
                   histogram_quantile(histogram, 0.90),
                   histogram_quantile(histogram, 0.99));
      std::fprintf(out, "      ");
      const auto& bounds = histogram.bounds();
      const auto& buckets = histogram.buckets();
      for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0) continue;
        if (i < bounds.size()) {
          std::fprintf(out, "le%" PRIu64 ":%" PRIu64 " ", bounds[i],
                       buckets[i]);
        } else {
          std::fprintf(out, "inf:%" PRIu64 " ", buckets[i]);
        }
      }
      std::fprintf(out, "\n");
    }
  }

  if (!registry.sketches().empty()) {
    std::fprintf(out, "  sketches:\n");
    for (const auto& [name, sketch] : registry.sketches()) {
      std::fprintf(out,
                   "    %-32s n=%" PRIu64 " mean=%.1f min=%" PRIu64
                   " max=%" PRIu64 "\n",
                   name.c_str(), sketch.count(), sketch.mean(), sketch.min(),
                   sketch.max());
      if (sketch.count() == 0) continue;
      std::fprintf(out,
                   "      p50=%" PRIu64 " p90=%" PRIu64 " p99=%" PRIu64
                   " p99.9=%" PRIu64 "\n",
                   sketch.quantile(0.50), sketch.quantile(0.90),
                   sketch.quantile(0.99), sketch.quantile(0.999));
    }
  }
  std::fprintf(out, "  %s\n", std::string(62, '-').c_str());
}

std::string to_json(const Registry& registry) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : registry.counters()) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    char buf[24];
    std::snprintf(buf, sizeof buf, ":%" PRIu64, counter.value());
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : registry.gauges()) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    char buf[24];
    std::snprintf(buf, sizeof buf, ":%" PRId64, gauge.value());
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : registry.histograms()) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  ":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64 ",\"min\":%" PRIu64
                  ",\"max\":%" PRIu64 ",\"p50\":%" PRIu64 ",\"p90\":%" PRIu64
                  ",\"p99\":%" PRIu64 ",\"bounds\":[",
                  histogram.count(), histogram.sum(), histogram.min(),
                  histogram.max(), histogram_quantile(histogram, 0.50),
                  histogram_quantile(histogram, 0.90),
                  histogram_quantile(histogram, 0.99));
    out += buf;
    for (std::size_t i = 0; i < histogram.bounds().size(); ++i) {
      if (i != 0) out += ',';
      std::snprintf(buf, sizeof buf, "%" PRIu64, histogram.bounds()[i]);
      out += buf;
    }
    out += "],\"buckets\":[";
    for (std::size_t i = 0; i < histogram.buckets().size(); ++i) {
      if (i != 0) out += ',';
      std::snprintf(buf, sizeof buf, "%" PRIu64, histogram.buckets()[i]);
      out += buf;
    }
    out += "]}";
  }
  out += "},\"sketches\":{";
  first = true;
  for (const auto& [name, sketch] : registry.sketches()) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  ":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64 ",\"min\":%" PRIu64
                  ",\"max\":%" PRIu64 ",\"p50\":%" PRIu64 ",\"p90\":%" PRIu64
                  ",\"p99\":%" PRIu64 ",\"p999\":%" PRIu64 "}",
                  sketch.count(), sketch.sum(), sketch.min(), sketch.max(),
                  sketch.quantile(0.50), sketch.quantile(0.90),
                  sketch.quantile(0.99), sketch.quantile(0.999));
    out += buf;
  }
  out += "},\"spans\":[";
  first = true;
  for (const auto* entry : ordered_spans(registry)) {
    const auto& [path, stats] = *entry;
    if (!first) out += ',';
    first = false;
    out += "{\"path\":";
    append_json_string(out, path);
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  ",\"depth\":%u,\"calls\":%" PRIu64 ",\"wall_ns\":%" PRIu64
                  ",\"virtual_us\":%" PRId64 "}",
                  stats.depth, stats.count, stats.wall_ns, stats.virtual_us);
    out += buf;
  }
  out += "]}";
  return out;
}

bool write_json(const std::string& path, const Registry& registry) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json(registry) + "\n";
  const bool wrote = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

}  // namespace scent::telemetry
