// metrics.h - the scent metrics registry: named counters, gauges, and
// fixed-bucket histograms, plus the aggregated span statistics scoped
// telemetry::Span instances record into it.
//
// Design constraints, in order:
//   1. The probe hot path (fast mode runs millions of probe_one calls per
//      wall second) must pay at most a cached-pointer increment per event.
//      Instruments therefore have stable addresses — callers look a metric
//      up once by name and keep the pointer — and an update is one relaxed
//      atomic add. No locks.
//   2. Counter and gauge cells are relaxed atomics so the engine's shard
//      workers may share one registry (every shard bumping probe.sent)
//      without data races; histograms and spans stay single-writer (they
//      belong to stage drivers, not packet loops). Instrument *creation*
//      is not thread safe — create before the workers start, or give each
//      shard its own registry and merge_counters_from() after the join.
//   3. A registry pointer of nullptr disables everything: every
//      instrumentation site null-checks, so un-instrumented library users
//      pay one predictable branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/sim_time.h"
#include "trace/quantile.h"

namespace scent::telemetry {

/// Monotonically increasing event count (probes sent, tracker hits, ...).
/// Updates and reads are relaxed atomics: concurrent increments never lose
/// counts, but readers racing with writers see a momentary snapshot.
class Counter {
 public:
  void inc() noexcept { add(1); }

  void add(std::uint64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins signed level (funnel stage sizes, config knobs).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }

  void set_u64(std::uint64_t v) noexcept { set(static_cast<std::int64_t>(v)); }

  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram over non-negative integer samples. Buckets are
/// cumulative-style "value <= bound" with an implicit +inf overflow bucket.
/// Single-writer, unlike counters and gauges (histograms belong to stage
/// drivers, not the packet loop).
class Histogram {
 public:
  Histogram() = default;

  /// `bounds` must be ascending; the overflow bucket is appended.
  explicit Histogram(std::vector<std::uint64_t> bounds)
      : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {}

  void observe(std::uint64_t v) noexcept {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    ++buckets_[i];
    sum_ += v;
    if (count_ == 0 || v < min_) min_ = v;
    if (count_ == 0 || v > max_) max_ = v;
    ++count_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return min_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const noexcept {
    return bounds_;
  }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> buckets_{0};  // degenerate: single +inf bucket
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Aggregated statistics for one span path ("campaign/day/sweep").
struct SpanStats {
  std::uint64_t count = 0;        ///< Completed spans at this path.
  std::uint64_t wall_ns = 0;      ///< Total wall-clock time.
  std::int64_t virtual_us = 0;    ///< Total sim::VirtualClock time.
  unsigned depth = 0;             ///< Nesting depth (0 = root).
  std::uint64_t first_seq = 0;    ///< Creation order, for report sorting.
};

/// The named-instrument registry. Instruments are created on first lookup
/// and live as long as the registry; returned references stay valid (the
/// backing maps are node-based).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name) {
    return counters_.try_emplace(std::string{name}).first->second;
  }
  Gauge& gauge(std::string_view name) {
    return gauges_.try_emplace(std::string{name}).first->second;
  }
  /// `bounds` is consulted only on first creation of `name`.
  Histogram& histogram(std::string_view name,
                       std::vector<std::uint64_t> bounds = {}) {
    auto it = histograms_.find(std::string{name});
    if (it == histograms_.end()) {
      if (bounds.empty()) bounds = {1, 10, 100, 1000, 10000, 100000, 1000000};
      it = histograms_
               .emplace(std::string{name}, Histogram{std::move(bounds)})
               .first;
    }
    return it->second;
  }
  /// Log-bucketed quantile sketch for tail latencies (p50/p90/p99/p99.9).
  /// Single-writer like histograms; shard-local sketches fold in via
  /// merge_sketches_from() at the deterministic merge points.
  trace::QuantileSketch& sketch(std::string_view name) {
    return sketches_.try_emplace(std::string{name}).first->second;
  }

  [[nodiscard]] const Counter* find_counter(std::string_view name) const {
    const auto it = counters_.find(std::string{name});
    return it == counters_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const {
    const auto it = gauges_.find(std::string{name});
    return it == gauges_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const {
    const auto it = histograms_.find(std::string{name});
    return it == histograms_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const trace::QuantileSketch* find_sketch(
      std::string_view name) const {
    const auto it = sketches_.find(std::string{name});
    return it == sketches_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms()
      const noexcept {
    return histograms_;
  }
  [[nodiscard]] const std::map<std::string, SpanStats>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] const std::map<std::string, trace::QuantileSketch>& sketches()
      const noexcept {
    return sketches_;
  }

  /// Virtual clock consulted by Span for sim-time durations (optional).
  void set_clock(const sim::VirtualClock* clock) noexcept { clock_ = clock; }
  [[nodiscard]] const sim::VirtualClock* clock() const noexcept {
    return clock_;
  }

  /// Span bookkeeping — called by telemetry::Span, not user code. Paths
  /// nest by the currently open spans: begin("seed") under an open
  /// "bootstrap" span aggregates under "bootstrap/seed".
  void span_begin(std::string_view name) {
    std::string path = open_paths_.empty() ? std::string{name}
                                           : open_paths_.back() + "/" +
                                                 std::string{name};
    auto [it, created] = spans_.try_emplace(path);
    if (created) {
      it->second.depth = static_cast<unsigned>(open_paths_.size());
      it->second.first_seq = next_seq_++;
    }
    open_paths_.push_back(std::move(path));
  }

  void span_end(std::uint64_t wall_ns, std::int64_t virtual_us) {
    if (open_paths_.empty()) return;  // unmatched end: ignore
    SpanStats& stats = spans_[open_paths_.back()];
    ++stats.count;
    stats.wall_ns += wall_ns;
    stats.virtual_us += virtual_us;
    open_paths_.pop_back();
  }

  /// Folds another registry's counters into this one (created on demand,
  /// added by value). This is the engine's shard-merge primitive: each
  /// worker accumulates into a shard-local registry, and the driver folds
  /// them into the campaign registry after the join — so the hot path
  /// never crosses shard cache lines. Gauges, histograms, and spans are
  /// deliberately not merged: they are stage-driver instruments that only
  /// the driver thread writes.
  void merge_counters_from(const Registry& other) {
    for (const auto& [name, other_counter] : other.counters_) {
      counter(name).add(other_counter.value());
    }
  }

  /// Folds another registry's sketches into this one (created on demand).
  /// Sketch merges are bucket-wise addition — commutative and associative
  /// — so shard-order folding yields bit-identical state at any thread
  /// count (the same contract the corpus merge provides, DESIGN §5h).
  void merge_sketches_from(const Registry& other) {
    for (const auto& [name, other_sketch] : other.sketches_) {
      sketch(name).merge_from(other_sketch);
    }
  }

  /// Drops every instrument and span record (clock binding is kept).
  void reset() {
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
    sketches_.clear();
    spans_.clear();
    open_paths_.clear();
    next_seq_ = 0;
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, trace::QuantileSketch> sketches_;
  std::map<std::string, SpanStats> spans_;
  std::vector<std::string> open_paths_;
  std::uint64_t next_seq_ = 0;
  const sim::VirtualClock* clock_ = nullptr;
};

}  // namespace scent::telemetry
