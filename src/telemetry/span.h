// span.h - scoped spans recording wall-clock *and* virtual-clock durations.
//
// A Span brackets one pipeline stage: construction opens it, destruction
// (or an early stop()) closes it and folds the elapsed time into the
// registry's aggregated per-path statistics. Spans nest lexically — a
// "sweep" span opened while a "day" span is open aggregates under
// "campaign/day/sweep" — which is exactly how a campaign day decomposes
// into sweep -> ingest -> inference in the reports.
//
// Wall time comes from std::chrono::steady_clock; virtual time from the
// sim::VirtualClock the registry was bound to via set_clock() (zero if
// none). A nullptr registry makes the span a no-op.
#pragma once

#include <chrono>
#include <cstdint>
#include <string_view>

#include "sim/sim_time.h"
#include "telemetry/metrics.h"

namespace scent::telemetry {

class Span {
 public:
  Span(Registry* registry, std::string_view name) : registry_(registry) {
    if (registry_ == nullptr) return;
    wall_start_ = std::chrono::steady_clock::now();
    virtual_start_ =
        registry_->clock() != nullptr ? registry_->clock()->now() : 0;
    registry_->span_begin(name);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { stop(); }

  /// Closes the span early; later calls (and the destructor) are no-ops.
  void stop() {
    if (registry_ == nullptr) return;
    const auto wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_start_)
            .count());
    const std::int64_t virtual_us =
        registry_->clock() != nullptr
            ? registry_->clock()->now() - virtual_start_
            : 0;
    registry_->span_end(wall_ns, virtual_us);
    registry_ = nullptr;
  }

 private:
  Registry* registry_;
  std::chrono::steady_clock::time_point wall_start_;
  sim::TimePoint virtual_start_ = 0;
};

}  // namespace scent::telemetry
