#include "engine/executor.h"

#include <cstdio>
#include <memory>
#include <thread>
#include <utility>

#include "engine/parallel.h"
#include "sim/rng.h"
#include "telemetry/metrics.h"
#include "trace/recorder.h"

namespace scent::engine {

unsigned resolve_threads(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

SweepPlan::SweepPlan(std::span<const SweepUnit> units,
                     const probe::ProberOptions& prober_options,
                     sim::TimePoint start, unsigned shard_count)
    : start_(start) {
  gap_ = prober_options.packets_per_second == 0
             ? 0
             : sim::kSecond / static_cast<sim::Duration>(
                                  prober_options.packets_per_second);

  cumulative_.reserve(units.size() + 1);
  cumulative_.push_back(0);
  for (const auto& unit : units) {
    cumulative_.push_back(
        cumulative_.back() +
        probe::SubnetTargets{unit.prefix, unit.sub_length, unit.seed}.size());
  }

  // Contiguous partition, balanced by probe count: unit k goes to the
  // shard its starting probe offset falls into. Monotone in k, so each
  // shard owns a contiguous range and shard order == unit order.
  if (shard_count == 0) shard_count = 1;
  shard_begin_.assign(shard_count + 1, units.size());
  const std::uint64_t total = total_probes();
  std::size_t k = 0;
  for (unsigned s = 0; s < shard_count; ++s) {
    shard_begin_[s] = k;
    if (total == 0) continue;  // degenerate: everything lands in shard 0
    // Extend shard s while unit k's starting offset is inside its slice
    // [total*s/N, total*(s+1)/N).
    const std::uint64_t slice_end =
        total * static_cast<std::uint64_t>(s + 1) / shard_count;
    while (k < units.size() && cumulative_[k] < slice_end) ++k;
  }
  if (total == 0) shard_begin_[0] = 0;
  shard_begin_[shard_count] = units.size();
}

/// Everything one worker owns; kept alive until the finish() merge.
struct ShardedSweep::ShardState {
  probe::Prober::Counters counters;
  sim::Internet::Stats stats;
  telemetry::Registry registry;
  std::unique_ptr<trace::TraceRecorder> recorder;  ///< Only when tracing.
};

ShardedSweep::ShardedSweep(sim::Internet& internet, sim::VirtualClock& clock,
                           std::span<const SweepUnit> units,
                           const probe::ProberOptions& prober_options,
                           const SweepOptions& options)
    : internet_(internet),
      clock_(clock),
      units_(units),
      prober_options_(prober_options),
      options_(options),
      plan_(units, prober_options, clock.now(),
            effective_threads(options.threads, options.oversubscribe)),
      shards_(plan_.shard_count()) {
  report_.threads_used = plan_.shard_count();
  report_.start = plan_.start();
  report_.units.resize(units.size());
  if (options_.trace != nullptr) {
    for (auto& shard : shards_) {
      shard.recorder = std::make_unique<trace::TraceRecorder>(
          options_.trace->recorder_capacity());
    }
  }
}

ShardedSweep::~ShardedSweep() = default;

unsigned ShardedSweep::threads() const noexcept {
  return plan_.shard_count();
}

void ShardedSweep::run_shard(unsigned s, UnitSink* sink) {
  ShardState& state = shards_[s];
  sim::VirtualClock shard_clock{plan_.start()};
  trace::TraceRecorder* recorder = state.recorder.get();
  if (recorder != nullptr) recorder->set_clock(&shard_clock);
  probe::Prober prober{internet_, shard_clock, prober_options_};
  // Per-shard derived stream: distinct wire sequence numbers per shard
  // (marks packets, never results — the determinism contract holds).
  prober.seed_sequence(
      static_cast<std::uint16_t>(sim::mix64(options_.seed, s)));
  if (options_.merge_registry != nullptr) {
    prober.attach_telemetry(state.registry);
  }
  sim::NetContext net_ctx;
  prober.set_net_context(&net_ctx);

  for (std::size_t k = plan_.shard_first(s); k < plan_.shard_last(s); ++k) {
    // Replay the serial schedule: jump to exactly where a
    // single-threaded run's clock would stand at this unit.
    shard_clock.advance_to(plan_.unit_start(k));
    // Fresh response-policy state per unit: the unit's results depend
    // only on (world, unit, start time, prober options), never on which
    // units ran before it on this shard.
    net_ctx.response.reset();

    const probe::Prober::Counters before = prober.counters();
    if (recorder != nullptr) recorder->begin("sweep.unit");
    if (sink != nullptr) sink->on_unit_begin(k);
    prober.sweep_subnets(
        units_[k].prefix, units_[k].sub_length, units_[k].seed,
        [&](std::span<const probe::ProbeResult> batch) {
          if (sink != nullptr) sink->on_results(k, batch);
        });
    if (sink != nullptr) sink->on_unit_end(k);
    if (recorder != nullptr) {
      recorder->end("sweep.unit");
      recorder->counter("sweep.responses",
                        static_cast<std::int64_t>(
                            prober.counters().received - before.received));
    }

    UnitOutcome& outcome = report_.units[k];
    outcome.sent = prober.counters().sent - before.sent;
    outcome.responded = prober.counters().received - before.received;
    outcome.shard = s;
    outcome.start = plan_.unit_start(k);
  }

  state.counters = prober.counters();
  state.stats = net_ctx.stats;
}

SweepReport ShardedSweep::finish() {
  // Deterministic merge, shard order == unit order == serial order.
  for (unsigned s = 0; s < plan_.shard_count(); ++s) {
    report_.counters.sent += shards_[s].counters.sent;
    report_.counters.received += shards_[s].counters.received;
    report_.net_stats.merge(shards_[s].stats);
    if (options_.merge_registry != nullptr) {
      options_.merge_registry->merge_counters_from(shards_[s].registry);
    }
    if (options_.trace != nullptr) {
      char lane[32];
      std::snprintf(lane, sizeof lane, "sweep shard %u", s);
      options_.trace->drain(lane, *shards_[s].recorder);
    }
  }
  internet_.absorb_stats(report_.net_stats);

  clock_.advance_to(plan_.end_time());
  report_.end = clock_.now();
  return std::move(report_);
}

SweepReport run_sharded_sweep(
    sim::Internet& internet, sim::VirtualClock& clock,
    std::span<const SweepUnit> units,
    const probe::ProberOptions& prober_options, const SweepOptions& options,
    const std::function<UnitSink*(unsigned shard)>& sink_for_shard) {
  ShardedSweep sweep{internet, clock, units, prober_options, options};
  const unsigned threads = sweep.threads();

  std::vector<UnitSink*> sinks(threads, nullptr);
  for (unsigned s = 0; s < threads; ++s) sinks[s] = sink_for_shard(s);

  // One worker per shard; a single shard runs inline on the calling
  // thread (the serial fallback — no spawn/join overhead when the clamp
  // or the request leaves us with one effective worker).
  run_shards(threads,
             [&sweep, &sinks](unsigned s) { sweep.run_shard(s, sinks[s]); });

  return sweep.finish();
}

}  // namespace scent::engine
