// sweep.h - the engine's unit of parallel work and its deterministic plan.
//
// A campaign-scale sweep is a sequence of *sweep units*: one zmap-permuted
// pass over the /`sub_length` subnets of a prefix, exactly what
// Prober::sweep_subnets executes. Because a unit's probe count is known a
// priori (SubnetTargets::size()) and the prober paces the virtual clock at
// a fixed packets_per_second, the serial schedule is fully determined
// before any packet is sent: unit k starts at
//
//   T0 + (probes issued by units 0..k-1) * inter-probe gap.
//
// SweepPlan precomputes that schedule and a contiguous, probe-count-
// balanced partition of the unit list across N shards. A shard replays its
// units at their precomputed serial start times against const world state
// (plus a fresh per-unit response context), so each unit's results are a
// pure function of (world, unit, start time, prober options) — identical
// at any thread count. That, plus merging shards in shard order (contiguous
// shards in unit order == serial order), is the engine's determinism
// contract: the parallel corpus is bit-identical to the serial one.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netbase/prefix.h"
#include "probe/prober.h"
#include "probe/target_generator.h"
#include "sim/sim_time.h"
#include "telemetry/metrics.h"
#include "trace/recorder.h"

namespace scent::engine {

/// One unit of sweep work: probe one address per /`sub_length` of `prefix`
/// in the zmap permutation order derived from `seed`.
struct SweepUnit {
  net::Prefix prefix;
  unsigned sub_length = 64;
  std::uint64_t seed = 0;
};

struct SweepOptions {
  /// Worker shard count; 0 means hardware concurrency. 1 executes inline
  /// on the calling thread (the serial reference the parallel runs must
  /// reproduce bit for bit).
  unsigned threads = 1;

  /// Base seed for per-shard derived streams (mix64(seed, shard_index)) —
  /// shard-local salt for anything a sink wants randomized per shard.
  std::uint64_t seed = 0;

  /// If set, every shard prober mirrors into a shard-local registry and
  /// the executor folds those counters in here after the join.
  telemetry::Registry* merge_registry = nullptr;

  /// If set, every shard records per-unit begin/end/counter events into a
  /// shard-local flight-recorder ring (capacity from the collector) and
  /// the executor drains them here — "sweep shard s" lanes, in shard
  /// order — at the same post-join merge point as the counters. Repeated
  /// sweeps (a campaign's days) append to the same lanes.
  trace::TraceCollector* trace = nullptr;

  /// Allow more shards than physical cores. Off by default: the executor
  /// clamps the effective worker count to hardware_concurrency(), because
  /// extra shards only add partition/spawn/merge overhead when they
  /// time-slice the same cores (BENCH_micro.json sweep speedups of
  /// 0.91–0.92 on a 1-core host). A clamp to 1 takes the inline serial
  /// path — no threads at all. Tests that pin exact shard counts (the
  /// TSan stress suite, the equivalence matrices) set this so low-core CI
  /// still exercises genuine multi-shard execution.
  bool oversubscribe = false;

  /// Streamed execution (DESIGN.md §5i). The raw executor ignores these —
  /// they select how core::sweep_into_store schedules the work: false is
  /// the phase-barrier path (sweep completes, then shards merge, then the
  /// snapshot/analysis consumers run); true streams observation batches
  /// from the probe shards through bounded queues into a concurrent
  /// ordered drain (columnar ingest → snapshot → day accounting) while
  /// the fused analysis accumulates inside the probe shards. Purely a
  /// wall-clock knob: corpus, snapshot bytes and aggregate tables are
  /// bit-identical either way (the determinism contract).
  bool pipeline = false;
  /// Bounded capacity of each inter-stage queue, in observation batches.
  /// Full queues block their producer — the backpressure that caps memory
  /// in flight at roughly stages x capacity x batch_rows rows.
  std::uint32_t queue_capacity = 16;
  /// Target rows per streamed batch (units flush early at their end, so a
  /// batch never spans two units).
  std::uint32_t batch_rows = 4096;
};

/// Picks the actual worker count for a request (0 = hardware concurrency,
/// which itself can report 0 on exotic platforms — treated as 1).
[[nodiscard]] unsigned resolve_threads(unsigned requested) noexcept;

/// The precomputed deterministic schedule + shard partition for one batch
/// of sweep units (see the file comment for the contract).
class SweepPlan {
 public:
  SweepPlan(std::span<const SweepUnit> units,
            const probe::ProberOptions& prober_options, sim::TimePoint start,
            unsigned shard_count);

  [[nodiscard]] std::size_t unit_count() const noexcept {
    return cumulative_.size() - 1;
  }
  [[nodiscard]] std::uint64_t unit_probes(std::size_t k) const noexcept {
    return cumulative_[k + 1] - cumulative_[k];
  }
  [[nodiscard]] std::uint64_t total_probes() const noexcept {
    return cumulative_.back();
  }
  /// The virtual time unit k's first probe leaves, identical to when a
  /// serial run would reach it.
  [[nodiscard]] sim::TimePoint unit_start(std::size_t k) const noexcept {
    return start_ + static_cast<sim::Duration>(cumulative_[k]) * gap_;
  }
  /// Where the clock stands after the last unit completes.
  [[nodiscard]] sim::TimePoint end_time() const noexcept {
    return start_ + static_cast<sim::Duration>(total_probes()) * gap_;
  }
  [[nodiscard]] sim::TimePoint start() const noexcept { return start_; }

  [[nodiscard]] unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shard_begin_.size() - 1);
  }
  /// Contiguous unit range [first, last) owned by shard s.
  [[nodiscard]] std::size_t shard_first(unsigned s) const noexcept {
    return shard_begin_[s];
  }
  [[nodiscard]] std::size_t shard_last(unsigned s) const noexcept {
    return shard_begin_[s + 1];
  }
  [[nodiscard]] std::uint64_t shard_probes(unsigned s) const noexcept {
    return cumulative_[shard_begin_[s + 1]] - cumulative_[shard_begin_[s]];
  }

 private:
  std::vector<std::uint64_t> cumulative_;  // prefix sums; size unit_count+1
  std::vector<std::size_t> shard_begin_;   // size shard_count+1
  sim::TimePoint start_ = 0;
  sim::Duration gap_ = 0;
};

}  // namespace scent::engine
