// parallel.h - shared shard-runner primitives for the engine's executors.
//
// Both parallel passes in the tree — the probe-side sweep executor and the
// analysis-side fused aggregation scan — follow the same shape: pick an
// effective worker count, carve the work into contiguous shards, run one
// worker per shard with shard-local state, then merge in shard order. This
// header owns the first three steps so the two executors cannot drift:
//
//   * effective_threads() resolves the request (0 = hardware concurrency)
//     and clamps it to the physical core count unless the caller opts into
//     oversubscription. Sharding pays real overhead — per-shard probers,
//     clocks, accumulators, and a merge — and past the core count that
//     overhead buys nothing: BENCH_micro.json records sweep speedups of
//     0.91–0.92 when 2–8 shards time-slice a single core.
//
//   * shard_rows() is the contiguous slice rule shared with SweepPlan's
//     probe-offset partition: shard s of N owns [total*s/N, total*(s+1)/N),
//     monotone in s and exhaustive, so shard order equals row order equals
//     serial order — the precondition for deterministic shard-order merges.
//
//   * run_shards() executes one body per shard: inline on the calling
//     thread when there is a single shard (the serial reference path the
//     parallel runs must reproduce bit for bit, with no thread spawn or
//     join overhead), otherwise one std::thread per shard with per-shard
//     exception capture and the lowest-index shard's exception rethrown
//     after all workers have joined.
#pragma once

#include <cstddef>
#include <functional>

namespace scent::engine {

/// Effective worker count for a request: resolve_threads(requested),
/// clamped to hardware concurrency unless `oversubscribe`. Tests that pin
/// exact shard counts (the TSan stress suite, the equivalence matrices)
/// oversubscribe so low-core CI still exercises real multi-shard runs.
[[nodiscard]] unsigned effective_threads(unsigned requested,
                                         bool oversubscribe) noexcept;

/// Contiguous row range [begin, end) owned by one shard.
struct RowRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// The slice rule: shard s of `shards` owns [total*s/N, total*(s+1)/N).
[[nodiscard]] RowRange shard_rows(std::size_t total, unsigned shards,
                                  unsigned s) noexcept;

/// Runs body(s) for every shard s in [0, shards). See the file comment.
void run_shards(unsigned shards, const std::function<void(unsigned)>& body);

}  // namespace scent::engine
