// executor.h - the sharded sweep executor: N threads, serial results.
//
// run_sharded_sweep partitions a list of SweepUnits across worker threads
// (SweepPlan), runs each shard with shard-local mutable state — its own
// Prober, virtual-clock cursor, sim::NetContext, and telemetry registry —
// and streams every unit's responsive results into a caller-provided
// per-shard UnitSink. Workers never touch shared mutable state:
//
//   * world reads go through the const Internet probe/deliver overloads;
//   * response-policy state (rate-limit buckets) lives in the shard's
//     NetContext and is reset at every unit boundary, making each unit a
//     pure function of (world, unit, start time, prober options);
//   * each unit replays at its precomputed serial start time, so the
//     timestamps — and every (target, t)-keyed draw — match a serial run.
//
// After the join the executor folds shard state back in deterministic
// shard order: prober counters into the report, NetContext stats into the
// Internet's global ledger, shard registries into options.merge_registry,
// and advances the caller's clock to the schedule end. Since shards own
// contiguous unit ranges, "shard order" equals unit order equals serial
// order — a caller that concatenates its shard sinks' output in shard
// order holds a corpus bit-identical to the single-threaded run.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "engine/sweep.h"
#include "probe/prober.h"
#include "sim/internet.h"
#include "sim/sim_time.h"

namespace scent::engine {

/// Per-shard receiver for streamed sweep results. Called only from the
/// shard's worker thread, units in ascending order, so implementations
/// need no locking of their own state. Batch spans alias the shard
/// prober's buffer and are valid only during the call.
class UnitSink {
 public:
  virtual ~UnitSink() = default;

  /// Unit `unit_index` is about to be probed.
  virtual void on_unit_begin(std::size_t unit_index) { (void)unit_index; }

  /// A batch of responsive results from unit `unit_index`.
  virtual void on_results(std::size_t unit_index,
                          std::span<const probe::ProbeResult> batch) = 0;

  /// Unit `unit_index` finished (all its results have been delivered).
  virtual void on_unit_end(std::size_t unit_index) { (void)unit_index; }
};

/// What one unit did on the wire.
struct UnitOutcome {
  std::uint64_t sent = 0;
  std::uint64_t responded = 0;
  unsigned shard = 0;
  sim::TimePoint start = 0;
};

struct SweepReport {
  std::vector<UnitOutcome> units;   ///< Indexed like the input unit list.
  probe::Prober::Counters counters; ///< Aggregate over all shards.
  sim::Internet::Stats net_stats;   ///< Aggregate over all shards.
  unsigned threads_used = 1;
  sim::TimePoint start = 0;
  sim::TimePoint end = 0;
};

/// The sharded sweep, decomposed so alternative schedulers can drive it:
/// construction resolves the shard count and precomputes the plan,
/// run_shard(s) executes one shard's units (thread-safe across distinct
/// shards — each call owns only shard-local state), and finish() performs
/// the deterministic shard-order merge and advances the caller's clock.
///
/// run_sharded_sweep wraps the three steps behind one call with the
/// barrier schedule (all shards, then merge). The streaming ingest path
/// (core/sweep_ingest) instead runs each shard as a pipeline stage
/// concurrent with its drain stages and calls finish() after the join —
/// same shards, same merge, different scheduler.
class ShardedSweep {
 public:
  ShardedSweep(sim::Internet& internet, sim::VirtualClock& clock,
               std::span<const SweepUnit> units,
               const probe::ProberOptions& prober_options,
               const SweepOptions& options);
  ~ShardedSweep();

  ShardedSweep(const ShardedSweep&) = delete;
  ShardedSweep& operator=(const ShardedSweep&) = delete;

  /// The resolved shard count (effective_threads of the request).
  [[nodiscard]] unsigned threads() const noexcept;
  [[nodiscard]] const SweepPlan& plan() const noexcept { return plan_; }

  /// Runs shard `s`'s units at their precomputed serial start times,
  /// streaming results into `sink` (may be null). Call at most once per
  /// shard; calls for distinct shards may run concurrently.
  void run_shard(unsigned s, UnitSink* sink);

  /// Shard-order merge: counters, net stats, shard registries, "sweep
  /// shard s" trace lanes — then advances the clock to the schedule end.
  /// Call once, after every run_shard call has returned.
  [[nodiscard]] SweepReport finish();

 private:
  struct ShardState;

  sim::Internet& internet_;
  sim::VirtualClock& clock_;
  std::span<const SweepUnit> units_;
  const probe::ProberOptions& prober_options_;
  const SweepOptions& options_;
  SweepPlan plan_;
  SweepReport report_;
  std::vector<ShardState> shards_;
};

/// Runs `units` across effective_threads(options.threads,
/// options.oversubscribe) shards — the request resolved (0 = hardware
/// concurrency) and clamped to the physical core count unless the caller
/// oversubscribes. The factory is called once per shard (shard indices
/// ascending, before any worker starts) and must return a sink that
/// outlives the call; it may return the same sink for every shard only if
/// that sink is internally synchronized. A single effective shard executes
/// inline on the calling thread.
///
/// On return the caller's clock stands at the schedule end and the
/// Internet's stats() include all shard traffic. Worker exceptions are
/// rethrown (first shard wins) after all workers have joined.
SweepReport run_sharded_sweep(
    sim::Internet& internet, sim::VirtualClock& clock,
    std::span<const SweepUnit> units,
    const probe::ProberOptions& prober_options, const SweepOptions& options,
    const std::function<UnitSink*(unsigned shard)>& sink_for_shard);

}  // namespace scent::engine
