#include "engine/parallel.h"

#include <cstdio>
#include <thread>

#include "engine/sweep.h"
#include "pipeline/pipeline.h"

namespace scent::engine {

unsigned effective_threads(unsigned requested, bool oversubscribe) noexcept {
  unsigned threads = resolve_threads(requested);
  if (!oversubscribe) {
    const unsigned hw = std::thread::hardware_concurrency();
    const unsigned cap = hw == 0 ? 1 : hw;
    if (threads > cap) threads = cap;
  }
  return threads;
}

RowRange shard_rows(std::size_t total, unsigned shards, unsigned s) noexcept {
  if (shards == 0) shards = 1;
  const auto t = static_cast<unsigned long long>(total);
  return RowRange{static_cast<std::size_t>(t * s / shards),
                  static_cast<std::size_t>(t * (s + 1) / shards)};
}

void run_shards(unsigned shards, const std::function<void(unsigned)>& body) {
  if (shards <= 1) {
    body(0);
    return;
  }
  // One pipeline stage per shard: same execution shape as before (one
  // thread each, inline when single), and the executor's stage-order
  // error rule reproduces the old "lowest-index shard's exception wins".
  pipeline::Pipeline p;
  for (unsigned s = 0; s < shards; ++s) {
    char name[24];
    std::snprintf(name, sizeof name, "shard %u", s);
    p.add_stage(name, [&body, s] { body(s); });
  }
  p.run();
}

}  // namespace scent::engine
