#include "engine/parallel.h"

#include <exception>
#include <thread>
#include <vector>

#include "engine/sweep.h"

namespace scent::engine {

unsigned effective_threads(unsigned requested, bool oversubscribe) noexcept {
  unsigned threads = resolve_threads(requested);
  if (!oversubscribe) {
    const unsigned hw = std::thread::hardware_concurrency();
    const unsigned cap = hw == 0 ? 1 : hw;
    if (threads > cap) threads = cap;
  }
  return threads;
}

RowRange shard_rows(std::size_t total, unsigned shards, unsigned s) noexcept {
  if (shards == 0) shards = 1;
  const auto t = static_cast<unsigned long long>(total);
  return RowRange{static_cast<std::size_t>(t * s / shards),
                  static_cast<std::size_t>(t * (s + 1) / shards)};
}

void run_shards(unsigned shards, const std::function<void(unsigned)>& body) {
  if (shards <= 1) {
    body(0);
    return;
  }
  std::vector<std::exception_ptr> errors(shards);
  std::vector<std::thread> workers;
  workers.reserve(shards);
  for (unsigned s = 0; s < shards; ++s) {
    workers.emplace_back([&errors, &body, s] {
      try {
        body(s);
      } catch (...) {
        errors[s] = std::current_exception();
      }
    });
  }
  for (auto& worker : workers) worker.join();
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace scent::engine
