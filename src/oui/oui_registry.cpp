#include "oui/oui_registry.h"

#include <algorithm>
#include <array>

namespace scent::oui {
namespace {

std::optional<std::uint8_t> hex_nibble(char c) {
  if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
  if (c >= 'a' && c <= 'f') return static_cast<std::uint8_t>(c - 'a' + 10);
  if (c >= 'A' && c <= 'F') return static_cast<std::uint8_t>(c - 'A' + 10);
  return std::nullopt;
}

/// Parses "38-10-D5" at the start of a line; nullopt if not present.
std::optional<net::Oui> parse_dashed_oui(std::string_view line) {
  if (line.size() < 8) return std::nullopt;
  std::uint32_t value = 0;
  for (unsigned group = 0; group < 3; ++group) {
    const std::size_t at = group * 3;
    const auto hi = hex_nibble(line[at]);
    const auto lo = hex_nibble(line[at + 1]);
    if (!hi || !lo) return std::nullopt;
    if (group < 2 && line[at + 2] != '-') return std::nullopt;
    value = (value << 8) |
            static_cast<std::uint32_t>((*hi << 4) | *lo);
  }
  return net::Oui{value};
}

struct Assignment {
  std::uint32_t oui;
  const char* vendor;
};

// CPE-relevant OUI assignments. The AVM block 38:10:d5 is the one shown in
// the paper's Figure 1; the rest are assignments of the manufacturers the
// paper's §5.1 analysis names, plus other major residential-CPE vendors so
// the simulated world can express realistic per-AS vendor mixes.
constexpr std::array kBuiltinAssignments = {
    Assignment{0x3810d5, "AVM GmbH"},
    Assignment{0xc02506, "AVM GmbH"},
    Assignment{0xe0286d, "AVM GmbH"},
    Assignment{0x7cff4d, "AVM GmbH"},
    Assignment{0x2c3af3, "AVM GmbH"},
    Assignment{0x00259e, "ZTE Corporation"},
    Assignment{0x344b50, "ZTE Corporation"},
    Assignment{0x98f428, "ZTE Corporation"},
    Assignment{0x8c68c8, "ZTE Corporation"},
    Assignment{0x00e0fc, "Huawei Technologies"},
    Assignment{0x001882, "Huawei Technologies"},
    Assignment{0x786a89, "Huawei Technologies"},
    Assignment{0x001349, "Zyxel Communications"},
    Assignment{0x404a03, "Zyxel Communications"},
    Assignment{0x00a057, "Lancom Systems"},
    Assignment{0x14cc20, "TP-Link Technologies"},
    Assignment{0x50c7bf, "TP-Link Technologies"},
    Assignment{0x342792, "Sagemcom Broadband"},
    Assignment{0x7c03d8, "Sagemcom Broadband"},
    Assignment{0x001dd0, "ARRIS Group"},
    Assignment{0x788102, "Technicolor"},
    Assignment{0x48f97c, "FiberHome Technologies"},
    Assignment{0x1c7ee5, "D-Link International"},
    Assignment{0x204e7f, "Netgear"},
    Assignment{0xf8d111, "TP-Link Technologies"},
    Assignment{0x0c8063, "TP-Link Technologies"},
    Assignment{0x30b5c2, "Zyxel Communications"},
    Assignment{0x2c9569, "Nokia Shanghai Bell"},
    Assignment{0x94e9ee, "Askey Computer"},
    Assignment{0xdc0b1a, "ADB Broadband"},
};

}  // namespace

std::vector<net::Oui> Registry::ouis_of(std::string_view needle) const {
  std::vector<net::Oui> out;
  for (const auto& [oui, vendor] : vendors_) {
    if (vendor.find(needle) != std::string::npos) out.push_back(oui);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t Registry::load_ieee_text(std::string_view text) {
  std::size_t added = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;

    // Only "(hex)" lines carry the dashed OUI + vendor name.
    const auto hex_at = line.find("(hex)");
    if (hex_at == std::string_view::npos) continue;
    const auto oui = parse_dashed_oui(line);
    if (!oui) continue;

    std::string_view name = line.substr(hex_at + 5);
    const auto start = name.find_first_not_of(" \t\r");
    if (start == std::string_view::npos) continue;
    const auto end = name.find_last_not_of(" \t\r");
    name = name.substr(start, end - start + 1);
    if (name.empty()) continue;

    add(*oui, std::string{name});
    ++added;
  }
  return added;
}

const Registry& builtin_registry() {
  static const Registry registry = [] {
    Registry r;
    for (const auto& a : kBuiltinAssignments) {
      r.add(net::Oui{a.oui}, a.vendor);
    }
    return r;
  }();
  return registry;
}

}  // namespace scent::oui
