// oui_registry.h - OUI -> manufacturer registry (IEEE oui.txt substitute).
//
// Section 5.1 of the paper recovers the CPE's MAC from each EUI-64 address
// and resolves its 24-bit OUI against the public IEEE registry to study
// per-AS manufacturer homogeneity. This module provides that lookup: an
// embedded table of CPE-relevant assignments plus a parser for the IEEE
// "aa-bb-cc   (hex)  Vendor Name" dump format so a full registry file can be
// loaded when available.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "container/flat_hash.h"
#include "netbase/mac_address.h"

namespace scent::oui {

/// Immutable-after-load registry mapping OUIs to manufacturer names.
class Registry {
 public:
  Registry() = default;

  /// Registers an assignment; later registrations replace earlier ones
  /// (matching IEEE dump semantics where re-issued blocks appear last).
  void add(net::Oui oui, std::string vendor) {
    vendors_[oui] = std::move(vendor);
  }

  /// Looks up the manufacturer for a MAC's OUI. Returns nullopt for
  /// unregistered OUIs — the paper found such MACs too (seven at
  /// NetCologne), and homogeneity analysis buckets them as "unknown".
  [[nodiscard]] std::optional<std::string_view> vendor(
      net::MacAddress mac) const {
    return vendor(mac.oui());
  }

  [[nodiscard]] std::optional<std::string_view> vendor(net::Oui oui) const {
    const auto it = vendors_.find(oui);
    if (it == vendors_.end()) return std::nullopt;
    return std::string_view{it->second};
  }

  /// All OUIs registered to vendors whose name contains `needle`
  /// (case-sensitive). Used by scenario builders to hand plausible MAC
  /// blocks to simulated device populations.
  [[nodiscard]] std::vector<net::Oui> ouis_of(std::string_view needle) const;

  /// Parses IEEE oui.txt "hex" lines: `38-10-D5   (hex)\t\tAVM GmbH`.
  /// Unrecognized lines are skipped (the real file is full of base-16
  /// continuation lines and headers). Returns the number of entries added.
  std::size_t load_ieee_text(std::string_view text);

  [[nodiscard]] std::size_t size() const noexcept { return vendors_.size(); }

 private:
  container::FlatMap<net::Oui, std::string, net::OuiHash> vendors_;
};

/// The embedded registry of CPE-relevant OUI assignments used throughout the
/// simulation and reports. Includes the vendors named by the paper (AVM,
/// ZTE, Zyxel, Lancom) plus other major residential-CPE manufacturers.
[[nodiscard]] const Registry& builtin_registry();

}  // namespace scent::oui
