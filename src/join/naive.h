// naive.h - single-pass hash-join oracle for the partitioned engine.
//
// The obviously-correct reference: hash every row of both sides into one
// in-memory table keyed by MAC, then emit dossiers in ascending key order
// through the same analysis::make_dossier the engine uses. No partitions,
// no spill, no threads — its output is the definition the differential
// test (and the bench equality leg) holds the engine to, byte for byte,
// at every thread count and partition fan-out.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/dossier.h"
#include "join/source.h"
#include "routing/bgp_table.h"

namespace scent::join {

struct NaiveJoinInputs {
  std::vector<CorpusDayFile> corpus_files;
  std::vector<std::string> geo_feeds;
  DayWindow window;
  const routing::BgpTable* bgp = nullptr;
};

/// Runs the reference join. nullopt on any input failure.
[[nodiscard]] std::optional<analysis::DossierTable> naive_join(
    const NaiveJoinInputs& inputs);

}  // namespace scent::join
