#include "join/source.h"

#include "corpus/snapshot.h"
#include "netbase/eui64.h"
#include "sim/sim_time.h"

namespace scent::join {

ScanResult scan_corpus_file(
    const CorpusDayFile& file, const DayWindow& window,
    const routing::BgpTable* bgp, routing::AttributionCache& cache,
    const std::function<void(const corpus::KeyedRecord&)>& fn) {
  if (!window.contains(file.day)) return ScanResult::kPruned;
  corpus::SnapshotReader reader;
  if (!reader.open(file.path)) return ScanResult::kError;
  if (const auto range = reader.time_range()) {
    const std::int64_t lo = sim::day_of(range->first);
    const std::int64_t hi = sim::day_of(range->second);
    if ((window.first_day && hi < *window.first_day) ||
        (window.last_day && lo > *window.last_day)) {
      return ScanResult::kPruned;
    }
  }
  const bool ok = reader.for_each_eui_pair(
      [&](net::Ipv6Address target, net::Ipv6Address response) {
        const auto mac = net::embedded_mac(response);
        if (!mac) return;
        std::uint64_t asn = 0;
        if (bgp != nullptr) {
          if (const auto* ad = bgp->attribute(target, cache)) {
            asn = ad->origin_asn;
          }
        }
        fn(corpus::KeyedRecord{.key = mac->bits(),
                               .c0 = target.network(),
                               .c1 = asn,
                               .c2 = static_cast<std::uint64_t>(file.day)});
      });
  return ok ? ScanResult::kScanned : ScanResult::kError;
}

}  // namespace scent::join
