#include "join/join.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <queue>
#include <span>
#include <utility>

#include "corpus/encoding.h"
#include "corpus/geo_feed.h"
#include "engine/parallel.h"

namespace scent::join {
namespace {

// Spool frames flush at this size, so the final merge holds one frame per
// partition — the O(P) buffer term in the memory bound.
constexpr std::size_t kSpoolFlushBytes = 256 * 1024;

[[nodiscard]] unsigned round_up_pow2(unsigned v) noexcept {
  unsigned p = 1;
  while (p < v && p < (1u << 30)) p <<= 1;
  return p;
}

[[nodiscard]] unsigned log2_pow2(unsigned p) noexcept {
  unsigned bits = 0;
  while ((1u << bits) < p) ++bits;
  return bits;
}

void store_u32(unsigned char* p, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

[[nodiscard]] std::uint32_t load_u32(const unsigned char* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

// ---------------------------------------------------------------------------
// Dossier spool: a forward-only stream of variable-length dossiers, framed
// as [payload_bytes u32 | dossier_count u32 | payload] so the cursor reads
// one bounded frame at a time and varints never straddle a read.

void encode_dossier(std::vector<unsigned char>& out,
                    const analysis::DeviceDossier& d) {
  corpus::put_varint(out, d.mac.bits());
  corpus::put_varint(out, d.sightings.size());
  for (const analysis::DossierSighting& s : d.sightings) {
    corpus::put_varint(out, corpus::zigzag_encode(s.day));
    corpus::put_varint(out, s.network);
    corpus::put_varint(out, s.asn);
  }
  corpus::put_varint(out, d.anchors.size());
  for (const analysis::GeoAnchor& a : d.anchors) {
    corpus::put_varint(out, corpus::zigzag_encode(a.day));
    corpus::put_varint(out, corpus::zigzag_encode(a.lat_udeg));
    corpus::put_varint(out, corpus::zigzag_encode(a.lon_udeg));
    corpus::put_varint(out, a.asn);
  }
}

[[nodiscard]] bool decode_dossier(const unsigned char** cursor,
                                  const unsigned char* end,
                                  analysis::DeviceDossier& d) {
  std::uint64_t v = 0;
  if (!corpus::get_varint(cursor, end, v)) return false;
  d.mac = net::MacAddress{v};
  std::uint64_t count = 0;
  if (!corpus::get_varint(cursor, end, count)) return false;
  d.sightings.clear();
  d.sightings.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    analysis::DossierSighting s;
    if (!corpus::get_varint(cursor, end, v)) return false;
    s.day = corpus::zigzag_decode(v);
    if (!corpus::get_varint(cursor, end, s.network)) return false;
    if (!corpus::get_varint(cursor, end, v)) return false;
    s.asn = static_cast<std::uint32_t>(v);
    d.sightings.push_back(s);
  }
  if (!corpus::get_varint(cursor, end, count)) return false;
  d.anchors.clear();
  d.anchors.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    analysis::GeoAnchor a;
    if (!corpus::get_varint(cursor, end, v)) return false;
    a.day = corpus::zigzag_decode(v);
    if (!corpus::get_varint(cursor, end, v)) return false;
    a.lat_udeg = static_cast<std::int32_t>(corpus::zigzag_decode(v));
    if (!corpus::get_varint(cursor, end, v)) return false;
    a.lon_udeg = static_cast<std::int32_t>(corpus::zigzag_decode(v));
    if (!corpus::get_varint(cursor, end, v)) return false;
    a.asn = static_cast<std::uint32_t>(v);
    d.anchors.push_back(a);
  }
  return true;
}

class SpoolWriter {
 public:
  ~SpoolWriter() {
    if (file_ != nullptr) std::fclose(file_);
  }

  [[nodiscard]] bool open(const std::string& path) {
    file_ = std::fopen(path.c_str(), "wb");
    return file_ != nullptr;
  }

  void append(const analysis::DeviceDossier& d) {
    encode_dossier(buffer_, d);
    ++count_;
    if (buffer_.size() >= kSpoolFlushBytes) ok_ = flush() && ok_;
  }

  [[nodiscard]] bool finish() {
    if (file_ == nullptr) return false;
    ok_ = flush() && ok_;
    ok_ = std::fclose(file_) == 0 && ok_;
    file_ = nullptr;
    return ok_;
  }

  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }

 private:
  [[nodiscard]] bool flush() {
    if (count_ == 0) return true;
    unsigned char header[8];
    store_u32(header, static_cast<std::uint32_t>(buffer_.size()));
    store_u32(header + 4, count_);
    const bool ok =
        std::fwrite(header, 1, sizeof header, file_) == sizeof header &&
        std::fwrite(buffer_.data(), 1, buffer_.size(), file_) ==
            buffer_.size();
    bytes_written_ += sizeof header + buffer_.size();
    buffer_.clear();
    count_ = 0;
    return ok;
  }

  std::FILE* file_ = nullptr;
  bool ok_ = true;
  std::vector<unsigned char> buffer_;
  std::uint32_t count_ = 0;
  std::uint64_t bytes_written_ = 0;
};

/// Streams a spool one dossier at a time, holding one frame in memory.
class SpoolCursor {
 public:
  ~SpoolCursor() {
    if (file_ != nullptr) std::fclose(file_);
  }

  [[nodiscard]] bool open(const std::string& path) {
    file_ = std::fopen(path.c_str(), "rb");
    return file_ != nullptr;
  }

  /// False at clean EOF or on error; check ok() to tell them apart.
  [[nodiscard]] bool next(analysis::DeviceDossier& out) {
    if (!ok_ || file_ == nullptr) return false;
    if (remaining_ == 0 && !refill()) return false;
    if (!decode_dossier(&cursor_, end_, out)) {
      ok_ = false;
      return false;
    }
    --remaining_;
    if (remaining_ == 0 && cursor_ != end_) ok_ = false;  // trailing bytes
    return ok_;
  }

  [[nodiscard]] bool ok() const noexcept { return ok_; }

 private:
  [[nodiscard]] bool refill() {
    unsigned char header[8];
    const std::size_t got = std::fread(header, 1, sizeof header, file_);
    if (got == 0) return false;  // clean EOF
    if (got != sizeof header) {
      ok_ = false;
      return false;
    }
    const std::uint32_t payload_bytes = load_u32(header);
    remaining_ = load_u32(header + 4);
    frame_.resize(payload_bytes);
    if (payload_bytes == 0 || remaining_ == 0 ||
        std::fread(frame_.data(), 1, frame_.size(), file_) != frame_.size()) {
      ok_ = false;
      return false;
    }
    cursor_ = frame_.data();
    end_ = frame_.data() + frame_.size();
    return true;
  }

  std::FILE* file_ = nullptr;
  bool ok_ = true;
  std::vector<unsigned char> frame_;
  const unsigned char* cursor_ = nullptr;
  const unsigned char* end_ = nullptr;
  std::uint32_t remaining_ = 0;
};

// ---------------------------------------------------------------------------
// Partition cells: one per (side, shard, partition). A cell is either an
// in-memory row vector or a lazily opened spill-run writer; cells are
// touched only by their owning shard, so the scan needs no locks.

constexpr unsigned kCorpusSide = 0;
constexpr unsigned kGeoSide = 1;

struct PartitionScratch {
  std::string spool_path;
  std::uint64_t spool_bytes = 0;
  std::vector<analysis::DeviceDossier> dossiers;  // in-memory mode
  std::uint64_t rows = 0;
  std::uint64_t dossier_count = 0;
  std::uint64_t anchored = 0;
  std::uint64_t blocks_read = 0;
  std::uint64_t blocks_pruned = 0;
  bool ok = true;
};

struct ShardScan {
  std::uint64_t corpus_rows = 0;
  std::uint64_t geo_rows = 0;
  std::uint64_t files_pruned = 0;
  std::uint64_t feed_blocks_read = 0;
  bool ok = true;
};

}  // namespace

DossierJoin::DossierJoin(JoinOptions options) : options_(std::move(options)) {}

void DossierJoin::add_corpus_day(const std::string& path, std::int64_t day) {
  corpus_files_.push_back(CorpusDayFile{.path = path, .day = day});
}

void DossierJoin::add_geo_feed(const std::string& path) {
  geo_feeds_.push_back(path);
}

bool DossierJoin::run(analysis::DossierSink& sink) {
  if (ran_) return false;
  ran_ = true;

  const unsigned threads =
      engine::effective_threads(options_.threads, options_.oversubscribe);
  const unsigned partitions =
      round_up_pow2(options_.partitions < 1 ? 1 : options_.partitions);
  const unsigned partition_bits = log2_pow2(partitions);
  const bool spill = !options_.spill_dir.empty();

  stats_ = JoinStats{};
  stats_.threads = threads;
  stats_.partitions = partitions;
  stats_.corpus_files = corpus_files_.size();

  if (spill) {
    std::error_code ec;
    std::filesystem::create_directories(options_.spill_dir, ec);
    if (!std::filesystem::is_directory(options_.spill_dir)) return false;
  }

  const auto cell_index = [&](unsigned side, unsigned shard,
                              std::uint32_t partition) {
    return (std::size_t{side} * threads + shard) * partitions + partition;
  };
  const auto run_path = [&](unsigned side, unsigned shard,
                            std::uint32_t partition) {
    return options_.spill_dir + (side == kCorpusSide ? "/c-s" : "/g-s") +
           std::to_string(shard) + "-p" + std::to_string(partition) + ".krun";
  };

  // ---- Phase 1: radix-partition both sides, sharded over the input. ----
  std::vector<std::vector<corpus::KeyedRecord>> memory_cells;
  std::vector<std::unique_ptr<corpus::KeyedRunWriter>> spill_cells;
  const std::size_t cells = std::size_t{2} * threads * partitions;
  if (spill) {
    spill_cells.resize(cells);
  } else {
    memory_cells.resize(cells);
  }
  std::vector<ShardScan> scans(threads);

  engine::run_shards(threads, [&](unsigned s) {
    ShardScan& scan = scans[s];
    const auto deposit = [&](unsigned side, const corpus::KeyedRecord& rec) {
      const std::size_t cell =
          cell_index(side, s, partition_of(rec.key, partition_bits));
      if (spill) {
        auto& writer = spill_cells[cell];
        if (!writer) {
          writer = std::make_unique<corpus::KeyedRunWriter>(
              options_.spill_block_elements);
          if (!writer->open(
                  run_path(side, s, partition_of(rec.key, partition_bits)))) {
            scan.ok = false;
            return;
          }
        }
        writer->append(rec);
      } else {
        memory_cells[cell].push_back(rec);
      }
    };

    routing::AttributionCache cache;
    const engine::RowRange files =
        engine::shard_rows(corpus_files_.size(), threads, s);
    for (std::size_t i = files.begin; i < files.end && scan.ok; ++i) {
      switch (scan_corpus_file(corpus_files_[i], options_.window,
                               options_.bgp, cache,
                               [&](const corpus::KeyedRecord& rec) {
                                 deposit(kCorpusSide, rec);
                                 ++scan.corpus_rows;
                               })) {
        case ScanResult::kScanned:
          break;
        case ScanResult::kPruned:
          ++scan.files_pruned;
          break;
        case ScanResult::kError:
          scan.ok = false;
          break;
      }
    }
    for (const std::string& feed : geo_feeds_) {
      if (!scan.ok) break;
      corpus::GeoFeedReader reader;
      if (!reader.open(feed)) {
        scan.ok = false;
        break;
      }
      const engine::RowRange blocks =
          engine::shard_rows(reader.blocks(), threads, s);
      if (!reader.for_each_block_range(blocks.begin,
                                       blocks.end - blocks.begin,
                                       [&](const sim::GeoRecord& g) {
                                         deposit(kGeoSide, geo_to_record(g));
                                         ++scan.geo_rows;
                                       })) {
        scan.ok = false;
      }
      scan.feed_blocks_read += reader.blocks_read();
    }
  });

  bool ok = true;
  for (const ShardScan& scan : scans) {
    ok = ok && scan.ok;
    stats_.corpus_rows += scan.corpus_rows;
    stats_.geo_rows += scan.geo_rows;
    stats_.corpus_files_pruned += scan.files_pruned;
    stats_.blocks_read += scan.feed_blocks_read;
  }
  if (spill) {
    for (auto& writer : spill_cells) {
      if (!writer) continue;
      ok = writer->finish() && ok;
      stats_.spill_bytes += writer->bytes_written();
      ++stats_.spill_runs;
    }
  }
  if (!ok) return false;

  // ---- Phase 2: partition-wise sorted merge-join, shards own contiguous
  // partition ranges. ----
  std::vector<PartitionScratch> parts(partitions);
  engine::run_shards(threads, [&](unsigned s) {
    const engine::RowRange mine = engine::shard_rows(partitions, threads, s);
    for (std::size_t p = mine.begin; p < mine.end; ++p) {
      PartitionScratch& part = parts[p];
      // Corpus rows: shard-order run concatenation reproduces serial input
      // order, so the stable sort below is thread-count-invariant.
      std::vector<corpus::KeyedRecord> corpus_rows;
      if (spill) {
        for (unsigned ss = 0; ss < threads && part.ok; ++ss) {
          const std::size_t cell =
              cell_index(kCorpusSide, ss, static_cast<std::uint32_t>(p));
          if (!spill_cells[cell]) continue;
          corpus::KeyedRunReader reader;
          if (!reader.open(
                  run_path(kCorpusSide, ss, static_cast<std::uint32_t>(p))) ||
              !reader.for_each([&](const corpus::KeyedRecord& rec) {
                corpus_rows.push_back(rec);
              })) {
            part.ok = false;
            break;
          }
          part.blocks_read += reader.blocks_read();
        }
      } else {
        for (unsigned ss = 0; ss < threads; ++ss) {
          const auto& cell = memory_cells[cell_index(
              kCorpusSide, ss, static_cast<std::uint32_t>(p))];
          corpus_rows.insert(corpus_rows.end(), cell.begin(), cell.end());
        }
      }
      if (!part.ok) continue;
      std::stable_sort(corpus_rows.begin(), corpus_rows.end(),
                       [](const corpus::KeyedRecord& a,
                          const corpus::KeyedRecord& b) {
                         return a.key < b.key;
                       });

      // Geo rows: only the corpus key span matters, so spilled feed blocks
      // outside [lo, hi] are skipped via their stats — never decoded.
      std::vector<corpus::KeyedRecord> geo_rows;
      const std::uint64_t lo =
          corpus_rows.empty() ? 1 : corpus_rows.front().key;
      const std::uint64_t hi = corpus_rows.empty() ? 0 : corpus_rows.back().key;
      for (unsigned ss = 0; ss < threads && part.ok; ++ss) {
        const std::size_t cell =
            cell_index(kGeoSide, ss, static_cast<std::uint32_t>(p));
        if (spill) {
          if (!spill_cells[cell]) continue;
          corpus::KeyedRunReader reader;
          if (!reader.open(
                  run_path(kGeoSide, ss, static_cast<std::uint32_t>(p)))) {
            part.ok = false;
            break;
          }
          if (corpus_rows.empty()) {
            part.blocks_pruned += reader.blocks();
            continue;
          }
          if (!reader.for_each_overlapping(
                  lo, hi, [&](const corpus::KeyedRecord& rec) {
                    geo_rows.push_back(rec);
                  })) {
            part.ok = false;
            break;
          }
          part.blocks_read += reader.blocks_read();
          part.blocks_pruned += reader.blocks_skipped();
        } else {
          for (const corpus::KeyedRecord& rec : memory_cells[cell]) {
            if (rec.key >= lo && rec.key <= hi) geo_rows.push_back(rec);
          }
        }
      }
      if (!part.ok) continue;
      std::stable_sort(geo_rows.begin(), geo_rows.end(),
                       [](const corpus::KeyedRecord& a,
                          const corpus::KeyedRecord& b) {
                         return a.key < b.key;
                       });
      part.rows = corpus_rows.size() + geo_rows.size();

      SpoolWriter spool;
      if (spill && !corpus_rows.empty()) {
        part.spool_path =
            options_.spill_dir + "/dossiers-p" + std::to_string(p) + ".spool";
        if (!spool.open(part.spool_path)) {
          part.ok = false;
          continue;
        }
      }

      std::size_t gi = 0;
      for (std::size_t i = 0; i < corpus_rows.size() && part.ok;) {
        const std::uint64_t key = corpus_rows[i].key;
        std::size_t j = i;
        while (j < corpus_rows.size() && corpus_rows[j].key == key) ++j;
        while (gi < geo_rows.size() && geo_rows[gi].key < key) ++gi;
        std::size_t gj = gi;
        while (gj < geo_rows.size() && geo_rows[gj].key == key) ++gj;
        analysis::DeviceDossier dossier = analysis::make_dossier(
            net::MacAddress{key},
            std::span<const corpus::KeyedRecord>(corpus_rows).subspan(i,
                                                                      j - i),
            std::span<const corpus::KeyedRecord>(geo_rows).subspan(gi,
                                                                   gj - gi));
        ++part.dossier_count;
        if (!dossier.anchors.empty()) ++part.anchored;
        if (spill) {
          spool.append(dossier);
        } else {
          part.dossiers.push_back(std::move(dossier));
        }
        i = j;
        gi = gj;
      }
      if (spill && !corpus_rows.empty()) {
        part.ok = spool.finish() && part.ok;
        part.spool_bytes = spool.bytes_written();
      }
    }
  });

  for (const PartitionScratch& part : parts) {
    ok = ok && part.ok;
    stats_.blocks_read += part.blocks_read;
    stats_.blocks_pruned += part.blocks_pruned;
    stats_.spill_bytes += part.spool_bytes;
    stats_.peak_partition_rows = std::max(stats_.peak_partition_rows,
                                          part.rows);
    stats_.dossiers += part.dossier_count;
    stats_.anchored += part.anchored;
  }
  if (!ok) return false;

  // ---- Phase 3: P-way merge by MAC. Each MAC lives in exactly one
  // partition and each partition stream is MAC-ascending, so the heap
  // yields the globally ascending — and fan-out-independent — order. ----
  std::vector<std::unique_ptr<SpoolCursor>> cursors(partitions);
  std::vector<std::size_t> next_index(partitions, 0);
  std::vector<analysis::DeviceDossier> head(partitions);
  using HeapItem = std::pair<std::uint64_t, std::uint32_t>;  // (mac, p)
  std::priority_queue<HeapItem, std::vector<HeapItem>,
                      std::greater<HeapItem>>
      heap;

  const auto advance = [&](std::uint32_t p) -> bool {
    if (spill) {
      if (!cursors[p]) return false;
      return cursors[p]->next(head[p]);
    }
    auto& dossiers = parts[p].dossiers;
    if (next_index[p] >= dossiers.size()) return false;
    head[p] = std::move(dossiers[next_index[p]++]);
    return true;
  };

  for (std::uint32_t p = 0; p < partitions; ++p) {
    if (spill) {
      if (parts[p].spool_path.empty() || parts[p].dossier_count == 0) {
        continue;
      }
      cursors[p] = std::make_unique<SpoolCursor>();
      if (!cursors[p]->open(parts[p].spool_path)) return false;
    }
    if (advance(p)) heap.emplace(head[p].mac.bits(), p);
  }
  while (!heap.empty()) {
    const std::uint32_t p = heap.top().second;
    heap.pop();
    analysis::DeviceDossier current = std::move(head[p]);
    const bool more = advance(p);
    sink.on_dossier(std::move(current));
    if (more) heap.emplace(head[p].mac.bits(), p);
  }
  if (spill) {
    for (std::uint32_t p = 0; p < partitions; ++p) {
      if (cursors[p] && !cursors[p]->ok()) return false;
    }
  }

  if (options_.telemetry != nullptr) {
    options_.telemetry->gauge("join.spill_bytes").set_u64(stats_.spill_bytes);
    options_.telemetry->gauge("join.spill_runs").set_u64(stats_.spill_runs);
    options_.telemetry->gauge("join.blocks_pruned")
        .set_u64(stats_.blocks_pruned);
    options_.telemetry->gauge("join.peak_partition_rows")
        .set_u64(stats_.peak_partition_rows);
    options_.telemetry->gauge("join.dossiers").set_u64(stats_.dossiers);
  }
  return true;
}

std::optional<analysis::DossierTable> DossierJoin::run_table() {
  analysis::DossierTable table;
  if (!run(table)) return std::nullopt;
  return table;
}

}  // namespace scent::join
