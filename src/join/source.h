// source.h - shared input extraction for the cross-dataset join.
//
// Both join implementations — the partitioned out-of-core engine (join.h)
// and the naive oracle (naive.h) — must agree exactly on what a "row" is:
// which snapshot rows yield a MAC, how a sighting is attributed, which
// corpus files a day window excludes, how a feed record packs into the
// spill-record shape. This header is that single definition, so the
// differential test exercises join *machinery* and nothing else.
//
// The corpus side extracts one KeyedRecord per deduplicated EUI-64
// <target, response> pair: key = the MAC embedded in the response IID,
// c0 = the probed /64 network, c1 = the BGP-attributed origin AS (0 when
// unattributed or no table given), c2 = the file's day index. The geo side
// packs a sim::GeoRecord as key = MAC, c0 = pack_latlon, c1 = collector
// AS, c2 = last-heard day.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "analysis/dossier.h"
#include "corpus/keyed_run.h"
#include "routing/bgp_table.h"
#include "sim/geo_feed.h"
#include "sim/rng.h"

namespace scent::join {

/// One rotation-corpus input: a snapshot (v1 or v2) and its day index.
struct CorpusDayFile {
  std::string path;
  std::int64_t day = 0;
};

/// An optional [first, last] day window over corpus files.
struct DayWindow {
  std::optional<std::int64_t> first_day;
  std::optional<std::int64_t> last_day;

  [[nodiscard]] bool contains(std::int64_t day) const noexcept {
    return (!first_day || day >= *first_day) &&
           (!last_day || day <= *last_day);
  }
};

enum class ScanResult {
  kScanned,  ///< Rows were streamed to the callback.
  kPruned,   ///< File excluded by the day window — nothing read or decoded.
  kError,    ///< Open/decode failure.
};

/// Streams one corpus file's join rows. Pruning is two-tier: the declared
/// day is checked against the window before the file is even opened, and
/// an opened v2 file is still dropped if its time-section block stats (the
/// §5j min/max contract) place every row outside the window. `cache` is
/// the caller's per-thread attribution memo.
[[nodiscard]] ScanResult scan_corpus_file(
    const CorpusDayFile& file, const DayWindow& window,
    const routing::BgpTable* bgp, routing::AttributionCache& cache,
    const std::function<void(const corpus::KeyedRecord&)>& fn);

/// The geo feed record in spill-record shape.
[[nodiscard]] inline corpus::KeyedRecord geo_to_record(
    const sim::GeoRecord& r) noexcept {
  return corpus::KeyedRecord{
      .key = r.mac.bits(),
      .c0 = analysis::pack_latlon(r.lat_udeg, r.lon_udeg),
      .c1 = r.asn,
      .c2 = static_cast<std::uint64_t>(r.last_day)};
}

/// Radix partition of a MAC key: the top `partition_bits` bits of the
/// mixed key. Mixing first buys balance (raw OUI prefixes are heavily
/// clustered); taking top bits of a full-avalanche mix keeps the P
/// partitions disjoint and exhaustive for any power-of-two P.
[[nodiscard]] inline std::uint32_t partition_of(
    std::uint64_t key, unsigned partition_bits) noexcept {
  if (partition_bits == 0) return 0;
  return static_cast<std::uint32_t>(sim::mix64(key) >> (64 - partition_bits));
}

}  // namespace scent::join
