#include "join/naive.h"

#include <algorithm>
#include <span>
#include <utility>

#include "container/flat_hash.h"
#include "corpus/geo_feed.h"

namespace scent::join {

std::optional<analysis::DossierTable> naive_join(
    const NaiveJoinInputs& inputs) {
  // One hash probe per row; values are the matched row groups per MAC.
  struct MacRows {
    std::vector<corpus::KeyedRecord> corpus_rows;
    std::vector<corpus::KeyedRecord> geo_rows;
  };
  container::FlatMap<std::uint64_t, MacRows> by_mac;

  routing::AttributionCache cache;
  for (const CorpusDayFile& file : inputs.corpus_files) {
    const ScanResult result = scan_corpus_file(
        file, inputs.window, inputs.bgp, cache,
        [&](const corpus::KeyedRecord& rec) {
          by_mac[rec.key].corpus_rows.push_back(rec);
        });
    if (result == ScanResult::kError) return std::nullopt;
  }
  for (const std::string& feed : inputs.geo_feeds) {
    corpus::GeoFeedReader reader;
    if (!reader.open(feed) ||
        !reader.for_each([&](const sim::GeoRecord& g) {
          const corpus::KeyedRecord rec = geo_to_record(g);
          // Left-outer: feed rows for MACs the corpus never saw join
          // nothing, but hashing them anyway keeps this a true hash join.
          by_mac[rec.key].geo_rows.push_back(rec);
        })) {
      return std::nullopt;
    }
  }

  std::vector<std::uint64_t> macs;
  macs.reserve(by_mac.size());
  for (const auto& [mac, rows] : by_mac) {
    if (!rows.corpus_rows.empty()) macs.push_back(mac);
  }
  std::sort(macs.begin(), macs.end());

  analysis::DossierTable table;
  for (const std::uint64_t mac : macs) {
    const MacRows& rows = by_mac[mac];
    table.on_dossier(analysis::make_dossier(net::MacAddress{mac},
                                            rows.corpus_rows, rows.geo_rows));
  }
  return table;
}

}  // namespace scent::join
