// join.h - partitioned, parallel, out-of-core merge-join over MAC keys.
//
// The cross-dataset engine (DESIGN.md §5l): joins the rotation corpus
// (snapshot chains, keyed by the MAC each EUI-64 response leaks) against
// the MAC-keyed geolocation feed (corpus/geo_feed.h), emitting one device
// dossier per corpus MAC — rotation history, vendor-resolvable MAC, and
// the feed's geo anchors — through analysis/dossier.h.
//
// Three phases:
//
//   1. Partition. Both sides are radix-partitioned by MAC (source.h's
//      partition_of) into P disjoint partitions. Input scanning shards
//      over corpus files and feed blocks; with a spill directory, every
//      (side, shard, partition) cell streams through a KeyedRunWriter, so
//      scan memory is O(open block buffers) and a 100M-row side never
//      materializes. Without one, cells are in-memory vectors (small
//      worlds, tests).
//
//   2. Partition-wise merge-join, one shard per thread, shard s owning
//      the contiguous partition range shard_rows(P, T, s). A partition's
//      corpus rows are loaded (runs concatenated in shard order = serial
//      input order), stably sorted by MAC, and its key span [lo, hi]
//      drives the geo side: geo runs are read with for_each_overlapping,
//      so every feed block whose stats miss the corpus span is skipped
//      undecoded — partition pruning rides the §5j block-stat contract
//      for free. Matched groups go through analysis::make_dossier (the
//      shared semantics — see naive.h) and land in a per-partition spool.
//
//   3. Canonical emission. Each MAC lives in exactly one partition and
//      each partition's dossier stream is MAC-ascending, so a P-way heap
//      merge emits the globally MAC-ascending dossier stream. The result
//      is bit-identical at any thread count AND any partition fan-out —
//      the §5d merge-order contract extended from shards to partitions.
//
// Peak memory is bounded by the largest single partition plus O(P) block
// buffers, never by input size; JoinStats reports the spill and pruning
// telemetry the bench guards assert.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/dossier.h"
#include "join/source.h"
#include "routing/bgp_table.h"
#include "telemetry/metrics.h"

namespace scent::join {

struct JoinOptions {
  /// Worker threads (0 = hardware concurrency), clamped to physical cores
  /// unless oversubscribe — the engine::effective_threads contract.
  unsigned threads = 1;
  bool oversubscribe = false;

  /// Partition fan-out; rounded up to a power of two, minimum 1. More
  /// partitions = smaller working set per merge step and more spill files.
  unsigned partitions = 16;

  /// When set, partitions spill to KeyedRun files and dossiers to
  /// per-partition spools under this directory (created if absent), and
  /// peak memory is bounded by one partition. When empty, everything stays
  /// in memory.
  std::string spill_dir;

  /// Records per spill-run block. Pruning granularity: a geo block is
  /// skipped only when its whole key range misses the corpus span, so
  /// smaller blocks prune more precisely (and tests pin this low to make
  /// pruning observable on small fixtures).
  std::size_t spill_block_elements = corpus::kKeyedRunBlockElements;

  /// Optional corpus day window; files wholly outside are pruned unopened
  /// (or undecoded, via v2 time stats). The feed side is never windowed.
  DayWindow window;

  /// Attribution table for sighting ASNs (nullptr = all sightings asn 0).
  const routing::BgpTable* bgp = nullptr;

  /// Optional telemetry: run() publishes join.* gauges here.
  telemetry::Registry* telemetry = nullptr;
};

struct JoinStats {
  unsigned threads = 1;
  unsigned partitions = 1;
  std::uint64_t corpus_files = 0;
  std::uint64_t corpus_files_pruned = 0;  ///< Day-window file prunes.
  std::uint64_t corpus_rows = 0;
  std::uint64_t geo_rows = 0;
  std::uint64_t spill_runs = 0;
  std::uint64_t spill_bytes = 0;          ///< Run + spool bytes written.
  std::uint64_t blocks_read = 0;          ///< Spill-run blocks decoded.
  std::uint64_t blocks_pruned = 0;        ///< Spill-run blocks skipped.
  std::uint64_t peak_partition_rows = 0;  ///< Largest partition, both sides.
  std::uint64_t dossiers = 0;
  std::uint64_t anchored = 0;             ///< Dossiers with >= 1 geo anchor.
};

/// The partitioned join engine. Configure inputs, then run() once.
class DossierJoin {
 public:
  explicit DossierJoin(JoinOptions options);

  /// Registers one corpus snapshot with its day index. Files are scanned
  /// in registration order — the canonical serial order the merge contract
  /// is defined against.
  void add_corpus_day(const std::string& path, std::int64_t day);

  /// Registers a geo feed file (corpus/geo_feed.h format).
  void add_geo_feed(const std::string& path);

  /// Runs the join, emitting dossiers to `sink` in ascending MAC order.
  /// False on any input, spill-I/O or decode failure (the sink may have
  /// received a partial prefix). Single-shot: a second call fails.
  [[nodiscard]] bool run(analysis::DossierSink& sink);

  /// Convenience: run into a fresh table. nullopt on failure.
  [[nodiscard]] std::optional<analysis::DossierTable> run_table();

  /// Valid after run() (partial if run() failed).
  [[nodiscard]] const JoinStats& stats() const noexcept { return stats_; }

 private:
  JoinOptions options_;
  std::vector<CorpusDayFile> corpus_files_;
  std::vector<std::string> geo_feeds_;
  JoinStats stats_;
  bool ran_ = false;
};

}  // namespace scent::join
