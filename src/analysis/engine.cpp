#include "analysis/engine.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <memory>
#include <utility>

#include "engine/parallel.h"
#include "netbase/eui64.h"
#include "sim/sim_time.h"
#include "telemetry/span.h"

namespace scent::analysis {
namespace {

/// Same sentinel the ObservationStore's classification memo uses: MAC bits
/// never exceed 48 bits, so all-ones marks "classified, not EUI-64".
constexpr std::uint64_t kNonEui = ~0ULL;

/// Scan-time device record. The first-attributed span sits inline next to
/// the DeviceAggregate instead of behind DeviceAggregate::per_as's heap
/// vector: almost every device keeps one origin AS for a whole campaign,
/// so the hot loop updates span fields in the cache lines the device
/// upsert just pulled in rather than chasing a second random allocation
/// per attributed row. Devices that really do appear under several ASes
/// (the §5.5 pathologies) spill into `overflow`, which together with
/// `first_span` preserves first-attribution order; analyze()'s phase 3
/// folds both back into the public per_as vector.
struct ScanDevice {
  DeviceAggregate dev;
  PerAsSpan first_span;  ///< .ad == nullptr means "not attributed yet".
  std::vector<PerAsSpan> overflow;  ///< Later ASes, first-attribution order.
};

using ScanDeviceMap =
    container::FlatMap<net::MacAddress, ScanDevice, net::MacAddressHash>;

struct ShardScratch {
  AggregateTable table;  ///< Counters and window snapshots during the scan.
  ScanDeviceMap devices;
  std::unique_ptr<trace::TraceRecorder> recorder;  ///< Only when tracing.
  std::uint64_t scan_ns = 0;  ///< Shard scan wall time, for the sketch.
};

void note_day(DeviceAggregate& dev, std::int64_t day) {
  if (day < dev.first_day) {
    dev.day_bits = rebase_day_bits(dev.day_bits, dev.first_day - day);
    dev.first_day = day;
  }
  if (day > dev.last_day) dev.last_day = day;
  const std::int64_t offset = day - dev.first_day;
  dev.day_bits |= 1ULL << (offset < 63 ? offset : 63);
}

/// `lazy_cache` is non-null only on the serial (single-shard) path, where
/// the scan runs inline and may therefore populate the attribution cache
/// as it goes instead of requiring a priming pre-pass; parallel shards
/// read the pre-primed `shared_cache` without synchronization.
void accumulate_block(ShardScratch& shard, const AnalysisOptions& options,
                      const routing::BgpTable* bgp,
                      const routing::AttributionCache& shared_cache,
                      routing::AttributionCache* lazy_cache,
                      std::size_t first_row,
                      std::span<const net::Ipv6Address> targets,
                      std::span<const net::Ipv6Address> responses,
                      std::span<const sim::TimePoint> times) {
  AggregateTable& table = shard.table;
  table.rows_scanned += responses.size();

  for (std::size_t i = 0; i < responses.size(); ++i) {
    const net::Ipv6Address response = responses[i];

    // Classify inline: embedded_mac is a handful of bit tests, cheaper
    // than any per-response memo on corpora where responses rarely repeat
    // (the paper's days are ~110M unique addresses).
    std::uint64_t mac_bits = kNonEui;
    if (const auto mac = net::embedded_mac(response)) {
      mac_bits = mac->bits();
    }

    if (!options.windows.empty() && mac_bits != kNonEui) {
      const std::size_t row = first_row + i;
      for (std::size_t w = 0; w < options.windows.size(); ++w) {
        const RowWindow& window = options.windows[w];
        if (row >= window.begin && row < window.end) {
          table.window_snapshots[w].record(targets[i], response);
        }
      }
    }

    if (mac_bits == kNonEui) continue;
    ++table.eui_rows;
    const net::MacAddress mac{mac_bits};
    if (options.only_mac && mac != *options.only_mac) continue;

    ScanDevice& scan_dev = shard.devices[mac];
    DeviceAggregate& dev = scan_dev.dev;
    const std::int64_t day = sim::day_of(times[i]);
    const std::uint64_t response_net = response.network();

    if (dev.observations == 0) {
      dev.oui = static_cast<std::uint32_t>(mac_bits >> 24);
      dev.first_day = dev.last_day = day;
      dev.response_lo = dev.response_hi = response_net;
      if (options.collect_targets) {
        const std::uint64_t target_net = targets[i].network();
        dev.target_lo = dev.target_hi = target_net;
      }
    } else {
      dev.response_lo = std::min(dev.response_lo, response_net);
      dev.response_hi = std::max(dev.response_hi, response_net);
      if (options.collect_targets) {
        const std::uint64_t target_net = targets[i].network();
        dev.target_lo = std::min(dev.target_lo, target_net);
        dev.target_hi = std::max(dev.target_hi, target_net);
      }
    }
    ++dev.observations;
    note_day(dev, day);

    if (options.collect_sightings) {
      if (dev.sightings.empty() || dev.sightings.back().day != day ||
          dev.sightings.back().network != response_net) {
        dev.sightings.push_back(core::Sighting{day, response_net});
      }
    }

    if (bgp != nullptr) {
      // The device's first span doubles as an attribution memo: almost all
      // rows re-attribute a device to the AS it was first seen in, and the
      // span's ad sits in cache lines the device upsert just touched. The
      // revalidation is exact (covers_unshadowed), so a hit returns the
      // same pointer the cache or trie would; everything else falls back.
      const routing::Advertisement* ad;
      if (scan_dev.first_span.ad != nullptr &&
          bgp->covers_unshadowed(scan_dev.first_span.ad, response)) {
        ad = scan_dev.first_span.ad;
      } else {
        ad = lazy_cache != nullptr ? bgp->attribute(response, *lazy_cache)
                                   : bgp->attribute(response, shared_cache);
      }
      if (ad != nullptr) {
        PerAsSpan* span = nullptr;
        bool fresh = false;
        if (scan_dev.first_span.ad == nullptr) {
          span = &scan_dev.first_span;
          fresh = true;
        } else if (scan_dev.first_span.asn == ad->origin_asn) {
          span = &scan_dev.first_span;
        } else {
          for (PerAsSpan& candidate : scan_dev.overflow) {
            if (candidate.asn == ad->origin_asn) {
              span = &candidate;
              break;
            }
          }
          if (span == nullptr) {
            scan_dev.overflow.push_back(PerAsSpan{});
            span = &scan_dev.overflow.back();
            fresh = true;
          }
        }
        if (fresh) {
          span->ad = ad;
          span->asn = ad->origin_asn;
          span->response_lo = span->response_hi = response_net;
          if (options.collect_targets) {
            const std::uint64_t target_net = targets[i].network();
            span->target_lo = span->target_hi = target_net;
          }
        } else {
          span->response_lo = std::min(span->response_lo, response_net);
          span->response_hi = std::max(span->response_hi, response_net);
          if (options.collect_targets) {
            const std::uint64_t target_net = targets[i].network();
            span->target_lo = std::min(span->target_lo, target_net);
            span->target_hi = std::max(span->target_hi, target_net);
          }
        }
        ++span->observations;
        span->days.note(day);
      }
    }
  }
}

void merge_span(PerAsSpan& dst, PerAsSpan&& src) {
  dst.target_lo = std::min(dst.target_lo, src.target_lo);
  dst.target_hi = std::max(dst.target_hi, src.target_hi);
  dst.response_lo = std::min(dst.response_lo, src.response_lo);
  dst.response_hi = std::max(dst.response_hi, src.response_hi);
  dst.observations += src.observations;
  dst.days.merge(src.days);
}

/// Folds a later shard's view of one device into an earlier shard's. Every
/// field is a pure function of the row set (plus first-occurrence order,
/// which the shard order preserves), so the result equals a serial pass.
/// per_as is not touched here: during the scan the spans live in the
/// ScanDevice wrapper, merged by merge_scan_device below.
void merge_device(DeviceAggregate& dst, DeviceAggregate&& src) {
  dst.target_lo = std::min(dst.target_lo, src.target_lo);
  dst.target_hi = std::max(dst.target_hi, src.target_hi);
  dst.response_lo = std::min(dst.response_lo, src.response_lo);
  dst.response_hi = std::max(dst.response_hi, src.response_hi);
  dst.observations += src.observations;

  if (src.first_day < dst.first_day) {
    dst.day_bits =
        rebase_day_bits(dst.day_bits, dst.first_day - src.first_day);
    dst.first_day = src.first_day;
  }
  dst.day_bits |= rebase_day_bits(src.day_bits, src.first_day - dst.first_day);
  dst.last_day = std::max(dst.last_day, src.last_day);

  if (!src.sightings.empty()) {
    // The later shard's rows follow the earlier shard's, so concatenation
    // in shard order is row order; only the boundary pair can be a
    // consecutive duplicate (both lists are already collapsed).
    std::size_t from = 0;
    if (!dst.sightings.empty() &&
        dst.sightings.back().day == src.sightings.front().day &&
        dst.sightings.back().network == src.sightings.front().network) {
      from = 1;
    }
    dst.sightings.insert(dst.sightings.end(), src.sightings.begin() + from,
                         src.sightings.end());
  }
}

/// Folds a later shard's spans into an earlier shard's, preserving
/// first-attribution order: dst's spans (in dst order) precede src spans
/// dst never saw (in src order) — exactly the order a serial scan's
/// per-device upsert produces, since dst's rows all precede src's.
void merge_scan_device(ScanDevice& dst, ScanDevice&& src) {
  merge_device(dst.dev, std::move(src.dev));
  const auto fold = [&dst](PerAsSpan&& span) {
    if (span.ad == nullptr) return;
    if (dst.first_span.ad == nullptr) {
      dst.first_span = std::move(span);
      return;
    }
    if (dst.first_span.asn == span.asn) {
      merge_span(dst.first_span, std::move(span));
      return;
    }
    for (PerAsSpan& candidate : dst.overflow) {
      if (candidate.asn == span.asn) {
        merge_span(candidate, std::move(span));
        return;
      }
    }
    dst.overflow.push_back(std::move(span));
  };
  fold(std::move(src.first_span));
  for (PerAsSpan& span : src.overflow) fold(std::move(span));
}

void merge_table(AggregateTable& dst, AggregateTable&& src) {
  dst.rows_scanned += src.rows_scanned;
  dst.eui_rows += src.eui_rows;
  // Replaying a later shard's snapshot entries in their insertion order
  // reproduces the serial map exactly: already-present targets keep their
  // first-seen slot and take the later (last-wins) response; new targets
  // append in first-occurrence order.
  for (std::size_t w = 0; w < dst.window_snapshots.size(); ++w) {
    for (const auto& [target, response] : src.window_snapshots[w].map()) {
      dst.window_snapshots[w].record(target, response);
    }
  }
}

void build_rollups(AggregateTable& table) {
  container::FlatMap<routing::Asn, std::size_t> index;
  std::vector<AsRollup> rollups;
  for (const auto& [mac, dev] : table.devices) {
    for (const PerAsSpan& span : dev.per_as) {
      const auto [entry, fresh] = index.try_emplace(span.asn, rollups.size());
      if (fresh) {
        AsRollup rollup;
        rollup.asn = span.asn;
        if (span.ad != nullptr) {
          rollup.country = span.ad->country;
          rollup.as_name = span.ad->as_name;
        }
        rollups.push_back(std::move(rollup));
      }
      AsRollup& rollup = rollups[entry->second];
      rollup.devices += 1;
      rollup.observations += span.observations;
    }
  }
  std::sort(rollups.begin(), rollups.end(),
            [](const AsRollup& a, const AsRollup& b) { return a.asn < b.asn; });
  table.as_rollups = std::move(rollups);
}

}  // namespace

AggregateTable analyze(const AnalysisInput& input, const routing::BgpTable* bgp,
                       const AnalysisOptions& options,
                       telemetry::Registry* registry) {
  telemetry::Span span{registry, "analysis.scan"};

  // Window snapshots replay <target, response> pairs, so the target
  // column cannot be skipped when windows are requested.
  assert(options.windows.empty() || options.collect_targets);

  const std::size_t total = input.rows();
  const routing::BgpTable* attributor = options.attribute ? bgp : nullptr;

  unsigned threads =
      engine::effective_threads(options.threads, options.oversubscribe);
  if (total == 0) threads = 1;

  // Phase 1 (serial, parallel runs only): one BGP trie walk per distinct
  // response /64, into a cache every shard then reads without
  // synchronization. The serial path skips the priming pre-pass — its
  // single inline shard can safely populate the cache lazily row by row.
  routing::AttributionCache cache;
  if (attributor != nullptr && threads > 1) {
    input.prime_attribution(*attributor, cache);
  }
  const routing::AttributionCache& shared_cache = cache;
  routing::AttributionCache* lazy_cache =
      (attributor != nullptr && threads == 1) ? &cache : nullptr;

  // Phase 2 (parallel): contiguous row shards, shard-local accumulation.
  std::vector<ShardScratch> shards(threads);
  for (ShardScratch& shard : shards) {
    shard.table.window_snapshots.resize(options.windows.size());
    if (options.trace != nullptr) {
      shard.recorder = std::make_unique<trace::TraceRecorder>(
          options.trace->recorder_capacity());
    }
  }
  engine::run_shards(threads, [&](unsigned s) {
    trace::TraceRecorder* recorder = shards[s].recorder.get();
    const std::uint64_t scan_start = trace::TraceRecorder::now_wall_ns();
    if (recorder != nullptr) recorder->begin("analysis.scan_shard");
    const engine::RowRange range = engine::shard_rows(total, threads, s);
    input.scan(range.begin, range.end, options.collect_targets,
               [&](std::size_t first_row,
                   std::span<const net::Ipv6Address> targets,
                   std::span<const net::Ipv6Address> responses,
                   std::span<const sim::TimePoint> times) {
                 accumulate_block(shards[s], options, attributor,
                                  shared_cache, lazy_cache, first_row,
                                  targets, responses, times);
               });
    if (recorder != nullptr) {
      recorder->end("analysis.scan_shard");
      recorder->counter(
          "analysis.rows",
          static_cast<std::int64_t>(shards[s].table.rows_scanned));
    }
    shards[s].scan_ns = trace::TraceRecorder::now_wall_ns() - scan_start;
  });

  // Phase 3 (serial): merge in shard order == row order == serial order.
  AggregateTable out = std::move(shards[0].table);
  ScanDeviceMap scan_devices = std::move(shards[0].devices);
  for (unsigned s = 1; s < threads; ++s) {
    merge_table(out, std::move(shards[s].table));
    for (auto& [mac, scan_dev] : shards[s].devices) {
      const auto [entry, fresh] = scan_devices.try_emplace(mac);
      if (fresh) {
        entry->second = std::move(scan_dev);
      } else {
        merge_scan_device(entry->second, std::move(scan_dev));
      }
    }
  }
  // Unwrap the scan records into the public table: insertion order is MAC
  // first-sighting order, and first_span + overflow concatenate into
  // per_as in first-attribution order — both identical to a serial pass.
  out.devices.reserve(scan_devices.size());
  for (auto& [mac, scan_dev] : scan_devices) {
    const auto [entry, fresh] = out.devices.try_emplace(mac);
    assert(fresh);
    (void)fresh;
    DeviceAggregate& dev = entry->second;
    dev = std::move(scan_dev.dev);
    if (scan_dev.first_span.ad != nullptr) {
      dev.per_as.reserve(1 + scan_dev.overflow.size());
      dev.per_as.push_back(std::move(scan_dev.first_span));
      for (PerAsSpan& span : scan_dev.overflow) {
        dev.per_as.push_back(std::move(span));
      }
    }
  }
  out.threads_used = threads;
  out.failed_files = input.failed_files();
  if (attributor != nullptr) build_rollups(out);

  // Trace lanes and the scan-latency sketch fold in at the same merge
  // point as the tables, in the same shard order.
  for (unsigned s = 0; s < threads; ++s) {
    if (options.trace != nullptr && shards[s].recorder != nullptr) {
      char lane[32];
      std::snprintf(lane, sizeof lane, "analysis shard %u", s);
      options.trace->drain(lane, *shards[s].recorder);
    }
    if (registry != nullptr) {
      registry->sketch("analysis.scan_ns").observe(shards[s].scan_ns);
    }
  }

  if (registry != nullptr) {
    registry->counter("analysis.passes").inc();
    registry->counter("analysis.rows_scanned").add(out.rows_scanned);
    registry->gauge("analysis.devices").set_u64(out.devices.size());
    registry->gauge("analysis.attributed_as").set_u64(out.as_rollups.size());
  }
  return out;
}

AggregateTable analyze(const core::ObservationStore& store,
                       const routing::BgpTable* bgp,
                       const AnalysisOptions& options,
                       telemetry::Registry* registry) {
  return analyze(StoreInput{store}, bgp, options, registry);
}

}  // namespace scent::analysis
