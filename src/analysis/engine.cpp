#include "analysis/engine.h"

#include <cassert>
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "analysis/accumulator.h"
#include "engine/parallel.h"
#include "telemetry/span.h"

namespace scent::analysis {
namespace {

/// Per-shard instrumentation the Accumulator itself stays free of: the
/// flight-recorder ring (when tracing) and the scan wall time.
struct ShardTrace {
  std::unique_ptr<trace::TraceRecorder> recorder;
  std::uint64_t scan_ns = 0;
};

}  // namespace

FusedScan scan_fused(const AnalysisInput& input, const routing::BgpTable* bgp,
                     const AnalysisOptions& options,
                     telemetry::Registry* registry) {
  telemetry::Span span{registry, "analysis.scan"};

  // Window snapshots replay <target, response> pairs, so the target
  // column cannot be skipped when windows are requested.
  assert(options.windows.empty() || options.collect_targets);

  const std::size_t total = input.rows();
  const routing::BgpTable* attributor = options.attribute ? bgp : nullptr;

  unsigned threads =
      engine::effective_threads(options.threads, options.oversubscribe);
  if (total == 0) threads = 1;

  // Phase 1 (serial, parallel runs only): one BGP trie walk per distinct
  // response /64, into a cache every shard then reads without
  // synchronization. The serial path skips the priming pre-pass — its
  // single inline shard safely populates a lazy cache row by row instead.
  routing::AttributionCache cache;
  if (attributor != nullptr && threads > 1) {
    input.prime_attribution(*attributor, cache);
  }
  const routing::AttributionCache* shared_cache =
      (attributor != nullptr && threads > 1) ? &cache : nullptr;

  // Phase 2 (parallel): contiguous row shards, shard-local accumulation.
  std::vector<Accumulator> shards;
  shards.reserve(threads);
  for (unsigned s = 0; s < threads; ++s) {
    shards.emplace_back(&options, attributor, shared_cache);
  }
  std::vector<ShardTrace> shard_trace(threads);
  if (options.trace != nullptr) {
    for (ShardTrace& st : shard_trace) {
      st.recorder = std::make_unique<trace::TraceRecorder>(
          options.trace->recorder_capacity());
    }
  }
  engine::run_shards(threads, [&](unsigned s) {
    trace::TraceRecorder* recorder = shard_trace[s].recorder.get();
    const std::uint64_t scan_start = trace::TraceRecorder::now_wall_ns();
    if (recorder != nullptr) recorder->begin("analysis.scan_shard");
    const engine::RowRange range = engine::shard_rows(total, threads, s);
    input.scan(range.begin, range.end, options.collect_targets,
               [&](std::size_t first_row,
                   std::span<const net::Ipv6Address> targets,
                   std::span<const net::Ipv6Address> responses,
                   std::span<const sim::TimePoint> times) {
                 shards[s].accumulate(first_row, targets, responses, times);
               });
    if (recorder != nullptr) {
      recorder->end("analysis.scan_shard");
      recorder->counter(
          "analysis.rows",
          static_cast<std::int64_t>(shards[s].rows_scanned()));
    }
    shard_trace[s].scan_ns = trace::TraceRecorder::now_wall_ns() - scan_start;
  });

  // Phase 3 (serial): merge in shard order == row order == serial order.
  // The unwrap into the public table is the caller's: analyze() finishes
  // immediately, the serve layer keeps accumulating deltas first.
  for (unsigned s = 1; s < threads; ++s) {
    shards[0].merge_from(std::move(shards[s]));
  }

  // Trace lanes and the scan-latency sketch fold in at the same merge
  // point as the tables, in the same shard order.
  for (unsigned s = 0; s < threads; ++s) {
    if (options.trace != nullptr && shard_trace[s].recorder != nullptr) {
      char lane[32];
      std::snprintf(lane, sizeof lane, "analysis shard %u", s);
      options.trace->drain(lane, *shard_trace[s].recorder);
    }
    if (registry != nullptr) {
      registry->sketch("analysis.scan_ns").observe(shard_trace[s].scan_ns);
    }
  }

  FusedScan out;
  // The shared cache lives on this stack frame; the returned accumulator
  // must not keep pointing at it.
  shards[0].detach_shared_cache();
  out.accumulator = std::move(shards[0]);
  out.threads_used = threads;
  out.failed_files = input.failed_files();
  return out;
}

AggregateTable analyze(const AnalysisInput& input, const routing::BgpTable* bgp,
                       const AnalysisOptions& options,
                       telemetry::Registry* registry) {
  FusedScan scan = scan_fused(input, bgp, options, registry);
  AggregateTable out = std::move(scan.accumulator).finish();
  out.threads_used = scan.threads_used;
  out.failed_files = scan.failed_files;
  note_table_metrics(out, registry);
  return out;
}

AggregateTable analyze(const core::ObservationStore& store,
                       const routing::BgpTable* bgp,
                       const AnalysisOptions& options,
                       telemetry::Registry* registry) {
  return analyze(StoreInput{store}, bgp, options, registry);
}

}  // namespace scent::analysis
