// engine.h - the fused single-pass, sharded analysis engine.
//
// analyze() replaces the N-independent-scans model: where the campaign
// used to walk the corpus once per analysis (global allocation spans,
// per-AS allocation spans, pool spans, homogeneity, pathology, rotation
// snapshots, sighting histories — each re-deriving EUI classification and
// BGP attribution per row), one fused scan now accumulates everything
// into the per-MAC AggregateTable, and each report derives from the table
// (derive.h) in time proportional to devices, not rows.
//
// Execution model (the sweep executor's contract, applied to rows):
//
//   1. A shared read-only AttributionCache is primed serially up front —
//      one BGP trie walk per distinct response /64 — then consulted by
//      every shard through the const BgpTable::attribute overload; no
//      shard ever mutates shared state.
//   2. engine::shard_rows carves [0, rows) into contiguous slices, one
//      per engine::effective_threads worker; each shard accumulates into
//      shard-local FlatMaps (its own response-classification memo, device
//      table, and partial window snapshots).
//   3. Shards merge in shard order. Because shard slices are contiguous
//      and every aggregate field is a pure function of the row set plus
//      first-occurrence order, the merged table — device iteration
//      order, per-AS sub-aggregate order, snapshot insertion order,
//      sighting lists — is bit-identical to a serial pass at any thread
//      count (DESIGN.md §5g).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/accumulator.h"
#include "analysis/aggregate.h"
#include "analysis/input.h"
#include "core/observation.h"
#include "netbase/mac_address.h"
#include "routing/bgp_table.h"
#include "telemetry/metrics.h"
#include "trace/recorder.h"

namespace scent::analysis {

/// A contiguous global row range [begin, end) for which the pass should
/// additionally materialize a rotation Snapshot (the two-sweep detector's
/// input) — e.g. the rows one sweep appended.
struct RowWindow {
  std::size_t begin = 0;
  std::size_t end = 0;
};

struct AnalysisOptions {
  /// Worker shards; 0 = hardware concurrency. Clamped to physical cores
  /// unless `oversubscribe` (same policy as the sweep executor).
  unsigned threads = 1;
  bool oversubscribe = false;

  /// Read the target column and accumulate target /64 spans (Algorithm 1
  /// needs them; the sighting-follow path switches them off to keep the
  /// chain read at 24 of 42 bytes per row). Window snapshots require
  /// targets.
  bool collect_targets = true;

  /// Accumulate per-device consecutive-deduplicated <day, network>
  /// sighting lists (Tracker::seed_history input).
  bool collect_sightings = true;

  /// Attribute responses per AS (per-AS spans, day sets, rollups). Off —
  /// or analyzing with a null table — leaves per_as/as_rollups empty.
  bool attribute = true;

  /// Restrict aggregation to one device (the single-MAC follow path);
  /// other devices' rows still count into rows_scanned/eui_rows and any
  /// window snapshots.
  std::optional<net::MacAddress> only_mac;

  /// Row windows to materialize rotation Snapshots for.
  std::vector<RowWindow> windows;

  /// If set, each scan shard records its pass into a shard-local flight
  /// recorder, drained as "analysis shard s" lanes at the phase-3 merge
  /// (shard order). With a registry, per-shard scan wall time also lands
  /// in the "analysis.scan_ns" quantile sketch.
  trace::TraceCollector* trace = nullptr;
};

/// A fused pass left in accumulator form: the merged (shard-order) result
/// of phases 1-3 before the finish() unwrap. analyze() is exactly
/// scan_fused(...) + finish(); the serve layer instead keeps the
/// accumulator alive — a full-corpus scan IS "build version 0" of the
/// same code path each day's delta-apply then extends (DESIGN.md §5k).
struct FusedScan {
  Accumulator accumulator;
  unsigned threads_used = 1;
  std::size_t failed_files = 0;
};

/// Phases 1-3 of the fused pass (prime, sharded scan, shard-order merge),
/// without the unwrap. The returned accumulator is detached from the
/// scan's shared attribution cache and safe to keep, merge from, and
/// materialize long after this call returns.
[[nodiscard]] FusedScan scan_fused(const AnalysisInput& input,
                                   const routing::BgpTable* bgp,
                                   const AnalysisOptions& options = {},
                                   telemetry::Registry* registry = nullptr);

/// One fused pass over `input`. `bgp` may be null when options.attribute
/// is false. With a registry, runs under an "analysis.scan" span and
/// records analysis.* counters/gauges.
[[nodiscard]] AggregateTable analyze(const AnalysisInput& input,
                                     const routing::BgpTable* bgp,
                                     const AnalysisOptions& options = {},
                                     telemetry::Registry* registry = nullptr);

/// Convenience: analyze a whole in-memory store.
[[nodiscard]] AggregateTable analyze(const core::ObservationStore& store,
                                     const routing::BgpTable* bgp,
                                     const AnalysisOptions& options = {},
                                     telemetry::Registry* registry = nullptr);

}  // namespace scent::analysis
