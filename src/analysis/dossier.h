// dossier.h - cross-dataset device dossiers and their derived reports.
//
// A dossier is the join's output row (DESIGN.md §5l): everything both
// datasets know about one MAC. From the rotation corpus, the device's
// sighting history — which /64 it sat behind on which day, attributed to
// which AS. From the geolocation feed, zero or more anchors — street-level
// fixes keyed by the same MAC, the IPvSeeYou coupling that turns a prefix
// rotation trace into a map pin.
//
// make_dossier is the single definition of join semantics: both the
// partitioned out-of-core engine (join/join.h) and the naive oracle
// (join/naive.h) funnel their matched row groups through it, so the
// differential test compares join machinery, never two reimplementations
// of dossier construction. It canonicalizes (sorts and deduplicates) both
// sides, which is also what makes the engine's output independent of
// arrival order, thread count and partition fan-out.
//
// The derived reports are derive.h-style pure functions over a
// DossierTable: cross-AS MAC reuse (the same burned-in identifier
// surfacing behind multiple providers) and provider-switch timelines
// (when a device moved ASes — a rotation trace that outlives the
// subscriber's ISP contract).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "corpus/keyed_run.h"
#include "netbase/mac_address.h"
#include "oui/oui_registry.h"

namespace scent::analysis {

/// One corpus-side sighting: the device answered EUI-64 probes from
/// `network` (a /64 upper half) on `day`, attributed to `asn` (0 when no
/// BGP table was supplied).
struct DossierSighting {
  std::int64_t day = 0;
  std::uint64_t network = 0;
  std::uint32_t asn = 0;

  friend constexpr bool operator==(const DossierSighting&,
                                   const DossierSighting&) = default;
  friend constexpr auto operator<=>(const DossierSighting&,
                                    const DossierSighting&) = default;
};

/// One feed-side anchor: a geolocated fix for the same MAC.
struct GeoAnchor {
  std::int64_t day = 0;
  std::int32_t lat_udeg = 0;
  std::int32_t lon_udeg = 0;
  std::uint32_t asn = 0;

  friend constexpr bool operator==(const GeoAnchor&,
                                   const GeoAnchor&) = default;
  friend constexpr auto operator<=>(const GeoAnchor&,
                                    const GeoAnchor&) = default;
};

/// The join's output row: one per corpus MAC (left-outer — anchors empty
/// when the feed never heard the device).
struct DeviceDossier {
  net::MacAddress mac;
  std::vector<DossierSighting> sightings;  ///< Sorted, deduplicated.
  std::vector<GeoAnchor> anchors;          ///< Sorted, deduplicated.

  friend bool operator==(const DeviceDossier&,
                         const DeviceDossier&) = default;
};

/// Packs a geolocation fix into one KeyedRecord payload column (lat in the
/// high half, lon in the low half), so the feed side of the join rides the
/// same spill format as the corpus side.
[[nodiscard]] constexpr std::uint64_t pack_latlon(std::int32_t lat_udeg,
                                                  std::int32_t lon_udeg) {
  return (std::uint64_t{static_cast<std::uint32_t>(lat_udeg)} << 32) |
         static_cast<std::uint32_t>(lon_udeg);
}

[[nodiscard]] constexpr std::int32_t unpack_lat(std::uint64_t packed) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(packed >> 32));
}

[[nodiscard]] constexpr std::int32_t unpack_lon(std::uint64_t packed) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(packed));
}

/// Builds the canonical dossier for one MAC from its matched row groups.
/// Corpus rows carry {c0 = network, c1 = asn, c2 = day}; geo rows carry
/// {c0 = pack_latlon, c1 = asn, c2 = day}. Input order is irrelevant —
/// both sides are sorted and exact duplicates collapsed.
[[nodiscard]] DeviceDossier make_dossier(
    net::MacAddress mac, std::span<const corpus::KeyedRecord> corpus_rows,
    std::span<const corpus::KeyedRecord> geo_rows);

/// Dossier consumer. The join engine emits dossiers in ascending MAC order
/// regardless of thread count or partition fan-out; sinks may rely on that.
class DossierSink {
 public:
  virtual ~DossierSink() = default;
  virtual void on_dossier(DeviceDossier dossier) = 0;
};

/// The in-memory sink: collects dossiers in emission (ascending-MAC) order.
class DossierTable final : public DossierSink {
 public:
  void on_dossier(DeviceDossier dossier) override {
    rows_.push_back(std::move(dossier));
  }

  [[nodiscard]] const std::vector<DeviceDossier>& rows() const noexcept {
    return rows_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }

 private:
  std::vector<DeviceDossier> rows_;
};

/// A MAC observed behind more than one AS across the corpus — either CPE
/// redeployed to a different provider or a MAC collision worth flagging.
struct MacReuse {
  net::MacAddress mac;
  std::vector<std::uint32_t> asns;  ///< Ascending, unique, size >= 2.
  std::int64_t first_day = 0;
  std::int64_t last_day = 0;

  friend bool operator==(const MacReuse&, const MacReuse&) = default;
};

/// One provider transition in a device's day-ordered sighting history.
struct ProviderSwitch {
  net::MacAddress mac;
  std::uint32_t from_asn = 0;
  std::uint32_t to_asn = 0;
  std::int64_t day = 0;  ///< First day seen behind to_asn.

  friend bool operator==(const ProviderSwitch&,
                         const ProviderSwitch&) = default;
};

/// Devices whose sightings span >= 2 ASNs, in table (ascending-MAC) order.
[[nodiscard]] std::vector<MacReuse> cross_as_mac_reuse(
    const DossierTable& table);

/// Every AS-to-AS transition in every device's day-ordered history, in
/// table order then chronological order. Sightings with asn == 0
/// (unattributed) are ignored.
[[nodiscard]] std::vector<ProviderSwitch> provider_switch_timeline(
    const DossierTable& table);

/// Vendor → device count over the table's MACs, ascending by vendor name;
/// OUIs the registry cannot resolve land under "(unknown)".
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
dossier_vendor_census(const DossierTable& table, const oui::Registry& registry);

/// Fraction of dossiers the feed anchored (0 for an empty table).
[[nodiscard]] double anchored_fraction(const DossierTable& table);

}  // namespace scent::analysis
