// input.h - row sources for the fused analysis pass.
//
// The engine consumes rows as contiguous <target, response, time> column
// blocks through one interface, so the same fused scan runs over an
// in-memory ObservationStore or a persisted snapshot chain without either
// path knowing which. The contract mirrors the corpus layer's lazy-column
// design: a scan names the columns it needs (targets are skippable — the
// sighting-follow path reads 24 of the 42 bytes per row, matching
// sightings_from_snapshots), and chain files that fail to open or verify
// contribute no rows and are counted into failed_files(), so a gappy
// on-disk campaign still analyzes — exactly the legacy skip semantics.
//
// scan() must be safe to call concurrently for disjoint row ranges: the
// engine hands each shard its own contiguous slice. StoreInput serves
// subspans of the live columns; ChainInput gives every scan call its own
// SnapshotReader, so shards share no reader state.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/observation.h"
#include "netbase/ipv6_address.h"
#include "routing/bgp_table.h"
#include "sim/sim_time.h"

namespace scent::analysis {

/// A source of observation rows for one fused pass.
class AnalysisInput {
 public:
  virtual ~AnalysisInput() = default;

  /// Called with ascending contiguous blocks; `first_row` is the global
  /// index of the block's first row. `targets` is empty when the scan was
  /// asked not to materialize the target column.
  using BlockFn = std::function<void(
      std::size_t first_row, std::span<const net::Ipv6Address> targets,
      std::span<const net::Ipv6Address> responses,
      std::span<const sim::TimePoint> times)>;

  /// Total rows (chain files that failed to open contribute none).
  [[nodiscard]] virtual std::size_t rows() const noexcept = 0;

  /// Visits rows [begin, end). Thread-safe for disjoint ranges.
  virtual void scan(std::size_t begin, std::size_t end, bool want_targets,
                    const BlockFn& fn) const = 0;

  /// Serially memoizes BGP attribution for every distinct response /64 in
  /// the input — the shared read-only AttributionCache the shards consult.
  /// The default walks all responses through the mutating attribute();
  /// inputs with a cheaper distinct-response index override it.
  virtual void prime_attribution(const routing::BgpTable& bgp,
                                 routing::AttributionCache& cache) const;

  /// Chain inputs: snapshots skipped because they failed to open or
  /// verify. Stable only after every scan() has returned.
  [[nodiscard]] virtual std::size_t failed_files() const noexcept {
    return 0;
  }
};

/// Rows [first, last) of an in-memory columnar store (defaults to all).
class StoreInput final : public AnalysisInput {
 public:
  explicit StoreInput(const core::ObservationStore& store)
      : StoreInput(store, 0, store.size()) {}
  StoreInput(const core::ObservationStore& store, std::size_t first,
             std::size_t last) noexcept
      : store_(&store), first_(first), last_(last) {}

  [[nodiscard]] std::size_t rows() const noexcept override {
    return last_ - first_;
  }

  void scan(std::size_t begin, std::size_t end, bool want_targets,
            const BlockFn& fn) const override;

  /// Primes from the store's classification memo — one walk over distinct
  /// response addresses instead of every row.
  void prime_attribution(const routing::BgpTable& bgp,
                         routing::AttributionCache& cache) const override;

 private:
  const core::ObservationStore* store_;
  std::size_t first_;
  std::size_t last_;
};

/// A persisted snapshot chain, in path order. Files that fail to open at
/// construction are excluded (and counted); files whose column sections
/// fail to verify during a scan contribute no rows to any shard — the
/// failure is deterministic, so every thread count sees the same rows.
class ChainInput final : public AnalysisInput {
 public:
  explicit ChainInput(std::vector<std::string> paths);

  [[nodiscard]] std::size_t rows() const noexcept override { return rows_; }

  void scan(std::size_t begin, std::size_t end, bool want_targets,
            const BlockFn& fn) const override;

  [[nodiscard]] std::size_t failed_files() const noexcept override;

  /// Snapshot blocks decoded / skipped by row-window predicates across all
  /// scan() calls so far (v2 files only; v1 files have no blocks). Stable
  /// once every scan has returned.
  [[nodiscard]] std::uint64_t blocks_read() const noexcept {
    return blocks_read_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t blocks_skipped() const noexcept {
    return blocks_skipped_.load(std::memory_order_relaxed);
  }

 private:
  struct File {
    std::string path;
    std::size_t first_row = 0;  ///< Global index of the file's first row.
    std::size_t rows = 0;
  };

  std::vector<File> files_;
  std::size_t rows_ = 0;
  std::size_t failed_open_ = 0;
  /// Set (racily but monotonically) by whichever scan first sees a file's
  /// window read fail; see the failure-granularity note in scan().
  std::unique_ptr<std::atomic<bool>[]> read_failed_;
  mutable std::atomic<std::uint64_t> blocks_read_{0};
  mutable std::atomic<std::uint64_t> blocks_skipped_{0};
};

}  // namespace scent::analysis
