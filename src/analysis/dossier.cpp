#include "analysis/dossier.h"

#include <algorithm>
#include <map>

namespace scent::analysis {

DeviceDossier make_dossier(net::MacAddress mac,
                           std::span<const corpus::KeyedRecord> corpus_rows,
                           std::span<const corpus::KeyedRecord> geo_rows) {
  DeviceDossier dossier;
  dossier.mac = mac;
  dossier.sightings.reserve(corpus_rows.size());
  for (const corpus::KeyedRecord& row : corpus_rows) {
    dossier.sightings.push_back(
        DossierSighting{.day = static_cast<std::int64_t>(row.c2),
                        .network = row.c0,
                        .asn = static_cast<std::uint32_t>(row.c1)});
  }
  std::sort(dossier.sightings.begin(), dossier.sightings.end());
  dossier.sightings.erase(
      std::unique(dossier.sightings.begin(), dossier.sightings.end()),
      dossier.sightings.end());

  dossier.anchors.reserve(geo_rows.size());
  for (const corpus::KeyedRecord& row : geo_rows) {
    dossier.anchors.push_back(
        GeoAnchor{.day = static_cast<std::int64_t>(row.c2),
                  .lat_udeg = unpack_lat(row.c0),
                  .lon_udeg = unpack_lon(row.c0),
                  .asn = static_cast<std::uint32_t>(row.c1)});
  }
  std::sort(dossier.anchors.begin(), dossier.anchors.end());
  dossier.anchors.erase(
      std::unique(dossier.anchors.begin(), dossier.anchors.end()),
      dossier.anchors.end());
  return dossier;
}

std::vector<MacReuse> cross_as_mac_reuse(const DossierTable& table) {
  std::vector<MacReuse> out;
  for (const DeviceDossier& dossier : table.rows()) {
    if (dossier.sightings.empty()) continue;
    MacReuse reuse;
    reuse.mac = dossier.mac;
    reuse.first_day = dossier.sightings.front().day;
    reuse.last_day = dossier.sightings.front().day;
    for (const DossierSighting& s : dossier.sightings) {
      reuse.first_day = std::min(reuse.first_day, s.day);
      reuse.last_day = std::max(reuse.last_day, s.day);
      if (s.asn != 0) reuse.asns.push_back(s.asn);
    }
    std::sort(reuse.asns.begin(), reuse.asns.end());
    reuse.asns.erase(std::unique(reuse.asns.begin(), reuse.asns.end()),
                     reuse.asns.end());
    if (reuse.asns.size() >= 2) out.push_back(std::move(reuse));
  }
  return out;
}

std::vector<ProviderSwitch> provider_switch_timeline(
    const DossierTable& table) {
  std::vector<ProviderSwitch> out;
  for (const DeviceDossier& dossier : table.rows()) {
    // Sightings are (day, network, asn)-sorted; walk them chronologically
    // and record each day the attributed AS changes.
    std::uint32_t current = 0;
    for (const DossierSighting& s : dossier.sightings) {
      if (s.asn == 0) continue;
      if (current != 0 && s.asn != current) {
        out.push_back(ProviderSwitch{
            .mac = dossier.mac, .from_asn = current, .to_asn = s.asn,
            .day = s.day});
      }
      current = s.asn;
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>> dossier_vendor_census(
    const DossierTable& table, const oui::Registry& registry) {
  std::map<std::string, std::uint64_t> counts;
  for (const DeviceDossier& dossier : table.rows()) {
    const auto vendor = registry.vendor(dossier.mac);
    counts[vendor ? std::string(*vendor) : std::string("(unknown)")] += 1;
  }
  return {counts.begin(), counts.end()};
}

double anchored_fraction(const DossierTable& table) {
  if (table.rows().empty()) return 0.0;
  std::uint64_t anchored = 0;
  for (const DeviceDossier& dossier : table.rows()) {
    if (!dossier.anchors.empty()) ++anchored;
  }
  return static_cast<double>(anchored) /
         static_cast<double>(table.rows().size());
}

}  // namespace scent::analysis
