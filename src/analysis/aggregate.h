// aggregate.h - the fused analysis pass's per-device aggregate table.
//
// Every analysis the paper runs over a campaign corpus — Algorithm 1
// (allocation size, §3.2.1), Algorithm 2 (rotation pool size, §3.2.2),
// vendor homogeneity (§5.1), multi-AS pathology hunting (§5.5), rotation
// differencing (§4.3) and tracker sighting histories (§6) — is a function
// of the same handful of per-EUI-64-device facts: which /64s were probed
// and answered, which /64s the WAN address appeared in, which origin ASes
// attributed it, and on which days. Historically each analysis re-walked
// the raw rows to re-derive those facts; the analysis engine walks the
// rows once and materializes them here, and every report derives from
// this table (derive.h) without touching a row again.
//
// Determinism: the table is FlatMap-backed, so device iteration order is
// MAC first-sighting order — the same order a serial scan produces — and
// the engine's shard-order merge (engine.cpp) reproduces exactly that
// order at any thread count. All fields are pure functions of the row
// *set* plus first-occurrence order, both of which are partition-
// independent, so a merged table is bit-identical to a serial one.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "container/flat_hash.h"
#include "core/predictor.h"
#include "core/rotation_detector.h"
#include "netbase/mac_address.h"
#include "routing/bgp_table.h"

namespace scent::analysis {

/// Rebases a day bitset whose bit semantics are "bit min(day - first, 63)"
/// onto an earlier first day (`delta` = old_first - new_first >= 0). Bits
/// pushed past position 63 saturate into bit 63, preserving the pure-
/// function definition — which is what makes shard merges order-free.
[[nodiscard]] constexpr std::uint64_t rebase_day_bits(
    std::uint64_t bits, std::int64_t delta) noexcept {
  if (delta <= 0 || bits == 0) return bits;
  if (delta >= 63) return 1ULL << 63;
  const bool saturated = (bits >> (63 - delta)) != 0;
  std::uint64_t out = bits << delta;
  if (saturated) out |= 1ULL << 63;
  return out;
}

/// An exact set of campaign days in canonical form: a 64-day bitset
/// anchored at the set's minimum day, plus a sorted spill vector for the
/// rare days beyond the window (campaigns cluster observations into a
/// span of days far shorter than 64; real multi-year corpora spill).
///
/// The representation is a pure function of the day *set* — the anchor is
/// always the minimum, the window width is fixed, and a spilled day can
/// never re-enter the window because the anchor only ever decreases — so
/// the defaulted operator== is exact set equality and merge order cannot
/// change the bytes. That keeps the engine's shard-merge bit-identical.
///
/// This replaces a per-span sorted std::vector whose insert-per-row
/// (heap allocation + binary search) dominated the fused scan's hot
/// loop; note() for an in-window day is a subtract, a shift, and an OR.
class DaySet {
 public:
  /// Inserts `day`; idempotent.
  void note(std::int64_t day) {
    if (bits_ == 0) {
      anchor_ = day;
      bits_ = 1;
      return;
    }
    const std::int64_t offset = day - anchor_;
    if (offset >= 0) {
      if (offset < 64) {
        bits_ |= 1ULL << offset;
      } else {
        spill_insert(day);
      }
      return;
    }
    rebase(-offset);
    bits_ |= 1;  // anchor_ == day now.
  }

  /// Set union. Order-free: both inputs are canonical, and note()
  /// re-canonicalizes, so (a ∪ b) and (b ∪ a) are byte-identical.
  void merge(const DaySet& other) {
    std::uint64_t bits = other.bits_;
    while (bits != 0) {
      const int k = std::countr_zero(bits);
      bits &= bits - 1;
      note(other.anchor_ + k);
    }
    for (const std::int64_t day : other.spill_) note(day);
  }

  /// Appends the member days to `out` in ascending order.
  void append_to(std::vector<std::int64_t>& out) const {
    std::uint64_t bits = bits_;
    while (bits != 0) {
      const int k = std::countr_zero(bits);
      bits &= bits - 1;
      out.push_back(anchor_ + k);
    }
    out.insert(out.end(), spill_.begin(), spill_.end());
  }

  /// The member days, ascending.
  [[nodiscard]] std::vector<std::int64_t> values() const {
    std::vector<std::int64_t> out;
    out.reserve(count());
    append_to(out);
    return out;
  }

  [[nodiscard]] bool empty() const noexcept { return bits_ == 0; }
  [[nodiscard]] std::size_t count() const noexcept {
    return static_cast<std::size_t>(std::popcount(bits_)) + spill_.size();
  }
  /// Smallest member day; requires !empty().
  [[nodiscard]] std::int64_t first() const noexcept { return anchor_; }
  /// Largest member day; requires !empty().
  [[nodiscard]] std::int64_t last() const noexcept {
    if (!spill_.empty()) return spill_.back();
    return anchor_ + 63 - std::countl_zero(bits_);
  }

  bool operator==(const DaySet&) const = default;

 private:
  /// Moves the anchor `delta > 0` days earlier. Window bits pushed past
  /// position 63 spill; every spilled day is <= old anchor + 63, i.e.
  /// smaller than every existing spill entry, so they prepend as a block
  /// and the spill vector stays sorted.
  void rebase(std::int64_t delta) {
    std::int64_t spilled_days[64];
    std::size_t spilled = 0;
    if (delta >= 64) {
      std::uint64_t bits = bits_;
      while (bits != 0) {
        const int k = std::countr_zero(bits);
        bits &= bits - 1;
        spilled_days[spilled++] = anchor_ + k;
      }
      bits_ = 0;
    } else {
      std::uint64_t overflow = bits_ >> (64 - delta);
      while (overflow != 0) {
        const int k = std::countr_zero(overflow);
        overflow &= overflow - 1;
        spilled_days[spilled++] = anchor_ + (64 - delta) + k;
      }
      bits_ <<= delta;
    }
    anchor_ -= delta;
    if (spilled != 0) {
      spill_.insert(spill_.begin(), spilled_days, spilled_days + spilled);
    }
  }

  void spill_insert(std::int64_t day) {
    if (spill_.empty() || day > spill_.back()) {
      spill_.push_back(day);
      return;
    }
    const auto it = std::lower_bound(spill_.begin(), spill_.end(), day);
    if (*it != day) spill_.insert(it, day);
  }

  std::int64_t anchor_ = 0;          ///< Minimum member day when non-empty.
  std::uint64_t bits_ = 0;           ///< Bit k == day anchor_ + k present.
  std::vector<std::int64_t> spill_;  ///< Sorted days > anchor_ + 63.
};

/// One device's relationship with one origin AS: the spans and days behind
/// the per-AS allocation medians (campaign day 0), the homogeneity counts,
/// and the pathology classifier's hand-off test. `ad` points into the
/// BgpTable the engine attributed against (stable while it isn't
/// announce()d into) — country and AS name derive from it without a
/// per-device string copy.
struct PerAsSpan {
  const routing::Advertisement* ad = nullptr;
  routing::Asn asn = 0;
  std::uint64_t target_lo = 0;    ///< Probed-target /64 span (Algorithm 1).
  std::uint64_t target_hi = 0;
  std::uint64_t response_lo = 0;  ///< Response /64 span within this AS.
  std::uint64_t response_hi = 0;
  std::uint64_t observations = 0;
  DaySet days;                    ///< Distinct days this AS attributed it.
};

/// Everything the downstream analyses need to know about one EUI-64
/// device, accumulated in a single pass over the rows.
struct DeviceAggregate {
  std::uint32_t oui = 0;             ///< Top 24 MAC bits: the manufacturer.
  std::uint64_t observations = 0;    ///< 0 means "freshly emplaced".
  std::uint64_t target_lo = 0;       ///< Global target /64 span (Alg. 1).
  std::uint64_t target_hi = 0;
  std::uint64_t response_lo = 0;     ///< Global response /64 span (Alg. 2).
  std::uint64_t response_hi = 0;
  std::int64_t first_day = 0;
  std::int64_t last_day = 0;
  /// Bit min(day - first_day, 63) per day seen; day 64+ activity saturates
  /// into bit 63.
  std::uint64_t day_bits = 0;
  /// Per-AS sub-aggregates in first-attribution order (rows with no BGP
  /// match contribute to the global fields only, as the legacy scans did).
  std::vector<PerAsSpan> per_as;
  /// <day, response /64> in observation order with consecutive duplicates
  /// collapsed — exactly sightings_from_snapshots' output for this MAC.
  std::vector<core::Sighting> sightings;
};

/// Per-AS rollup across all devices, derived after the merge.
struct AsRollup {
  routing::Asn asn = 0;
  std::string country;
  std::string as_name;
  std::uint64_t observations = 0;  ///< Attributed EUI observations.
  std::uint64_t devices = 0;       ///< Distinct EUI MACs attributed.
};

/// The merged output of one fused pass.
struct AggregateTable {
  using DeviceMap = container::FlatMap<net::MacAddress, DeviceAggregate,
                                       net::MacAddressHash>;

  DeviceMap devices;                 ///< MAC first-sighting order.
  std::vector<AsRollup> as_rollups;  ///< Ascending ASN.
  /// One rotation Snapshot per requested RowWindow, identical to recording
  /// the window's rows serially (AnalysisOptions::windows).
  std::vector<core::Snapshot> window_snapshots;
  std::uint64_t rows_scanned = 0;
  std::uint64_t eui_rows = 0;        ///< Rows whose response embeds a MAC.
  std::size_t failed_files = 0;      ///< Chain inputs: unreadable snapshots.
  unsigned threads_used = 1;
};

}  // namespace scent::analysis
