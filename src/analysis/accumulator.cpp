#include "analysis/accumulator.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "analysis/engine.h"
#include "netbase/eui64.h"
#include "sim/sim_time.h"

namespace scent::analysis {
namespace {

/// Same sentinel the ObservationStore's classification memo uses: MAC bits
/// never exceed 48 bits, so all-ones marks "classified, not EUI-64".
constexpr std::uint64_t kNonEui = ~0ULL;

void note_day(DeviceAggregate& dev, std::int64_t day) {
  if (day < dev.first_day) {
    dev.day_bits = rebase_day_bits(dev.day_bits, dev.first_day - day);
    dev.first_day = day;
  }
  if (day > dev.last_day) dev.last_day = day;
  const std::int64_t offset = day - dev.first_day;
  dev.day_bits |= 1ULL << (offset < 63 ? offset : 63);
}

void merge_span(PerAsSpan& dst, PerAsSpan&& src) {
  dst.target_lo = std::min(dst.target_lo, src.target_lo);
  dst.target_hi = std::max(dst.target_hi, src.target_hi);
  dst.response_lo = std::min(dst.response_lo, src.response_lo);
  dst.response_hi = std::max(dst.response_hi, src.response_hi);
  dst.observations += src.observations;
  dst.days.merge(src.days);
}

/// Folds a later shard's view of one device into an earlier shard's. Every
/// field is a pure function of the row set (plus first-occurrence order,
/// which the shard order preserves), so the result equals a serial pass.
/// per_as is not touched here: during the scan the spans live in the
/// ScanDevice wrapper, merged by merge_scan_device below.
void merge_device(DeviceAggregate& dst, DeviceAggregate&& src) {
  dst.target_lo = std::min(dst.target_lo, src.target_lo);
  dst.target_hi = std::max(dst.target_hi, src.target_hi);
  dst.response_lo = std::min(dst.response_lo, src.response_lo);
  dst.response_hi = std::max(dst.response_hi, src.response_hi);
  dst.observations += src.observations;

  if (src.first_day < dst.first_day) {
    dst.day_bits =
        rebase_day_bits(dst.day_bits, dst.first_day - src.first_day);
    dst.first_day = src.first_day;
  }
  dst.day_bits |= rebase_day_bits(src.day_bits, src.first_day - dst.first_day);
  dst.last_day = std::max(dst.last_day, src.last_day);

  if (!src.sightings.empty()) {
    // The later shard's rows follow the earlier shard's, so concatenation
    // in shard order is row order; only the boundary pair can be a
    // consecutive duplicate (both lists are already collapsed).
    std::size_t from = 0;
    if (!dst.sightings.empty() &&
        dst.sightings.back().day == src.sightings.front().day &&
        dst.sightings.back().network == src.sightings.front().network) {
      from = 1;
    }
    dst.sightings.insert(dst.sightings.end(), src.sightings.begin() + from,
                         src.sightings.end());
  }
}

/// Folds a later shard's spans into an earlier shard's, preserving
/// first-attribution order: dst's spans (in dst order) precede src spans
/// dst never saw (in src order) — exactly the order a serial scan's
/// per-device upsert produces, since dst's rows all precede src's.
void merge_scan_device(ScanDevice& dst, ScanDevice&& src) {
  merge_device(dst.dev, std::move(src.dev));
  const auto fold = [&dst](PerAsSpan&& span) {
    if (span.ad == nullptr) return;
    if (dst.first_span.ad == nullptr) {
      dst.first_span = std::move(span);
      return;
    }
    if (dst.first_span.asn == span.asn) {
      merge_span(dst.first_span, std::move(span));
      return;
    }
    for (PerAsSpan& candidate : dst.overflow) {
      if (candidate.asn == span.asn) {
        merge_span(candidate, std::move(span));
        return;
      }
    }
    dst.overflow.push_back(std::move(span));
  };
  fold(std::move(src.first_span));
  for (PerAsSpan& span : src.overflow) fold(std::move(span));
}

void merge_table(AggregateTable& dst, AggregateTable&& src) {
  dst.rows_scanned += src.rows_scanned;
  dst.eui_rows += src.eui_rows;
  // Replaying a later shard's snapshot entries in their insertion order
  // reproduces the serial map exactly: already-present targets keep their
  // first-seen slot and take the later (last-wins) response; new targets
  // append in first-occurrence order.
  for (std::size_t w = 0; w < dst.window_snapshots.size(); ++w) {
    for (const auto& [target, response] : src.window_snapshots[w].map()) {
      dst.window_snapshots[w].record(target, response);
    }
  }
}

void build_rollups(AggregateTable& table) {
  container::FlatMap<routing::Asn, std::size_t> index;
  std::vector<AsRollup> rollups;
  for (const auto& [mac, dev] : table.devices) {
    for (const PerAsSpan& span : dev.per_as) {
      const auto [entry, fresh] = index.try_emplace(span.asn, rollups.size());
      if (fresh) {
        AsRollup rollup;
        rollup.asn = span.asn;
        if (span.ad != nullptr) {
          rollup.country = span.ad->country;
          rollup.as_name = span.ad->as_name;
        }
        rollups.push_back(std::move(rollup));
      }
      AsRollup& rollup = rollups[entry->second];
      rollup.devices += 1;
      rollup.observations += span.observations;
    }
  }
  std::sort(rollups.begin(), rollups.end(),
            [](const AsRollup& a, const AsRollup& b) { return a.asn < b.asn; });
  table.as_rollups = std::move(rollups);
}

}  // namespace

Accumulator::Accumulator(const AnalysisOptions* options,
                         const routing::BgpTable* bgp,
                         const routing::AttributionCache* shared_cache)
    : options_(options),
      bgp_(options->attribute ? bgp : nullptr),
      shared_cache_(shared_cache) {
  table_.window_snapshots.resize(options->windows.size());
}

void Accumulator::accumulate(std::size_t first_row,
                             std::span<const net::Ipv6Address> targets,
                             std::span<const net::Ipv6Address> responses,
                             std::span<const sim::TimePoint> times) {
  const AnalysisOptions& options = *options_;
  AggregateTable& table = table_;
  table.rows_scanned += responses.size();

  for (std::size_t i = 0; i < responses.size(); ++i) {
    const net::Ipv6Address response = responses[i];

    // Classify inline: embedded_mac is a handful of bit tests, cheaper
    // than any per-response memo on corpora where responses rarely repeat
    // (the paper's days are ~110M unique addresses).
    std::uint64_t mac_bits = kNonEui;
    if (const auto mac = net::embedded_mac(response)) {
      mac_bits = mac->bits();
    }

    if (!options.windows.empty() && mac_bits != kNonEui) {
      const std::size_t row = first_row + i;
      for (std::size_t w = 0; w < options.windows.size(); ++w) {
        const RowWindow& window = options.windows[w];
        if (row >= window.begin && row < window.end) {
          table.window_snapshots[w].record(targets[i], response);
        }
      }
    }

    if (mac_bits == kNonEui) continue;
    ++table.eui_rows;
    const net::MacAddress mac{mac_bits};
    if (options.only_mac && mac != *options.only_mac) continue;

    ScanDevice& scan_dev = devices_[mac];
    DeviceAggregate& dev = scan_dev.dev;
    const std::int64_t day = sim::day_of(times[i]);
    const std::uint64_t response_net = response.network();

    if (dev.observations == 0) {
      dev.oui = static_cast<std::uint32_t>(mac_bits >> 24);
      dev.first_day = dev.last_day = day;
      dev.response_lo = dev.response_hi = response_net;
      if (options.collect_targets) {
        const std::uint64_t target_net = targets[i].network();
        dev.target_lo = dev.target_hi = target_net;
      }
    } else {
      dev.response_lo = std::min(dev.response_lo, response_net);
      dev.response_hi = std::max(dev.response_hi, response_net);
      if (options.collect_targets) {
        const std::uint64_t target_net = targets[i].network();
        dev.target_lo = std::min(dev.target_lo, target_net);
        dev.target_hi = std::max(dev.target_hi, target_net);
      }
    }
    ++dev.observations;
    note_day(dev, day);

    if (options.collect_sightings) {
      if (dev.sightings.empty() || dev.sightings.back().day != day ||
          dev.sightings.back().network != response_net) {
        dev.sightings.push_back(core::Sighting{day, response_net});
      }
    }

    if (bgp_ != nullptr) {
      // The device's first span doubles as an attribution memo: almost all
      // rows re-attribute a device to the AS it was first seen in, and the
      // span's ad sits in cache lines the device upsert just touched. The
      // revalidation is exact (covers_unshadowed), so a hit returns the
      // same pointer the cache or trie would; everything else falls back.
      const routing::Advertisement* ad;
      if (scan_dev.first_span.ad != nullptr &&
          bgp_->covers_unshadowed(scan_dev.first_span.ad, response)) {
        ad = scan_dev.first_span.ad;
      } else {
        ad = shared_cache_ != nullptr ? bgp_->attribute(response, *shared_cache_)
                                      : bgp_->attribute(response, lazy_cache_);
      }
      if (ad != nullptr) {
        PerAsSpan* span = nullptr;
        bool fresh = false;
        if (scan_dev.first_span.ad == nullptr) {
          span = &scan_dev.first_span;
          fresh = true;
        } else if (scan_dev.first_span.asn == ad->origin_asn) {
          span = &scan_dev.first_span;
        } else {
          for (PerAsSpan& candidate : scan_dev.overflow) {
            if (candidate.asn == ad->origin_asn) {
              span = &candidate;
              break;
            }
          }
          if (span == nullptr) {
            scan_dev.overflow.push_back(PerAsSpan{});
            span = &scan_dev.overflow.back();
            fresh = true;
          }
        }
        if (fresh) {
          span->ad = ad;
          span->asn = ad->origin_asn;
          span->response_lo = span->response_hi = response_net;
          if (options.collect_targets) {
            const std::uint64_t target_net = targets[i].network();
            span->target_lo = span->target_hi = target_net;
          }
        } else {
          span->response_lo = std::min(span->response_lo, response_net);
          span->response_hi = std::max(span->response_hi, response_net);
          if (options.collect_targets) {
            const std::uint64_t target_net = targets[i].network();
            span->target_lo = std::min(span->target_lo, target_net);
            span->target_hi = std::max(span->target_hi, target_net);
          }
        }
        ++span->observations;
        span->days.note(day);
      }
    }
  }
}

void Accumulator::merge_from(Accumulator&& later) {
  merge_table(table_, std::move(later.table_));
  for (auto& [mac, scan_dev] : later.devices_) {
    const auto [entry, fresh] = devices_.try_emplace(mac);
    if (fresh) {
      entry->second = std::move(scan_dev);
    } else {
      merge_scan_device(entry->second, std::move(scan_dev));
    }
  }
}

AggregateTable Accumulator::finish() && {
  // Unwrap the scan records into the public table: insertion order is MAC
  // first-sighting order, and first_span + overflow concatenate into
  // per_as in first-attribution order — both identical to a serial pass.
  AggregateTable out = std::move(table_);
  out.devices.reserve(devices_.size());
  for (auto& [mac, scan_dev] : devices_) {
    const auto [entry, fresh] = out.devices.try_emplace(mac);
    assert(fresh);
    (void)fresh;
    DeviceAggregate& dev = entry->second;
    dev = std::move(scan_dev.dev);
    if (scan_dev.first_span.ad != nullptr) {
      dev.per_as.reserve(1 + scan_dev.overflow.size());
      dev.per_as.push_back(std::move(scan_dev.first_span));
      for (PerAsSpan& span : scan_dev.overflow) {
        dev.per_as.push_back(std::move(span));
      }
    }
  }
  if (bgp_ != nullptr) build_rollups(out);
  return out;
}

AggregateTable Accumulator::materialize() const {
  // The copying twin of finish(): same insertion order, same first_span +
  // overflow concatenation, same rollup build — so the produced table is
  // field-for-field what finish() would return — but the scan records stay
  // behind for the next delta to merge into.
  AggregateTable out = table_;
  out.devices.reserve(devices_.size());
  for (const auto& [mac, scan_dev] : devices_) {
    const auto [entry, fresh] = out.devices.try_emplace(mac);
    assert(fresh);
    (void)fresh;
    DeviceAggregate& dev = entry->second;
    dev = scan_dev.dev;
    if (scan_dev.first_span.ad != nullptr) {
      dev.per_as.reserve(1 + scan_dev.overflow.size());
      dev.per_as.push_back(scan_dev.first_span);
      for (const PerAsSpan& span : scan_dev.overflow) {
        dev.per_as.push_back(span);
      }
    }
  }
  if (bgp_ != nullptr) build_rollups(out);
  return out;
}

void note_table_metrics(const AggregateTable& table,
                        telemetry::Registry* registry) {
  if (registry == nullptr) return;
  registry->counter("analysis.passes").inc();
  registry->counter("analysis.rows_scanned").add(table.rows_scanned);
  registry->gauge("analysis.devices").set_u64(table.devices.size());
  registry->gauge("analysis.attributed_as").set_u64(table.as_rollups.size());
}

}  // namespace scent::analysis
