// accumulator.h - the fused scan's shard-local accumulation, extracted
// from analyze() so alternative drivers can build the same aggregates.
//
// An Accumulator is one shard of the fused analysis pass: feed it
// contiguous row blocks in row order (accumulate), fold later shards into
// earlier ones in shard order (merge_from), and unwrap the result into
// the public AggregateTable (finish). analyze() drives a set of them over
// engine::shard_rows slices behind a barrier; the streaming ingest path
// (core/sweep_ingest) instead gives each probe shard its own Accumulator
// and feeds it observation batches as they are produced — shard-local
// DeviceAggregate building starts while later shards are still probing.
//
// Determinism: every aggregate field is a pure function of the row set
// plus first-occurrence order, and both drivers partition the rows into
// contiguous ordered shards, so the merged table is bit-identical no
// matter which driver produced it or how many shards it used (§5g, §5i).
// Attribution is a pure lookup, so it does not matter whether a shard
// reads a pre-primed shared cache or populates a private lazy one.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/aggregate.h"
#include "container/flat_hash.h"
#include "netbase/ipv6_address.h"
#include "netbase/mac_address.h"
#include "routing/bgp_table.h"
#include "sim/sim_time.h"
#include "telemetry/metrics.h"

namespace scent::analysis {

struct AnalysisOptions;

/// Scan-time device record. The first-attributed span sits inline next to
/// the DeviceAggregate instead of behind DeviceAggregate::per_as's heap
/// vector: almost every device keeps one origin AS for a whole campaign,
/// so the hot loop updates span fields in the cache lines the device
/// upsert just pulled in rather than chasing a second random allocation
/// per attributed row. Devices that really do appear under several ASes
/// (the §5.5 pathologies) spill into `overflow`, which together with
/// `first_span` preserves first-attribution order; finish() folds both
/// back into the public per_as vector.
struct ScanDevice {
  DeviceAggregate dev;
  PerAsSpan first_span;  ///< .ad == nullptr means "not attributed yet".
  std::vector<PerAsSpan> overflow;  ///< Later ASes, first-attribution order.
};

using ScanDeviceMap =
    container::FlatMap<net::MacAddress, ScanDevice, net::MacAddressHash>;

class Accumulator {
 public:
  Accumulator() = default;

  /// `options` and `bgp` must outlive the accumulator. `bgp` may be null
  /// (no attribution). With a non-null `shared_cache` the shard reads it
  /// without synchronization (the parallel barrier path primes it up
  /// front); with null, the shard populates a private lazy cache as it
  /// goes — same attributions either way, attribution being pure.
  Accumulator(const AnalysisOptions* options, const routing::BgpTable* bgp,
              const routing::AttributionCache* shared_cache);

  /// Accumulates one contiguous row block. Blocks must arrive in row
  /// order; `first_row` is the block's global row index (only consulted
  /// by window snapshots — drivers that forbid windows may pass 0).
  void accumulate(std::size_t first_row,
                  std::span<const net::Ipv6Address> targets,
                  std::span<const net::Ipv6Address> responses,
                  std::span<const sim::TimePoint> times);

  /// Folds `later` — an accumulator that scanned rows strictly after this
  /// one's — into this one. Call in shard order.
  void merge_from(Accumulator&& later);

  /// Unwraps into the public table: devices in MAC first-sighting order,
  /// per_as in first-attribution order, AS rollups built when the scan
  /// attributed. The accumulator is spent afterwards.
  [[nodiscard]] AggregateTable finish() &&;

  /// Copy-unwraps into the public table — field-for-field what finish()
  /// would return — while leaving the accumulator intact, so further rows
  /// (the serve layer's next-day delta) can still be merged in. This is
  /// how ServeTable publishes an immutable TableVersion per delta without
  /// spending its maintained state.
  [[nodiscard]] AggregateTable materialize() const;

  /// The in-progress window snapshots, options.windows order. Exposed so
  /// delta builders can lift a finished window out of a spent scan;
  /// analyze() leaves them in place for finish() to move out.
  [[nodiscard]] std::vector<core::Snapshot>& window_snapshots() noexcept {
    return table_.window_snapshots;
  }

  /// Drops the shared-cache binding (which points into the driving scan's
  /// stack frame). A detached accumulator remains fully usable — further
  /// accumulate calls fall back to the private lazy cache, and merge /
  /// materialize / finish never consult a cache at all.
  void detach_shared_cache() noexcept { shared_cache_ = nullptr; }

  [[nodiscard]] std::uint64_t rows_scanned() const noexcept {
    return table_.rows_scanned;
  }

 private:
  const AnalysisOptions* options_ = nullptr;
  const routing::BgpTable* bgp_ = nullptr;
  const routing::AttributionCache* shared_cache_ = nullptr;
  routing::AttributionCache lazy_cache_;  ///< Used when shared_cache_ null.
  AggregateTable table_;  ///< Counters and window snapshots during the scan.
  ScanDeviceMap devices_;
};

/// The analysis.* counters/gauges analyze() has always recorded, shared
/// with the streaming driver so both paths surface the same telemetry.
void note_table_metrics(const AggregateTable& table,
                        telemetry::Registry* registry);

}  // namespace scent::analysis
