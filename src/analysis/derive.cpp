#include "analysis/derive.h"

#include <algorithm>
#include <cstdint>
#include <string>

#include "core/inference.h"

namespace scent::analysis {

std::vector<unsigned> allocation_lengths(const AggregateTable& table) {
  std::vector<unsigned> out;
  out.reserve(table.devices.size());
  for (const auto& [mac, dev] : table.devices) {
    out.push_back(core::span_to_prefix_length(dev.target_lo, dev.target_hi));
  }
  return out;
}

std::optional<unsigned> allocation_median(const AggregateTable& table) {
  return core::median_of(allocation_lengths(table));
}

std::vector<unsigned> pool_lengths(const AggregateTable& table) {
  std::vector<unsigned> out;
  out.reserve(table.devices.size());
  for (const auto& [mac, dev] : table.devices) {
    out.push_back(
        core::span_to_prefix_length(dev.response_lo, dev.response_hi));
  }
  return out;
}

std::optional<unsigned> pool_median(const AggregateTable& table) {
  return core::median_of(pool_lengths(table));
}

std::optional<unsigned> allocation_length_for(const AggregateTable& table,
                                              net::MacAddress mac) {
  const auto it = table.devices.find(mac);
  if (it == table.devices.end()) return std::nullopt;
  return core::span_to_prefix_length(it->second.target_lo,
                                     it->second.target_hi);
}

std::optional<unsigned> pool_length_for(const AggregateTable& table,
                                        net::MacAddress mac) {
  const auto it = table.devices.find(mac);
  if (it == table.devices.end()) return std::nullopt;
  return core::span_to_prefix_length(it->second.response_lo,
                                     it->second.response_hi);
}

std::optional<net::Prefix> pool_for(const AggregateTable& table,
                                    net::MacAddress mac,
                                    unsigned pool_length) {
  const auto it = table.devices.find(mac);
  if (it == table.devices.end()) return std::nullopt;
  // Align the observed low end down to the pool size; if the observed high
  // end spills past that aligned block, widen to the next shorter aligned
  // prefix that covers both (RotationPoolInference::pool_for's loop).
  unsigned length = pool_length;
  for (;;) {
    const net::Prefix candidate{net::Ipv6Address{it->second.response_lo, 0},
                                length};
    if (candidate.contains(net::Ipv6Address{it->second.response_hi, 0})) {
      return candidate;
    }
    if (length == 0) return std::nullopt;
    --length;
  }
}

container::FlatMap<routing::Asn, unsigned> allocation_medians_by_as(
    const AggregateTable& table) {
  // Per-(device, AS) lengths, grouped by AS. The median is insensitive to
  // accumulation order, so grouping from the device table matches the
  // legacy row-by-row per-AS inference exactly.
  container::FlatMap<routing::Asn, std::vector<unsigned>> lengths_by_as;
  for (const auto& [mac, dev] : table.devices) {
    for (const PerAsSpan& span : dev.per_as) {
      lengths_by_as[span.asn].push_back(
          core::span_to_prefix_length(span.target_lo, span.target_hi));
    }
  }
  std::vector<routing::Asn> asns;
  asns.reserve(lengths_by_as.size());
  for (const auto& [asn, lengths] : lengths_by_as) asns.push_back(asn);
  std::sort(asns.begin(), asns.end());

  container::FlatMap<routing::Asn, unsigned> out;
  out.reserve(asns.size());
  for (const routing::Asn asn : asns) {
    out[asn] = *core::median_of(lengths_by_as[asn]);
  }
  return out;
}

std::vector<core::AsHomogeneity> homogeneity(const AggregateTable& table,
                                             const oui::Registry& registry,
                                             std::size_t min_iids) {
  // Counts are distinct-MAC counts per AS: each device carries at most one
  // PerAsSpan per AS, so one increment per (device, AS) reproduces the
  // legacy per-AS FlatSet sizes without any set at all.
  struct Acc {
    const routing::Advertisement* ad = nullptr;
    container::FlatMap<std::string, std::size_t> vendor_devices;
    std::size_t devices = 0;
  };
  container::FlatMap<routing::Asn, Acc> per_as;
  for (const auto& [mac, dev] : table.devices) {
    if (dev.per_as.empty()) continue;
    const auto vendor = registry.vendor(mac);
    const std::string vendor_name =
        vendor ? std::string{*vendor} : "(unknown)";
    for (const PerAsSpan& span : dev.per_as) {
      Acc& acc = per_as[span.asn];
      acc.ad = span.ad;
      ++acc.devices;
      ++acc.vendor_devices[vendor_name];
    }
  }

  std::vector<core::AsHomogeneity> out;
  out.reserve(per_as.size());
  for (const auto& [asn, acc] : per_as) {
    if (acc.devices < min_iids) continue;
    core::AsHomogeneity h;
    h.asn = asn;
    if (acc.ad != nullptr) h.country = acc.ad->country;
    h.unique_iids = acc.devices;
    h.vendors.reserve(acc.vendor_devices.size());
    for (const auto& [vendor, count] : acc.vendor_devices) {
      h.vendors.push_back(core::VendorCount{vendor, count});
    }
    std::sort(h.vendors.begin(), h.vendors.end(),
              [](const core::VendorCount& a, const core::VendorCount& b) {
                if (a.unique_iids != b.unique_iids) {
                  return a.unique_iids > b.unique_iids;
                }
                return a.vendor < b.vendor;
              });
    out.push_back(std::move(h));
  }
  std::sort(out.begin(), out.end(),
            [](const core::AsHomogeneity& a, const core::AsHomogeneity& b) {
              return a.asn < b.asn;
            });
  return out;
}

std::vector<core::MultiAsIid> multi_as_iids(
    const AggregateTable& table, const core::PathologyOptions& options) {
  std::vector<core::MultiAsIid> out;
  std::vector<std::int64_t> all_days;
  for (const auto& [mac, dev] : table.devices) {
    if (dev.per_as.size() < 2) continue;

    core::MultiAsIid entry;
    entry.mac = mac;
    entry.asns.reserve(dev.per_as.size());
    for (const PerAsSpan& span : dev.per_as) entry.asns.push_back(span.asn);
    std::sort(entry.asns.begin(), entry.asns.end());

    // A day is "concurrent" when it appears in >= 2 ASes' (distinct,
    // sorted) day lists: concatenate, sort, count runs of length >= 2.
    all_days.clear();
    for (const PerAsSpan& span : dev.per_as) {
      span.days.append_to(all_days);
    }
    std::sort(all_days.begin(), all_days.end());
    for (std::size_t i = 0; i < all_days.size();) {
      std::size_t j = i + 1;
      while (j < all_days.size() && all_days[j] == all_days[i]) ++j;
      if (j - i >= 2) ++entry.concurrent_days;
      i = j;
    }

    const bool default_mac =
        mac.bits() == 0 || mac.bits() == 0xffffffffffffULL;
    if (default_mac) {
      entry.kind = core::PathologyKind::kDefaultMac;
    } else if (entry.concurrent_days >= options.min_concurrent_days) {
      entry.kind = core::PathologyKind::kConcurrentReuse;
    } else if (entry.asns.size() == 2 && entry.concurrent_days == 0) {
      // Candidate provider switch: a clean temporal hand-off — one AS
      // strictly before some day, the other strictly after.
      const auto days_of = [&dev](routing::Asn asn) -> const DaySet& {
        for (const PerAsSpan& span : dev.per_as) {
          if (span.asn == asn) return span.days;
        }
        static const DaySet kEmpty;
        return kEmpty;
      };
      const DaySet& days_a = days_of(entry.asns[0]);
      const DaySet& days_b = days_of(entry.asns[1]);
      if (days_a.last() < days_b.first()) {
        entry.kind = core::PathologyKind::kProviderSwitch;
        entry.switch_from = entry.asns[0];
        entry.switch_to = entry.asns[1];
        entry.switch_day = days_b.first();
      } else if (days_b.last() < days_a.first()) {
        entry.kind = core::PathologyKind::kProviderSwitch;
        entry.switch_from = entry.asns[1];
        entry.switch_to = entry.asns[0];
        entry.switch_day = days_a.first();
      } else {
        entry.kind = core::PathologyKind::kMultiAsOther;
      }
    } else {
      entry.kind = core::PathologyKind::kMultiAsOther;
    }
    out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end(),
            [](const core::MultiAsIid& a, const core::MultiAsIid& b) {
              return a.mac < b.mac;
            });
  return out;
}

std::vector<core::Sighting> sightings_of(const AggregateTable& table,
                                         net::MacAddress mac) {
  const auto it = table.devices.find(mac);
  if (it == table.devices.end()) return {};
  return it->second.sightings;
}

}  // namespace scent::analysis
