#include "analysis/input.h"

#include <algorithm>

#include "corpus/snapshot.h"

namespace scent::analysis {

void AnalysisInput::prime_attribution(const routing::BgpTable& bgp,
                                      routing::AttributionCache& cache) const {
  scan(0, rows(), /*want_targets=*/false,
       [&](std::size_t, std::span<const net::Ipv6Address>,
           std::span<const net::Ipv6Address> responses,
           std::span<const sim::TimePoint>) {
         for (const net::Ipv6Address response : responses) {
           (void)bgp.attribute(response, cache);
         }
       });
}

void StoreInput::scan(std::size_t begin, std::size_t end, bool want_targets,
                      const BlockFn& fn) const {
  if (begin >= end) return;
  const std::size_t lo = first_ + begin;
  const std::size_t count = end - begin;
  fn(begin,
     want_targets ? store_->target_column().subspan(lo, count)
                  : std::span<const net::Ipv6Address>{},
     store_->response_column().subspan(lo, count),
     store_->time_column().subspan(lo, count));
}

void StoreInput::prime_attribution(const routing::BgpTable& bgp,
                                   routing::AttributionCache& cache) const {
  // The classification memo's keys are exactly the distinct responses; a
  // sub-range input primes the whole store's set, which only over-fills
  // the cache (harmless — shards read it by /64 key).
  for (const net::Ipv6Address response : store_->distinct_responses()) {
    (void)bgp.attribute(response, cache);
  }
}

ChainInput::ChainInput(std::vector<std::string> paths) {
  files_.reserve(paths.size());
  for (std::string& path : paths) {
    corpus::SnapshotReader reader;
    if (!reader.open(path)) {
      ++failed_open_;
      continue;
    }
    files_.push_back(File{std::move(path), rows_, reader.rows()});
    rows_ += files_.back().rows;
  }
  if (!files_.empty()) {
    read_failed_ = std::make_unique<std::atomic<bool>[]>(files_.size());
    for (std::size_t i = 0; i < files_.size(); ++i) {
      read_failed_[i].store(false, std::memory_order_relaxed);
    }
  }
}

void ChainInput::scan(std::size_t begin, std::size_t end, bool want_targets,
                      const BlockFn& fn) const {
  if (begin >= end) return;
  // Columns re-read per scan call: each shard owns its own reader and
  // buffers, so concurrent scans share nothing. Only files straddling a
  // shard boundary are read twice.
  std::vector<net::Ipv6Address> targets;
  std::vector<net::Ipv6Address> responses;
  std::vector<sim::TimePoint> times;
  for (std::size_t f = 0; f < files_.size(); ++f) {
    const File& file = files_[f];
    const std::size_t file_end = file.first_row + file.rows;
    if (file_end <= begin) continue;
    if (file.first_row >= end) break;

    corpus::SnapshotReader reader;
    const bool ok = reader.open(file.path) &&
                    reader.read_responses(responses) &&
                    reader.read_times(times) &&
                    (!want_targets || reader.read_targets(targets));
    if (!ok) {
      // Deterministic failure: every shard overlapping this file takes
      // this branch, so the visited row set is thread-count independent.
      read_failed_[f].store(true, std::memory_order_relaxed);
      continue;
    }

    const std::size_t lo = std::max(begin, file.first_row) - file.first_row;
    const std::size_t hi = std::min(end, file_end) - file.first_row;
    fn(file.first_row + lo,
       want_targets
           ? std::span<const net::Ipv6Address>{targets}.subspan(lo, hi - lo)
           : std::span<const net::Ipv6Address>{},
       std::span<const net::Ipv6Address>{responses}.subspan(lo, hi - lo),
       std::span<const sim::TimePoint>{times}.subspan(lo, hi - lo));
  }
}

std::size_t ChainInput::failed_files() const noexcept {
  std::size_t failed = failed_open_;
  for (std::size_t f = 0; f < files_.size(); ++f) {
    if (read_failed_[f].load(std::memory_order_relaxed)) ++failed;
  }
  return failed;
}

}  // namespace scent::analysis
