#include "analysis/input.h"

#include <algorithm>

#include "corpus/snapshot.h"

namespace scent::analysis {

void AnalysisInput::prime_attribution(const routing::BgpTable& bgp,
                                      routing::AttributionCache& cache) const {
  scan(0, rows(), /*want_targets=*/false,
       [&](std::size_t, std::span<const net::Ipv6Address>,
           std::span<const net::Ipv6Address> responses,
           std::span<const sim::TimePoint>) {
         for (const net::Ipv6Address response : responses) {
           (void)bgp.attribute(response, cache);
         }
       });
}

void StoreInput::scan(std::size_t begin, std::size_t end, bool want_targets,
                      const BlockFn& fn) const {
  if (begin >= end) return;
  const std::size_t lo = first_ + begin;
  const std::size_t count = end - begin;
  fn(begin,
     want_targets ? store_->target_column().subspan(lo, count)
                  : std::span<const net::Ipv6Address>{},
     store_->response_column().subspan(lo, count),
     store_->time_column().subspan(lo, count));
}

void StoreInput::prime_attribution(const routing::BgpTable& bgp,
                                   routing::AttributionCache& cache) const {
  // The classification memo's keys are exactly the distinct responses; a
  // sub-range input primes the whole store's set, which only over-fills
  // the cache (harmless — shards read it by /64 key).
  for (const net::Ipv6Address response : store_->distinct_responses()) {
    (void)bgp.attribute(response, cache);
  }
}

ChainInput::ChainInput(std::vector<std::string> paths) {
  files_.reserve(paths.size());
  for (std::string& path : paths) {
    corpus::SnapshotReader reader;
    if (!reader.open(path)) {
      ++failed_open_;
      continue;
    }
    files_.push_back(File{std::move(path), rows_, reader.rows()});
    rows_ += files_.back().rows;
  }
  if (!files_.empty()) {
    read_failed_ = std::make_unique<std::atomic<bool>[]>(files_.size());
    for (std::size_t i = 0; i < files_.size(); ++i) {
      read_failed_[i].store(false, std::memory_order_relaxed);
    }
  }
}

void ChainInput::scan(std::size_t begin, std::size_t end, bool want_targets,
                      const BlockFn& fn) const {
  if (begin >= end) return;
  // Columns re-read per scan call: each shard owns its own reader and
  // buffers, so concurrent scans share nothing. Only files straddling a
  // shard boundary are read twice. Reads are row-window reads: a v2 file
  // decodes (and CRC-verifies) only the blocks overlapping [begin, end),
  // counting the rest into blocks_skipped(); v1 falls back to whole-column
  // reads internally.
  std::vector<net::Ipv6Address> targets;
  std::vector<net::Ipv6Address> responses;
  std::vector<sim::TimePoint> times;
  for (std::size_t f = 0; f < files_.size(); ++f) {
    const File& file = files_[f];
    const std::size_t file_end = file.first_row + file.rows;
    if (file_end <= begin) continue;
    if (file.first_row >= end) break;

    const std::size_t lo = std::max(begin, file.first_row) - file.first_row;
    const std::size_t hi = std::min(end, file_end) - file.first_row;
    corpus::SnapshotReader reader;
    // Failure granularity follows the integrity unit: structural damage
    // (header, v2 block directories) fails open() for every shard, and a
    // v1 payload flip fails every shard's whole-column read — the file
    // contributes no rows at any thread count. A v2 payload flip is only
    // seen by shards whose windows overlap the damaged block; each drops
    // its whole window for this file (rows-visited may then differ by
    // shard layout — the price of not re-reading clean blocks to verify
    // ones no shard was asked for). Either way the file counts failed.
    const bool ok = reader.open(file.path) &&
                    reader.read_responses(responses, lo, hi - lo) &&
                    reader.read_times(times, lo, hi - lo) &&
                    (!want_targets || reader.read_targets(targets, lo, hi - lo));
    blocks_read_.fetch_add(reader.blocks_read(), std::memory_order_relaxed);
    blocks_skipped_.fetch_add(reader.blocks_skipped(),
                              std::memory_order_relaxed);
    // The size check guards against a file that shrank since construction
    // (range reads clamp rather than fail).
    if (!ok || responses.size() != hi - lo) {
      read_failed_[f].store(true, std::memory_order_relaxed);
      continue;
    }

    fn(file.first_row + lo,
       want_targets ? std::span<const net::Ipv6Address>{targets}
                    : std::span<const net::Ipv6Address>{},
       std::span<const net::Ipv6Address>{responses},
       std::span<const sim::TimePoint>{times});
  }
}

std::size_t ChainInput::failed_files() const noexcept {
  std::size_t failed = failed_open_;
  for (std::size_t f = 0; f < files_.size(); ++f) {
    if (read_failed_[f].load(std::memory_order_relaxed)) ++failed;
  }
  return failed;
}

}  // namespace scent::analysis
