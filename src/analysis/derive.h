// derive.h - every analysis report, derived from one AggregateTable.
//
// These functions reproduce, bit for bit, what the legacy per-analysis
// full scans produced — but in time proportional to the device table, not
// the row count, because the fused pass (engine.h) already accumulated
// the per-device facts. The bench guard (bench_micro, "analysis" section
// of BENCH_micro.json) asserts both the equality and the speedup.
//
// Derivations that need target spans require the pass to have run with
// collect_targets (the default); per-AS derivations require attribute.
#pragma once

#include <optional>
#include <vector>

#include "analysis/aggregate.h"
#include "container/flat_hash.h"
#include "core/homogeneity.h"
#include "core/pathology.h"
#include "core/predictor.h"
#include "netbase/mac_address.h"
#include "netbase/prefix.h"
#include "oui/oui_registry.h"
#include "routing/bgp_table.h"

namespace scent::analysis {

/// Algorithm 1: per-device inferred allocation prefix lengths, in device
/// first-sighting order — identical to
/// AllocationSizeInference::per_device_lengths() after observe_all().
[[nodiscard]] std::vector<unsigned> allocation_lengths(
    const AggregateTable& table);

/// Algorithm 1's per-AS median (the paper's Fig 5b aggregate).
[[nodiscard]] std::optional<unsigned> allocation_median(
    const AggregateTable& table);

/// Algorithm 2: per-device inferred rotation-pool prefix lengths.
[[nodiscard]] std::vector<unsigned> pool_lengths(const AggregateTable& table);

/// Algorithm 2's median (Fig 7).
[[nodiscard]] std::optional<unsigned> pool_median(const AggregateTable& table);

/// One device's inferred allocation / pool length.
[[nodiscard]] std::optional<unsigned> allocation_length_for(
    const AggregateTable& table, net::MacAddress mac);
[[nodiscard]] std::optional<unsigned> pool_length_for(
    const AggregateTable& table, net::MacAddress mac);

/// The concrete pool prefix the tracker probes (§6): the tightest
/// pool_length-aligned prefix covering everywhere the device was seen —
/// identical to RotationPoolInference::pool_for.
[[nodiscard]] std::optional<net::Prefix> pool_for(const AggregateTable& table,
                                                  net::MacAddress mac,
                                                  unsigned pool_length);

/// Per-AS allocation medians (the campaign's day-0 granularity pass),
/// keyed ascending by ASN — identical to feeding one
/// AllocationSizeInference per AS row-by-row and taking median_length().
[[nodiscard]] container::FlatMap<routing::Asn, unsigned>
allocation_medians_by_as(const AggregateTable& table);

/// Vendor homogeneity per AS (§5.1, Fig 4) — identical to the legacy
/// analyze_homogeneity full scan.
[[nodiscard]] std::vector<core::AsHomogeneity> homogeneity(
    const AggregateTable& table, const oui::Registry& registry,
    std::size_t min_iids = 100);

/// Multi-AS pathology classification (§5.5) — identical to the legacy
/// find_multi_as_iids full scan.
[[nodiscard]] std::vector<core::MultiAsIid> multi_as_iids(
    const AggregateTable& table, const core::PathologyOptions& options = {});

/// One device's consecutive-deduplicated sighting history — identical to
/// sightings_from_snapshots over the same rows.
[[nodiscard]] std::vector<core::Sighting> sightings_of(
    const AggregateTable& table, net::MacAddress mac);

}  // namespace scent::analysis
