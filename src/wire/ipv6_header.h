// ipv6_header.h - fixed IPv6 header (RFC 8200 s3) serialization.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netbase/ipv6_address.h"
#include "wire/buffer.h"

namespace scent::wire {

inline constexpr std::uint8_t kNextHeaderIcmpv6 = 58;
inline constexpr std::size_t kIpv6HeaderSize = 40;

/// The 40-byte fixed IPv6 header.
struct Ipv6Header {
  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;  // 20 bits used
  std::uint16_t payload_length = 0;
  std::uint8_t next_header = kNextHeaderIcmpv6;
  std::uint8_t hop_limit = 64;
  net::Ipv6Address source;
  net::Ipv6Address destination;

  void serialize(BufferWriter& w) const {
    const std::uint32_t vtf = (6U << 28) |
                              (static_cast<std::uint32_t>(traffic_class) << 20) |
                              (flow_label & 0xfffffU);
    w.u32(vtf);
    w.u16(payload_length);
    w.u8(next_header);
    w.u8(hop_limit);
    w.u64(source.bits().hi());
    w.u64(source.bits().lo());
    w.u64(destination.bits().hi());
    w.u64(destination.bits().lo());
  }

  /// Parses a header; returns nullopt on truncation or wrong version.
  [[nodiscard]] static std::optional<Ipv6Header> parse(BufferReader& r) {
    Ipv6Header h;
    const std::uint32_t vtf = r.u32();
    if (!r.ok() || (vtf >> 28) != 6) return std::nullopt;
    h.traffic_class = static_cast<std::uint8_t>((vtf >> 20) & 0xff);
    h.flow_label = vtf & 0xfffffU;
    h.payload_length = r.u16();
    h.next_header = r.u8();
    h.hop_limit = r.u8();
    const std::uint64_t shi = r.u64();
    const std::uint64_t slo = r.u64();
    const std::uint64_t dhi = r.u64();
    const std::uint64_t dlo = r.u64();
    if (!r.ok()) return std::nullopt;
    h.source = net::Ipv6Address{net::Uint128{shi, slo}};
    h.destination = net::Ipv6Address{net::Uint128{dhi, dlo}};
    return h;
  }
};

}  // namespace scent::wire
