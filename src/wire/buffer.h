// buffer.h - bounds-checked network-order byte readers and writers.
//
// The prober and the simulated Internet exchange real wire-format packets so
// that the serialization path is genuinely exercised (not a struct passed by
// reference). These two small codec classes centralize the network-byte-order
// and bounds logic so the header code contains no pointer arithmetic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace scent::wire {

/// Appends big-endian (network order) fields to a growable byte vector.
class BufferWriter {
 public:
  explicit BufferWriter(std::vector<std::uint8_t>& out) : out_(&out) {}

  void u8(std::uint8_t v) { out_->push_back(v); }

  void u16(std::uint16_t v) {
    out_->push_back(static_cast<std::uint8_t>(v >> 8));
    out_->push_back(static_cast<std::uint8_t>(v));
  }

  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }

  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }

  void bytes(std::span<const std::uint8_t> data) {
    out_->insert(out_->end(), data.begin(), data.end());
  }

  [[nodiscard]] std::size_t size() const noexcept { return out_->size(); }

  /// Patches a previously written 16-bit field (e.g. a checksum computed
  /// after the rest of the message is serialized).
  void patch_u16(std::size_t offset, std::uint16_t v) {
    (*out_)[offset] = static_cast<std::uint8_t>(v >> 8);
    (*out_)[offset + 1] = static_cast<std::uint8_t>(v);
  }

 private:
  std::vector<std::uint8_t>* out_;
};

/// Reads big-endian fields from a byte span; sets a sticky error flag on
/// truncation instead of throwing, so parsers can check once at the end.
class BufferReader {
 public:
  explicit BufferReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  [[nodiscard]] std::uint8_t u8() noexcept {
    if (error_ || pos_ + 1 > data_.size()) return fail8();
    return data_[pos_++];
  }

  [[nodiscard]] std::uint16_t u16() noexcept {
    if (error_ || pos_ + 2 > data_.size()) return fail16();
    const std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }

  [[nodiscard]] std::uint32_t u32() noexcept {
    const std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }

  [[nodiscard]] std::uint64_t u64() noexcept {
    const std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }

  /// Returns a view of the next n bytes and advances, or an empty span on
  /// truncation.
  [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t n) noexcept {
    if (error_ || pos_ + n > data_.size()) {
      error_ = true;
      return {};
    }
    const auto view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }

  /// All bytes not yet consumed.
  [[nodiscard]] std::span<const std::uint8_t> remaining() const noexcept {
    return data_.subspan(pos_);
  }

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool ok() const noexcept { return !error_; }

 private:
  std::uint8_t fail8() noexcept {
    error_ = true;
    return 0;
  }
  std::uint16_t fail16() noexcept {
    error_ = true;
    return 0;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool error_ = false;
};

}  // namespace scent::wire
