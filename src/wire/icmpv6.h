// icmpv6.h - ICMPv6 (RFC 4443) message types used by the measurement system.
//
// The prober sends Echo Requests to nonexistent hosts inside customer
// subnets; the CPE answers with Destination Unreachable (various codes) or
// Hop Limit Exceeded errors whose *source address* is the CPE WAN interface.
// Which error flavor arrives depends on the CPE operating system; the paper
// notes the specific type/code does not matter — every flavor leaks the CPE
// address. This header models exactly the subset of ICMPv6 the pipeline
// exchanges, as real bytes with valid checksums.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "netbase/ipv6_address.h"
#include "wire/buffer.h"
#include "wire/checksum.h"
#include "wire/ipv6_header.h"

namespace scent::wire {

enum class Icmpv6Type : std::uint8_t {
  kDestinationUnreachable = 1,
  kPacketTooBig = 2,
  kTimeExceeded = 3,
  kParameterProblem = 4,
  kEchoRequest = 128,
  kEchoReply = 129,
};

/// RFC 4443 s3.1 Destination Unreachable codes observed in the wild by the
/// paper's campaign (§3.1).
enum class UnreachableCode : std::uint8_t {
  kNoRoute = 0,
  kAdminProhibited = 1,
  kBeyondScope = 2,
  kAddressUnreachable = 3,
  kPortUnreachable = 4,
};

enum class TimeExceededCode : std::uint8_t {
  kHopLimitExceeded = 0,
  kFragmentReassembly = 1,
};

[[nodiscard]] constexpr std::string_view to_string(Icmpv6Type t) noexcept {
  switch (t) {
    case Icmpv6Type::kDestinationUnreachable: return "destination-unreachable";
    case Icmpv6Type::kPacketTooBig: return "packet-too-big";
    case Icmpv6Type::kTimeExceeded: return "time-exceeded";
    case Icmpv6Type::kParameterProblem: return "parameter-problem";
    case Icmpv6Type::kEchoRequest: return "echo-request";
    case Icmpv6Type::kEchoReply: return "echo-reply";
  }
  return "unknown";
}

/// A parsed ICMPv6 message. Echo messages carry identifier/sequence;
/// error messages carry the leading bytes of the invoking packet, from which
/// the original probe target is recovered.
struct Icmpv6Message {
  Icmpv6Type type = Icmpv6Type::kEchoRequest;
  std::uint8_t code = 0;

  // Echo request/reply fields.
  std::uint16_t identifier = 0;
  std::uint16_t sequence = 0;

  // Error-message payload: the invoking packet (IPv6 header + as much of the
  // payload as fits under the minimum MTU).
  std::vector<std::uint8_t> invoking_packet;

  [[nodiscard]] bool is_error() const noexcept {
    return static_cast<std::uint8_t>(type) < 128;
  }
};

/// A full probe-sized IPv6+ICMPv6 packet as bytes.
using Packet = std::vector<std::uint8_t>;

/// Builds an ICMPv6 Echo Request packet (IPv6 header + ICMPv6) with a valid
/// checksum. `identifier`/`sequence` let the prober match replies to probes.
[[nodiscard]] Packet build_echo_request(net::Ipv6Address source,
                                        net::Ipv6Address destination,
                                        std::uint16_t identifier,
                                        std::uint16_t sequence,
                                        std::uint8_t hop_limit = 64);

/// Serializes an Echo Request into `out` (cleared first, capacity kept).
/// The allocation-free path for wire-mode sweeps: the prober reuses one
/// scratch Packet for millions of probes instead of allocating two vectors
/// per probe.
void build_echo_request_into(Packet& out, net::Ipv6Address source,
                             net::Ipv6Address destination,
                             std::uint16_t identifier, std::uint16_t sequence,
                             std::uint8_t hop_limit = 64);

/// Builds an Echo Reply mirroring a request.
[[nodiscard]] Packet build_echo_reply(net::Ipv6Address source,
                                      net::Ipv6Address destination,
                                      std::uint16_t identifier,
                                      std::uint16_t sequence);

/// Builds an ICMPv6 error (Destination Unreachable or Time Exceeded) quoting
/// the invoking packet, truncated so the whole error fits in the IPv6
/// minimum MTU of 1280 bytes (RFC 4443 s2.4(c)).
[[nodiscard]] Packet build_error(net::Ipv6Address source,
                                 net::Ipv6Address destination,
                                 Icmpv6Type error_type, std::uint8_t code,
                                 std::span<const std::uint8_t> invoking_packet);

/// A fully parsed packet: outer IPv6 header plus ICMPv6 message.
struct ParsedPacket {
  Ipv6Header ip;
  Icmpv6Message icmp;
};

/// Parses and checksum-verifies a packet. Returns nullopt for anything
/// malformed: wrong version, non-ICMPv6 next header, truncation, or a bad
/// checksum. Never throws — garbage input is expected on a measurement path.
[[nodiscard]] std::optional<ParsedPacket> parse_packet(
    std::span<const std::uint8_t> bytes);

/// Extracts the original probe destination from an error message's quoted
/// invoking packet, plus the echo identifier/sequence when the quote is deep
/// enough. This is how the pipeline recovers the <target, response> pair:
/// the *response* source is the CPE, the quoted *target* is the probed
/// address.
struct InvokingProbe {
  net::Ipv6Address target;
  std::uint16_t identifier = 0;
  std::uint16_t sequence = 0;
};

[[nodiscard]] std::optional<InvokingProbe> extract_invoking_probe(
    const Icmpv6Message& error);

}  // namespace scent::wire
