// checksum.h - Internet checksum (RFC 1071) with the IPv6 pseudo-header
// required by ICMPv6 (RFC 4443 s2.3 / RFC 8200 s8.1).
#pragma once

#include <cstdint>
#include <span>

#include "netbase/ipv6_address.h"

namespace scent::wire {

/// Incremental one's-complement sum accumulator. Feed 16-bit words (or byte
/// ranges) and finalize to the complemented checksum.
class ChecksumAccumulator {
 public:
  void add_u16(std::uint16_t v) noexcept { sum_ += v; }

  void add_u32(std::uint32_t v) noexcept {
    add_u16(static_cast<std::uint16_t>(v >> 16));
    add_u16(static_cast<std::uint16_t>(v));
  }

  void add_u64(std::uint64_t v) noexcept {
    add_u32(static_cast<std::uint32_t>(v >> 32));
    add_u32(static_cast<std::uint32_t>(v));
  }

  /// Adds bytes as big-endian 16-bit words; a trailing odd byte is padded
  /// with zero per RFC 1071.
  void add_bytes(std::span<const std::uint8_t> data) noexcept {
    std::size_t i = 0;
    for (; i + 1 < data.size(); i += 2) {
      add_u16(static_cast<std::uint16_t>(
          (static_cast<std::uint16_t>(data[i]) << 8) | data[i + 1]));
    }
    if (i < data.size()) {
      add_u16(static_cast<std::uint16_t>(static_cast<std::uint16_t>(data[i])
                                         << 8));
    }
  }

  /// Folds carries and returns the one's-complement checksum. Per RFC 1071
  /// an all-zero result is transmitted as 0xffff (zero means "no checksum"
  /// in some protocols); ICMPv6 never transmits zero.
  [[nodiscard]] std::uint16_t finalize() const noexcept {
    std::uint64_t s = sum_;
    while ((s >> 16) != 0) s = (s & 0xffff) + (s >> 16);
    const auto folded = static_cast<std::uint16_t>(~s);
    return folded == 0 ? 0xffff : folded;
  }

 private:
  std::uint64_t sum_ = 0;
};

/// ICMPv6 checksum over the IPv6 pseudo-header (src, dst, payload length,
/// next-header = 58) plus the ICMPv6 message with its checksum field zeroed.
[[nodiscard]] inline std::uint16_t icmpv6_checksum(
    net::Ipv6Address src, net::Ipv6Address dst,
    std::span<const std::uint8_t> icmp_message) noexcept {
  ChecksumAccumulator acc;
  acc.add_u64(src.bits().hi());
  acc.add_u64(src.bits().lo());
  acc.add_u64(dst.bits().hi());
  acc.add_u64(dst.bits().lo());
  acc.add_u32(static_cast<std::uint32_t>(icmp_message.size()));
  acc.add_u32(58);  // next header: ICMPv6
  acc.add_bytes(icmp_message);
  return acc.finalize();
}

/// Verifies a received ICMPv6 message: summing the message *including* its
/// transmitted checksum must fold to 0xffff (i.e. finalize() == 0 before
/// complement; equivalently the complemented sum is 0x0000, reported here
/// as the RFC's "check equals zero" test).
[[nodiscard]] inline bool icmpv6_checksum_ok(
    net::Ipv6Address src, net::Ipv6Address dst,
    std::span<const std::uint8_t> icmp_message) noexcept {
  ChecksumAccumulator acc;
  acc.add_u64(src.bits().hi());
  acc.add_u64(src.bits().lo());
  acc.add_u64(dst.bits().hi());
  acc.add_u64(dst.bits().lo());
  acc.add_u32(static_cast<std::uint32_t>(icmp_message.size()));
  acc.add_u32(58);
  acc.add_bytes(icmp_message);
  // finalize() returns ~sum (with 0 mapped to 0xffff); a valid message's
  // folded sum is 0xffff, so ~sum == 0 which finalize() maps to 0xffff.
  return acc.finalize() == 0xffff;
}

}  // namespace scent::wire
