#include "wire/icmpv6.h"

#include <algorithm>

namespace scent::wire {
namespace {

constexpr std::size_t kMinMtu = 1280;
constexpr std::size_t kIcmpErrorHeaderSize = 8;  // type, code, cksum, unused

/// Serializes IPv6 header + ICMPv6 body, computing and patching the ICMPv6
/// checksum over the pseudo-header.
Packet assemble(const Ipv6Header& ip_template,
                const std::vector<std::uint8_t>& icmp_body) {
  Ipv6Header ip = ip_template;
  ip.payload_length = static_cast<std::uint16_t>(icmp_body.size());

  Packet packet;
  packet.reserve(kIpv6HeaderSize + icmp_body.size());
  BufferWriter w{packet};
  ip.serialize(w);
  const std::size_t icmp_offset = packet.size();
  w.bytes(icmp_body);

  const std::uint16_t cksum = icmpv6_checksum(
      ip.source, ip.destination,
      std::span<const std::uint8_t>{packet}.subspan(icmp_offset));
  // Checksum field is bytes 2-3 of the ICMPv6 message.
  w.patch_u16(icmp_offset + 2, cksum);
  return packet;
}

std::vector<std::uint8_t> echo_body(Icmpv6Type type, std::uint16_t identifier,
                                    std::uint16_t sequence) {
  std::vector<std::uint8_t> body;
  BufferWriter w{body};
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(0);   // code
  w.u16(0);  // checksum placeholder
  w.u16(identifier);
  w.u16(sequence);
  return body;
}

}  // namespace

Packet build_echo_request(net::Ipv6Address source, net::Ipv6Address destination,
                          std::uint16_t identifier, std::uint16_t sequence,
                          std::uint8_t hop_limit) {
  Packet packet;
  build_echo_request_into(packet, source, destination, identifier, sequence,
                          hop_limit);
  return packet;
}

void build_echo_request_into(Packet& out, net::Ipv6Address source,
                             net::Ipv6Address destination,
                             std::uint16_t identifier, std::uint16_t sequence,
                             std::uint8_t hop_limit) {
  constexpr std::uint16_t kEchoBodySize = 8;  // type, code, cksum, id, seq
  out.clear();

  Ipv6Header ip;
  ip.source = source;
  ip.destination = destination;
  ip.hop_limit = hop_limit;
  ip.payload_length = kEchoBodySize;

  BufferWriter w{out};
  ip.serialize(w);
  const std::size_t icmp_offset = out.size();
  w.u8(static_cast<std::uint8_t>(Icmpv6Type::kEchoRequest));
  w.u8(0);   // code
  w.u16(0);  // checksum placeholder
  w.u16(identifier);
  w.u16(sequence);

  const std::uint16_t cksum = icmpv6_checksum(
      source, destination,
      std::span<const std::uint8_t>{out}.subspan(icmp_offset));
  w.patch_u16(icmp_offset + 2, cksum);
}

Packet build_echo_reply(net::Ipv6Address source, net::Ipv6Address destination,
                        std::uint16_t identifier, std::uint16_t sequence) {
  Ipv6Header ip;
  ip.source = source;
  ip.destination = destination;
  return assemble(ip, echo_body(Icmpv6Type::kEchoReply, identifier, sequence));
}

Packet build_error(net::Ipv6Address source, net::Ipv6Address destination,
                   Icmpv6Type error_type, std::uint8_t code,
                   std::span<const std::uint8_t> invoking_packet) {
  // RFC 4443 s2.4(c): include as much of the invoking packet as fits
  // without exceeding the minimum IPv6 MTU.
  const std::size_t budget =
      kMinMtu - kIpv6HeaderSize - kIcmpErrorHeaderSize;
  const std::size_t quoted = std::min(invoking_packet.size(), budget);

  std::vector<std::uint8_t> body;
  BufferWriter w{body};
  w.u8(static_cast<std::uint8_t>(error_type));
  w.u8(code);
  w.u16(0);  // checksum placeholder
  w.u32(0);  // unused / reserved
  w.bytes(invoking_packet.subspan(0, quoted));

  Ipv6Header ip;
  ip.source = source;
  ip.destination = destination;
  ip.hop_limit = 64;
  return assemble(ip, body);
}

std::optional<ParsedPacket> parse_packet(std::span<const std::uint8_t> bytes) {
  BufferReader r{bytes};
  auto ip = Ipv6Header::parse(r);
  if (!ip || ip->next_header != kNextHeaderIcmpv6) return std::nullopt;

  const auto icmp_bytes = r.remaining();
  if (icmp_bytes.size() < 8 || icmp_bytes.size() != ip->payload_length) {
    return std::nullopt;
  }
  if (!icmpv6_checksum_ok(ip->source, ip->destination, icmp_bytes)) {
    return std::nullopt;
  }

  Icmpv6Message msg;
  BufferReader ir{icmp_bytes};
  const std::uint8_t raw_type = ir.u8();
  switch (raw_type) {
    case 1:
    case 2:
    case 3:
    case 4:
    case 128:
    case 129:
      msg.type = static_cast<Icmpv6Type>(raw_type);
      break;
    default:
      return std::nullopt;  // types we never emit
  }
  msg.code = ir.u8();
  (void)ir.u16();  // checksum, already verified

  if (msg.is_error()) {
    (void)ir.u32();  // unused / MTU / pointer field
    const auto quote = ir.remaining();
    msg.invoking_packet.assign(quote.begin(), quote.end());
  } else {
    msg.identifier = ir.u16();
    msg.sequence = ir.u16();
  }
  if (!ir.ok()) return std::nullopt;
  return ParsedPacket{*ip, std::move(msg)};
}

std::optional<InvokingProbe> extract_invoking_probe(
    const Icmpv6Message& error) {
  if (!error.is_error()) return std::nullopt;
  BufferReader r{error.invoking_packet};
  const auto inner_ip = Ipv6Header::parse(r);
  if (!inner_ip) return std::nullopt;

  InvokingProbe probe;
  probe.target = inner_ip->destination;
  // The quoted packet may be truncated before the echo fields; identifier
  // and sequence are best-effort.
  if (inner_ip->next_header == kNextHeaderIcmpv6 &&
      r.remaining().size() >= 8) {
    BufferReader er{r.remaining()};
    (void)er.u8();   // type
    (void)er.u8();   // code
    (void)er.u16();  // checksum
    probe.identifier = er.u16();
    probe.sequence = er.u16();
  }
  return probe;
}

}  // namespace scent::wire
