// prefix_trie.h - binary (Patricia-style, one bit per level) trie keyed by
// IPv6 prefixes, supporting exact insert/lookup and longest-prefix match.
//
// Used as the forwarding/attribution substrate everywhere an address must be
// mapped to its covering prefix: the simulated Internet's route table, and
// the Routeviews-substitute BGP table that turns response addresses into
// <BGP prefix, origin ASN> pairs for Figure 7 and Table 2.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "netbase/prefix.h"

namespace scent::routing {

/// A compact binary trie mapping Prefix -> T. One node per bit keeps the
/// implementation obviously correct; IPv6 routing prefixes are <= 64 bits in
/// this system so depth is bounded and lookups are cheap.
template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  /// Inserts or replaces the value at `prefix`. Returns true if a new entry
  /// was created, false if an existing one was replaced.
  bool insert(const net::Prefix& prefix, T value) {
    Node* node = root_.get();
    for (unsigned depth = 0; depth < prefix.length(); ++depth) {
      const bool bit = prefix.base().bits().bit(127 - depth);
      auto& child = bit ? node->one : node->zero;
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    const bool created = !node->value.has_value();
    node->value = std::move(value);
    if (created) ++size_;
    return created;
  }

  /// Exact-match lookup.
  [[nodiscard]] const T* find(const net::Prefix& prefix) const {
    const Node* node = root_.get();
    for (unsigned depth = 0; depth < prefix.length(); ++depth) {
      const bool bit = prefix.base().bits().bit(127 - depth);
      const auto& child = bit ? node->one : node->zero;
      if (!child) return nullptr;
      node = child.get();
    }
    return node->value ? &*node->value : nullptr;
  }

  /// Longest-prefix match for an address: the value on the deepest node
  /// along the address's bit path that holds one, together with the matched
  /// prefix.
  struct Match {
    net::Prefix prefix;
    const T* value = nullptr;
  };

  [[nodiscard]] std::optional<Match> longest_match(
      net::Ipv6Address addr) const {
    const Node* node = root_.get();
    std::optional<Match> best;
    unsigned depth = 0;
    for (;;) {
      if (node->value) {
        best = Match{net::Prefix{addr, depth}, &*node->value};
      }
      if (depth == 128) break;
      const bool bit = addr.bits().bit(127 - depth);
      const auto& child = bit ? node->one : node->zero;
      if (!child) break;
      node = child.get();
      ++depth;
    }
    return best;
  }

  /// Removes the entry at `prefix` (its subtree is retained: children may
  /// hold more-specific routes). Returns true if an entry was removed.
  bool erase(const net::Prefix& prefix) {
    Node* node = root_.get();
    for (unsigned depth = 0; depth < prefix.length(); ++depth) {
      const bool bit = prefix.base().bits().bit(127 - depth);
      auto& child = bit ? node->one : node->zero;
      if (!child) return false;
      node = child.get();
    }
    if (!node->value) return false;
    node->value.reset();
    --size_;
    return true;
  }

  /// Visits every <prefix, value> entry in lexicographic prefix order.
  template <typename Visitor>
  void for_each(Visitor&& visit) const {
    visit_node(root_.get(), net::Uint128{}, 0, visit);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> zero;
    std::unique_ptr<Node> one;
  };

  template <typename Visitor>
  static void visit_node(const Node* node, net::Uint128 bits, unsigned depth,
                         Visitor& visit) {
    if (node->value) {
      visit(net::Prefix{net::Ipv6Address{bits}, depth}, *node->value);
    }
    if (depth == 128) return;
    if (node->zero) visit_node(node->zero.get(), bits, depth + 1, visit);
    if (node->one) {
      visit_node(node->one.get(),
                 bits | (net::Uint128{1} << (127 - depth)), depth + 1, visit);
    }
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace scent::routing
