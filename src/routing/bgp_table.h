// bgp_table.h - BGP routing-table substitute for Routeviews data.
//
// The paper maps every response address to its covering BGP-advertised
// prefix and origin AS using University of Oregon Routeviews dumps (§5.3).
// We reproduce that attribution step with a longest-prefix-match table
// populated from the simulated world's advertisements; the query interface
// (address -> {prefix, ASN, country}) is identical to what a Routeviews
// RIB-derived table provides.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netbase/prefix.h"
#include "routing/prefix_trie.h"

namespace scent::routing {

using Asn = std::uint32_t;

/// One BGP advertisement: an origin AS announcing a prefix. `country` is the
/// registry country code of the AS (as delegations files / geolocation would
/// supply in the real pipeline).
struct Advertisement {
  net::Prefix prefix;
  Asn origin_asn = 0;
  std::string country;  // ISO 3166-1 alpha-2
  std::string as_name;
};

/// Result of attributing an address.
struct Attribution {
  net::Prefix bgp_prefix;
  Asn origin_asn = 0;
  std::string country;
  std::string as_name;
};

/// Longest-prefix-match table of BGP advertisements.
class BgpTable {
 public:
  /// Adds an advertisement. More-specific announcements shadow less-specific
  /// ones for the addresses they cover, exactly as in BGP best-path lookup.
  void announce(Advertisement ad) {
    const net::Prefix p = ad.prefix;
    trie_.insert(p, std::move(ad));
  }

  /// Attributes an address to its most specific covering advertisement.
  [[nodiscard]] std::optional<Attribution> lookup(
      net::Ipv6Address addr) const {
    const auto match = trie_.longest_match(addr);
    if (!match) return std::nullopt;
    const Advertisement& ad = *match->value;
    return Attribution{ad.prefix, ad.origin_asn, ad.country, ad.as_name};
  }

  /// All advertisements, in prefix order.
  [[nodiscard]] std::vector<Advertisement> dump() const {
    std::vector<Advertisement> out;
    out.reserve(trie_.size());
    trie_.for_each([&out](const net::Prefix&, const Advertisement& ad) {
      out.push_back(ad);
    });
    return out;
  }

  [[nodiscard]] std::size_t size() const noexcept { return trie_.size(); }

 private:
  PrefixTrie<Advertisement> trie_;
};

}  // namespace scent::routing
