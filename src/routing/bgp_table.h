// bgp_table.h - BGP routing-table substitute for Routeviews data.
//
// The paper maps every response address to its covering BGP-advertised
// prefix and origin AS using University of Oregon Routeviews dumps (§5.3).
// We reproduce that attribution step with a longest-prefix-match table
// populated from the simulated world's advertisements; the query interface
// (address -> {prefix, ASN, country}) is identical to what a Routeviews
// RIB-derived table provides.
//
// Advertisements live in one dense vector; the trie maps prefixes to
// indices into it. Attribution-heavy scans (homogeneity, pathology, the
// campaign's per-AS inference) use attribute() with a caller-owned
// AttributionCache: addresses in the same /64 share one cached trie walk,
// and the result is a pointer into the vector — no string copies per
// lookup.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "container/flat_hash.h"
#include "netbase/prefix.h"
#include "routing/prefix_trie.h"

namespace scent::routing {

using Asn = std::uint32_t;

/// One BGP advertisement: an origin AS announcing a prefix. `country` is the
/// registry country code of the AS (as delegations files / geolocation would
/// supply in the real pipeline).
struct Advertisement {
  net::Prefix prefix;
  Asn origin_asn = 0;
  std::string country;  // ISO 3166-1 alpha-2
  std::string as_name;
};

/// Result of attributing an address.
struct Attribution {
  net::Prefix bgp_prefix;
  Asn origin_asn = 0;
  std::string country;
  std::string as_name;
};

/// Caller-owned memo for BgpTable::attribute(), keyed on the address's /64
/// network (BGP announcements are never more specific than /64 here, so
/// every address in a /64 shares one attribution). Same ownership model as
/// sim::ResponseContext: one per thread/scan, no shared mutable state in
/// the table itself. Entries go stale if the table is announced into after
/// caching — clear() when the table changes.
class AttributionCache {
 public:
  void clear() noexcept { by_network_.clear(); }
  [[nodiscard]] std::size_t size() const noexcept { return by_network_.size(); }

 private:
  friend class BgpTable;
  static constexpr std::int32_t kNoMatch = -1;
  container::FlatMap<std::uint64_t, std::int32_t> by_network_;
};

/// Longest-prefix-match table of BGP advertisements.
class BgpTable {
 public:
  /// Adds an advertisement. More-specific announcements shadow less-specific
  /// ones for the addresses they cover, exactly as in BGP best-path lookup.
  void announce(Advertisement ad) {
    const net::Prefix p = ad.prefix;
    if (const std::uint32_t* existing = trie_.find(p)) {
      ads_[*existing] = std::move(ad);
      return;
    }
    const auto index = static_cast<std::uint32_t>(ads_.size());
    ads_.push_back(std::move(ad));
    trie_.insert(p, index);
    if (p.length() > max_announced_length_) max_announced_length_ = p.length();
  }

  /// Attributes an address to its most specific covering advertisement,
  /// memoizing per /64 in the caller's cache. Returns a pointer into this
  /// table (stable across lookups, invalidated by announce()), or nullptr
  /// for unattributed space.
  [[nodiscard]] const Advertisement* attribute(net::Ipv6Address addr,
                                               AttributionCache& cache) const {
    if (max_announced_length_ > 64) {
      // A /64 cache key cannot represent more-specific routes; fall back to
      // the uncached walk. Not hit by the simulated worlds (whose
      // announcements are /32-ish) but keeps the API correct for any input.
      const auto match = trie_.longest_match(addr);
      return match ? &ads_[*match->value] : nullptr;
    }
    const auto [entry, fresh] =
        cache.by_network_.try_emplace(addr.network(), AttributionCache::kNoMatch);
    if (fresh) {
      if (const auto match = trie_.longest_match(addr)) {
        entry->second = static_cast<std::int32_t>(*match->value);
      }
    }
    return entry->second == AttributionCache::kNoMatch
               ? nullptr
               : &ads_[static_cast<std::size_t>(entry->second)];
  }

  /// Read-only attribution against a prebuilt cache: never mutates `cache`,
  /// so one memo built up front (serially, over every distinct /64 in the
  /// input) can be shared by all analysis shards with no synchronization.
  /// A /64 missing from the cache — or a table with routes more specific
  /// than /64 — falls back to the uncached trie walk: correct, just not
  /// memoized. Overload resolution keeps existing call sites on the
  /// mutating form; shards reach this one by passing a const reference.
  [[nodiscard]] const Advertisement* attribute(
      net::Ipv6Address addr, const AttributionCache& cache) const {
    if (max_announced_length_ <= 64) {
      const auto it = cache.by_network_.find(addr.network());
      if (it != cache.by_network_.end()) {
        return it->second == AttributionCache::kNoMatch
                   ? nullptr
                   : &ads_[static_cast<std::size_t>(it->second)];
      }
    }
    const auto match = trie_.longest_match(addr);
    return match ? &ads_[*match->value] : nullptr;
  }

  /// True when `ad` — a pointer previously returned by this table — is
  /// guaranteed to be `addr`'s longest match: its prefix covers the
  /// address, and no announcement anywhere in the table is more specific
  /// than it, so nothing can shadow it. Lets a scan that remembers the ad
  /// it last resolved (e.g. per device) revalidate the memo with two
  /// compares against L1-resident state instead of a cache probe; when it
  /// returns false the caller falls back to attribute(), so the answer is
  /// always exactly the trie's.
  [[nodiscard]] bool covers_unshadowed(const Advertisement* ad,
                                       net::Ipv6Address addr) const noexcept {
    return ad->prefix.length() >= max_announced_length_ &&
           ad->prefix.contains(addr);
  }

  /// Attributes an address, copying the result. Convenience form for cold
  /// paths and tests; hot scans use attribute().
  [[nodiscard]] std::optional<Attribution> lookup(
      net::Ipv6Address addr) const {
    const auto match = trie_.longest_match(addr);
    if (!match) return std::nullopt;
    const Advertisement& ad = ads_[*match->value];
    return Attribution{ad.prefix, ad.origin_asn, ad.country, ad.as_name};
  }

  /// All advertisements, in prefix order.
  [[nodiscard]] std::vector<Advertisement> dump() const {
    std::vector<Advertisement> out;
    out.reserve(ads_.size());
    trie_.for_each([&out, this](const net::Prefix&, const std::uint32_t& i) {
      out.push_back(ads_[i]);
    });
    return out;
  }

  [[nodiscard]] std::size_t size() const noexcept { return ads_.size(); }

 private:
  std::vector<Advertisement> ads_;
  PrefixTrie<std::uint32_t> trie_;  // prefix -> index into ads_
  unsigned max_announced_length_ = 0;
};

}  // namespace scent::routing
