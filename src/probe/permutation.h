// permutation.h - zmap-style random-order target iteration.
//
// High-speed scanning must randomize probe order so that no single network
// receives a burst (the paper probes 1.1B targets "in a random order" with
// zmap, §4.3, and relies on the same seed to replay the identical order a
// day later, §5). zmap achieves this by iterating the multiplicative group
// of integers modulo a prime p > N: x -> x*g (mod p) visits every value in
// [1, p-1] exactly once when g is a primitive root. This class reimplements
// that construction for arbitrary N, choosing a safe prime (p = 2q+1) so
// primitive-root testing needs only two modular exponentiations.
#pragma once

#include <cstdint>

namespace scent::probe {

/// Deterministic pseudorandom permutation of [0, n) with O(1) state,
/// amortized O(1) next(), and exact once-per-cycle coverage. The same
/// (n, seed) pair always yields the same order — the property the paper's
/// repeated daily scans depend on.
class CyclicPermutation {
 public:
  /// n >= 1. `seed` selects the generator and starting point.
  CyclicPermutation(std::uint64_t n, std::uint64_t seed);

  /// Number of elements in the permutation.
  [[nodiscard]] std::uint64_t size() const noexcept { return n_; }

  /// The safe prime chosen for the group (exposed for tests).
  [[nodiscard]] std::uint64_t prime() const noexcept { return prime_; }

  /// Writes the next element to `out`; returns false once all n elements
  /// have been produced for the current cycle.
  bool next(std::uint64_t& out) noexcept;

  /// Restarts the cycle from the beginning (same order).
  void reset() noexcept {
    current_ = first_;
    produced_ = 0;
  }

 private:
  std::uint64_t n_;
  std::uint64_t prime_ = 0;      // safe prime > n (0 in tiny-n fallback)
  std::uint64_t generator_ = 0;  // primitive root mod prime_
  std::uint64_t first_ = 0;
  std::uint64_t current_ = 0;
  std::uint64_t produced_ = 0;
  std::uint64_t offset_ = 0;  // tiny-n fallback: sequential with offset
};

/// Deterministic Miller-Rabin primality test, exact for all 64-bit inputs.
[[nodiscard]] bool is_prime_u64(std::uint64_t n) noexcept;

/// (a * b) mod m without overflow for any 64-bit operands.
[[nodiscard]] std::uint64_t mul_mod_u64(std::uint64_t a, std::uint64_t b,
                                        std::uint64_t m) noexcept;

/// (base ^ exp) mod m.
[[nodiscard]] std::uint64_t pow_mod_u64(std::uint64_t base, std::uint64_t exp,
                                        std::uint64_t m) noexcept;

}  // namespace scent::probe
