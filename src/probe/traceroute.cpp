#include "probe/traceroute.h"

namespace scent::probe {

TracerouteResult traceroute(Prober& prober, net::Ipv6Address target,
                            unsigned max_hops) {
  TracerouteResult result;
  result.target = target;

  for (unsigned hl = 1; hl <= max_hops; ++hl) {
    const ProbeResult r =
        prober.probe_one(target, static_cast<std::uint8_t>(hl));
    if (!r.responded) continue;
    result.hops.push_back(Hop{hl, r.response_source, r.type});
    if (r.type != wire::Icmpv6Type::kTimeExceeded) break;  // terminal hop
  }
  return result;
}

}  // namespace scent::probe
