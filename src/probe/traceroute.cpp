#include "probe/traceroute.h"

#include "telemetry/metrics.h"

namespace scent::probe {

TracerouteResult traceroute(Prober& prober, net::Ipv6Address target,
                            unsigned max_hops) {
  TracerouteResult result;
  result.target = target;

  for (unsigned hl = 1; hl <= max_hops; ++hl) {
    const ProbeResult r =
        prober.probe_one(target, static_cast<std::uint8_t>(hl));
    if (!r.responded) continue;
    result.hops.push_back(Hop{hl, r.response_source, r.type});
    if (r.type != wire::Icmpv6Type::kTimeExceeded) break;  // terminal hop
  }

  if (telemetry::Registry* reg = prober.telemetry()) {
    reg->counter("traceroute.runs").inc();
    reg->counter("traceroute.responsive_hops").add(result.hops.size());
    if (result.last_hop() &&
        result.last_hop()->type != wire::Icmpv6Type::kTimeExceeded) {
      reg->counter("traceroute.reached_periphery").inc();
    }
    reg->histogram("traceroute.path_length", {2, 4, 8, 16, 32})
        .observe(result.hops.size());
  }
  return result;
}

}  // namespace scent::probe
