// traceroute.h - yarrp-like hop-limited probing for seed discovery.
//
// The paper bootstraps from CAIDA's IPv6 routed /48 traceroute campaign: a
// traceroute toward one target per /48 whose *last responsive hop* is the
// CPE (the IPv6 periphery, [27]). This engine reproduces that primitive
// against the simulated Internet: it walks the hop limit upward, collecting
// Time Exceeded sources from core routers until the CPE answers. The result
// feeds §4.1's seed set of /48s with EUI-64 last hops.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netbase/ipv6_address.h"
#include "probe/prober.h"

namespace scent::probe {

struct Hop {
  unsigned distance = 0;  // hop limit that elicited this response
  net::Ipv6Address address;
  wire::Icmpv6Type type = wire::Icmpv6Type::kTimeExceeded;
};

struct TracerouteResult {
  net::Ipv6Address target;
  std::vector<Hop> hops;

  /// The deepest responsive hop, if any — the periphery (CPE) when the
  /// path reaches a delegated customer prefix.
  [[nodiscard]] std::optional<Hop> last_hop() const {
    if (hops.empty()) return std::nullopt;
    return hops.back();
  }
};

/// Runs hop-limited probes toward `target` with hop limits 1..max_hops.
/// Stops early once a terminal (non-Time-Exceeded) response arrives, like
/// yarrp's fill mode. Uses the prober's pacing and delivery mode.
[[nodiscard]] TracerouteResult traceroute(Prober& prober,
                                          net::Ipv6Address target,
                                          unsigned max_hops = 16);

}  // namespace scent::probe
