// prober.h - the zmap6-like high-speed ICMPv6 Echo Request engine.
//
// Sends paced Echo Request probes into the (simulated) Internet and collects
// the <target, response-source, ICMPv6 type/code, time> tuples every
// downstream inference consumes. Two delivery paths exist:
//   * wire mode: every probe is serialized to real IPv6+ICMPv6 bytes with a
//     valid checksum, delivered, and the response parsed and
//     checksum-verified — the path a real scanner exercises;
//   * fast mode: the logical probe API, bit-identical results, used for
//     campaign-scale sweeps where packet serialization would dominate
//     runtime. Tests assert the two paths agree.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "netbase/ipv6_address.h"
#include "probe/target_generator.h"
#include "sim/internet.h"
#include "sim/sim_time.h"
#include "telemetry/metrics.h"
#include "wire/icmpv6.h"

namespace scent::probe {

/// One probe's outcome. `responded == false` means the probe timed out
/// silently (unallocated space, silent CPE, loss, or rate limiting).
struct ProbeResult {
  net::Ipv6Address target;
  net::Ipv6Address response_source;
  wire::Icmpv6Type type = wire::Icmpv6Type::kEchoReply;
  std::uint8_t code = 0;
  sim::TimePoint sent_at = 0;
  bool responded = false;
};

struct ProberOptions {
  /// Probe rate; the paper scans at 10k packets per second (§3.1).
  std::uint64_t packets_per_second = 10000;

  /// Serialize/parse real packets (true) or use the logical path (false).
  bool wire_mode = true;

  /// Source address of the scanning vantage point.
  net::Ipv6Address vantage = net::Ipv6Address{0x2001067c2e8c0000ULL, 0x1};

  /// ICMP identifier marking this prober's probes.
  std::uint16_t identifier = 0x5C37;  // "SCnT"

  /// Hop limit on outgoing probes (zmap default-style; traceroute uses the
  /// dedicated engine instead).
  std::uint8_t hop_limit = 64;
};

class Prober {
 public:
  Prober(sim::Internet& internet, sim::VirtualClock& clock,
         ProberOptions options = {})
      : internet_(&internet), clock_(&clock), options_(options) {}

  [[nodiscard]] const ProberOptions& options() const noexcept {
    return options_;
  }

  /// Sends a single probe at the current virtual time and advances the
  /// clock by the inter-probe gap.
  ProbeResult probe_one(net::Ipv6Address target) {
    return probe_one(target, options_.hop_limit);
  }

  /// Same, with an explicit hop limit (used by the traceroute engine).
  ProbeResult probe_one(net::Ipv6Address target, std::uint8_t hop_limit);

  /// Receives batches of responsive results as a sweep streams them. The
  /// span aliases the prober's internal batch buffer and is valid only for
  /// the duration of the call — copy out anything kept.
  using ResultSink = std::function<void(std::span<const ProbeResult>)>;

  /// Streaming sweep: probes every target in the span (already in the
  /// desired order), emitting responsive results into `sink` in batches
  /// instead of materializing a full result vector. `sent`/`received`
  /// counters accumulate across calls.
  void sweep(std::span<const net::Ipv6Address> targets,
             const ResultSink& sink);

  /// Streaming sweep over one target per /`sub_length` of `parent` in
  /// zmap-permuted order.
  void sweep_subnets(net::Prefix parent, unsigned sub_length,
                     std::uint64_t seed, const ResultSink& sink);

  /// Vector adapters over the streaming sweeps, for call sites that want
  /// the (responsive-only) results materialized.
  std::vector<ProbeResult> sweep(std::span<const net::Ipv6Address> targets);
  std::vector<ProbeResult> sweep_subnets(net::Prefix parent,
                                         unsigned sub_length,
                                         std::uint64_t seed);

  struct Counters {
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
  };
  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }
  void reset_counters() noexcept { counters_ = {}; }

  /// Folds another prober's counters into this one — how the engine
  /// credits shard probers' traffic to the campaign prober, keeping the
  /// "prober counters are the probe ledger" contract across serial and
  /// sharded runs. Deliberately does not touch telemetry counters: shard
  /// registries are merged separately (telemetry::Registry::
  /// merge_counters_from), so events are never double-counted.
  void accumulate_counters(const Counters& delta) noexcept {
    counters_.sent += delta.sent;
    counters_.received += delta.received;
  }

  /// Routes this prober's traffic through caller-owned network state (see
  /// sim::NetContext) on the Internet's const, thread-safe path. nullptr
  /// (the default) uses the Internet's built-in mutable state.
  void set_net_context(sim::NetContext* ctx) noexcept { net_ctx_ = ctx; }

  /// Starts the wire-mode echo sequence stream at `start` (the engine
  /// derives a distinct stream per shard from mix64(seed, shard_index)).
  /// Affects only the bytes on the wire, never the result fields.
  void seed_sequence(std::uint16_t start) noexcept { sequence_ = start; }

  /// Mirrors every probe into the registry's `probe.sent` / `probe.received`
  /// / `probe.wire_drops` counters. Counter pointers are cached here so the
  /// hot path pays one branch plus one add per event; the registry's
  /// counters accumulate for its lifetime (reset_counters() does not touch
  /// them — registry deltas are the caller's concern).
  void attach_telemetry(telemetry::Registry& registry) {
    telemetry_ = &registry;
    tm_sent_ = &registry.counter("probe.sent");
    tm_received_ = &registry.counter("probe.received");
    tm_wire_drops_ = &registry.counter("probe.wire_drops");
  }

  /// The attached registry, if any (shared with the traceroute engine).
  [[nodiscard]] telemetry::Registry* telemetry() const noexcept {
    return telemetry_;
  }

 private:
  /// Probes `target`, appends any responsive result to `batch_`, and
  /// flushes the batch into `sink` once it reaches kBatchSize.
  void probe_into_batch(net::Ipv6Address target, const ResultSink& sink);

  /// Responsive results per sink invocation. Large enough to amortize the
  /// std::function call, small enough to stay cache-resident.
  static constexpr std::size_t kBatchSize = 256;

  sim::Internet* internet_;
  sim::VirtualClock* clock_;
  ProberOptions options_;
  Counters counters_;
  std::uint16_t sequence_ = 0;
  sim::NetContext* net_ctx_ = nullptr;
  std::vector<ProbeResult> batch_;     // streaming-sweep scratch
  wire::Packet request_scratch_;       // wire-mode per-probe scratch
  telemetry::Registry* telemetry_ = nullptr;
  telemetry::Counter* tm_sent_ = nullptr;
  telemetry::Counter* tm_received_ = nullptr;
  telemetry::Counter* tm_wire_drops_ = nullptr;
};

}  // namespace scent::probe
