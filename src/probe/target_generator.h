// target_generator.h - probe target selection.
//
// The paper's methodology is defined by how targets are chosen:
//   * one random-IID address inside each /64 of a prefix (allocation-size
//     inference, §3.2.1, and rotation detection, §4.3),
//   * one random address inside each /56 (density inference, §4.2),
//   * one random /64 per /48 of a /32 (seed expansion, §4.1),
//   * one probe per inferred-allocation-size block across a rotation pool
//     (the tracking attack, §6).
// All of these are "one pseudorandom address per subnet of size L within
// prefix P", which this generator provides, both materialized and lazily.
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/ipv6_address.h"
#include "netbase/prefix.h"
#include "probe/permutation.h"
#include "sim/rng.h"

namespace scent::probe {

/// A deterministic pseudorandom address inside `subnet`: host bits are
/// drawn from a hash of (seed, subnet base). The same (seed, subnet) always
/// produces the same target, giving campaigns the paper's "same addresses,
/// same order, every day" property (§5).
[[nodiscard]] inline net::Ipv6Address target_in(const net::Prefix& subnet,
                                                std::uint64_t seed) noexcept {
  const net::Uint128 base = subnet.base().bits();
  const std::uint64_t host_hi =
      sim::mix64(seed, base.hi(), base.lo() ^ 0x9e3779b97f4a7c15ULL);
  const std::uint64_t host_lo = sim::mix64(seed ^ 0xabcdef, base.hi(), base.lo());
  const net::Uint128 host =
      net::Uint128{host_hi, host_lo} & ~net::Prefix::mask(subnet.length());
  return net::Ipv6Address{base | host};
}

/// Lazily enumerates one target per /`sub_length` subnet of `parent`, in
/// zmap-permuted pseudorandom order. Bounded to 2^32 subnets (far above
/// anything probed here).
class SubnetTargets {
 public:
  SubnetTargets(net::Prefix parent, unsigned sub_length, std::uint64_t seed)
      : parent_(parent),
        sub_length_(sub_length < parent.length() ? parent.length()
                                                 : sub_length),
        seed_(seed),
        permutation_(clamped_count(parent, sub_length_),
                     sim::mix64(seed, parent.base().network())) {}

  [[nodiscard]] std::uint64_t size() const noexcept {
    return permutation_.size();
  }

  /// Next target in permuted order; false when the sweep is complete.
  bool next(net::Ipv6Address& out) noexcept {
    std::uint64_t index = 0;
    if (!permutation_.next(index)) return false;
    out = target_in(parent_.subnet(sub_length_, net::Uint128{index}), seed_);
    return true;
  }

  void reset() noexcept { permutation_.reset(); }

 private:
  static std::uint64_t clamped_count(const net::Prefix& parent,
                                     unsigned sub_length) noexcept {
    const unsigned bits = sub_length - parent.length();
    return bits >= 32 ? (std::uint64_t{1} << 32) : (std::uint64_t{1} << bits);
  }

  net::Prefix parent_;
  unsigned sub_length_;
  std::uint64_t seed_;
  CyclicPermutation permutation_;
};

/// Materializes a full sweep (convenience for small parents).
[[nodiscard]] inline std::vector<net::Ipv6Address> targets_for(
    net::Prefix parent, unsigned sub_length, std::uint64_t seed) {
  SubnetTargets gen{parent, sub_length, seed};
  std::vector<net::Ipv6Address> out;
  out.reserve(static_cast<std::size_t>(gen.size()));
  net::Ipv6Address a;
  while (gen.next(a)) out.push_back(a);
  return out;
}

}  // namespace scent::probe
