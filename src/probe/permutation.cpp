#include "probe/permutation.h"

#include <array>

#include "sim/rng.h"

namespace scent::probe {

std::uint64_t mul_mod_u64(std::uint64_t a, std::uint64_t b,
                          std::uint64_t m) noexcept {
  // GCC/Clang provide a 128-bit type on all 64-bit targets; this is the one
  // hot modular step of the permutation, so the fast path is worth the
  // (ubiquitous) extension. __extension__ silences -Wpedantic for the
  // deliberate use of a non-ISO type.
  __extension__ using uint128_t = unsigned __int128;
  return static_cast<std::uint64_t>(static_cast<uint128_t>(a) * b % m);
}

std::uint64_t pow_mod_u64(std::uint64_t base, std::uint64_t exp,
                          std::uint64_t m) noexcept {
  if (m <= 1) return 0;
  std::uint64_t result = 1;
  base %= m;
  while (exp != 0) {
    if ((exp & 1) != 0) result = mul_mod_u64(result, base, m);
    base = mul_mod_u64(base, base, m);
    exp >>= 1;
  }
  return result;
}

bool is_prime_u64(std::uint64_t n) noexcept {
  if (n < 2) return false;
  for (const std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                                19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  // Miller-Rabin with the deterministic witness set for 64-bit integers.
  std::uint64_t d = n - 1;
  unsigned r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  for (const std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                                19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    std::uint64_t x = pow_mod_u64(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (unsigned i = 1; i < r; ++i) {
      x = mul_mod_u64(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

namespace {

/// Smallest safe prime p >= candidate (p and (p-1)/2 both prime).
std::uint64_t next_safe_prime(std::uint64_t candidate) noexcept {
  if (candidate < 5) candidate = 5;
  // Safe primes > 5 are ≡ 11 (mod 12); stepping q over odd values and
  // testing p = 2q+1 is simpler and fast enough for one-time setup.
  std::uint64_t q = candidate / 2;
  if (q < 2) q = 2;
  for (;; ++q) {
    const std::uint64_t p = 2 * q + 1;
    if (p < candidate) continue;
    if (is_prime_u64(q) && is_prime_u64(p)) return p;
  }
}

}  // namespace

CyclicPermutation::CyclicPermutation(std::uint64_t n, std::uint64_t seed)
    : n_(n < 1 ? 1 : n) {
  if (n_ < 8) {
    // Group machinery is pointless for tiny domains; a rotated sequential
    // order is as random as 7 elements get.
    offset_ = sim::mix64(seed) % n_;
    return;
  }

  prime_ = next_safe_prime(n_ + 1);
  const std::uint64_t q = (prime_ - 1) / 2;

  // g is a primitive root of a safe prime iff g^2 != 1 and g^q != 1 (mod p).
  sim::Rng rng{sim::mix64(seed, prime_)};
  for (;;) {
    const std::uint64_t g = 2 + rng.below(prime_ - 3);
    if (pow_mod_u64(g, 2, prime_) != 1 && pow_mod_u64(g, q, prime_) != 1) {
      generator_ = g;
      break;
    }
  }
  first_ = 1 + rng.below(prime_ - 1);
  current_ = first_;
}

bool CyclicPermutation::next(std::uint64_t& out) noexcept {
  if (produced_ >= n_) return false;

  if (prime_ == 0) {  // tiny-n fallback
    out = (offset_ + produced_) % n_;
    ++produced_;
    return true;
  }

  // Walk the group, skipping values outside [1, n]. The skip rate is
  // bounded: p is the smallest safe prime above n+1, and in practice
  // p/n stays close to 1, so expected work per element is O(p/n).
  std::uint64_t x = current_;
  do {
    x = mul_mod_u64(x, generator_, prime_);
  } while (x > n_);
  current_ = x;
  ++produced_;
  out = x - 1;
  return true;
}

}  // namespace scent::probe
