#include "probe/prober.h"

#include <algorithm>
#include <utility>

namespace scent::probe {

ProbeResult Prober::probe_one(net::Ipv6Address target,
                              std::uint8_t hop_limit) {
  ProbeResult result;
  result.target = target;
  result.sent_at = clock_->now();
  ++counters_.sent;
  if (tm_sent_ != nullptr) tm_sent_->inc();
  ++sequence_;

  if (options_.wire_mode) {
    wire::build_echo_request_into(request_scratch_, options_.vantage, target,
                                  options_.identifier, sequence_, hop_limit);
    const auto response_bytes =
        net_ctx_ != nullptr
            ? std::as_const(*internet_).deliver(request_scratch_,
                                                clock_->now(), *net_ctx_)
            : internet_->deliver(request_scratch_, clock_->now());
    if (response_bytes) {
      const auto parsed = wire::parse_packet(*response_bytes);
      // A response that fails to parse or checksum is dropped exactly as a
      // real scanner's capture filter would drop it.
      if (parsed && parsed->ip.destination == options_.vantage) {
        result.responded = true;
        result.response_source = parsed->ip.source;
        result.type = parsed->icmp.type;
        result.code = parsed->icmp.code;
      } else if (tm_wire_drops_ != nullptr) {
        tm_wire_drops_->inc();
      }
    }
  } else {
    const auto reply =
        net_ctx_ != nullptr
            ? std::as_const(*internet_).probe(target, hop_limit,
                                              clock_->now(), *net_ctx_)
            : internet_->probe(target, hop_limit, clock_->now());
    if (reply) {
      result.responded = true;
      result.response_source = reply->source;
      result.type = reply->type;
      result.code = reply->code;
    }
  }

  if (result.responded) {
    ++counters_.received;
    if (tm_received_ != nullptr) tm_received_->inc();
  }

  // Pace to the configured rate. Integer division floors the gap; a 10kpps
  // prober advances 100us per probe.
  const sim::Duration gap = options_.packets_per_second == 0
                                ? 0
                                : sim::kSecond / static_cast<sim::Duration>(
                                                     options_.packets_per_second);
  clock_->advance(gap);
  return result;
}

void Prober::probe_into_batch(net::Ipv6Address target,
                              const ResultSink& sink) {
  const ProbeResult r = probe_one(target);
  if (!r.responded) return;
  batch_.push_back(r);
  if (batch_.size() >= kBatchSize) {
    sink(batch_);
    batch_.clear();
  }
}

void Prober::sweep(std::span<const net::Ipv6Address> targets,
                   const ResultSink& sink) {
  batch_.clear();
  batch_.reserve(kBatchSize);
  for (const auto& target : targets) probe_into_batch(target, sink);
  if (!batch_.empty()) {
    sink(batch_);
    batch_.clear();
  }
}

void Prober::sweep_subnets(net::Prefix parent, unsigned sub_length,
                           std::uint64_t seed, const ResultSink& sink) {
  SubnetTargets gen{parent, sub_length, seed};
  batch_.clear();
  batch_.reserve(kBatchSize);
  net::Ipv6Address target;
  while (gen.next(target)) probe_into_batch(target, sink);
  if (!batch_.empty()) {
    sink(batch_);
    batch_.clear();
  }
}

std::vector<ProbeResult> Prober::sweep(
    std::span<const net::Ipv6Address> targets) {
  std::vector<ProbeResult> responsive;
  responsive.reserve(targets.size());
  sweep(targets, [&responsive](std::span<const ProbeResult> batch) {
    responsive.insert(responsive.end(), batch.begin(), batch.end());
  });
  return responsive;
}

std::vector<ProbeResult> Prober::sweep_subnets(net::Prefix parent,
                                               unsigned sub_length,
                                               std::uint64_t seed) {
  std::vector<ProbeResult> responsive;
  // Responsive results never exceed the target count, but a sweep can span
  // 2^32 subnets — cap the up-front reservation at one /48's worth.
  responsive.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(SubnetTargets{parent, sub_length, seed}.size(),
                              std::uint64_t{1} << 16)));
  sweep_subnets(parent, sub_length, seed,
                [&responsive](std::span<const ProbeResult> batch) {
                  responsive.insert(responsive.end(), batch.begin(),
                                    batch.end());
                });
  return responsive;
}

}  // namespace scent::probe
