#include "probe/prober.h"

namespace scent::probe {

ProbeResult Prober::probe_one(net::Ipv6Address target,
                              std::uint8_t hop_limit) {
  ProbeResult result;
  result.target = target;
  result.sent_at = clock_->now();
  ++counters_.sent;
  if (tm_sent_ != nullptr) tm_sent_->inc();
  ++sequence_;

  if (options_.wire_mode) {
    const wire::Packet request = wire::build_echo_request(
        options_.vantage, target, options_.identifier, sequence_,
        hop_limit);
    const auto response_bytes = internet_->deliver(request, clock_->now());
    if (response_bytes) {
      const auto parsed = wire::parse_packet(*response_bytes);
      // A response that fails to parse or checksum is dropped exactly as a
      // real scanner's capture filter would drop it.
      if (parsed && parsed->ip.destination == options_.vantage) {
        result.responded = true;
        result.response_source = parsed->ip.source;
        result.type = parsed->icmp.type;
        result.code = parsed->icmp.code;
      } else if (tm_wire_drops_ != nullptr) {
        tm_wire_drops_->inc();
      }
    }
  } else {
    const auto reply =
        internet_->probe(target, hop_limit, clock_->now());
    if (reply) {
      result.responded = true;
      result.response_source = reply->source;
      result.type = reply->type;
      result.code = reply->code;
    }
  }

  if (result.responded) {
    ++counters_.received;
    if (tm_received_ != nullptr) tm_received_->inc();
  }

  // Pace to the configured rate. Integer division floors the gap; a 10kpps
  // prober advances 100us per probe.
  const sim::Duration gap = options_.packets_per_second == 0
                                ? 0
                                : sim::kSecond / static_cast<sim::Duration>(
                                                     options_.packets_per_second);
  clock_->advance(gap);
  return result;
}

std::vector<ProbeResult> Prober::sweep(
    std::span<const net::Ipv6Address> targets) {
  std::vector<ProbeResult> responsive;
  for (const auto& target : targets) {
    ProbeResult r = probe_one(target);
    if (r.responded) responsive.push_back(r);
  }
  return responsive;
}

std::vector<ProbeResult> Prober::sweep_subnets(net::Prefix parent,
                                               unsigned sub_length,
                                               std::uint64_t seed) {
  SubnetTargets gen{parent, sub_length, seed};
  std::vector<ProbeResult> responsive;
  net::Ipv6Address target;
  while (gen.next(target)) {
    ProbeResult r = probe_one(target);
    if (r.responded) responsive.push_back(r);
  }
  return responsive;
}

}  // namespace scent::probe
