#include "serve/serve_table.h"

#include <cassert>
#include <thread>
#include <utility>

namespace scent::serve {

ServeTable::ServeTable(const ServeOptions& options) : options_(options) {
  scan_options_.threads = options.threads;
  scan_options_.oversubscribe = options.oversubscribe;
  scan_options_.collect_targets = options.collect_targets;
  scan_options_.collect_sightings = options.collect_sightings;
  scan_options_.attribute = options.attribute;
  scan_options_.trace = options.trace;
  delta_options_ = scan_options_;
  if (options.trace != nullptr) {
    recorder_ = std::make_unique<trace::TraceRecorder>(
        options.trace->recorder_capacity());
  }
}

AggregateDelta ServeTable::scan_delta(const analysis::AnalysisInput& input,
                                      std::int64_t day) {
  // One full-input window captures the day's rotation snapshot in the
  // same pass: a delta input holds exactly one day's rows, so
  // [0, rows) covers them regardless of whether the input indexes rows
  // range-relative (StoreInput) or chain-global from zero (ChainInput).
  delta_options_.windows.clear();
  if (delta_options_.collect_targets) {
    delta_options_.windows.push_back({0, input.rows()});
  }
  analysis::FusedScan scan =
      analysis::scan_fused(input, options_.bgp, delta_options_,
                           options_.registry);

  AggregateDelta delta;
  delta.acc = std::move(scan.accumulator);
  // Lift the finished window out of the accumulator and clear the list:
  // the maintained base never carries windows, so merge_from (which
  // replays src windows into dst's) must see none on either side.
  std::vector<core::Snapshot>& windows = delta.acc.window_snapshots();
  if (!windows.empty()) delta.window = std::move(windows.front());
  windows.clear();
  delta.rows = input.rows();
  delta.failed_files = scan.failed_files;
  delta.threads_used = scan.threads_used;
  delta.day = day;
  return delta;
}

DeltaShard ServeTable::make_shard() const {
  return DeltaShard{&scan_options_, options_.bgp};
}

AggregateDelta ServeTable::merge_shards(std::vector<DeltaShard>&& shards,
                                        std::int64_t day) {
  AggregateDelta delta;
  delta.day = day;
  if (shards.empty()) {
    delta.acc = analysis::Accumulator{&scan_options_, options_.bgp, nullptr};
    return delta;
  }
  delta.acc = std::move(shards.front().acc_);
  delta.window = std::move(shards.front().window_);
  for (std::size_t s = 1; s < shards.size(); ++s) {
    delta.acc.merge_from(std::move(shards[s].acc_));
    // Same replay the engine's merge_table runs: already-present targets
    // keep their first-seen slot and take the later response, new ones
    // append in first-occurrence order — the serial map exactly.
    for (const auto& [target, response] : shards[s].window_.map()) {
      delta.window.record(target, response);
    }
  }
  delta.rows = delta.acc.rows_scanned();
  delta.threads_used = static_cast<unsigned>(shards.size());
  return delta;
}

void ServeTable::apply(AggregateDelta&& delta) {
  const std::uint64_t start = trace::TraceRecorder::now_wall_ns();
  if (recorder_ != nullptr) recorder_->begin("serve.delta_apply");

  if (!has_base_) {
    // First apply adopts the delta outright: a full-corpus delta on an
    // empty table is "build version 0" through the same path.
    base_ = std::move(delta.acc);
    has_base_ = true;
  } else {
    base_.merge_from(std::move(delta.acc));
  }
  failed_files_ += delta.failed_files;

  auto next = std::make_shared<TableVersion>();
  next->version = epoch_.load(std::memory_order_relaxed) + 1;
  next->day = delta.day;
  next->delta_rows = delta.rows;
  next->table = base_.materialize();
  next->table.threads_used = delta.threads_used;
  next->table.failed_files = failed_files_;
  next->day_window = std::move(delta.window);
  if (last_published_ != nullptr) {
    next->prev_window = last_published_->day_window;
  }

  const TableVersion& published = *next;
  last_published_ = next;
  publish(std::move(next));

  const std::uint64_t apply_ns = trace::TraceRecorder::now_wall_ns() - start;
  if (recorder_ != nullptr) {
    recorder_->end("serve.delta_apply");
    recorder_->counter("serve.version",
                       static_cast<std::int64_t>(published.version));
    options_.trace->drain("serve", *recorder_);
  }
  note_apply_metrics(published, apply_ns);
}

void ServeTable::publish(std::shared_ptr<const TableVersion> version) {
  const std::uint64_t next = epoch_.load(std::memory_order_relaxed) + 1;
  Slot& slot = slots_[next % kVersionSlots];

  // Clear the stamp so late-arriving readers see the slot as invalid,
  // then drain the pin count: a reader that pinned before the clear may
  // still be copying the old shared_ptr. seq_cst on the stamp clear, the
  // pin, the stamp check, and the drain load gives the total order the
  // rail's safety argument needs (a reader that pins after the clear
  // cannot then read the old stamp).
  slot.seq.store(0, std::memory_order_seq_cst);
  if (slot.readers.load(std::memory_order_seq_cst) != 0) {
    const std::uint64_t wait_start = trace::TraceRecorder::now_wall_ns();
    while (slot.readers.load(std::memory_order_seq_cst) != 0) {
      std::this_thread::yield();
    }
    const std::uint64_t wait_ns =
        trace::TraceRecorder::now_wall_ns() - wait_start;
    ++reclaim_waits_;
    if (options_.registry != nullptr) {
      options_.registry->sketch("serve.reclaim_wait_ns").observe(wait_ns);
    }
  }

  // The drained reader's unpin (release) synchronizes with the loads
  // above, so its shared_ptr copy happens-before this overwrite; the
  // overwritten version retires (frees) when the last outstanding
  // reader copy drops.
  if (slot.version != nullptr) ++versions_retired_;
  slot.version = std::move(version);
  slot.seq.store(next, std::memory_order_release);
  epoch_.store(next, std::memory_order_release);
}

std::shared_ptr<const TableVersion> ServeTable::current() const {
  for (;;) {
    const std::uint64_t e = epoch_.load(std::memory_order_acquire);
    if (e == 0) return nullptr;
    Slot& slot = slots_[e % kVersionSlots];
    slot.readers.fetch_add(1, std::memory_order_seq_cst);
    std::shared_ptr<const TableVersion> out;
    if (slot.seq.load(std::memory_order_seq_cst) == e) {
      // Pinned with the stamp intact: the writer cannot touch
      // slot.version until our unpin below, and the stamp's release
      // store makes the version's contents visible.
      out = slot.version;
    }
    slot.readers.fetch_sub(1, std::memory_order_release);
    if (out != nullptr) {
      acquires_.fetch_add(1, std::memory_order_relaxed);
      return out;
    }
    // Lapped: the writer recycled this slot (>= kVersionSlots publishes)
    // between our epoch read and pin. The epoch necessarily advanced;
    // retry against the new one.
  }
}

void ServeTable::note_apply_metrics(const TableVersion& published,
                                    std::uint64_t apply_ns) {
  telemetry::Registry* registry = options_.registry;
  if (registry == nullptr) return;
  registry->counter("serve.versions").add(1);
  registry->counter("serve.delta_rows").add(published.delta_rows);
  const std::uint64_t reads_now = acquires_.load(std::memory_order_relaxed);
  // reads() grows on reader threads; mirror the delta since the last
  // publish so the counter stays single-writer like the rest.
  registry->counter("serve.reads").add(reads_now - acquires_at_last_publish_);
  registry->gauge("serve.readers_last_epoch")
      .set(static_cast<std::int64_t>(reads_now - acquires_at_last_publish_));
  acquires_at_last_publish_ = reads_now;
  registry->counter("serve.versions_retired")
      .add(versions_retired_ - counted_retired_);
  registry->counter("serve.reclaim_waits")
      .add(reclaim_waits_ - counted_reclaim_waits_);
  counted_retired_ = versions_retired_;
  counted_reclaim_waits_ = reclaim_waits_;
  registry->gauge("serve.devices")
      .set(static_cast<std::int64_t>(published.table.devices.size()));
  registry->gauge("serve.rows")
      .set(static_cast<std::int64_t>(published.table.rows_scanned));
  registry->sketch("serve.delta_apply_ns").observe(apply_ns);
}

}  // namespace scent::serve
