// delta.h - one day's observations in mergeable form (§5k's delta layer).
//
// An AggregateDelta is a day of new rows accumulated but not yet folded
// into a ServeTable: device upserts (span widening, DaySet OR, per-AS
// span folds) sit in an analysis::Accumulator — the exact shard state the
// fused engine merges — plus the day's <target, EUI-64 response> pair map
// (the rotation window the published version advances to). Because the
// delta IS a fused-scan accumulator, applying it is the engine's own
// shard-order merge_from: no new merge semantics, and therefore no way
// for the incrementally-maintained table to drift from a fresh rebuild.
//
// Deltas come from three producers, all field-identical over the same
// rows: ServeTable::scan_delta over a StoreInput or ChainInput (sharded
// fused scan), or per-probe-shard DeltaShards riding the live streamed
// pipeline, merged in shard order by ServeTable::merge_shards.
#pragma once

#include <cstdint>
#include <span>

#include "analysis/accumulator.h"
#include "core/rotation_detector.h"
#include "netbase/ipv6_address.h"
#include "sim/sim_time.h"

namespace scent::serve {

class ServeTable;

/// One probe shard's slice of a day's delta, riding a streamed sweep: an
/// engine Accumulator (lazy attribution cache — shards never share state)
/// plus the shard's slice of the day window. Created by
/// ServeTable::make_shard, fed observation batches in row order from
/// exactly one producer thread, folded back in shard order by
/// ServeTable::merge_shards.
class DeltaShard {
 public:
  DeltaShard(const analysis::AnalysisOptions* options,
             const routing::BgpTable* bgp)
      : acc_(options, bgp, nullptr),
        collect_targets_(options->collect_targets) {}

  /// Accumulates one contiguous row block (blocks must arrive in row
  /// order, matching Accumulator::accumulate's contract). Snapshot::record
  /// self-filters to EUI-64 responses, so the recorded window equals the
  /// fused engine's RowWindow snapshot over the same rows.
  void accumulate(std::span<const net::Ipv6Address> targets,
                  std::span<const net::Ipv6Address> responses,
                  std::span<const sim::TimePoint> times) {
    acc_.accumulate(0, targets, responses, times);
    if (collect_targets_) {
      for (std::size_t i = 0; i < responses.size(); ++i) {
        window_.record(targets[i], responses[i]);
      }
    }
  }

 private:
  friend class ServeTable;

  analysis::Accumulator acc_;
  core::Snapshot window_;
  bool collect_targets_ = true;
};

/// A day's observations, scanned and accumulated but not yet applied.
/// Produced by ServeTable::scan_delta / merge_shards; consumed (moved
/// from) by ServeTable::apply.
struct AggregateDelta {
  analysis::Accumulator acc;  ///< The day's rows in fused-scan shard form.
  core::Snapshot window;      ///< The day's <target, EUI response> pairs.
  std::uint64_t rows = 0;     ///< Rows the delta scanned (incl. non-EUI).
  std::size_t failed_files = 0;  ///< Chain files that failed to read.
  unsigned threads_used = 1;
  std::int64_t day = 0;  ///< Day stamp for the published version.
};

}  // namespace scent::serve
