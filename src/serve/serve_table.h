// serve_table.h - the versioned, incrementally-maintained AggregateTable
// (DESIGN.md §5k).
//
// A ServeTable turns the fused engine's rebuild-only AggregateTable into
// maintainable state with lock-free concurrent reads:
//
//   Delta layer.  Each day's observations become an AggregateDelta —
//   scan_delta over a StoreInput/ChainInput, or the streamed pipeline's
//   per-probe-shard DeltaShards folded by merge_shards — and apply()
//   merges it into the maintained accumulator via the engine's own
//   shard-order merge_from. Applying day N never rescans days [0, N);
//   a full-corpus scan_delta on an empty table IS "build version 0" of
//   the same code path (analyze() == scan_fused + finish of the same
//   accumulator), so the incrementally-maintained table is field-for-
//   field identical to a fresh fused rebuild after every apply.
//
//   Versioning layer.  apply() publishes an immutable TableVersion (a
//   materialize() copy of the maintained state plus the day's rotation
//   window and the previous day's) through a fixed ring of epoch-stamped
//   slots. current() is lock-free for readers: pin a slot's reader
//   count, confirm its epoch stamp, copy the shared_ptr, unpin. Query
//   threads run derive.h reports against a pinned version while the
//   writer builds the next delta; a version truly retires when the last
//   reader's shared_ptr drops. The single writer recycles a slot only
//   after its stamp is cleared and its pin count drains to zero.
//
// Threading contract: exactly one writer thread calls scan_delta /
// merge_shards / apply; any number of reader threads call current() and
// the const accessors concurrently.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/engine.h"
#include "serve/delta.h"
#include "telemetry/metrics.h"
#include "trace/recorder.h"

namespace scent::serve {

struct ServeOptions {
  /// Worker shards for scan_delta (0 = hardware concurrency, same policy
  /// as the analysis engine).
  unsigned threads = 1;
  bool oversubscribe = false;

  /// Forwarded to the underlying AnalysisOptions. collect_targets also
  /// gates the per-day rotation windows (window snapshots need targets).
  bool collect_targets = true;
  bool collect_sightings = true;
  bool attribute = true;

  /// Attribution table; may be null when `attribute` is false. Must
  /// outlive the ServeTable.
  const routing::BgpTable* bgp = nullptr;

  /// Optional serve.* counters/gauges/sketches destination.
  telemetry::Registry* registry = nullptr;

  /// Optional flight-recorder sink: each apply() is recorded as a
  /// "serve.delta_apply" span and drained into the "serve" lane.
  trace::TraceCollector* trace = nullptr;
};

/// One immutable published state. Readers hold it by shared_ptr — it
/// stays valid (and unchanging) for as long as any reader keeps it, no
/// matter how many versions the writer publishes meanwhile.
struct TableVersion {
  std::uint64_t version = 0;   ///< 1-based publish sequence number.
  std::int64_t day = 0;        ///< Day stamp of the delta that built this.
  std::uint64_t delta_rows = 0;  ///< Rows the building delta contributed.

  /// The maintained aggregate, field-for-field what a fresh fused rebuild
  /// over all applied rows would produce.
  analysis::AggregateTable table;

  /// The building day's <target, EUI-64 response> rotation window, and
  /// the previous published day's — the two inputs the §4.3 detector
  /// diffs. Both empty when ServeOptions::collect_targets is off.
  core::Snapshot day_window;
  core::Snapshot prev_window;

  /// derive.h report functions take const AggregateTable&; a TableVersion
  /// converts implicitly so readers pass a pinned version straight in.
  operator const analysis::AggregateTable&() const noexcept {  // NOLINT
    return table;
  }
};

class ServeTable {
 public:
  explicit ServeTable(const ServeOptions& options);

  ServeTable(const ServeTable&) = delete;
  ServeTable& operator=(const ServeTable&) = delete;

  // --- Writer API (single thread) -----------------------------------

  /// Scans `input` (all of it — a delta input holds exactly one day's
  /// rows) through the fused engine and returns it in mergeable form,
  /// including the day's rotation window when collect_targets is on.
  [[nodiscard]] AggregateDelta scan_delta(const analysis::AnalysisInput& input,
                                          std::int64_t day);

  /// A shard-local delta builder for the streamed pipeline: one per
  /// probe shard, fed observation batches in row order by that shard's
  /// ingest sink.
  [[nodiscard]] DeltaShard make_shard() const;

  /// Folds pipeline shards (shard order == row order) into one delta —
  /// the streamed twin of scan_delta, same merge the engine's barrier
  /// path runs.
  [[nodiscard]] AggregateDelta merge_shards(std::vector<DeltaShard>&& shards,
                                            std::int64_t day);

  /// Merges the delta into the maintained accumulator (adopting it
  /// outright on the first apply) and publishes the next TableVersion.
  void apply(AggregateDelta&& delta);

  /// Convenience: scan_delta + apply.
  void apply(const analysis::AnalysisInput& input, std::int64_t day) {
    apply(scan_delta(input, day));
  }

  // --- Reader API (any thread) --------------------------------------

  /// The latest published version, or nullptr before the first apply().
  /// Lock-free: never blocks on the writer; retries only if the writer
  /// lapped the whole slot ring between the epoch read and the pin.
  [[nodiscard]] std::shared_ptr<const TableVersion> current() const;

  /// Number of versions published so far (0 before the first apply).
  [[nodiscard]] std::uint64_t versions_published() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Total successful current() acquisitions across all readers.
  [[nodiscard]] std::uint64_t reads() const noexcept {
    return acquires_.load(std::memory_order_relaxed);
  }

 private:
  /// Publication slots: the writer stamps a version into
  /// slots_[epoch % kVersionSlots]. Eight slots means a reader may be
  /// preempted across seven whole publishes between reading the epoch
  /// and pinning the slot and still succeed.
  static constexpr std::size_t kVersionSlots = 8;

  struct Slot {
    /// Epoch stamp; 0 = empty or being recycled by the writer.
    std::atomic<std::uint64_t> seq{0};
    /// Readers currently pinned on this slot (pin -> check seq -> copy
    /// -> unpin). The writer drains this to zero before touching
    /// `version`.
    std::atomic<std::uint32_t> readers{0};
    /// Guarded by the seq/readers rail, not by its own atomicity.
    std::shared_ptr<const TableVersion> version;
  };

  void publish(std::shared_ptr<const TableVersion> version);
  void note_apply_metrics(const TableVersion& published,
                          std::uint64_t apply_ns);

  ServeOptions options_;
  /// Stable-address options for delta builders. scan_options_ never
  /// carries windows (DeltaShards record their own); delta_options_ gets
  /// the per-call full-input window in scan_delta.
  analysis::AnalysisOptions scan_options_;
  analysis::AnalysisOptions delta_options_;

  analysis::Accumulator base_;  ///< The maintained state, never spent.
  bool has_base_ = false;
  std::size_t failed_files_ = 0;  ///< Cumulative across applied deltas.

  /// Writer-side handle to the newest version (for prev_window chaining)
  /// — readers never touch this.
  std::shared_ptr<const TableVersion> last_published_;

  std::unique_ptr<trace::TraceRecorder> recorder_;

  mutable std::array<Slot, kVersionSlots> slots_;
  std::atomic<std::uint64_t> epoch_{0};
  mutable std::atomic<std::uint64_t> acquires_{0};
  std::uint64_t acquires_at_last_publish_ = 0;
  std::uint64_t reclaim_waits_ = 0;
  std::uint64_t versions_retired_ = 0;
  /// High-water marks already mirrored into registry counters.
  std::uint64_t counted_reclaim_waits_ = 0;
  std::uint64_t counted_retired_ = 0;
};

}  // namespace scent::serve
