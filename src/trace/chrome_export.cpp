#include "trace/chrome_export.h"

#include <cinttypes>
#include <cstdio>

#include "telemetry/journal.h"

namespace scent::trace {

namespace {

const char* phase_for(EventType type) {
  switch (type) {
    case EventType::kBegin: return "B";
    case EventType::kEnd: return "E";
    case EventType::kInstant: return "i";
    case EventType::kCounter: return "C";
  }
  return "i";
}

/// Earliest wall timestamp across all lanes — the trace's ts origin, so
/// timelines start near zero instead of at steady_clock's arbitrary epoch.
std::uint64_t wall_base(const TraceCollector& collector) {
  std::uint64_t base = 0;
  bool any = false;
  for (const auto& lane : collector.lanes()) {
    for (const auto& event : lane.events) {
      if (!any || event.wall_ns < base) {
        base = event.wall_ns;
        any = true;
      }
    }
  }
  return base;
}

void append_event(std::string& out, const TraceEvent& event,
                  std::uint64_t base, std::size_t tid, bool& first) {
  if (!first) out += ',';
  first = false;
  out += "\n{\"name\":";
  telemetry::append_json_string(out, event.name != nullptr ? event.name
                                                           : "(unnamed)");
  char buf[128];
  const double ts =
      static_cast<double>(event.wall_ns - base) / 1000.0;  // ns -> us
  std::snprintf(buf, sizeof buf, ",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,"
                "\"tid\":%zu",
                phase_for(event.type), ts, tid);
  out += buf;
  if (event.type == EventType::kInstant) out += ",\"s\":\"t\"";
  if (event.type == EventType::kCounter) {
    std::snprintf(buf, sizeof buf,
                  ",\"args\":{\"value\":%" PRId64 ",\"virtual_us\":%" PRId64
                  "}}",
                  event.value, event.virtual_us);
  } else {
    std::snprintf(buf, sizeof buf, ",\"args\":{\"virtual_us\":%" PRId64 "}}",
                  event.virtual_us);
  }
  out += buf;
}

}  // namespace

std::string to_chrome_json(const TraceCollector& collector) {
  const std::uint64_t base = wall_base(collector);
  std::string out = "{\"traceEvents\":[";
  bool first = true;

  // Process + thread naming metadata first, so viewers label every lane.
  out += "\n{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,"
         "\"tid\":0,\"args\":{\"name\":\"scent\"}}";
  first = false;
  for (std::size_t i = 0; i < collector.lanes().size(); ++i) {
    const TraceLane& lane = collector.lanes()[i];
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":1,";
    char buf[48];
    std::snprintf(buf, sizeof buf, "\"tid\":%zu,\"args\":{\"name\":", i + 1);
    out += buf;
    telemetry::append_json_string(out, lane.name);
    out += "}}";
  }

  std::uint64_t dropped_total = 0;
  for (std::size_t i = 0; i < collector.lanes().size(); ++i) {
    const TraceLane& lane = collector.lanes()[i];
    for (const auto& event : lane.events) {
      append_event(out, event, base, i + 1, first);
    }
    if (lane.dropped != 0) {
      // Make overflow visible in the timeline itself, not just metadata.
      TraceEvent marker;
      marker.name = "trace.dropped";
      marker.type = EventType::kCounter;
      marker.wall_ns = base;
      marker.value = static_cast<std::int64_t>(lane.dropped);
      append_event(out, marker, base, i + 1, first);
    }
    dropped_total += lane.dropped;
  }

  char buf[96];
  std::snprintf(buf, sizeof buf,
                "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
                "\"dropped_events\":%" PRIu64 "}}\n",
                dropped_total);
  out += buf;
  return out;
}

bool write_chrome_trace(const std::string& path,
                        const TraceCollector& collector) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_chrome_json(collector);
  const bool wrote =
      std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

}  // namespace scent::trace
