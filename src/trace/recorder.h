// recorder.h - flight-recorder trace ring buffers and the shard-merge
// collector.
//
// A TraceRecorder is a fixed-capacity ring of begin/end/instant/counter
// events owned by exactly ONE writer — a shard worker or a stage driver —
// mirroring the single-writer rule telemetry histograms already follow.
// Recording an event is a couple of stores plus two clock reads; there is
// no locking, no allocation, and no I/O on the hot path. When the ring is
// full the oldest event is overwritten and an explicit drop counter is
// bumped (flight-recorder semantics: the newest events survive, and the
// loss is visible, never silent).
//
// Events carry BOTH timestamps the rest of the codebase uses:
//   * wall_ns  — std::chrono::steady_clock, for real phase-overlap
//                timelines (the Chrome trace exporter's ts axis);
//   * virtual_us — the bound sim::VirtualClock, which replays the serial
//                probe schedule identically at any thread count. The
//                determinism contract (DESIGN §5h) is stated over the
//                virtual stream only: drain shard recorders in shard
//                order and the concatenated (name, type, virtual_us,
//                value) sequence is bit-identical at any thread count,
//                provided no events were dropped.
//
// The TraceCollector accumulates drained recorders as named lanes at the
// existing deterministic shard-merge points. It is driver-thread-only;
// workers never touch it.
//
// Header-only on purpose, like quantile.h: instrumented layers (corpus,
// engine, core) must not grow a link dependency on scent_trace.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/sim_time.h"
#include "trace/quantile.h"

namespace scent::trace {

enum class EventType : std::uint8_t { kBegin, kEnd, kInstant, kCounter };

struct TraceEvent {
  const char* name = nullptr;   ///< Static-lifetime literal, never owned.
  EventType type = EventType::kInstant;
  std::uint64_t wall_ns = 0;    ///< steady_clock, process-arbitrary epoch.
  std::int64_t virtual_us = 0;  ///< Bound VirtualClock; 0 when unbound.
  std::int64_t value = 0;       ///< kCounter payload, 0 otherwise.
};

class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 14;

  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  /// Virtual clock stamped into events (optional; 0 when unbound).
  void set_clock(const sim::VirtualClock* clock) noexcept { clock_ = clock; }

  void begin(const char* name) noexcept { push(name, EventType::kBegin, 0); }
  void end(const char* name) noexcept { push(name, EventType::kEnd, 0); }
  void instant(const char* name) noexcept {
    push(name, EventType::kInstant, 0);
  }
  void counter(const char* name, std::int64_t value) noexcept {
    push(name, EventType::kCounter, value);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Events overwritten since the last drain (flight-recorder overflow).
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Appends the retained events oldest-first to `out`, then resets the
  /// ring (the drop counter is the caller's to harvest via take_dropped).
  void drain_into(std::vector<TraceEvent>& out) {
    const std::size_t n = ring_.size();
    std::size_t read = (write_ + n - size_) % n;
    out.reserve(out.size() + size_);
    for (std::size_t i = 0; i < size_; ++i) {
      out.push_back(ring_[read]);
      read = read + 1 == n ? 0 : read + 1;
    }
    size_ = 0;
    write_ = 0;
  }

  /// Returns and clears the overflow counter.
  [[nodiscard]] std::uint64_t take_dropped() noexcept {
    return std::exchange(dropped_, 0);
  }

  /// Current wall clock in the TraceEvent::wall_ns epoch. Public so scoped
  /// helpers and the bench overhead guard share one time source.
  [[nodiscard]] static std::uint64_t now_wall_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  void push(const char* name, EventType type, std::int64_t value) noexcept {
    TraceEvent& e = ring_[write_];
    if (size_ == ring_.size()) {
      ++dropped_;  // overwrote the oldest retained event
    } else {
      ++size_;
    }
    e.name = name;
    e.type = type;
    e.wall_ns = now_wall_ns();
    e.virtual_us = clock_ != nullptr ? clock_->now() : 0;
    e.value = value;
    write_ = write_ + 1 == ring_.size() ? 0 : write_ + 1;
  }

  std::vector<TraceEvent> ring_;
  std::size_t write_ = 0;  ///< Next slot to fill.
  std::size_t size_ = 0;   ///< Retained events (≤ capacity).
  std::uint64_t dropped_ = 0;
  const sim::VirtualClock* clock_ = nullptr;
};

/// One exporter lane: a named, ordered event stream plus its overflow
/// count. The Chrome exporter renders each lane as one timeline row.
struct TraceLane {
  std::string name;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
};

/// Driver-side accumulator of drained recorders. Lanes are keyed by name:
/// draining into an existing name appends (a campaign drains "sweep
/// shard 0" once per day into one lane). Not thread safe — drain at the
/// deterministic shard-merge points, on the driver thread, in shard order.
class TraceCollector {
 public:
  TraceCollector() = default;
  explicit TraceCollector(std::size_t recorder_capacity)
      : recorder_capacity_(recorder_capacity) {}

  /// Capacity instrumented layers should use when creating the shard
  /// recorders they later drain into this collector.
  [[nodiscard]] std::size_t recorder_capacity() const noexcept {
    return recorder_capacity_;
  }

  void drain(std::string_view lane_name, TraceRecorder& recorder) {
    TraceLane& lane = lane_for(lane_name);
    recorder.drain_into(lane.events);
    lane.dropped += recorder.take_dropped();
  }

  /// Appends a single pre-built event to a lane (driver-side bookkeeping,
  /// e.g. phase markers recorded outside any ring).
  void append(std::string_view lane_name, const TraceEvent& event) {
    lane_for(lane_name).events.push_back(event);
  }

  [[nodiscard]] const std::vector<TraceLane>& lanes() const noexcept {
    return lanes_;
  }

  [[nodiscard]] std::uint64_t total_events() const noexcept {
    std::uint64_t n = 0;
    for (const auto& lane : lanes_) n += lane.events.size();
    return n;
  }

  [[nodiscard]] std::uint64_t total_dropped() const noexcept {
    std::uint64_t n = 0;
    for (const auto& lane : lanes_) n += lane.dropped;
    return n;
  }

 private:
  TraceLane& lane_for(std::string_view name) {
    for (auto& lane : lanes_) {
      if (lane.name == name) return lane;
    }
    lanes_.push_back(TraceLane{std::string{name}, {}, 0});
    return lanes_.back();
  }

  std::vector<TraceLane> lanes_;
  std::size_t recorder_capacity_ = TraceRecorder::kDefaultCapacity;
};

/// RAII sample of one region into an optional recorder (begin/end events)
/// and an optional sketch (wall-ns duration). Both pointers null — the
/// compiled-in-but-idle configuration — costs two predictable branches,
/// the discipline instrumented hot paths rely on (bench-guarded ≤1%).
class ScopedSample {
 public:
  ScopedSample(TraceRecorder* recorder, QuantileSketch* sketch,
               const char* name) noexcept
      : recorder_(recorder), sketch_(sketch), name_(name) {
    if (recorder_ == nullptr && sketch_ == nullptr) return;
    start_ns_ = TraceRecorder::now_wall_ns();
    if (recorder_ != nullptr) recorder_->begin(name_);
  }

  ScopedSample(const ScopedSample&) = delete;
  ScopedSample& operator=(const ScopedSample&) = delete;

  ~ScopedSample() {
    if (recorder_ == nullptr && sketch_ == nullptr) return;
    if (recorder_ != nullptr) recorder_->end(name_);
    if (sketch_ != nullptr) {
      sketch_->observe(TraceRecorder::now_wall_ns() - start_ns_);
    }
  }

 private:
  TraceRecorder* recorder_;
  QuantileSketch* sketch_;
  const char* name_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace scent::trace
