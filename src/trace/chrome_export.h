// chrome_export.h - Chrome trace-event JSON exporter (Perfetto-loadable).
//
// Renders a TraceCollector as the classic {"traceEvents":[...]} format
// both chrome://tracing and https://ui.perfetto.dev open directly. Each
// lane becomes one timeline row (pid 1, tid = lane index + 1, named via a
// thread_name metadata event), so engine sweep shards, columnar ingest,
// snapshot I/O, campaign day phases, and analysis scan shards appear as
// parallel lanes and phase overlap — or today's lack of it — is directly
// visible.
//
// ts is wall time in microseconds relative to the earliest event in the
// collector; the deterministic virtual timestamp rides along in
// args.virtual_us. Per-lane overflow counts are exported both as
// trace.dropped counter samples and in otherData.dropped_events.
#pragma once

#include <string>

#include "trace/recorder.h"

namespace scent::trace {

/// Serializes the collector as one Chrome trace-event JSON document.
[[nodiscard]] std::string to_chrome_json(const TraceCollector& collector);

/// Writes to_chrome_json() to `path`. Returns false on any I/O failure.
bool write_chrome_trace(const std::string& path,
                        const TraceCollector& collector);

}  // namespace scent::trace
