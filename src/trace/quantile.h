// quantile.h - mergeable log-bucketed quantile sketch for tail latencies.
//
// The telemetry Histogram keeps a handful of fixed buckets — fine for
// coarse funnels, useless for p99.9 of a nanosecond-scale hot path. This
// sketch is the HDR-histogram idea reduced to what the data plane needs:
//
//   * Bucket layout is fixed a priori (values 0..31 exact, then 16
//     sub-buckets per power of two), so every sketch in the process shares
//     the same geometry and merging is pure bucket-wise addition.
//   * Addition is commutative and associative, so shard-local sketches
//     merged in shard order are bit-identical to a serial run at ANY
//     thread count — the same determinism contract the engine's shard
//     merge already guarantees for the corpus (DESIGN §5d/§5h).
//   * quantile() walks the cumulative counts and returns the bucket's
//     integer midpoint clamped to the observed [min, max]; relative error
//     is bounded by half a bucket width, ≤ 1/32 ≈ 3.2%.
//
// Single-writer, like Histogram: a sketch belongs to one shard or one
// stage driver; cross-thread aggregation happens by merge_from() at the
// deterministic merge points, never by concurrent observe().
//
// Header-only on purpose: telemetry::Registry embeds sketches and the
// corpus/engine layers observe into them, and none of that may introduce a
// link-time cycle with scent_trace (which links scent_telemetry).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace scent::trace {

class QuantileSketch {
 public:
  /// Sub-bucket resolution: 2^kSubBits exact small values, then
  /// kSubHalf sub-buckets per octave.
  static constexpr unsigned kSubBits = 5;
  static constexpr std::uint64_t kSubCount = std::uint64_t{1} << kSubBits;
  static constexpr std::uint64_t kSubHalf = kSubCount / 2;
  /// 32 exact buckets + 59 octaves (bit widths 6..64) x 16 sub-buckets.
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kSubCount) + (64 - kSubBits) * kSubHalf;
  /// Worst-case relative error of quantile(): half a bucket width over the
  /// bucket's lower bound, 2^(s-1) / (kSubHalf * 2^s).
  static constexpr double kRelativeError =
      1.0 / static_cast<double>(2 * kSubHalf);

  /// Bucket index for a sample value. Exact below kSubCount; above, the
  /// top kSubBits bits of the value select a sub-bucket within its octave.
  [[nodiscard]] static constexpr std::size_t index_for(
      std::uint64_t v) noexcept {
    if (v < kSubCount) return static_cast<std::size_t>(v);
    const unsigned width = static_cast<unsigned>(std::bit_width(v));
    const unsigned shift = width - kSubBits;  // >= 1
    const std::uint64_t sub = v >> shift;     // in [kSubHalf, kSubCount)
    return static_cast<std::size_t>(kSubCount +
                                    (width - kSubBits - 1) * kSubHalf +
                                    (sub - kSubHalf));
  }

  /// Smallest value mapping to bucket `i`.
  [[nodiscard]] static constexpr std::uint64_t lower_bound_for(
      std::size_t i) noexcept {
    if (i < kSubCount) return i;
    const std::size_t off = i - kSubCount;
    const unsigned shift = static_cast<unsigned>(off / kSubHalf) + 1;
    const std::uint64_t sub = kSubHalf + off % kSubHalf;
    return sub << shift;
  }

  /// Deterministic integer representative (bucket midpoint) for bucket `i`.
  [[nodiscard]] static constexpr std::uint64_t representative_for(
      std::size_t i) noexcept {
    if (i < kSubCount) return i;
    const unsigned shift = static_cast<unsigned>((i - kSubCount) / kSubHalf) + 1;
    return lower_bound_for(i) + (std::uint64_t{1} << (shift - 1));
  }

  void observe(std::uint64_t v) noexcept {
    ++counts_[index_for(v)];
    sum_ += v;
    if (count_ == 0 || v < min_) min_ = v;
    if (count_ == 0 || v > max_) max_ = v;
    ++count_;
  }

  /// Bucket-wise addition. Commutative and associative: any merge tree
  /// over the same multiset of samples yields identical state.
  void merge_from(const QuantileSketch& other) noexcept {
    if (other.count_ == 0) return;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      counts_[i] += other.counts_[i];
    }
    sum_ += other.sum_;
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (count_ == 0 || other.max_ > max_) max_ = other.max_;
    count_ += other.count_;
  }

  /// Value at quantile q in [0, 1]: walks cumulative bucket counts to the
  /// 1-based rank ceil(q * count), returns the bucket midpoint clamped to
  /// the exact observed [min, max]. Deterministic for identical state.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept {
    if (count_ == 0) return 0;
    if (q <= 0.0) return min_;
    if (q >= 1.0) return max_;
    std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(count_)) + 1;
    if (rank > count_) rank = count_;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      cumulative += counts_[i];
      if (cumulative >= rank) {
        std::uint64_t r = representative_for(i);
        if (r < min_) r = min_;
        if (r > max_) r = max_;
        return r;
      }
    }
    return max_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return min_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0
               ? 0.0
               : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] const std::array<std::uint64_t, kBucketCount>& buckets()
      const noexcept {
    return counts_;
  }

  void reset() noexcept { *this = QuantileSketch{}; }

  /// Full-state equality — the determinism tests' "bit-identical" check.
  [[nodiscard]] bool operator==(const QuantileSketch&) const = default;

 private:
  std::array<std::uint64_t, kBucketCount> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace scent::trace
