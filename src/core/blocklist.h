// blocklist.h - IP-based blocking under prefix rotation (§2.2, §9).
//
// The paper's closing observation: the IPv4 habit of blocking an abusive
// source address (or a fixed-size prefix around it) breaks when providers
// rotate customer prefixes daily — the abuser walks out of the block while
// innocent customers rotate *into* it. The defensive flip side of the
// tracking attack is that a defender who runs the same Algorithm-2
// inference can block (or rate-limit) the abuser's *rotation pool*, or
// track the abuser's EUI-64 scent and follow them — trading collateral
// damage against evasion resistance. This module quantifies that trade-off.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "netbase/ipv6_address.h"
#include "netbase/mac_address.h"
#include "netbase/prefix.h"
#include "routing/prefix_trie.h"
#include "sim/sim_time.h"

namespace scent::core {

/// How the defender scopes a block after observing one abusive address.
enum class BlockScope : std::uint8_t {
  kAddress,     ///< Exact /128 (classic IPv4-style blocking).
  kSlash64,     ///< The containing /64.
  kAllocation,  ///< The inferred customer allocation (e.g. /56).
  kPool,        ///< The inferred rotation pool (e.g. /46).
  kEuiFollow,   ///< Follow the EUI-64 IID: re-block wherever it reappears.
};

[[nodiscard]] constexpr std::string_view to_string(BlockScope s) noexcept {
  switch (s) {
    case BlockScope::kAddress: return "/128 address";
    case BlockScope::kSlash64: return "/64";
    case BlockScope::kAllocation: return "allocation";
    case BlockScope::kPool: return "rotation pool";
    case BlockScope::kEuiFollow: return "EUI-64 follow";
  }
  return "unknown";
}

/// A prefix blocklist with longest-prefix-match semantics, as a content
/// provider's edge would implement it.
class Blocklist {
 public:
  void block(net::Prefix prefix, sim::TimePoint at) {
    if (trie_.insert(prefix, at)) ++entries_;
  }

  /// Removes an entry (a follow-style defender moves its block as the
  /// target moves; leaving stale entries behind blocks innocents that
  /// rotate into them). Returns true if an entry was removed.
  bool unblock(net::Prefix prefix) {
    if (!trie_.erase(prefix)) return false;
    --entries_;
    return true;
  }

  [[nodiscard]] bool blocked(net::Ipv6Address a) const {
    return trie_.longest_match(a).has_value();
  }

  [[nodiscard]] std::size_t entries() const noexcept { return entries_; }

 private:
  routing::PrefixTrie<sim::TimePoint> trie_;
  std::size_t entries_ = 0;
};

/// Outcome of one blocking policy evaluated over a multi-day episode.
struct BlockingOutcome {
  BlockScope scope = BlockScope::kAddress;
  unsigned days = 0;
  unsigned days_abuser_blocked = 0;   ///< Attack stopped at the edge.
  unsigned days_abuser_evaded = 0;    ///< Attack got through.
  std::uint64_t innocent_blocked_device_days = 0;  ///< Collateral damage.
  std::size_t blocklist_entries = 0;

  [[nodiscard]] double block_rate() const noexcept {
    return days == 0 ? 0.0
                     : static_cast<double>(days_abuser_blocked) /
                           static_cast<double>(days);
  }
};

/// Evaluates one scope against a daily episode. The caller supplies, per
/// day, the abuser's current address and the addresses of the innocent
/// population (both as the defender's edge would see them). The defender
/// blocks on every day it observes an *unblocked* attack, scoping the new
/// entry per the policy; with kEuiFollow the defender re-blocks the /64 of
/// any EUI-64 address carrying the abuser's IID.
class BlockingPolicyEvaluator {
 public:
  BlockingPolicyEvaluator(BlockScope scope, unsigned allocation_length,
                          net::Prefix pool)
      : scope_(scope), allocation_length_(allocation_length), pool_(pool) {}

  /// Feeds one day. `abuser` is the attack source that day; `innocents`
  /// are legitimate client addresses active that day.
  void day(net::Ipv6Address abuser,
           const std::vector<net::Ipv6Address>& innocents,
           sim::TimePoint now);

  [[nodiscard]] BlockingOutcome outcome() const {
    BlockingOutcome result = outcome_;
    result.scope = scope_;
    result.blocklist_entries = blocklist_.entries();
    return result;
  }

 private:
  [[nodiscard]] net::Prefix scope_prefix(net::Ipv6Address abuser) const;

  BlockScope scope_;
  unsigned allocation_length_;
  net::Prefix pool_;
  Blocklist blocklist_;
  BlockingOutcome outcome_;
  bool follow_armed_ = false;
  net::MacAddress followed_mac_;
  net::Prefix follow_block_;  ///< Current kEuiFollow entry, moved each day.
  bool follow_block_active_ = false;
};

}  // namespace scent::core
