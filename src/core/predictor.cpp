#include "core/predictor.h"

#include <algorithm>
#include <map>

#include "probe/permutation.h"

namespace scent::core {

std::uint64_t StrideModel::predict_slot(std::int64_t day) const noexcept {
  const std::uint64_t n = slots();
  if (n == 0) return 0;
  const std::int64_t sn = static_cast<std::int64_t>(n);
  const std::int64_t delta = day - anchor_day;
  const std::uint64_t steps =
      static_cast<std::uint64_t>(((delta % sn) + sn) % sn);
  const std::uint64_t advance = probe::mul_mod_u64(steps, stride % n, n);
  return (anchor_slot % n + advance) % n;
}

std::optional<StrideModel> fit_stride(const std::vector<Sighting>& sightings,
                                      net::Prefix pool,
                                      unsigned allocation_length,
                                      double min_support) {
  if (sightings.size() < 2 || allocation_length < pool.length()) {
    return std::nullopt;
  }

  StrideModel model;
  model.pool = pool;
  model.allocation_length = allocation_length;
  const std::uint64_t n = model.slots();
  if (n < 2) return std::nullopt;

  // Convert each sighting's /64 network to a slot index within the pool.
  struct Point {
    std::int64_t day;
    std::uint64_t slot;
  };
  std::vector<Point> points;
  points.reserve(sightings.size());
  // `network` values count /64s; an allocation spans 2^(64 - alloc_len) of
  // them, so the slot index is the offset shifted by that many bits.
  const unsigned alloc_shift = 64 - (allocation_length > 64 ? 64
                                                            : allocation_length);
  const std::uint64_t pool_base = pool.base().network();
  for (const auto& s : sightings) {
    if (!pool.contains(net::Ipv6Address{s.network, 0})) continue;
    const std::uint64_t offset = s.network - pool_base;
    points.push_back(Point{s.day, offset >> alloc_shift});
  }
  if (points.size() < 2) return std::nullopt;
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) { return a.day < b.day; });

  // Per-day stride candidates from consecutive sighting pairs: the modular
  // slot difference divided by the day gap (only exact divisions count —
  // a gap the stride doesn't evenly explain supports no candidate).
  std::map<std::uint64_t, std::size_t> votes;
  std::size_t pairs = 0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    const std::int64_t day_gap = points[i].day - points[i - 1].day;
    if (day_gap <= 0) continue;
    ++pairs;
    const std::uint64_t slot_diff =
        (points[i].slot + n - points[i - 1].slot) % n;
    if (day_gap == 1) {
      ++votes[slot_diff];
    } else if (slot_diff % static_cast<std::uint64_t>(day_gap) == 0) {
      // Ambiguous across the wrap, but the unwrapped candidate is by far
      // the likeliest for the short gaps trackers see.
      ++votes[slot_diff / static_cast<std::uint64_t>(day_gap)];
    }
  }
  if (pairs == 0 || votes.empty()) return std::nullopt;

  const auto best = std::max_element(
      votes.begin(), votes.end(), [](const auto& a, const auto& b) {
        return a.second < b.second;
      });
  model.stride = best->first;
  model.support =
      static_cast<double>(best->second) / static_cast<double>(pairs);
  if (model.stride == 0 || model.support < min_support) return std::nullopt;

  model.anchor_day = points.back().day;
  model.anchor_slot = points.back().slot;
  return model;
}

}  // namespace scent::core
