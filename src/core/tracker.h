// tracker.h - the paper's §6 device-tracking attack.
//
// Given a target CPE's EUI-64 IID (equivalently its MAC), the AS's inferred
// customer allocation size (Algorithm 1) and the device's inferred rotation
// pool (Algorithm 2), the tracker re-locates the device after a prefix
// rotation by probing one address per allocation-sized block across the
// pool, in randomized order, until a response embeds the target IID. The
// allocation inference divides probe cost by 2^(64 - allocation_length);
// the pool inference bounds the space from above. An optional stride model
// (§5.4) checks the *predicted* next allocation first.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/predictor.h"
#include "netbase/mac_address.h"
#include "netbase/prefix.h"
#include "probe/prober.h"
#include "telemetry/journal.h"
#include "telemetry/metrics.h"

namespace scent::core {

struct TrackerConfig {
  net::MacAddress target_mac;
  net::Prefix pool;                 ///< Inferred rotation pool to search.
  unsigned allocation_length = 56;  ///< Inferred per-AS allocation size.
  std::uint64_t seed = 0;

  /// When set, probe the model's predicted slot (and its neighbors) before
  /// falling back to the randomized pool sweep.
  std::optional<StrideModel> prediction;
  unsigned prediction_neighborhood = 2;

  /// Optional telemetry sinks. With a registry, attempts run under a
  /// "tracker.locate" span and feed `tracker.*` counters plus the
  /// `tracker.probes_per_attempt` histogram; with a journal, every attempt
  /// emits a "tracker_hit" / "tracker_miss" event.
  telemetry::Registry* registry = nullptr;
  telemetry::Journal* journal = nullptr;
};

struct TrackAttempt {
  std::int64_t day = 0;
  bool found = false;
  std::uint64_t probes_sent = 0;
  net::Ipv6Address address;     ///< The device's WAN address when found.
  net::Prefix allocation;       ///< The allocation block it was found in.
  bool found_by_prediction = false;
};

/// Tracks one device across rotations. Stateless between attempts except
/// for the sighting history it feeds back into stride fitting.
class Tracker {
 public:
  Tracker(probe::Prober& prober, TrackerConfig config)
      : prober_(&prober), config_(std::move(config)) {}

  [[nodiscard]] const TrackerConfig& config() const noexcept {
    return config_;
  }

  /// One attempt: sweep the pool (prediction first if configured) until the
  /// target IID responds or the pool is exhausted. `day` labels the attempt
  /// and varies the sweep order.
  [[nodiscard]] TrackAttempt locate(std::int64_t day);

  /// Sightings accumulated from successful attempts, usable for stride
  /// fitting via update_prediction().
  [[nodiscard]] const std::vector<Sighting>& sightings() const noexcept {
    return sightings_;
  }

  /// Refits the stride model from accumulated sightings; returns true if a
  /// model with sufficient support was installed.
  bool update_prediction(double min_support = 0.6);

  /// Replaces the sighting history — typically with one reconstructed
  /// lazily from a campaign's snapshot chain (sightings_from_snapshots) —
  /// so update_prediction() can fit a stride before the first live attempt.
  void seed_history(std::vector<Sighting> sightings) {
    sightings_ = std::move(sightings);
  }

 private:
  [[nodiscard]] bool probe_and_check(net::Ipv6Address target,
                                     TrackAttempt& attempt);

  /// Records the attempt into the configured telemetry sinks.
  TrackAttempt finish(TrackAttempt attempt);

  probe::Prober* prober_;
  TrackerConfig config_;
  std::vector<Sighting> sightings_;
};

/// Follows one IID across the days of a persisted campaign without loading
/// the corpora: each snapshot is opened lazily and only its response and
/// time columns are read (24 of the 42 bytes per row — targets and type
/// codes never leave the disk). Emits one sighting per <day, network> in
/// observation order, collapsing consecutive duplicates, ready for
/// Tracker::seed_history / fit_stride. Snapshots that fail to open or
/// verify are skipped and counted into `failed_files` (when non-null) —
/// a gappy history is still fittable.
[[nodiscard]] std::vector<Sighting> sightings_from_snapshots(
    const std::vector<std::string>& snapshot_paths, net::MacAddress mac,
    std::size_t* failed_files = nullptr);

}  // namespace scent::core
