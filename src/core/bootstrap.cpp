#include "core/bootstrap.h"

#include <algorithm>
#include <map>

#include "analysis/engine.h"
#include "container/flat_hash.h"
#include "core/sweep_ingest.h"
#include "engine/sweep.h"
#include "netbase/eui64.h"
#include "probe/target_generator.h"
#include "probe/traceroute.h"
#include "sim/rng.h"
#include "telemetry/span.h"

namespace scent::core {
namespace {

/// Deduplicates and sorts a prefix list.
std::vector<net::Prefix> sorted_unique(std::vector<net::Prefix> prefixes) {
  std::sort(prefixes.begin(), prefixes.end());
  prefixes.erase(std::unique(prefixes.begin(), prefixes.end()),
                 prefixes.end());
  return prefixes;
}

std::vector<RotatorGroup> group_rotators(
    const std::vector<net::Prefix>& rotating_48s,
    const routing::BgpTable& bgp, bool by_country) {
  std::map<std::string, std::uint64_t> counts;
  for (const auto& prefix : rotating_48s) {
    const auto attribution = bgp.lookup(prefix.base());
    if (!attribution) continue;
    const std::string key = by_country
                                ? attribution->country
                                : std::to_string(attribution->origin_asn);
    ++counts[key];
  }
  std::vector<RotatorGroup> out;
  out.reserve(counts.size());
  for (const auto& [key, count] : counts) out.push_back({key, count});
  std::sort(out.begin(), out.end(),
            [](const RotatorGroup& a, const RotatorGroup& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.key < b.key;
            });
  return out;
}

}  // namespace

std::vector<RotatorGroup> rotators_by_asn(
    const std::vector<net::Prefix>& rotating_48s,
    const routing::BgpTable& bgp) {
  return group_rotators(rotating_48s, bgp, /*by_country=*/false);
}

std::vector<RotatorGroup> rotators_by_country(
    const std::vector<net::Prefix>& rotating_48s,
    const routing::BgpTable& bgp) {
  return group_rotators(rotating_48s, bgp, /*by_country=*/true);
}

BootstrapResult run_bootstrap(sim::Internet& internet,
                              sim::VirtualClock& clock,
                              probe::Prober& prober,
                              const BootstrapOptions& options) {
  BootstrapResult result;
  const std::uint64_t base_sent = prober.counters().sent;
  telemetry::Span funnel_span{options.registry, "bootstrap"};
  telemetry::Span seed_span{options.registry, "seed"};

  engine::SweepOptions sweep_options;
  sweep_options.threads = options.threads;
  sweep_options.oversubscribe = options.oversubscribe;
  sweep_options.pipeline = options.pipeline;
  sweep_options.queue_capacity = options.queue_capacity;
  sweep_options.seed = options.seed;
  sweep_options.merge_registry = prober.telemetry();
  sweep_options.trace = options.trace;

  // Engine-backed sweep straight into the result store: shard traffic is
  // folded into the funnel prober's ledger, per-unit store slices come
  // back for the stages that classify per unit.
  const auto sweep = [&](const std::vector<engine::SweepUnit>& units) {
    const SweepIngest ingest =
        sweep_into_store(internet, clock, units, prober.options(),
                         sweep_options, result.observations);
    prober.accumulate_counters(ingest.counters);
    return ingest;
  };

  // ---- Stage 0: seed. One last-hop probe per /48 of every advertised
  // prefix that is /32-or-more-specific but shorter than /48.
  std::vector<net::Prefix> advertisements;
  for (const auto& ad : internet.bgp().dump()) {
    if (ad.prefix.length() >= options.min_advert_length &&
        ad.prefix.length() < 48) {
      advertisements.push_back(ad.prefix);
    }
  }
  advertisements = sorted_unique(std::move(advertisements));

  // EUI last hop per probed /48; /48s sharing a last-hop EUI with another
  // /48 are discarded (not a per-customer /48, per the paper's "unique
  // responsive EUI-64 last hop" filter).
  container::FlatMap<net::MacAddress, std::vector<net::Prefix>,
                     net::MacAddressHash>
      seed_by_mac;
  if (options.seed_with_traceroute) {
    // Literal CAIDA-style seeding: a full traceroute per /48 whose last
    // responsive hop is the periphery. Serial — the per-target probe
    // count depends on responses, so there is no a-priori schedule for
    // the engine to shard deterministically.
    for (const auto& advert : advertisements) {
      for (unsigned round = 0; round < options.probes_per_48; ++round) {
        probe::SubnetTargets targets{advert, 48,
                                     sim::mix64(options.seed, 0x5EED, round)};
        net::Ipv6Address target;
        while (targets.next(target)) {
          const auto trace =
              probe::traceroute(prober, target, options.traceroute_max_hops);
          const auto last = trace.last_hop();
          if (!last) continue;
          result.observations.add(Observation{
              target, last->address, wire::Icmpv6Type::kTimeExceeded, 0,
              clock.now()});
          if (const auto mac = net::embedded_mac(last->address)) {
            seed_by_mac[*mac].push_back(net::Prefix{target, 48});
          }
        }
      }
    }
  } else {
    // One probe at a random IID in a pseudorandom /64 of each /48 (the
    // /48 subnet target already randomizes all bits below /48).
    std::vector<engine::SweepUnit> units;
    units.reserve(advertisements.size() * options.probes_per_48);
    for (const auto& advert : advertisements) {
      for (unsigned round = 0; round < options.probes_per_48; ++round) {
        units.push_back(
            {advert, 48, sim::mix64(options.seed, 0x5EED, round)});
      }
    }
    const std::size_t stage_begin = result.observations.size();
    sweep(units);
    const ObservationStore& store = result.observations;
    for (std::size_t i = stage_begin; i < store.size(); ++i) {
      if (const auto mac = net::embedded_mac(store.response(i))) {
        seed_by_mac[*mac].push_back(net::Prefix{store.target(i), 48});
      }
    }
  }
  for (auto& [mac, prefixes] : seed_by_mac) {
    const auto distinct = sorted_unique(std::move(prefixes));
    if (distinct.size() == 1) result.seed_48s.push_back(distinct.front());
  }
  result.seed_48s = sorted_unique(std::move(result.seed_48s));

  // The /32s (covering advertisements) containing seed /48s.
  {
    std::vector<net::Prefix> seed_32s;
    for (const auto& p48 : result.seed_48s) {
      const auto attribution = internet.bgp().lookup(p48.base());
      if (attribution) seed_32s.push_back(attribution->bgp_prefix);
    }
    result.seed_32s = sorted_unique(std::move(seed_32s));
  }
  seed_span.stop();
  telemetry::Span expand_span{options.registry, "expand"};

  // ---- Stage 1 (§4.1): exhaustive /48 expansion of the seed /32s.
  container::FlatMap<net::MacAddress, std::vector<net::Prefix>,
                     net::MacAddressHash>
      expand_by_mac;
  {
    std::vector<engine::SweepUnit> units;
    units.reserve(result.seed_32s.size() * options.probes_per_48);
    for (const auto& p32 : result.seed_32s) {
      for (unsigned round = 0; round < options.probes_per_48; ++round) {
        units.push_back({p32, 48, sim::mix64(options.seed, 0xE49A, round)});
      }
    }
    const std::size_t stage_begin = result.observations.size();
    sweep(units);
    const ObservationStore& store = result.observations;
    for (std::size_t i = stage_begin; i < store.size(); ++i) {
      if (const auto mac = net::embedded_mac(store.response(i))) {
        expand_by_mac[*mac].push_back(net::Prefix{store.target(i), 48});
      }
    }
  }
  {
    std::vector<net::Prefix> expanded;
    for (auto& [mac, prefixes] : expand_by_mac) {
      const auto distinct = sorted_unique(std::move(prefixes));
      if (distinct.size() == 1) expanded.push_back(distinct.front());
    }
    result.expanded_48s = sorted_unique(std::move(expanded));
  }
  expand_span.stop();
  telemetry::Span density_span{options.registry, "density"};

  // ---- Stage 2 (§4.2): density classification, one probe per /56.
  {
    std::vector<engine::SweepUnit> units;
    units.reserve(result.expanded_48s.size());
    for (const auto& p48 : result.expanded_48s) {
      units.push_back({p48, 56, sim::mix64(options.seed, 0xDE45)});
    }
    const SweepIngest ingest = sweep(units);
    for (std::size_t u = 0; u < units.size(); ++u) {
      const net::Prefix p48 = result.expanded_48s[u];
      const UnitIngest& unit = ingest.units[u];
      const ObservationStore::View responsive =
          result.observations.view(unit.obs_begin, unit.obs_end);
      const DensityResult density = classify_density(
          p48, unit.sent, responsive, options.density_low_threshold);
      result.densities.push_back(density);
      switch (density.klass) {
        case DensityClass::kHigh:
          result.high_density_48s.push_back(p48);
          break;
        case DensityClass::kLow:
          result.low_density_48s.push_back(p48);
          break;
        case DensityClass::kUnresponsive:
          result.unresponsive_48s.push_back(p48);
          break;
      }
    }
  }
  density_span.stop();
  telemetry::Span rotation_span{options.registry, "rotation"};

  // ---- Stage 3 (§4.3): two same-seed snapshots, one probe per /64 of
  // every high-density /48, `snapshot_gap` apart.
  const auto sweep_snapshot = [&]() -> analysis::RowWindow {
    std::vector<engine::SweepUnit> units;
    units.reserve(result.high_density_48s.size());
    for (const auto& p48 : result.high_density_48s) {
      units.push_back({p48, 64, sim::mix64(options.seed, 0x5A59)});
    }
    const std::size_t stage_begin = result.observations.size();
    sweep(units);
    return analysis::RowWindow{stage_begin, result.observations.size()};
  };

  const sim::TimePoint snap1_start = clock.now();
  const analysis::RowWindow first_window = sweep_snapshot();
  clock.advance_to(snap1_start + options.snapshot_gap);
  const analysis::RowWindow second_window = sweep_snapshot();

  // One fused pass reconstructs both snapshots' <target, response> maps
  // via windowed replay instead of re-walking each snapshot's row range;
  // no attribution or sighting state is needed here.
  analysis::AnalysisOptions analysis_options;
  analysis_options.threads = options.threads;
  analysis_options.oversubscribe = options.oversubscribe;
  analysis_options.trace = options.trace;
  analysis_options.attribute = false;
  analysis_options.collect_sightings = false;
  analysis_options.windows = {first_window, second_window};
  const analysis::AggregateTable table = analysis::analyze(
      result.observations, nullptr, analysis_options, options.registry);

  result.verdicts =
      detect_rotation(table.window_snapshots[0], table.window_snapshots[1],
                      /*churn_threshold=*/0, options.registry);
  for (const auto& v : result.verdicts) {
    if (v.rotating) result.rotating_48s.push_back(v.prefix);
  }
  rotation_span.stop();

  // ---- Funnel accounting.
  result.probes_sent = prober.counters().sent - base_sent;
  result.total_addresses = result.observations.unique_responses();
  result.eui64_addresses = result.observations.unique_eui64_responses();
  result.unique_iids = result.observations.unique_eui64_iids();
  funnel_span.stop();

  if (options.registry != nullptr) {
    telemetry::Registry& reg = *options.registry;
    reg.gauge("funnel.probes").set_u64(result.probes_sent);
    reg.gauge("funnel.responses").set_u64(result.observations.size());
    reg.gauge("funnel.addresses").set_u64(result.total_addresses);
    reg.gauge("funnel.eui64_addresses").set_u64(result.eui64_addresses);
    reg.gauge("funnel.unique_iids").set_u64(result.unique_iids);
    reg.gauge("funnel.seed_48s").set_u64(result.seed_48s.size());
    reg.gauge("funnel.expanded_48s").set_u64(result.expanded_48s.size());
    reg.gauge("funnel.high_density_48s")
        .set_u64(result.high_density_48s.size());
    reg.gauge("funnel.rotating_48s").set_u64(result.rotating_48s.size());
  }
  if (options.journal != nullptr) {
    options.journal->event(
        "funnel",
        {{"probes", result.probes_sent},
         {"responses", result.observations.size()},
         {"addresses", result.total_addresses},
         {"eui64_addresses", result.eui64_addresses},
         {"unique_iids", result.unique_iids},
         {"seed_48s", result.seed_48s.size()},
         {"expanded_48s", result.expanded_48s.size()},
         {"high_density_48s", result.high_density_48s.size()},
         {"rotating_48s", result.rotating_48s.size()}});
    for (const auto& v : result.verdicts) {
      if (!v.rotating) continue;
      options.journal->event("rotation_window_detected",
                             {{"prefix", v.prefix.to_string()},
                              {"eui_targets", v.eui_targets},
                              {"changed", v.changed}});
    }
  }
  return result;
}

}  // namespace scent::core
