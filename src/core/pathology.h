// pathology.h - anomalous EUI-64 behaviors (§5.5).
//
// Not every EUI-64 IID is a clean per-customer identifier. The paper's
// campaign surfaced three pathologies, all of which this module detects
// from the observation corpus alone:
//   * default MACs (00:00:00:00:00:00 and friends) appearing in many ASes;
//   * vendor MAC reuse — the same IID observed in geographically distant
//     ASes *concurrently*, day after day;
//   * provider switches — an IID that stops appearing in one AS and starts
//     in another (Figure 12), i.e. a customer changing ISPs.
// Distinguishing these matters: reused MACs are useless as tracking
// identifiers, while switches are a tracking signal in themselves.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/observation.h"
#include "netbase/mac_address.h"
#include "routing/bgp_table.h"
#include "sim/sim_time.h"

namespace scent::core {

enum class PathologyKind : std::uint8_t {
  kDefaultMac,      ///< A well-known filler MAC (e.g. all-zero).
  kConcurrentReuse, ///< Seen in >= 2 ASes on the same day, repeatedly.
  kProviderSwitch,  ///< Clean hand-off from one AS to another.
  kMultiAsOther,    ///< In multiple ASes without a clearer signature.
};

[[nodiscard]] constexpr std::string_view to_string(PathologyKind k) noexcept {
  switch (k) {
    case PathologyKind::kDefaultMac: return "default-mac";
    case PathologyKind::kConcurrentReuse: return "concurrent-reuse";
    case PathologyKind::kProviderSwitch: return "provider-switch";
    case PathologyKind::kMultiAsOther: return "multi-as-other";
  }
  return "unknown";
}

struct MultiAsIid {
  net::MacAddress mac;
  PathologyKind kind = PathologyKind::kMultiAsOther;
  std::vector<routing::Asn> asns;  ///< Distinct ASes, ascending.
  std::uint64_t concurrent_days = 0;  ///< Days observed in >= 2 ASes.

  /// For kProviderSwitch: the ASes before/after and the switch day.
  routing::Asn switch_from = 0;
  routing::Asn switch_to = 0;
  std::int64_t switch_day = 0;
};

struct PathologyOptions {
  /// Days with multi-AS sightings required to call it concurrent reuse.
  std::uint64_t min_concurrent_days = 3;
};

/// Scans the corpus for IIDs observed in more than one AS and classifies
/// each one.
[[nodiscard]] std::vector<MultiAsIid> find_multi_as_iids(
    const ObservationStore& store, const routing::BgpTable& bgp,
    const PathologyOptions& options = {});

/// Per-day, per-AS observation counts for one IID — the data behind
/// Figures 11 and 12.
struct DailyAsPresence {
  std::map<std::int64_t, std::set<routing::Asn>> days;  ///< day -> ASes seen.
};

[[nodiscard]] DailyAsPresence presence_of(net::MacAddress mac,
                                          const ObservationStore& store,
                                          const routing::BgpTable& bgp);

}  // namespace scent::core
