#include "core/io.h"

#include <charconv>
#include <cinttypes>
#include <cstdio>

namespace scent::core {
namespace {

/// Strips trailing CR/LF and surrounding spaces.
std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.back() == '\n' || s.back() == '\r' ||
                        s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  return s;
}

bool is_comment_or_blank(std::string_view s) {
  return s.empty() || s.front() == '#';
}

/// RAII stdio handle (the library avoids iostreams on data paths).
struct File {
  std::FILE* handle = nullptr;
  explicit File(const std::string& path, const char* mode)
      : handle(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (handle != nullptr) std::fclose(handle);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  explicit operator bool() const noexcept { return handle != nullptr; }

  /// Flush-closes. False if any prior write failed or the close itself
  /// did — stdio buffers writes, so a full disk often only surfaces here.
  bool close() {
    if (handle == nullptr) return false;
    const bool stream_clean = std::ferror(handle) == 0;
    const bool close_clean = std::fclose(handle) == 0;
    handle = nullptr;
    return stream_clean && close_clean;
  }
};

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

bool save_prefixes(const std::string& path,
                   const std::vector<net::Prefix>& prefixes,
                   const std::string& header_comment) {
  File file{path, "w"};
  if (!file) return false;
  bool ok = true;
  if (!header_comment.empty()) {
    ok = std::fprintf(file.handle, "# %s\n", header_comment.c_str()) >= 0 && ok;
  }
  for (const auto& prefix : prefixes) {
    ok = std::fprintf(file.handle, "%s\n", prefix.to_string().c_str()) >= 0 &&
         ok;
  }
  return file.close() && ok;
}

std::optional<std::vector<net::Prefix>> load_prefixes(const std::string& path,
                                                      LoadStats* stats) {
  File file{path, "r"};
  if (!file) return std::nullopt;
  std::vector<net::Prefix> prefixes;
  LoadStats local;
  char line[256];
  while (std::fgets(line, sizeof line, file.handle) != nullptr) {
    const std::string_view text = trim(line);
    if (is_comment_or_blank(text)) continue;
    if (const auto prefix = net::Prefix::parse(text)) {
      prefixes.push_back(*prefix);
      ++local.loaded;
    } else {
      ++local.skipped;
    }
  }
  if (stats != nullptr) *stats = local;
  return prefixes;
}

bool save_observations(const std::string& path,
                       const ObservationStore& store) {
  File file{path, "w"};
  if (!file) return false;
  bool ok =
      std::fprintf(file.handle, "target,response,type,code,time_us\n") >= 0;
  for (const auto& obs : store.all()) {
    ok = std::fprintf(file.handle, "%s,%s,%u,%u,%" PRId64 "\n",
                      obs.target.to_string().c_str(),
                      obs.response.to_string().c_str(),
                      static_cast<unsigned>(obs.type),
                      static_cast<unsigned>(obs.code), obs.time) >= 0 &&
         ok;
  }
  return file.close() && ok;
}

std::optional<Observation> parse_observation_row(std::string_view line) {
  const std::string_view text = trim(line);
  // Split into exactly five comma-separated fields.
  std::string_view fields[5];
  std::size_t field = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == ',') {
      if (field >= 5) return std::nullopt;  // too many fields
      fields[field++] = text.substr(start, i - start);
      start = i + 1;
    }
  }
  if (field != 5) return std::nullopt;

  const auto target = net::Ipv6Address::parse(fields[0]);
  const auto response = net::Ipv6Address::parse(fields[1]);
  const auto type = parse_u64(fields[2]);
  const auto code = parse_u64(fields[3]);
  if (!target || !response || !type || !code || *type > 255 || *code > 255) {
    return std::nullopt;
  }
  // time_us may be negative in principle; parse sign manually.
  std::string_view time_text = fields[4];
  bool negative = false;
  if (!time_text.empty() && time_text.front() == '-') {
    negative = true;
    time_text.remove_prefix(1);
  }
  const auto magnitude = parse_u64(time_text);
  if (!magnitude) return std::nullopt;

  Observation obs;
  obs.target = *target;
  obs.response = *response;
  obs.type = static_cast<wire::Icmpv6Type>(*type);
  obs.code = static_cast<std::uint8_t>(*code);
  obs.time = negative ? -static_cast<sim::TimePoint>(*magnitude)
                      : static_cast<sim::TimePoint>(*magnitude);
  return obs;
}

std::optional<ObservationStore> load_observations(const std::string& path,
                                                  LoadStats* stats) {
  File file{path, "r"};
  if (!file) return std::nullopt;
  ObservationStore store;
  LoadStats local;
  char line[512];
  bool first = true;
  while (std::fgets(line, sizeof line, file.handle) != nullptr) {
    const std::string_view text = trim(line);
    if (is_comment_or_blank(text)) continue;
    if (first && text.starts_with("target,")) {
      first = false;
      continue;  // header row
    }
    first = false;
    if (const auto obs = parse_observation_row(text)) {
      store.add(*obs);
      ++local.loaded;
    } else {
      ++local.skipped;
    }
  }
  if (stats != nullptr) *stats = local;
  return store;
}

}  // namespace scent::core
