// homogeneity.h - per-AS CPE manufacturer analysis (§5.1, Figure 4).
//
// Every EUI-64 response address embeds the CPE's MAC, whose OUI names the
// manufacturer. Grouping distinct IIDs by origin AS and counting vendors
// yields the paper's homogeneity index:
//   homogeneity(ASN) = max_vendor(unique IIDs of vendor / unique IIDs)
// High homogeneity (one vendor >= 80-90% of a network's fleet) is the norm,
// which helps attackers target vendor-specific vulnerabilities.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/observation.h"
#include "netbase/mac_address.h"
#include "oui/oui_registry.h"
#include "routing/bgp_table.h"

namespace scent::core {

struct VendorCount {
  std::string vendor;  ///< "(unknown)" for unregistered OUIs.
  std::size_t unique_iids = 0;
};

struct AsHomogeneity {
  routing::Asn asn = 0;
  std::string country;
  std::size_t unique_iids = 0;
  std::vector<VendorCount> vendors;  ///< Sorted descending by count.

  /// The homogeneity index: dominant vendor's share of unique IIDs.
  [[nodiscard]] double index() const noexcept {
    if (unique_iids == 0 || vendors.empty()) return 0.0;
    return static_cast<double>(vendors.front().unique_iids) /
           static_cast<double>(unique_iids);
  }

  [[nodiscard]] const std::string& dominant_vendor() const {
    static const std::string kNone = "(none)";
    return vendors.empty() ? kNone : vendors.front().vendor;
  }
};

/// Computes per-AS vendor distributions from a corpus. ASes with fewer than
/// `min_iids` distinct IIDs are excluded, as in the paper (< 100 IIDs skew
/// the distribution).
[[nodiscard]] std::vector<AsHomogeneity> analyze_homogeneity(
    const ObservationStore& store, const routing::BgpTable& bgp,
    const oui::Registry& registry, std::size_t min_iids = 100);

}  // namespace scent::core
