// rotation_detector.h - two-snapshot prefix-rotation detection (§4.3).
//
// Scan the same targets, in the same order, 24 hours apart. For every target
// whose response was an EUI-64 address in either snapshot, compare the
// <target, response> pairs: any difference — a different EUI-64, a
// disappearance, or a fresh appearance — marks the target's /48 as
// exhibiting rotation-like churn. The paper deliberately sets no churn
// threshold so gradual or non-uniform rotation still registers; this
// implementation exposes the threshold as a parameter (default 0) so the
// ablation bench can sweep it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "container/flat_hash.h"
#include "netbase/eui64.h"
#include "netbase/ipv6_address.h"
#include "netbase/prefix.h"
#include "probe/prober.h"
#include "telemetry/metrics.h"

namespace scent::corpus {
class SnapshotReader;
}  // namespace scent::corpus

namespace scent::core {

/// A snapshot: target -> EUI-64 response address (non-EUI and silent
/// targets are simply absent). Flat-map backed: iteration is in target
/// first-recording order, i.e. probe order — deterministic.
class Snapshot {
 public:
  using Map = container::FlatMap<net::Ipv6Address, net::Ipv6Address,
                                 net::Ipv6AddressHash>;

  void record(net::Ipv6Address target, net::Ipv6Address response) {
    if (net::is_eui64(response)) map_[target] = response;
  }

  void record_all(const std::vector<probe::ProbeResult>& results) {
    for (const auto& r : results) {
      if (r.responded) record(r.target, r.response_source);
    }
  }

  [[nodiscard]] const Map& map() const noexcept { return map_; }

 private:
  Map map_;
};

struct RotationVerdict {
  net::Prefix prefix;              ///< The /48 under test.
  std::uint64_t eui_targets = 0;   ///< Targets EUI-responsive in either snap.
  std::uint64_t changed = 0;       ///< Pairs that differ between snaps.
  bool rotating = false;
};

/// Compares two snapshots and classifies each /48 (grouping targets by
/// their covering /48). A /48 is flagged when the changed-pair count
/// exceeds `churn_threshold` (paper default: any change at all). With a
/// registry, bumps `rotation.checked_48s` / `rotation.rotating_48s` and
/// feeds the per-/48 churn percentage into `rotation.churn_pct`.
[[nodiscard]] std::vector<RotationVerdict> detect_rotation(
    const Snapshot& first, const Snapshot& second,
    std::uint64_t churn_threshold = 0,
    telemetry::Registry* registry = nullptr);

/// Incremental variant for longitudinal campaigns: diffs today's snapshot
/// against the *persisted* prior day, streaming the prior snapshot's
/// deduplicated EUI-pair section (already in Snapshot-map form, recorded at
/// write time) instead of holding two full stores in memory. Verdicts are
/// identical to detect_rotation(prior-day Snapshot, second) — the on-disk
/// pair section has exactly the in-memory Snapshot's semantics. Returns
/// nullopt if the reader fails (unopened file or corrupt section); telemetry
/// is untouched in that case.
[[nodiscard]] std::optional<std::vector<RotationVerdict>>
detect_rotation_incremental(corpus::SnapshotReader& prior,
                            const Snapshot& second,
                            std::uint64_t churn_threshold = 0,
                            telemetry::Registry* registry = nullptr);

}  // namespace scent::core
