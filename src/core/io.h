// io.h - text persistence for measurement artifacts.
//
// Campaigns are expensive; their outputs are plain data. This module
// serializes prefix target lists (e.g. the funnel's rotating /48s) and
// observation corpora as line-oriented text that diffs, greps, and
// survives versioning. Parsers are tolerant: blank lines and '#' comments
// are skipped, malformed lines are counted and reported, never fatal
// (real measurement data is messy).
//
// The observation CSV is the *debug/export* path: the default persistence
// format for corpora is the binary columnar snapshot in corpus/snapshot.h
// (checksummed, 42 B/row, lazily readable per column), which campaigns
// write automatically when checkpointing. The two are interchangeable —
// a round-trip equivalence test keeps them from drifting — but the CSV
// exists for eyeballs and external tools, not for the data plane.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/observation.h"
#include "netbase/prefix.h"

namespace scent::core {

struct LoadStats {
  std::size_t loaded = 0;
  std::size_t skipped = 0;  ///< Malformed (non-blank, non-comment) lines.
};

/// Writes one prefix per line. Returns false on any I/O failure, including
/// buffered writes that only fail at flush/close time (disk full).
bool save_prefixes(const std::string& path,
                   const std::vector<net::Prefix>& prefixes,
                   const std::string& header_comment = {});

/// Reads a prefix-per-line file; nullopt if the file cannot be opened.
std::optional<std::vector<net::Prefix>> load_prefixes(const std::string& path,
                                                      LoadStats* stats = nullptr);

/// Observation CSV: `target,response,type,code,time_us` with a header row.
/// Returns false on any I/O failure, including failures surfacing at close.
bool save_observations(const std::string& path, const ObservationStore& store);

/// Loads an observation CSV; nullopt if the file cannot be opened.
std::optional<ObservationStore> load_observations(const std::string& path,
                                                  LoadStats* stats = nullptr);

/// Parses one observation CSV row (exposed for tests and other ingesters).
std::optional<Observation> parse_observation_row(std::string_view line);

}  // namespace scent::core
