#include "core/inference.h"

namespace scent::core {

void AllocationSizeInference::observe(net::Ipv6Address target,
                                      net::Ipv6Address response) {
  const auto mac = net::embedded_mac(response);
  if (!mac) return;
  const std::uint64_t network = target.network();
  auto [it, created] = spans_.try_emplace(*mac, Span{network, network});
  if (!created) {
    it->second.lo = std::min(it->second.lo, network);
    it->second.hi = std::max(it->second.hi, network);
  }
}

std::optional<unsigned> AllocationSizeInference::length_for(
    net::MacAddress mac) const {
  const auto it = spans_.find(mac);
  if (it == spans_.end()) return std::nullopt;
  return span_to_prefix_length(it->second.lo, it->second.hi);
}

std::vector<unsigned> AllocationSizeInference::per_device_lengths() const {
  std::vector<unsigned> out;
  out.reserve(spans_.size());
  for (const auto& [mac, span] : spans_) {
    out.push_back(span_to_prefix_length(span.lo, span.hi));
  }
  return out;
}

void RotationPoolInference::observe(net::Ipv6Address response) {
  const auto mac = net::embedded_mac(response);
  if (!mac) return;
  const std::uint64_t network = response.network();
  auto [it, created] = spans_.try_emplace(*mac, Span{network, network});
  if (!created) {
    it->second.lo = std::min(it->second.lo, network);
    it->second.hi = std::max(it->second.hi, network);
  }
}

std::optional<unsigned> RotationPoolInference::length_for(
    net::MacAddress mac) const {
  const auto it = spans_.find(mac);
  if (it == spans_.end()) return std::nullopt;
  return span_to_prefix_length(it->second.lo, it->second.hi);
}

std::vector<unsigned> RotationPoolInference::per_device_lengths() const {
  std::vector<unsigned> out;
  out.reserve(spans_.size());
  for (const auto& [mac, span] : spans_) {
    out.push_back(span_to_prefix_length(span.lo, span.hi));
  }
  return out;
}

std::optional<net::Prefix> RotationPoolInference::pool_for(
    net::MacAddress mac, unsigned pool_length) const {
  const auto it = spans_.find(mac);
  if (it == spans_.end()) return std::nullopt;
  // Align the observed low end down to the pool size; if the observed high
  // end spills past that aligned block (the device straddled an alignment
  // boundary), widen to the next shorter aligned prefix that covers both.
  unsigned length = pool_length;
  for (;;) {
    const net::Prefix candidate{net::Ipv6Address{it->second.lo, 0}, length};
    if (candidate.contains(net::Ipv6Address{it->second.hi, 0})) {
      return candidate;
    }
    if (length == 0) return std::nullopt;
    --length;
  }
}

}  // namespace scent::core
