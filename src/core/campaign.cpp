#include "core/campaign.h"

#include "container/flat_hash.h"
#include "core/sweep_ingest.h"
#include "engine/sweep.h"
#include "sim/rng.h"
#include "telemetry/span.h"

namespace scent::core {

CampaignResult run_campaign(sim::Internet& internet, sim::VirtualClock& clock,
                            probe::Prober& prober,
                            const std::vector<net::Prefix>& targets,
                            const CampaignOptions& options) {
  CampaignResult result;
  const std::uint64_t base_sent = prober.counters().sent;
  const std::uint64_t base_received = prober.counters().received;
  telemetry::Span campaign_span{options.registry, "campaign"};

  const std::int64_t first_day = sim::day_of(clock.now());

  // Day 0: full per-/64 sweep; feeds Algorithm 1 per AS.
  std::map<routing::Asn, AllocationSizeInference> per_as_alloc;

  engine::SweepOptions sweep_options;
  sweep_options.threads = options.threads;
  sweep_options.seed = options.seed;
  sweep_options.merge_registry = prober.telemetry();

  std::vector<engine::SweepUnit> day_units;
  for (unsigned day = 0; day < options.days; ++day) {
    const std::int64_t abs_day = first_day + day;
    clock.advance_to(abs_day * sim::kDay + options.scan_time_of_day);
    telemetry::Span day_span{options.registry, "day"};

    // The prober's counters are the day's probe/response ledger. The
    // engine's shard traffic is folded back into them after each sweep,
    // keeping the ledger identical to a serial run's.
    const std::uint64_t day_base_sent = prober.counters().sent;
    const std::uint64_t day_base_received = prober.counters().received;

    DaySummary summary;
    summary.day = abs_day;
    container::FlatSet<net::MacAddress, net::MacAddressHash> day_macs;

    day_units.clear();
    day_units.reserve(targets.size());
    for (const auto& p48 : targets) {
      unsigned granularity = 64;
      if (day > 0 && options.allocation_granularity_after_day0) {
        const auto attribution = internet.bgp().lookup(p48.base());
        if (attribution) {
          const auto it =
              result.allocation_length_by_as.find(attribution->origin_asn);
          if (it != result.allocation_length_by_as.end()) {
            granularity = it->second;
          }
        }
      }
      // Same seed every day: identical targets, identical order (§5).
      day_units.push_back(
          {p48, granularity,
           sim::mix64(options.seed, p48.base().network(), granularity)});
    }

    const std::size_t day_obs_begin = result.observations.size();
    {
      telemetry::Span sweep_span{options.registry, "sweep"};
      const SweepIngest ingest =
          sweep_into_store(internet, clock, day_units, prober.options(),
                           sweep_options, result.observations);
      prober.accumulate_counters(ingest.counters);
    }

    {
      telemetry::Span ingest_span{options.registry, "ingest"};
      const ObservationStore& store = result.observations;
      for (std::size_t i = day_obs_begin; i < store.size(); ++i) {
        if (const auto mac = net::embedded_mac(store.response(i))) {
          day_macs.insert(*mac);
        }
      }
    }

    summary.probes = prober.counters().sent - day_base_sent;
    summary.responses = prober.counters().received - day_base_received;
    summary.unique_eui64_iids = day_macs.size();
    result.daily.push_back(summary);

    if (day == 0) {
      // Run Algorithm 1 on the full-granularity day and freeze the per-AS
      // allocation sizes used by subsequent days (and by trackers).
      telemetry::Span infer_span{options.registry, "alloc_infer"};
      const ObservationStore& store = result.observations;
      routing::AttributionCache attributions;
      for (std::size_t i = 0; i < store.size(); ++i) {
        const auto* ad = internet.bgp().attribute(store.response(i),
                                                  attributions);
        if (ad == nullptr) continue;
        per_as_alloc[ad->origin_asn].observe(store.target(i),
                                             store.response(i));
      }
      for (const auto& [asn, inference] : per_as_alloc) {
        if (const auto median = inference.median_length()) {
          result.allocation_length_by_as[asn] = *median;
        }
      }
    }

    if (options.journal != nullptr) {
      options.journal->event("day_funnel",
                             {{"day", summary.day},
                              {"probes", summary.probes},
                              {"responses", summary.responses},
                              {"unique_iids", summary.unique_eui64_iids}});
    }
  }

  result.probes_sent = prober.counters().sent - base_sent;
  result.responses = prober.counters().received - base_received;
  campaign_span.stop();

  if (options.registry != nullptr) {
    telemetry::Registry& reg = *options.registry;
    reg.gauge("campaign.days").set_u64(options.days);
    reg.gauge("campaign.probes").set_u64(result.probes_sent);
    reg.gauge("campaign.responses").set_u64(result.responses);
    reg.gauge("campaign.eui64_addresses")
        .set_u64(result.observations.unique_eui64_responses());
    reg.gauge("campaign.unique_iids")
        .set_u64(result.observations.unique_eui64_iids());
  }
  return result;
}

}  // namespace scent::core
