#include "core/campaign.h"

#include <algorithm>
#include <map>
#include <memory>

#include "analysis/derive.h"
#include "analysis/engine.h"
#include "container/flat_hash.h"
#include "core/sweep_ingest.h"
#include "corpus/checkpoint.h"
#include "corpus/snapshot.h"
#include "engine/sweep.h"
#include "serve/serve_table.h"
#include "sim/rng.h"
#include "telemetry/span.h"

namespace scent::core {
namespace {

/// Order-sensitive digest of the target list. A checkpoint resumed against
/// different targets (or the same targets in a different order) would not
/// replay the same campaign, so the manifest pins this.
std::uint64_t targets_digest(const std::vector<net::Prefix>& targets) {
  std::uint64_t digest = 0x5C37D16E57ULL;
  for (const auto& prefix : targets) {
    digest = sim::mix64(digest, prefix.base().network(), prefix.base().iid());
    digest = sim::mix64(digest, prefix.length());
  }
  return digest;
}

/// Checkpoint manifests keep std::map (the on-disk ordering contract);
/// the in-memory result is flat-map backed. Both iterate ascending by
/// ASN, so the conversions preserve byte-identical serialization.
std::map<routing::Asn, unsigned> to_manifest_map(
    const container::FlatMap<routing::Asn, unsigned>& lengths) {
  std::map<routing::Asn, unsigned> out;
  for (const auto& [asn, length] : lengths) out.emplace(asn, length);
  return out;
}

container::FlatMap<routing::Asn, unsigned> from_manifest_map(
    const std::map<routing::Asn, unsigned>& lengths) {
  container::FlatMap<routing::Asn, unsigned> out;
  out.reserve(lengths.size());
  for (const auto& [asn, length] : lengths) out[asn] = length;
  return out;
}

/// Result of replaying a persisted checkpoint chain into a fresh result.
struct ResumeState {
  unsigned completed_days = 0;     ///< Days restored (start the loop here).
  std::int64_t first_day = 0;      ///< Absolute day index of campaign day 0.
  sim::TimePoint clock_cursor = 0; ///< Clock after the last restored day.
  std::uint64_t probes = 0;        ///< Restored probe/response totals —
  std::uint64_t responses = 0;     ///< the prober's counters died with the
                                   ///< interrupted process.
  std::uint64_t blocks_read = 0;   ///< v2 snapshot blocks decoded/skipped
  std::uint64_t blocks_skipped = 0;///< across the replayed chain.
};

/// Replays a prior checkpoint into `result`. Returns nullopt — with
/// `result` reset — if the manifest is incompatible with `options` or any
/// snapshot in the chain fails to load; the caller then starts over.
std::optional<ResumeState> replay_checkpoint(
    const corpus::CampaignCheckpoint& prior, const CampaignOptions& options,
    std::uint64_t digest, CampaignResult& result,
    trace::TraceRecorder* recorder, trace::QuantileSketch* read_sketch) {
  const bool compatible =
      prior.seed == options.seed &&
      prior.scan_time_of_day == options.scan_time_of_day &&
      prior.allocation_granularity_after_day0 ==
          options.allocation_granularity_after_day0 &&
      prior.targets_digest == digest;
  if (!compatible) return std::nullopt;

  // Replay at most options.days — resuming with a shorter horizon than the
  // stored chain just truncates it; a longer one extends the campaign.
  const auto replay = static_cast<unsigned>(
      std::min<std::size_t>(prior.days.size(), options.days));

  ResumeState state;
  state.first_day = prior.first_day;
  for (unsigned day = 0; day < replay; ++day) {
    const corpus::CheckpointDay& record = prior.days[day];
    corpus::SnapshotReader reader;
    reader.set_trace(recorder, read_sketch);
    // Replay is a full-corpus load; fan v2 block decode across the sweep
    // worker count (a wall-clock knob — decoded rows are identical).
    reader.set_threads(options.threads);
    const std::size_t before = result.observations.size();
    if (!reader.open(options.checkpoint_dir + "/" + record.snapshot_file) ||
        reader.rows() != record.rows ||
        !reader.read_into(result.observations)) {
      result = CampaignResult{};
      return std::nullopt;
    }
    state.blocks_read += reader.blocks_read();
    state.blocks_skipped += reader.blocks_skipped();
    if (result.observations.size() - before != record.rows) {
      result = CampaignResult{};
      return std::nullopt;
    }
    result.daily.push_back(DaySummary{record.day, record.probes,
                                      record.responses,
                                      record.unique_eui64_iids});
    state.probes += record.probes;
    state.responses += record.responses;
    state.clock_cursor = record.clock_us;
    ++state.completed_days;
  }
  if (state.completed_days > 0) {
    result.allocation_length_by_as =
        from_manifest_map(prior.allocation_length_by_as);
  }
  result.resumed_days = state.completed_days;
  return state;
}

}  // namespace

CampaignResult run_campaign(sim::Internet& internet, sim::VirtualClock& clock,
                            probe::Prober& prober,
                            const std::vector<net::Prefix>& targets,
                            const CampaignOptions& options) {
  CampaignResult result;
  const std::uint64_t base_sent = prober.counters().sent;
  const std::uint64_t base_received = prober.counters().received;
  telemetry::Span campaign_span{options.registry, "campaign"};

  // Failed journal writes surface in the telemetry summary, not just in
  // event()'s return value.
  if (options.journal != nullptr && options.registry != nullptr) {
    options.journal->set_drop_counter(
        &options.registry->counter("journal.dropped"));
  }

  // Driver-side flight recorder: campaign day phases as one trace lane,
  // stamped with the campaign clock's virtual time. Stage sketches live in
  // the registry so they merge/export like every other instrument.
  std::unique_ptr<trace::TraceRecorder> recorder;
  if (options.trace != nullptr) {
    recorder = std::make_unique<trace::TraceRecorder>(
        options.trace->recorder_capacity());
    recorder->set_clock(&clock);
  }
  telemetry::Registry* registry = options.registry;
  const auto stage_sketch =
      [registry](const char* name) -> trace::QuantileSketch* {
    return registry != nullptr ? &registry->sketch(name) : nullptr;
  };

  const bool checkpointing = !options.checkpoint_dir.empty();
  trace::QuantileSketch* read_sketch =
      checkpointing ? stage_sketch("snapshot.section_read_ns") : nullptr;
  trace::QuantileSketch* write_sketch =
      checkpointing ? stage_sketch("snapshot.section_write_ns") : nullptr;
  const std::uint64_t digest = targets_digest(targets);

  // Resume phase: replay any compatible checkpoint chain, then position
  // the clock where the interrupted run left it so the remaining days see
  // the exact virtual times an uninterrupted run would have.
  std::int64_t first_day = sim::day_of(clock.now());
  unsigned start_day = 0;
  std::uint64_t restored_probes = 0;
  std::uint64_t restored_responses = 0;
  std::uint64_t blocks_read = 0;
  std::uint64_t blocks_skipped = 0;
  corpus::CampaignCheckpoint manifest;
  if (checkpointing) {
    if (const auto prior = corpus::load_checkpoint(options.checkpoint_dir)) {
      const trace::ScopedSample resume_sample{recorder.get(), nullptr,
                                              "campaign.resume"};
      if (const auto resumed = replay_checkpoint(
              *prior, options, digest, result, recorder.get(), read_sketch)) {
        start_day = resumed->completed_days;
        first_day = resumed->first_day;
        restored_probes = resumed->probes;
        restored_responses = resumed->responses;
        blocks_read = resumed->blocks_read;
        blocks_skipped = resumed->blocks_skipped;
        if (start_day > 0) {
          clock.advance_to(resumed->clock_cursor);
          manifest.days.assign(prior->days.begin(),
                               prior->days.begin() + start_day);
          manifest.allocation_length_by_as = prior->allocation_length_by_as;
        }
        // Serve resume: re-apply the restored days as deltas, one per
        // day, in day order — only now that the whole replay validated
        // (a failed replay restarts the campaign, and must not leave
        // half a chain applied). Each day's rows sit at a known offset:
        // the chain records per-day row counts and replay appended them
        // in order into an initially-empty store.
        if (options.serve != nullptr && start_day > 0) {
          std::size_t row = 0;
          for (unsigned d = 0; d < start_day; ++d) {
            const corpus::CheckpointDay& record = prior->days[d];
            options.serve->apply(
                analysis::StoreInput{result.observations, row,
                                     row + record.rows},
                record.day);
            row += record.rows;
          }
        }
        if (options.journal != nullptr && start_day > 0) {
          options.journal->event(
              "campaign_resumed",
              {{"restored_days", std::uint64_t{start_day}},
               {"rows", std::uint64_t{result.observations.size()}},
               {"probes", restored_probes}});
        }
      } else if (options.journal != nullptr) {
        // Incompatible parameters or a broken snapshot chain: not this
        // campaign's checkpoint. Start over; day writes below replace it.
        options.journal->event("checkpoint_discarded",
                               {{"dir", options.checkpoint_dir}});
      }
    }
    manifest.seed = options.seed;
    manifest.first_day = first_day;
    manifest.scan_time_of_day = options.scan_time_of_day;
    manifest.allocation_granularity_after_day0 =
        options.allocation_granularity_after_day0;
    manifest.targets_digest = digest;
  }

  engine::SweepOptions sweep_options;
  sweep_options.threads = options.threads;
  sweep_options.oversubscribe = options.oversubscribe;
  sweep_options.pipeline = options.pipeline;
  sweep_options.queue_capacity = options.queue_capacity;
  sweep_options.seed = options.seed;
  sweep_options.merge_registry = prober.telemetry();
  sweep_options.trace = options.trace;

  std::uint64_t snapshot_bytes = 0;
  std::vector<engine::SweepUnit> day_units;
  for (unsigned day = start_day; day < options.days; ++day) {
    const std::int64_t abs_day = first_day + day;
    clock.advance_to(abs_day * sim::kDay + options.scan_time_of_day);
    telemetry::Span day_span{options.registry, "day"};
    const trace::ScopedSample day_sample{
        recorder.get(), stage_sketch("campaign.day_ns"), "campaign.day"};

    // The prober's counters are the day's probe/response ledger. The
    // engine's shard traffic is folded back into them after each sweep,
    // keeping the ledger identical to a serial run's.
    const std::uint64_t day_base_sent = prober.counters().sent;
    const std::uint64_t day_base_received = prober.counters().received;

    DaySummary summary;
    summary.day = abs_day;
    container::FlatSet<net::MacAddress, net::MacAddressHash> day_macs;

    day_units.clear();
    day_units.reserve(targets.size());
    for (const auto& p48 : targets) {
      unsigned granularity = 64;
      if (day > 0 && options.allocation_granularity_after_day0) {
        const auto attribution = internet.bgp().lookup(p48.base());
        if (attribution) {
          const auto it =
              result.allocation_length_by_as.find(attribution->origin_asn);
          if (it != result.allocation_length_by_as.end()) {
            granularity = it->second;
          }
        }
      }
      // Same seed every day: identical targets, identical order (§5).
      day_units.push_back(
          {p48, granularity,
           sim::mix64(options.seed, p48.base().network(), granularity)});
    }

    corpus::SnapshotWriter day_snapshot;
    day_snapshot.set_format_version(options.snapshot_version);
    // Block compression fans across the sweep worker count; the emitted
    // bytes are identical at any value (the v2 determinism contract).
    day_snapshot.set_threads(options.threads);
    day_snapshot.set_trace(recorder.get(), write_sketch);
    const std::size_t day_obs_begin = result.observations.size();
    analysis::AnalysisOptions analysis_options;
    analysis_options.threads = options.threads;
    analysis_options.oversubscribe = options.oversubscribe;
    analysis_options.collect_sightings = false;
    analysis_options.trace = options.trace;
    SweepAnalysis day0_analysis;
    SweepServe sweep_serve;
    sweep_serve.table = options.serve;
    sweep_serve.day = abs_day;
    {
      telemetry::Span sweep_span{options.registry, "sweep"};
      const trace::ScopedSample sweep_sample{
          recorder.get(), stage_sketch("campaign.sweep_ns"), "campaign.sweep"};
      corpus::SnapshotWriter* snapshot =
          checkpointing && result.checkpoint_ok ? &day_snapshot : nullptr;
      if (options.pipeline) {
        // Streamed day: the snapshot, MAC accounting and (on day 0) the
        // allocation-inference scan all ride the sweep's drain chain, so
        // they finish with the probing instead of after it.
        SweepFanout fanout;
        fanout.snapshot = snapshot;
        fanout.macs = &day_macs;
        if (options.serve != nullptr) fanout.serve = &sweep_serve;
        if (day == 0) {
          day0_analysis.bgp = &internet.bgp();
          day0_analysis.options = analysis_options;
          day0_analysis.registry = options.registry;
          fanout.analysis = &day0_analysis;
        }
        if (options.on_day_progress) {
          fanout.on_progress = [&options, abs_day](std::size_t rows) {
            options.on_day_progress(abs_day, rows);
          };
        }
        const SweepIngest ingest =
            sweep_into_store(internet, clock, day_units, prober.options(),
                             sweep_options, result.observations, fanout);
        prober.accumulate_counters(ingest.counters);
      } else {
        SweepFanout fanout;
        fanout.snapshot = snapshot;
        if (options.serve != nullptr) fanout.serve = &sweep_serve;
        const SweepIngest ingest =
            sweep_into_store(internet, clock, day_units, prober.options(),
                             sweep_options, result.observations, fanout);
        prober.accumulate_counters(ingest.counters);
      }
    }

    if (!options.pipeline) {
      telemetry::Span ingest_span{options.registry, "ingest"};
      const trace::ScopedSample ingest_sample{
          recorder.get(), stage_sketch("campaign.ingest_ns"),
          "campaign.ingest"};
      const ObservationStore& store = result.observations;
      for (std::size_t i = day_obs_begin; i < store.size(); ++i) {
        if (const auto mac = net::embedded_mac(store.response(i))) {
          day_macs.insert(*mac);
        }
      }
      if (options.on_day_progress) {
        options.on_day_progress(abs_day,
                                result.observations.size() - day_obs_begin);
      }
    }

    summary.probes = prober.counters().sent - day_base_sent;
    summary.responses = prober.counters().received - day_base_received;
    summary.unique_eui64_iids = day_macs.size();
    result.daily.push_back(summary);

    if (day == 0) {
      // Freeze the per-AS allocation sizes from Algorithm 1 on the
      // full-granularity day — used by subsequent days (and by trackers).
      // Day 0 swept into an empty store, so the day's rows are the whole
      // store: the barrier path scans it here with the fused sharded
      // analysis, while the streamed path already accumulated the same
      // table inside the probe shards and only derives the medians now.
      telemetry::Span infer_span{options.registry, "alloc_infer"};
      const trace::ScopedSample infer_sample{
          recorder.get(), stage_sketch("campaign.alloc_infer_ns"),
          "campaign.alloc_infer"};
      const analysis::AggregateTable table =
          options.pipeline
              ? std::move(day0_analysis.table)
              : analysis::analyze(result.observations, &internet.bgp(),
                                  analysis_options, options.registry);
      result.allocation_length_by_as =
          analysis::allocation_medians_by_as(table);
    }

    if (options.journal != nullptr) {
      options.journal->event("day_funnel",
                             {{"day", summary.day},
                              {"probes", summary.probes},
                              {"responses", summary.responses},
                              {"unique_iids", summary.unique_eui64_iids}});
    }

    // Commit phase: persist the day's snapshot, then the manifest that
    // references it. Ordering matters — a crash between the two leaves a
    // manifest that simply does not know about the newest snapshot yet.
    if (checkpointing && result.checkpoint_ok) {
      const trace::ScopedSample checkpoint_sample{
          recorder.get(), stage_sketch("campaign.checkpoint_ns"),
          "campaign.checkpoint"};
      corpus::CheckpointDay record;
      record.day = abs_day;
      record.probes = summary.probes;
      record.responses = summary.responses;
      record.unique_eui64_iids = summary.unique_eui64_iids;
      record.rows = day_snapshot.rows();
      record.clock_us = clock.now();
      record.snapshot_file = corpus::snapshot_file_name(day);
      manifest.allocation_length_by_as =
          to_manifest_map(result.allocation_length_by_as);

      const std::string snap_path =
          options.checkpoint_dir + "/" + record.snapshot_file;
      bool saved = day_snapshot.write(snap_path);
      if (saved) {
        snapshot_bytes += day_snapshot.encoded_size();
        manifest.days.push_back(std::move(record));
        saved = corpus::save_checkpoint(options.checkpoint_dir, manifest);
      }
      if (saved) {
        if (options.journal != nullptr) {
          options.journal->event("checkpoint_saved",
                                 {{"day", summary.day},
                                  {"file", manifest.days.back().snapshot_file},
                                  {"rows", manifest.days.back().rows}});
        }
      } else {
        // The campaign result in memory stays valid; the chain on disk is
        // no longer extendable, so stop paying for snapshot writes.
        result.checkpoint_ok = false;
        if (options.journal != nullptr) {
          options.journal->event("checkpoint_write_failed",
                                 {{"day", summary.day}});
        }
      }
    }

    if (options.on_day_complete) options.on_day_complete(summary);
  }

  result.probes_sent = restored_probes + prober.counters().sent - base_sent;
  result.responses =
      restored_responses + prober.counters().received - base_received;
  campaign_span.stop();

  if (options.trace != nullptr && recorder != nullptr) {
    options.trace->drain("campaign", *recorder);
  }

  if (options.registry != nullptr) {
    telemetry::Registry& reg = *options.registry;
    reg.gauge("campaign.days").set_u64(options.days);
    reg.gauge("campaign.probes").set_u64(result.probes_sent);
    reg.gauge("campaign.responses").set_u64(result.responses);
    reg.gauge("campaign.eui64_addresses")
        .set_u64(result.observations.unique_eui64_responses());
    reg.gauge("campaign.unique_iids")
        .set_u64(result.observations.unique_eui64_iids());
    if (checkpointing) {
      reg.gauge("corpus.checkpoint_days").set_u64(manifest.days.size());
      reg.gauge("corpus.restored_days").set_u64(start_day);
      reg.gauge("corpus.snapshot_rows")
          .set_u64(result.observations.size());
      reg.gauge("corpus.snapshot_bytes").set_u64(snapshot_bytes);
      reg.gauge("corpus.blocks_read").set_u64(blocks_read);
      reg.gauge("corpus.blocks_skipped").set_u64(blocks_skipped);
    }
  }
  return result;
}

}  // namespace scent::core
