#include "core/campaign.h"

#include <unordered_set>

#include "probe/target_generator.h"
#include "sim/rng.h"

namespace scent::core {
namespace {

/// Sweeps one /48 at the given subnet granularity, recording responsive
/// probes into the store and the day's summary.
void sweep_prefix(probe::Prober& prober, net::Prefix prefix,
                  unsigned sub_length, std::uint64_t seed,
                  ObservationStore& store, DaySummary& summary,
                  std::unordered_set<net::MacAddress, net::MacAddressHash>&
                      day_macs) {
  probe::SubnetTargets targets{prefix, sub_length, seed};
  net::Ipv6Address target;
  while (targets.next(target)) {
    ++summary.probes;
    const auto r = prober.probe_one(target);
    if (!r.responded) continue;
    ++summary.responses;
    store.add(r);
    if (const auto mac = net::embedded_mac(r.response_source)) {
      day_macs.insert(*mac);
    }
  }
}

}  // namespace

CampaignResult run_campaign(sim::Internet& internet, sim::VirtualClock& clock,
                            probe::Prober& prober,
                            const std::vector<net::Prefix>& targets,
                            const CampaignOptions& options) {
  CampaignResult result;
  const std::uint64_t base_sent = prober.counters().sent;
  const std::uint64_t base_received = prober.counters().received;

  const std::int64_t first_day = sim::day_of(clock.now());

  // Day 0: full per-/64 sweep; feeds Algorithm 1 per AS.
  AllocationSizeInference global_alloc;
  std::map<routing::Asn, AllocationSizeInference> per_as_alloc;

  for (unsigned day = 0; day < options.days; ++day) {
    const std::int64_t abs_day = first_day + day;
    clock.advance_to(abs_day * sim::kDay + options.scan_time_of_day);

    DaySummary summary;
    summary.day = abs_day;
    std::unordered_set<net::MacAddress, net::MacAddressHash> day_macs;

    for (const auto& p48 : targets) {
      unsigned granularity = 64;
      if (day > 0 && options.allocation_granularity_after_day0) {
        const auto attribution = internet.bgp().lookup(p48.base());
        if (attribution) {
          const auto it =
              result.allocation_length_by_as.find(attribution->origin_asn);
          if (it != result.allocation_length_by_as.end()) {
            granularity = it->second;
          }
        }
      }
      // Same seed every day: identical targets, identical order (§5).
      sweep_prefix(prober, p48, granularity,
                   sim::mix64(options.seed, p48.base().network(), granularity),
                   result.observations, summary, day_macs);
    }

    summary.unique_eui64_iids = day_macs.size();
    result.daily.push_back(summary);

    if (day == 0) {
      // Run Algorithm 1 on the full-granularity day and freeze the per-AS
      // allocation sizes used by subsequent days (and by trackers).
      for (const auto& obs : result.observations.all()) {
        const auto attribution = internet.bgp().lookup(obs.response);
        if (!attribution) continue;
        per_as_alloc[attribution->origin_asn].observe(obs.target,
                                                      obs.response);
      }
      for (const auto& [asn, inference] : per_as_alloc) {
        if (const auto median = inference.median_length()) {
          result.allocation_length_by_as[asn] = *median;
        }
      }
    }
  }

  result.probes_sent = prober.counters().sent - base_sent;
  result.responses = prober.counters().received - base_received;
  return result;
}

}  // namespace scent::core
