// sweep_ingest.h - engine-backed sweeping straight into an ObservationStore.
//
// The bridge between the engine's sharded executor and the corpus every
// inference consumes: each shard streams its responsive results into a
// shard-local ObservationStore (no shared mutable state on the hot path),
// and the shards are merged in shard order after the join. Because shards
// own contiguous unit ranges, the merged store's observation sequence is
// identical to a single-threaded sweep over the same unit list — the
// per-unit [begin, end) ranges returned here let funnel stages slice the
// corpus exactly as the serial code sliced its per-unit result vectors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/observation.h"
#include "engine/executor.h"
#include "engine/sweep.h"
#include "probe/prober.h"
#include "sim/internet.h"
#include "sim/sim_time.h"

namespace scent::corpus {
class SnapshotWriter;
}  // namespace scent::corpus

namespace scent::core {

/// One sweep unit's ledger after ingest.
struct UnitIngest {
  std::uint64_t sent = 0;
  std::uint64_t responded = 0;
  /// The unit's observations occupy [obs_begin, obs_end) in the target
  /// store (responsive probes only, in probe order).
  std::size_t obs_begin = 0;
  std::size_t obs_end = 0;
};

struct SweepIngest {
  std::vector<UnitIngest> units;      ///< Indexed like the input unit list.
  probe::Prober::Counters counters;   ///< Aggregate traffic, all shards.
  unsigned threads_used = 1;
};

/// Runs `units` through the sharded executor and appends every responsive
/// result to `store` in serial order. The caller's clock ends at the
/// schedule end; Internet stats absorb all shard traffic.
///
/// With a `snapshot` writer, each shard's slice is also streamed into the
/// writer at merge time (shard order == serial order), so a checkpointing
/// campaign persists the day without a second pass over the merged store.
SweepIngest sweep_into_store(sim::Internet& internet, sim::VirtualClock& clock,
                             std::span<const engine::SweepUnit> units,
                             const probe::ProberOptions& prober_options,
                             const engine::SweepOptions& options,
                             ObservationStore& store,
                             corpus::SnapshotWriter* snapshot = nullptr);

}  // namespace scent::core
