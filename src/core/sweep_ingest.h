// sweep_ingest.h - engine-backed sweeping straight into an ObservationStore.
//
// The bridge between the engine's sharded executor and the corpus every
// inference consumes. Two schedulers share one contract:
//
//   * Barrier (SweepOptions::pipeline == false): each shard streams its
//     responsive results into a shard-local ObservationStore, and the
//     shards are merged in shard order after the join — then the optional
//     fan-out consumers (snapshot writer, fused analysis, day accounting)
//     run over the appended rows.
//
//   * Streamed (pipeline == true, DESIGN.md §5i): probe shards re-batch
//     their results into ObservationBatches and push them through bounded
//     queues into a chain of drain stages — columnar ingest → snapshot →
//     day accounting — that runs concurrently with the probing, consuming
//     per-shard queues in shard order (the ordered drain points). The
//     fused analysis accumulates inside each probe shard and merges in
//     shard order after the join.
//
// Because shards own contiguous unit ranges and every drain consumes them
// in shard order, the merged store's observation sequence — and the
// snapshot writer's byte stream, and the aggregate table — is identical
// to a single-threaded sweep over the same unit list under either
// scheduler. The per-unit [begin, end) ranges returned here let funnel
// stages slice the corpus exactly as the serial code sliced its per-unit
// result vectors.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "analysis/engine.h"
#include "container/flat_hash.h"
#include "core/observation.h"
#include "engine/executor.h"
#include "engine/sweep.h"
#include "netbase/mac_address.h"
#include "probe/prober.h"
#include "routing/bgp_table.h"
#include "sim/internet.h"
#include "sim/sim_time.h"

namespace scent::corpus {
class SnapshotWriter;
}  // namespace scent::corpus

namespace scent::serve {
class ServeTable;
}  // namespace scent::serve

namespace scent::core {

/// One sweep unit's ledger after ingest.
struct UnitIngest {
  std::uint64_t sent = 0;
  std::uint64_t responded = 0;
  /// The unit's observations occupy [obs_begin, obs_end) in the target
  /// store (responsive probes only, in probe order).
  std::size_t obs_begin = 0;
  std::size_t obs_end = 0;
};

struct SweepIngest {
  std::vector<UnitIngest> units;      ///< Indexed like the input unit list.
  probe::Prober::Counters counters;   ///< Aggregate traffic, all shards.
  unsigned threads_used = 1;
};

/// A fused-analysis request riding along with a sweep: the swept rows are
/// accumulated into `table` as they are produced (inside the probe shards
/// when streaming, in a post-merge pass behind the barrier) — identical
/// to running analysis::analyze over the appended row range afterwards.
/// options.windows must be empty: global row indices do not exist until
/// the drain has run, so window snapshots cannot ride a streamed sweep.
struct SweepAnalysis {
  const routing::BgpTable* bgp = nullptr;
  analysis::AnalysisOptions options;
  telemetry::Registry* registry = nullptr;
  analysis::AggregateTable table;  ///< Out: filled by sweep_into_store.
};

/// A serve-sink request riding along with a sweep: the swept rows become
/// one AggregateDelta applied to `table` as day `day` — scanned post-merge
/// behind the barrier, accumulated inside each probe shard when streaming
/// (serve::DeltaShards merged in shard order) — identical either way to
/// table->apply(StoreInput over the appended rows, day). The apply (and
/// hence the version publish) happens only after the sweep fully drains;
/// an aborted sweep leaves the ServeTable on its previous version.
struct SweepServe {
  serve::ServeTable* table = nullptr;
  std::int64_t day = 0;
};

/// Optional consumers fanned out from one sweep's observation stream.
/// All of them see exactly the rows this sweep appends, in serial order,
/// under either scheduler.
struct SweepFanout {
  /// Persist the swept rows (the checkpointing campaign's day snapshot).
  corpus::SnapshotWriter* snapshot = nullptr;
  /// Accumulate the swept rows into an aggregate table (campaign day 0).
  SweepAnalysis* analysis = nullptr;
  /// Collect the distinct embedded MACs among the swept rows (the
  /// campaign's per-day unique-IID accounting).
  container::FlatSet<net::MacAddress, net::MacAddressHash>* macs = nullptr;
  /// Apply the swept rows as one day's delta to a maintained ServeTable
  /// (the campaign's serve sink).
  const SweepServe* serve = nullptr;
  /// Progress hook: called with the cumulative number of swept rows that
  /// have fully drained (streamed: after each batch clears the last drain
  /// stage; barrier: once, after the merge). Runs on a drain thread in
  /// streamed mode. Throwing aborts the sweep — queues close, every stage
  /// unwinds, and the exception propagates to the caller with the store
  /// holding a partial day (the kill-and-resume harness's mid-day hook).
  std::function<void(std::size_t rows_drained)> on_progress;
};

/// Runs `units` through the sharded executor and appends every responsive
/// result to `store` in serial order, fanning the stream out to the
/// consumers in `fanout`. The caller's clock ends at the schedule end;
/// Internet stats absorb all shard traffic. SweepOptions::pipeline picks
/// the scheduler (see the file comment); results are bit-identical.
SweepIngest sweep_into_store(sim::Internet& internet, sim::VirtualClock& clock,
                             std::span<const engine::SweepUnit> units,
                             const probe::ProberOptions& prober_options,
                             const engine::SweepOptions& options,
                             ObservationStore& store,
                             const SweepFanout& fanout);

/// Convenience overload: snapshot-only fan-out (or none).
SweepIngest sweep_into_store(sim::Internet& internet, sim::VirtualClock& clock,
                             std::span<const engine::SweepUnit> units,
                             const probe::ProberOptions& prober_options,
                             const engine::SweepOptions& options,
                             ObservationStore& store,
                             corpus::SnapshotWriter* snapshot = nullptr);

}  // namespace scent::core
