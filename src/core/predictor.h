// predictor.h - next-prefix prediction for stride rotators (§5.4).
//
// Figure 9 shows AS8881 advancing each customer's /64 by a constant stride
// every day, wrapping modulo the /46 rotation pool. An attacker who has
// observed a device in two or more prefixes can therefore estimate the
// stride and *predict* where the device will be tomorrow — collapsing the
// tracking search from "the whole pool" to a handful of candidate
// allocations. This module fits that model to an observed
// (day, /64-network) series and scores its own confidence.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "netbase/prefix.h"
#include "sim/sim_time.h"

namespace scent::core {

/// One sighting of a device: the day and the /64 network it occupied.
struct Sighting {
  std::int64_t day = 0;
  std::uint64_t network = 0;  ///< Upper 64 bits of the observed address.
};

struct StrideModel {
  net::Prefix pool;          ///< The rotation pool the model is relative to.
  std::uint64_t stride = 0;  ///< Slots (allocation units) advanced per day.
  unsigned allocation_length = 64;
  double support = 0.0;  ///< Fraction of consecutive-sighting pairs the
                         ///< fitted stride explains.

  /// Predicted slot index for a given day (wraps modulo the pool; works for
  /// days before the anchor too).
  [[nodiscard]] std::uint64_t predict_slot(std::int64_t day) const noexcept;

  /// Predicted allocation prefix for a given day.
  [[nodiscard]] net::Prefix predict_allocation(std::int64_t day) const {
    return pool.subnet(allocation_length, net::Uint128{predict_slot(day)});
  }

  [[nodiscard]] std::uint64_t slots() const noexcept {
    const unsigned bits = allocation_length - pool.length();
    return std::uint64_t{1} << (bits > 40 ? 40 : bits);
  }

  std::uint64_t anchor_slot = 0;
  std::int64_t anchor_day = 0;
};

/// Fits a constant-stride-mod-pool model to a device's sightings. Requires
/// at least two sightings in distinct slots; returns nullopt when the data
/// is non-rotating or inconsistent (support < min_support).
[[nodiscard]] std::optional<StrideModel> fit_stride(
    const std::vector<Sighting>& sightings, net::Prefix pool,
    unsigned allocation_length, double min_support = 0.6);

}  // namespace scent::core
