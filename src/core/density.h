// density.h - EUI-64 density classification of candidate /48s (§4.2).
//
// The discovery funnel probes one address per /56 of each candidate /48 and
// counts distinct EUI-64 response addresses. Density = unique EUI-64
// responses / probes sent. Prefixes with <= 2 unique responses (< 0.01 of
// 256 probes) are "low density" — typically a /48 delegated whole to one
// site or load-balanced across two interfaces — and are dropped from the
// (expensive) per-/64 rotation probing that follows.
#pragma once

#include <cstdint>
#include <vector>

#include "container/flat_hash.h"
#include "core/observation.h"
#include "netbase/eui64.h"
#include "netbase/prefix.h"
#include "probe/prober.h"

namespace scent::core {

enum class DensityClass : std::uint8_t {
  kUnresponsive,  ///< No responses at all.
  kLow,           ///< <= low_threshold unique EUI-64 responders.
  kHigh,          ///< More: worth exhaustive probing.
};

struct DensityResult {
  net::Prefix prefix;
  std::uint64_t probes_sent = 0;
  std::uint64_t responses = 0;
  std::uint64_t unique_eui64 = 0;
  DensityClass klass = DensityClass::kUnresponsive;

  [[nodiscard]] double density() const noexcept {
    return probes_sent == 0
               ? 0.0
               : static_cast<double>(unique_eui64) /
                     static_cast<double>(probes_sent);
  }
};

/// Classifies one candidate prefix from a completed sweep's results.
/// `probes_sent` is the number of probes the sweep issued into the prefix.
[[nodiscard]] inline DensityResult classify_density(
    net::Prefix prefix, std::uint64_t probes_sent,
    const std::vector<probe::ProbeResult>& responsive,
    std::uint64_t low_threshold = 2) {
  DensityResult result;
  result.prefix = prefix;
  result.probes_sent = probes_sent;
  container::FlatSet<net::Ipv6Address, net::Ipv6AddressHash> eui;
  for (const auto& r : responsive) {
    if (!r.responded) continue;
    ++result.responses;
    if (net::is_eui64(r.response_source)) eui.insert(r.response_source);
  }
  result.unique_eui64 = eui.size();
  if (result.responses == 0) {
    result.klass = DensityClass::kUnresponsive;
  } else if (result.unique_eui64 <= low_threshold) {
    result.klass = DensityClass::kLow;
  } else {
    result.klass = DensityClass::kHigh;
  }
  return result;
}

/// Same classification over an ingested ObservationStore slice (the
/// engine's streaming path stores responsive results directly, so the
/// funnel classifies from store views instead of result vectors). Reads
/// only the response column.
[[nodiscard]] inline DensityResult classify_density(
    net::Prefix prefix, std::uint64_t probes_sent,
    ObservationStore::View responsive,
    std::uint64_t low_threshold = 2) {
  DensityResult result;
  result.prefix = prefix;
  result.probes_sent = probes_sent;
  result.responses = responsive.size();
  container::FlatSet<net::Ipv6Address, net::Ipv6AddressHash> eui;
  for (std::size_t i = 0; i < responsive.size(); ++i) {
    const net::Ipv6Address response = responsive.response(i);
    if (net::is_eui64(response)) eui.insert(response);
  }
  result.unique_eui64 = eui.size();
  if (result.responses == 0) {
    result.klass = DensityClass::kUnresponsive;
  } else if (result.unique_eui64 <= low_threshold) {
    result.klass = DensityClass::kLow;
  } else {
    result.klass = DensityClass::kHigh;
  }
  return result;
}

}  // namespace scent::core
