// observation.h - the measurement corpus: every <target, response, time>
// tuple a campaign collects, indexed the ways the paper's analyses need.
//
// All downstream inference (Algorithms 1 and 2, density, rotation detection,
// homogeneity, pathology hunting, tracking validation) consumes exactly this
// data; nothing reads simulator ground truth. That separation is what makes
// the reproduction honest: the analysis side sees only what a real scanning
// vantage would see.
//
// Layout: the corpus is columnar (SoA) — parallel target/response/type+code/
// time vectors instead of one vector of 48-byte padded structs. Funnel scans
// touch only the columns they read (density looks at responses, snapshots at
// target+response), type and code pack into one 16-bit lane, and the
// per-observation footprint drops accordingly; bench_micro's ingest guard
// enforces the win. Indexes are the flat containers from src/container/:
// insertion-ordered, so every downstream iteration is deterministic by
// construction (DESIGN.md §5d/§5e).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "container/arena.h"
#include "container/flat_hash.h"
#include "netbase/eui64.h"
#include "netbase/ipv6_address.h"
#include "netbase/mac_address.h"
#include "probe/prober.h"
#include "sim/sim_time.h"
#include "wire/icmpv6.h"

namespace scent::core {

/// One responsive probe, as a value. The store keeps these decomposed into
/// columns; this struct is the row view handed to code that wants a whole
/// observation at once.
struct Observation {
  net::Ipv6Address target;
  net::Ipv6Address response;
  wire::Icmpv6Type type = wire::Icmpv6Type::kDestinationUnreachable;
  std::uint8_t code = 0;
  sim::TimePoint time = 0;
};

/// Append-only columnar store of observations, indexed incrementally: add()
/// updates the per-MAC index and uniqueness accounting in O(1) amortized,
/// so campaigns that interleave adds with queries (every funnel stage does)
/// never pay a rebuild-the-world-per-query quadratic cost.
///
/// Each distinct response address is classified (EUI-64 embedded MAC or
/// not) exactly once, on first sight; repeats hit a flat-map probe instead
/// of re-deriving the MAC per observation.
class ObservationStore {
 public:
  using MacIndex = container::FlatMap<net::MacAddress,
                                      container::IndexArena::List,
                                      net::MacAddressHash>;

  /// The stored 16-bit type/code lane: ICMPv6 type in the high byte. Public
  /// so streamed producers (pipeline observation batches) can pack rows in
  /// the store's own format before they reach add_packed().
  [[nodiscard]] static constexpr std::uint16_t pack_type_code(
      wire::Icmpv6Type type, std::uint8_t code) noexcept {
    return static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(type) << 8) | code);
  }

  void add(const Observation& obs) {
    add_row(obs.target, obs.response, pack_type_code(obs.type, obs.code),
            obs.time);
  }

  void add(const probe::ProbeResult& r) {
    if (!r.responded) return;
    add_row(r.target, r.response_source, pack_type_code(r.type, r.code),
            r.sent_at);
  }

  template <typename Range>
  void add_all(const Range& results) {
    for (const auto& r : results) add(r);
  }

  /// Raw-row append for deserializers (corpus snapshots): same path as
  /// add(), with type and code already packed into the stored 16-bit lane.
  /// Replayed rows rebuild the indexes with the original insertion history,
  /// so a loaded store is indistinguishable from the one that was saved.
  void add_packed(net::Ipv6Address target, net::Ipv6Address response,
                  std::uint16_t type_code, sim::TimePoint time) {
    add_row(target, response, type_code, time);
  }

  /// Appends another store's observations in their insertion order — the
  /// engine's shard-merge primitive. Replaying through add_row (rather than
  /// splicing the other store's indexes) keeps this store's index insertion
  /// history identical to a serial build over the concatenated sequence.
  void append(const ObservationStore& other) {
    reserve(size() + other.size());
    for (std::size_t i = 0; i < other.size(); ++i) {
      add_row(other.targets_[i], other.responses_[i], other.type_code_[i],
              other.times_[i]);
    }
  }

  void reserve(std::size_t n) {
    targets_.reserve(n);
    responses_.reserve(n);
    type_code_.reserve(n);
    times_.reserve(n);
  }

  [[nodiscard]] std::size_t size() const noexcept { return targets_.size(); }
  [[nodiscard]] bool empty() const noexcept { return targets_.empty(); }

  // Column accessors — the fast path for scans that read one field.
  [[nodiscard]] net::Ipv6Address target(std::size_t i) const noexcept {
    return targets_[i];
  }
  [[nodiscard]] net::Ipv6Address response(std::size_t i) const noexcept {
    return responses_[i];
  }
  [[nodiscard]] wire::Icmpv6Type type(std::size_t i) const noexcept {
    return static_cast<wire::Icmpv6Type>(type_code_[i] >> 8);
  }
  [[nodiscard]] std::uint8_t code(std::size_t i) const noexcept {
    return static_cast<std::uint8_t>(type_code_[i] & 0xff);
  }
  [[nodiscard]] sim::TimePoint time(std::size_t i) const noexcept {
    return times_[i];
  }
  /// The stored (type << 8) | code lane, unsplit — serialization reads and
  /// writes this directly instead of unpacking and repacking per row.
  [[nodiscard]] std::uint16_t type_code(std::size_t i) const noexcept {
    return type_code_[i];
  }

  // Whole columns as contiguous spans — the serialization hooks. A
  // snapshot section is one of these, encoded verbatim.
  [[nodiscard]] std::span<const net::Ipv6Address> target_column()
      const noexcept {
    return targets_;
  }
  [[nodiscard]] std::span<const net::Ipv6Address> response_column()
      const noexcept {
    return responses_;
  }
  [[nodiscard]] std::span<const std::uint16_t> type_code_column()
      const noexcept {
    return type_code_;
  }
  [[nodiscard]] std::span<const sim::TimePoint> time_column() const noexcept {
    return times_;
  }

  /// Row i reassembled as a value.
  [[nodiscard]] Observation at(std::size_t i) const noexcept {
    return Observation{targets_[i], responses_[i], type(i), code(i),
                       times_[i]};
  }

  /// Read-only window over a contiguous range of rows. Indexing and
  /// iteration yield Observation values reassembled from the columns;
  /// column accessors avoid even that when only one field is read.
  class View {
   public:
    View(const ObservationStore* store, std::size_t first,
         std::size_t last) noexcept
        : store_(store), first_(first), last_(last) {}

    [[nodiscard]] std::size_t size() const noexcept { return last_ - first_; }
    [[nodiscard]] bool empty() const noexcept { return last_ == first_; }

    [[nodiscard]] Observation operator[](std::size_t i) const noexcept {
      return store_->at(first_ + i);
    }
    [[nodiscard]] net::Ipv6Address target(std::size_t i) const noexcept {
      return store_->target(first_ + i);
    }
    [[nodiscard]] net::Ipv6Address response(std::size_t i) const noexcept {
      return store_->response(first_ + i);
    }
    [[nodiscard]] sim::TimePoint time(std::size_t i) const noexcept {
      return store_->time(first_ + i);
    }
    [[nodiscard]] std::uint16_t type_code(std::size_t i) const noexcept {
      return store_->type_code(first_ + i);
    }

    class iterator {
     public:
      iterator(const ObservationStore* store, std::size_t index) noexcept
          : store_(store), index_(index) {}
      Observation operator*() const noexcept { return store_->at(index_); }
      iterator& operator++() noexcept {
        ++index_;
        return *this;
      }
      bool operator==(const iterator& o) const noexcept {
        return index_ == o.index_;
      }
      bool operator!=(const iterator& o) const noexcept {
        return index_ != o.index_;
      }

     private:
      const ObservationStore* store_;
      std::size_t index_;
    };

    [[nodiscard]] iterator begin() const noexcept {
      return iterator{store_, first_};
    }
    [[nodiscard]] iterator end() const noexcept {
      return iterator{store_, last_};
    }

   private:
    const ObservationStore* store_;
    std::size_t first_;
    std::size_t last_;
  };

  [[nodiscard]] View all() const noexcept { return View{this, 0, size()}; }

  /// Rows [first, last) — e.g. the slice one sweep unit appended.
  [[nodiscard]] View view(std::size_t first, std::size_t last) const noexcept {
    return View{this, first, last};
  }

  /// Observation indices grouped by embedded MAC, for EUI-64 responses
  /// only. Mapped values are arena list handles; resolve them with
  /// indices() or indices_of(). Iteration order is MAC first-sighting
  /// order — deterministic.
  [[nodiscard]] const MacIndex& by_mac() const noexcept { return by_mac_; }

  /// Resolves a by_mac() list handle to its index range (push order).
  [[nodiscard]] container::IndexArena::Range indices(
      const container::IndexArena::List& list) const noexcept {
    return index_arena_.range(list);
  }

  /// Materializes one MAC's observation indices (ascending, as inserted).
  [[nodiscard]] std::vector<std::size_t> indices_of(net::MacAddress mac) const {
    std::vector<std::size_t> out;
    const auto it = by_mac_.find(mac);
    if (it == by_mac_.end()) return out;
    out.reserve(it->second.size);
    for (const std::uint32_t i : index_arena_.range(it->second)) {
      out.push_back(i);
    }
    return out;
  }

  /// Distinct response addresses seen (any IID class).
  [[nodiscard]] std::size_t unique_responses() const noexcept {
    return response_class_.size();
  }

  /// The distinct response addresses themselves, in first-seen order —
  /// the classification memo's keys. The analysis engine walks this to
  /// prime a shared read-only AttributionCache up front (one BGP trie
  /// walk per distinct /64) before fanning out shards.
  class DistinctResponses {
   public:
    class iterator {
     public:
      explicit iterator(
          const container::FlatMap<net::Ipv6Address, std::uint64_t,
                                   net::Ipv6AddressHash>::const_iterator it)
          : it_(it) {}
      net::Ipv6Address operator*() const noexcept { return it_->first; }
      iterator& operator++() noexcept {
        ++it_;
        return *this;
      }
      bool operator!=(const iterator& o) const noexcept {
        return it_ != o.it_;
      }

     private:
      container::FlatMap<net::Ipv6Address, std::uint64_t,
                         net::Ipv6AddressHash>::const_iterator it_;
    };
    [[nodiscard]] iterator begin() const noexcept {
      return iterator{map_->begin()};
    }
    [[nodiscard]] iterator end() const noexcept {
      return iterator{map_->end()};
    }
    [[nodiscard]] std::size_t size() const noexcept { return map_->size(); }

   private:
    friend class ObservationStore;
    explicit DistinctResponses(
        const container::FlatMap<net::Ipv6Address, std::uint64_t,
                                 net::Ipv6AddressHash>* map) noexcept
        : map_(map) {}
    const container::FlatMap<net::Ipv6Address, std::uint64_t,
                             net::Ipv6AddressHash>* map_;
  };

  [[nodiscard]] DistinctResponses distinct_responses() const noexcept {
    return DistinctResponses{&response_class_};
  }

  /// Distinct EUI-64 response addresses seen.
  [[nodiscard]] std::size_t unique_eui64_responses() const noexcept {
    return eui_unique_;
  }

  /// Distinct EUI-64 IIDs (== distinct embedded MACs).
  [[nodiscard]] std::size_t unique_eui64_iids() const noexcept {
    return by_mac_.size();
  }

  /// Distinct /64 networks in which a given MAC's EUI-64 address was seen,
  /// in first-seen order. Dedup is a sorted-unique pass over the (small)
  /// per-MAC network list — no per-call hash set.
  [[nodiscard]] std::vector<std::uint64_t> networks_of(
      net::MacAddress mac) const {
    const auto it = by_mac_.find(mac);
    if (it == by_mac_.end()) return {};
    std::vector<std::uint64_t> nets;  // first-seen order, with repeats
    nets.reserve(it->second.size);
    for (const std::uint32_t i : index_arena_.range(it->second)) {
      nets.push_back(responses_[i].network());
    }
    std::vector<std::uint64_t> sorted = nets;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    if (sorted.size() == nets.size()) return nets;  // already distinct
    std::vector<bool> emitted(sorted.size(), false);
    std::vector<std::uint64_t> out;
    out.reserve(sorted.size());
    for (const std::uint64_t net : nets) {
      const std::size_t slot = static_cast<std::size_t>(
          std::lower_bound(sorted.begin(), sorted.end(), net) -
          sorted.begin());
      if (!emitted[slot]) {
        emitted[slot] = true;
        out.push_back(net);
      }
    }
    return out;
  }

  /// Heap bytes held by the columns and indexes, for the bytes-per-
  /// observation guard in bench_micro.
  [[nodiscard]] std::size_t memory_footprint() const noexcept {
    return targets_.capacity() * sizeof(net::Ipv6Address) +
           responses_.capacity() * sizeof(net::Ipv6Address) +
           type_code_.capacity() * sizeof(std::uint16_t) +
           times_.capacity() * sizeof(sim::TimePoint) +
           response_class_.memory_footprint() + by_mac_.memory_footprint() +
           index_arena_.memory_footprint();
  }

 private:
  /// MAC bits cannot exceed 48 bits, so all-ones marks "classified, not
  /// EUI-64" in the response classification cache.
  static constexpr std::uint64_t kNonEui = ~0ULL;

  void add_row(net::Ipv6Address target, net::Ipv6Address response,
               std::uint16_t type_code, sim::TimePoint time) {
    const std::size_t index = targets_.size();
    targets_.push_back(target);
    responses_.push_back(response);
    type_code_.push_back(type_code);
    times_.push_back(time);

    // Classify each distinct response once; repeats cost one probe.
    const auto [entry, fresh] = response_class_.try_emplace(response, kNonEui);
    if (fresh) {
      if (const auto mac = net::embedded_mac(response)) {
        entry->second = mac->bits();
        ++eui_unique_;
      }
    }
    const std::uint64_t mac_bits = entry->second;
    if (mac_bits != kNonEui) {
      const auto mac_entry = by_mac_.try_emplace(net::MacAddress{mac_bits});
      index_arena_.push_back(mac_entry.first->second,
                             static_cast<std::uint32_t>(index));
    }
  }

  // Parallel columns, one entry per observation.
  std::vector<net::Ipv6Address> targets_;
  std::vector<net::Ipv6Address> responses_;
  std::vector<std::uint16_t> type_code_;  // (type << 8) | code
  std::vector<sim::TimePoint> times_;

  /// response address → embedded-MAC bits, or kNonEui. Doubles as the
  /// distinct-response set.
  container::FlatMap<net::Ipv6Address, std::uint64_t, net::Ipv6AddressHash>
      response_class_;
  MacIndex by_mac_;
  container::IndexArena index_arena_;
  std::size_t eui_unique_ = 0;
};

}  // namespace scent::core
