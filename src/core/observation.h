// observation.h - the measurement corpus: every <target, response, time>
// tuple a campaign collects, indexed the ways the paper's analyses need.
//
// All downstream inference (Algorithms 1 and 2, density, rotation detection,
// homogeneity, pathology hunting, tracking validation) consumes exactly this
// data; nothing reads simulator ground truth. That separation is what makes
// the reproduction honest: the analysis side sees only what a real scanning
// vantage would see.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netbase/eui64.h"
#include "netbase/ipv6_address.h"
#include "netbase/mac_address.h"
#include "probe/prober.h"
#include "sim/sim_time.h"
#include "wire/icmpv6.h"

namespace scent::core {

/// One responsive probe.
struct Observation {
  net::Ipv6Address target;
  net::Ipv6Address response;
  wire::Icmpv6Type type = wire::Icmpv6Type::kDestinationUnreachable;
  std::uint8_t code = 0;
  sim::TimePoint time = 0;
};

/// Append-only store of observations, indexed incrementally: add() updates
/// the per-MAC index and uniqueness sets in O(1) amortized, so campaigns
/// that interleave adds with queries (every funnel stage does) never pay
/// the former rebuild-the-world-per-query quadratic cost.
class ObservationStore {
 public:
  void add(const Observation& obs) {
    const std::size_t index = observations_.size();
    observations_.push_back(obs);
    responses_.insert(obs.response);
    if (const auto mac = net::embedded_mac(obs.response)) {
      eui_responses_.insert(obs.response);
      by_mac_[*mac].push_back(index);
    }
  }

  void add(const probe::ProbeResult& r) {
    if (!r.responded) return;
    add(Observation{r.target, r.response_source, r.type, r.code, r.sent_at});
  }

  template <typename Range>
  void add_all(const Range& results) {
    for (const auto& r : results) add(r);
  }

  /// Appends another store's observations in their insertion order — the
  /// engine's shard-merge primitive. Replaying through add() (rather than
  /// splicing the other store's indexes) keeps this store's map insertion
  /// history identical to a serial build over the concatenated sequence,
  /// so even unordered-container iteration order matches bit for bit.
  void append(const ObservationStore& other) {
    observations_.reserve(observations_.size() + other.observations_.size());
    for (const auto& obs : other.observations_) add(obs);
  }

  [[nodiscard]] const std::vector<Observation>& all() const noexcept {
    return observations_;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return observations_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return observations_.empty(); }

  /// Observation indices grouped by embedded MAC, for EUI-64 responses only.
  [[nodiscard]] const std::unordered_map<net::MacAddress,
                                         std::vector<std::size_t>,
                                         net::MacAddressHash>&
  by_mac() const noexcept {
    return by_mac_;
  }

  /// Distinct response addresses seen (any IID class).
  [[nodiscard]] std::size_t unique_responses() const noexcept {
    return responses_.size();
  }

  /// Distinct EUI-64 response addresses seen.
  [[nodiscard]] std::size_t unique_eui64_responses() const noexcept {
    return eui_responses_.size();
  }

  /// Distinct EUI-64 IIDs (== distinct embedded MACs).
  [[nodiscard]] std::size_t unique_eui64_iids() const noexcept {
    return by_mac_.size();
  }

  /// Distinct /64 networks in which a given MAC's EUI-64 address was seen.
  [[nodiscard]] std::vector<std::uint64_t> networks_of(
      net::MacAddress mac) const {
    std::vector<std::uint64_t> out;
    const auto it = by_mac_.find(mac);
    if (it == by_mac_.end()) return out;
    std::unordered_set<std::uint64_t> seen;
    for (const std::size_t i : it->second) {
      if (seen.insert(observations_[i].response.network()).second) {
        out.push_back(observations_[i].response.network());
      }
    }
    return out;
  }

 private:
  std::vector<Observation> observations_;
  std::unordered_map<net::MacAddress, std::vector<std::size_t>,
                     net::MacAddressHash>
      by_mac_;
  std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash> responses_;
  std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash> eui_responses_;
};

}  // namespace scent::core
