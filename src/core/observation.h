// observation.h - the measurement corpus: every <target, response, time>
// tuple a campaign collects, indexed the ways the paper's analyses need.
//
// All downstream inference (Algorithms 1 and 2, density, rotation detection,
// homogeneity, pathology hunting, tracking validation) consumes exactly this
// data; nothing reads simulator ground truth. That separation is what makes
// the reproduction honest: the analysis side sees only what a real scanning
// vantage would see.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netbase/eui64.h"
#include "netbase/ipv6_address.h"
#include "netbase/mac_address.h"
#include "probe/prober.h"
#include "sim/sim_time.h"
#include "wire/icmpv6.h"

namespace scent::core {

/// One responsive probe.
struct Observation {
  net::Ipv6Address target;
  net::Ipv6Address response;
  wire::Icmpv6Type type = wire::Icmpv6Type::kDestinationUnreachable;
  std::uint8_t code = 0;
  sim::TimePoint time = 0;
};

/// Append-only store of observations with lazy per-EUI indexing.
class ObservationStore {
 public:
  void add(const Observation& obs) {
    observations_.push_back(obs);
    index_dirty_ = true;
  }

  void add(const probe::ProbeResult& r) {
    if (!r.responded) return;
    add(Observation{r.target, r.response_source, r.type, r.code, r.sent_at});
  }

  template <typename Range>
  void add_all(const Range& results) {
    for (const auto& r : results) add(r);
  }

  [[nodiscard]] const std::vector<Observation>& all() const noexcept {
    return observations_;
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return observations_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return observations_.empty(); }

  /// Observation indices grouped by embedded MAC, for EUI-64 responses only.
  /// Rebuilt lazily after mutation.
  [[nodiscard]] const std::unordered_map<net::MacAddress,
                                         std::vector<std::size_t>,
                                         net::MacAddressHash>&
  by_mac() const {
    rebuild_if_dirty();
    return by_mac_;
  }

  /// Distinct response addresses seen (any IID class).
  [[nodiscard]] std::size_t unique_responses() const {
    rebuild_if_dirty();
    return unique_responses_;
  }

  /// Distinct EUI-64 response addresses seen.
  [[nodiscard]] std::size_t unique_eui64_responses() const {
    rebuild_if_dirty();
    return unique_eui64_responses_;
  }

  /// Distinct EUI-64 IIDs (== distinct embedded MACs).
  [[nodiscard]] std::size_t unique_eui64_iids() const {
    rebuild_if_dirty();
    return by_mac_.size();
  }

  /// Distinct /64 networks in which a given MAC's EUI-64 address was seen.
  [[nodiscard]] std::vector<std::uint64_t> networks_of(
      net::MacAddress mac) const {
    rebuild_if_dirty();
    std::vector<std::uint64_t> out;
    const auto it = by_mac_.find(mac);
    if (it == by_mac_.end()) return out;
    std::unordered_set<std::uint64_t> seen;
    for (const std::size_t i : it->second) {
      if (seen.insert(observations_[i].response.network()).second) {
        out.push_back(observations_[i].response.network());
      }
    }
    return out;
  }

 private:
  void rebuild_if_dirty() const {
    if (!index_dirty_) return;
    by_mac_.clear();
    std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash> responses;
    std::unordered_set<net::Ipv6Address, net::Ipv6AddressHash> eui_responses;
    for (std::size_t i = 0; i < observations_.size(); ++i) {
      const auto& obs = observations_[i];
      responses.insert(obs.response);
      if (const auto mac = net::embedded_mac(obs.response)) {
        eui_responses.insert(obs.response);
        by_mac_[*mac].push_back(i);
      }
    }
    unique_responses_ = responses.size();
    unique_eui64_responses_ = eui_responses.size();
    index_dirty_ = false;
  }

  std::vector<Observation> observations_;
  mutable std::unordered_map<net::MacAddress, std::vector<std::size_t>,
                             net::MacAddressHash>
      by_mac_;
  mutable std::size_t unique_responses_ = 0;
  mutable std::size_t unique_eui64_responses_ = 0;
  mutable bool index_dirty_ = false;
};

}  // namespace scent::core
