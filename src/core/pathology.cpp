#include "core/pathology.h"

#include "analysis/derive.h"
#include "analysis/engine.h"

namespace scent::core {
namespace {

DailyAsPresence presence_of_cached(net::MacAddress mac,
                                   const ObservationStore& store,
                                   const routing::BgpTable& bgp,
                                   routing::AttributionCache& attributions) {
  DailyAsPresence presence;
  const auto it = store.by_mac().find(mac);
  if (it == store.by_mac().end()) return presence;
  for (const std::uint32_t i : store.indices(it->second)) {
    const auto* ad = bgp.attribute(store.response(i), attributions);
    if (ad == nullptr) continue;
    presence.days[sim::day_of(store.time(i))].insert(ad->origin_asn);
  }
  return presence;
}

}  // namespace

DailyAsPresence presence_of(net::MacAddress mac, const ObservationStore& store,
                            const routing::BgpTable& bgp) {
  routing::AttributionCache attributions;
  return presence_of_cached(mac, store, bgp, attributions);
}

std::vector<MultiAsIid> find_multi_as_iids(const ObservationStore& store,
                                           const routing::BgpTable& bgp,
                                           const PathologyOptions& options) {
  // One fused pass instead of two attribution scans per multi-AS MAC; the
  // per-AS distinct-day lists in the aggregate table carry everything the
  // classification needs (bench_micro's analysis guard asserts equality
  // with the legacy scan).
  analysis::AnalysisOptions analysis_options;
  analysis_options.collect_targets = false;
  analysis_options.collect_sightings = false;
  const analysis::AggregateTable table =
      analysis::analyze(store, &bgp, analysis_options);
  return analysis::multi_as_iids(table, options);
}

}  // namespace scent::core
