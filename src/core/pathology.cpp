#include "core/pathology.h"

#include <algorithm>

namespace scent::core {
namespace {

bool is_default_mac(net::MacAddress mac) noexcept {
  // The all-zero MAC is the one the paper observed (12 ASes); broadcast and
  // the all-one pattern are equally meaningless as identifiers.
  return mac.bits() == 0 || mac.bits() == 0xffffffffffffULL;
}

DailyAsPresence presence_of_cached(net::MacAddress mac,
                                   const ObservationStore& store,
                                   const routing::BgpTable& bgp,
                                   routing::AttributionCache& attributions) {
  DailyAsPresence presence;
  const auto it = store.by_mac().find(mac);
  if (it == store.by_mac().end()) return presence;
  for (const std::uint32_t i : store.indices(it->second)) {
    const auto* ad = bgp.attribute(store.response(i), attributions);
    if (ad == nullptr) continue;
    presence.days[sim::day_of(store.time(i))].insert(ad->origin_asn);
  }
  return presence;
}

}  // namespace

DailyAsPresence presence_of(net::MacAddress mac, const ObservationStore& store,
                            const routing::BgpTable& bgp) {
  routing::AttributionCache attributions;
  return presence_of_cached(mac, store, bgp, attributions);
}

std::vector<MultiAsIid> find_multi_as_iids(const ObservationStore& store,
                                           const routing::BgpTable& bgp,
                                           const PathologyOptions& options) {
  std::vector<MultiAsIid> out;
  routing::AttributionCache attributions;
  for (const auto& [mac, index_list] : store.by_mac()) {
    // Cheap prefilter: distinct ASes across all observations.
    std::set<routing::Asn> asns;
    for (const std::uint32_t i : store.indices(index_list)) {
      const auto* ad = bgp.attribute(store.response(i), attributions);
      if (ad != nullptr) asns.insert(ad->origin_asn);
    }
    if (asns.size() < 2) continue;

    MultiAsIid entry;
    entry.mac = mac;
    entry.asns.assign(asns.begin(), asns.end());

    const DailyAsPresence presence =
        presence_of_cached(mac, store, bgp, attributions);
    for (const auto& [day, day_asns] : presence.days) {
      if (day_asns.size() >= 2) ++entry.concurrent_days;
    }

    if (is_default_mac(mac)) {
      entry.kind = PathologyKind::kDefaultMac;
    } else if (entry.concurrent_days >= options.min_concurrent_days) {
      entry.kind = PathologyKind::kConcurrentReuse;
    } else if (asns.size() == 2 && entry.concurrent_days == 0) {
      // Candidate provider switch: check for a clean temporal hand-off —
      // one AS strictly before some day, the other strictly after.
      const routing::Asn a = entry.asns[0];
      const routing::Asn b = entry.asns[1];
      std::int64_t last_a = INT64_MIN, first_a = INT64_MAX;
      std::int64_t last_b = INT64_MIN, first_b = INT64_MAX;
      for (const auto& [day, day_asns] : presence.days) {
        if (day_asns.contains(a)) {
          last_a = std::max(last_a, day);
          first_a = std::min(first_a, day);
        }
        if (day_asns.contains(b)) {
          last_b = std::max(last_b, day);
          first_b = std::min(first_b, day);
        }
      }
      if (last_a < first_b) {
        entry.kind = PathologyKind::kProviderSwitch;
        entry.switch_from = a;
        entry.switch_to = b;
        entry.switch_day = first_b;
      } else if (last_b < first_a) {
        entry.kind = PathologyKind::kProviderSwitch;
        entry.switch_from = b;
        entry.switch_to = a;
        entry.switch_day = first_a;
      } else {
        entry.kind = PathologyKind::kMultiAsOther;
      }
    } else {
      entry.kind = PathologyKind::kMultiAsOther;
    }
    out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end(), [](const MultiAsIid& a, const MultiAsIid& b) {
    return a.mac < b.mac;
  });
  return out;
}

}  // namespace scent::core
