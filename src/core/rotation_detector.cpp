#include "core/rotation_detector.h"

#include <algorithm>

namespace scent::core {

std::vector<RotationVerdict> detect_rotation(const Snapshot& first,
                                             const Snapshot& second,
                                             std::uint64_t churn_threshold,
                                             telemetry::Registry* registry) {
  struct Counts {
    std::uint64_t eui_targets = 0;
    std::uint64_t changed = 0;
  };
  // Accumulate on the pre-masked upper-64 /48 bits — one mask per target
  // instead of constructing (and hashing) a Prefix value per lookup. The
  // Prefix is materialized only when verdicts are emitted.
  container::FlatMap<std::uint64_t, Counts> per_48;

  constexpr std::uint64_t kMask48 = 0xffffffffffff0000ULL;

  // Targets responsive in the first snapshot: changed if missing from or
  // different in the second.
  for (const auto& [target, response] : first.map()) {
    Counts& c = per_48[target.network() & kMask48];
    ++c.eui_targets;
    const auto it = second.map().find(target);
    if (it == second.map().end() || it->second != response) ++c.changed;
  }
  // Targets that appeared only in the second snapshot are also churn.
  for (const auto& [target, response] : second.map()) {
    if (first.map().contains(target)) continue;
    Counts& c = per_48[target.network() & kMask48];
    ++c.eui_targets;
    ++c.changed;
  }

  std::vector<RotationVerdict> verdicts;
  verdicts.reserve(per_48.size());
  for (const auto& [net48, counts] : per_48) {
    RotationVerdict v;
    v.prefix = net::Prefix{net::Ipv6Address{net48, 0}, 48};
    v.eui_targets = counts.eui_targets;
    v.changed = counts.changed;
    v.rotating = counts.changed > churn_threshold;
    verdicts.push_back(v);
  }
  std::sort(verdicts.begin(), verdicts.end(),
            [](const RotationVerdict& a, const RotationVerdict& b) {
              return a.prefix < b.prefix;
            });

  if (registry != nullptr) {
    telemetry::Histogram& churn =
        registry->histogram("rotation.churn_pct", {0, 10, 25, 50, 75, 90, 100});
    std::uint64_t rotating = 0;
    for (const auto& v : verdicts) {
      if (v.rotating) ++rotating;
      if (v.eui_targets > 0) churn.observe(100 * v.changed / v.eui_targets);
    }
    registry->counter("rotation.checked_48s").add(verdicts.size());
    registry->counter("rotation.rotating_48s").add(rotating);
  }
  return verdicts;
}

}  // namespace scent::core
