#include "core/rotation_detector.h"

#include <algorithm>

#include "corpus/snapshot.h"

namespace scent::core {
namespace {

struct Counts {
  std::uint64_t eui_targets = 0;
  std::uint64_t changed = 0;
};

/// Accumulate on the pre-masked upper-64 /48 bits — one mask per target
/// instead of constructing (and hashing) a Prefix value per lookup. The
/// Prefix is materialized only when verdicts are emitted.
using Per48 = container::FlatMap<std::uint64_t, Counts>;

constexpr std::uint64_t kMask48 = 0xffffffffffff0000ULL;

/// Shared verdict emission: sorts by prefix (robust to the accumulation
/// order, which differs between the full and incremental paths only in
/// principle) and feeds the rotation telemetry.
std::vector<RotationVerdict> emit_verdicts(const Per48& per_48,
                                           std::uint64_t churn_threshold,
                                           telemetry::Registry* registry) {
  std::vector<RotationVerdict> verdicts;
  verdicts.reserve(per_48.size());
  for (const auto& [net48, counts] : per_48) {
    RotationVerdict v;
    v.prefix = net::Prefix{net::Ipv6Address{net48, 0}, 48};
    v.eui_targets = counts.eui_targets;
    v.changed = counts.changed;
    v.rotating = counts.changed > churn_threshold;
    verdicts.push_back(v);
  }
  std::sort(verdicts.begin(), verdicts.end(),
            [](const RotationVerdict& a, const RotationVerdict& b) {
              return a.prefix < b.prefix;
            });

  if (registry != nullptr) {
    telemetry::Histogram& churn =
        registry->histogram("rotation.churn_pct", {0, 10, 25, 50, 75, 90, 100});
    std::uint64_t rotating = 0;
    for (const auto& v : verdicts) {
      if (v.rotating) ++rotating;
      if (v.eui_targets > 0) churn.observe(100 * v.changed / v.eui_targets);
    }
    registry->counter("rotation.checked_48s").add(verdicts.size());
    registry->counter("rotation.rotating_48s").add(rotating);
  }
  return verdicts;
}

}  // namespace

std::vector<RotationVerdict> detect_rotation(const Snapshot& first,
                                             const Snapshot& second,
                                             std::uint64_t churn_threshold,
                                             telemetry::Registry* registry) {
  Per48 per_48;

  // Targets responsive in the first snapshot: changed if missing from or
  // different in the second.
  for (const auto& [target, response] : first.map()) {
    Counts& c = per_48[target.network() & kMask48];
    ++c.eui_targets;
    const auto it = second.map().find(target);
    if (it == second.map().end() || it->second != response) ++c.changed;
  }
  // Targets that appeared only in the second snapshot are also churn.
  for (const auto& [target, response] : second.map()) {
    if (first.map().contains(target)) continue;
    Counts& c = per_48[target.network() & kMask48];
    ++c.eui_targets;
    ++c.changed;
  }
  return emit_verdicts(per_48, churn_threshold, registry);
}

std::optional<std::vector<RotationVerdict>> detect_rotation_incremental(
    corpus::SnapshotReader& prior, const Snapshot& second,
    std::uint64_t churn_threshold, telemetry::Registry* registry) {
  Per48 per_48;
  // The streamed pass needs the prior day's target set again for the
  // appeared-only-in-second pass; a flat set of addresses is 16 B/target —
  // far below the two-full-stores footprint the incremental mode avoids.
  container::FlatSet<net::Ipv6Address, net::Ipv6AddressHash> prior_targets;
  prior_targets.reserve(
      static_cast<std::size_t>(prior.eui_pair_count()));

  const bool streamed = prior.for_each_eui_pair(
      [&](net::Ipv6Address target, net::Ipv6Address response) {
        prior_targets.insert(target);
        Counts& c = per_48[target.network() & kMask48];
        ++c.eui_targets;
        const auto it = second.map().find(target);
        if (it == second.map().end() || it->second != response) ++c.changed;
      });
  if (!streamed) return std::nullopt;

  for (const auto& [target, response] : second.map()) {
    if (prior_targets.contains(target)) continue;
    Counts& c = per_48[target.network() & kMask48];
    ++c.eui_targets;
    ++c.changed;
  }
  return emit_verdicts(per_48, churn_threshold, registry);
}

}  // namespace scent::core
