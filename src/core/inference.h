// inference.h - the paper's Algorithms 1 and 2.
//
// Algorithm 1 (Allocation_Size): for each EUI-64 IID, the numeric span of
// *probed target* /64 networks that elicited responses from that IID bounds
// the customer's delegated prefix from inside; the per-AS median of those
// spans is the provider's allocation size. A tracker that knows a provider
// hands out /56s needs to probe only one address per /56 — a 256x saving
// over the naive per-/64 sweep (§3.2.1).
//
// Algorithm 2 (Rotation_Pool_Size): for each EUI-64 IID, the numeric span of
// *response* /64 networks the IID was observed in bounds the rotation pool
// it moves within; the per-AS median is the provider's pool size. The pool
// bounds the tracking search space from above (§3.2.2).
//
// Both algorithms express sizes as prefix lengths: a span of up to 2^k /64
// networks corresponds to a /(64-k).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "container/flat_hash.h"
#include "core/observation.h"
#include "netbase/mac_address.h"
#include "netbase/uint128.h"

namespace scent::core {

/// Prefix length whose /64 span covers [lo, hi] (inclusive, in units of the
/// upper-64-bit network value). A single /64 (span 0) is a /64; a span of
/// 255 /64s fits a /56; and so on. This is the paper's
/// `size = log2(max_r - min_r)` recast as a prefix length.
[[nodiscard]] constexpr unsigned span_to_prefix_length(
    std::uint64_t lo, std::uint64_t hi) noexcept {
  const std::uint64_t distance = hi - lo;
  if (distance == 0) return 64;
  // Number of /64-index bits needed to cover the distance.
  unsigned bits = 0;
  std::uint64_t v = distance;
  while (v != 0) {
    v >>= 1;
    ++bits;
  }
  return bits >= 64 ? 0 : 64 - bits;
}

/// Median of a small vector (by partial sort); returns nullopt when empty.
/// For even sizes, the lower median is returned — prefix lengths are
/// ordinal, and the paper's algorithm takes a plain median of integer sizes.
/// Inline so the analysis layer (which sits below scent_core) can derive
/// the same medians from its aggregate table.
[[nodiscard]] inline std::optional<unsigned> median_of(
    std::vector<unsigned> values) {
  if (values.empty()) return std::nullopt;
  const std::size_t mid = (values.size() - 1) / 2;
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  return values[mid];
}

/// Accumulates per-EUI target spans and infers allocation sizes
/// (Algorithm 1).
class AllocationSizeInference {
 public:
  /// Feeds one <target, response> pair; ignored unless the response carries
  /// an EUI-64 IID.
  void observe(net::Ipv6Address target, net::Ipv6Address response);

  void observe_all(const ObservationStore& store) {
    for (std::size_t i = 0; i < store.size(); ++i) {
      observe(store.target(i), store.response(i));
    }
  }

  /// Inferred allocation prefix length for one device.
  [[nodiscard]] std::optional<unsigned> length_for(net::MacAddress mac) const;

  /// All per-device inferred lengths (the distribution behind Fig 5a).
  [[nodiscard]] std::vector<unsigned> per_device_lengths() const;

  /// Median across devices (the per-AS aggregate of the paper when fed one
  /// AS's observations; Fig 5b).
  [[nodiscard]] std::optional<unsigned> median_length() const {
    return median_of(per_device_lengths());
  }

  [[nodiscard]] std::size_t device_count() const noexcept {
    return spans_.size();
  }

 private:
  struct Span {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
  };
  container::FlatMap<net::MacAddress, Span, net::MacAddressHash> spans_;
};

/// Accumulates per-EUI response spans and infers rotation pool sizes
/// (Algorithm 2).
class RotationPoolInference {
 public:
  /// Feeds one response address; ignored unless it carries an EUI-64 IID.
  void observe(net::Ipv6Address response);

  void observe_all(const ObservationStore& store) {
    for (std::size_t i = 0; i < store.size(); ++i) observe(store.response(i));
  }

  /// Inferred rotation pool prefix length for one device: the span of /64s
  /// its WAN address was seen in. /64 means "never observed moving".
  [[nodiscard]] std::optional<unsigned> length_for(net::MacAddress mac) const;

  [[nodiscard]] std::vector<unsigned> per_device_lengths() const;

  /// Median across devices: the provider's inferred pool size (Fig 7).
  [[nodiscard]] std::optional<unsigned> median_length() const {
    return median_of(per_device_lengths());
  }

  /// The concrete pool range for one device: the tightest
  /// median-pool-length-aligned prefix covering everywhere it was seen.
  /// This is what the tracker probes (§6).
  [[nodiscard]] std::optional<net::Prefix> pool_for(net::MacAddress mac,
                                                    unsigned pool_length) const;

  [[nodiscard]] std::size_t device_count() const noexcept {
    return spans_.size();
  }

 private:
  struct Span {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
  };
  container::FlatMap<net::MacAddress, Span, net::MacAddressHash> spans_;
};

}  // namespace scent::core
