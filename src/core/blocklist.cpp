#include "core/blocklist.h"

#include "netbase/eui64.h"

namespace scent::core {

net::Prefix BlockingPolicyEvaluator::scope_prefix(
    net::Ipv6Address abuser) const {
  switch (scope_) {
    case BlockScope::kAddress:
      return net::Prefix{abuser, 128};
    case BlockScope::kSlash64:
    case BlockScope::kEuiFollow:  // follow re-blocks /64s as it goes
      return net::Prefix{abuser, 64};
    case BlockScope::kAllocation:
      return net::Prefix{abuser, allocation_length_};
    case BlockScope::kPool:
      return pool_;
  }
  return net::Prefix{abuser, 128};
}

void BlockingPolicyEvaluator::day(
    net::Ipv6Address abuser, const std::vector<net::Ipv6Address>& innocents,
    sim::TimePoint now) {
  ++outcome_.days;

  // kEuiFollow proactively re-blocks the abuser's new location if its
  // EUI-64 scent is visible among the day's observed addresses — modeling
  // a defender that runs the paper's tracking technique defensively.
  if (scope_ == BlockScope::kEuiFollow) {
    const auto mac = net::embedded_mac(abuser);
    if (mac) {
      if (!follow_armed_) {
        follow_armed_ = true;
        followed_mac_ = *mac;
      }
      if (*mac == followed_mac_) {
        // Move the block: retire yesterday's /64 so innocents rotating
        // into it are not hit, then block today's.
        const net::Prefix today{abuser, 64};
        if (follow_block_active_ && follow_block_ != today) {
          blocklist_.unblock(follow_block_);
        }
        blocklist_.block(today, now);
        follow_block_ = today;
        follow_block_active_ = true;
      }
    }
  }

  if (blocklist_.blocked(abuser)) {
    ++outcome_.days_abuser_blocked;
  } else {
    ++outcome_.days_abuser_evaded;
    // Reactive block: the attack got through today; scope a new entry.
    blocklist_.block(scope_prefix(abuser), now);
  }

  for (const auto& innocent : innocents) {
    if (blocklist_.blocked(innocent)) ++outcome_.innocent_blocked_device_days;
  }
}

}  // namespace scent::core
