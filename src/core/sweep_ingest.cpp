#include "core/sweep_ingest.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <memory>
#include <utility>

#include "analysis/accumulator.h"
#include "analysis/input.h"
#include "corpus/snapshot.h"
#include "engine/parallel.h"
#include "netbase/eui64.h"
#include "pipeline/pipeline.h"
#include "pipeline/queue.h"
#include "serve/delta.h"
#include "serve/serve_table.h"
#include "trace/recorder.h"

namespace scent::core {
namespace {

/// Shard-local ingest: results land in a private store, unit boundaries
/// are recorded as store offsets for the post-join range fix-up.
///
/// When tracing, each sink owns a flight-recorder ring ("ingest shard s"
/// lanes — the columnar ingest's own lane group, distinct from the sweep
/// lanes) and a shard-local batch-latency sketch folded into the merge
/// registry in shard order. Sink callbacks run inside the prober's sweep,
/// so per-batch instrumentation here IS the columnar hot path — it must
/// stay within the bench-guarded idle/enabled overhead budgets.
class StoreShardSink final : public engine::UnitSink {
 public:
  void enable_trace(std::size_t recorder_capacity) {
    recorder_ = std::make_unique<trace::TraceRecorder>(recorder_capacity);
  }
  void enable_sketch() {
    sketch_ = std::make_unique<trace::QuantileSketch>();
  }

  void on_unit_begin(std::size_t unit_index) override {
    ranges_.push_back({unit_index, store_.size(), store_.size()});
  }

  void on_results(std::size_t unit_index,
                  std::span<const probe::ProbeResult> batch) override {
    (void)unit_index;
    const trace::ScopedSample sample{recorder_.get(), sketch_.get(),
                                     "ingest.batch"};
    store_.add_all(batch);
  }

  void on_unit_end(std::size_t unit_index) override {
    (void)unit_index;
    ranges_.back().end = store_.size();
  }

  struct UnitRange {
    std::size_t unit = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  [[nodiscard]] const ObservationStore& store() const noexcept {
    return store_;
  }
  [[nodiscard]] const std::vector<UnitRange>& ranges() const noexcept {
    return ranges_;
  }
  [[nodiscard]] trace::TraceRecorder* recorder() noexcept {
    return recorder_.get();
  }
  [[nodiscard]] const trace::QuantileSketch* sketch() const noexcept {
    return sketch_.get();
  }

 private:
  ObservationStore store_;
  std::vector<UnitRange> ranges_;
  std::unique_ptr<trace::TraceRecorder> recorder_;
  std::unique_ptr<trace::QuantileSketch> sketch_;
};

// ---------------------------------------------------------------------------
// Streamed scheduler (§5i).

/// One streamed slice of a sweep unit's responsive results, decomposed
/// into the store's column layout. A batch never spans two units; the
/// `unit_end` batch (possibly empty) closes the unit, which is how the
/// drain learns exact per-unit [obs_begin, obs_end) ranges — including
/// for units with no responses at all.
struct ObservationBatch {
  std::size_t unit = 0;
  bool unit_end = false;
  std::vector<net::Ipv6Address> targets;
  std::vector<net::Ipv6Address> responses;
  std::vector<std::uint16_t> type_codes;
  std::vector<sim::TimePoint> times;

  [[nodiscard]] std::size_t rows() const noexcept { return targets.size(); }
};

/// Batches are shared down the drain chain (ingest forwards the pointer
/// to snapshot, snapshot to accounting), so one copy serves every stage.
using BatchPtr = std::shared_ptr<const ObservationBatch>;
using BatchQueue = pipeline::BoundedQueue<BatchPtr>;

/// Closes a queue on scope exit — a producing stage's end-of-stream (or
/// unwind) signal to its consumer.
class QueueCloser {
 public:
  explicit QueueCloser(BatchQueue* queue) : queue_(queue) {}
  ~QueueCloser() {
    if (queue_ != nullptr) queue_->close();
  }
  QueueCloser(const QueueCloser&) = delete;
  QueueCloser& operator=(const QueueCloser&) = delete;

 private:
  BatchQueue* queue_;
};

/// Streamed per-shard sink: re-batches the prober's results into
/// ObservationBatches, runs the fused analysis accumulation in-shard
/// (shard-local DeviceAggregate building starts while later shards are
/// still probing), and pushes the batch into the shard's bounded queue —
/// blocking when the drain lags (backpressure). A push against a closed
/// queue means another stage failed; the sink unwinds the whole shard
/// with PipelineCancelled.
class PipelineShardSink final : public engine::UnitSink {
 public:
  PipelineShardSink(BatchQueue* out, std::uint32_t batch_rows)
      : out_(out), batch_rows_(batch_rows == 0 ? 1 : batch_rows) {}

  void set_accumulator(analysis::Accumulator* acc) { acc_ = acc; }
  void set_delta(serve::DeltaShard* delta) { delta_ = delta; }
  void enable_trace(std::size_t recorder_capacity) {
    recorder_ = std::make_unique<trace::TraceRecorder>(recorder_capacity);
  }
  void enable_sketch() {
    sketch_ = std::make_unique<trace::QuantileSketch>();
  }

  void on_unit_begin(std::size_t unit_index) override { unit_ = unit_index; }

  void on_results(std::size_t unit_index,
                  std::span<const probe::ProbeResult> batch) override {
    (void)unit_index;
    const trace::ScopedSample sample{recorder_.get(), sketch_.get(),
                                     "pipeline.batch"};
    for (const auto& r : batch) {
      if (!r.responded) continue;
      pending_.targets.push_back(r.target);
      pending_.responses.push_back(r.response_source);
      pending_.type_codes.push_back(
          ObservationStore::pack_type_code(r.type, r.code));
      pending_.times.push_back(r.sent_at);
    }
    if (pending_.rows() >= batch_rows_) flush(false);
  }

  void on_unit_end(std::size_t unit_index) override {
    (void)unit_index;
    flush(true);
  }

  [[nodiscard]] trace::TraceRecorder* recorder() noexcept {
    return recorder_.get();
  }
  [[nodiscard]] const trace::QuantileSketch* sketch() const noexcept {
    return sketch_.get();
  }
  [[nodiscard]] std::uint64_t batches() const noexcept { return batches_; }

 private:
  void flush(bool unit_end) {
    pending_.unit = unit_;
    pending_.unit_end = unit_end;
    if (acc_ != nullptr) {
      // Window snapshots need global row indices, which do not exist
      // until the drain runs; the streamed path forbids windows (asserted
      // by the caller), so first_row never matters.
      acc_->accumulate(0, pending_.targets, pending_.responses,
                       pending_.times);
    }
    if (delta_ != nullptr) {
      // The serve delta's day window is row-index-free (the whole day is
      // one window), so it rides the stream where engine windows cannot.
      delta_->accumulate(pending_.targets, pending_.responses,
                         pending_.times);
    }
    auto batch = std::make_shared<ObservationBatch>(std::move(pending_));
    pending_ = ObservationBatch{};
    ++batches_;
    if (!out_->push(std::move(batch))) throw pipeline::PipelineCancelled{};
  }

  BatchQueue* out_;
  const std::size_t batch_rows_;
  analysis::Accumulator* acc_ = nullptr;
  serve::DeltaShard* delta_ = nullptr;
  ObservationBatch pending_;
  std::size_t unit_ = 0;
  std::uint64_t batches_ = 0;
  std::unique_ptr<trace::TraceRecorder> recorder_;
  std::unique_ptr<trace::QuantileSketch> sketch_;
};

/// One drain stage's instrumentation (flight-recorder lane + batch sketch).
struct StageTrace {
  std::unique_ptr<trace::TraceRecorder> recorder;
  std::unique_ptr<trace::QuantileSketch> sketch;
};

SweepIngest sweep_streamed(sim::Internet& internet, sim::VirtualClock& clock,
                           std::span<const engine::SweepUnit> units,
                           const probe::ProberOptions& prober_options,
                           const engine::SweepOptions& options,
                           ObservationStore& store,
                           const SweepFanout& fanout) {
  engine::ShardedSweep sweep{internet, clock, units, prober_options, options};
  const unsigned threads = sweep.threads();
  const std::size_t capacity =
      options.queue_capacity == 0 ? 1 : options.queue_capacity;

  SweepIngest ingest;
  ingest.units.resize(units.size());

  // Queue topology: one SPSC queue per probe shard into the ingest drain,
  // then one SPSC queue per link of the drain chain. Every queue is
  // registered with the cancel hook so a failing stage wakes all peers.
  std::vector<std::unique_ptr<BatchQueue>> shard_queues;
  shard_queues.reserve(threads);
  for (unsigned s = 0; s < threads; ++s) {
    shard_queues.push_back(std::make_unique<BatchQueue>(capacity));
  }
  const bool want_snapshot = fanout.snapshot != nullptr;
  const bool want_accounting =
      fanout.macs != nullptr || static_cast<bool>(fanout.on_progress);
  std::unique_ptr<BatchQueue> ingest_out;   // ingest -> snapshot/accounting
  std::unique_ptr<BatchQueue> snapshot_out; // snapshot -> accounting
  if (want_snapshot && want_accounting) {
    ingest_out = std::make_unique<BatchQueue>(capacity);
    snapshot_out = std::make_unique<BatchQueue>(capacity);
  } else if (want_snapshot || want_accounting) {
    ingest_out = std::make_unique<BatchQueue>(capacity);
  }

  // Probe-side sinks, with the fused analysis accumulators when requested.
  std::vector<analysis::Accumulator> accumulators;
  if (fanout.analysis != nullptr) {
    assert(fanout.analysis->options.windows.empty());
    accumulators.reserve(threads);
    for (unsigned s = 0; s < threads; ++s) {
      accumulators.emplace_back(&fanout.analysis->options,
                                fanout.analysis->bgp, nullptr);
    }
  }
  // Serve deltas accumulate in-shard exactly like the fused analysis; the
  // shard-order merge after the join makes them the streamed twin of the
  // barrier path's post-merge scan_delta.
  const bool want_serve =
      fanout.serve != nullptr && fanout.serve->table != nullptr;
  std::vector<serve::DeltaShard> delta_shards;
  if (want_serve) {
    delta_shards.reserve(threads);
    for (unsigned s = 0; s < threads; ++s) {
      delta_shards.push_back(fanout.serve->table->make_shard());
    }
  }
  std::vector<PipelineShardSink> sinks;
  sinks.reserve(threads);
  for (unsigned s = 0; s < threads; ++s) {
    sinks.emplace_back(shard_queues[s].get(), options.batch_rows);
    if (fanout.analysis != nullptr) sinks[s].set_accumulator(&accumulators[s]);
    if (want_serve) sinks[s].set_delta(&delta_shards[s]);
    if (options.trace != nullptr) {
      sinks[s].enable_trace(options.trace->recorder_capacity());
    }
    if (options.merge_registry != nullptr) sinks[s].enable_sketch();
  }

  pipeline::Pipeline p;
  p.on_cancel([&shard_queues, &ingest_out, &snapshot_out] {
    for (auto& q : shard_queues) q->close();
    if (ingest_out != nullptr) ingest_out->close();
    if (snapshot_out != nullptr) snapshot_out->close();
  });

  // Probe stages first: their exceptions outrank the drains they starve.
  for (unsigned s = 0; s < threads; ++s) {
    char name[32];
    std::snprintf(name, sizeof name, "probe shard %u", s);
    p.add_stage(name, [&sweep, &sinks, &shard_queues, s] {
      const QueueCloser closer{shard_queues[s].get()};
      sweep.run_shard(s, &sinks[s]);
    });
  }

  std::vector<StageTrace> stage_trace;  // indexed like the drain stages
  const auto make_stage_trace = [&stage_trace, &options]() -> StageTrace& {
    StageTrace& st = stage_trace.emplace_back();
    if (options.trace != nullptr) {
      st.recorder = std::make_unique<trace::TraceRecorder>(
          options.trace->recorder_capacity());
    }
    if (options.merge_registry != nullptr) {
      st.sketch = std::make_unique<trace::QuantileSketch>();
    }
    return st;
  };
  std::vector<const char*> stage_lanes;

  // Drain stage 1 — the ordered drain point: consumes the per-shard
  // queues in shard order (shard order == unit order == serial order),
  // replaying every row into the global store exactly as the barrier
  // merge's append would, and records per-unit store offsets.
  {
    StageTrace& st = make_stage_trace();
    stage_lanes.push_back("pipeline ingest");
    trace::TraceRecorder* rec = st.recorder.get();
    trace::QuantileSketch* sketch = st.sketch.get();
    BatchQueue* out = ingest_out.get();
    p.add_stage("drain ingest", [&, rec, sketch, out] {
      const QueueCloser closer{out};
      std::vector<char> begun(units.size(), 0);
      for (unsigned s = 0; s < threads; ++s) {
        BatchPtr batch;
        while (shard_queues[s]->pop(batch)) {
          const trace::ScopedSample sample{rec, sketch, "pipeline.drain"};
          UnitIngest& unit = ingest.units[batch->unit];
          if (!begun[batch->unit]) {
            begun[batch->unit] = 1;
            unit.obs_begin = store.size();
          }
          for (std::size_t i = 0; i < batch->rows(); ++i) {
            store.add_packed(batch->targets[i], batch->responses[i],
                             batch->type_codes[i], batch->times[i]);
          }
          if (batch->unit_end) unit.obs_end = store.size();
          if (out != nullptr && !out->push(std::move(batch))) {
            throw pipeline::PipelineCancelled{};
          }
        }
      }
    });
  }

  // Drain stage 2 — snapshot: streams the same rows, in the same order,
  // into the writer. Row-wise append produces the same column vectors and
  // the same last-wins EUI pair map as the barrier's whole-store append,
  // so the snapshot bytes are identical.
  if (want_snapshot) {
    StageTrace& st = make_stage_trace();
    stage_lanes.push_back("pipeline snapshot");
    trace::TraceRecorder* rec = st.recorder.get();
    trace::QuantileSketch* sketch = st.sketch.get();
    BatchQueue* in = ingest_out.get();
    BatchQueue* out = snapshot_out.get();
    corpus::SnapshotWriter* writer = fanout.snapshot;
    p.add_stage("drain snapshot", [rec, sketch, in, out, writer] {
      const QueueCloser closer{out};
      BatchPtr batch;
      while (in->pop(batch)) {
        const trace::ScopedSample sample{rec, sketch, "pipeline.drain"};
        for (std::size_t i = 0; i < batch->rows(); ++i) {
          writer->append(batch->targets[i], batch->responses[i],
                         batch->type_codes[i], batch->times[i]);
        }
        if (out != nullptr && !out->push(std::move(batch))) {
          throw pipeline::PipelineCancelled{};
        }
      }
    });
  }

  // Drain stage 3 — day accounting: distinct embedded MACs and the
  // progress hook. Last in the chain, so rows reported drained have
  // cleared every consumer.
  if (want_accounting) {
    StageTrace& st = make_stage_trace();
    stage_lanes.push_back("pipeline accounting");
    trace::TraceRecorder* rec = st.recorder.get();
    trace::QuantileSketch* sketch = st.sketch.get();
    BatchQueue* in = want_snapshot ? snapshot_out.get() : ingest_out.get();
    auto* macs = fanout.macs;
    const auto& on_progress = fanout.on_progress;
    p.add_stage("drain accounting", [rec, sketch, in, macs, &on_progress] {
      std::size_t rows_drained = 0;
      BatchPtr batch;
      while (in->pop(batch)) {
        const trace::ScopedSample sample{rec, sketch, "pipeline.drain"};
        if (macs != nullptr) {
          for (const net::Ipv6Address response : batch->responses) {
            if (const auto mac = net::embedded_mac(response)) {
              macs->insert(*mac);
            }
          }
        }
        rows_drained += batch->rows();
        if (on_progress) on_progress(rows_drained);
      }
    });
  }

  p.run();
  const engine::SweepReport report = sweep.finish();
  ingest.counters = report.counters;
  ingest.threads_used = report.threads_used;
  for (std::size_t k = 0; k < units.size(); ++k) {
    ingest.units[k].sent = report.units[k].sent;
    ingest.units[k].responded = report.units[k].responded;
  }

  // Fused analysis merge, shard order == row order == serial order.
  if (fanout.analysis != nullptr) {
    for (unsigned s = 1; s < threads; ++s) {
      accumulators[0].merge_from(std::move(accumulators[s]));
    }
    fanout.analysis->table = std::move(accumulators[0]).finish();
    fanout.analysis->table.threads_used = threads;
    analysis::note_table_metrics(fanout.analysis->table,
                                 fanout.analysis->registry);
  }

  // Serve delta: merge the probe shards' deltas in the same shard order
  // and publish the day's version. Runs only after the sweep fully
  // drained — an aborted sweep never reaches this point.
  if (want_serve) {
    fanout.serve->table->apply(fanout.serve->table->merge_shards(
        std::move(delta_shards), fanout.serve->day));
  }

  // Instrumentation merge: producer lanes/sketches in shard order, then
  // the drain-stage lanes, then the queue ledgers and stage wall times.
  std::uint64_t total_batches = 0;
  for (unsigned s = 0; s < threads; ++s) {
    total_batches += sinks[s].batches();
    if (options.trace != nullptr && sinks[s].recorder() != nullptr) {
      char lane[32];
      std::snprintf(lane, sizeof lane, "pipeline shard %u", s);
      options.trace->drain(lane, *sinks[s].recorder());
    }
    if (options.merge_registry != nullptr && sinks[s].sketch() != nullptr) {
      options.merge_registry->sketch("pipeline.batch_ns")
          .merge_from(*sinks[s].sketch());
    }
  }
  for (std::size_t i = 0; i < stage_trace.size(); ++i) {
    if (options.trace != nullptr && stage_trace[i].recorder != nullptr) {
      options.trace->drain(stage_lanes[i], *stage_trace[i].recorder);
    }
    if (options.merge_registry != nullptr &&
        stage_trace[i].sketch != nullptr) {
      options.merge_registry->sketch("pipeline.drain_ns")
          .merge_from(*stage_trace[i].sketch);
    }
  }
  if (options.merge_registry != nullptr) {
    telemetry::Registry& reg = *options.merge_registry;
    reg.counter("pipeline.batches").add(total_batches);
    std::uint64_t push_stall = 0;
    std::uint64_t pop_stall = 0;
    std::uint64_t high_water = 0;
    const auto fold = [&](const BatchQueue& q) {
      const pipeline::QueueStats stats = q.stats();
      push_stall += stats.push_stall_ns;
      pop_stall += stats.pop_stall_ns;
      high_water = std::max(high_water, stats.high_water);
    };
    for (const auto& q : shard_queues) fold(*q);
    if (ingest_out != nullptr) fold(*ingest_out);
    if (snapshot_out != nullptr) fold(*snapshot_out);
    reg.sketch("pipeline.push_stall_ns").observe(push_stall);
    reg.sketch("pipeline.pop_stall_ns").observe(pop_stall);
    reg.gauge("pipeline.queue_high_water").set_u64(high_water);
    for (const pipeline::StageMetrics& sm : p.metrics()) {
      reg.sketch("pipeline.stage_ns").observe(sm.wall_ns);
    }
  }
  return ingest;
}

// ---------------------------------------------------------------------------
// Barrier scheduler (the original phase-ordered path).

SweepIngest sweep_barrier(sim::Internet& internet, sim::VirtualClock& clock,
                          std::span<const engine::SweepUnit> units,
                          const probe::ProberOptions& prober_options,
                          const engine::SweepOptions& options,
                          ObservationStore& store,
                          const SweepFanout& fanout) {
  std::vector<StoreShardSink> sinks(
      engine::effective_threads(options.threads, options.oversubscribe));
  for (auto& sink : sinks) {
    if (options.trace != nullptr) {
      sink.enable_trace(options.trace->recorder_capacity());
    }
    if (options.merge_registry != nullptr) sink.enable_sketch();
  }
  const std::size_t appended_begin = store.size();
  const auto report = engine::run_sharded_sweep(
      internet, clock, units, prober_options, options,
      [&sinks](unsigned shard) { return &sinks[shard]; });

  SweepIngest ingest;
  ingest.counters = report.counters;
  ingest.threads_used = report.threads_used;
  ingest.units.resize(units.size());

  // Merge in shard order: shards hold contiguous ascending unit ranges, so
  // concatenation reproduces the serial observation sequence exactly. The
  // ingest trace lanes and batch-latency sketches fold in at the same
  // point, in the same order.
  for (std::size_t s = 0; s < sinks.size(); ++s) {
    StoreShardSink& sink = sinks[s];
    const std::size_t base = store.size();
    store.append(sink.store());
    if (fanout.snapshot != nullptr) fanout.snapshot->append(sink.store());
    for (const auto& range : sink.ranges()) {
      UnitIngest& unit = ingest.units[range.unit];
      unit.sent = report.units[range.unit].sent;
      unit.responded = report.units[range.unit].responded;
      unit.obs_begin = base + range.begin;
      unit.obs_end = base + range.end;
    }
    if (options.trace != nullptr && sink.recorder() != nullptr) {
      char lane[32];
      std::snprintf(lane, sizeof lane, "ingest shard %zu", s);
      options.trace->drain(lane, *sink.recorder());
    }
    if (options.merge_registry != nullptr && sink.sketch() != nullptr) {
      options.merge_registry->sketch("ingest.batch_ns")
          .merge_from(*sink.sketch());
    }
  }

  // Post-merge fan-out: the same consumers the streamed path runs
  // concurrently, here phase-ordered over the appended row range.
  if (fanout.macs != nullptr) {
    for (std::size_t i = appended_begin; i < store.size(); ++i) {
      if (const auto mac = net::embedded_mac(store.response(i))) {
        fanout.macs->insert(*mac);
      }
    }
  }
  if (fanout.analysis != nullptr) {
    assert(fanout.analysis->options.windows.empty());
    fanout.analysis->table = analysis::analyze(
        analysis::StoreInput{store, appended_begin, store.size()},
        fanout.analysis->bgp, fanout.analysis->options,
        fanout.analysis->registry);
  }
  if (fanout.on_progress) fanout.on_progress(store.size() - appended_begin);
  // Serve delta over the appended rows — after on_progress, so an
  // aborting progress hook leaves the ServeTable on its previous version
  // under either scheduler.
  if (fanout.serve != nullptr && fanout.serve->table != nullptr) {
    fanout.serve->table->apply(
        analysis::StoreInput{store, appended_begin, store.size()},
        fanout.serve->day);
  }
  return ingest;
}

}  // namespace

SweepIngest sweep_into_store(sim::Internet& internet, sim::VirtualClock& clock,
                             std::span<const engine::SweepUnit> units,
                             const probe::ProberOptions& prober_options,
                             const engine::SweepOptions& options,
                             ObservationStore& store,
                             const SweepFanout& fanout) {
  if (options.pipeline) {
    return sweep_streamed(internet, clock, units, prober_options, options,
                          store, fanout);
  }
  return sweep_barrier(internet, clock, units, prober_options, options, store,
                       fanout);
}

SweepIngest sweep_into_store(sim::Internet& internet, sim::VirtualClock& clock,
                             std::span<const engine::SweepUnit> units,
                             const probe::ProberOptions& prober_options,
                             const engine::SweepOptions& options,
                             ObservationStore& store,
                             corpus::SnapshotWriter* snapshot) {
  SweepFanout fanout;
  fanout.snapshot = snapshot;
  return sweep_into_store(internet, clock, units, prober_options, options,
                          store, fanout);
}

}  // namespace scent::core
