#include "core/sweep_ingest.h"

#include "corpus/snapshot.h"

namespace scent::core {
namespace {

/// Shard-local ingest: results land in a private store, unit boundaries
/// are recorded as store offsets for the post-join range fix-up.
class StoreShardSink final : public engine::UnitSink {
 public:
  void on_unit_begin(std::size_t unit_index) override {
    ranges_.push_back({unit_index, store_.size(), store_.size()});
  }

  void on_results(std::size_t unit_index,
                  std::span<const probe::ProbeResult> batch) override {
    (void)unit_index;
    store_.add_all(batch);
  }

  void on_unit_end(std::size_t unit_index) override {
    (void)unit_index;
    ranges_.back().end = store_.size();
  }

  struct UnitRange {
    std::size_t unit = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  [[nodiscard]] const ObservationStore& store() const noexcept {
    return store_;
  }
  [[nodiscard]] const std::vector<UnitRange>& ranges() const noexcept {
    return ranges_;
  }

 private:
  ObservationStore store_;
  std::vector<UnitRange> ranges_;
};

}  // namespace

SweepIngest sweep_into_store(sim::Internet& internet, sim::VirtualClock& clock,
                             std::span<const engine::SweepUnit> units,
                             const probe::ProberOptions& prober_options,
                             const engine::SweepOptions& options,
                             ObservationStore& store,
                             corpus::SnapshotWriter* snapshot) {
  std::vector<StoreShardSink> sinks(
      engine::resolve_threads(options.threads));
  const auto report = engine::run_sharded_sweep(
      internet, clock, units, prober_options, options,
      [&sinks](unsigned shard) { return &sinks[shard]; });

  SweepIngest ingest;
  ingest.counters = report.counters;
  ingest.threads_used = report.threads_used;
  ingest.units.resize(units.size());

  // Merge in shard order: shards hold contiguous ascending unit ranges, so
  // concatenation reproduces the serial observation sequence exactly.
  for (const auto& sink : sinks) {
    const std::size_t base = store.size();
    store.append(sink.store());
    if (snapshot != nullptr) snapshot->append(sink.store());
    for (const auto& range : sink.ranges()) {
      UnitIngest& unit = ingest.units[range.unit];
      unit.sent = report.units[range.unit].sent;
      unit.responded = report.units[range.unit].responded;
      unit.obs_begin = base + range.begin;
      unit.obs_end = base + range.end;
    }
  }
  return ingest;
}

}  // namespace scent::core
