#include "core/sweep_ingest.h"

#include <cstdio>
#include <memory>

#include "corpus/snapshot.h"
#include "engine/parallel.h"
#include "trace/recorder.h"

namespace scent::core {
namespace {

/// Shard-local ingest: results land in a private store, unit boundaries
/// are recorded as store offsets for the post-join range fix-up.
///
/// When tracing, each sink owns a flight-recorder ring ("ingest shard s"
/// lanes — the columnar ingest's own lane group, distinct from the sweep
/// lanes) and a shard-local batch-latency sketch folded into the merge
/// registry in shard order. Sink callbacks run inside the prober's sweep,
/// so per-batch instrumentation here IS the columnar hot path — it must
/// stay within the bench-guarded idle/enabled overhead budgets.
class StoreShardSink final : public engine::UnitSink {
 public:
  void enable_trace(std::size_t recorder_capacity) {
    recorder_ = std::make_unique<trace::TraceRecorder>(recorder_capacity);
  }
  void enable_sketch() {
    sketch_ = std::make_unique<trace::QuantileSketch>();
  }

  void on_unit_begin(std::size_t unit_index) override {
    ranges_.push_back({unit_index, store_.size(), store_.size()});
  }

  void on_results(std::size_t unit_index,
                  std::span<const probe::ProbeResult> batch) override {
    (void)unit_index;
    const trace::ScopedSample sample{recorder_.get(), sketch_.get(),
                                     "ingest.batch"};
    store_.add_all(batch);
  }

  void on_unit_end(std::size_t unit_index) override {
    (void)unit_index;
    ranges_.back().end = store_.size();
  }

  struct UnitRange {
    std::size_t unit = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  [[nodiscard]] const ObservationStore& store() const noexcept {
    return store_;
  }
  [[nodiscard]] const std::vector<UnitRange>& ranges() const noexcept {
    return ranges_;
  }
  [[nodiscard]] trace::TraceRecorder* recorder() noexcept {
    return recorder_.get();
  }
  [[nodiscard]] const trace::QuantileSketch* sketch() const noexcept {
    return sketch_.get();
  }

 private:
  ObservationStore store_;
  std::vector<UnitRange> ranges_;
  std::unique_ptr<trace::TraceRecorder> recorder_;
  std::unique_ptr<trace::QuantileSketch> sketch_;
};

}  // namespace

SweepIngest sweep_into_store(sim::Internet& internet, sim::VirtualClock& clock,
                             std::span<const engine::SweepUnit> units,
                             const probe::ProberOptions& prober_options,
                             const engine::SweepOptions& options,
                             ObservationStore& store,
                             corpus::SnapshotWriter* snapshot) {
  std::vector<StoreShardSink> sinks(
      engine::effective_threads(options.threads, options.oversubscribe));
  for (auto& sink : sinks) {
    if (options.trace != nullptr) {
      sink.enable_trace(options.trace->recorder_capacity());
    }
    if (options.merge_registry != nullptr) sink.enable_sketch();
  }
  const auto report = engine::run_sharded_sweep(
      internet, clock, units, prober_options, options,
      [&sinks](unsigned shard) { return &sinks[shard]; });

  SweepIngest ingest;
  ingest.counters = report.counters;
  ingest.threads_used = report.threads_used;
  ingest.units.resize(units.size());

  // Merge in shard order: shards hold contiguous ascending unit ranges, so
  // concatenation reproduces the serial observation sequence exactly. The
  // ingest trace lanes and batch-latency sketches fold in at the same
  // point, in the same order.
  for (std::size_t s = 0; s < sinks.size(); ++s) {
    StoreShardSink& sink = sinks[s];
    const std::size_t base = store.size();
    store.append(sink.store());
    if (snapshot != nullptr) snapshot->append(sink.store());
    for (const auto& range : sink.ranges()) {
      UnitIngest& unit = ingest.units[range.unit];
      unit.sent = report.units[range.unit].sent;
      unit.responded = report.units[range.unit].responded;
      unit.obs_begin = base + range.begin;
      unit.obs_end = base + range.end;
    }
    if (options.trace != nullptr && sink.recorder() != nullptr) {
      char lane[32];
      std::snprintf(lane, sizeof lane, "ingest shard %zu", s);
      options.trace->drain(lane, *sink.recorder());
    }
    if (options.merge_registry != nullptr && sink.sketch() != nullptr) {
      options.merge_registry->sketch("ingest.batch_ns")
          .merge_from(*sink.sketch());
    }
  }
  return ingest;
}

}  // namespace scent::core
