// campaign.h - the §5 longitudinal measurement campaign.
//
// Probes an identified set of (rotating) /48s daily for several weeks,
// accumulating the observation corpus behind Figures 4-12. Day 0 sweeps
// every /64 of every target /48 (the granularity Algorithm 1 needs and the
// paper's daily mode); to keep simulated campaigns affordable, later days
// can optionally probe once per *inferred allocation* instead — the paper's
// own §5.2 observation that an attacker who knows the allocation size saves
// up to 256x. Both modes use the same seed every day, so targets and order
// repeat exactly as the paper's zmap configuration did.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "container/flat_hash.h"
#include "core/observation.h"
#include "netbase/prefix.h"
#include "probe/prober.h"
#include "routing/bgp_table.h"
#include "sim/internet.h"
#include "sim/sim_time.h"
#include "telemetry/journal.h"
#include "telemetry/metrics.h"
#include "trace/recorder.h"

namespace scent::serve {
class ServeTable;
}  // namespace scent::serve

namespace scent::core {

struct DaySummary;

struct CampaignOptions {
  unsigned days = 44;  ///< Paper: 44 days, late July - early September.
  /// Time of day each daily scan starts (after the typical rotation
  /// window).
  sim::Duration scan_time_of_day = sim::hours(12);
  std::uint64_t seed = 0xCA3B;
  /// Day 0 always sweeps per /64. When true, later days probe once per
  /// inferred allocation; when false, every day sweeps per /64.
  bool allocation_granularity_after_day0 = true;

  /// Worker shards for the daily sweeps (engine executor); 0 = hardware
  /// concurrency. Any value yields a bit-identical corpus — the engine's
  /// determinism contract — so this is purely a wall-clock knob.
  unsigned threads = 1;
  /// Allow more shards than physical cores (see
  /// engine::SweepOptions::oversubscribe); the equivalence matrices set it
  /// so low-core CI still runs genuinely multi-shard.
  bool oversubscribe = false;

  /// Streamed scheduler for the daily sweeps (DESIGN.md §5i): probe shards
  /// push observation batches through bounded queues into a concurrent
  /// drain chain (columnar ingest → day snapshot → accounting) instead of
  /// the phase-barrier sweep→merge→scan sequence, and the day's fused
  /// analysis accumulates inside the probe shards. Corpus, snapshot bytes
  /// and results are bit-identical either way — this is a wall-clock knob,
  /// like `threads`.
  bool pipeline = false;
  /// Bounded-queue capacity, in observation batches, for the streamed
  /// scheduler (engine::SweepOptions::queue_capacity). Caps the memory in
  /// flight and sets how far probing may run ahead of the drain.
  std::uint32_t queue_capacity = 16;

  /// When non-empty, the campaign checkpoints after every day: the day's
  /// observations land in `<dir>/day_NNNN.snap` and a manifest records the
  /// chain plus the clock cursor and frozen day-0 allocation inference. A
  /// rerun pointed at the same directory (with the same seed, schedule and
  /// targets — validated via the manifest) replays the completed days from
  /// the snapshots and continues from day N, producing a corpus and result
  /// bit-identical to an uninterrupted run at any thread count — the §5d
  /// determinism contract extended across process boundaries (§5f). An
  /// incompatible or corrupt checkpoint is discarded (journaled as such)
  /// and the campaign starts over.
  std::string checkpoint_dir;

  /// Snapshot format for the day snapshots this run writes: 2 (default,
  /// block-compressed) or 1 (the frozen uncompressed layout). Resume is
  /// version-agnostic — the reader auto-detects per file — so a chain may
  /// mix versions across a resume (e.g. old v1 days + new v2 days).
  std::uint32_t snapshot_version = 2;

  /// Optional telemetry sinks. With a registry, every day runs under
  /// nested spans ("campaign/day/sweep", ".../ingest", ".../alloc_infer")
  /// and campaign totals land in `campaign.*` gauges; with a journal, one
  /// "day_funnel" record is emitted per campaign day.
  telemetry::Registry* registry = nullptr;
  telemetry::Journal* journal = nullptr;

  /// Optional trace collector. The campaign driver records day/sweep/
  /// ingest/alloc_infer/checkpoint phase events into a "campaign" lane,
  /// the engine adds "sweep shard s" and "ingest shard s" lanes, day-0
  /// inference adds "analysis shard s" lanes, and snapshot I/O is
  /// bracketed per section — one Perfetto-loadable timeline of the whole
  /// data plane. With a registry, per-day stage wall latencies also land
  /// in campaign.*_ns quantile sketches.
  trace::TraceCollector* trace = nullptr;

  /// Optional serve sink (DESIGN.md §5k): each swept day is applied to
  /// this table as one AggregateDelta and published as the next
  /// TableVersion — riding the probe shards under the streamed scheduler,
  /// scanned post-merge behind the barrier, identically either way. On
  /// resume, the replayed days are re-applied as deltas from the restored
  /// snapshot chain (after the whole replay validates) before live days
  /// continue, so a killed-and-resumed campaign's ServeTable answers
  /// queries identically to an uninterrupted run's. Reader threads may
  /// query the table concurrently for the campaign's whole lifetime.
  serve::ServeTable* serve = nullptr;

  /// Invoked after each day is fully committed (summary recorded and, when
  /// checkpointing, its snapshot + manifest durably written). Drives the
  /// kill-and-resume harness; also usable for progress reporting.
  std::function<void(const DaySummary&)> on_day_complete;

  /// Invoked with the cumulative number of the current day's rows that
  /// have fully drained — per batch under the streamed scheduler (from a
  /// drain thread, mid-sweep), once per day after the merge under the
  /// barrier. Nothing about the day is committed yet when it fires, so
  /// throwing (or killing the process) from here models dying with a
  /// partially drained day — the mid-day half of the kill-and-resume
  /// harness, which must resume bit-identically from the previous day's
  /// checkpoint.
  std::function<void(std::int64_t day, std::size_t rows)> on_day_progress;
};

/// Per-day funnel record. Probe/response counts are read back from the
/// prober's own counters (per-day deltas), not tallied by hand — the
/// prober is the single source of truth for what went on the wire.
struct DaySummary {
  std::int64_t day = 0;
  std::uint64_t probes = 0;
  std::uint64_t responses = 0;
  std::uint64_t unique_eui64_iids = 0;
};

struct CampaignResult {
  ObservationStore observations;
  std::vector<DaySummary> daily;
  std::uint64_t probes_sent = 0;
  std::uint64_t responses = 0;

  /// Per-AS inferred allocation length from the day-0 full sweep, keyed
  /// ascending by ASN (flat-map backed; insertion order == ASN order, so
  /// iteration — and every digest/manifest derived from it — matches the
  /// ordered std::map it replaced byte for byte).
  container::FlatMap<routing::Asn, unsigned> allocation_length_by_as;

  /// Days replayed from a checkpoint instead of being swept live.
  unsigned resumed_days = 0;
  /// False if a checkpoint write failed mid-campaign (the in-memory result
  /// is still valid; the on-disk chain is not resumable past that day).
  bool checkpoint_ok = true;
};

/// Runs the campaign against `targets` (typically the bootstrap's rotating
/// /48 set). Advances the clock day by day.
[[nodiscard]] CampaignResult run_campaign(sim::Internet& internet,
                                          sim::VirtualClock& clock,
                                          probe::Prober& prober,
                                          const std::vector<net::Prefix>& targets,
                                          const CampaignOptions& options = {});

}  // namespace scent::core
