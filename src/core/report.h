// report.h - presentation utilities for experiment harnesses.
//
// The bench binaries regenerate the paper's tables and figures as text:
// CDFs printed at fixed quantiles or as full series, fixed-width tables,
// and the Figure 3 style allocation maps rendered as character grids. These
// helpers keep every bench's output consistent and diff-friendly.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace scent::core {

/// Empirical CDF over numeric samples.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples) : samples_(std::move(samples)) {
    std::sort(samples_.begin(), samples_.end());
  }

  template <typename T>
  static Cdf of(const std::vector<T>& values) {
    std::vector<double> samples;
    samples.reserve(values.size());
    for (const T& v : values) samples.push_back(static_cast<double>(v));
    return Cdf{std::move(samples)};
  }

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Fraction of samples <= x.
  [[nodiscard]] double at(double x) const {
    if (samples_.empty()) return 0.0;
    const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
  }

  /// The q-quantile (q in [0, 1]).
  [[nodiscard]] double quantile(double q) const {
    if (samples_.empty()) return 0.0;
    const double clamped = std::clamp(q, 0.0, 1.0);
    const auto index = static_cast<std::size_t>(
        clamped * static_cast<double>(samples_.size() - 1) + 0.5);
    return samples_[index];
  }

  [[nodiscard]] double min() const { return empty() ? 0.0 : samples_.front(); }
  [[nodiscard]] double max() const { return empty() ? 0.0 : samples_.back(); }

  /// Distinct values with their cumulative fractions — the exact step
  /// function, suitable for plotting or table output.
  [[nodiscard]] std::vector<std::pair<double, double>> steps() const {
    std::vector<std::pair<double, double>> out;
    for (std::size_t i = 0; i < samples_.size(); ++i) {
      if (i + 1 == samples_.size() || samples_[i + 1] != samples_[i]) {
        out.emplace_back(samples_[i], static_cast<double>(i + 1) /
                                          static_cast<double>(samples_.size()));
      }
    }
    return out;
  }

 private:
  std::vector<double> samples_;
};

/// Minimal fixed-width text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    const auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < widths.size(); ++c) {
        os << "| " << std::setw(static_cast<int>(widths[c])) << std::left
           << (c < row.size() ? row[c] : "") << ' ';
      }
      os << "|\n";
    };
    print_row(headers_);
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << "|" << std::string(widths[c] + 2, '-');
    }
    os << "|\n";
    for (const auto& row : rows_) print_row(row);
  }

  [[nodiscard]] std::string to_string() const {
    std::ostringstream os;
    print(os);
    return os.str();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Figure-3-style allocation map: a 2D character grid over (byte 7, byte 8)
/// of probed /64s, where each distinct responding source address maps to a
/// letter and silence maps to '.'. Rows are the 7th byte (0..255, sampled),
/// columns the 8th byte.
class AllocationGrid {
 public:
  AllocationGrid() : cells_(256 * 256, -1) {}

  /// Records that the /64 with bytes (b7, b8) was answered by `source_id`
  /// (any stable small integer per distinct source; use intern()).
  void mark(std::uint8_t b7, std::uint8_t b8, int source_id) {
    cells_[static_cast<std::size_t>(b7) * 256 + b8] = source_id;
  }

  /// Interns a source address value into a stable small id.
  int intern(std::uint64_t source_key) {
    const auto [it, created] =
        ids_.try_emplace(source_key, static_cast<int>(ids_.size()));
    return it->second;
  }

  [[nodiscard]] std::size_t distinct_sources() const noexcept {
    return ids_.size();
  }

  /// Renders a rows x cols downsampled view. Distinct ids cycle over
  /// letters/digits; '.' is unresponsive.
  [[nodiscard]] std::string render(unsigned rows = 32,
                                   unsigned cols = 64) const {
    static constexpr char kPalette[] =
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    std::string out;
    out.reserve(static_cast<std::size_t>(rows) * (cols + 1));
    for (unsigned r = 0; r < rows; ++r) {
      for (unsigned c = 0; c < cols; ++c) {
        const unsigned b7 = r * 256 / rows;
        const unsigned b8 = c * 256 / cols;
        const int id = cells_[b7 * 256 + b8];
        out += id < 0 ? '.' : kPalette[static_cast<unsigned>(id) % 62];
      }
      out += '\n';
    }
    return out;
  }

 private:
  std::vector<int> cells_;
  std::map<std::uint64_t, int> ids_;
};

}  // namespace scent::core
