#include "core/tracker.h"

#include "analysis/derive.h"
#include "analysis/engine.h"
#include "analysis/input.h"
#include "netbase/eui64.h"
#include "probe/target_generator.h"
#include "sim/rng.h"
#include "telemetry/span.h"

namespace scent::core {

TrackAttempt Tracker::finish(TrackAttempt attempt) {
  if (config_.registry != nullptr) {
    telemetry::Registry& reg = *config_.registry;
    reg.counter("tracker.attempts").inc();
    reg.counter(attempt.found ? "tracker.hits" : "tracker.misses").inc();
    if (attempt.found_by_prediction) reg.counter("tracker.prediction_hits").inc();
    reg.counter("tracker.probes").add(attempt.probes_sent);
    reg.histogram("tracker.probes_per_attempt",
                  {1, 4, 16, 64, 256, 1024, 4096, 16384})
        .observe(attempt.probes_sent);
  }
  if (config_.journal != nullptr) {
    if (attempt.found) {
      config_.journal->event("tracker_hit",
                             {{"day", attempt.day},
                              {"probes", attempt.probes_sent},
                              {"by_prediction", attempt.found_by_prediction},
                              {"address", attempt.address.to_string()}});
    } else {
      config_.journal->event(
          "tracker_miss",
          {{"day", attempt.day}, {"probes", attempt.probes_sent}});
    }
  }
  return attempt;
}

bool Tracker::probe_and_check(net::Ipv6Address target, TrackAttempt& attempt) {
  const probe::ProbeResult r = prober_->probe_one(target);
  ++attempt.probes_sent;
  if (!r.responded) return false;
  const auto mac = net::embedded_mac(r.response_source);
  if (!mac || *mac != config_.target_mac) return false;
  attempt.found = true;
  attempt.address = r.response_source;
  attempt.allocation =
      net::Prefix{r.response_source, config_.allocation_length};
  return true;
}

TrackAttempt Tracker::locate(std::int64_t day) {
  telemetry::Span span{config_.registry, "tracker.locate"};
  TrackAttempt attempt;
  attempt.day = day;

  // Phase 1: prediction. Probe the stride model's expected slot and a small
  // neighborhood around it.
  if (config_.prediction) {
    const StrideModel& model = *config_.prediction;
    const std::uint64_t n = model.slots();
    for (unsigned d = 0; d <= config_.prediction_neighborhood && n > 0; ++d) {
      // Probe slot, slot+d, slot-d (d = 0 probes once).
      const std::uint64_t base = model.predict_slot(day);
      const std::uint64_t candidates[2] = {(base + d) % n,
                                           (base + n - d % n) % n};
      const unsigned count = d == 0 ? 1 : 2;
      for (unsigned k = 0; k < count; ++k) {
        const net::Prefix block = model.pool.subnet(
            model.allocation_length, net::Uint128{candidates[k]});
        const net::Ipv6Address target = probe::target_in(
            block, sim::mix64(config_.seed, static_cast<std::uint64_t>(day)));
        if (probe_and_check(target, attempt)) {
          attempt.found_by_prediction = true;
          sightings_.push_back(
              Sighting{day, attempt.address.network()});
          return finish(std::move(attempt));
        }
      }
    }
  }

  // Phase 2: randomized sweep of the pool, one probe per allocation-sized
  // block (the paper's space-reduction search, Figure 2).
  probe::SubnetTargets sweep{
      config_.pool, config_.allocation_length,
      sim::mix64(config_.seed, static_cast<std::uint64_t>(day), 0x5EEB)};
  net::Ipv6Address target;
  while (sweep.next(target)) {
    if (probe_and_check(target, attempt)) {
      sightings_.push_back(Sighting{day, attempt.address.network()});
      return finish(std::move(attempt));
    }
  }
  return finish(std::move(attempt));
}

std::vector<Sighting> sightings_from_snapshots(
    const std::vector<std::string>& snapshot_paths, net::MacAddress mac,
    std::size_t* failed_files) {
  // Fused-engine follow path: lazy chain read of only the response and
  // time columns (24 of 42 bytes per row), restricted to the one device.
  // Output and skip semantics are identical to the legacy per-file loop —
  // unreadable snapshots contribute no rows and are counted.
  analysis::ChainInput chain{snapshot_paths};
  analysis::AnalysisOptions options;
  options.collect_targets = false;
  options.attribute = false;
  options.only_mac = mac;
  const analysis::AggregateTable table =
      analysis::analyze(chain, nullptr, options);
  if (failed_files != nullptr) *failed_files = table.failed_files;
  return analysis::sightings_of(table, mac);
}

bool Tracker::update_prediction(double min_support) {
  auto model = fit_stride(sightings_, config_.pool, config_.allocation_length,
                          min_support);
  if (!model) return false;
  config_.prediction = *model;
  return true;
}

}  // namespace scent::core
