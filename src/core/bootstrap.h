// bootstrap.h - the §4 discovery funnel: find every prefix-rotating network.
//
// Stage 0 (seed): discover /48s whose last responsive hop is an EUI-64
//   address, one probe per /48 of every BGP-advertised /32 (the CAIDA
//   routed-/48 campaign substitute; the yarrp-style traceroute engine
//   produces identical last-hop data and is exercised separately).
// Stage 1 (§4.1 expansion): for every /32 containing a seed /48, probe one
//   random-IID address in a random /64 of *each* of its /48s; keep the /48s
//   with a unique EUI-64 response.
// Stage 2 (§4.2 density): probe one address per /56 of each candidate /48;
//   classify high vs low density (<= 2 unique EUI responders is low).
// Stage 3 (§4.3 rotation): probe one address per /64 of each high-density
//   /48, twice, `snapshot_gap` apart with the same seed (same targets, same
//   order); /48s whose <target, EUI response> pairs changed are rotating.
//
// The result is the set of rotating /48s plus the funnel accounting the
// paper reports (total addresses, EUI-64 share, unique IIDs).
#pragma once

#include <cstdint>
#include <vector>

#include "core/density.h"
#include "core/observation.h"
#include "core/rotation_detector.h"
#include "netbase/prefix.h"
#include "probe/prober.h"
#include "routing/bgp_table.h"
#include "sim/internet.h"
#include "sim/sim_time.h"
#include "telemetry/journal.h"
#include "telemetry/metrics.h"
#include "trace/recorder.h"

namespace scent::core {

struct BootstrapOptions {
  std::uint64_t seed = 0xB007;
  /// Probes sent into each /48 during the seed and expansion stages. The
  /// paper sends one (a single random /64 per /48, §4.1), which misses
  /// sparsely allocated /48s with probability (1 - occupancy); raising this
  /// trades probe budget for recall.
  unsigned probes_per_48 = 1;
  /// Low-density cut: unique EUI responders <= threshold (paper: 2 of 256
  /// probes, i.e. density < 0.01).
  std::uint64_t density_low_threshold = 2;
  /// Gap between the two rotation-detection snapshots (paper: 24 h).
  sim::Duration snapshot_gap = sim::kDay;
  /// Only advertisements at least this specific are expanded per-/48
  /// (paper: networks /32 or smaller).
  unsigned min_advert_length = 32;

  /// Stage-0 mode. The CAIDA seed the paper bootstraps from is a
  /// *traceroute* campaign (one traceroute per routed /48, last responsive
  /// hop recorded). When true, stage 0 runs literal hop-limited traceroutes
  /// and takes the EUI-64 *last hop*; when false (default) it sends one
  /// full-hop-limit probe per /48, which yields the identical last-hop
  /// answer at a fraction of the packet cost (no intermediate Time
  /// Exceeded churn — the same reason the paper itself switched from yarrp
  /// to zmap, §3.1).
  bool seed_with_traceroute = false;
  unsigned traceroute_max_hops = 12;

  /// Worker shards for every sweep stage (engine executor); 0 = hardware
  /// concurrency. Bit-identical results at any value — purely a
  /// wall-clock knob. Traceroute-mode seeding stays serial (its per-hop
  /// probe count is response-dependent, so it has no a-priori schedule).
  unsigned threads = 1;
  /// Allow more shards than physical cores (see
  /// engine::SweepOptions::oversubscribe); the equivalence matrices set it
  /// so low-core CI still runs genuinely multi-shard.
  bool oversubscribe = false;
  /// Streamed scheduler for the funnel sweeps (DESIGN.md §5i): probe
  /// shards drain through bounded queues into the columnar ingest
  /// concurrently with probing. Bit-identical results either way.
  bool pipeline = false;
  /// Bounded-queue capacity (batches) for the streamed scheduler.
  std::uint32_t queue_capacity = 16;

  /// Optional telemetry sinks. With a registry, each stage runs under a
  /// span ("bootstrap/seed", ".../expand", ".../density", ".../rotation")
  /// and the funnel accounting lands in `funnel.*` gauges; with a journal,
  /// a "funnel" record and one "rotation_window_detected" event per
  /// rotating /48 are emitted.
  telemetry::Registry* registry = nullptr;
  telemetry::Journal* journal = nullptr;

  /// Optional trace collector: every funnel sweep contributes "sweep
  /// shard s" / "ingest shard s" lanes and the rotation-stage analysis
  /// adds "analysis shard s" lanes (see engine::SweepOptions::trace).
  trace::TraceCollector* trace = nullptr;
};

struct BootstrapResult {
  // Stage outputs.
  std::vector<net::Prefix> seed_48s;
  std::vector<net::Prefix> seed_32s;
  std::vector<net::Prefix> expanded_48s;
  std::vector<DensityResult> densities;
  std::vector<net::Prefix> high_density_48s;
  std::vector<net::Prefix> low_density_48s;
  std::vector<net::Prefix> unresponsive_48s;
  std::vector<RotationVerdict> verdicts;
  std::vector<net::Prefix> rotating_48s;

  // Funnel accounting (§4.3's closing paragraph).
  std::uint64_t probes_sent = 0;
  std::uint64_t total_addresses = 0;   ///< Distinct response addresses.
  std::uint64_t eui64_addresses = 0;   ///< ... of which EUI-64.
  std::uint64_t unique_iids = 0;       ///< Distinct embedded MACs.

  /// Every observation gathered across all stages (for reuse by analyses).
  ObservationStore observations;
};

/// Runs the full funnel against the (simulated) Internet.
[[nodiscard]] BootstrapResult run_bootstrap(sim::Internet& internet,
                                            sim::VirtualClock& clock,
                                            probe::Prober& prober,
                                            const BootstrapOptions& options = {});

/// Groups rotating /48s by BGP origin: the data behind Table 1.
struct RotatorGroup {
  std::string key;  ///< ASN as string, or country code.
  std::uint64_t count = 0;
};

[[nodiscard]] std::vector<RotatorGroup> rotators_by_asn(
    const std::vector<net::Prefix>& rotating_48s,
    const routing::BgpTable& bgp);
[[nodiscard]] std::vector<RotatorGroup> rotators_by_country(
    const std::vector<net::Prefix>& rotating_48s,
    const routing::BgpTable& bgp);

}  // namespace scent::core
