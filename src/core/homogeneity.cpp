#include "core/homogeneity.h"

#include <algorithm>

#include "container/flat_hash.h"

namespace scent::core {

std::vector<AsHomogeneity> analyze_homogeneity(const ObservationStore& store,
                                               const routing::BgpTable& bgp,
                                               const oui::Registry& registry,
                                               std::size_t min_iids) {
  // asn -> vendor -> set of distinct MACs. A MAC observed in several ASes
  // (pathological reuse) counts once in each — the paper's per-AS counts
  // are per-AS unique.
  struct AsAccumulator {
    std::string country;
    container::FlatMap<std::string,
                       container::FlatSet<net::MacAddress, net::MacAddressHash>>
        vendor_macs;
    container::FlatSet<net::MacAddress, net::MacAddressHash> all_macs;
  };
  container::FlatMap<routing::Asn, AsAccumulator> per_as;
  routing::AttributionCache attributions;

  for (const auto& [mac, index_list] : store.by_mac()) {
    // Attribute each observation of this MAC; the same MAC may map to
    // multiple ASes.
    container::FlatSet<routing::Asn> seen_as;
    for (const std::uint32_t i : store.indices(index_list)) {
      const auto* ad = bgp.attribute(store.response(i), attributions);
      if (ad == nullptr) continue;
      if (!seen_as.insert(ad->origin_asn).second) continue;
      AsAccumulator& acc = per_as[ad->origin_asn];
      acc.country = ad->country;
      const auto vendor = registry.vendor(mac);
      acc.vendor_macs[vendor ? std::string{*vendor} : "(unknown)"].insert(mac);
      acc.all_macs.insert(mac);
    }
  }

  std::vector<AsHomogeneity> out;
  out.reserve(per_as.size());
  for (auto& [asn, acc] : per_as) {
    if (acc.all_macs.size() < min_iids) continue;
    AsHomogeneity h;
    h.asn = asn;
    h.country = acc.country;
    h.unique_iids = acc.all_macs.size();
    h.vendors.reserve(acc.vendor_macs.size());
    for (const auto& [vendor, macs] : acc.vendor_macs) {
      h.vendors.push_back(VendorCount{vendor, macs.size()});
    }
    std::sort(h.vendors.begin(), h.vendors.end(),
              [](const VendorCount& a, const VendorCount& b) {
                if (a.unique_iids != b.unique_iids) {
                  return a.unique_iids > b.unique_iids;
                }
                return a.vendor < b.vendor;
              });
    out.push_back(std::move(h));
  }
  std::sort(out.begin(), out.end(),
            [](const AsHomogeneity& a, const AsHomogeneity& b) {
              return a.asn < b.asn;
            });
  return out;
}

}  // namespace scent::core
