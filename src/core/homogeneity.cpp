#include "core/homogeneity.h"

#include "analysis/derive.h"
#include "analysis/engine.h"

namespace scent::core {

std::vector<AsHomogeneity> analyze_homogeneity(const ObservationStore& store,
                                               const routing::BgpTable& bgp,
                                               const oui::Registry& registry,
                                               std::size_t min_iids) {
  // One fused pass (analysis::analyze) instead of a dedicated scan; the
  // derivation reproduces the legacy per-AS/vendor distinct-MAC counts bit
  // for bit (bench_micro's analysis guard asserts the equality). Vendor
  // homogeneity needs neither target spans nor sighting histories.
  analysis::AnalysisOptions options;
  options.collect_targets = false;
  options.collect_sightings = false;
  const analysis::AggregateTable table =
      analysis::analyze(store, &bgp, options);
  return analysis::homogeneity(table, registry, min_iids);
}

}  // namespace scent::core
