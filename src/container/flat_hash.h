// flat_hash.h - cache-friendly, insertion-ordered hash containers.
//
// The probe→ingest data plane keys tens of millions of observations by
// response address, embedded MAC, /48 prefix and rate-limit bucket; at that
// scale node-based std::unordered_map/set (one allocation plus a pointer
// chase per element) dominate both ingest time and memory. FlatMap/FlatSet
// replace them with open addressing over two flat arrays:
//
//   * a dense slot vector holding the elements in insertion order, and
//   * a power-of-two probe table split into a control-byte array (one 8-bit
//     hash tag per bucket, 0 = empty) and a parallel 32-bit slot-index
//     array, walked with triangular-step (quadratic) probing.
//
// The split layout costs 5 bytes per bucket instead of a packed 8-byte
// word, and misses resolve inside the dense control array (64 buckets per
// cache line) without ever touching the index half. Lookups touch one
// control cache line and (on a tag match) one slot; inserts append to the
// dense vector — no per-element allocation, no tombstones. Iteration walks
// the dense vector in insertion order, which is
// deterministic by construction: downstream inference that iterates a map
// inherits the engine's bit-identical determinism contract instead of
// relying on unordered_map iteration accidents (DESIGN.md §5d/§5e).
//
// The workloads these containers serve are append-heavy; erase() is
// provided for completeness (and for the differential test suite) but is
// O(n) — it compacts the dense vector and rebuilds the probe table, keeping
// the structure tombstone-free and the iteration order exactly first-insert.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace scent::container {

/// splitmix64 finalizer: a full-avalanche bijection on 64-bit values.
[[nodiscard]] constexpr std::uint64_t avalanche64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Default hash. std::hash is the identity for integers in common standard
/// libraries, which open addressing cannot tolerate (sequential keys would
/// form one giant probe cluster), so integral and enum keys get the
/// splitmix64 finalizer; everything else uses std::hash. Custom functors
/// (Ipv6AddressHash, MacAddressHash, ...) must distribute over all 64 bits —
/// the probe table masks the low bits and tags with the high bits.
template <typename K, typename Enable = void>
struct DefaultHash {
  [[nodiscard]] std::size_t operator()(const K& key) const {
    return std::hash<K>{}(key);
  }
};

template <typename K>
struct DefaultHash<K,
                   std::enable_if_t<std::is_integral_v<K> || std::is_enum_v<K>>> {
  [[nodiscard]] std::size_t operator()(const K& key) const noexcept {
    return static_cast<std::size_t>(
        avalanche64(static_cast<std::uint64_t>(key)));
  }
};

namespace detail {

/// Shared open-addressing core for FlatMap/FlatSet. `Slot` is the dense
/// element type, `KeyOf` projects a slot to its key.
template <typename Slot, typename Key, typename KeyOf, typename Hash>
class FlatTable {
 public:
  FlatTable() = default;

  // The raw index buffer (see resize_table) costs the copy operations their
  // = default: the bucket halves are duplicated by hand, memcpy'ing the
  // index so uninitialized (never-read) entries stay untouched bytes.
  FlatTable(const FlatTable& other)
      : slots_(other.slots_),
        tags_(other.tags_),
        mask_(other.mask_),
        hash_(other.hash_) {
    copy_index_from(other);
  }
  FlatTable& operator=(const FlatTable& other) {
    if (this == &other) return *this;
    slots_ = other.slots_;
    tags_ = other.tags_;
    mask_ = other.mask_;
    hash_ = other.hash_;
    copy_index_from(other);
    return *this;
  }
  FlatTable(FlatTable&&) noexcept = default;
  FlatTable& operator=(FlatTable&&) noexcept = default;

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] bool empty() const noexcept { return slots_.empty(); }

  [[nodiscard]] Slot* slots_data() noexcept { return slots_.data(); }
  [[nodiscard]] const Slot* slots_data() const noexcept {
    return slots_.data();
  }

  /// Index of the slot holding `key`, or npos.
  [[nodiscard]] std::size_t find_index(const Key& key) const noexcept {
    if (slots_.empty()) return npos;
    const std::uint64_t h = hash_of(key);
    const std::uint8_t tag = tag_of(h);
    std::size_t pos = static_cast<std::size_t>(h) & mask_;
    std::size_t step = 0;
    for (;;) {
      const std::uint8_t ctrl = tags_[pos];
      if (ctrl == kEmpty) return npos;
      if (ctrl == tag && KeyOf{}(slots_[index_[pos]]) == key) {
        return index_[pos];
      }
      pos = (pos + ++step) & mask_;
    }
  }

  /// Finds the slot for `key`, appending a fresh one built by `make()` when
  /// absent. Returns {slot index, inserted}. `make` is only invoked on
  /// insertion.
  template <typename Make>
  std::pair<std::size_t, bool> find_or_insert(const Key& key, Make&& make) {
    if (slots_.size() + 1 > grow_threshold()) grow();
    const std::uint64_t h = hash_of(key);
    const std::uint8_t tag = tag_of(h);
    std::size_t pos = static_cast<std::size_t>(h) & mask_;
    std::size_t step = 0;
    for (;;) {
      const std::uint8_t ctrl = tags_[pos];
      if (ctrl == kEmpty) {
        const std::size_t index = slots_.size();
        assert(index < kMaxElements && "FlatTable: 2^32-1 element limit");
        slots_.push_back(make());
        tags_[pos] = tag;
        index_[pos] = static_cast<std::uint32_t>(index);
        return {index, true};
      }
      if (ctrl == tag && KeyOf{}(slots_[index_[pos]]) == key) {
        return {index_[pos], false};
      }
      pos = (pos + ++step) & mask_;
    }
  }

  /// Removes `key` if present. O(n): compacts the dense vector (preserving
  /// the insertion order of the survivors) and rebuilds the probe table —
  /// tombstone-free by construction. Returns true if an element was erased.
  bool erase_key(const Key& key) {
    const std::size_t index = find_index(key);
    if (index == npos) return false;
    slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(index));
    rebuild();
    return true;
  }

  /// Drops all elements but keeps both arrays' capacity, so a reused table
  /// (per-sweep-unit rate-limit state, per-shard scratch) re-fills without
  /// reallocating.
  void clear() noexcept {
    slots_.clear();
    std::fill(tags_.begin(), tags_.end(), kEmpty);
  }

  void reserve(std::size_t n) {
    slots_.reserve(n);
    if (n > grow_threshold()) {
      std::size_t buckets = tags_.empty() ? kMinBuckets : tags_.size();
      while (n > buckets - buckets / 4) buckets *= 2;
      resize_table(buckets);
      rebuild_into_current();
    }
  }

  /// Heap bytes held (dense slots + probe table), for the bytes-per-element
  /// accounting the bench guard enforces.
  [[nodiscard]] std::size_t memory_footprint() const noexcept {
    return slots_.capacity() * sizeof(Slot) +
           tags_.capacity() * sizeof(std::uint8_t) +
           tags_.size() * sizeof(std::uint32_t);  // index_, one per bucket
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  static constexpr std::uint8_t kEmpty = 0;  // control byte of a free bucket
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxElements = 0xffffffffULL;

  [[nodiscard]] std::uint64_t hash_of(const Key& key) const {
    return static_cast<std::uint64_t>(hash_(key));
  }

  /// 8-bit tag from the hash's top bits (the bucket index uses the low
  /// bits, so tag and position are nearly independent), remapped off 0,
  /// which marks empty buckets.
  [[nodiscard]] static std::uint8_t tag_of(std::uint64_t h) noexcept {
    const auto tag = static_cast<std::uint8_t>(h >> 56);
    return tag == kEmpty ? std::uint8_t{1} : tag;
  }

  /// Max load factor 3/4.
  [[nodiscard]] std::size_t grow_threshold() const noexcept {
    return tags_.size() - tags_.size() / 4;
  }

  void copy_index_from(const FlatTable& other) {
    if (tags_.empty()) {
      index_.reset();
      return;
    }
    index_ = std::make_unique_for_overwrite<std::uint32_t[]>(tags_.size());
    std::memcpy(index_.get(), other.index_.get(),
                tags_.size() * sizeof(std::uint32_t));
  }

  void resize_table(std::size_t buckets) {
    tags_.assign(buckets, kEmpty);
    // The slot-index half is left uninitialized on purpose: index_[pos] is
    // only ever read where tags_[pos] != kEmpty, and every such bucket is
    // written before it is tagged. A std::vector here made each rehash pay
    // two extra full-table memory passes — resize() copied the old,
    // entirely stale bucket array into the new allocation, then
    // zero-filled the growth — which at the 50M-key bench size is ~GBs of
    // dead traffic across the grow chain.
    index_ = std::make_unique_for_overwrite<std::uint32_t[]>(buckets);
    mask_ = buckets - 1;
  }

  void grow() {
    resize_table(tags_.empty() ? kMinBuckets : tags_.size() * 2);
    rebuild_into_current();
  }

  void rebuild() {
    if (tags_.empty()) return;
    std::fill(tags_.begin(), tags_.end(), kEmpty);
    rebuild_into_current();
  }

  /// Re-seats every dense slot into the (already sized and cleared) table.
  void rebuild_into_current() noexcept {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const std::uint64_t h = hash_of(KeyOf{}(slots_[i]));
      std::size_t pos = static_cast<std::size_t>(h) & mask_;
      std::size_t step = 0;
      while (tags_[pos] != kEmpty) pos = (pos + ++step) & mask_;
      tags_[pos] = tag_of(h);
      index_[pos] = static_cast<std::uint32_t>(i);
    }
  }

  std::vector<Slot> slots_;         // insertion order, dense
  std::vector<std::uint8_t> tags_;  // per-bucket control byte, 0 = empty
  // Per-bucket dense-slot index; tags_.size() entries, uninitialized where
  // the control byte is kEmpty (see resize_table).
  std::unique_ptr<std::uint32_t[]> index_;
  std::size_t mask_ = 0;
  [[no_unique_address]] Hash hash_{};
};

}  // namespace detail

/// Insertion-ordered open-addressing map. Iterators are raw pointers into
/// the dense slot vector (valid until the next mutating call); iteration
/// yields pair-like entries in first-insertion order.
template <typename K, typename V, typename Hash = DefaultHash<K>>
class FlatMap {
 public:
  /// Pair-like so `for (const auto& [key, value] : map)` and `it->second`
  /// read exactly as they do with std::unordered_map.
  struct Entry {
    K first;
    V second;
  };

  using iterator = Entry*;
  using const_iterator = const Entry*;

  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }
  [[nodiscard]] bool empty() const noexcept { return table_.empty(); }

  [[nodiscard]] iterator begin() noexcept { return table_.slots_data(); }
  [[nodiscard]] iterator end() noexcept {
    return table_.slots_data() + table_.size();
  }
  [[nodiscard]] const_iterator begin() const noexcept {
    return table_.slots_data();
  }
  [[nodiscard]] const_iterator end() const noexcept {
    return table_.slots_data() + table_.size();
  }

  V& operator[](const K& key) {
    return try_emplace(key).first->second;
  }

  /// Inserts {key, V{args...}} unless present; the mapped value is only
  /// constructed on insertion. Returns {entry, inserted}.
  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const K& key, Args&&... args) {
    const auto [index, inserted] = table_.find_or_insert(key, [&] {
      return Entry{key, V{std::forward<Args>(args)...}};
    });
    return {table_.slots_data() + index, inserted};
  }

  [[nodiscard]] iterator find(const K& key) noexcept {
    const std::size_t index = table_.find_index(key);
    return index == Table::npos ? end() : table_.slots_data() + index;
  }
  [[nodiscard]] const_iterator find(const K& key) const noexcept {
    const std::size_t index = table_.find_index(key);
    return index == Table::npos ? end() : table_.slots_data() + index;
  }

  [[nodiscard]] bool contains(const K& key) const noexcept {
    return table_.find_index(key) != Table::npos;
  }

  /// Checked lookup; the key must be present.
  [[nodiscard]] const V& at(const K& key) const noexcept {
    const const_iterator it = find(key);
    assert(it != end() && "FlatMap::at: key not found");
    return it->second;
  }

  /// O(n); see FlatTable::erase_key.
  bool erase(const K& key) { return table_.erase_key(key); }

  void clear() noexcept { table_.clear(); }
  void reserve(std::size_t n) { table_.reserve(n); }

  [[nodiscard]] std::size_t memory_footprint() const noexcept {
    return table_.memory_footprint();
  }

  /// Equality is order-sensitive on purpose: insertion order is part of the
  /// determinism contract, so two maps compare equal iff they hold the same
  /// entries in the same first-insertion order.
  [[nodiscard]] friend bool operator==(const FlatMap& a, const FlatMap& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const Entry& lhs = a.begin()[i];
      const Entry& rhs = b.begin()[i];
      if (!(lhs.first == rhs.first) || !(lhs.second == rhs.second)) {
        return false;
      }
    }
    return true;
  }
  [[nodiscard]] friend bool operator!=(const FlatMap& a, const FlatMap& b) {
    return !(a == b);
  }

 private:
  struct KeyOf {
    const K& operator()(const Entry& e) const noexcept { return e.first; }
  };
  using Table = detail::FlatTable<Entry, K, KeyOf, Hash>;
  Table table_;
};

/// Insertion-ordered open-addressing set. Iteration yields keys in
/// first-insertion order; iterators are raw const pointers into the dense
/// key vector (valid until the next mutating call).
template <typename K, typename Hash = DefaultHash<K>>
class FlatSet {
 public:
  using iterator = const K*;
  using const_iterator = const K*;

  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }
  [[nodiscard]] bool empty() const noexcept { return table_.empty(); }

  [[nodiscard]] const_iterator begin() const noexcept {
    return table_.slots_data();
  }
  [[nodiscard]] const_iterator end() const noexcept {
    return table_.slots_data() + table_.size();
  }

  std::pair<const_iterator, bool> insert(const K& key) {
    const auto [index, inserted] =
        table_.find_or_insert(key, [&] { return key; });
    return {table_.slots_data() + index, inserted};
  }

  [[nodiscard]] const_iterator find(const K& key) const noexcept {
    const std::size_t index = table_.find_index(key);
    return index == Table::npos ? end() : table_.slots_data() + index;
  }

  [[nodiscard]] bool contains(const K& key) const noexcept {
    return table_.find_index(key) != Table::npos;
  }

  /// O(n); see FlatTable::erase_key.
  bool erase(const K& key) { return table_.erase_key(key); }

  void clear() noexcept { table_.clear(); }
  void reserve(std::size_t n) { table_.reserve(n); }

  [[nodiscard]] std::size_t memory_footprint() const noexcept {
    return table_.memory_footprint();
  }

  /// Order-sensitive, like FlatMap::operator== — insertion order is part of
  /// the determinism contract.
  [[nodiscard]] friend bool operator==(const FlatSet& a, const FlatSet& b) {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  [[nodiscard]] friend bool operator!=(const FlatSet& a, const FlatSet& b) {
    return !(a == b);
  }

 private:
  struct KeyOf {
    const K& operator()(const K& k) const noexcept { return k; }
  };
  using Table = detail::FlatTable<K, K, KeyOf, Hash>;
  Table table_;
};

}  // namespace scent::container
