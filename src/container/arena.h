// arena.h - chunked arena for per-key index lists.
//
// The by-MAC index of the observation corpus maps ~10^5..10^8 MACs to lists
// of observation indices. One std::vector per MAC means one heap block (plus
// malloc header) per key and a pointer chase per visit; the arena instead
// packs every list into a single shared vector of fixed 32-byte chunks
// (half a cache line), unrolled-linked-list style. A list is addressed by a
// tiny POD `List` handle that the owning FlatMap stores inline, so growing
// the map never touches the element storage.
//
// Indices are 32-bit: the corpus indexes observations with < 2^32-1
// elements per store (the sharded engine splits far earlier than that).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace scent::container {

class IndexArena {
 public:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// POD handle for one list; value-copyable, owned by the caller (e.g. as
  /// a FlatMap mapped value). Only meaningful with the arena it was grown
  /// in.
  struct List {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
    std::uint32_t size = 0;
  };

  void push_back(List& list, std::uint32_t value) {
    if (list.head == kNil) {
      const std::uint32_t chunk = allocate_chunk();
      list.head = chunk;
      list.tail = chunk;
    } else if (chunks_[list.tail].count == kChunkItems) {
      const std::uint32_t chunk = allocate_chunk();
      chunks_[list.tail].next = chunk;  // allocate first: it may reallocate
      list.tail = chunk;
    }
    Chunk& tail = chunks_[list.tail];
    tail.items[tail.count++] = value;
    ++list.size;
  }

  class const_iterator {
   public:
    const_iterator(const IndexArena* arena, std::uint32_t chunk) noexcept
        : arena_(arena), chunk_(chunk) {}

    std::uint32_t operator*() const noexcept {
      return arena_->chunks_[chunk_].items[at_];
    }

    const_iterator& operator++() noexcept {
      const Chunk& chunk = arena_->chunks_[chunk_];
      if (++at_ == chunk.count) {
        chunk_ = chunk.next;
        at_ = 0;
      }
      return *this;
    }

    bool operator==(const const_iterator& other) const noexcept {
      return chunk_ == other.chunk_ && at_ == other.at_;
    }
    bool operator!=(const const_iterator& other) const noexcept {
      return !(*this == other);
    }

   private:
    const IndexArena* arena_;
    std::uint32_t chunk_;
    std::uint32_t at_ = 0;
  };

  /// Range view over one list, in push order.
  class Range {
   public:
    Range(const IndexArena* arena, List list) noexcept
        : arena_(arena), list_(list) {}

    [[nodiscard]] const_iterator begin() const noexcept {
      return const_iterator{arena_, list_.head};
    }
    [[nodiscard]] const_iterator end() const noexcept {
      return const_iterator{arena_, kNil};
    }
    [[nodiscard]] std::size_t size() const noexcept { return list_.size; }
    [[nodiscard]] bool empty() const noexcept { return list_.size == 0; }

   private:
    const IndexArena* arena_;
    List list_;
  };

  [[nodiscard]] Range range(const List& list) const noexcept {
    return Range{this, list};
  }

  /// Drops every list (handles held by callers become dangling) but keeps
  /// the chunk storage for reuse.
  void clear() noexcept { chunks_.clear(); }

  /// Total chunks allocated across all lists.
  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return chunks_.size();
  }

  void reserve_chunks(std::size_t n) { chunks_.reserve(n); }

  [[nodiscard]] std::size_t memory_footprint() const noexcept {
    return chunks_.capacity() * sizeof(Chunk);
  }

 private:
  static constexpr std::uint32_t kChunkItems = 6;

  // 32 bytes exactly: 6 payload indices + link + fill count.
  struct Chunk {
    std::array<std::uint32_t, kChunkItems> items;
    std::uint32_t next = kNil;
    std::uint32_t count = 0;
  };
  static_assert(sizeof(Chunk) == 32);

  std::uint32_t allocate_chunk() {
    chunks_.emplace_back();
    return static_cast<std::uint32_t>(chunks_.size() - 1);
  }

  std::vector<Chunk> chunks_;
};

}  // namespace scent::container
