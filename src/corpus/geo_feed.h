// geo_feed.h - block-compressed on-disk format for the geolocation feed.
//
// The IPvSeeYou-style feed (sim/geo_feed.h) is the join's second input: a
// MAC-keyed table of geolocated device sightings. Its file format follows
// the v2-snapshot design (DESIGN.md §5j) — fixed element partitions encoded
// into independently decodable blocks, per-block CRC-32C verified only when
// a block is actually read, per-block min/max stats over the MAC key — but
// with its own envelope, because a feed is not a snapshot: one row kind
// (mac, lat, lon, asn, last_day), MAC-sorted by contract, and written
// strictly forward so a 100M-row feed streams from the generator without
// ever materializing.
//
// MAC-sortedness is what the stats buy pruning with: every block covers a
// contiguous MAC range, so the join's partition scan hands shards disjoint
// block windows, and the merge phase skips — unread, undecoded — every
// block whose range cannot intersect the corpus side of its partition.
//
// Layout (all integers little-endian):
//   header   "SCNTGEOF" magic (8) | version u32 | reserved u32
//   blocks   per block, columns concatenated as varint streams:
//            mac deltas (sorted, plain varints) | lat zigzag deltas |
//            lon zigzag deltas | asn zigzag deltas | day zigzag deltas
//   dir      per block: elements u32 | payload_bytes u32 | crc u32 |
//            mac_min u64 | mac_max u64                      (28 B/block)
//   footer   records u64 | blocks u32 | dir crc u32 | "GEOFDONE" (8)
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/geo_feed.h"

namespace scent::corpus {

/// Elements per block, matching the snapshot format's partition grain.
inline constexpr std::size_t kGeoFeedBlockElements = 1 << 16;

/// Forward-only feed writer: open(), append() in ascending MAC order,
/// finish(). Out-of-order appends are rejected (finish() fails) — sorted
/// blocks are the format's pruning contract, not a hint.
class GeoFeedWriter {
 public:
  explicit GeoFeedWriter(
      std::size_t block_elements = kGeoFeedBlockElements) noexcept
      : block_elements_(block_elements < 1 ? 1 : block_elements) {}
  ~GeoFeedWriter();
  GeoFeedWriter(const GeoFeedWriter&) = delete;
  GeoFeedWriter& operator=(const GeoFeedWriter&) = delete;

  [[nodiscard]] bool open(const std::string& path);
  void append(const sim::GeoRecord& record);
  [[nodiscard]] bool finish();

  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }

 private:
  struct DirEntry {
    std::uint32_t elements = 0;
    std::uint32_t payload_bytes = 0;
    std::uint32_t crc = 0;
    std::uint64_t mac_min = 0;
    std::uint64_t mac_max = 0;
  };

  [[nodiscard]] bool flush_block();

  std::size_t block_elements_;
  std::FILE* file_ = nullptr;
  bool io_ok_ = true;
  bool sorted_ok_ = true;
  std::uint64_t last_mac_ = 0;
  std::vector<sim::GeoRecord> buffer_;
  std::vector<DirEntry> dir_;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_written_ = 0;
};

/// Feed reader: validates the trailer-anchored directory at open, then
/// serves block-granular streams. Shards scan disjoint block windows via
/// for_each_block_range; MAC-window scans skip non-overlapping blocks
/// without reading them.
class GeoFeedReader {
 public:
  GeoFeedReader() = default;
  ~GeoFeedReader();
  GeoFeedReader(const GeoFeedReader&) = delete;
  GeoFeedReader& operator=(const GeoFeedReader&) = delete;

  [[nodiscard]] bool open(const std::string& path);
  void close();

  [[nodiscard]] bool is_open() const noexcept { return file_ != nullptr; }
  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }
  [[nodiscard]] std::size_t blocks() const noexcept { return dir_.size(); }

  /// [min, max] over the MAC key, from block stats alone.
  [[nodiscard]] std::optional<std::pair<std::uint64_t, std::uint64_t>>
  mac_range() const noexcept;

  /// Streams blocks [first_block, first_block + count) in stored order —
  /// the contiguous slice a partition-scan shard owns.
  [[nodiscard]] bool for_each_block_range(
      std::size_t first_block, std::size_t count,
      const std::function<void(const sim::GeoRecord&)>& fn);

  [[nodiscard]] bool for_each(
      const std::function<void(const sim::GeoRecord&)>& fn);

  /// Streams only records with MAC in [mac_lo, mac_hi], skipping every
  /// block whose stats exclude the window.
  [[nodiscard]] bool for_each_overlapping(
      std::uint64_t mac_lo, std::uint64_t mac_hi,
      const std::function<void(const sim::GeoRecord&)>& fn);

  [[nodiscard]] std::uint64_t blocks_read() const noexcept {
    return blocks_read_;
  }
  [[nodiscard]] std::uint64_t blocks_skipped() const noexcept {
    return blocks_skipped_;
  }

 private:
  struct DirEntry {
    std::uint64_t payload_offset = 0;  ///< Absolute file offset.
    std::uint32_t elements = 0;
    std::uint32_t payload_bytes = 0;
    std::uint32_t crc = 0;
    std::uint64_t mac_min = 0;
    std::uint64_t mac_max = 0;
  };

  [[nodiscard]] bool read_block(
      const DirEntry& entry, std::uint64_t mac_lo, std::uint64_t mac_hi,
      const std::function<void(const sim::GeoRecord&)>& fn);

  std::FILE* file_ = nullptr;
  std::uint64_t records_ = 0;
  std::vector<DirEntry> dir_;
  std::uint64_t blocks_read_ = 0;
  std::uint64_t blocks_skipped_ = 0;
};

}  // namespace scent::corpus
