#include "corpus/crc32c.h"

namespace scent::corpus {
namespace {

/// Reflected Castagnoli polynomial (the iSCSI/ext4/RFC 3720 CRC).
constexpr std::uint32_t kPoly = 0x82f63b78u;

struct Tables {
  std::uint32_t t[8][256];
};

constexpr Tables make_tables() {
  Tables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) != 0 ? kPoly : 0u);
    }
    tables.t[0][i] = crc;
  }
  // t[k][b] extends t[0] to consume k extra zero bytes, enabling the
  // slice-by-8 inner loop below.
  for (std::uint32_t i = 0; i < 256; ++i) {
    for (int k = 1; k < 8; ++k) {
      tables.t[k][i] =
          (tables.t[k - 1][i] >> 8) ^ tables.t[0][tables.t[k - 1][i] & 0xffu];
    }
  }
  return tables;
}

constexpr Tables kTables = make_tables();

[[nodiscard]] std::uint32_t read_u32(const unsigned char* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

void Crc32c::update(const void* data, std::size_t size) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = state_;
  const auto& t = kTables.t;
  while (size >= 8) {
    const std::uint32_t one = crc ^ read_u32(p);
    const std::uint32_t two = read_u32(p + 4);
    crc = t[7][one & 0xffu] ^ t[6][(one >> 8) & 0xffu] ^
          t[5][(one >> 16) & 0xffu] ^ t[4][one >> 24] ^ t[3][two & 0xffu] ^
          t[2][(two >> 8) & 0xffu] ^ t[1][(two >> 16) & 0xffu] ^
          t[0][two >> 24];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xffu];
  }
  state_ = crc;
}

}  // namespace scent::corpus
