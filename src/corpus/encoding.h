// encoding.h - primitive integer codecs for the block-compressed snapshot
// format (v2, DESIGN.md §5j).
//
// Three building blocks, shared by every per-column encoder:
//
//   * LEB128 varints (unsigned, little-endian base-128): small magnitudes
//     cost one byte, a full 64-bit value ten. All v2 streams are varint
//     sequences, so a block decodes with one forward pointer and no
//     alignment requirements.
//   * ZigZag mapping for signed deltas: (n << 1) ^ (n >> 63) folds small
//     negative deltas into small unsigned values so the varint stays short
//     whether a column drifts up or down.
//   * Bounds-checked decode: get_varint never reads past `end` and rejects
//     overlong (> 10 byte) encodings. A block whose CRC matches but whose
//     content has been hand-crafted to run off the payload must fail with
//     a typed error, never UB — the corrupt-input tests hold this line.
//
// Encoders append to a std::vector<unsigned char>; decoders advance a
// `const unsigned char*` cursor and report failure by returning false.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace scent::corpus {

inline void put_varint(std::vector<unsigned char>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<unsigned char>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<unsigned char>(v));
}

/// Decodes one varint from [*cursor, end). Advances *cursor past it.
/// False — cursor unspecified — on truncation or an overlong encoding.
[[nodiscard]] inline bool get_varint(const unsigned char** cursor,
                                     const unsigned char* end,
                                     std::uint64_t& out) noexcept {
  const unsigned char* p = *cursor;
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 70; shift += 7) {
    if (p == end) return false;
    const unsigned char byte = *p++;
    if (shift == 63 && (byte & 0xfe) != 0) return false;  // > 64 bits
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *cursor = p;
      out = v;
      return true;
    }
  }
  return false;  // 10 bytes consumed without a terminator
}

[[nodiscard]] inline constexpr std::uint64_t zigzag_encode(
    std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] inline constexpr std::int64_t zigzag_decode(
    std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Signed delta as a zigzag varint — the universal "next value given the
/// previous one" encoding for iid and time streams.
inline void put_delta(std::vector<unsigned char>& out, std::uint64_t value,
                      std::uint64_t previous) {
  put_varint(out, zigzag_encode(static_cast<std::int64_t>(value - previous)));
}

[[nodiscard]] inline bool get_delta(const unsigned char** cursor,
                                    const unsigned char* end,
                                    std::uint64_t previous,
                                    std::uint64_t& out) noexcept {
  std::uint64_t raw = 0;
  if (!get_varint(cursor, end, raw)) return false;
  out = previous + static_cast<std::uint64_t>(zigzag_decode(raw));
  return true;
}

}  // namespace scent::corpus
