#include "corpus/geo_feed.h"

#include <algorithm>
#include <cstring>

#include "corpus/crc32c.h"
#include "corpus/encoding.h"

namespace scent::corpus {
namespace {

constexpr char kMagic[8] = {'S', 'C', 'N', 'T', 'G', 'E', 'O', 'F'};
constexpr char kEndMagic[8] = {'G', 'E', 'O', 'F', 'D', 'O', 'N', 'E'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kDirEntryBytes = 28;
constexpr std::size_t kFooterBytes = 24;

void store_u32(unsigned char* p, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

void store_u64(unsigned char* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

[[nodiscard]] std::uint32_t load_u32(const unsigned char* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

[[nodiscard]] std::uint64_t load_u64(const unsigned char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// GeoFeedWriter

GeoFeedWriter::~GeoFeedWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

bool GeoFeedWriter::open(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return false;
  unsigned char header[kHeaderBytes];
  std::memcpy(header, kMagic, 8);
  store_u32(header + 8, kVersion);
  store_u32(header + 12, 0);
  io_ok_ = std::fwrite(header, 1, sizeof header, file_) == sizeof header;
  bytes_written_ = kHeaderBytes;
  buffer_.reserve(block_elements_);
  return io_ok_;
}

void GeoFeedWriter::append(const sim::GeoRecord& record) {
  if (records_ > 0 && record.mac.bits() < last_mac_) sorted_ok_ = false;
  last_mac_ = record.mac.bits();
  buffer_.push_back(record);
  ++records_;
  if (buffer_.size() >= block_elements_) io_ok_ = flush_block() && io_ok_;
}

bool GeoFeedWriter::flush_block() {
  if (buffer_.empty()) return true;
  DirEntry entry;
  entry.elements = static_cast<std::uint32_t>(buffer_.size());
  entry.mac_min = buffer_.front().mac.bits();
  entry.mac_max = buffer_.back().mac.bits();
  std::vector<unsigned char> payload;
  payload.reserve(buffer_.size() * 6);
  // MACs are sorted, so their deltas are non-negative: plain varints. The
  // remaining columns take zigzag deltas, reset per column per block.
  std::uint64_t prev = 0;
  for (const sim::GeoRecord& r : buffer_) {
    put_varint(payload, r.mac.bits() - prev);
    prev = r.mac.bits();
  }
  prev = 0;
  for (const sim::GeoRecord& r : buffer_) {
    const auto v = static_cast<std::uint64_t>(r.lat_udeg);
    put_delta(payload, v, prev);
    prev = v;
  }
  prev = 0;
  for (const sim::GeoRecord& r : buffer_) {
    const auto v = static_cast<std::uint64_t>(r.lon_udeg);
    put_delta(payload, v, prev);
    prev = v;
  }
  prev = 0;
  for (const sim::GeoRecord& r : buffer_) {
    put_delta(payload, r.asn, prev);
    prev = r.asn;
  }
  prev = 0;
  for (const sim::GeoRecord& r : buffer_) {
    const auto v = static_cast<std::uint64_t>(r.last_day);
    put_delta(payload, v, prev);
    prev = v;
  }
  entry.payload_bytes = static_cast<std::uint32_t>(payload.size());
  entry.crc = crc32c(payload.data(), payload.size());
  buffer_.clear();
  dir_.push_back(entry);
  bytes_written_ += payload.size();
  return std::fwrite(payload.data(), 1, payload.size(), file_) ==
         payload.size();
}

bool GeoFeedWriter::finish() {
  if (file_ == nullptr) return false;
  io_ok_ = flush_block() && io_ok_ && sorted_ok_;
  std::vector<unsigned char> dir(dir_.size() * kDirEntryBytes);
  for (std::size_t i = 0; i < dir_.size(); ++i) {
    unsigned char* e = dir.data() + i * kDirEntryBytes;
    store_u32(e, dir_[i].elements);
    store_u32(e + 4, dir_[i].payload_bytes);
    store_u32(e + 8, dir_[i].crc);
    store_u64(e + 12, dir_[i].mac_min);
    store_u64(e + 20, dir_[i].mac_max);
  }
  unsigned char footer[kFooterBytes];
  store_u64(footer, records_);
  store_u32(footer + 8, static_cast<std::uint32_t>(dir_.size()));
  store_u32(footer + 12, crc32c(dir.data(), dir.size()));
  std::memcpy(footer + 16, kEndMagic, 8);
  io_ok_ = std::fwrite(dir.data(), 1, dir.size(), file_) == dir.size() &&
           io_ok_;
  io_ok_ = std::fwrite(footer, 1, sizeof footer, file_) == sizeof footer &&
           io_ok_;
  io_ok_ = std::fclose(file_) == 0 && io_ok_;
  file_ = nullptr;
  bytes_written_ += dir.size() + kFooterBytes;
  return io_ok_;
}

// ---------------------------------------------------------------------------
// GeoFeedReader

GeoFeedReader::~GeoFeedReader() { close(); }

void GeoFeedReader::close() {
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
  dir_.clear();
  records_ = 0;
}

bool GeoFeedReader::open(const std::string& path) {
  close();
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) return false;
  unsigned char header[kHeaderBytes];
  if (std::fread(header, 1, sizeof header, file_) != sizeof header ||
      std::memcmp(header, kMagic, 8) != 0 ||
      load_u32(header + 8) != kVersion) {
    close();
    return false;
  }
  if (std::fseek(file_, -static_cast<long>(kFooterBytes), SEEK_END) != 0) {
    close();
    return false;
  }
  const long file_size = std::ftell(file_) + static_cast<long>(kFooterBytes);
  unsigned char footer[kFooterBytes];
  if (std::fread(footer, 1, sizeof footer, file_) != sizeof footer ||
      std::memcmp(footer + 16, kEndMagic, 8) != 0) {
    close();
    return false;
  }
  records_ = load_u64(footer);
  const std::uint32_t blocks = load_u32(footer + 8);
  const std::uint64_t dir_bytes = std::uint64_t{blocks} * kDirEntryBytes;
  const std::uint64_t dir_offset =
      static_cast<std::uint64_t>(file_size) - kFooterBytes - dir_bytes;
  if (dir_offset < kHeaderBytes ||
      std::fseek(file_, static_cast<long>(dir_offset), SEEK_SET) != 0) {
    close();
    return false;
  }
  std::vector<unsigned char> dir(dir_bytes);
  if (std::fread(dir.data(), 1, dir.size(), file_) != dir.size() ||
      crc32c(dir.data(), dir.size()) != load_u32(footer + 12)) {
    close();
    return false;
  }
  dir_.resize(blocks);
  std::uint64_t offset = kHeaderBytes;
  std::uint64_t total = 0;
  std::uint64_t prev_max = 0;
  for (std::uint32_t i = 0; i < blocks; ++i) {
    const unsigned char* e = dir.data() + std::size_t{i} * kDirEntryBytes;
    dir_[i].payload_offset = offset;
    dir_[i].elements = load_u32(e);
    dir_[i].payload_bytes = load_u32(e + 4);
    dir_[i].crc = load_u32(e + 8);
    dir_[i].mac_min = load_u64(e + 12);
    dir_[i].mac_max = load_u64(e + 20);
    // Blocks must themselves arrive in MAC order — the sorted contract holds
    // across block boundaries, not just within them.
    if (dir_[i].elements == 0 || dir_[i].payload_bytes == 0 ||
        dir_[i].mac_min > dir_[i].mac_max ||
        (i > 0 && dir_[i].mac_min < prev_max)) {
      close();
      return false;
    }
    prev_max = dir_[i].mac_max;
    offset += dir_[i].payload_bytes;
    total += dir_[i].elements;
  }
  if (offset != static_cast<std::uint64_t>(file_size) - kFooterBytes -
                    dir_bytes ||
      total != records_) {
    close();
    return false;
  }
  return true;
}

std::optional<std::pair<std::uint64_t, std::uint64_t>>
GeoFeedReader::mac_range() const noexcept {
  if (dir_.empty()) return std::nullopt;
  return std::make_pair(dir_.front().mac_min, dir_.back().mac_max);
}

bool GeoFeedReader::read_block(
    const DirEntry& entry, std::uint64_t mac_lo, std::uint64_t mac_hi,
    const std::function<void(const sim::GeoRecord&)>& fn) {
  std::vector<unsigned char> payload(entry.payload_bytes);
  if (std::fseek(file_, static_cast<long>(entry.payload_offset), SEEK_SET) !=
          0 ||
      std::fread(payload.data(), 1, payload.size(), file_) != payload.size() ||
      crc32c(payload.data(), payload.size()) != entry.crc) {
    return false;
  }
  ++blocks_read_;
  std::vector<sim::GeoRecord> records(entry.elements);
  const unsigned char* cursor = payload.data();
  const unsigned char* end = payload.data() + payload.size();
  std::uint64_t prev = 0;
  for (sim::GeoRecord& r : records) {
    std::uint64_t delta = 0;
    if (!get_varint(&cursor, end, delta)) return false;
    prev += delta;
    r.mac = net::MacAddress{prev};
  }
  prev = 0;
  for (sim::GeoRecord& r : records) {
    std::uint64_t v = 0;
    if (!get_delta(&cursor, end, prev, v)) return false;
    prev = v;
    r.lat_udeg = static_cast<std::int32_t>(v);
  }
  prev = 0;
  for (sim::GeoRecord& r : records) {
    std::uint64_t v = 0;
    if (!get_delta(&cursor, end, prev, v)) return false;
    prev = v;
    r.lon_udeg = static_cast<std::int32_t>(v);
  }
  prev = 0;
  for (sim::GeoRecord& r : records) {
    std::uint64_t v = 0;
    if (!get_delta(&cursor, end, prev, v)) return false;
    prev = v;
    r.asn = static_cast<std::uint32_t>(v);
  }
  prev = 0;
  for (sim::GeoRecord& r : records) {
    std::uint64_t v = 0;
    if (!get_delta(&cursor, end, prev, v)) return false;
    prev = v;
    r.last_day = static_cast<std::int64_t>(v);
  }
  if (cursor != end) return false;  // trailing bytes = corrupt payload
  for (const sim::GeoRecord& r : records) {
    if (r.mac.bits() >= mac_lo && r.mac.bits() <= mac_hi) fn(r);
  }
  return true;
}

bool GeoFeedReader::for_each_block_range(
    std::size_t first_block, std::size_t count,
    const std::function<void(const sim::GeoRecord&)>& fn) {
  if (file_ == nullptr) return false;
  const std::size_t end = std::min(first_block + count, dir_.size());
  for (std::size_t i = first_block; i < end; ++i) {
    if (!read_block(dir_[i], 0, ~std::uint64_t{0}, fn)) return false;
  }
  return true;
}

bool GeoFeedReader::for_each(
    const std::function<void(const sim::GeoRecord&)>& fn) {
  return for_each_block_range(0, dir_.size(), fn);
}

bool GeoFeedReader::for_each_overlapping(
    std::uint64_t mac_lo, std::uint64_t mac_hi,
    const std::function<void(const sim::GeoRecord&)>& fn) {
  if (file_ == nullptr) return false;
  for (const DirEntry& entry : dir_) {
    if (entry.mac_max < mac_lo || entry.mac_min > mac_hi) {
      ++blocks_skipped_;
      continue;
    }
    if (!read_block(entry, mac_lo, mac_hi, fn)) return false;
  }
  return true;
}

}  // namespace scent::corpus
