// keyed_run.h - streaming block format for MAC-keyed join spill runs.
//
// The cross-dataset join (src/join/, DESIGN.md §5l) radix-partitions both
// input sides by MAC and spills every partition to disk so the working set
// is bounded by one partition, never by the input. This is the run format:
// fixed-width records (one 64-bit key plus three 64-bit payload columns)
// packed into independently decodable blocks, each column zigzag-delta
// varint encoded with the encoding.h codecs the v2 snapshot format uses,
// each block carrying a CRC-32C and min/max stats over the key column.
//
// The stats are what make partition pruning free: a reader handed a key
// window skips — without reading, let alone CRC-checking or decoding — every
// block whose [key_min, key_max] cannot intersect it, exactly the §5j
// block-skip predicate contract. Because the join's feed side arrives
// MAC-sorted, its spilled blocks have tight key ranges and a MAC-disjoint
// fixture genuinely prunes.
//
// Unlike SnapshotWriter (which buffers a day in memory and seeks a header
// into place), runs are written strictly forward — open, append, finish —
// so a spill never holds more than one block buffer: the block directory
// and footer land at the end of the file and the reader finds them from a
// fixed-size trailer.
//
// Layout (all integers little-endian):
//   header   "SCNTKRUN" magic (8) | version u32 | payload columns u32
//   blocks   concatenated varint payloads, back to back
//   dir      per block: elements u32 | payload_bytes u32 | crc u32 |
//            key_min u64 | key_max u64                       (28 B/block)
//   footer   records u64 | blocks u32 | dir crc u32 | "KRUNDONE" (8)
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace scent::corpus {

/// One join record: the MAC key plus three opaque payload columns (the join
/// layers assign meaning — network/asn/day on the rotation side, packed
/// lat·lon/asn/day on the geo side).
struct KeyedRecord {
  std::uint64_t key = 0;
  std::uint64_t c0 = 0;
  std::uint64_t c1 = 0;
  std::uint64_t c2 = 0;

  friend constexpr bool operator==(const KeyedRecord&,
                                   const KeyedRecord&) = default;
};

/// Records per block. Small enough that a partition pass holding one open
/// writer per (shard, partition) stays at a few hundred KB per writer.
inline constexpr std::size_t kKeyedRunBlockElements = 8192;

/// Forward-only run writer: open(), append() in input order, finish().
/// Records are buffered one block at a time; every full block is encoded
/// and flushed immediately, so memory stays O(block) no matter the run size.
class KeyedRunWriter {
 public:
  explicit KeyedRunWriter(
      std::size_t block_elements = kKeyedRunBlockElements) noexcept
      : block_elements_(block_elements < 1 ? 1 : block_elements) {}
  ~KeyedRunWriter();
  KeyedRunWriter(const KeyedRunWriter&) = delete;
  KeyedRunWriter& operator=(const KeyedRunWriter&) = delete;

  [[nodiscard]] bool open(const std::string& path);

  void append(const KeyedRecord& record);

  /// Flushes the tail block, writes the directory and footer, closes the
  /// file. False on any I/O failure (including buffered writes surfacing at
  /// close). The writer is unusable afterwards.
  [[nodiscard]] bool finish();

  [[nodiscard]] bool is_open() const noexcept { return file_ != nullptr; }
  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }

  /// Total file bytes finish() produced (valid after finish()).
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }

 private:
  struct DirEntry {
    std::uint32_t elements = 0;
    std::uint32_t payload_bytes = 0;
    std::uint32_t crc = 0;
    std::uint64_t key_min = 0;
    std::uint64_t key_max = 0;
  };

  [[nodiscard]] bool flush_block();

  std::size_t block_elements_;
  std::FILE* file_ = nullptr;
  bool io_ok_ = true;
  std::vector<KeyedRecord> buffer_;
  std::vector<DirEntry> dir_;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_written_ = 0;
};

/// Run reader: validates the trailer-anchored directory at open, then
/// streams records block by block. Key-window scans skip non-overlapping
/// blocks without reading them, counted in blocks_skipped().
class KeyedRunReader {
 public:
  KeyedRunReader() = default;
  ~KeyedRunReader();
  KeyedRunReader(const KeyedRunReader&) = delete;
  KeyedRunReader& operator=(const KeyedRunReader&) = delete;

  /// Validates magic, version, footer and directory CRC. False (reader
  /// unusable) on any mismatch.
  [[nodiscard]] bool open(const std::string& path);
  void close();

  [[nodiscard]] bool is_open() const noexcept { return file_ != nullptr; }
  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }
  [[nodiscard]] std::size_t blocks() const noexcept { return dir_.size(); }

  /// [min, max] over the key column, from block stats alone. nullopt for an
  /// empty run.
  [[nodiscard]] std::optional<std::pair<std::uint64_t, std::uint64_t>>
  key_range() const noexcept;

  /// Streams every record in stored order. False on CRC mismatch, decode
  /// error or I/O failure.
  [[nodiscard]] bool for_each(
      const std::function<void(const KeyedRecord&)>& fn);

  /// Streams only records with key in [key_lo, key_hi], skipping (not
  /// reading) every block whose stats exclude the window. Records inside a
  /// surviving block are still filtered exactly.
  [[nodiscard]] bool for_each_overlapping(
      std::uint64_t key_lo, std::uint64_t key_hi,
      const std::function<void(const KeyedRecord&)>& fn);

  [[nodiscard]] std::uint64_t blocks_read() const noexcept {
    return blocks_read_;
  }
  [[nodiscard]] std::uint64_t blocks_skipped() const noexcept {
    return blocks_skipped_;
  }

 private:
  struct DirEntry {
    std::uint64_t payload_offset = 0;  ///< Absolute file offset.
    std::uint32_t elements = 0;
    std::uint32_t payload_bytes = 0;
    std::uint32_t crc = 0;
    std::uint64_t key_min = 0;
    std::uint64_t key_max = 0;
  };

  [[nodiscard]] bool read_block(
      const DirEntry& entry, std::uint64_t key_lo, std::uint64_t key_hi,
      const std::function<void(const KeyedRecord&)>& fn);

  std::FILE* file_ = nullptr;
  std::uint64_t records_ = 0;
  std::vector<DirEntry> dir_;
  std::uint64_t blocks_read_ = 0;
  std::uint64_t blocks_skipped_ = 0;
};

}  // namespace scent::corpus
