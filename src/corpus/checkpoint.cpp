#include "corpus/checkpoint.h"

#include <charconv>
#include <cinttypes>
#include <cstdio>

namespace scent::corpus {
namespace {

struct File {
  std::FILE* handle = nullptr;
  explicit File(const std::string& path, const char* mode)
      : handle(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (handle != nullptr) std::fclose(handle);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  explicit operator bool() const noexcept { return handle != nullptr; }

  bool close() {
    if (handle == nullptr) return false;
    const bool stream_clean = std::ferror(handle) == 0;
    const bool close_clean = std::fclose(handle) == 0;
    handle = nullptr;
    return stream_clean && close_clean;
  }
};

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.back() == '\n' || s.back() == '\r' ||
                        s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  return s;
}

/// Splits on runs of spaces/tabs; returns false if there are more than
/// `max_fields` fields.
bool split_fields(std::string_view text, std::string_view* fields,
                  std::size_t max_fields, std::size_t& count) {
  count = 0;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    if (i >= text.size()) break;
    const std::size_t start = i;
    while (i < text.size() && text[i] != ' ' && text[i] != '\t') ++i;
    if (count >= max_fields) return false;
    fields[count++] = text.substr(start, i - start);
  }
  return true;
}

template <typename Int>
std::optional<Int> parse_int(std::string_view text) {
  Int value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

std::string snapshot_file_name(std::size_t day_ordinal) {
  char name[32];
  std::snprintf(name, sizeof name, "day_%04zu.snap", day_ordinal);
  return name;
}

std::string manifest_path(const std::string& dir) {
  return dir + "/manifest.txt";
}

bool save_checkpoint(const std::string& dir,
                     const CampaignCheckpoint& checkpoint) {
  const std::string final_path = manifest_path(dir);
  const std::string tmp_path = final_path + ".tmp";
  {
    File file{tmp_path, "w"};
    if (!file) return false;
    std::FILE* f = file.handle;
    bool ok = std::fprintf(f, "# scent campaign checkpoint manifest\n") >= 0;
    ok = std::fprintf(f, "version %" PRIu32 "\n", checkpoint.version) >= 0 && ok;
    ok = std::fprintf(f, "seed %" PRIu64 "\n", checkpoint.seed) >= 0 && ok;
    ok = std::fprintf(f, "first_day %" PRId64 "\n", checkpoint.first_day) >=
             0 &&
         ok;
    ok = std::fprintf(f, "scan_tod_us %" PRId64 "\n",
                      checkpoint.scan_time_of_day) >= 0 &&
         ok;
    ok = std::fprintf(f, "alloc_after_day0 %d\n",
                      checkpoint.allocation_granularity_after_day0 ? 1 : 0) >=
             0 &&
         ok;
    ok = std::fprintf(f, "targets_digest %" PRIu64 "\n",
                      checkpoint.targets_digest) >= 0 &&
         ok;
    for (const auto& [asn, length] : checkpoint.allocation_length_by_as) {
      ok = std::fprintf(f, "as %" PRIu32 " %u\n", asn, length) >= 0 && ok;
    }
    for (const auto& day : checkpoint.days) {
      ok = std::fprintf(f,
                        "day %" PRId64 " %" PRIu64 " %" PRIu64 " %" PRIu64
                        " %" PRIu64 " %" PRId64 " %s\n",
                        day.day, day.probes, day.responses,
                        day.unique_eui64_iids, day.rows, day.clock_us,
                        day.snapshot_file.c_str()) >= 0 &&
           ok;
    }
    ok = std::fprintf(f, "end %zu\n", checkpoint.days.size()) >= 0 && ok;
    if (!(file.close() && ok)) {
      std::remove(tmp_path.c_str());
      return false;
    }
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return false;
  }
  return true;
}

std::optional<CampaignCheckpoint> load_checkpoint(const std::string& dir) {
  File file{manifest_path(dir), "r"};
  if (!file) return std::nullopt;

  CampaignCheckpoint checkpoint;
  bool version_seen = false;
  bool end_seen = false;
  char line[512];
  while (std::fgets(line, sizeof line, file.handle) != nullptr) {
    const std::string_view text = trim(line);
    if (text.empty() || text.front() == '#') continue;
    std::string_view fields[8];
    std::size_t count = 0;
    if (!split_fields(text, fields, 8, count) || count == 0) {
      return std::nullopt;
    }
    const std::string_view key = fields[0];
    if (key == "version" && count == 2) {
      const auto v = parse_int<std::uint32_t>(fields[1]);
      if (!v || *v != kCheckpointFormatVersion) return std::nullopt;
      checkpoint.version = *v;
      version_seen = true;
    } else if (key == "seed" && count == 2) {
      const auto v = parse_int<std::uint64_t>(fields[1]);
      if (!v) return std::nullopt;
      checkpoint.seed = *v;
    } else if (key == "first_day" && count == 2) {
      const auto v = parse_int<std::int64_t>(fields[1]);
      if (!v) return std::nullopt;
      checkpoint.first_day = *v;
    } else if (key == "scan_tod_us" && count == 2) {
      const auto v = parse_int<std::int64_t>(fields[1]);
      if (!v) return std::nullopt;
      checkpoint.scan_time_of_day = *v;
    } else if (key == "alloc_after_day0" && count == 2) {
      const auto v = parse_int<int>(fields[1]);
      if (!v || (*v != 0 && *v != 1)) return std::nullopt;
      checkpoint.allocation_granularity_after_day0 = *v == 1;
    } else if (key == "targets_digest" && count == 2) {
      const auto v = parse_int<std::uint64_t>(fields[1]);
      if (!v) return std::nullopt;
      checkpoint.targets_digest = *v;
    } else if (key == "as" && count == 3) {
      const auto asn = parse_int<routing::Asn>(fields[1]);
      const auto length = parse_int<unsigned>(fields[2]);
      if (!asn || !length || *length > 128) return std::nullopt;
      checkpoint.allocation_length_by_as[*asn] = *length;
    } else if (key == "day" && count == 8) {
      CheckpointDay day;
      const auto abs_day = parse_int<std::int64_t>(fields[1]);
      const auto probes = parse_int<std::uint64_t>(fields[2]);
      const auto responses = parse_int<std::uint64_t>(fields[3]);
      const auto iids = parse_int<std::uint64_t>(fields[4]);
      const auto rows = parse_int<std::uint64_t>(fields[5]);
      const auto clock_us = parse_int<std::int64_t>(fields[6]);
      if (!abs_day || !probes || !responses || !iids || !rows || !clock_us ||
          fields[7].empty()) {
        return std::nullopt;
      }
      day.day = *abs_day;
      day.probes = *probes;
      day.responses = *responses;
      day.unique_eui64_iids = *iids;
      day.rows = *rows;
      day.clock_us = *clock_us;
      day.snapshot_file = std::string{fields[7]};
      checkpoint.days.push_back(std::move(day));
    } else if (key == "end" && count == 2) {
      const auto n = parse_int<std::uint64_t>(fields[1]);
      if (!n || *n != checkpoint.days.size()) return std::nullopt;
      end_seen = true;
      break;  // the marker is the last meaningful line
    }
    // Unknown keys (and known keys with unexpected arity) fall through:
    // ignored for forward compatibility.
  }
  if (!version_seen || !end_seen) return std::nullopt;
  return checkpoint;
}

}  // namespace scent::corpus
