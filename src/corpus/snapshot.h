// snapshot.h - versioned binary columnar snapshots of an observation corpus.
//
// The campaign's durable unit of work is one day's observations. This module
// persists an ObservationStore slice as a binary columnar file — the default
// persistence format (the CSV in core/io.h remains as a debug/export path) —
// and reads it back whole, column by column, as row-window slices that touch
// only the blocks they overlap, or as a stream of deduplicated EUI pairs for
// incremental rotation differencing.
//
// Both versions share one envelope (all integers little-endian):
//
//   offset  size  field
//   0       8     magic "SCNTSNAP"
//   8       4     format version (u32) = 1 or 2
//   12      8     row count (u64)
//   20      4     section count (u32) = 5
//   24      24*n  section table: id (u32), offset (u64), size (u64),
//                 crc32c (u32) per section
//   ...     4     header CRC-32C over every preceding header byte
//   ...           section payloads, at their recorded offsets
//
// The five sections carry the store's columns plus one derived section:
//
//   id  section    element                                   v1 width
//   1   targets    address (network u64, iid u64)            16 B/row
//   2   responses  address (network u64, iid u64)            16 B/row
//   3   type_code  (icmp type << 8) | code (u16)              2 B/row
//   4   times      send time, microseconds (i64)              8 B/row
//   5   eui_pairs  <target, EUI-64 response> address pair    32 B/pair
//
// eui_pairs is deduplicated by target (last response wins) in target
// first-sighting order — exactly the rotation detector's Snapshot recorded
// over the rows — so an incremental diff streams it without rebuilding the
// index from raw observations.
//
// v1 stores each section as its raw elements with one whole-section CRC;
// the section-table crc field covers the payload. v1 is frozen: its layout
// never changes again, writers can still emit it (set_format_version(1)),
// and readers accept it forever — checkpoint chains may mix versions across
// a resume.
//
// v2 (the default) block-compresses every section. A section payload is a
// block directory followed by independently decodable blocks of up to 64Ki
// elements:
//
//   u32   block count
//   36 B  per block: payload offset (u64, relative to directory end),
//         element count (u32), payload bytes (u32), payload CRC-32C (u32),
//         min stat (u64), max stat (u64)
//   ...   block payloads, contiguous, in order
//
// The section-table crc field covers the directory (validated at open, so a
// damaged block index is caught before any payload is touched); each block
// carries its own CRC, verified when — and only when — that block is read.
// Per-column encodings and the min/max stat semantics are specified in
// DESIGN.md §5j: sorted-dictionary networks + delta iids for the address
// sections, run-length deltas for times, run-length values for type+code.
// Blocks reset all decoder state, so any block decodes alone — that is what
// makes row-window reads skip non-overlapping blocks entirely and lets
// save/load fan blocks across threads while the bytes stay identical at any
// thread count.
//
// Versioning: the magic never changes; readers reject any other version
// (there is no cross-version migration — snapshots are campaign artifacts,
// regenerable from a re-run, not archival interchange). Any layout change
// bumps the version. Unknown section ids are ignored on read, so a future
// writer may append sections without a version bump as long as sections 1-5
// keep their meaning.
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "container/flat_hash.h"
#include "core/observation.h"
#include "netbase/ipv6_address.h"
#include "sim/sim_time.h"
#include "trace/recorder.h"

namespace scent::corpus {

inline constexpr std::uint32_t kSnapshotFormatV1 = 1;
inline constexpr std::uint32_t kSnapshotFormatV2 = 2;
/// What SnapshotWriter emits unless told otherwise.
inline constexpr std::uint32_t kSnapshotDefaultFormat = kSnapshotFormatV2;
/// Elements per v2 block — the skip/parallelism granule.
inline constexpr std::size_t kSnapshotBlockElements = std::size_t{1} << 16;

/// Why an open or read failed. Never UB on corrupt input: every failure
/// mode maps to one of these.
enum class SnapshotError {
  kNone,
  kOpenFailed,      ///< fopen failed (missing file, permissions).
  kBadMagic,        ///< Not a snapshot file.
  kBadVersion,      ///< Unsupported format version.
  kTruncated,       ///< Header or a section extends past end of file.
  kBadLayout,       ///< Missing/ill-sized section or a bad v2 block index.
  kCorruptSection,  ///< A section, block or directory failed its CRC, or a
                    ///< CRC-valid v2 block decoded to inconsistent content.
  kReadFailed,      ///< I/O error mid-read.
};

[[nodiscard]] const char* to_string(SnapshotError error) noexcept;

/// Accumulates observations and writes them as one snapshot file. Rows can
/// arrive one at a time, as whole stores (column-copy fast path), or as
/// store Views (the engine's per-shard slices).
class SnapshotWriter {
 public:
  void append(net::Ipv6Address target, net::Ipv6Address response,
              std::uint16_t type_code, sim::TimePoint time);

  void append(const core::Observation& obs) {
    append(obs.target, obs.response,
           static_cast<std::uint16_t>(
               (static_cast<std::uint16_t>(obs.type) << 8) | obs.code),
           obs.time);
  }

  /// Column-wise append of a whole store — the shard-merge fast path.
  void append(const core::ObservationStore& store);

  /// Row-wise append of a store window (e.g. one sweep unit's slice).
  void append(const core::ObservationStore::View& view);

  /// Output format: kSnapshotFormatV2 (default) or kSnapshotFormatV1 (the
  /// frozen layout, kept for fixtures and mixed-version chains). Any other
  /// value is ignored.
  void set_format_version(std::uint32_t version) noexcept;
  [[nodiscard]] std::uint32_t format_version() const noexcept {
    return version_;
  }

  /// Worker threads for v2 block compression (0 = hardware concurrency).
  /// Purely a wall-clock knob: the emitted bytes are identical at any
  /// value, because blocks are fixed row partitions encoded independently.
  void set_threads(unsigned threads) noexcept { threads_ = threads; }

  [[nodiscard]] std::uint64_t rows() const noexcept {
    return targets_.size();
  }
  [[nodiscard]] std::uint64_t eui_pair_count() const noexcept {
    return eui_pairs_.size();
  }

  /// Exact size in bytes of the file write() would produce for the current
  /// contents. v1 is a closed-form function of the row/pair counts; v2
  /// runs the (deterministic) encoder and caches the answer, so calling
  /// this right after write() is free.
  [[nodiscard]] std::uint64_t encoded_size() const;

  /// Writes the snapshot. False on any I/O failure, including buffered
  /// writes that only surface at flush/close time (disk full).
  [[nodiscard]] bool write(const std::string& path) const;

  /// Optional section-I/O instrumentation: write() brackets each section
  /// with begin/end events in `recorder` and observes the per-section
  /// wall-ns into `sketch`. Either may be null; both default off.
  void set_trace(trace::TraceRecorder* recorder,
                 trace::QuantileSketch* sketch) noexcept {
    trace_recorder_ = recorder;
    trace_sketch_ = sketch;
  }

  void clear();

 private:
  struct EncodedV2;  // defined in snapshot.cpp

  template <typename Emit>
  void emit_section(std::uint32_t id, Emit&& emit) const;

  [[nodiscard]] bool write_v1(const std::string& path) const;
  [[nodiscard]] bool write_v2(const std::string& path) const;
  void encode_v2(EncodedV2& out) const;

  std::vector<net::Ipv6Address> targets_;
  std::vector<net::Ipv6Address> responses_;
  std::vector<std::uint16_t> type_codes_;
  std::vector<sim::TimePoint> times_;
  /// target -> latest EUI-64 response, target first-sighting order (the
  /// rotation Snapshot semantics, precomputed).
  container::FlatMap<net::Ipv6Address, net::Ipv6Address, net::Ipv6AddressHash>
      eui_pairs_;
  std::uint32_t version_ = kSnapshotDefaultFormat;
  unsigned threads_ = 1;
  /// Cached v2 total size; invalidated by append/clear/version changes.
  mutable std::optional<std::uint64_t> cached_v2_size_;
  trace::TraceRecorder* trace_recorder_ = nullptr;
  trace::QuantileSketch* trace_sketch_ = nullptr;
};

/// Opens a snapshot (either version, auto-detected) and serves columns
/// lazily: each read touches only that column's section — and, for v2, only
/// the blocks overlapping the requested row window — so consumers that need
/// one column (the tracker reads responses + times, the incremental
/// rotation diff streams only eui_pairs) never pay for the full corpus, and
/// windowed scans never pay for rows outside their window.
class SnapshotReader {
 public:
  SnapshotReader() = default;
  ~SnapshotReader();
  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  /// Validates magic, version, header CRC and section layout (for v2, each
  /// section's block directory against its table CRC — a damaged block
  /// index never survives open). On failure returns false with error()
  /// set; the reader stays unusable.
  [[nodiscard]] bool open(const std::string& path);
  void close();

  /// Optional section-I/O instrumentation, mirroring SnapshotWriter: each
  /// section read is bracketed in `recorder` and its wall-ns observed into
  /// `sketch`. Either may be null; both default off.
  void set_trace(trace::TraceRecorder* recorder,
                 trace::QuantileSketch* sketch) noexcept {
    trace_recorder_ = recorder;
    trace_sketch_ = sketch;
  }

  /// Worker threads for v2 block decode on full-column reads (0 = hardware
  /// concurrency). A wall-clock knob only; decoded rows are identical.
  void set_threads(unsigned threads) noexcept { threads_ = threads; }

  [[nodiscard]] bool is_open() const noexcept { return file_ != nullptr; }
  [[nodiscard]] SnapshotError error() const noexcept { return error_; }
  [[nodiscard]] std::uint32_t version() const noexcept { return version_; }
  [[nodiscard]] std::uint64_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint64_t eui_pair_count() const noexcept;

  // Lazy per-column reads. Each replaces `out`; false (with error() set)
  // on CRC mismatch or I/O error.
  [[nodiscard]] bool read_targets(std::vector<net::Ipv6Address>& out);
  [[nodiscard]] bool read_responses(std::vector<net::Ipv6Address>& out);
  [[nodiscard]] bool read_type_codes(std::vector<std::uint16_t>& out);
  [[nodiscard]] bool read_times(std::vector<sim::TimePoint>& out);

  // Row-window column reads: exactly rows [first, first + count) of the
  // column land in `out`. The window is clamped to the snapshot's rows.
  // v2 reads (and CRC-verifies) only the blocks overlapping the window,
  // counting the rest into blocks_skipped(); v1 has no sub-section
  // integrity unit, so it reads the whole section and slices — correct,
  // just not cheaper (the block-skip predicate contract, DESIGN.md §5j).
  [[nodiscard]] bool read_targets(std::vector<net::Ipv6Address>& out,
                                  std::uint64_t first, std::uint64_t count);
  [[nodiscard]] bool read_responses(std::vector<net::Ipv6Address>& out,
                                    std::uint64_t first, std::uint64_t count);
  [[nodiscard]] bool read_type_codes(std::vector<std::uint16_t>& out,
                                     std::uint64_t first, std::uint64_t count);
  [[nodiscard]] bool read_times(std::vector<sim::TimePoint>& out,
                                std::uint64_t first, std::uint64_t count);

  /// Blocks decoded / blocks skipped by row-window predicates since open().
  /// v1 files report zero for both (no blocks to count).
  [[nodiscard]] std::uint64_t blocks_read() const noexcept {
    return blocks_read_;
  }
  [[nodiscard]] std::uint64_t blocks_skipped() const noexcept {
    return blocks_skipped_;
  }

  /// [min, max] send time across all rows, from the v2 time-section block
  /// stats — the day predicate: a whole file (or block) outside a day
  /// window can be skipped without decoding anything. nullopt for v1 files
  /// and empty snapshots.
  [[nodiscard]] std::optional<std::pair<sim::TimePoint, sim::TimePoint>>
  time_range() const noexcept;

  /// Streams the deduplicated <target, EUI-64 response> pairs in stored
  /// order without materializing them.
  [[nodiscard]] bool for_each_eui_pair(
      const std::function<void(net::Ipv6Address target,
                               net::Ipv6Address response)>& fn);

  /// Replays every row into `store` (appending, through the store's own
  /// add path so its indexes rebuild with the original insertion history).
  [[nodiscard]] bool read_into(core::ObservationStore& store);

  /// The whole snapshot as a fresh store; nullopt on any failure.
  [[nodiscard]] std::optional<core::ObservationStore> read_store();

 private:
  struct Section {
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
    std::uint32_t crc = 0;
    bool present = false;
  };

  /// One v2 block-directory entry, plus the running element offset.
  struct BlockEntry {
    std::uint64_t payload_offset = 0;  ///< Relative to the directory end.
    std::uint64_t first_element = 0;   ///< Within the section.
    std::uint32_t elements = 0;
    std::uint32_t payload_bytes = 0;
    std::uint32_t crc = 0;
    std::uint64_t min_stat = 0;
    std::uint64_t max_stat = 0;
  };

  struct BlockDir {
    std::vector<BlockEntry> entries;
    std::uint64_t payload_base = 0;  ///< Absolute file offset of block 0.
    std::uint64_t total_elements = 0;
  };

  static constexpr std::uint32_t kMaxSectionId = 5;

  [[nodiscard]] bool fail(SnapshotError error) noexcept;
  [[nodiscard]] const Section* section(std::uint32_t id) const noexcept;
  [[nodiscard]] bool parse_block_dir(std::uint32_t id);

  /// Reads one v1 section in chunks (chunk size a multiple of every
  /// element width, so elements never straddle chunks), verifying its CRC;
  /// the visitor decodes each chunk.
  template <typename Visit>
  [[nodiscard]] bool read_section(std::uint32_t id, Visit&& visit);

  /// v2: reads + verifies + decodes exactly the blocks of section `id`
  /// overlapping elements [first, first + count), appending the window to
  /// `out` through the column-typed decoder.
  template <typename T, typename DecodeBlock>
  [[nodiscard]] bool read_blocks(std::uint32_t id, std::uint64_t first,
                                 std::uint64_t count, std::vector<T>& out,
                                 DecodeBlock&& decode);

  template <typename T>
  [[nodiscard]] bool read_column(std::uint32_t id, std::uint64_t first,
                                 std::uint64_t count, std::vector<T>& out);

  std::FILE* file_ = nullptr;
  SnapshotError error_ = SnapshotError::kNone;
  std::uint32_t version_ = 0;
  std::uint64_t rows_ = 0;
  std::array<Section, kMaxSectionId + 1> sections_{};
  std::array<BlockDir, kMaxSectionId + 1> block_dirs_{};
  unsigned threads_ = 1;
  std::uint64_t blocks_read_ = 0;
  std::uint64_t blocks_skipped_ = 0;
  trace::TraceRecorder* trace_recorder_ = nullptr;
  trace::QuantileSketch* trace_sketch_ = nullptr;
};

}  // namespace scent::corpus
